#!/usr/bin/env bash
# Kill-point loop for the crash-safety harness (docs/persistence.md).
#
# persist_fault_test already sweeps every injected kill point and a
# corruption matrix under one seed; this script re-rolls that seed N
# times so the randomized parts (torn-write prefix lengths, bit-flip
# positions, workload feedback) cover fresh ground on every run. CI runs
# it with the ASan/UBSan build so a surviving torn write that trips UB
# fails loudly.
#
# Usage: scripts/crash_inject.sh [RUNS] [BUILD_DIR]
#   RUNS      number of seed rotations (default 10)
#   BUILD_DIR build tree containing persist_fault_test (default build)
set -euo pipefail
cd "$(dirname "$0")/.."

RUNS="${1:-10}"
BUILD_DIR="${2:-build}"
BIN="${BUILD_DIR}/persist_fault_test"

if [[ ! -x "${BIN}" ]]; then
  echo "crash_inject.sh: ${BIN} not built (run cmake --build ${BUILD_DIR})"
  exit 1
fi

# Deterministic seed schedule so a red CI run is reproducible locally by
# rerunning the same script revision: seeds derive from the loop index,
# not from time or PID.
for ((i = 0; i < RUNS; ++i)); do
  seed=$((90001 + i * 7919))
  echo "crash_inject.sh: run $((i + 1))/${RUNS} (Q_PERSIST_FAULT_SEED=${seed})"
  Q_PERSIST_FAULT_SEED="${seed}" "${BIN}" --gtest_brief=1
done

echo "crash_inject.sh: OK (${RUNS} seed rotations survived)"
