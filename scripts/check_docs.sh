#!/usr/bin/env bash
# Documentation consistency checks, run by scripts/check.sh and as a
# standalone CI step (.github/workflows/ci.yml):
#
#   1. Markdown link check: every relative link target in README.md and
#      docs/*.md must exist on disk (http(s)/mailto links and pure
#      anchors are skipped; "path#anchor" checks the path part).
#   2. Header doc references: every `docs/<file>.md` a public header
#      under src/core or src/steiner mentions must exist — stale doc
#      pointers in the API surface are treated as build breakage.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# --- 1. markdown relative links ---------------------------------------------
for md in README.md docs/*.md; do
  [[ -f "${md}" ]] || continue
  dir="$(dirname "${md}")"
  while IFS= read -r target; do
    target="${target%%#*}"          # drop anchors; "#section" -> ""
    [[ -z "${target}" ]] && continue
    case "${target}" in
      http://*|https://*|mailto:*) continue ;;
    esac
    if [[ "${target}" == /* ]]; then
      resolved=".${target}"          # repo-absolute
    else
      resolved="${dir}/${target}"    # relative to the doc
    fi
    if [[ ! -e "${resolved}" ]]; then
      echo "check_docs: ${md}: broken link -> ${target}"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "${md}" | sed -E 's/^\]\(//; s/\)$//' \
           | sed -E 's/[[:space:]]+"[^"]*"$//')
done

# --- 2. doc files mentioned by public headers --------------------------------
for hdr in src/core/*.h src/steiner/*.h; do
  [[ -f "${hdr}" ]] || continue
  while IFS= read -r doc; do
    if [[ ! -f "${doc}" ]]; then
      echo "check_docs: ${hdr}: references missing ${doc}"
      fail=1
    fi
  done < <(grep -oE 'docs/[A-Za-z0-9_.-]+\.md' "${hdr}" | sort -u)
done

if [[ "${fail}" == "1" ]]; then
  echo "check_docs: FAIL"
  exit 1
fi
echo "check_docs: OK"
