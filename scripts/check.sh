#!/usr/bin/env bash
# Tier-1 verify (configure, build, ctest) plus a Release-mode bench smoke
# run; the single entry point for local checks and a future CI workflow.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

# --- tier-1: configure, build, test ----------------------------------------
cmake -B build -S .
cmake --build build -j "${JOBS}"
(cd build && ctest --output-on-failure -j "${JOBS}")

# --- bench smoke (Release) --------------------------------------------------
# The default build type is already Release (see CMakeLists.txt), so the
# tier-1 build tree doubles as the bench tree. The micro-kernel bench
# exits non-zero if the fast Steiner path ever diverges from the legacy
# engine's output, so this is a correctness gate as well as a perf probe.
./build/bench_micro_kernels --smoke --json=BENCH_micro_kernels.json
echo "check.sh: OK"
