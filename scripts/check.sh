#!/usr/bin/env bash
# Tier-1 verify (configure, build, ctest) plus Release-mode bench runs
# with a perf trajectory gate; the single entry point for local checks
# and a future CI workflow.
#
# The gate compares the fresh micro-kernel medians against the committed
# baseline (bench/baselines/BENCH_micro_kernels.json; the root-level
# BENCH_*.json artifacts are gitignored) and fails on a >25% regression
# of any fast-path kernel. Set BENCH_GATE=0 to skip the gate (e.g. on
# hardware unrelated to the committed baseline); set
# BENCH_UPDATE_BASELINE=1 to copy the fresh medians over the committed
# baselines after a deliberate perf change (or a hardware move).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
BENCH_GATE="${BENCH_GATE:-1}"

# --- tier-1: configure, build, test ----------------------------------------
cmake -B build -S .
cmake --build build -j "${JOBS}"
(cd build && ctest --output-on-failure -j "${JOBS}")

# --- bench smoke (Release) --------------------------------------------------
# The default build type is already Release (see CMakeLists.txt), so the
# tier-1 build tree doubles as the bench tree. The micro-kernel bench
# exits non-zero if the fast Steiner path ever diverges from the legacy
# engine's output, so this is a correctness gate as well as a perf probe.
baseline="bench/baselines/BENCH_micro_kernels.json"

./build/bench_micro_kernels --smoke --json=BENCH_micro_kernels.json

# --- perf trajectory gate ---------------------------------------------------
# Every fast-path kernel ("*fast*" in the name) must stay within 1.25x of
# the committed baseline's median.
if [[ "${BENCH_GATE}" == "1" && -f "${baseline}" ]]; then
  parse='match($0, /"kernel":"[^"]*"/) {
           k = substr($0, RSTART + 10, RLENGTH - 11);
           if (match($0, /"median_us":[0-9.]+/)) {
             print k, substr($0, RSTART + 12, RLENGTH - 12);
           }
         }'
  awk "${parse}" "${baseline}" > /tmp/bench_baseline.$$
  awk "${parse}" BENCH_micro_kernels.json > /tmp/bench_fresh.$$
  gate_failed=0
  while read -r kernel fresh_us; do
    case "${kernel}" in
      *fast*) ;;
      *) continue ;;
    esac
    base_us="$(awk -v k="${kernel}" '$1 == k { print $2 }' \
               /tmp/bench_baseline.$$)"
    [[ -z "${base_us}" ]] && continue  # new kernel: no baseline yet
    verdict="$(awk -v f="${fresh_us}" -v b="${base_us}" \
               'BEGIN { print (f > 1.25 * b) ? "REGRESSED" : "ok" }')"
    printf 'perf gate: %-34s baseline=%12.1f fresh=%12.1f %s\n' \
      "${kernel}" "${base_us}" "${fresh_us}" "${verdict}"
    if [[ "${verdict}" == "REGRESSED" ]]; then
      gate_failed=1
    fi
  done < /tmp/bench_fresh.$$
  rm -f /tmp/bench_baseline.$$ /tmp/bench_fresh.$$
  if [[ "${gate_failed}" == "1" ]]; then
    echo "check.sh: FAIL — fast kernel regressed >25% vs committed baseline"
    exit 1
  fi
else
  echo "perf gate: skipped (BENCH_GATE=${BENCH_GATE}, baseline: ${baseline})"
fi

# --- batched view refresh ---------------------------------------------------
# Measures RefreshEngine's weight-only batched refresh against N
# independent per-view refreshes (and verifies their outputs are
# bit-identical; the binary exits non-zero on divergence). The refresh
# loop targets >=1.5x; a lower measured ratio is reported but only warns,
# since the margin is hardware-dependent.
./build/bench_view_refresh --smoke --json=BENCH_view_refresh.json
ratio="$(awk 'match($0, /"ratio":[0-9.]+/) {
                print substr($0, RSTART + 8, RLENGTH - 8) }' \
         BENCH_view_refresh.json)"
if [[ -n "${ratio}" ]] && \
   awk -v r="${ratio}" 'BEGIN { exit !(r < 1.5) }'; then
  echo "check.sh: WARNING — batched view refresh speedup ${ratio}x < 1.5x"
fi

if [[ "${BENCH_UPDATE_BASELINE:-0}" == "1" ]]; then
  mkdir -p bench/baselines
  cp BENCH_micro_kernels.json bench/baselines/BENCH_micro_kernels.json
  cp BENCH_view_refresh.json bench/baselines/BENCH_view_refresh.json
  echo "perf gate: baselines updated from this run"
fi

echo "check.sh: OK"
