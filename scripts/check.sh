#!/usr/bin/env bash
# Tier-1 verify (configure, build, ctest) plus Release-mode bench runs
# with a perf trajectory gate; the single entry point for local checks
# and the CI workflow (.github/workflows/ci.yml).
#
# The gate compares the fresh micro-kernel and view-refresh medians
# against the committed baselines (bench/baselines/BENCH_*.json; live
# bench outputs land under bench/out/, which is gitignored) and fails on
# a >25% regression of any fast-path kernel. Set BENCH_GATE=0 to skip
# the gate (e.g. on hardware unrelated to the committed baseline); set
# BENCH_UPDATE_BASELINE=1 to copy the fresh medians over the committed
# baselines after a deliberate perf change (or a hardware move).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
BENCH_GATE="${BENCH_GATE:-1}"

# --- docs consistency --------------------------------------------------------
# Relative markdown links in README/docs must resolve, and doc files
# mentioned by public headers under src/core and src/steiner must exist.
./scripts/check_docs.sh

# --- tier-1: configure, build, test ----------------------------------------
cmake -B build -S .
cmake --build build -j "${JOBS}"
# --no-tests=error: GTest being silently absent (find_package is QUIET)
# must fail the check, not green-light a run that executed zero tests.
(cd build && ctest --output-on-failure --no-tests=error -j "${JOBS}")

# --- bench smoke (Release) --------------------------------------------------
# The default build type is already Release (see CMakeLists.txt), so the
# tier-1 build tree doubles as the bench tree. The micro-kernel bench
# exits non-zero if the fast Steiner path ever diverges from the legacy
# engine's output, so this is a correctness gate as well as a perf probe.
mkdir -p bench/out

./build/bench_micro_kernels --smoke --json=bench/out/BENCH_micro_kernels.json

# --- perf trajectory gate ---------------------------------------------------
# Every gated kernel must stay within 1.25x of the committed baseline's
# median. Gated: the fast Steiner kernels ("*fast*" in
# BENCH_micro_kernels.json) and the delta re-cost refresh kernel
# ("*delta_recost*" in BENCH_view_refresh.json).
parse='match($0, /"kernel":"[^"]*"/) {
         k = substr($0, RSTART + 10, RLENGTH - 11);
         if (match($0, /"median_us":[0-9.]+/)) {
           print k, substr($0, RSTART + 12, RLENGTH - 12);
         }
       }'
gate_failed=0
run_gate() {
  local baseline="$1" fresh="$2" pattern="$3"
  if [[ "${BENCH_GATE}" != "1" || ! -f "${baseline}" ]]; then
    echo "perf gate: skipped for ${fresh} (BENCH_GATE=${BENCH_GATE}," \
         "baseline: ${baseline})"
    return 0
  fi
  awk "${parse}" "${baseline}" > /tmp/bench_baseline.$$
  awk "${parse}" "${fresh}" > /tmp/bench_fresh.$$
  while read -r kernel fresh_us; do
    case "${kernel}" in
      ${pattern}) ;;
      *) continue ;;
    esac
    base_us="$(awk -v k="${kernel}" '$1 == k { print $2 }' \
               /tmp/bench_baseline.$$)"
    [[ -z "${base_us}" ]] && continue  # new kernel: no baseline yet
    verdict="$(awk -v f="${fresh_us}" -v b="${base_us}" \
               'BEGIN { print (f > 1.25 * b) ? "REGRESSED" : "ok" }')"
    printf 'perf gate: %-34s baseline=%12.1f fresh=%12.1f %s\n' \
      "${kernel}" "${base_us}" "${fresh_us}" "${verdict}"
    if [[ "${verdict}" == "REGRESSED" ]]; then
      gate_failed=1
    fi
  done < /tmp/bench_fresh.$$
  rm -f /tmp/bench_baseline.$$ /tmp/bench_fresh.$$
}

run_gate bench/baselines/BENCH_micro_kernels.json \
         bench/out/BENCH_micro_kernels.json '*fast*'

# --- batched + delta view refresh -------------------------------------------
# Measures RefreshEngine's batched refresh against N independent per-view
# refreshes, and the sparse-feedback delta re-cost against the wholesale
# in-place Recost (verifying all outputs bit-identical; the binary exits
# non-zero on divergence). The refresh loop targets >=1.5x batched and
# >=1.1x delta; lower measured ratios are reported but only warn, since
# the margins are hardware-dependent.
./build/bench_view_refresh --smoke --json=bench/out/BENCH_view_refresh.json
ratio="$(awk 'match($0, /"kernel":"view_refresh_speedup"/) {
                if (match($0, /"ratio":[0-9.]+/))
                  print substr($0, RSTART + 8, RLENGTH - 8) }' \
         bench/out/BENCH_view_refresh.json)"
if [[ -n "${ratio}" ]] && \
   awk -v r="${ratio}" 'BEGIN { exit !(r < 1.5) }'; then
  echo "check.sh: WARNING — batched view refresh speedup ${ratio}x < 1.5x"
fi
delta_ratio="$(awk 'match($0, /"kernel":"view_refresh_delta_speedup"/) {
                      if (match($0, /"ratio":[0-9.]+/))
                        print substr($0, RSTART + 8, RLENGTH - 8) }' \
               bench/out/BENCH_view_refresh.json)"
if [[ -n "${delta_ratio}" ]] && \
   awk -v r="${delta_ratio}" 'BEGIN { exit !(r < 1.1) }'; then
  echo "check.sh: WARNING — delta re-cost speedup ${delta_ratio}x < 1.1x"
fi

relevance_ratio="$(awk 'match($0, /"kernel":"view_refresh_relevance_speedup"/) {
                          if (match($0, /"ratio":[0-9.]+/))
                            print substr($0, RSTART + 8, RLENGTH - 8) }' \
                   bench/out/BENCH_view_refresh.json)"
if [[ -n "${relevance_ratio}" ]] && \
   awk -v r="${relevance_ratio}" 'BEGIN { exit !(r < 3.0) }'; then
  echo "check.sh: WARNING — relevance-scoped refresh speedup" \
       "${relevance_ratio}x < 3.0x"
fi

run_gate bench/baselines/BENCH_view_refresh.json \
         bench/out/BENCH_view_refresh.json '*delta_recost*'

# The relevance-scoped scenario's kernels (scoped = gate on, unscoped =
# the PR 3 delta-recost baseline over the same 64-view workload).
run_gate bench/baselines/BENCH_view_refresh.json \
         bench/out/BENCH_view_refresh.json '*scoped*'

# Feedback-ack latency (async scheduler vs synchronous repair, 64 views).
# The async kernel is the interactive-path cost the scheduler exists to
# bound; the sync kernel is its baseline.
run_gate bench/baselines/BENCH_view_refresh.json \
         bench/out/BENCH_view_refresh.json '*ack*'
ack_ratio="$(awk 'match($0, /"kernel":"feedback_ack_speedup"/) {
                    if (match($0, /"ratio":[0-9.]+/))
                      print substr($0, RSTART + 8, RLENGTH - 8) }' \
             bench/out/BENCH_view_refresh.json)"
if [[ -n "${ack_ratio}" ]] && \
   awk -v r="${ack_ratio}" 'BEGIN { exit !(r < 1.5) }'; then
  echo "check.sh: WARNING — feedback-ack speedup ${ack_ratio}x < 1.5x"
fi

# --- warm restart (crash-safe persistence) -----------------------------------
# Cold boot vs snapshot warm boot (docs/persistence.md warm-restart
# contract). The binary doubles as a correctness gate: it exits non-zero
# when the restore is incomplete or the warm system's lazily recreated
# view diverges from the cold system's. warm_restart_speedup compares the
# warm boot against the *charitable* cold replay (associations assumed
# recoverable for free); it must stay >= 1.0 at every smoke scale. The
# honest no-snapshot recovery (full matcher re-bootstrap) is reported as
# warm_restart_realign_speedup and warns when the margin thins below 10x.
# The replay comparison sits near its crossover at mid scales (the text
# index rebuild dominates both paths), so < 1.25x only warns; < 0.9x — a
# warm boot clearly paying work the snapshot exists to skip — fails.
./build/bench_warm_restart --smoke --json=bench/out/BENCH_warm_restart.json
while read -r warm_ratio; do
  if awk -v r="${warm_ratio}" 'BEGIN { exit !(r < 0.9) }'; then
    echo "check.sh: FAIL — warm restart slower than cold replay boot" \
         "(${warm_ratio}x < 0.9x)"
    gate_failed=1
  elif awk -v r="${warm_ratio}" 'BEGIN { exit !(r < 1.25) }'; then
    echo "check.sh: WARNING — warm restart speedup ${warm_ratio}x < 1.25x"
  fi
done < <(awk 'match($0, /"kernel":"warm_restart_speedup"/) {
                if (match($0, /"ratio":[0-9.]+/))
                  print substr($0, RSTART + 8, RLENGTH - 8) }' \
         bench/out/BENCH_warm_restart.json)
realign_ratio="$(awk 'match($0, /"kernel":"warm_restart_realign_speedup"/) {
                        if (match($0, /"ratio":[0-9.]+/))
                          print substr($0, RSTART + 8, RLENGTH - 8) }' \
                 bench/out/BENCH_warm_restart.json)"
if [[ -n "${realign_ratio}" ]] && \
   awk -v r="${realign_ratio}" 'BEGIN { exit !(r < 10.0) }'; then
  echo "check.sh: WARNING — warm restart vs full realignment speedup" \
       "${realign_ratio}x < 10x"
fi
run_gate bench/baselines/BENCH_warm_restart.json \
         bench/out/BENCH_warm_restart.json '*boot*'
run_gate bench/baselines/BENCH_warm_restart.json \
         bench/out/BENCH_warm_restart.json '*save*'

# --- graph scale (compact layout + sharded search) ---------------------------
# Builds the 10k and 100k streaming-catalog tiers, measures bytes/source
# of the compact representation against an un-interned AoS mirror of the
# same graph, and runs the sharded top-k query mix (docs/benchmarks.md,
# "Graph scale"). Correctness gate first: the binary exits non-zero when
# compacted sharded output diverges from the uncompacted masked referee
# or the unsharded fast solver on the verified query subset, and when the
# 10k -> 100k p95 growth exceeds its in-binary ceiling. Gates: bytes/
# source and query p95 vs baseline (both lower-is-better medians), a hard
# >= 2x compact-advantage floor, and a hard sublinearity ceiling on the
# p95 growth read from the committed baseline's max_ratio (local-id mask
# compaction is what keeps the tail sub-linear; its regression is a bug,
# not a trend).
./build/bench_graph_scale --smoke --json=bench/out/BENCH_graph_scale.json
run_gate bench/baselines/BENCH_graph_scale.json \
         bench/out/BENCH_graph_scale.json '*bytes_per_source*'
run_gate bench/baselines/BENCH_graph_scale.json \
         bench/out/BENCH_graph_scale.json '*query_p95*'
while read -r compact_ratio; do
  if awk -v r="${compact_ratio}" 'BEGIN { exit !(r < 2.0) }'; then
    echo "check.sh: FAIL — compact layout advantage ${compact_ratio}x < 2x" \
         "vs legacy representation"
    gate_failed=1
  fi
done < <(awk 'match($0, /"kernel":"graph_scale_bytes_per_source[^"]*"/) {
                if (match($0, /"legacy_ratio":[0-9.]+/))
                  print substr($0, RSTART + 15, RLENGTH - 15) }' \
         bench/out/BENCH_graph_scale.json)
p95_growth="$(awk 'match($0, /"kernel":"graph_scale_p95_growth"/) {
                     if (match($0, /"ratio":[0-9.]+/))
                       print substr($0, RSTART + 8, RLENGTH - 8) }' \
              bench/out/BENCH_graph_scale.json)"
# The ceiling lives in the committed baseline (the binary embeds the same
# default and exits 2 itself when the fresh run exceeds it); like the
# legacy_ratio floor this is a correctness-trajectory gate, enforced even
# with BENCH_GATE=0.
p95_growth_max="$(awk 'match($0, /"kernel":"graph_scale_p95_growth"/) {
                        if (match($0, /"max_ratio":[0-9.]+/))
                          print substr($0, RSTART + 12, RLENGTH - 12) }' \
                  bench/baselines/BENCH_graph_scale.json 2>/dev/null || true)"
p95_growth_max="${p95_growth_max:-5.0}"
if [[ -n "${p95_growth}" ]] && \
   awk -v r="${p95_growth}" -v m="${p95_growth_max}" \
       'BEGIN { exit !(r > m) }'; then
  echo "check.sh: FAIL — query p95 grew ${p95_growth}x from 10k to 100k" \
       "sources (ceiling ${p95_growth_max}x: masked search no longer" \
       "sublinear)"
  gate_failed=1
fi

# --- fig8 scaling through 10k -------------------------------------------------
# The paper's Fig. 8 contrast (exhaustive grows linearly, view-based and
# preferential stay flat) re-measured two orders of magnitude past the
# paper via the streaming generator; the gate watches the per-source
# alignment wall time of the 10k tier.
./build/bench_fig8_scaling --smoke --json=bench/out/BENCH_fig8_scaling.json
run_gate bench/baselines/BENCH_fig8_scaling.json \
         bench/out/BENCH_fig8_scaling.json 'fig8_scaling_*_10000'

# --- concurrent serving load (YCSB-style) ------------------------------------
# Four query workers plus a feedback writer over Zipfian-skewed views
# (docs/benchmarks.md, "Concurrent serving load"). The binary is a
# correctness gate first: it exits non-zero when any worker op fails and
# exits 2 when the quiescent state diverges from the synchronous twin
# (bit-identity under concurrency). The latency gate watches the query
# p95; throughput is gated inverted below (higher is better).
./build/bench_serve_load --smoke --json=bench/out/BENCH_serve_load.json
run_gate bench/baselines/BENCH_serve_load.json \
         bench/out/BENCH_serve_load.json '*query_p95*'
if [[ "${BENCH_GATE}" == "1" && -f bench/baselines/BENCH_serve_load.json ]]
then
  base_ops="$(awk "${parse}" bench/baselines/BENCH_serve_load.json | \
              awk '$1 == "serve_load_ops_per_sec" { print $2 }')"
  fresh_ops="$(awk "${parse}" bench/out/BENCH_serve_load.json | \
               awk '$1 == "serve_load_ops_per_sec" { print $2 }')"
  if [[ -n "${base_ops}" && -n "${fresh_ops}" ]]; then
    verdict="$(awk -v f="${fresh_ops}" -v b="${base_ops}" \
               'BEGIN { print (f * 1.25 < b) ? "REGRESSED" : "ok" }')"
    printf 'perf gate: %-34s baseline=%12.1f fresh=%12.1f %s\n' \
      "serve_load_ops_per_sec (higher=ok)" "${base_ops}" "${fresh_ops}" \
      "${verdict}"
    if [[ "${verdict}" == "REGRESSED" ]]; then
      gate_failed=1
    fi
  fi
fi

# --- streaming onboarding (async structural deltas) --------------------------
# A disjoint-source registration stream acks against live query readers
# (docs/benchmarks.md, "Streaming onboarding"). The binary is a
# correctness gate first: it exits 2 when any registration fails to be
# certificate-skipped by every view, replaces a served snapshot, or the
# phase-B onboarded source never reaches the relevant view's top-k.
# Latency gates: registration ack and time-to-first-appearance (lower is
# better); throughput is gated inverted below (higher is better).
./build/bench_onboarding --smoke --json=bench/out/BENCH_onboarding.json
run_gate bench/baselines/BENCH_onboarding.json \
         bench/out/BENCH_onboarding.json '*ack_us*'
run_gate bench/baselines/BENCH_onboarding.json \
         bench/out/BENCH_onboarding.json '*first_appearance*'
if [[ "${BENCH_GATE}" == "1" && -f bench/baselines/BENCH_onboarding.json ]]
then
  base_src="$(awk "${parse}" bench/baselines/BENCH_onboarding.json | \
              awk '$1 == "onboarding_sources_per_sec" { print $2 }')"
  fresh_src="$(awk "${parse}" bench/out/BENCH_onboarding.json | \
               awk '$1 == "onboarding_sources_per_sec" { print $2 }')"
  if [[ -n "${base_src}" && -n "${fresh_src}" ]]; then
    verdict="$(awk -v f="${fresh_src}" -v b="${base_src}" \
               'BEGIN { print (f * 1.25 < b) ? "REGRESSED" : "ok" }')"
    printf 'perf gate: %-34s baseline=%12.1f fresh=%12.1f %s\n' \
      "onboarding_sources_per_sec (higher=ok)" "${base_src}" \
      "${fresh_src}" "${verdict}"
    if [[ "${verdict}" == "REGRESSED" ]]; then
      gate_failed=1
    fi
  fi
fi

if [[ "${gate_failed}" == "1" ]]; then
  echo "check.sh: FAIL — gated kernel regressed >25% vs committed baseline"
  exit 1
fi

if [[ "${BENCH_UPDATE_BASELINE:-0}" == "1" ]]; then
  mkdir -p bench/baselines
  cp bench/out/BENCH_micro_kernels.json \
     bench/baselines/BENCH_micro_kernels.json
  cp bench/out/BENCH_view_refresh.json \
     bench/baselines/BENCH_view_refresh.json
  cp bench/out/BENCH_warm_restart.json \
     bench/baselines/BENCH_warm_restart.json
  cp bench/out/BENCH_serve_load.json \
     bench/baselines/BENCH_serve_load.json
  cp bench/out/BENCH_onboarding.json \
     bench/baselines/BENCH_onboarding.json
  cp bench/out/BENCH_graph_scale.json \
     bench/baselines/BENCH_graph_scale.json
  cp bench/out/BENCH_fig8_scaling.json \
     bench/baselines/BENCH_fig8_scaling.json
  echo "perf gate: baselines updated from this run"
fi

echo "check.sh: OK"
