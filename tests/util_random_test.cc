#include "util/random.h"

#include <gtest/gtest.h>

#include <set>

namespace q::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  bool differs = false;
  for (int i = 0; i < 10; ++i) {
    if (a.NextUint64() != b.NextUint64()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(13), 13u);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, WeightedIndexRespectsZeros) {
  Rng rng(17);
  std::vector<double> weights{0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.WeightedIndex(weights), 1u);
  }
}

TEST(RngTest, WeightedIndexRoughProportions) {
  Rng rng(19);
  std::vector<double> weights{1.0, 3.0};
  int counts[2] = {0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.WeightedIndex(weights)];
  double ratio = static_cast<double>(counts[1]) / counts[0];
  EXPECT_GT(ratio, 2.4);
  EXPECT_LT(ratio, 3.7);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ForkIndependentButDeterministic) {
  Rng a(31);
  Rng b(31);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fa.NextUint64(), fb.NextUint64());
  }
}

TEST(RngTest, PickReturnsMember) {
  Rng rng(37);
  std::vector<std::string> items{"a", "b", "c"};
  for (int i = 0; i < 50; ++i) {
    const std::string& p = rng.Pick(items);
    EXPECT_TRUE(p == "a" || p == "b" || p == "c");
  }
}

}  // namespace
}  // namespace q::util
