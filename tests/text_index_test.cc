#include "text/text_index.h"

#include <gtest/gtest.h>

#include <memory>

#include "relational/catalog.h"
#include "text/similarity.h"

namespace q::text {
namespace {

using relational::AttributeDef;
using relational::Catalog;
using relational::DataSource;
using relational::RelationSchema;
using relational::Row;
using relational::Table;
using relational::Value;
using relational::ValueType;

Catalog SmallCatalog() {
  Catalog catalog;
  auto src = std::make_shared<DataSource>("go");
  auto table = std::make_shared<Table>(
      RelationSchema("go", "go_term",
                     {{"acc", ValueType::kString},
                      {"name", ValueType::kString}}));
  EXPECT_TRUE(table
                  ->AppendRow(Row{Value("GO:0005886"),
                                  Value("plasma membrane")})
                  .ok());
  EXPECT_TRUE(table
                  ->AppendRow(Row{Value("GO:0016020"), Value("membrane")})
                  .ok());
  EXPECT_TRUE(src->AddTable(table).ok());
  EXPECT_TRUE(catalog.AddSource(src).ok());
  return catalog;
}

TEST(TextIndexTest, IndexesMetadataAndValues) {
  Catalog catalog = SmallCatalog();
  TextIndex index;
  index.IndexCatalog(catalog);
  // 1 relation name + 2 attribute names + 4 distinct values.
  EXPECT_EQ(index.num_documents(), 7u);
}

TEST(TextIndexTest, FindsAttributeByTokenizedName) {
  Catalog catalog = SmallCatalog();
  TextIndex index;
  index.IndexCatalog(catalog);
  auto results = index.Search("go term", 0.1, 0);
  ASSERT_FALSE(results.empty());
  // The relation name "go_term" should be the best match.
  const Document& top = index.documents()[results[0].doc_index];
  EXPECT_EQ(top.kind, DocKind::kRelationName);
  EXPECT_EQ(top.text, "go_term");
}

TEST(TextIndexTest, FindsValues) {
  Catalog catalog = SmallCatalog();
  TextIndex index;
  index.IndexCatalog(catalog);
  auto results = index.Search("plasma membrane", 0.1, 0);
  ASSERT_FALSE(results.empty());
  const Document& top = index.documents()[results[0].doc_index];
  EXPECT_EQ(top.kind, DocKind::kValue);
  EXPECT_EQ(top.text, "plasma membrane");
  EXPECT_EQ(top.attr.attribute, "name");
  // Exact match scores 1.
  EXPECT_NEAR(results[0].score, 1.0, 1e-9);
}

TEST(TextIndexTest, PartialMatchScoresLower) {
  Catalog catalog = SmallCatalog();
  TextIndex index;
  index.IndexCatalog(catalog);
  auto results = index.Search("membrane", 0.01, 0);
  ASSERT_GE(results.size(), 2u);
  // The single-token value "membrane" beats "plasma membrane".
  const Document& top = index.documents()[results[0].doc_index];
  EXPECT_EQ(top.text, "membrane");
  EXPECT_GT(results[0].score, results[1].score);
}

TEST(TextIndexTest, MinScoreAndMaxResultsRespected) {
  Catalog catalog = SmallCatalog();
  TextIndex index;
  index.IndexCatalog(catalog);
  auto all = index.Search("membrane", 0.0, 0);
  auto capped = index.Search("membrane", 0.0, 1);
  EXPECT_GT(all.size(), capped.size());
  EXPECT_EQ(capped.size(), 1u);
  auto strict = index.Search("membrane", 0.999, 0);
  for (const auto& r : strict) EXPECT_GE(r.score, 0.999);
}

TEST(TextIndexTest, UnknownKeywordMatchesNothing) {
  Catalog catalog = SmallCatalog();
  TextIndex index;
  index.IndexCatalog(catalog);
  EXPECT_TRUE(index.Search("zzzz", 0.1, 0).empty());
  EXPECT_TRUE(index.Search("", 0.1, 0).empty());
}

TEST(TextIndexTest, ValueDocsDedupedOnReindex) {
  Catalog catalog = SmallCatalog();
  TextIndex index;
  index.IndexCatalog(catalog);
  std::size_t before = index.num_documents();
  // Re-adding the same table must not duplicate value docs... but does
  // duplicate metadata docs is also undesirable; IndexTable is expected to
  // be called once per table. Here we verify value dedup specifically.
  index.IndexTable(*catalog.FindTable("go.go_term"));
  EXPECT_EQ(index.num_documents(), before + 3);  // relation + 2 attrs only
}

TEST(SimilarityTest, FactoryAndScores) {
  auto edit = MakeSimilarity("edit_distance");
  auto ngram = MakeSimilarity("ngram");
  auto jaccard = MakeSimilarity("token_jaccard");
  ASSERT_NE(edit, nullptr);
  ASSERT_NE(ngram, nullptr);
  ASSERT_NE(jaccard, nullptr);
  EXPECT_EQ(MakeSimilarity("nope"), nullptr);

  EXPECT_DOUBLE_EQ(edit->Score("Name", "name"), 1.0);
  EXPECT_DOUBLE_EQ(jaccard->Score("go_term", "goTerm"), 1.0);
  EXPECT_GT(ngram->Score("entry_ac", "entry_acc"), 0.5);
}

}  // namespace
}  // namespace q::text
