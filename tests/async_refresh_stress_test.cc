// Concurrency stress for the async view-refresh pipeline
// (core::AsyncRefreshScheduler): feedback threads race reader threads
// over 32+ views while repair tasks run on a dedicated pool, asserting
//
//   * epoch monotonicity — a reader never sees a view's staleness epoch
//     (ViewResult::generation) or search serial go backwards;
//   * no mixed-generation reads — every snapshot a reader holds is
//     internally consistent (rows index queries from the same search);
//   * quiescent bit-identity — after DrainRefreshes, the async system's
//     published output equals a twin synchronous QSystem fed the exact
//     same feedback sequence in commit order, bit for bit.
//
// Runs under the ctest `stress` label and the ThreadSanitizer CI job.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/q_system.h"
#include "data/interpro_go.h"
#include "util/random.h"

namespace q::core {
namespace {

constexpr std::size_t kNumViews = 32;
constexpr int kFeedbackThreads = 3;
constexpr int kFeedbackRounds = 4;  // per thread
constexpr int kReaderThreads = 3;

data::InterProGoConfig SmallDataset() {
  data::InterProGoConfig config;
  config.num_go_terms = 80;
  config.num_entries = 60;
  config.num_pubs = 50;
  config.num_journals = 10;
  config.num_methods = 40;
  config.interpro2go_links = 120;
  config.entry2pub_links = 100;
  config.method2pub_links = 80;
  return config;
}

QSystemConfig BaseConfig() {
  QSystemConfig config;
  config.view.query_graph.min_similarity = 0.5;
  config.view.query_graph.max_matches_per_keyword = 6;
  // Sequential per-search solving; concurrency comes from the scheduler's
  // repair pool, which is the subsystem under stress.
  config.steiner_threads = -1;
  return config;
}

// One committed feedback event, recorded in commit order so the twin
// synchronous system can replay the identical MIRA trajectory.
struct FeedbackEvent {
  std::size_t view_id;
  steiner::SteinerTree endorsed;
};

struct AsyncHarness {
  data::InterProGoDataset dataset;
  std::unique_ptr<QSystem> q;
  std::vector<std::size_t> view_ids;

  explicit AsyncHarness(bool async) {
    dataset = data::BuildInterProGo(SmallDataset());
    QSystemConfig config = BaseConfig();
    config.async_refresh = async;
    config.async_repair_threads = async ? 3 : 0;
    q = std::make_unique<QSystem>(config);
    for (const auto& src : dataset.catalog.sources()) {
      Q_CHECK_OK(q->RegisterSource(src));
    }
    Q_CHECK_OK(q->RunInitialAlignment());
    // 32+ views cycling the trial keyword queries: repeats model distinct
    // users sharing an information need — each gets its own snapshot,
    // certificate, and repair task.
    for (std::size_t i = 0; i < kNumViews; ++i) {
      auto id = q->CreateView(
          dataset.keyword_queries[i % dataset.keyword_queries.size()]);
      Q_CHECK_OK(id.status());
      view_ids.push_back(*id);
    }
  }
};

void ExpectInternallyConsistent(const query::ViewResult& read,
                                const std::string& label) {
  ASSERT_NE(read.state, nullptr) << label;
  const query::ViewSnapshot& s = *read.state;
  // One search produced everything in the snapshot: every ranked row's
  // provenance index resolves, and trees/queries pair one to one. A read
  // mixing two generations would break these immediately.
  EXPECT_EQ(s.trees.size(), s.queries.size()) << label;
  for (std::size_t r = 0; r < s.results.rows.size(); ++r) {
    ASSERT_LT(s.results.rows[r].query_index, s.queries.size())
        << label << " row " << r;
  }
  for (std::size_t t = 0; t < s.trees.size(); ++t) {
    EXPECT_EQ(s.trees[t].edges, s.queries[t].tree.edges)
        << label << " tree/query " << t;
  }
}

void ExpectSameViewState(const query::ViewSnapshot& a,
                         const query::ViewSnapshot& b,
                         const std::string& label) {
  ASSERT_EQ(a.trees.size(), b.trees.size()) << label;
  for (std::size_t i = 0; i < a.trees.size(); ++i) {
    EXPECT_EQ(a.trees[i].edges, b.trees[i].edges) << label << " tree " << i;
    EXPECT_EQ(a.trees[i].cost, b.trees[i].cost) << label << " tree " << i;
  }
  EXPECT_EQ(a.results.columns, b.results.columns) << label;
  ASSERT_EQ(a.results.rows.size(), b.results.rows.size()) << label;
  for (std::size_t i = 0; i < a.results.rows.size(); ++i) {
    EXPECT_EQ(a.results.rows[i].cost, b.results.rows[i].cost)
        << label << " row " << i;
    EXPECT_EQ(a.results.rows[i].query_index, b.results.rows[i].query_index)
        << label << " row " << i;
    EXPECT_EQ(a.results.rows[i].values, b.results.rows[i].values)
        << label << " row " << i;
  }
}

// The tentpole stress: N feedback threads and M reader threads race over
// 32 views; repairs coalesce and interleave arbitrarily; the end state
// must be bit-identical to the synchronous twin.
TEST(AsyncRefreshStressTest, FeedbackRacesReadersAndMatchesSyncTwin) {
  AsyncHarness h(/*async=*/true);
  ASSERT_NE(h.q->async_scheduler(), nullptr);

  std::mutex log_mu;
  std::vector<FeedbackEvent> log;  // commit order == replay order
  std::atomic<bool> done{false};
  std::atomic<int> feedback_failures{0};

  std::vector<std::thread> threads;
  for (int f = 0; f < kFeedbackThreads; ++f) {
    threads.emplace_back([&, f] {
      util::Rng rng(7100 + f);
      for (int round = 0; round < kFeedbackRounds; ++round) {
        std::size_t view =
            h.view_ids[rng.Uniform(h.view_ids.size())];
        // Read a (possibly stale) snapshot and endorse one of its trees —
        // exactly the feedback-on-stale-state the async contract allows.
        query::ViewResult read = h.q->ReadView(view);
        if (read.state->trees.empty()) continue;
        steiner::SteinerTree endorsed =
            read.state->trees[rng.Uniform(read.state->trees.size())];
        // The commit lock spans the call so the recorded order is the
        // order the MIRA updates actually applied in.
        std::lock_guard<std::mutex> lock(log_mu);
        util::Status status = h.q->ApplyFeedback(view, endorsed);
        if (!status.ok()) {
          ++feedback_failures;
          continue;
        }
        log.push_back(FeedbackEvent{view, std::move(endorsed)});
      }
    });
  }
  for (int r = 0; r < kReaderThreads; ++r) {
    threads.emplace_back([&, r] {
      util::Rng rng(7200 + r);
      std::vector<std::uint64_t> last_generation(h.view_ids.size(), 0);
      std::vector<std::uint64_t> last_serial(h.view_ids.size(), 0);
      while (!done.load(std::memory_order_acquire)) {
        std::size_t i = rng.Uniform(h.view_ids.size());
        query::ViewResult read = h.q->ReadView(h.view_ids[i]);
        std::string label = "reader " + std::to_string(r) + " view " +
                            std::to_string(i);
        ExpectInternallyConsistent(read, label);
        // Epoch monotonicity: validated epochs and search serials never
        // regress for any single reader.
        EXPECT_GE(read.generation, last_generation[i]) << label;
        last_generation[i] = read.generation;
        EXPECT_GE(read.state->search_serial, last_serial[i]) << label;
        last_serial[i] = read.state->search_serial;
        if (rng.Uniform(8) == 0) {
          // WaitFresh from a reader thread: when it reports fresh, the
          // view's epoch must have caught up to the epoch at call time —
          // which is at least the one this reader last observed.
          if (h.q->WaitViewFresh(h.view_ids[i],
                                 std::chrono::milliseconds(5000))) {
            query::ViewResult fresh = h.q->ReadView(h.view_ids[i]);
            EXPECT_GE(fresh.generation, last_generation[i]) << label;
            last_generation[i] = fresh.generation;
          }
        }
      }
    });
  }
  for (int t = 0; t < kFeedbackThreads; ++t) threads[t].join();
  done.store(true, std::memory_order_release);
  for (std::size_t t = kFeedbackThreads; t < threads.size(); ++t) {
    threads[t].join();
  }
  EXPECT_EQ(feedback_failures.load(), 0);
  ASSERT_FALSE(log.empty());

  // Quiesce: every queued repair lands; all views validated at the final
  // epoch and no read is stale anymore.
  ASSERT_TRUE(h.q->DrainRefreshes().ok());
  const AsyncRefreshStats sstats = h.q->async_scheduler()->stats();
  EXPECT_EQ(sstats.feedback_rounds, log.size());
  EXPECT_GT(sstats.repairs_run, 0u);
  for (std::size_t id : h.view_ids) {
    query::ViewResult read = h.q->ReadView(id);
    EXPECT_FALSE(read.stale) << "view " << id << " stale after drain";
    EXPECT_EQ(read.generation, h.q->async_scheduler()->epoch());
  }

  // Twin synchronous system replays the committed feedback sequence: each
  // MIRA update is a deterministic function of (query graph, live
  // weights, endorsed tree), so the weight trajectories coincide and the
  // quiescent outputs must be bit-identical.
  AsyncHarness twin(/*async=*/false);
  for (const FeedbackEvent& event : log) {
    ASSERT_TRUE(twin.q->ApplyFeedback(event.view_id, event.endorsed).ok());
  }
  for (std::size_t i = 0; i < h.view_ids.size(); ++i) {
    ExpectSameViewState(*h.q->ReadView(h.view_ids[i]).state,
                        *twin.q->ReadView(twin.view_ids[i]).state,
                        "quiescent view " + std::to_string(i));
  }
}

// Feedback ack should not wait for repairs: after ApplyFeedback returns,
// affected views may still be stale — and WaitFresh is the explicit
// synchronization point that clears them.
TEST(AsyncRefreshStressTest, WaitFreshClearsStalenessAfterAck) {
  AsyncHarness h(/*async=*/true);
  // A feedback update on one view; the ack returns immediately.
  query::ViewResult read = h.q->ReadView(h.view_ids[0]);
  ASSERT_FALSE(read.state->trees.empty());
  ASSERT_TRUE(
      h.q->ApplyFeedback(h.view_ids[0], read.state->trees.back()).ok());

  // Every view becomes fresh within the deadline, and the fresh read
  // carries the post-feedback epoch.
  const std::uint64_t epoch = h.q->async_scheduler()->epoch();
  for (std::size_t id : h.view_ids) {
    ASSERT_TRUE(h.q->WaitViewFresh(id, std::chrono::milliseconds(30000)))
        << "view " << id;
    query::ViewResult fresh = h.q->ReadView(id);
    EXPECT_FALSE(fresh.stale);
    EXPECT_GE(fresh.generation, epoch);
  }
  ASSERT_TRUE(h.q->DrainRefreshes().ok());

  // And the quiescent state matches the synchronous engine's.
  AsyncHarness twin(/*async=*/false);
  ASSERT_TRUE(
      twin.q->ApplyFeedback(twin.view_ids[0], read.state->trees.back())
          .ok());
  for (std::size_t i = 0; i < h.view_ids.size(); ++i) {
    ExpectSameViewState(*h.q->ReadView(h.view_ids[i]).state,
                        *twin.q->ReadView(twin.view_ids[i]).state,
                        "view " + std::to_string(i));
  }
}

// Structural changes quiesce the pipeline: registering a new source mid
// async operation must drain repairs, rebuild snapshots serially, and
// leave every view fresh and identical to the synchronous twin.
TEST(AsyncRefreshStressTest, StructuralChangeQuiescesAndRebuilds) {
  AsyncHarness h(/*async=*/true);
  query::ViewResult read = h.q->ReadView(h.view_ids[1]);
  ASSERT_FALSE(read.state->trees.empty());
  ASSERT_TRUE(
      h.q->ApplyFeedback(h.view_ids[1], read.state->trees[0]).ok());

  // While repairs may still be in flight, register a brand-new source (a
  // clone of an existing relation) — the structural path must quiesce,
  // rebuild affected snapshots under the serving gate, and queue the
  // searches async (the registration ack no longer waits for them:
  // docs/query_engine.md, "Streaming onboarding contract").
  auto table = h.dataset.catalog.FindTable("interpro.pub");
  ASSERT_NE(table, nullptr);
  auto source = std::make_shared<relational::DataSource>("newsrc");
  auto copy = std::make_shared<relational::Table>(relational::RelationSchema(
      "newsrc", "pub", table->schema().attributes()));
  for (const auto& row : table->rows()) {
    ASSERT_TRUE(copy->AppendRow(row).ok());
  }
  ASSERT_TRUE(source->AddTable(copy).ok());
  ASSERT_TRUE(h.q->RegisterAndAlignSource(source).ok());

  // Every view converges to fresh once the queued structural searches
  // drain; a reader is never blocked meanwhile.
  for (std::size_t id : h.view_ids) {
    ASSERT_TRUE(h.q->WaitViewFresh(id, std::chrono::milliseconds(30000)))
        << "view " << id;
    EXPECT_FALSE(h.q->ReadView(id).stale);
  }
  ASSERT_TRUE(h.q->DrainRefreshes().ok());

  AsyncHarness twin(/*async=*/false);
  ASSERT_TRUE(
      twin.q->ApplyFeedback(twin.view_ids[1], read.state->trees[0]).ok());
  auto twin_source = std::make_shared<relational::DataSource>("newsrc");
  auto twin_copy =
      std::make_shared<relational::Table>(relational::RelationSchema(
          "newsrc", "pub", table->schema().attributes()));
  for (const auto& row : table->rows()) {
    ASSERT_TRUE(twin_copy->AppendRow(row).ok());
  }
  ASSERT_TRUE(twin_source->AddTable(twin_copy).ok());
  ASSERT_TRUE(twin.q->RegisterAndAlignSource(twin_source).ok());
  for (std::size_t i = 0; i < h.view_ids.size(); ++i) {
    ExpectSameViewState(*h.q->ReadView(h.view_ids[i]).state,
                        *twin.q->ReadView(twin.view_ids[i]).state,
                        "post-structural view " + std::to_string(i));
  }
}

}  // namespace
}  // namespace q::core
