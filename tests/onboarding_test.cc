// Streaming source onboarding (async structural deltas): registrations
// routed through the classify-then-repair pipeline must
//
//   * skip views whose structural certificate proves the new source
//     cannot enter their top-k neighborhood — without touching their
//     serving state at all (pointer-identical published snapshots);
//   * fall through for every view the certificate cannot clear,
//     including attachments landing exactly on the alpha-neighborhood
//     boundary (unit-tested with exact doubles, mirroring
//     relevance_gating_test.cc's slack-boundary semantics);
//   * at quiescence, serve output bit-identical to a twin QSystem that
//     rebuilds serially at every step (randomized differential).
//
// Runs under the ctest `stress` label and the ThreadSanitizer CI job.
#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/q_system.h"
#include "core/refresh_engine.h"
#include "data/onboarding.h"
#include "util/random.h"

namespace q::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// --- ClassifyStructuralRelevance boundary semantics -------------------------

steiner::RelevanceCertificate MakeStructCert(double kth, double radius,
                                             std::vector<graph::NodeId> nodes,
                                             std::vector<double> dists) {
  steiner::RelevanceCertificate cert;
  cert.valid = true;
  cert.structural_valid = true;
  cert.kth_cost = kth;
  cert.alpha_radius = radius;
  cert.alpha_nodes = std::move(nodes);
  cert.alpha_dist = std::move(dists);
  return cert;
}

TEST(ClassifyStructuralRelevanceTest, EmptyAttachmentSetAlwaysSkips) {
  // A fully disconnected registration (no FK references, no alignments)
  // skips even when the view has fewer than k answers: no old node gives
  // the new island a path into any tree.
  auto cert = MakeStructCert(kInf, 0.0, {}, {});
  auto d = ClassifyStructuralRelevance(cert, {}, 0.0);
  EXPECT_TRUE(d.skip);
  EXPECT_FALSE(d.attachment_reachable);
}

TEST(ClassifyStructuralRelevanceTest, UnfilledTopKWithAttachmentsFallsThrough) {
  // kth == +inf means the view wants more answers; any reachable
  // attachment could supply one, so distance reasoning is unavailable.
  auto cert = MakeStructCert(kInf, 0.0, {}, {});
  auto d = ClassifyStructuralRelevance(cert, {7}, 0.0);
  EXPECT_FALSE(d.skip);
  EXPECT_TRUE(d.attachment_reachable);
}

TEST(ClassifyStructuralRelevanceTest, AttachmentStrictlyBeyondKthSkips) {
  auto cert = MakeStructCert(1.0, 3.0, {5}, {2.0});
  auto d = ClassifyStructuralRelevance(cert, {5}, 0.0);
  EXPECT_TRUE(d.skip);
  EXPECT_FALSE(d.attachment_reachable);
}

TEST(ClassifyStructuralRelevanceTest, AttachmentExactlyOnTheBoundaryFallsThrough) {
  // Anchor distance == kth cost exactly: a new tree through this node
  // could tie the k-th returned cost and re-rank under the deterministic
  // tie-break, mirroring ClassifyDeltaRelevance's slack-boundary rule.
  auto cert = MakeStructCert(1.0, 3.0, {5}, {1.0});
  auto d = ClassifyStructuralRelevance(cert, {5}, 0.0);
  EXPECT_FALSE(d.skip);
  EXPECT_TRUE(d.attachment_reachable);
}

TEST(ClassifyStructuralRelevanceTest, AttachmentWithinFloatMarginFallsThrough) {
  auto cert = MakeStructCert(1.0, 3.0, {5}, {1.0 + 1e-13});
  EXPECT_FALSE(ClassifyStructuralRelevance(cert, {5}, 0.0).skip);
}

TEST(ClassifyStructuralRelevanceTest, NetDecreaseConsumesDistanceSlack) {
  auto cert = MakeStructCert(1.0, 3.0, {5}, {1.4});
  // Without a concurrent weight decrease the attachment is safely far...
  EXPECT_TRUE(ClassifyStructuralRelevance(cert, {5}, 0.0).skip);
  // ...but an outside decrease of 0.5 raises the reachable threshold to
  // 1.5 >= 1.4, so the same attachment falls through.
  EXPECT_FALSE(ClassifyStructuralRelevance(cert, {5}, 0.5).skip);
}

TEST(ClassifyStructuralRelevanceTest, OutOfBallAttachmentUsesTheRadius) {
  // Node 9 is not in the ball: all we know is its distance exceeds the
  // explored radius, which here is comfortably beyond the threshold.
  auto cert = MakeStructCert(1.0, 3.0, {5}, {2.0});
  EXPECT_TRUE(ClassifyStructuralRelevance(cert, {9}, 0.0).skip);
  // A radius exactly at the threshold proves nothing: fall through.
  auto tight = MakeStructCert(1.0, 1.0, {}, {});
  EXPECT_FALSE(ClassifyStructuralRelevance(tight, {9}, 0.0).skip);
}

TEST(ClassifyStructuralRelevanceTest, OneReachableAttachmentPoisonsTheSet) {
  auto cert = MakeStructCert(1.0, 4.0, {3, 5}, {3.5, 0.5});
  EXPECT_TRUE(ClassifyStructuralRelevance(cert, {3}, 0.0).skip);
  auto d = ClassifyStructuralRelevance(cert, {3, 5}, 0.0);
  EXPECT_FALSE(d.skip);
  EXPECT_TRUE(d.attachment_reachable);
}

// --- system-level harness ---------------------------------------------------

struct OnbHarness {
  data::OnboardingDataset dataset;
  std::unique_ptr<QSystem> q;
  std::vector<std::size_t> view_ids;

  OnbHarness(std::size_t communities, int k, bool async) {
    dataset = data::BuildOnboardingDataset(communities);
    QSystemConfig config;
    config.view.top_k.k = k;
    config.view.query_graph.min_similarity = 0.5;
    config.view.query_graph.max_matches_per_keyword = 6;
    // MAD only: the metadata matcher would align the shared "lka"/"lkb"
    // link-attribute names across communities and merge the islands.
    config.use_metadata_matcher = false;
    config.steiner_threads = -1;
    config.async_refresh = async;
    config.async_repair_threads = async ? 2 : 0;
    q = std::make_unique<QSystem>(config);
    for (const auto& src : dataset.sources) {
      Q_CHECK_OK(q->RegisterSource(src));
    }
    for (const auto& keywords : dataset.keyword_queries) {
      auto id = q->CreateView(keywords);
      Q_CHECK_OK(id.status());
      view_ids.push_back(*id);
    }
  }
};

// Served-output bit-identity. Tree costs, the unified output schema, and
// every ranked tuple must agree; tree edge *ids* are deliberately not
// compared — a skipped view keeps serving the snapshot built before the
// registration, whose keyword-overlay edges were numbered off a smaller
// base graph, so overlay ids differ from a freshly rebuilt twin's even
// when the trees are the same trees (the base-graph edge portions and
// all costs and tuples agree).
void ExpectSameViewState(const query::ViewSnapshot& a,
                         const query::ViewSnapshot& b,
                         const std::string& label) {
  ASSERT_EQ(a.trees.size(), b.trees.size()) << label;
  for (std::size_t i = 0; i < a.trees.size(); ++i) {
    EXPECT_EQ(a.trees[i].cost, b.trees[i].cost) << label << " tree " << i;
  }
  EXPECT_EQ(a.results.columns, b.results.columns) << label;
  ASSERT_EQ(a.results.rows.size(), b.results.rows.size()) << label;
  for (std::size_t i = 0; i < a.results.rows.size(); ++i) {
    EXPECT_EQ(a.results.rows[i].cost, b.results.rows[i].cost)
        << label << " row " << i;
    EXPECT_EQ(a.results.rows[i].query_index, b.results.rows[i].query_index)
        << label << " row " << i;
    EXPECT_EQ(a.results.rows[i].values, b.results.rows[i].values)
        << label << " row " << i;
  }
}

// --- certificate emission ---------------------------------------------------

TEST(OnboardingTest, CommunityViewsEmitStructuralCertificates) {
  // k=2 matches the two parallel-FK trees per community: the top-k
  // fills, so the structural half carries a finite kth cost and a real
  // anchor ball.
  OnbHarness h(/*communities=*/4, /*k=*/2, /*async=*/false);
  for (std::size_t id : h.view_ids) {
    const auto& cert = h.q->view(id).certificate();
    ASSERT_TRUE(cert.valid) << "view " << id;
    ASSERT_TRUE(cert.structural_valid) << "view " << id;
    EXPECT_EQ(h.q->view(id).trees().size(), 2u) << "view " << id;
    EXPECT_TRUE(std::isfinite(cert.kth_cost)) << "view " << id;
    EXPECT_GT(cert.alpha_radius, cert.kth_cost) << "view " << id;
    EXPECT_FALSE(cert.alpha_nodes.empty()) << "view " << id;
    EXPECT_EQ(cert.alpha_nodes.size(), cert.alpha_dist.size())
        << "view " << id;
    EXPECT_NE(cert.keyword_fingerprint, 0u) << "view " << id;
  }
}

// --- the skip path: disjoint registrations --------------------------------

TEST(OnboardingTest, DisjointSourceSkipsEveryViewPointerIdentically) {
  OnbHarness h(/*communities=*/32, /*k=*/2, /*async=*/true);
  ASSERT_TRUE(h.q->DrainRefreshes().ok());

  std::vector<query::ViewResult> before;
  for (std::size_t id : h.view_ids) before.push_back(h.q->ReadView(id));
  const auto engine_before = h.q->refresh_engine().stats();
  const auto sched_before = h.q->async_scheduler()->stats();

  ASSERT_TRUE(h.q->RegisterAndAlignSource(data::MakeDisjointSource(0)).ok());

  const auto engine_after = h.q->refresh_engine().stats();
  const auto sched_after = h.q->async_scheduler()->stats();
  EXPECT_EQ(sched_after.structural_rounds, sched_before.structural_rounds + 1);
  EXPECT_EQ(sched_after.structural_skips,
            sched_before.structural_skips + h.view_ids.size());
  EXPECT_EQ(sched_after.structural_rebuilds, sched_before.structural_rebuilds);
  EXPECT_EQ(engine_after.views_skipped_structural,
            engine_before.views_skipped_structural + h.view_ids.size());
  EXPECT_EQ(engine_after.structural_gate_checks,
            engine_before.structural_gate_checks + h.view_ids.size());
  EXPECT_EQ(engine_after.structural_gate_fallthroughs,
            engine_before.structural_gate_fallthroughs);
  EXPECT_EQ(engine_after.searches_run, engine_before.searches_run);

  // "Never touches that view" means exactly that: the published snapshot
  // is the same object, not a rebuilt equal one, and it is already fresh
  // at the post-registration epoch.
  for (std::size_t i = 0; i < h.view_ids.size(); ++i) {
    query::ViewResult now = h.q->ReadView(h.view_ids[i]);
    EXPECT_EQ(now.state.get(), before[i].state.get()) << "view " << i;
    EXPECT_FALSE(now.stale) << "view " << i;
  }
  ASSERT_TRUE(h.q->DrainRefreshes().ok());

  // The certificates were right: a forced from-scratch rebuild of every
  // view lands on bit-identical output.
  ASSERT_TRUE(h.q->RefreshAllViews().ok());
  for (std::size_t i = 0; i < h.view_ids.size(); ++i) {
    ExpectSameViewState(*h.q->ReadView(h.view_ids[i]).state,
                        *before[i].state,
                        "post-rebuild view " + std::to_string(i));
  }
}

// --- the distance path: a relevant clone far from most views --------------

TEST(OnboardingTest, RelevantSourceSkipsDistantCommunitiesOnly) {
  constexpr std::size_t kCommunities = 8;
  constexpr std::size_t kTarget = 3;
  OnbHarness h(kCommunities, /*k=*/2, /*async=*/true);
  ASSERT_TRUE(h.q->DrainRefreshes().ok());

  std::vector<query::ViewResult> before;
  for (std::size_t id : h.view_ids) before.push_back(h.q->ReadView(id));
  const auto engine_before = h.q->refresh_engine().stats();
  const auto sched_before = h.q->async_scheduler()->stats();

  ASSERT_TRUE(
      h.q->RegisterAndAlignSource(data::MakeOverlappingSource(0, kTarget))
          .ok());

  // The registration must actually have produced an association edge —
  // otherwise the other views would skip via an empty attachment set and
  // the distance rule would go untested.
  bool has_association = false;
  for (graph::EdgeId e :
       h.q->search_graph().EdgesOfKind(graph::EdgeKind::kAssociation)) {
    (void)e;
    has_association = true;
    break;
  }
  ASSERT_TRUE(has_association)
      << "MAD produced no alignment for the overlapping source";

  const auto sched_after = h.q->async_scheduler()->stats();
  const auto engine_after = h.q->refresh_engine().stats();
  EXPECT_EQ(sched_after.structural_skips,
            sched_before.structural_skips + kCommunities - 1);
  EXPECT_EQ(sched_after.structural_rebuilds,
            sched_before.structural_rebuilds + 1);
  EXPECT_GT(engine_after.structural_gate_fallthroughs,
            engine_before.structural_gate_fallthroughs);

  // Distant views: untouched, pointer-identically.
  for (std::size_t i = 0; i < h.view_ids.size(); ++i) {
    if (i == kTarget) continue;
    EXPECT_EQ(h.q->ReadView(h.view_ids[i]).state.get(),
              before[i].state.get())
        << "view " << i;
  }
  ASSERT_TRUE(
      h.q->WaitViewFresh(h.view_ids[kTarget], std::chrono::milliseconds(30000)));
  ASSERT_TRUE(h.q->DrainRefreshes().ok());

  // Quiescent bit-identity against a serial twin fed the same sequence.
  OnbHarness twin(kCommunities, /*k=*/2, /*async=*/false);
  ASSERT_TRUE(
      twin.q->RegisterAndAlignSource(data::MakeOverlappingSource(0, kTarget))
          .ok());
  for (std::size_t i = 0; i < h.view_ids.size(); ++i) {
    ExpectSameViewState(*h.q->ReadView(h.view_ids[i]).state,
                        *twin.q->ReadView(twin.view_ids[i]).state,
                        "twin view " + std::to_string(i));
  }
}

// --- first appearance: the onboarded source enters the top-k --------------

TEST(OnboardingTest, OnboardedSourceAppearsInRelevantViewTopK) {
  // k=3 leaves head-room above the two base trees, so the tree routed
  // through the onboarded table's association edge enters the ranking.
  constexpr std::size_t kTarget = 1;
  OnbHarness h(/*communities=*/4, /*k=*/3, /*async=*/true);
  ASSERT_TRUE(h.q->DrainRefreshes().ok());
  ASSERT_EQ(h.q->ReadView(h.view_ids[kTarget]).state->trees.size(), 2u);

  ASSERT_TRUE(
      h.q->RegisterAndAlignSource(data::MakeOverlappingSource(0, kTarget))
          .ok());
  ASSERT_TRUE(
      h.q->WaitViewFresh(h.view_ids[kTarget], std::chrono::milliseconds(30000)));
  ASSERT_TRUE(h.q->DrainRefreshes().ok());

  query::ViewResult fresh = h.q->ReadView(h.view_ids[kTarget]);
  EXPECT_EQ(fresh.state->trees.size(), 3u);
  // Output columns carry bare attribute names (and the onboarded
  // attribute deliberately reuses the keyword name), so appearance is
  // detected through the compiled queries' relation atoms.
  bool appears = false;
  for (const auto& query : fresh.state->queries) {
    for (const std::string& atom : query.atoms) {
      if (atom.find("osrc") != std::string::npos) appears = true;
    }
  }
  EXPECT_TRUE(appears)
      << "onboarded source joins no compiled query of the relevant view";
}

// --- randomized differential vs a from-scratch serial twin ----------------

// One recorded operation, replayable into a fresh system. Feedback is
// recorded as (view, tree index), not as the tree object: each replaying
// system endorses ITS OWN trees[index] at the matching quiescence point.
// The systems' served outputs are bit-identical there (that is what the
// differential proves step by step), but a tree object carries keyword-
// overlay edge ids from the snapshot's build epoch, which do not port
// across systems whose skipped views kept older snapshots.
struct OnbOp {
  enum Kind { kDisjoint, kOverlap, kFeedback } kind;
  std::size_t serial = 0;      // source serial for registrations
  std::size_t target = 0;      // overlap target community
  std::size_t view = 0;        // feedback view
  std::size_t tree_index = 0;  // feedback: index into the view's trees
};

void Replay(OnbHarness* sys, const std::vector<OnbOp>& ops) {
  for (const OnbOp& op : ops) {
    switch (op.kind) {
      case OnbOp::kDisjoint:
        ASSERT_TRUE(
            sys->q->RegisterAndAlignSource(data::MakeDisjointSource(op.serial))
                .ok());
        break;
      case OnbOp::kOverlap:
        ASSERT_TRUE(sys->q
                        ->RegisterAndAlignSource(
                            data::MakeOverlappingSource(op.serial, op.target))
                        .ok());
        break;
      case OnbOp::kFeedback: {
        query::ViewResult read = sys->q->ReadView(sys->view_ids[op.view]);
        ASSERT_NE(read.state, nullptr);
        ASSERT_LT(op.tree_index, read.state->trees.size());
        ASSERT_TRUE(sys->q
                        ->ApplyFeedback(sys->view_ids[op.view],
                                        read.state->trees[op.tree_index])
                        .ok());
        break;
      }
    }
  }
}

TEST(OnboardingTest, RandomizedDifferentialMatchesSerialRebuildTwin) {
  constexpr std::size_t kCommunities = 6;
  constexpr int kOps = 9;
  OnbHarness h(kCommunities, /*k=*/2, /*async=*/true);
  ASSERT_TRUE(h.q->DrainRefreshes().ok());

  util::Rng rng(20260808);
  std::vector<OnbOp> ops;
  for (int step = 0; step < kOps; ++step) {
    OnbOp op;
    switch (rng.Uniform(3)) {
      case 0:
        op.kind = OnbOp::kDisjoint;
        op.serial = ops.size();
        break;
      case 1:
        op.kind = OnbOp::kOverlap;
        op.serial = ops.size();
        op.target = rng.Uniform(kCommunities);
        break;
      default: {
        op.kind = OnbOp::kFeedback;
        op.view = rng.Uniform(kCommunities);
        // Chosen at quiescence, by index, so the twin endorses its own
        // copy of the identical tree at the same point in the sequence.
        query::ViewResult read = h.q->ReadView(h.view_ids[op.view]);
        ASSERT_NE(read.state, nullptr);
        ASSERT_FALSE(read.state->trees.empty());
        op.tree_index = rng.Uniform(read.state->trees.size());
        break;
      }
    }
    std::vector<OnbOp> single{op};
    Replay(&h, single);
    if (HasFatalFailure()) return;
    ops.push_back(std::move(op));
    ASSERT_TRUE(h.q->DrainRefreshes().ok());

    // Quiescence point: a twin built from scratch and replayed serially
    // must match every view bit for bit — including views the gate
    // skipped this round and every round before.
    OnbHarness twin(kCommunities, /*k=*/2, /*async=*/false);
    Replay(&twin, ops);
    if (HasFatalFailure()) return;
    for (std::size_t i = 0; i < h.view_ids.size(); ++i) {
      ExpectSameViewState(*h.q->ReadView(h.view_ids[i]).state,
                          *twin.q->ReadView(twin.view_ids[i]).state,
                          "step " + std::to_string(step) + " view " +
                              std::to_string(i));
    }
    if (HasFatalFailure()) return;
  }

  // The run exercised both sides of the gate.
  const auto stats = h.q->refresh_engine().stats();
  EXPECT_GT(stats.views_skipped_structural, 0u)
      << "no registration was ever structurally gated";
  EXPECT_GT(stats.structural_gate_checks, stats.views_skipped_structural);
}

}  // namespace
}  // namespace q::core
