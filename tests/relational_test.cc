#include <gtest/gtest.h>

#include <memory>

#include "relational/catalog.h"
#include "relational/schema.h"
#include "relational/table.h"
#include "relational/value.h"

namespace q::relational {
namespace {

TEST(ValueTest, TypesAndText) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Null().ToText(), "");
  EXPECT_EQ(Value(std::int64_t{42}).ToText(), "42");
  EXPECT_EQ(Value("GO:0005886").ToText(), "GO:0005886");
  EXPECT_EQ(Value(2.5).type(), ValueType::kDouble);
}

TEST(ValueTest, EqualityIsTyped) {
  EXPECT_EQ(Value(std::int64_t{1}), Value(std::int64_t{1}));
  EXPECT_NE(Value(std::int64_t{1}), Value("1"));  // typed inequality
  EXPECT_EQ(Value(std::int64_t{1}).ToText(), Value("1").ToText());
}

TEST(ValueTest, HashDistinguishesTypes) {
  EXPECT_NE(Value(std::int64_t{0}).Hash(), Value("").Hash());
  EXPECT_EQ(Value("x").Hash(), Value("x").Hash());
}

TEST(ValueTest, TotalOrder) {
  EXPECT_LT(Value::Null(), Value(std::int64_t{0}));
  EXPECT_LT(Value(std::int64_t{5}), Value("a"));  // by type tag
  EXPECT_LT(Value("a"), Value("b"));
}

RelationSchema MakeSchema() {
  return RelationSchema("src", "rel",
                        {{"id", ValueType::kString},
                         {"count", ValueType::kInt64}});
}

TEST(SchemaTest, AttributeLookup) {
  RelationSchema s = MakeSchema();
  EXPECT_EQ(s.QualifiedName(), "src.rel");
  ASSERT_TRUE(s.AttributeIndex("count").has_value());
  EXPECT_EQ(*s.AttributeIndex("count"), 1u);
  EXPECT_FALSE(s.AttributeIndex("missing").has_value());
  EXPECT_EQ(s.IdOf(0).ToString(), "src.rel.id");
}

TEST(TableTest, AppendValidatesArity) {
  Table t(MakeSchema());
  EXPECT_TRUE(t.AppendRow({Value("a"), Value(std::int64_t{1})}).ok());
  EXPECT_TRUE(t.AppendRow({Value("a")}).IsInvalidArgument());
}

TEST(TableTest, AppendValidatesTypes) {
  Table t(MakeSchema());
  EXPECT_TRUE(
      t.AppendRow({Value("a"), Value("not an int")}).IsInvalidArgument());
  // Nulls always pass.
  EXPECT_TRUE(t.AppendRow({Value::Null(), Value::Null()}).ok());
}

TEST(TableTest, DistinctValuesSkipsNulls) {
  Table t(MakeSchema());
  ASSERT_TRUE(t.AppendRow({Value("a"), Value(std::int64_t{1})}).ok());
  ASSERT_TRUE(t.AppendRow({Value("a"), Value(std::int64_t{2})}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null(), Value(std::int64_t{3})}).ok());
  EXPECT_EQ(t.DistinctValues(0).size(), 1u);
  EXPECT_EQ(t.DistinctValues(1).size(), 3u);
}

TEST(TableTest, ValueOverlapCountsDistinctShared) {
  Table a(RelationSchema("s", "a", {{"x", ValueType::kString}}));
  Table b(RelationSchema("s", "b", {{"y", ValueType::kString}}));
  for (const char* v : {"p", "q", "r"}) {
    ASSERT_TRUE(a.AppendRow({Value(v)}).ok());
  }
  for (const char* v : {"q", "r", "r", "z"}) {
    ASSERT_TRUE(b.AppendRow({Value(v)}).ok());
  }
  EXPECT_EQ(a.ValueOverlap(0, b, 0), 2u);
  EXPECT_EQ(b.ValueOverlap(0, a, 0), 2u);
}

TEST(CatalogTest, SourceAndTableLookup) {
  Catalog catalog;
  auto src = std::make_shared<DataSource>("src");
  auto table = std::make_shared<Table>(MakeSchema());
  ASSERT_TRUE(src->AddTable(table).ok());
  ASSERT_TRUE(catalog.AddSource(src).ok());

  EXPECT_NE(catalog.FindSource("src"), nullptr);
  EXPECT_EQ(catalog.FindSource("other"), nullptr);
  EXPECT_NE(catalog.FindTable("src.rel"), nullptr);
  EXPECT_EQ(catalog.FindTable("src.missing"), nullptr);
  EXPECT_EQ(catalog.FindTable("norelation"), nullptr);
  EXPECT_EQ(catalog.num_relations(), 1u);
  EXPECT_EQ(catalog.num_attributes(), 2u);
}

TEST(CatalogTest, RejectsDuplicates) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddSource(std::make_shared<DataSource>("s")).ok());
  EXPECT_TRUE(catalog.AddSource(std::make_shared<DataSource>("s"))
                  .IsAlreadyExists());

  auto src = catalog.FindSource("s");
  auto t1 = std::make_shared<Table>(
      RelationSchema("s", "r", {{"a", ValueType::kString}}));
  ASSERT_TRUE(src->AddTable(t1).ok());
  auto t2 = std::make_shared<Table>(
      RelationSchema("s", "r", {{"b", ValueType::kString}}));
  EXPECT_TRUE(src->AddTable(t2).IsAlreadyExists());
}

TEST(CatalogTest, RejectsForeignTable) {
  DataSource src("mine");
  auto t = std::make_shared<Table>(
      RelationSchema("theirs", "r", {{"a", ValueType::kString}}));
  EXPECT_TRUE(src.AddTable(t).IsInvalidArgument());
}

TEST(CatalogTest, ResolveAttribute) {
  Catalog catalog;
  auto src = std::make_shared<DataSource>("src");
  ASSERT_TRUE(src->AddTable(std::make_shared<Table>(MakeSchema())).ok());
  ASSERT_TRUE(catalog.AddSource(src).ok());

  auto ok = catalog.ResolveAttribute(AttributeId{"src", "rel", "count"});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 1u);
  EXPECT_TRUE(catalog.ResolveAttribute(AttributeId{"src", "rel", "zz"})
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(catalog.ResolveAttribute(AttributeId{"no", "rel", "id"})
                  .status()
                  .IsNotFound());
}

}  // namespace
}  // namespace q::relational
