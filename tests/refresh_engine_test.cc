// Batched view refresh (core::RefreshEngine): RefreshAll() across N views
// must be bit-identical to N independent TopKView::Refresh() calls under
// every thread-pool setting (sequential / 1 worker / hardware) and with
// the shortest-path cache disabled; and the snapshot generation must be
// bumped — with results actually changing — by weight updates, new-source
// registration, and similarity-edge addition (the stale-snapshot
// regressions).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/q_system.h"
#include "data/interpro_go.h"
#include "util/random.h"

namespace q::core {
namespace {

data::InterProGoConfig SmallDataset() {
  data::InterProGoConfig config;
  config.num_go_terms = 80;
  config.num_entries = 60;
  config.num_pubs = 50;
  config.num_journals = 10;
  config.num_methods = 40;
  config.interpro2go_links = 120;
  config.entry2pub_links = 100;
  config.method2pub_links = 80;
  return config;
}

// Full observable view state: trees plus ranked result rows.
struct ViewState {
  std::vector<steiner::SteinerTree> trees;
  std::vector<std::string> columns;
  std::vector<query::ResultRow> rows;
};

ViewState Capture(const query::TopKView& view) {
  return ViewState{view.trees(), view.results().columns,
                   view.results().rows};
}

void ExpectSameState(const ViewState& a, const ViewState& b,
                     const std::string& label) {
  ASSERT_EQ(a.trees.size(), b.trees.size()) << label;
  for (std::size_t i = 0; i < a.trees.size(); ++i) {
    EXPECT_EQ(a.trees[i].edges, b.trees[i].edges) << label << " tree " << i;
    EXPECT_EQ(a.trees[i].cost, b.trees[i].cost) << label << " tree " << i;
  }
  EXPECT_EQ(a.columns, b.columns) << label;
  ASSERT_EQ(a.rows.size(), b.rows.size()) << label;
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].cost, b.rows[i].cost) << label << " row " << i;
    EXPECT_EQ(a.rows[i].query_index, b.rows[i].query_index)
        << label << " row " << i;
    EXPECT_EQ(a.rows[i].values, b.rows[i].values) << label << " row " << i;
  }
}

struct Harness {
  data::InterProGoDataset dataset;
  std::unique_ptr<QSystem> q;
  std::vector<std::size_t> view_ids;

  explicit Harness(int steiner_threads, bool use_sp_cache,
                   std::size_t num_views = 3) {
    dataset = data::BuildInterProGo(SmallDataset());
    QSystemConfig config;
    config.steiner_threads = steiner_threads;
    config.view.top_k.use_sp_cache = use_sp_cache;
    config.view.query_graph.min_similarity = 0.5;
    config.view.query_graph.max_matches_per_keyword = 6;
    q = std::make_unique<QSystem>(config);
    for (const auto& src : dataset.catalog.sources()) {
      Q_CHECK_OK(q->RegisterSource(src));
    }
    Q_CHECK_OK(q->RunInitialAlignment());
    for (std::size_t i = 0;
         i < num_views && i < dataset.keyword_queries.size(); ++i) {
      auto id = q->CreateView(dataset.keyword_queries[i]);
      if (id.ok()) view_ids.push_back(*id);
    }
    Q_CHECK(view_ids.size() >= 2);
  }

  // Reference path: refresh every view independently (no snapshot reuse,
  // no batching) and return the states.
  std::vector<ViewState> IndependentRefresh() {
    std::vector<ViewState> states;
    for (std::size_t id : view_ids) {
      Q_CHECK_OK(q->view(id).Refresh(q->search_graph(), q->catalog(),
                                     q->text_index(), &q->cost_model(),
                                     q->weights()));
      states.push_back(Capture(q->view(id)));
    }
    return states;
  }

  std::vector<ViewState> BatchedStates() {
    std::vector<ViewState> states;
    for (std::size_t id : view_ids) states.push_back(Capture(q->view(id)));
    return states;
  }
};

class BatchedIdentityTest
    : public ::testing::TestWithParam<std::pair<int, bool>> {};

// RefreshAll == N independent Refresh calls, bit for bit, across pool and
// cache settings — after creation, after a weight-only update, and after
// a second update (exercising snapshot reuse, re-cost, and re-cost again).
TEST_P(BatchedIdentityTest, RefreshAllMatchesIndependentRefreshes) {
  auto [threads, cache] = GetParam();
  Harness h(threads, cache);
  std::string tag = "threads=" + std::to_string(threads) +
                    " cache=" + std::to_string(cache);

  // Initial state (batched path ran inside CreateView).
  auto batched = h.BatchedStates();
  auto independent = h.IndependentRefresh();
  for (std::size_t i = 0; i < batched.size(); ++i) {
    ExpectSameState(independent[i], batched[i], tag + " initial view " +
                                                    std::to_string(i));
  }

  // Two rounds of weight-only updates; each round's batched refresh must
  // match the from-scratch reference exactly.
  for (int round = 0; round < 2; ++round) {
    h.q->mutable_weights().Nudge(graph::FeatureSpace::kDefaultFeature,
                                 0.05 * (round + 1));
    ASSERT_TRUE(h.q->RefreshAllViews().ok());
    batched = h.BatchedStates();
    independent = h.IndependentRefresh();
    for (std::size_t i = 0; i < batched.size(); ++i) {
      ExpectSameState(independent[i], batched[i],
                      tag + " round " + std::to_string(round) + " view " +
                          std::to_string(i));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoolAndCacheSettings, BatchedIdentityTest,
    ::testing::Values(std::make_pair(-1, true),   // sequential
                      std::make_pair(1, true),    // 1 worker requested
                      std::make_pair(0, true),    // hardware threads
                      std::make_pair(-1, false),  // SP cache disabled
                      std::make_pair(2, false))); // pool + cache disabled

TEST(RefreshEngineTest, WeightOnlyUpdateRecostsInsteadOfRebuilding) {
  Harness h(-1, true);
  const RefreshEngine& engine = h.q->refresh_engine();
  auto before = engine.stats();
  std::uint64_t gen_before = engine.generation();

  h.q->mutable_weights().Nudge(graph::FeatureSpace::kDefaultFeature, 0.1);
  ASSERT_TRUE(h.q->RefreshAllViews().ok());

  auto after = engine.stats();
  EXPECT_GT(engine.generation(), gen_before);
  EXPECT_EQ(after.snapshots_built, before.snapshots_built);
  EXPECT_EQ(after.snapshots_recosted,
            before.snapshots_recosted + h.view_ids.size());
}

TEST(RefreshEngineTest, UnchangedStateSkipsRefreshEntirely) {
  Harness h(-1, true);
  const RefreshEngine& engine = h.q->refresh_engine();
  ASSERT_TRUE(h.q->RefreshAllViews().ok());  // settle any pending state
  auto before = engine.stats();
  std::uint64_t gen = engine.generation();
  auto states = h.BatchedStates();

  ASSERT_TRUE(h.q->RefreshAllViews().ok());
  auto after = engine.stats();
  EXPECT_EQ(engine.generation(), gen);
  EXPECT_EQ(after.searches_run, before.searches_run);
  EXPECT_EQ(after.refreshes_skipped,
            before.refreshes_skipped + h.view_ids.size());
  auto unchanged = h.BatchedStates();
  for (std::size_t i = 0; i < states.size(); ++i) {
    ExpectSameState(states[i], unchanged[i], "skip view " +
                                                 std::to_string(i));
  }
}

TEST(RefreshEngineTest, WeightUpdateChangesResults) {
  Harness h(-1, true);
  auto before = h.BatchedStates();
  ASSERT_FALSE(before[0].trees.empty());

  // Raising the shared default-feature weight re-prices every learnable
  // edge, so every tree's cost must move; serving stale snapshot costs
  // would leave them frozen.
  h.q->mutable_weights().Nudge(graph::FeatureSpace::kDefaultFeature, 0.5);
  ASSERT_TRUE(h.q->RefreshAllViews().ok());
  auto after = h.BatchedStates();
  ASSERT_FALSE(after[0].trees.empty());
  EXPECT_NE(before[0].trees[0].cost, after[0].trees[0].cost);
}

TEST(RefreshEngineTest, FeedbackBumpsGenerationAndStaysConsistent) {
  Harness h(-1, true);
  const RefreshEngine& engine = h.q->refresh_engine();
  std::uint64_t gen = engine.generation();

  // Endorse the current best tree of view 0: MIRA updates the weights and
  // QSystem refreshes all views through the engine.
  const auto& trees = h.q->view(h.view_ids[0]).trees();
  ASSERT_FALSE(trees.empty());
  ASSERT_TRUE(h.q->ApplyFeedback(h.view_ids[0], trees[0]).ok());
  EXPECT_GT(engine.generation(), gen);

  auto batched = h.BatchedStates();
  auto independent = h.IndependentRefresh();
  for (std::size_t i = 0; i < batched.size(); ++i) {
    ExpectSameState(independent[i], batched[i],
                    "feedback view " + std::to_string(i));
  }
}

TEST(RefreshEngineTest, NewSourceRegistrationRebuildsSnapshots) {
  Harness h(-1, true);
  const RefreshEngine& engine = h.q->refresh_engine();
  auto before = engine.stats();
  std::uint64_t gen = engine.generation();

  // Clone one relation as a brand-new source; registration must bump the
  // generation and force full snapshot rebuilds (the query graphs gain
  // nodes/edges), not in-place re-costs.
  auto table = h.dataset.catalog.FindTable("interpro.pub");
  ASSERT_NE(table, nullptr);
  auto source = std::make_shared<relational::DataSource>("newsrc");
  auto copy = std::make_shared<relational::Table>(relational::RelationSchema(
      "newsrc", "pub", table->schema().attributes()));
  for (const auto& row : table->rows()) {
    ASSERT_TRUE(copy->AppendRow(row).ok());
  }
  ASSERT_TRUE(source->AddTable(copy).ok());
  ASSERT_TRUE(h.q->RegisterAndAlignSource(source).ok());

  auto after = engine.stats();
  EXPECT_GT(engine.generation(), gen);
  EXPECT_GE(after.snapshots_built,
            before.snapshots_built + h.view_ids.size());

  auto batched = h.BatchedStates();
  auto independent = h.IndependentRefresh();
  for (std::size_t i = 0; i < batched.size(); ++i) {
    ExpectSameState(independent[i], batched[i],
                    "register view " + std::to_string(i));
  }
}

TEST(RefreshEngineTest, SimilarityEdgeAdditionInvalidatesSnapshots) {
  Harness h(-1, true);
  const RefreshEngine& engine = h.q->refresh_engine();
  std::uint64_t gen = engine.generation();

  // Install an association (similarity) edge between two attributes that
  // the matchers did not link; AddAssociations must invalidate every
  // snapshot so the new edge is visible to the next refresh.
  match::AlignmentCandidate candidate;
  candidate.a = relational::AttributeId{"go", "go_term", "name"};
  candidate.b = relational::AttributeId{"interpro", "method", "name"};
  candidate.matcher = "manual";
  candidate.confidence = 0.9;
  ASSERT_TRUE(h.q->AddAssociations({candidate}).ok());
  ASSERT_TRUE(h.q->RefreshAllViews().ok());
  EXPECT_GT(engine.generation(), gen);

  auto batched = h.BatchedStates();
  auto independent = h.IndependentRefresh();
  for (std::size_t i = 0; i < batched.size(); ++i) {
    ExpectSameState(independent[i], batched[i],
                    "similarity view " + std::to_string(i));
  }
}

// Feature ids present on any edge of a view's current query graph.
std::set<graph::FeatureId> ViewFeatures(const query::TopKView& view) {
  std::set<graph::FeatureId> features;
  const graph::SearchGraph& g = view.query_graph().graph;
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    for (const auto& [id, value] : g.edge_features(e).entries()) {
      features.insert(id);
    }
  }
  return features;
}

// A sparse weight-only update must classify every view as delta-recost
// (the touched feature prices some of its edges) or skip (it provably
// prices none), never as a rebuild or full re-cost — and the outputs must
// still match independent refreshes exactly. This is the ISSUE's
// observability contract: weight-only feedback => views_skipped_delta +
// views_delta_recost == num_views, zero rebuilds.
TEST(RefreshEngineTest, SparseWeightUpdateClassifiesSkipOrDelta) {
  Harness h(-1, true);
  ASSERT_TRUE(h.q->RefreshAllViews().ok());  // settle
  const RefreshEngine& engine = h.q->refresh_engine();

  // Pick a non-default feature carried by view 0 (ideally by few views,
  // so both classifications are exercised when keywords do not overlap).
  std::vector<std::set<graph::FeatureId>> presence;
  for (std::size_t id : h.view_ids) {
    presence.push_back(ViewFeatures(h.q->view(id)));
  }
  graph::FeatureId sparse = 0;
  std::size_t best_views = presence.size() + 1;
  for (graph::FeatureId f : presence[0]) {
    if (f == graph::FeatureSpace::kDefaultFeature) continue;
    std::size_t in_views = 0;
    for (const auto& p : presence) in_views += p.count(f) > 0 ? 1 : 0;
    if (in_views < best_views) {
      best_views = in_views;
      sparse = f;
    }
  }
  ASSERT_NE(sparse, graph::FeatureSpace::kDefaultFeature);
  std::size_t expect_delta = 0;
  for (const auto& p : presence) expect_delta += p.count(sparse) > 0 ? 1 : 0;
  ASSERT_GT(expect_delta, 0u);

  auto before = engine.stats();
  h.q->mutable_weights().Nudge(sparse, 0.03);
  ASSERT_TRUE(h.q->RefreshAllViews().ok());
  auto after = engine.stats();

  EXPECT_EQ(after.snapshots_built, before.snapshots_built);  // zero rebuilds
  EXPECT_EQ(after.views_full_recost, before.views_full_recost);
  // A view carrying the feature is either delta-recosted or — when its
  // relevance certificate proves the repriced edges cannot change its
  // output — skipped as irrelevant; a view not carrying it is skipped as
  // a delta-proven no-op.
  EXPECT_EQ((after.views_delta_recost + after.views_skipped_irrelevant) -
                (before.views_delta_recost + before.views_skipped_irrelevant),
            expect_delta);
  EXPECT_EQ(after.views_skipped_delta - before.views_skipped_delta,
            h.view_ids.size() - expect_delta);
  EXPECT_EQ((after.views_skipped_delta + after.views_delta_recost +
             after.views_skipped_irrelevant) -
                (before.views_skipped_delta + before.views_delta_recost +
                 before.views_skipped_irrelevant),
            h.view_ids.size());
  // Every view that took the delta-recost path repriced at least one
  // edge (that is what put it there); relevance-skipped views reprice
  // nothing by design.
  EXPECT_GE(after.edges_repriced - before.edges_repriced,
            after.views_delta_recost - before.views_delta_recost);

  auto batched = h.BatchedStates();
  auto independent = h.IndependentRefresh();
  for (std::size_t i = 0; i < batched.size(); ++i) {
    ExpectSameState(independent[i], batched[i],
                    "sparse view " + std::to_string(i));
  }
}

// A MIRA feedback step is weight-only: no view may be rebuilt, and every
// view must resolve to skip / delta-recost / full-recost.
TEST(RefreshEngineTest, FeedbackStepNeverRebuildsSnapshots) {
  Harness h(-1, true);
  ASSERT_TRUE(h.q->RefreshAllViews().ok());
  const RefreshEngine& engine = h.q->refresh_engine();
  const auto& trees = h.q->view(h.view_ids[0]).trees();
  ASSERT_FALSE(trees.empty());

  auto before = engine.stats();
  ASSERT_TRUE(h.q->ApplyFeedback(h.view_ids[0], trees[0]).ok());
  auto after = engine.stats();

  EXPECT_EQ(after.snapshots_built, before.snapshots_built);
  EXPECT_EQ((after.views_skipped_delta + after.views_delta_recost +
             after.views_full_recost + after.views_skipped_irrelevant) -
                (before.views_skipped_delta + before.views_delta_recost +
                 before.views_full_recost + before.views_skipped_irrelevant),
            h.view_ids.size());

  auto batched = h.BatchedStates();
  auto independent = h.IndependentRefresh();
  for (std::size_t i = 0; i < batched.size(); ++i) {
    ExpectSameState(independent[i], batched[i],
                    "feedback-delta view " + std::to_string(i));
  }
}

// Re-confirming an existing association mutates that edge in place (a
// feature merge); the structural journal records exactly one kEdgeMutated
// entry, so every view must take the propagation path — patch the cached
// query graph and reprice the one edge — instead of re-expanding.
TEST(RefreshEngineTest, EdgeMutationPropagatesWithoutRebuild) {
  Harness h(-1, true);
  match::AlignmentCandidate candidate;
  candidate.a = relational::AttributeId{"go", "go_term", "name"};
  candidate.b = relational::AttributeId{"interpro", "method", "name"};
  candidate.matcher = "manual";
  candidate.confidence = 0.7;
  ASSERT_TRUE(h.q->AddAssociations({candidate}).ok());  // new edge: rebuild
  ASSERT_TRUE(h.q->RefreshAllViews().ok());

  const RefreshEngine& engine = h.q->refresh_engine();
  auto before = engine.stats();
  // Same pair again, stronger vote from another matcher name: merges into
  // the existing edge (kEdgeMutated, no topology change).
  candidate.matcher = "manual2";
  candidate.confidence = 0.95;
  ASSERT_TRUE(h.q->AddAssociations({candidate}).ok());
  ASSERT_TRUE(h.q->RefreshAllViews().ok());
  auto after = engine.stats();

  EXPECT_EQ(after.snapshots_built, before.snapshots_built);
  EXPECT_GT(after.structural_edges_propagated,
            before.structural_edges_propagated);
  EXPECT_EQ((after.views_skipped_delta + after.views_delta_recost +
             after.views_full_recost + after.views_skipped_irrelevant) -
                (before.views_skipped_delta + before.views_delta_recost +
                 before.views_full_recost + before.views_skipped_irrelevant),
            h.view_ids.size());

  auto batched = h.BatchedStates();
  auto independent = h.IndependentRefresh();
  for (std::size_t i = 0; i < batched.size(); ++i) {
    ExpectSameState(independent[i], batched[i],
                    "mutation view " + std::to_string(i));
  }
}

// When the weight journal cannot reach back to a snapshot's revision
// (overflow), the engine must fall back to the wholesale in-place re-cost
// — never serve stale costs, never rebuild.
TEST(RefreshEngineTest, TruncatedJournalFallsBackToFullRecost) {
  Harness h(-1, true);
  ASSERT_TRUE(h.q->RefreshAllViews().ok());
  const RefreshEngine& engine = h.q->refresh_engine();

  h.q->mutable_weights().set_max_journal_entries(1);
  h.q->mutable_weights().Nudge(graph::FeatureSpace::kDefaultFeature, 0.02);
  h.q->mutable_weights().Nudge(graph::FeatureSpace::kDefaultFeature, 0.02);
  h.q->mutable_weights().Nudge(graph::FeatureSpace::kDefaultFeature, 0.02);

  auto before = engine.stats();
  ASSERT_TRUE(h.q->RefreshAllViews().ok());
  auto after = engine.stats();
  EXPECT_EQ(after.snapshots_built, before.snapshots_built);
  EXPECT_EQ(after.views_full_recost - before.views_full_recost,
            h.view_ids.size());
  EXPECT_EQ(after.views_delta_recost, before.views_delta_recost);

  auto batched = h.BatchedStates();
  auto independent = h.IndependentRefresh();
  for (std::size_t i = 0; i < batched.size(); ++i) {
    ExpectSameState(independent[i], batched[i],
                    "truncated view " + std::to_string(i));
  }
}

// Randomized delta sequence at the system level: sparse nudges, dense
// (default-feature) nudges, and association re-confirmations interleave;
// after every step the batched delta pipeline must match independent
// refreshes bit for bit, whatever mix of skip/delta/full/rebuild the
// classification picked.
TEST(RefreshEngineTest, RandomizedDeltaSequenceMatchesIndependent) {
  Harness h(-1, true);
  ASSERT_TRUE(h.q->RefreshAllViews().ok());
  const RefreshEngine& engine = h.q->refresh_engine();
  util::Rng rng(20260728);

  match::AlignmentCandidate candidate;
  candidate.a = relational::AttributeId{"go", "go_term", "name"};
  candidate.b = relational::AttributeId{"interpro", "method", "name"};
  double confidence = 0.55;

  auto start = engine.stats();
  for (int step = 0; step < 8; ++step) {
    switch (rng.Uniform(3)) {
      case 0: {
        std::size_t num_features = h.q->feature_space().size();
        auto f = static_cast<graph::FeatureId>(
            1 + rng.Uniform(num_features - 1));
        h.q->mutable_weights().Nudge(f, 0.01 + 0.05 * rng.UniformDouble());
        break;
      }
      case 1:
        h.q->mutable_weights().Nudge(graph::FeatureSpace::kDefaultFeature,
                                     step % 2 == 0 ? 0.02 : -0.02);
        break;
      case 2:
        candidate.matcher = "manual" + std::to_string(step);
        candidate.confidence = (confidence += 0.05);
        ASSERT_TRUE(h.q->AddAssociations({candidate}).ok());
        break;
    }
    ASSERT_TRUE(h.q->RefreshAllViews().ok());
    auto batched = h.BatchedStates();
    auto independent = h.IndependentRefresh();
    for (std::size_t i = 0; i < batched.size(); ++i) {
      ExpectSameState(independent[i], batched[i],
                      "random step " + std::to_string(step) + " view " +
                          std::to_string(i));
    }
  }
  // The sequence must have exercised the delta pipeline, not only
  // wholesale paths.
  auto end = engine.stats();
  EXPECT_GT(end.views_delta_recost + end.views_skipped_delta +
                end.views_skipped_irrelevant,
            start.views_delta_recost + start.views_skipped_delta +
                start.views_skipped_irrelevant);
}

}  // namespace
}  // namespace q::core
