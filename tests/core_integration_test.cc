#include <gtest/gtest.h>

#include <memory>

#include "core/q_system.h"
#include "data/interpro_go.h"
#include "learn/evaluation.h"

namespace q::core {
namespace {

data::InterProGoConfig SmallDataset() {
  data::InterProGoConfig config;
  config.num_go_terms = 80;
  config.num_entries = 60;
  config.num_pubs = 50;
  config.num_journals = 10;
  config.num_methods = 40;
  config.interpro2go_links = 120;
  config.entry2pub_links = 100;
  config.method2pub_links = 80;
  return config;
}

// Splits the interpro source so one table can be registered later as a
// "new source".
std::shared_ptr<relational::DataSource> ExtractTableAsSource(
    const relational::Catalog& catalog, const std::string& relation) {
  auto table = catalog.FindTable("interpro." + relation);
  EXPECT_NE(table, nullptr);
  auto source = std::make_shared<relational::DataSource>("newsrc");
  auto copy = std::make_shared<relational::Table>(relational::RelationSchema(
      "newsrc", relation, table->schema().attributes()));
  for (const auto& row : table->rows()) {
    EXPECT_TRUE(copy->AppendRow(row).ok());
  }
  EXPECT_TRUE(source->AddTable(copy).ok());
  return source;
}

TEST(QSystemTest, RegisterSourcesBuildsGraphAndIndex) {
  auto dataset = data::BuildInterProGo(SmallDataset());
  QSystem q;
  for (const auto& src : dataset.catalog.sources()) {
    ASSERT_TRUE(q.RegisterSource(src).ok());
  }
  EXPECT_EQ(q.catalog().num_relations(), 8u);
  // 8 relation nodes + 28 attribute nodes.
  EXPECT_EQ(q.search_graph().num_nodes(), 36u);
  EXPECT_GT(q.text_index().num_documents(), 36u);
  // Duplicate registration rejected.
  EXPECT_TRUE(
      q.RegisterSource(dataset.catalog.sources()[0]).IsAlreadyExists());
}

TEST(QSystemTest, InitialAlignmentRecoverGoldEdges) {
  auto dataset = data::BuildInterProGo(SmallDataset());
  QSystem q;
  for (const auto& src : dataset.catalog.sources()) {
    ASSERT_TRUE(q.RegisterSource(src).ok());
  }
  ASSERT_TRUE(q.RunInitialAlignment().ok());
  auto pr = learn::EvaluateGraphAssociations(
      q.search_graph(), q.weights(), dataset.gold_edges,
      std::numeric_limits<double>::infinity());
  // With both matchers at Y=2 the union must reach full recall (the
  // premise of Sec. 5.2.2's learning experiments).
  EXPECT_EQ(pr.recall(), 1.0);
  EXPECT_GT(pr.predicted, 8u);  // some false positives, as in the paper
}

TEST(QSystemTest, ViewOverAlignedGraphReturnsAnswers) {
  auto dataset = data::BuildInterProGo(SmallDataset());
  QSystem q;
  for (const auto& src : dataset.catalog.sources()) {
    ASSERT_TRUE(q.RegisterSource(src).ok());
  }
  ASSERT_TRUE(q.RunInitialAlignment().ok());
  auto view_id = q.CreateView({"plasma membrane", "pub title"});
  ASSERT_TRUE(view_id.ok()) << view_id.status();
  const auto& view = q.view(*view_id);
  EXPECT_FALSE(view.trees().empty());
  EXPECT_FALSE(view.results().columns.empty());
}

TEST(QSystemTest, GoldFeedbackWidensCostGap) {
  auto dataset = data::BuildInterProGo(SmallDataset());
  QSystem q;
  for (const auto& src : dataset.catalog.sources()) {
    ASSERT_TRUE(q.RegisterSource(src).ok());
  }
  ASSERT_TRUE(q.RunInitialAlignment().ok());

  feedback::SimulatedUser user(dataset.gold_edges);
  auto before =
      learn::MeasureGoldCostGap(q.search_graph(), q.weights(),
                                dataset.gold_edges);

  std::size_t applied = 0;
  for (const auto& keywords : dataset.keyword_queries) {
    auto view_id = q.CreateView(keywords);
    if (!view_id.ok()) continue;
    auto result = q.ApplyGoldFeedback(*view_id, user);
    ASSERT_TRUE(result.ok()) << result.status();
    if (*result) ++applied;
  }
  ASSERT_GT(applied, 3u);

  auto after = learn::MeasureGoldCostGap(q.search_graph(), q.weights(),
                                         dataset.gold_edges);
  // Feedback must push gold edges down relative to non-gold (Fig. 12).
  double gap_before = before.non_gold_mean - before.gold_mean;
  double gap_after = after.non_gold_mean - after.gold_mean;
  EXPECT_GT(gap_after, gap_before);
}

TEST(QSystemTest, NewSourceRegistrationAffectsView) {
  auto dataset = data::BuildInterProGo(SmallDataset());
  // Hold out the journal table; start with the remaining 7.
  QSystem q;
  auto held_out = ExtractTableAsSource(dataset.catalog, "journal");
  for (const auto& src : dataset.catalog.sources()) {
    if (src->name() == "go") {
      ASSERT_TRUE(q.RegisterSource(src).ok());
    } else {
      auto partial = std::make_shared<relational::DataSource>("interpro");
      for (const auto& t : src->tables()) {
        if (t->schema().relation() != "journal") {
          ASSERT_TRUE(partial->AddTable(t).ok());
        }
      }
      ASSERT_TRUE(q.RegisterSource(partial).ok());
    }
  }
  ASSERT_TRUE(q.RunInitialAlignment().ok());
  auto view_id = q.CreateView({"pub title", "entry name"});
  ASSERT_TRUE(view_id.ok()) << view_id.status();
  std::size_t assoc_before =
      q.search_graph().EdgesOfKind(graph::EdgeKind::kAssociation).size();

  auto stats = q.RegisterAndAlignSource(held_out);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GT(stats->matcher_calls, 0u);
  std::size_t assoc_after =
      q.search_graph().EdgesOfKind(graph::EdgeKind::kAssociation).size();
  // The new source's journal_id should have aligned with pub.journal_id.
  EXPECT_GT(assoc_after, assoc_before);
  bool found = false;
  for (graph::EdgeId e :
       q.search_graph().EdgesOfKind(graph::EdgeKind::kAssociation)) {
    const graph::EdgeView edge = q.search_graph().edge(e);
    const auto& la = q.search_graph().node(edge.u).label;
    const auto& lb = q.search_graph().node(edge.v).label;
    if ((la == "newsrc.journal.journal_id" &&
         lb == "interpro.pub.journal_id") ||
        (lb == "newsrc.journal.journal_id" &&
         la == "interpro.pub.journal_id")) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(QSystemTest, ViewBasedAndExhaustiveYieldSameViewUpdates) {
  // The Algorithm 2 guarantee: ViewBasedAligner produces the same top-k
  // *answers* as Exhaustive after registering a new source (trees beyond
  // alpha may differ; they cannot place answers in the top k).
  auto run = [&](AlignStrategy strategy) {
    auto dataset = data::BuildInterProGo(SmallDataset());
    QSystemConfig config;
    config.strategy = strategy;
    QSystem q(config);
    auto held_out = ExtractTableAsSource(dataset.catalog, "journal");
    for (const auto& src : dataset.catalog.sources()) {
      if (src->name() == "go") {
        EXPECT_TRUE(q.RegisterSource(src).ok());
      } else {
        auto partial = std::make_shared<relational::DataSource>("interpro");
        for (const auto& t : src->tables()) {
          if (t->schema().relation() != "journal") {
            EXPECT_TRUE(partial->AddTable(t).ok());
          }
        }
        EXPECT_TRUE(q.RegisterSource(partial).ok());
      }
    }
    EXPECT_TRUE(q.RunInitialAlignment().ok());
    auto view_id = q.CreateView({"pub title", "entry name"});
    EXPECT_TRUE(view_id.ok());
    EXPECT_TRUE(q.RegisterAndAlignSource(held_out).ok());
    const auto& view = q.view(*view_id);
    std::size_t k = static_cast<std::size_t>(view.config().top_k.k);
    std::vector<std::pair<double, std::string>> rows;
    for (const auto& row : view.results().rows) {
      if (rows.size() >= k) break;
      std::string values;
      for (const auto& v : row.values) values += v.ToText() + "|";
      rows.emplace_back(row.cost, std::move(values));
    }
    return rows;
  };
  auto exhaustive_rows = run(AlignStrategy::kExhaustive);
  auto view_based_rows = run(AlignStrategy::kViewBased);
  ASSERT_EQ(exhaustive_rows.size(), view_based_rows.size());
  for (std::size_t i = 0; i < exhaustive_rows.size(); ++i) {
    EXPECT_NEAR(exhaustive_rows[i].first, view_based_rows[i].first, 1e-9);
    EXPECT_EQ(exhaustive_rows[i].second, view_based_rows[i].second);
  }
}

TEST(QSystemTest, AgreementBeatsSingleMatcherJunk) {
  // With the per-matcher missing-vote penalty, an association proposed by
  // both matchers must start cheaper than junk proposed by only one, all
  // else equal.
  auto dataset = data::BuildInterProGo(SmallDataset());
  QSystem q;
  for (const auto& src : dataset.catalog.sources()) {
    ASSERT_TRUE(q.RegisterSource(src).ok());
  }
  match::AlignmentCandidate agreed_meta{
      relational::AttributeId{"interpro", "entry", "entry_ac"},
      relational::AttributeId{"interpro", "entry2pub", "entry_ac"}, 0.8,
      "metadata"};
  match::AlignmentCandidate agreed_mad = agreed_meta;
  agreed_mad.matcher = "mad";
  match::AlignmentCandidate lonely{
      relational::AttributeId{"go", "go_term", "name"},
      relational::AttributeId{"interpro", "pub", "title"}, 0.8, "metadata"};
  ASSERT_TRUE(q.AddAssociations({agreed_meta, agreed_mad, lonely}).ok());

  auto edges = q.search_graph().EdgesOfKind(graph::EdgeKind::kAssociation);
  ASSERT_EQ(edges.size(), 2u);
  double agreed_cost = -1.0;
  double lonely_cost = -1.0;
  for (graph::EdgeId e : edges) {
    double cost = q.search_graph().EdgeCost(e, q.weights());
    if (q.search_graph().edge_provenance(e).size() == 2) {
      agreed_cost = cost;
    } else {
      lonely_cost = cost;
    }
  }
  ASSERT_GT(agreed_cost, 0.0);
  ASSERT_GT(lonely_cost, 0.0);
  EXPECT_LT(agreed_cost, lonely_cost);
}

TEST(QSystemTest, InvalidAndRankingFeedback) {
  auto dataset = data::BuildInterProGo(SmallDataset());
  QSystem q;
  for (const auto& src : dataset.catalog.sources()) {
    ASSERT_TRUE(q.RegisterSource(src).ok());
  }
  ASSERT_TRUE(q.RunInitialAlignment().ok());
  auto view_id = q.CreateView({"plasma membrane", "pub title"});
  ASSERT_TRUE(view_id.ok());
  const auto& rows = q.view(*view_id).results().rows;
  if (rows.size() < 2) GTEST_SKIP() << "not enough answers to rank";

  // Find two rows from different queries.
  std::size_t other = rows.size();
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].query_index != rows[0].query_index) {
      other = i;
      break;
    }
  }
  if (other == rows.size()) GTEST_SKIP() << "single-query result set";

  // Marking the top row invalid must push its query out of first place
  // (queries are recompiled on refresh; identify them by SQL text).
  std::string bad_sql =
      q.view(*view_id).queries()[rows[0].query_index].ToSql();
  ASSERT_TRUE(q.ApplyInvalidFeedback(*view_id, 0).ok());
  const auto& after = q.view(*view_id);
  if (!after.results().rows.empty()) {
    std::string new_top_sql =
        after.queries()[after.results().rows[0].query_index].ToSql();
    EXPECT_NE(new_top_sql, bad_sql);
  }

  // Ranking feedback across identical queries is rejected.
  auto same = q.ApplyRankingFeedback(*view_id, 0, 0);
  EXPECT_FALSE(same.ok());
  // Out-of-range rows are rejected.
  EXPECT_TRUE(q.ApplyInvalidFeedback(*view_id, 1u << 20).IsOutOfRange());
  EXPECT_TRUE(q.ApplyRankingFeedback(99, 0, 1).IsInvalidArgument());
}

TEST(QSystemTest, FeedbackLogRecordsInteractions) {
  auto dataset = data::BuildInterProGo(SmallDataset());
  QSystem q;
  for (const auto& src : dataset.catalog.sources()) {
    ASSERT_TRUE(q.RegisterSource(src).ok());
  }
  ASSERT_TRUE(q.RunInitialAlignment().ok());
  feedback::SimulatedUser user(dataset.gold_edges);
  auto view_id = q.CreateView(dataset.keyword_queries[0]);
  ASSERT_TRUE(view_id.ok());
  EXPECT_TRUE(q.feedback_log().empty());
  auto result = q.ApplyGoldFeedback(*view_id, user);
  ASSERT_TRUE(result.ok());
  if (*result) {
    EXPECT_EQ(q.feedback_log().size(), 1u);
  }
}

}  // namespace
}  // namespace q::core
