// Randomized differential stress suite for local-id mask compaction
// (fast_solver.h, "Local-id mask compaction"): the compacted masked
// solver must be BYTE-IDENTICAL to the uncompacted masked referee — and
// both to the unmasked solver wherever a solve certifies — across random
// graphs, forced/banned overlays, 0-cost plateau ties, and both solver
// families. Also covers the mask-uid-keyed local half of the
// shortest-path cache (hit/miss/bypass counters, output invariance) and
// the scratch arena's shrink-after-oversized-solve policy.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/search_graph.h"
#include "steiner/fast_solver.h"
#include "steiner/shard.h"
#include "steiner/top_k.h"
#include "util/random.h"

namespace q::steiner {
namespace {

using graph::EdgeId;
using graph::NodeId;

// Connected random graph, one feature per edge. `plateau` prices every
// third edge at exactly zero — dense (dist, id) ties are the regime
// where the local-to-global tie-order isomorphism actually carries
// weight (distinct costs would mask an order bug).
struct CompGraph {
  graph::FeatureSpace space;
  graph::SearchGraph graph;
  std::unique_ptr<graph::WeightVector> weights;
  std::vector<NodeId> terminals;

  CompGraph(util::Rng* rng, std::size_t n, std::size_t m, std::size_t t,
            bool plateau) {
    for (std::size_t i = 0; i < n; ++i) {
      graph.AddNode(graph::NodeKind::kAttribute, "n" + std::to_string(i));
    }
    weights = std::make_unique<graph::WeightVector>(&space);
    auto add_edge = [&](NodeId u, NodeId v) {
      graph::Edge e;
      e.u = u;
      e.v = v;
      e.kind = graph::EdgeKind::kAssociation;
      double w = (plateau && graph.num_edges() % 3 == 0)
                     ? 0.0
                     : 0.1 + rng->UniformDouble();
      graph::FeatureVec f;
      f.Add(space.Intern("e" + std::to_string(graph.num_edges()), w), 1.0);
      e.features = std::move(f);
      graph.AddEdge(std::move(e));
    };
    for (std::size_t i = 1; i < n; ++i) {
      add_edge(static_cast<NodeId>(rng->Uniform(i)), static_cast<NodeId>(i));
    }
    while (graph.num_edges() < m) {
      auto u = static_cast<NodeId>(rng->Uniform(n));
      auto v = static_cast<NodeId>(rng->Uniform(n));
      if (u != v) add_edge(u, v);
    }
    while (terminals.size() < t) {
      auto c = static_cast<NodeId>(rng->Uniform(n));
      if (std::find(terminals.begin(), terminals.end(), c) ==
          terminals.end()) {
        terminals.push_back(c);
      }
    }
  }
};

// Path graph 0-1-...-n-1 with random costs: terminals near one end keep
// a localizer mask provably tiny relative to the graph, which the cache
// and shrink tests below rely on.
struct LineGraph {
  graph::FeatureSpace space;
  graph::SearchGraph graph;
  std::unique_ptr<graph::WeightVector> weights;

  LineGraph(util::Rng* rng, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      graph.AddNode(graph::NodeKind::kAttribute, "n" + std::to_string(i));
    }
    weights = std::make_unique<graph::WeightVector>(&space);
    for (std::size_t i = 1; i < n; ++i) {
      graph::Edge e;
      e.u = static_cast<NodeId>(i - 1);
      e.v = static_cast<NodeId>(i);
      e.kind = graph::EdgeKind::kAssociation;
      graph::FeatureVec f;
      f.Add(space.Intern("e" + std::to_string(i), 0.5 + rng->UniformDouble()),
            1.0);
      e.features = std::move(f);
      graph.AddEdge(std::move(e));
    }
  }
};

void ExpectProbesEqual(const MaskedSpProbe& a, const MaskedSpProbe& b,
                       const std::string& label) {
  EXPECT_EQ(a.dist, b.dist) << label;
  EXPECT_EQ(a.pred_node, b.pred_node) << label;
  EXPECT_EQ(a.pred_edge, b.pred_edge) << label;
  EXPECT_EQ(a.settled, b.settled) << label;
  EXPECT_EQ(a.tree_edges, b.tree_edges) << label;
  EXPECT_EQ(a.mask_min_clip, b.mask_min_clip) << label;
  EXPECT_EQ(a.complete, b.complete) << label;
}

// --- per-solve byte equality -----------------------------------------------
// One masked Dijkstra at a time, compacted vs uncompacted, over hand-cut
// BFS-ball masks (so mask shape is controlled independently of the
// localizer's radius policy) under every overlay combination.

class CompactProbeTest : public ::testing::TestWithParam<int> {};

TEST_P(CompactProbeTest, CompactedDijkstraByteEqualsReferee) {
  util::Rng rng(61000 + GetParam());
  bool plateau = GetParam() % 2 == 1;
  CompGraph g(&rng, 120, 280, 3, plateau);
  FastSteinerEngine engine(g.graph, *g.weights, /*use_cache=*/false);
  SnapshotPin pin = engine.Pin();
  const CsrGraph& csr = *pin.csr;

  for (int round = 0; round < 6; ++round) {
    // BFS ball by hops around a random source: always contains the
    // source, usually a proper subset, occasionally (deep ball) most of
    // the graph — both regimes must agree.
    auto source = static_cast<std::uint32_t>(rng.Uniform(g.graph.num_nodes()));
    std::size_t depth = 1 + rng.Uniform(4);
    ShardMask mask;
    mask.in_mask.assign(g.graph.num_nodes(), 0);
    {
      std::deque<std::pair<std::uint32_t, std::size_t>> q;
      q.emplace_back(source, 0);
      mask.in_mask[source] = 1;
      while (!q.empty()) {
        auto [u, d] = q.front();
        q.pop_front();
        if (d == depth) continue;
        for (std::uint32_t a = csr.offsets[u]; a < csr.offsets[u + 1]; ++a) {
          std::uint32_t to = csr.arc_head[a];
          if (!mask.in_mask[to]) {
            mask.in_mask[to] = 1;
            q.emplace_back(to, d + 1);
          }
        }
      }
    }
    for (std::uint32_t v = 0; v < g.graph.num_nodes(); ++v) {
      if (mask.in_mask[v]) mask.nodes.push_back(v);
    }
    mask.BuildCompact(csr);
    ASSERT_TRUE(mask.HasCompact());

    // Distinct targets, in or out of the mask.
    std::vector<NodeId> targets;
    while (targets.size() < 3) {
      auto c = static_cast<NodeId>(rng.Uniform(g.graph.num_nodes()));
      if (std::find(targets.begin(), targets.end(), c) == targets.end()) {
        targets.push_back(c);
      }
    }

    std::vector<EdgeId> banned;
    std::vector<EdgeId> forced;
    for (int i = 0; i < 3; ++i) {
      banned.push_back(
          static_cast<EdgeId>(rng.Uniform(g.graph.num_edges())));
    }
    forced.push_back(static_cast<EdgeId>(rng.Uniform(g.graph.num_edges())));
    std::sort(banned.begin(), banned.end());
    banned.erase(std::unique(banned.begin(), banned.end()), banned.end());

    MaskView referee;
    referee.in_mask = &mask.in_mask;
    referee.nodes = &mask.nodes;
    MaskView compacted = referee;
    compacted.compact = &mask;

    struct Overlay {
      std::vector<EdgeId> forced;
      std::vector<EdgeId> banned;
    };
    const Overlay overlays[] = {
        {{}, {}}, {{}, banned}, {forced, {}}, {forced, banned}};
    for (const Overlay& o : overlays) {
      for (bool stop : {false, true}) {
        MaskedSpProbe a = ComputeMaskedSpTreeForTest(
            csr, compacted, source, targets, stop, o.forced, o.banned);
        MaskedSpProbe b = ComputeMaskedSpTreeForTest(
            csr, referee, source, targets, stop, o.forced, o.banned);
        ExpectProbesEqual(
            a, b,
            "seed " + std::to_string(GetParam()) + " round " +
                std::to_string(round) + (plateau ? " plateau" : "") +
                " forced=" + std::to_string(o.forced.size()) + " banned=" +
                std::to_string(o.banned.size()) + (stop ? " stop" : ""));
      }
    }
    mask = ShardMask{};
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, CompactProbeTest,
                         ::testing::Range(0, 10));

// --- engine-level overlay walk ---------------------------------------------
// The ShardedOverlayDifferentialTest walk, three-way: compacted masked,
// uncompacted masked (referee), and unmasked must agree at every Lawler
// step of the best tree's edge walk. Uncached, so every solve's clip
// certificate is computed fresh on both sides of the comparison.

class CompactOverlayTest : public ::testing::TestWithParam<int> {};

TEST_P(CompactOverlayTest, MaskedOverlaySolvesMatchAcrossPaths) {
  util::Rng rng(62000 + GetParam());
  bool plateau = GetParam() % 2 == 1;
  CompGraph g(&rng, 30, 70, 3, plateau);
  FastSteinerEngine engine(g.graph, *g.weights, /*use_cache=*/false);
  SnapshotPin pin = engine.Pin();
  TerminalLocalizer localizer(pin.csr, engine.Shards(1), g.terminals);

  auto solve_sharded = [&](const std::vector<EdgeId>& forced,
                           const std::vector<EdgeId>& banned, bool kmb,
                           bool compact) -> std::optional<SteinerTree> {
    for (;;) {
      TerminalLocalizer::Snapshot snap = localizer.Acquire();
      if (snap.mask->covers_all) {
        return kmb ? engine.SolveKmb(pin, g.terminals, forced, banned)
                   : engine.SolveExact(pin, g.terminals, forced, banned);
      }
      MaskView view;
      view.in_mask = &snap.mask->in_mask;
      view.nodes = &snap.mask->nodes;
      view.compact = compact ? snap.mask.get() : nullptr;
      view.r_proof = snap.r_proof;
      view.epoch = snap.epoch;
      MaskedOutcome outcome;
      auto tree = kmb ? engine.SolveKmbMasked(pin, g.terminals, forced,
                                              banned, view, &outcome)
                      : engine.SolveExactMasked(pin, g.terminals, forced,
                                                banned, view, &outcome);
      if (outcome == MaskedOutcome::kOk) return tree;
      localizer.Escalate(snap.epoch);
    }
  };

  auto base = engine.SolveExact(pin, g.terminals, {}, {});
  ASSERT_TRUE(base.has_value());
  std::vector<EdgeId> forced;
  std::vector<EdgeId> banned;
  for (EdgeId e : base->edges) {
    banned.assign(1, e);
    for (bool kmb : {false, true}) {
      std::string label = std::string(kmb ? "kmb" : "exact") + " edge " +
                          std::to_string(e);
      auto unmasked = kmb
                          ? engine.SolveKmb(pin, g.terminals, forced, banned)
                          : engine.SolveExact(pin, g.terminals, forced,
                                              banned);
      auto compacted = solve_sharded(forced, banned, kmb, /*compact=*/true);
      auto referee = solve_sharded(forced, banned, kmb, /*compact=*/false);
      ASSERT_EQ(unmasked.has_value(), compacted.has_value()) << label;
      ASSERT_EQ(unmasked.has_value(), referee.has_value()) << label;
      if (unmasked.has_value()) {
        EXPECT_EQ(unmasked->edges, compacted->edges) << label;
        EXPECT_EQ(unmasked->cost, compacted->cost) << label;
        EXPECT_EQ(unmasked->edges, referee->edges) << label;
        EXPECT_EQ(unmasked->cost, referee->cost) << label;
      }
    }
    forced.push_back(e);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, CompactOverlayTest,
                         ::testing::Range(0, 6));

// --- enumeration-level three-way -------------------------------------------

class CompactEnumerationTest : public ::testing::TestWithParam<int> {};

TEST_P(CompactEnumerationTest, CompactedTopKBitIdenticalToRefereeAndPlain) {
  util::Rng rng(63000 + GetParam());
  bool plateau = GetParam() % 2 == 1;
  CompGraph g(&rng, 40 + rng.Uniform(40), 90 + rng.Uniform(80),
              3 + rng.Uniform(2), plateau);
  for (bool approximate : {false, true}) {
    for (std::uint32_t target : {1u, 8u}) {
      TopKConfig plain;
      plain.k = 5;
      plain.approximate = approximate;
      TopKConfig compacted = plain;
      compacted.sharded.enabled = true;
      compacted.sharded.target_shard_nodes = target;
      TopKConfig referee = compacted;
      referee.sharded.compact_local_ids = false;
      RelevanceCertificate plain_cert;
      RelevanceCertificate compact_cert;
      RelevanceCertificate referee_cert;
      auto a = TopKSteinerTrees(g.graph, *g.weights, g.terminals, plain,
                                /*shared_engine=*/nullptr, &plain_cert);
      auto b = TopKSteinerTrees(g.graph, *g.weights, g.terminals, compacted,
                                /*shared_engine=*/nullptr, &compact_cert);
      auto c = TopKSteinerTrees(g.graph, *g.weights, g.terminals, referee,
                                /*shared_engine=*/nullptr, &referee_cert);
      std::string label = std::string(approximate ? "kmb" : "exact") +
                          " target " + std::to_string(target) +
                          (plateau ? " plateau" : "");
      ASSERT_EQ(a.size(), b.size()) << label;
      ASSERT_EQ(a.size(), c.size()) << label;
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].edges, b[i].edges) << label << " tree " << i;
        EXPECT_EQ(a[i].cost, b[i].cost) << label << " tree " << i;
        EXPECT_EQ(a[i].edges, c[i].edges) << label << " tree " << i;
        EXPECT_EQ(a[i].cost, c[i].cost) << label << " tree " << i;
      }
      EXPECT_EQ(plain_cert.valid, compact_cert.valid) << label;
      EXPECT_EQ(plain_cert.edges, compact_cert.edges) << label;
      EXPECT_EQ(plain_cert.gap, compact_cert.gap) << label;
      EXPECT_EQ(plain_cert.valid, referee_cert.valid) << label;
      EXPECT_EQ(plain_cert.edges, referee_cert.edges) << label;
      EXPECT_EQ(plain_cert.gap, referee_cert.gap) << label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, CompactEnumerationTest,
                         ::testing::Range(0, 8));

// --- local cache coherence and counters ------------------------------------
// Compacted masked solves share mask-uid-keyed local trees; repeating a
// solve must hit the local cache without changing output, and the
// uncompacted referee path must bypass (and count that it bypassed).

TEST(LocalCacheTest, CompactedSolvesHitLocalCacheRefereeBypasses) {
  util::Rng rng(64001);
  LineGraph g(&rng, 600);
  std::vector<NodeId> terminals = {0, 5};
  FastSteinerEngine engine(g.graph, *g.weights, /*use_cache=*/true);
  SnapshotPin pin = engine.Pin();
  TerminalLocalizer localizer(pin.csr, engine.Shards(16), terminals);

  TerminalLocalizer::Snapshot snap = localizer.Acquire();
  ASSERT_FALSE(snap.mask->covers_all)
      << "line-graph mask unexpectedly spans the graph";
  ASSERT_TRUE(snap.mask->HasCompact());
  MaskView compacted;
  compacted.in_mask = &snap.mask->in_mask;
  compacted.nodes = &snap.mask->nodes;
  compacted.compact = snap.mask.get();
  compacted.r_proof = snap.r_proof;
  compacted.epoch = snap.epoch;
  MaskView referee = compacted;
  referee.compact = nullptr;

  MaskedOutcome outcome;
  auto first =
      engine.SolveKmbMasked(pin, terminals, {}, {}, compacted, &outcome);
  ASSERT_EQ(outcome, MaskedOutcome::kOk);
  ASSERT_TRUE(first.has_value());
  FastSolveStats after_first = engine.stats();
  EXPECT_GT(after_first.sp_local_misses, 0u);
  EXPECT_GT(after_first.sp_local_entries, 0u);
  EXPECT_EQ(after_first.masked_bypasses, 0u);

  auto second =
      engine.SolveKmbMasked(pin, terminals, {}, {}, compacted, &outcome);
  ASSERT_EQ(outcome, MaskedOutcome::kOk);
  ASSERT_TRUE(second.has_value());
  FastSolveStats after_second = engine.stats();
  EXPECT_GT(after_second.sp_local_hits, after_first.sp_local_hits);
  EXPECT_EQ(after_second.sp_local_misses, after_first.sp_local_misses);
  EXPECT_EQ(second->edges, first->edges);
  EXPECT_EQ(second->cost, first->cost);

  // Referee path: no local-cache traffic, one counted bypass per solve,
  // identical output.
  auto bypass =
      engine.SolveKmbMasked(pin, terminals, {}, {}, referee, &outcome);
  ASSERT_EQ(outcome, MaskedOutcome::kOk);
  ASSERT_TRUE(bypass.has_value());
  FastSolveStats after_bypass = engine.stats();
  EXPECT_GT(after_bypass.masked_bypasses, 0u);
  EXPECT_EQ(after_bypass.sp_local_hits, after_second.sp_local_hits);
  EXPECT_EQ(after_bypass.sp_local_misses, after_second.sp_local_misses);
  EXPECT_EQ(bypass->edges, first->edges);
  EXPECT_EQ(bypass->cost, first->cost);

  // And the unmasked solver agrees with all of the above.
  auto unmasked = engine.SolveKmb(pin, terminals, {}, {});
  ASSERT_TRUE(unmasked.has_value());
  EXPECT_EQ(unmasked->edges, first->edges);
  EXPECT_EQ(unmasked->cost, first->cost);
}

// --- scratch shrink policy --------------------------------------------------
// One whole-graph solve grows the thread's scratch arena to graph size; a
// sustained streak of small compacted masked solves must then release the
// oversized capacity (fast_solver.cc, SolverScratch::NoteSolveExtent)
// instead of pinning tens of MB per serving thread forever.

TEST(ScratchShrinkTest, SmallSolveStreakReleasesOversizedScratch) {
  util::Rng rng(64002);
  const std::size_t n = 24000;  // above the shrink policy's floor (1 << 14)
  LineGraph g(&rng, n);
  FastSteinerEngine engine(g.graph, *g.weights, /*use_cache=*/true);
  SnapshotPin pin = engine.Pin();

  // Whole-graph solve: scratch capacity reaches n nodes.
  auto big = engine.SolveKmb(pin, {0, static_cast<NodeId>(n - 1)}, {}, {});
  ASSERT_TRUE(big.has_value());
  std::size_t oversized = ThreadScratchBytes();
  ASSERT_GT(oversized, 0u);

  std::vector<NodeId> terminals = {0, 5};
  TerminalLocalizer localizer(pin.csr, engine.Shards(16), terminals);
  TerminalLocalizer::Snapshot snap = localizer.Acquire();
  ASSERT_FALSE(snap.mask->covers_all);
  ASSERT_TRUE(snap.mask->HasCompact());
  ASSERT_LT(snap.mask->nodes.size(), n / 4)
      << "mask too large to qualify as a small-solve streak";
  MaskView view;
  view.in_mask = &snap.mask->in_mask;
  view.nodes = &snap.mask->nodes;
  view.compact = snap.mask.get();
  view.r_proof = snap.r_proof;
  view.epoch = snap.epoch;

  for (int i = 0; i < 20; ++i) {
    MaskedOutcome outcome;
    auto tree = engine.SolveKmbMasked(pin, terminals, {}, {}, view, &outcome);
    ASSERT_EQ(outcome, MaskedOutcome::kOk) << "solve " << i;
    ASSERT_TRUE(tree.has_value()) << "solve " << i;
  }
  std::size_t shrunk = ThreadScratchBytes();
  EXPECT_LT(shrunk, oversized / 2)
      << "scratch did not release oversized capacity after a streak of "
         "small masked solves";

  // The arena must still serve a whole-graph solve correctly after
  // shrinking (regrow path).
  auto regrown =
      engine.SolveKmb(pin, {0, static_cast<NodeId>(n - 1)}, {}, {});
  ASSERT_TRUE(regrown.has_value());
  EXPECT_EQ(regrown->edges, big->edges);
  EXPECT_EQ(regrown->cost, big->cost);
}

}  // namespace
}  // namespace q::steiner
