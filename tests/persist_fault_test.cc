// Fault-injection harness for the persistence layer (docs/persistence.md):
// kill the save at every operation of the atomic-write sequence, then
// truncate, bit-flip, and tear the snapshot file on reopen. The contract
// under test: a crashed save leaves either the previous snapshot or no
// snapshot (never a mix), and a damaged snapshot degrades per the recovery
// ladder — never a crash, never UB.
//
// Seed: Q_PERSIST_FAULT_SEED in the environment overrides the default, so
// scripts/crash_inject.sh can sweep many randomized torn-write shapes.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/q_system.h"
#include "data/interpro_go.h"
#include "feedback/simulated_user.h"
#include "persist/format.h"
#include "persist/snapshot.h"
#include "util/env.h"
#include "util/random.h"

namespace q::persist {
namespace {

std::uint64_t TestSeed() {
  const char* s = std::getenv("Q_PERSIST_FAULT_SEED");
  return s != nullptr ? std::strtoull(s, nullptr, 10) : 77001ull;
}

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "persist_fault_" + name + "_" +
                    std::to_string(::getpid());
  (void)util::DefaultEnv()->RemoveFile(SnapshotFilePath(dir));
  (void)util::DefaultEnv()->RemoveFile(SnapshotFilePath(dir) + ".tmp");
  return dir;
}

data::InterProGoConfig TinyDataset() {
  data::InterProGoConfig config;
  config.num_go_terms = 30;
  config.num_entries = 24;
  config.num_pubs = 20;
  config.num_journals = 5;
  config.num_methods = 16;
  config.interpro2go_links = 45;
  config.entry2pub_links = 40;
  config.method2pub_links = 30;
  return config;
}

struct Fixture {
  data::InterProGoDataset dataset;
  std::unique_ptr<core::QSystem> q;
};

Fixture BuildTrainedSystem(std::size_t feedback_rounds = 2) {
  Fixture f;
  f.dataset = data::BuildInterProGo(TinyDataset());
  f.q = std::make_unique<core::QSystem>();
  for (const auto& src : f.dataset.catalog.sources()) {
    EXPECT_TRUE(f.q->RegisterSource(src).ok());
  }
  EXPECT_TRUE(f.q->RunInitialAlignment().ok());
  feedback::SimulatedUser user(f.dataset.gold_edges);
  for (std::size_t i = 0;
       i < feedback_rounds && i < f.dataset.keyword_queries.size(); ++i) {
    auto view_id = f.q->CreateView(f.dataset.keyword_queries[i]);
    if (!view_id.ok()) continue;
    EXPECT_TRUE(f.q->ApplyGoldFeedback(*view_id, user).ok());
  }
  return f;
}

// Cheap, collision-resistant-enough identity of a system's durable core:
// enough to tell state A from state B and from any half-written mix.
struct Fingerprint {
  std::size_t relations = 0;
  std::size_t nodes = 0;
  std::size_t edges = 0;
  std::size_t associations = 0;
  std::uint64_t graph_revision = 0;
  std::uint64_t weight_revision = 0;
  std::uint64_t next_sequence = 0;
  std::vector<double> weights;

  bool operator==(const Fingerprint& o) const {
    return relations == o.relations && nodes == o.nodes && edges == o.edges &&
           associations == o.associations &&
           graph_revision == o.graph_revision &&
           weight_revision == o.weight_revision &&
           next_sequence == o.next_sequence && weights == o.weights;
  }
  bool operator!=(const Fingerprint& o) const { return !(*this == o); }
};

Fingerprint FingerprintOf(const core::QSystem& q) {
  Fingerprint fp;
  fp.relations = q.catalog().num_relations();
  fp.nodes = q.search_graph().num_nodes();
  fp.edges = q.search_graph().num_edges();
  fp.associations =
      q.search_graph().EdgesOfKind(graph::EdgeKind::kAssociation).size();
  fp.graph_revision = q.search_graph().revision();
  fp.weight_revision = q.weights().revision();
  fp.next_sequence = q.feedback_log().next_sequence();
  fp.weights = q.weights().values();
  return fp;
}

std::string Describe(const Fingerprint& fp) {
  return "relations=" + std::to_string(fp.relations) +
         " nodes=" + std::to_string(fp.nodes) +
         " edges=" + std::to_string(fp.edges) +
         " assoc=" + std::to_string(fp.associations) +
         " grev=" + std::to_string(fp.graph_revision) +
         " wrev=" + std::to_string(fp.weight_revision) +
         " seq=" + std::to_string(fp.next_sequence);
}

// Opens whatever is in `dir` and returns its fingerprint; fails the test
// on anything other than a clean, complete load.
Fingerprint ReopenComplete(const std::string& dir) {
  SnapshotLoadReport report;
  auto q = core::QSystem::OpenFromSnapshot(dir, core::QSystemConfig(), nullptr,
                                           &report);
  EXPECT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(report.complete()) << report.Summary();
  return FingerprintOf(**q);
}

// Counts the mutating env ops one full save issues (the sweep range).
std::uint64_t OpsPerSave(core::QSystem& q) {
  std::string dir = FreshDir("probe");
  util::FaultyEnv faulty(util::DefaultEnv(), TestSeed());
  EXPECT_TRUE(q.SaveSnapshot(dir, &faulty).ok());
  EXPECT_GT(faulty.ops_issued(), 4u);
  return faulty.ops_issued();
}

// --- FaultyEnv semantics ----------------------------------------------------

TEST(FaultyEnvTest, KillPointFailsThatOpAndEveryLaterOne) {
  util::FaultyEnv faulty(util::DefaultEnv(), TestSeed());
  std::string dir = FreshDir("env_sema");
  ASSERT_TRUE(util::DefaultEnv()->CreateDirs(dir).ok());
  std::string path = dir + "/probe";

  faulty.set_kill_after(1);
  EXPECT_TRUE(faulty.WriteFile(path, "first").ok());     // op 0: passes
  EXPECT_FALSE(faulty.WriteFile(path, "second").ok());   // op 1: killed
  EXPECT_FALSE(faulty.SyncFile(path).ok());              // op 2: still dead
  EXPECT_FALSE(faulty.RenameFile(path, path + "x").ok());  // op 3: still dead
  EXPECT_EQ(faulty.ops_issued(), 4u);

  // Reads pass through so the test can inspect the wreckage.
  auto contents = faulty.ReadFile(path);
  ASSERT_TRUE(contents.ok());
  // The op at the kill point tears: a strict prefix may have landed, but
  // never the full payload followed by more.
  EXPECT_TRUE(contents->size() <= 6u);
  EXPECT_TRUE(*contents == "first" ||
              std::string("second").rfind(*contents, 0) == 0)
      << "unexpected contents: " << *contents;
}

TEST(FaultyEnvTest, ResetRearmsWithoutReplayingTornPrefixes) {
  util::FaultyEnv faulty(util::DefaultEnv(), TestSeed());
  std::string dir = FreshDir("env_reset");
  ASSERT_TRUE(util::DefaultEnv()->CreateDirs(dir).ok());
  faulty.set_kill_after(0);
  EXPECT_FALSE(faulty.WriteFile(dir + "/f", "data").ok());
  faulty.Reset();
  EXPECT_EQ(faulty.ops_issued(), 0u);
  EXPECT_TRUE(faulty.WriteFile(dir + "/f", "data").ok());
}

// --- kill-point sweeps --------------------------------------------------------

TEST(CrashSafetyTest, FirstSaveKilledAtEveryPointLeavesNoSnapshotOrAWholeOne) {
  Fixture f = BuildTrainedSystem();
  const Fingerprint want = FingerprintOf(*f.q);
  const std::uint64_t num_ops = OpsPerSave(*f.q);

  for (std::uint64_t kill = 0; kill < num_ops; ++kill) {
    SCOPED_TRACE("kill point " + std::to_string(kill));
    std::string dir = FreshDir("first_save_k" + std::to_string(kill));
    util::FaultyEnv faulty(util::DefaultEnv(), TestSeed() + kill);
    faulty.set_kill_after(kill);
    util::Status save = f.q->SaveSnapshot(dir, &faulty);
    EXPECT_FALSE(save.ok());

    // Atomicity: either no snapshot at all, or the complete new one (the
    // crash landed after the rename). Never a partial file at the
    // published path.
    SnapshotLoadReport report;
    auto reopened = core::QSystem::OpenFromSnapshot(
        dir, core::QSystemConfig(), nullptr, &report);
    if (reopened.ok()) {
      EXPECT_TRUE(report.complete()) << report.Summary();
      EXPECT_EQ(FingerprintOf(**reopened), want);
    } else {
      EXPECT_TRUE(reopened.status().IsNotFound()) << reopened.status();
    }

    // Recovery: a later clean save must succeed over the wreckage (torn
    // tmp files and all) and be fully loadable.
    ASSERT_TRUE(f.q->SaveSnapshot(dir).ok());
    EXPECT_EQ(ReopenComplete(dir), want);
  }
}

TEST(CrashSafetyTest, OverwriteKilledAtEveryPointKeepsOldOrNewNeverAMix) {
  Fixture f = BuildTrainedSystem(/*feedback_rounds=*/1);
  const std::uint64_t num_ops = OpsPerSave(*f.q);
  const Fingerprint state_a = FingerprintOf(*f.q);

  // Capture state A's snapshot bytes before advancing the system, so each
  // sweep iteration can reinstall "the previous snapshot" verbatim.
  std::string a_dir = FreshDir("overwrite_a");
  ASSERT_TRUE(f.q->SaveSnapshot(a_dir).ok());
  std::string a_file;
  {
    auto bytes = util::DefaultEnv()->ReadFile(SnapshotFilePath(a_dir));
    ASSERT_TRUE(bytes.ok()) << bytes.status();
    a_file = *std::move(bytes);
  }

  // Advance to state B.
  feedback::SimulatedUser user(f.dataset.gold_edges);
  auto view_id = f.q->CreateView(f.dataset.keyword_queries[1]);
  ASSERT_TRUE(view_id.ok());
  ASSERT_TRUE(f.q->ApplyGoldFeedback(*view_id, user).ok());
  const Fingerprint state_b = FingerprintOf(*f.q);
  ASSERT_NE(state_a, state_b);

  int survived_as_a = 0;
  int survived_as_b = 0;
  for (std::uint64_t kill = 0; kill < num_ops; ++kill) {
    SCOPED_TRACE("kill point " + std::to_string(kill));
    std::string dir = FreshDir("overwrite_k" + std::to_string(kill));

    // Install snapshot A, then crash partway through saving B over it.
    ASSERT_TRUE(util::DefaultEnv()->CreateDirs(dir).ok());
    ASSERT_TRUE(
        util::DefaultEnv()->WriteFile(SnapshotFilePath(dir), a_file).ok());
    ASSERT_EQ(ReopenComplete(dir), state_a);

    util::FaultyEnv faulty(util::DefaultEnv(), TestSeed() + 1000 + kill);
    faulty.set_kill_after(kill);
    EXPECT_FALSE(f.q->SaveSnapshot(dir, &faulty).ok());

    Fingerprint after = ReopenComplete(dir);
    EXPECT_TRUE(after == state_a || after == state_b)
        << "mixed state after kill " << kill << ": " << Describe(after);
    if (after == state_a) ++survived_as_a;
    if (after == state_b) ++survived_as_b;

    // Clean retry finishes the job.
    ASSERT_TRUE(f.q->SaveSnapshot(dir).ok());
    EXPECT_EQ(ReopenComplete(dir), state_b);
  }
  // The sweep must actually exercise the "old snapshot survives" side;
  // the rename is the commit point, so most kill points land there.
  EXPECT_GT(survived_as_a, 0);
}

// --- corruption matrices --------------------------------------------------------

class CorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fixture_ = BuildTrainedSystem();
    want_ = FingerprintOf(*fixture_.q);
    dir_ = FreshDir("corrupt_src");
    ASSERT_TRUE(fixture_.q->SaveSnapshot(dir_).ok());
    auto bytes = util::DefaultEnv()->ReadFile(SnapshotFilePath(dir_));
    ASSERT_TRUE(bytes.ok()) << bytes.status();
    good_ = *std::move(bytes);
    ASSERT_GT(good_.size(), 64u);
  }

  // Writes `bytes` as the snapshot of a scratch dir and opens it.
  util::Result<std::unique_ptr<core::QSystem>> OpenBytes(
      const std::string& bytes, SnapshotLoadReport* report) {
    std::string dir = FreshDir("corrupt_case");
    (void)util::DefaultEnv()->CreateDirs(dir);
    EXPECT_TRUE(
        util::DefaultEnv()->WriteFile(SnapshotFilePath(dir), bytes).ok());
    return core::QSystem::OpenFromSnapshot(dir, core::QSystemConfig(),
                                           nullptr, report);
  }

  Fixture fixture_;
  Fingerprint want_;
  std::string dir_;
  std::string good_;
};

TEST_F(CorruptionTest, TruncationAtEveryStrideDegradesNeverCrashes) {
  // Sweep truncation points across the file, plus the exact boundaries
  // (empty file, header-only, mid-header).
  std::vector<std::size_t> lengths = {0, 1, 7, 19, 20};
  const std::size_t kSteps = 31;
  for (std::size_t i = 1; i <= kSteps; ++i) {
    lengths.push_back(good_.size() * i / (kSteps + 1));
  }
  for (std::size_t len : lengths) {
    if (len >= good_.size()) continue;
    SCOPED_TRACE("truncated to " + std::to_string(len) + "/" +
                 std::to_string(good_.size()));
    SnapshotLoadReport report;
    auto q = OpenBytes(good_.substr(0, len), &report);
    ASSERT_TRUE(q.ok()) << q.status();  // a QSystem always comes up
    // A truncated file can never silently load as complete.
    EXPECT_FALSE(report.complete()) << report.Summary();
    // Whatever survived must be internally consistent: either a cold
    // start or a catalog-anchored partial restore.
    if (report.cold_start) {
      EXPECT_EQ((*q)->catalog().num_relations(), 0u);
    } else {
      EXPECT_EQ((*q)->catalog().num_relations(), want_.relations);
    }
  }
  // The untruncated file is the control: it loads complete.
  SnapshotLoadReport report;
  auto q = OpenBytes(good_, &report);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(report.complete()) << report.Summary();
  EXPECT_EQ(FingerprintOf(**q), want_);
}

TEST_F(CorruptionTest, SingleBitFlipsAreAlwaysDetected) {
  // CRC-32 detects every single-bit error; sweep flips across the whole
  // file (header, frame headers, payloads) at a prime stride.
  util::Rng rng(TestSeed());
  for (std::size_t off = 0; off < good_.size();
       off += 97 + rng.Uniform(32)) {
    SCOPED_TRACE("bit flip at offset " + std::to_string(off));
    std::string bytes = good_;
    bytes[off] = static_cast<char>(
        static_cast<unsigned char>(bytes[off]) ^ (1u << rng.Uniform(8)));
    SnapshotLoadReport report;
    auto q = OpenBytes(bytes, &report);
    ASSERT_TRUE(q.ok()) << q.status();
    EXPECT_FALSE(report.complete())
        << "undetected corruption at " << off << ": " << report.Summary();
  }
}

// Locates each section's payload span inside the good snapshot bytes so
// corruption can be aimed at one section at a time.
struct SectionSpan {
  std::uint32_t tag;
  std::size_t offset;
  std::size_t size;
};

std::vector<SectionSpan> LocateSections(const std::string& file) {
  ParseOutcome outcome;
  util::Status st = ParseSnapshotFile(file, &outcome);
  EXPECT_TRUE(st.ok()) << st.ToString();
  std::vector<SectionSpan> spans;
  for (const ParsedSection& s : outcome.sections) {
    spans.push_back(SectionSpan{
        s.tag, static_cast<std::size_t>(s.payload.data() - file.data()),
        s.payload.size()});
  }
  return spans;
}

TEST_F(CorruptionTest, RecoveryLadderHoldsPerDamagedSection) {
  std::vector<SectionSpan> spans = LocateSections(good_);
  ASSERT_EQ(spans.size(), 5u);

  for (const SectionSpan& span : spans) {
    SCOPED_TRACE(std::string("corrupting section ") +
                 std::string(SectionTagName(span.tag)));
    ASSERT_GT(span.size, 0u);
    std::string bytes = good_;
    bytes[span.offset + span.size / 2] ^= 0x5A;

    SnapshotLoadReport report;
    auto q = OpenBytes(bytes, &report);
    ASSERT_TRUE(q.ok()) << q.status();
    EXPECT_FALSE(report.complete());
    core::QSystem& sys = **q;

    switch (static_cast<SectionTag>(span.tag)) {
      case SectionTag::kCatalog:
        // Bottom rung: nothing is meaningful without the catalog.
        EXPECT_TRUE(report.cold_start);
        EXPECT_EQ(sys.catalog().num_relations(), 0u);
        break;
      case SectionTag::kFeatureSpace:
        // Catalog survives; graph is rebuilt structurally; learned
        // capital (associations + weights) is gone.
        EXPECT_FALSE(report.cold_start);
        EXPECT_TRUE(report.catalog.ok());
        EXPECT_FALSE(report.feature_space.ok());
        EXPECT_EQ(sys.catalog().num_relations(), want_.relations);
        EXPECT_TRUE(sys.search_graph()
                        .EdgesOfKind(graph::EdgeKind::kAssociation)
                        .empty());
        break;
      case SectionTag::kGraph:
        // Associations lost, but restored weights are intact.
        EXPECT_FALSE(report.cold_start);
        EXPECT_TRUE(report.catalog.ok());
        EXPECT_FALSE(report.graph.ok());
        EXPECT_TRUE(report.weights.ok());
        EXPECT_EQ(sys.weights().values(), want_.weights);
        EXPECT_TRUE(sys.search_graph()
                        .EdgesOfKind(graph::EdgeKind::kAssociation)
                        .empty());
        break;
      case SectionTag::kWeights: {
        // The replay rung: weights relearned from the persisted feedback
        // log. With a complete history the effective weights match the
        // saved system exactly.
        EXPECT_FALSE(report.cold_start);
        EXPECT_FALSE(report.weights.ok());
        EXPECT_TRUE(report.feedback.ok());
        EXPECT_TRUE(report.weights_replayed) << report.Summary();
        const graph::FeatureSpace& space =
            const_cast<core::QSystem&>(sys).feature_space();
        for (graph::FeatureId id = 0; id < space.size(); ++id) {
          EXPECT_EQ(sys.weights().At(id), fixture_.q->weights().At(id))
              << "feature " << id;
        }
        break;
      }
      case SectionTag::kFeedback:
        // Everything else intact; only the log is gone.
        EXPECT_FALSE(report.cold_start);
        EXPECT_FALSE(report.feedback.ok());
        EXPECT_TRUE(report.weights.ok());
        EXPECT_TRUE(sys.feedback_log().empty());
        EXPECT_EQ(sys.weights().values(), want_.weights);
        EXPECT_EQ(sys.search_graph().num_edges(), want_.edges);
        break;
    }
    // Every degraded system must still be able to serve: create a view
    // over whatever survived without crashing.
    if (!report.cold_start) {
      auto view = sys.CreateView(fixture_.dataset.keyword_queries[0]);
      // Degraded graphs may legitimately have no answer; the contract is
      // "no crash, a Status on failure".
      (void)view;
    }
  }
}

TEST_F(CorruptionTest, TornTmpFileNextToValidSnapshotIsIgnored) {
  std::string dir = FreshDir("torn_tmp");
  ASSERT_TRUE(util::DefaultEnv()->CreateDirs(dir).ok());
  ASSERT_TRUE(
      util::DefaultEnv()->WriteFile(SnapshotFilePath(dir), good_).ok());
  // A torn staging file from a crashed save must not affect loading.
  ASSERT_TRUE(util::DefaultEnv()
                  ->WriteFile(SnapshotFilePath(dir) + ".tmp",
                              good_.substr(0, good_.size() / 3))
                  .ok());
  EXPECT_EQ(ReopenComplete(dir), want_);
  // And the next save replaces the torn tmp without complaint.
  ASSERT_TRUE(fixture_.q->SaveSnapshot(dir).ok());
  EXPECT_EQ(ReopenComplete(dir), want_);
}

TEST_F(CorruptionTest, SwappedAndDuplicatedFramesNeverCrash) {
  // Frame-level shuffles: duplicate the first section, drop the last,
  // append trailing garbage. All must degrade gracefully.
  std::vector<SectionSpan> spans = LocateSections(good_);
  ASSERT_EQ(spans.size(), 5u);
  const std::size_t frame0_start = spans[0].offset - 16;  // tag+len+crc
  const std::size_t frame0_end = spans[0].offset + spans[0].size;

  std::string duplicated = good_ +
      good_.substr(frame0_start, frame0_end - frame0_start);
  SnapshotLoadReport report;
  auto q1 = OpenBytes(duplicated, &report);
  EXPECT_TRUE(q1.ok()) << q1.status();

  std::string trailing = good_ + "garbage-after-the-last-frame";
  auto q2 = OpenBytes(trailing, &report);
  EXPECT_TRUE(q2.ok()) << q2.status();

  std::string dropped = good_.substr(0, spans[4].offset - 16);
  auto q3 = OpenBytes(dropped, &report);
  ASSERT_TRUE(q3.ok()) << q3.status();
  EXPECT_FALSE(report.complete());
}

}  // namespace
}  // namespace q::persist
