// Randomized differential harness for the fast Steiner engine: across ~50
// seeded (random graph x weight perturbation) configurations, the
// fast-path top-k enumeration must reproduce the legacy SteinerProblem
// engine's output exactly — same tree costs and same edge sets — for both
// solver families, under forced/banned-edge overlays, and through the
// weight-only Recost fast path (a re-costed snapshot must be
// indistinguishable from a freshly built one, including across a warm
// shortest-path cache).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/q_system.h"
#include "data/interpro_go.h"
#include "graph/search_graph.h"
#include "steiner/exact_solver.h"
#include "steiner/fast_solver.h"
#include "steiner/kmb_solver.h"
#include "steiner/problem.h"
#include "steiner/shard.h"
#include "steiner/top_k.h"
#include "util/random.h"

namespace q::steiner {
namespace {

using graph::EdgeId;
using graph::NodeId;

// Connected random graph with one feature per edge so every weight
// perturbation re-prices every edge independently. Distinct random
// initial weights keep costs tie-free, which is the regime where fast and
// legacy engines must agree edge-for-edge.
struct DiffGraph {
  graph::FeatureSpace space;
  graph::SearchGraph graph;
  std::unique_ptr<graph::WeightVector> weights;
  std::vector<NodeId> terminals;

  DiffGraph(util::Rng* rng, std::size_t n, std::size_t m, std::size_t t) {
    for (std::size_t i = 0; i < n; ++i) {
      graph.AddNode(graph::NodeKind::kAttribute, "n" + std::to_string(i));
    }
    weights = std::make_unique<graph::WeightVector>(&space);
    auto add_edge = [&](NodeId u, NodeId v) {
      graph::Edge e;
      e.u = u;
      e.v = v;
      e.kind = graph::EdgeKind::kAssociation;
      graph::FeatureVec f;
      f.Add(space.Intern("e" + std::to_string(graph.num_edges()),
                         0.1 + rng->UniformDouble()),
            1.0);
      e.features = std::move(f);
      graph.AddEdge(std::move(e));
    };
    for (std::size_t i = 1; i < n; ++i) {
      add_edge(static_cast<NodeId>(rng->Uniform(i)), static_cast<NodeId>(i));
    }
    while (graph.num_edges() < m) {
      auto u = static_cast<NodeId>(rng->Uniform(n));
      auto v = static_cast<NodeId>(rng->Uniform(n));
      if (u != v) add_edge(u, v);
    }
    while (terminals.size() < t) {
      auto c = static_cast<NodeId>(rng->Uniform(n));
      bool seen = false;
      for (NodeId existing : terminals) {
        if (existing == c) seen = true;
      }
      if (!seen) terminals.push_back(c);
    }
  }

  // Multiplies every per-edge feature weight by a random factor in
  // [0.5, 1.5) — a MIRA-update stand-in that keeps costs positive and
  // (almost surely) distinct.
  void PerturbWeights(util::Rng* rng) {
    for (graph::FeatureId id = 1;
         id < static_cast<graph::FeatureId>(space.size()); ++id) {
      weights->Set(id, weights->At(id) * (0.5 + rng->UniformDouble()));
    }
  }

  // Sparse MIRA-style update: rescales `count` randomly chosen per-edge
  // feature weights, leaving the rest untouched.
  void PerturbSparse(util::Rng* rng, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      auto id = static_cast<graph::FeatureId>(
          1 + rng->Uniform(space.size() - 1));
      weights->Set(id, weights->At(id) * (0.5 + rng->UniformDouble()));
    }
  }

  // Structural in-place edit: bumps one feature value on edge `e`
  // (changing its cost without touching topology), mirroring an
  // association-edge feature merge in the base graph.
  void MutateEdgeFeature(util::Rng* rng, graph::EdgeId e) {
    graph::FeatureVec features = graph.edge_features(e);
    if (features.empty()) return;
    graph::FeatureId id = features.entries()[0].first;
    features.Add(id, 0.1 + rng->UniformDouble());
    graph.SetEdgeFeatures(e, std::move(features));
  }

  // Structural topology edit: one new random edge with a fresh feature.
  void AddRandomEdge(util::Rng* rng) {
    NodeId u = static_cast<NodeId>(rng->Uniform(graph.num_nodes()));
    NodeId v = static_cast<NodeId>(rng->Uniform(graph.num_nodes()));
    if (u == v) v = (v + 1) % static_cast<NodeId>(graph.num_nodes());
    graph::Edge e;
    e.u = u;
    e.v = v;
    e.kind = graph::EdgeKind::kAssociation;
    graph::FeatureVec f;
    f.Add(space.Intern("e" + std::to_string(graph.num_edges()),
                       0.1 + rng->UniformDouble()),
          1.0);
    e.features = std::move(f);
    graph.AddEdge(std::move(e));
  }
};

std::vector<SteinerTree> RunTopK(const DiffGraph& g, SteinerEngine engine,
                                 bool approximate) {
  TopKConfig config;
  config.k = 5;
  config.approximate = approximate;
  config.engine = engine;
  return TopKSteinerTrees(g.graph, *g.weights, g.terminals, config);
}

// Same trees: edge sets exact, costs to float tolerance (the engines sum
// edge costs in different orders).
void ExpectSameTrees(const std::vector<SteinerTree>& legacy,
                     const std::vector<SteinerTree>& fast,
                     const std::string& label) {
  ASSERT_EQ(legacy.size(), fast.size()) << label;
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i].edges, fast[i].edges) << label << " tree " << i;
    EXPECT_NEAR(legacy[i].cost, fast[i].cost, 1e-9) << label << " tree " << i;
  }
}

class DifferentialTest : public ::testing::TestWithParam<int> {};

// 10 graphs x (1 initial + 4 perturbed) weight vectors = 50 fast-vs-legacy
// top-k configurations, each checked for KMB and the exact DP.
TEST_P(DifferentialTest, FastMatchesLegacyAcrossWeightPerturbations) {
  util::Rng rng(31000 + GetParam());
  DiffGraph g(&rng, 28 + rng.Uniform(30), 60 + rng.Uniform(60),
              3 + rng.Uniform(2));
  for (int perturbation = 0; perturbation < 5; ++perturbation) {
    if (perturbation > 0) g.PerturbWeights(&rng);
    std::string label = "perturbation " + std::to_string(perturbation);
    for (bool approximate : {false, true}) {
      auto legacy = RunTopK(g, SteinerEngine::kLegacy, approximate);
      auto fast = RunTopK(g, SteinerEngine::kFast, approximate);
      ASSERT_FALSE(legacy.empty()) << label;
      ExpectSameTrees(legacy, fast,
                      label + (approximate ? " kmb" : " exact"));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, DifferentialTest,
                         ::testing::Range(0, 10));

class OverlayDifferentialTest : public ::testing::TestWithParam<int> {};

// Solver-level differential under forced/banned overlays after a weight
// perturbation: walk the best tree Lawler-style (force a growing prefix,
// ban the next edge) and require the overlay solver to match the legacy
// contraction semantics at every step.
TEST_P(OverlayDifferentialTest, ForcedBannedOverlaysMatchLegacy) {
  util::Rng rng(32000 + GetParam());
  DiffGraph g(&rng, 24, 55, 3);
  g.PerturbWeights(&rng);
  FastSteinerEngine engine(g.graph, *g.weights, /*use_cache=*/true);

  auto base = engine.SolveKmb(g.terminals, {}, {});
  ASSERT_TRUE(base.has_value());
  ASSERT_FALSE(base->edges.empty());
  std::vector<EdgeId> forced;
  std::vector<EdgeId> banned;
  for (EdgeId e : base->edges) {
    banned.assign(1, e);
    SteinerProblem problem(g.graph, *g.weights, g.terminals, forced, banned);
    auto legacy_kmb = SolveKmbSteiner(problem);
    auto fast_kmb = engine.SolveKmb(g.terminals, forced, banned);
    ASSERT_EQ(legacy_kmb.has_value(), fast_kmb.has_value());
    if (fast_kmb.has_value()) {
      EXPECT_EQ(legacy_kmb->edges, fast_kmb->edges);
      EXPECT_NEAR(legacy_kmb->cost, fast_kmb->cost, 1e-9);
    }
    auto legacy_exact = SolveExactSteiner(problem);
    auto fast_exact = engine.SolveExact(g.terminals, forced, banned);
    ASSERT_EQ(legacy_exact.has_value(), fast_exact.has_value());
    if (fast_exact.has_value()) {
      EXPECT_EQ(legacy_exact->edges, fast_exact->edges);
      EXPECT_NEAR(legacy_exact->cost, fast_exact->cost, 1e-9);
    }
    forced.push_back(e);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, OverlayDifferentialTest,
                         ::testing::Range(0, 6));

class RecostDifferentialTest : public ::testing::TestWithParam<int> {};

// The weight-only snapshot refresh: warm an engine's cache at w0, Recost
// to w1, and require byte-identical output to an engine freshly built at
// w1 — for top-k through the shared-engine entry point and for raw
// overlay solves. A stale cache entry surviving the generation bump, or a
// mis-recosted arc, breaks this immediately.
TEST_P(RecostDifferentialTest, RecostedSnapshotEqualsFreshBuild) {
  util::Rng rng(33000 + GetParam());
  DiffGraph g(&rng, 30, 70, 3 + rng.Uniform(2));

  TopKConfig config;
  config.k = 5;
  auto shared = std::make_unique<FastSteinerEngine>(g.graph, *g.weights,
                                                    /*use_cache=*/true);
  // Warm the cache under the initial weights.
  auto warm = TopKSteinerTrees(g.graph, *g.weights, g.terminals, config,
                               shared.get());
  ASSERT_FALSE(warm.empty());
  EXPECT_EQ(shared->generation(), 0u);

  for (int perturbation = 0; perturbation < 3; ++perturbation) {
    g.PerturbWeights(&rng);
    shared->Recost(g.graph, *g.weights);
    EXPECT_EQ(shared->generation(),
              static_cast<std::uint64_t>(perturbation + 1));
    FastSteinerEngine fresh(g.graph, *g.weights, /*use_cache=*/true);

    for (bool approximate : {false, true}) {
      config.approximate = approximate;
      auto recosted = TopKSteinerTrees(g.graph, *g.weights, g.terminals,
                                       config, shared.get());
      auto rebuilt = TopKSteinerTrees(g.graph, *g.weights, g.terminals,
                                      config, &fresh);
      auto standalone =
          TopKSteinerTrees(g.graph, *g.weights, g.terminals, config);
      std::string label = approximate ? "kmb" : "exact";
      ASSERT_EQ(recosted.size(), rebuilt.size()) << label;
      for (std::size_t i = 0; i < recosted.size(); ++i) {
        EXPECT_EQ(recosted[i].edges, rebuilt[i].edges) << label << " " << i;
        EXPECT_EQ(recosted[i].cost, rebuilt[i].cost) << label << " " << i;
      }
      ExpectSameTrees(standalone, recosted, label + " standalone");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, RecostDifferentialTest,
                         ::testing::Range(0, 6));

class DeltaRecostDifferentialTest : public ::testing::TestWithParam<int> {};

// Randomized delta configs: a random sequence of MIRA-style sparse weight
// updates, in-place edge feature mutations, and edge additions is applied
// to a long-lived engine through the delta pipeline (RecostDelta +
// selective cache invalidation, full Recost on dense deltas, rebuild on
// topology change), and after every step the top-k output must be
// bit-identical to a freshly built snapshot — with the shortest-path
// cache staying warm across steps, so a wrongly retained tree would
// surface immediately.
TEST_P(DeltaRecostDifferentialTest, DeltaPathMatchesFreshSnapshot) {
  util::Rng rng(34000 + GetParam());
  DiffGraph g(&rng, 26 + rng.Uniform(20), 55 + rng.Uniform(40),
              3 + rng.Uniform(2));
  TopKConfig config;
  config.k = 5;
  auto shared = std::make_unique<FastSteinerEngine>(g.graph, *g.weights,
                                                    /*use_cache=*/true);
  auto warm = TopKSteinerTrees(g.graph, *g.weights, g.terminals, config,
                               shared.get());
  ASSERT_FALSE(warm.empty());

  std::uint64_t weight_rev = g.weights->revision();
  std::size_t delta_recosts = 0;
  for (int step = 0; step < 12; ++step) {
    int action = rng.Uniform(4);
    if (action == 3) {
      // Topology change: delta pipeline cannot help; rebuild the engine
      // (what the RefreshEngine's rebuild classification does).
      g.AddRandomEdge(&rng);
      shared = std::make_unique<FastSteinerEngine>(g.graph, *g.weights,
                                                   /*use_cache=*/true);
    } else if (action == 2) {
      // In-place feature mutation: reprice exactly the mutated edge.
      auto e = static_cast<graph::EdgeId>(rng.Uniform(g.graph.num_edges()));
      g.MutateEdgeFeature(&rng, e);
      shared->InvalidateFeatureIndex();
      auto outcome = shared->RecostDelta(g.graph, *g.weights, {}, {e});
      if (!outcome.applied) shared->Recost(g.graph, *g.weights);
    } else {
      // Sparse weight update, fed through the journal exactly as the
      // RefreshEngine consumes it.
      g.PerturbSparse(&rng, 1 + rng.Uniform(3));
      std::vector<graph::FeatureDelta> deltas;
      ASSERT_TRUE(g.weights->DeltaSince(weight_rev, &deltas));
      graph::CoalesceFeatureDeltas(&deltas);
      auto outcome = shared->RecostDelta(g.graph, *g.weights, deltas);
      if (!outcome.applied) {
        shared->Recost(g.graph, *g.weights);
      } else if (outcome.edges_repriced > 0) {
        ++delta_recosts;
      }
    }
    weight_rev = g.weights->revision();

    FastSteinerEngine fresh(g.graph, *g.weights, /*use_cache=*/true);
    for (bool approximate : {false, true}) {
      config.approximate = approximate;
      auto delta_served = TopKSteinerTrees(g.graph, *g.weights, g.terminals,
                                           config, shared.get());
      auto rebuilt = TopKSteinerTrees(g.graph, *g.weights, g.terminals,
                                      config, &fresh);
      std::string label = "step " + std::to_string(step) +
                          (approximate ? " kmb" : " exact");
      ASSERT_EQ(delta_served.size(), rebuilt.size()) << label;
      for (std::size_t i = 0; i < delta_served.size(); ++i) {
        EXPECT_EQ(delta_served[i].edges, rebuilt[i].edges)
            << label << " tree " << i;
        EXPECT_EQ(delta_served[i].cost, rebuilt[i].cost)
            << label << " tree " << i;
      }
    }
  }
  // The sequence must actually exercise the selective path, not fall back
  // to full re-costs throughout.
  EXPECT_GT(delta_recosts, 0u);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, DeltaRecostDifferentialTest,
                         ::testing::Range(0, 8));

// Deterministic selective-invalidation semantics on a hand-built graph:
// a 4-node path a-b-c-d (cheap) plus one expensive parallel edge b-d.
// Raising the expensive edge's cost cannot change any cached tree (it is
// in no shortest path), so entries survive and keep serving; lowering it
// below the path must drop affected entries and change the best tree.
TEST(DeltaRecostCacheTest, SelectiveInvalidationRetainsProvablyValidTrees) {
  graph::FeatureSpace space;
  graph::SearchGraph graph;
  for (int i = 0; i < 4; ++i) {
    graph.AddNode(graph::NodeKind::kAttribute, "n" + std::to_string(i));
  }
  auto add_edge = [&](NodeId u, NodeId v, const std::string& feature,
                      double weight) {
    graph::Edge e;
    e.u = u;
    e.v = v;
    e.kind = graph::EdgeKind::kAssociation;
    graph::FeatureVec f;
    f.Add(space.Intern(feature, weight), 1.0);
    e.features = std::move(f);
    return graph.AddEdge(std::move(e));
  };
  add_edge(0, 1, "ab", 1.0);
  add_edge(1, 2, "bc", 1.0);
  add_edge(2, 3, "cd", 1.0);
  graph::EdgeId heavy = add_edge(1, 3, "bd", 10.0);
  graph::WeightVector weights(&space);
  std::vector<NodeId> terminals = {0, 3};

  FastSteinerEngine engine(graph, weights, /*use_cache=*/true);
  TopKConfig config;
  config.k = 1;
  auto base_trees =
      TopKSteinerTrees(graph, weights, terminals, config, &engine);
  ASSERT_FALSE(base_trees.empty());
  ASSERT_GT(engine.stats().sp_cache_entries, 0u);
  std::uint64_t rev = weights.revision();

  // Increase the heavy edge: 10 -> 12. It is on no root shortest path
  // (both terminals route along the cheap chain), so at least the root
  // entries are provably still valid and must be retained — and must keep
  // serving lookups (hits grow without any new misses for the root).
  weights.Set(space.Intern("bd", 10.0), 12.0);
  std::vector<graph::FeatureDelta> deltas;
  ASSERT_TRUE(weights.DeltaSince(rev, &deltas));
  rev = weights.revision();
  auto up = engine.RecostDelta(graph, weights, deltas);
  ASSERT_TRUE(up.applied);
  EXPECT_EQ(up.edges_repriced, 1u);
  EXPECT_GT(up.cache_entries_retained, 0u);
  {
    std::size_t hits_before = engine.stats().sp_cache_hits;
    FastSteinerEngine fresh(graph, weights, /*use_cache=*/true);
    auto served = TopKSteinerTrees(graph, weights, terminals, config,
                                   &engine);
    auto rebuilt = TopKSteinerTrees(graph, weights, terminals, config,
                                    &fresh);
    EXPECT_GT(engine.stats().sp_cache_hits, hits_before);
    ASSERT_EQ(served.size(), rebuilt.size());
    for (std::size_t i = 0; i < served.size(); ++i) {
      EXPECT_EQ(served[i].edges, rebuilt[i].edges);
      EXPECT_EQ(served[i].cost, rebuilt[i].cost);
    }
  }

  // A weight move on a feature no snapshot edge carries must reprice
  // nothing and leave the generation and every cache entry untouched.
  std::uint64_t gen = engine.generation();
  std::size_t entries_before = engine.stats().sp_cache_entries;
  weights.Set(space.Intern("unused", 0.5), 0.75);
  deltas.clear();
  ASSERT_TRUE(weights.DeltaSince(rev, &deltas));
  rev = weights.revision();
  auto noop = engine.RecostDelta(graph, weights, deltas);
  ASSERT_TRUE(noop.applied);
  EXPECT_EQ(noop.edges_repriced, 0u);
  EXPECT_EQ(engine.generation(), gen);
  EXPECT_EQ(engine.stats().sp_cache_entries, entries_before);

  // Decrease the heavy edge below the path (12 -> 0.5): entries whose
  // trees it could improve must be dropped, and the best tree must now
  // route through it — identically to a fresh snapshot.
  weights.Set(space.Intern("bd", 10.0), 0.5);
  deltas.clear();
  ASSERT_TRUE(weights.DeltaSince(rev, &deltas));
  auto down = engine.RecostDelta(graph, weights, deltas);
  ASSERT_TRUE(down.applied);
  EXPECT_EQ(down.edges_repriced, 1u);
  EXPECT_GT(down.cache_entries_dropped, 0u);
  FastSteinerEngine fresh(graph, weights, /*use_cache=*/true);
  auto served = TopKSteinerTrees(graph, weights, terminals, config, &engine);
  auto rebuilt = TopKSteinerTrees(graph, weights, terminals, config, &fresh);
  ASSERT_EQ(served.size(), rebuilt.size());
  ASSERT_FALSE(served.empty());
  EXPECT_NE(std::find(served[0].edges.begin(), served[0].edges.end(), heavy),
            served[0].edges.end());
  for (std::size_t i = 0; i < served.size(); ++i) {
    EXPECT_EQ(served[i].edges, rebuilt[i].edges);
    EXPECT_EQ(served[i].cost, rebuilt[i].cost);
  }
}

// --- sharded terminal-local search differential ----------------------------
// The sharded solver's whole contract is "bit-identical output, fewer
// nodes touched": across random graphs, weight perturbations (dense and
// sparse), topology growth, shard granularities (including degenerate
// 1-node shards, which maximize boundary stitching and escalation
// pressure), and both solver families, the sharded enumeration must
// reproduce the unsharded fast enumeration exactly — trees, costs
// (bitwise), and relevance certificates.

class ShardedDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardedDifferentialTest, ShardedTopKBitIdenticalToUnsharded) {
  util::Rng rng(51000 + GetParam());
  DiffGraph g(&rng, 40 + rng.Uniform(40), 90 + rng.Uniform(80),
              3 + rng.Uniform(2));
  for (int step = 0; step < 4; ++step) {
    if (step > 0) {
      switch (rng.Uniform(4)) {
        case 0:
          g.PerturbWeights(&rng);
          break;
        case 1:
          g.PerturbSparse(&rng, 1 + rng.Uniform(3));
          break;
        case 2:
          g.MutateEdgeFeature(
              &rng, static_cast<graph::EdgeId>(rng.Uniform(g.graph.num_edges())));
          break;
        default:
          g.AddRandomEdge(&rng);
          break;
      }
    }
    for (bool approximate : {false, true}) {
      for (std::uint32_t target : {1u, 8u, 1u << 20}) {
        TopKConfig plain;
        plain.k = 5;
        plain.approximate = approximate;
        TopKConfig sharded = plain;
        sharded.sharded.enabled = true;
        sharded.sharded.target_shard_nodes = target;
        RelevanceCertificate plain_cert;
        RelevanceCertificate sharded_cert;
        auto a = TopKSteinerTrees(g.graph, *g.weights, g.terminals, plain,
                                  /*shared_engine=*/nullptr, &plain_cert);
        auto b = TopKSteinerTrees(g.graph, *g.weights, g.terminals, sharded,
                                  /*shared_engine=*/nullptr, &sharded_cert);
        std::string label = "step " + std::to_string(step) +
                            (approximate ? " kmb" : " exact") + " target " +
                            std::to_string(target);
        ASSERT_EQ(a.size(), b.size()) << label;
        for (std::size_t i = 0; i < a.size(); ++i) {
          EXPECT_EQ(a[i].edges, b[i].edges) << label << " tree " << i;
          EXPECT_EQ(a[i].cost, b[i].cost) << label << " tree " << i;
        }
        EXPECT_EQ(plain_cert.valid, sharded_cert.valid) << label;
        EXPECT_EQ(plain_cert.edges, sharded_cert.edges) << label;
        EXPECT_EQ(plain_cert.gap, sharded_cert.gap) << label;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, ShardedDifferentialTest,
                         ::testing::Range(0, 8));

class ShardedOverlayDifferentialTest : public ::testing::TestWithParam<int> {};

// Engine-level masked-vs-unmasked differential under forced/banned
// overlays: replicate the enumeration's escalation retry loop around the
// masked solvers (degenerate 1-node shards, so masks track the ball
// tightly) and require exact agreement with the unmasked solver at every
// Lawler step of the best tree's edge walk.
TEST_P(ShardedOverlayDifferentialTest, MaskedOverlaySolvesMatchUnmasked) {
  util::Rng rng(52000 + GetParam());
  DiffGraph g(&rng, 30, 70, 3);
  g.PerturbWeights(&rng);
  FastSteinerEngine engine(g.graph, *g.weights, /*use_cache=*/true);
  SnapshotPin pin = engine.Pin();
  TerminalLocalizer localizer(pin.csr, engine.Shards(1), g.terminals);

  auto solve_sharded = [&](const std::vector<EdgeId>& forced,
                           const std::vector<EdgeId>& banned,
                           bool kmb) -> std::optional<SteinerTree> {
    for (;;) {
      TerminalLocalizer::Snapshot snap = localizer.Acquire();
      if (snap.mask->covers_all) {
        return kmb ? engine.SolveKmb(pin, g.terminals, forced, banned)
                   : engine.SolveExact(pin, g.terminals, forced, banned);
      }
      MaskView view;
      view.in_mask = &snap.mask->in_mask;
      view.nodes = &snap.mask->nodes;
      view.r_proof = snap.r_proof;
      view.epoch = snap.epoch;
      MaskedOutcome outcome;
      auto tree = kmb ? engine.SolveKmbMasked(pin, g.terminals, forced,
                                              banned, view, &outcome)
                      : engine.SolveExactMasked(pin, g.terminals, forced,
                                                banned, view, &outcome);
      if (outcome == MaskedOutcome::kOk) return tree;
      localizer.Escalate(snap.epoch);
    }
  };

  auto base = engine.SolveExact(pin, g.terminals, {}, {});
  ASSERT_TRUE(base.has_value());
  std::vector<EdgeId> forced;
  std::vector<EdgeId> banned;
  for (EdgeId e : base->edges) {
    banned.assign(1, e);
    for (bool kmb : {false, true}) {
      auto unmasked = kmb ? engine.SolveKmb(pin, g.terminals, forced, banned)
                          : engine.SolveExact(pin, g.terminals, forced,
                                              banned);
      auto masked = solve_sharded(forced, banned, kmb);
      ASSERT_EQ(unmasked.has_value(), masked.has_value())
          << (kmb ? "kmb" : "exact");
      if (masked.has_value()) {
        EXPECT_EQ(unmasked->edges, masked->edges) << (kmb ? "kmb" : "exact");
        EXPECT_EQ(unmasked->cost, masked->cost) << (kmb ? "kmb" : "exact");
      }
    }
    forced.push_back(e);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, ShardedOverlayDifferentialTest,
                         ::testing::Range(0, 6));

// Deterministic escalation semantics on a hand-built path 0-1-2-3: a mask
// deliberately truncated to the terminals' own shards with a radius too
// small to certify must report kEscalate and no tree; the full-graph mask
// with an adequate radius must verify and reproduce the unmasked solve
// exactly.
TEST(ShardedEscalationTest, UndersizedMaskEscalatesAdequateMaskVerifies) {
  graph::FeatureSpace space;
  graph::SearchGraph graph;
  for (int i = 0; i < 4; ++i) {
    graph.AddNode(graph::NodeKind::kAttribute, "n" + std::to_string(i));
  }
  auto add_edge = [&](NodeId u, NodeId v, const std::string& feature) {
    graph::Edge e;
    e.u = u;
    e.v = v;
    e.kind = graph::EdgeKind::kAssociation;
    graph::FeatureVec f;
    f.Add(space.Intern(feature, 1.0), 1.0);
    e.features = std::move(f);
    return graph.AddEdge(std::move(e));
  };
  add_edge(0, 1, "a");
  add_edge(1, 2, "b");
  add_edge(2, 3, "c");
  graph::WeightVector weights(&space);
  std::vector<NodeId> terminals = {0, 3};
  FastSteinerEngine engine(graph, weights, /*use_cache=*/false);
  SnapshotPin pin = engine.Pin();

  // Mask holding only the endpoints: the connecting interior is missing
  // and the radius cannot certify the terminal distance.
  std::vector<std::uint8_t> in_mask = {1, 0, 0, 1};
  std::vector<std::uint32_t> nodes = {0, 3};
  MaskView small;
  small.in_mask = &in_mask;
  small.nodes = &nodes;
  small.r_proof = 1.0;
  small.epoch = 0;
  MaskedOutcome outcome;
  auto masked = engine.SolveKmbMasked(pin, terminals, {}, {}, small,
                                      &outcome);
  EXPECT_EQ(outcome, MaskedOutcome::kEscalate);
  EXPECT_FALSE(masked.has_value());
  masked = engine.SolveExactMasked(pin, terminals, {}, {}, small,
                                   &outcome);
  EXPECT_EQ(outcome, MaskedOutcome::kEscalate);
  EXPECT_FALSE(masked.has_value());

  // Full mask with a radius beyond the 3-hop distance: must verify and
  // match the unmasked solver bitwise.
  std::vector<std::uint8_t> full_mask = {1, 1, 1, 1};
  std::vector<std::uint32_t> all_nodes = {0, 1, 2, 3};
  MaskView full;
  full.in_mask = &full_mask;
  full.nodes = &all_nodes;
  full.r_proof = 100.0;
  full.epoch = 1;
  auto unmasked = engine.SolveExact(pin, terminals, {}, {});
  masked = engine.SolveExactMasked(pin, terminals, {}, {}, full,
                                   &outcome);
  EXPECT_EQ(outcome, MaskedOutcome::kOk);
  ASSERT_TRUE(masked.has_value());
  ASSERT_TRUE(unmasked.has_value());
  EXPECT_EQ(unmasked->edges, masked->edges);
  EXPECT_EQ(unmasked->cost, masked->cost);

  // A localizer over this graph bootstraps covers_all immediately (the
  // star ball reaches everything), so the enumeration would fall back to
  // plain solves rather than mask at all.
  TerminalLocalizer localizer(pin.csr, engine.Shards(1), terminals);
  EXPECT_TRUE(localizer.Acquire().mask->covers_all);
}

// --- long-horizon async-repair differential --------------------------------
// Randomized interleavings of asynchronous repairs, reads, and feedback
// against a live QSystem, seeded and replayable: a seeded schedule drives
// {endorse feedback, epoch-tagged reads, WaitFresh, quiescence}, and at
// every quiescence point each view's published output is compared against
// a from-scratch TopKView rebuild over the current base state — the
// strongest possible reference, sharing no snapshot, cache, or journal
// state with the async pipeline.

class AsyncScheduleDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(AsyncScheduleDifferentialTest, QuiescentStatesMatchFromScratch) {
  util::Rng rng(41000 + GetParam());

  data::InterProGoConfig dconfig;
  dconfig.num_go_terms = 60;
  dconfig.num_entries = 45;
  dconfig.num_pubs = 40;
  dconfig.num_journals = 8;
  dconfig.num_methods = 30;
  dconfig.interpro2go_links = 90;
  dconfig.entry2pub_links = 75;
  dconfig.method2pub_links = 60;
  data::InterProGoDataset dataset = data::BuildInterProGo(dconfig);

  core::QSystemConfig config;
  config.view.query_graph.min_similarity = 0.5;
  config.view.query_graph.max_matches_per_keyword = 6;
  config.steiner_threads = -1;
  config.async_refresh = true;
  config.async_repair_threads = 2;
  core::QSystem q(config);
  for (const auto& src : dataset.catalog.sources()) {
    Q_CHECK_OK(q.RegisterSource(src));
  }
  Q_CHECK_OK(q.RunInitialAlignment());
  std::vector<std::size_t> view_ids;
  for (std::size_t i = 0; i < 6; ++i) {
    auto id = q.CreateView(
        dataset.keyword_queries[i % dataset.keyword_queries.size()]);
    Q_CHECK_OK(id.status());
    view_ids.push_back(*id);
  }

  // Compares every view's published state against a from-scratch rebuild:
  // a fresh TopKView over the same keywords, refreshed against the
  // current graph/weights with no shared snapshot state. Valid only at
  // quiescence (the rebuild interns no new features — the keywords are
  // already expanded — but it must not race an in-flight repair).
  auto expect_matches_fresh = [&](const std::string& label) {
    for (std::size_t i = 0; i < view_ids.size(); ++i) {
      query::ViewResult read = q.ReadView(view_ids[i]);
      EXPECT_FALSE(read.stale) << label << " view " << i;
      query::TopKView fresh(q.view(view_ids[i]).keywords(),
                            q.config().view);
      Q_CHECK_OK(fresh.Refresh(q.search_graph(), q.catalog(),
                               q.text_index(), &q.cost_model(),
                               q.weights()));
      auto fresh_state = fresh.Snapshot();
      ASSERT_EQ(read.state->trees.size(), fresh_state->trees.size())
          << label << " view " << i;
      for (std::size_t t = 0; t < fresh_state->trees.size(); ++t) {
        EXPECT_EQ(read.state->trees[t].edges, fresh_state->trees[t].edges)
            << label << " view " << i << " tree " << t;
        EXPECT_EQ(read.state->trees[t].cost, fresh_state->trees[t].cost)
            << label << " view " << i << " tree " << t;
      }
      ASSERT_EQ(read.state->results.rows.size(),
                fresh_state->results.rows.size())
          << label << " view " << i;
      EXPECT_EQ(read.state->results.columns, fresh_state->results.columns)
          << label << " view " << i;
      for (std::size_t r = 0; r < fresh_state->results.rows.size(); ++r) {
        EXPECT_EQ(read.state->results.rows[r].cost,
                  fresh_state->results.rows[r].cost)
            << label << " view " << i << " row " << r;
        EXPECT_EQ(read.state->results.rows[r].values,
                  fresh_state->results.rows[r].values)
            << label << " view " << i << " row " << r;
      }
    }
  };

  // The seeded schedule: the op sequence (and every feedback's inputs)
  // is a pure function of the seed, so a failure replays exactly.
  int quiescence_points = 0;
  for (int op = 0; op < 24; ++op) {
    std::size_t view = view_ids[rng.Uniform(view_ids.size())];
    switch (rng.Uniform(6)) {
      case 0:
      case 1: {  // endorse feedback on a possibly-stale read
        query::ViewResult read = q.ReadView(view);
        if (read.state->trees.empty()) break;
        const auto& trees = read.state->trees;
        ASSERT_TRUE(
            q.ApplyFeedback(view, trees[rng.Uniform(trees.size())]).ok());
        break;
      }
      case 2: {  // epoch-tagged read: internal consistency only
        query::ViewResult read = q.ReadView(view);
        ASSERT_NE(read.state, nullptr);
        for (const auto& row : read.state->results.rows) {
          ASSERT_LT(row.query_index, read.state->queries.size());
        }
        break;
      }
      case 3: {  // block until the view catches up
        EXPECT_TRUE(
            q.WaitViewFresh(view, std::chrono::milliseconds(30000)));
        EXPECT_FALSE(q.ReadView(view).stale);
        break;
      }
      default: {  // quiescence point: drain and compare everything
        ASSERT_TRUE(q.DrainRefreshes().ok());
        expect_matches_fresh("op " + std::to_string(op));
        ++quiescence_points;
        break;
      }
    }
  }
  ASSERT_TRUE(q.DrainRefreshes().ok());
  expect_matches_fresh("final");
  EXPECT_GT(quiescence_points, 0);
  // The schedule must have exercised the async pipeline, not only acks.
  ASSERT_NE(q.async_scheduler(), nullptr);
  EXPECT_GT(q.async_scheduler()->stats().feedback_rounds, 0u);
}

INSTANTIATE_TEST_SUITE_P(SeededSchedules, AsyncScheduleDifferentialTest,
                         ::testing::Range(0, 4));

}  // namespace
}  // namespace q::steiner
