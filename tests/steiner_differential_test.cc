// Randomized differential harness for the fast Steiner engine: across ~50
// seeded (random graph x weight perturbation) configurations, the
// fast-path top-k enumeration must reproduce the legacy SteinerProblem
// engine's output exactly — same tree costs and same edge sets — for both
// solver families, under forced/banned-edge overlays, and through the
// weight-only Recost fast path (a re-costed snapshot must be
// indistinguishable from a freshly built one, including across a warm
// shortest-path cache).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "graph/search_graph.h"
#include "steiner/exact_solver.h"
#include "steiner/fast_solver.h"
#include "steiner/kmb_solver.h"
#include "steiner/problem.h"
#include "steiner/top_k.h"
#include "util/random.h"

namespace q::steiner {
namespace {

using graph::EdgeId;
using graph::NodeId;

// Connected random graph with one feature per edge so every weight
// perturbation re-prices every edge independently. Distinct random
// initial weights keep costs tie-free, which is the regime where fast and
// legacy engines must agree edge-for-edge.
struct DiffGraph {
  graph::FeatureSpace space;
  graph::SearchGraph graph;
  std::unique_ptr<graph::WeightVector> weights;
  std::vector<NodeId> terminals;

  DiffGraph(util::Rng* rng, std::size_t n, std::size_t m, std::size_t t) {
    for (std::size_t i = 0; i < n; ++i) {
      graph.AddNode(graph::NodeKind::kAttribute, "n" + std::to_string(i));
    }
    weights = std::make_unique<graph::WeightVector>(&space);
    auto add_edge = [&](NodeId u, NodeId v) {
      graph::Edge e;
      e.u = u;
      e.v = v;
      e.kind = graph::EdgeKind::kAssociation;
      graph::FeatureVec f;
      f.Add(space.Intern("e" + std::to_string(graph.num_edges()),
                         0.1 + rng->UniformDouble()),
            1.0);
      e.features = std::move(f);
      graph.AddEdge(std::move(e));
    };
    for (std::size_t i = 1; i < n; ++i) {
      add_edge(static_cast<NodeId>(rng->Uniform(i)), static_cast<NodeId>(i));
    }
    while (graph.num_edges() < m) {
      auto u = static_cast<NodeId>(rng->Uniform(n));
      auto v = static_cast<NodeId>(rng->Uniform(n));
      if (u != v) add_edge(u, v);
    }
    while (terminals.size() < t) {
      auto c = static_cast<NodeId>(rng->Uniform(n));
      bool seen = false;
      for (NodeId existing : terminals) {
        if (existing == c) seen = true;
      }
      if (!seen) terminals.push_back(c);
    }
  }

  // Multiplies every per-edge feature weight by a random factor in
  // [0.5, 1.5) — a MIRA-update stand-in that keeps costs positive and
  // (almost surely) distinct.
  void PerturbWeights(util::Rng* rng) {
    for (graph::FeatureId id = 1;
         id < static_cast<graph::FeatureId>(space.size()); ++id) {
      weights->Set(id, weights->At(id) * (0.5 + rng->UniformDouble()));
    }
  }
};

std::vector<SteinerTree> RunTopK(const DiffGraph& g, SteinerEngine engine,
                                 bool approximate) {
  TopKConfig config;
  config.k = 5;
  config.approximate = approximate;
  config.engine = engine;
  return TopKSteinerTrees(g.graph, *g.weights, g.terminals, config);
}

// Same trees: edge sets exact, costs to float tolerance (the engines sum
// edge costs in different orders).
void ExpectSameTrees(const std::vector<SteinerTree>& legacy,
                     const std::vector<SteinerTree>& fast,
                     const std::string& label) {
  ASSERT_EQ(legacy.size(), fast.size()) << label;
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i].edges, fast[i].edges) << label << " tree " << i;
    EXPECT_NEAR(legacy[i].cost, fast[i].cost, 1e-9) << label << " tree " << i;
  }
}

class DifferentialTest : public ::testing::TestWithParam<int> {};

// 10 graphs x (1 initial + 4 perturbed) weight vectors = 50 fast-vs-legacy
// top-k configurations, each checked for KMB and the exact DP.
TEST_P(DifferentialTest, FastMatchesLegacyAcrossWeightPerturbations) {
  util::Rng rng(31000 + GetParam());
  DiffGraph g(&rng, 28 + rng.Uniform(30), 60 + rng.Uniform(60),
              3 + rng.Uniform(2));
  for (int perturbation = 0; perturbation < 5; ++perturbation) {
    if (perturbation > 0) g.PerturbWeights(&rng);
    std::string label = "perturbation " + std::to_string(perturbation);
    for (bool approximate : {false, true}) {
      auto legacy = RunTopK(g, SteinerEngine::kLegacy, approximate);
      auto fast = RunTopK(g, SteinerEngine::kFast, approximate);
      ASSERT_FALSE(legacy.empty()) << label;
      ExpectSameTrees(legacy, fast,
                      label + (approximate ? " kmb" : " exact"));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, DifferentialTest,
                         ::testing::Range(0, 10));

class OverlayDifferentialTest : public ::testing::TestWithParam<int> {};

// Solver-level differential under forced/banned overlays after a weight
// perturbation: walk the best tree Lawler-style (force a growing prefix,
// ban the next edge) and require the overlay solver to match the legacy
// contraction semantics at every step.
TEST_P(OverlayDifferentialTest, ForcedBannedOverlaysMatchLegacy) {
  util::Rng rng(32000 + GetParam());
  DiffGraph g(&rng, 24, 55, 3);
  g.PerturbWeights(&rng);
  FastSteinerEngine engine(g.graph, *g.weights, /*use_cache=*/true);

  auto base = engine.SolveKmb(g.terminals, {}, {});
  ASSERT_TRUE(base.has_value());
  ASSERT_FALSE(base->edges.empty());
  std::vector<EdgeId> forced;
  std::vector<EdgeId> banned;
  for (EdgeId e : base->edges) {
    banned.assign(1, e);
    SteinerProblem problem(g.graph, *g.weights, g.terminals, forced, banned);
    auto legacy_kmb = SolveKmbSteiner(problem);
    auto fast_kmb = engine.SolveKmb(g.terminals, forced, banned);
    ASSERT_EQ(legacy_kmb.has_value(), fast_kmb.has_value());
    if (fast_kmb.has_value()) {
      EXPECT_EQ(legacy_kmb->edges, fast_kmb->edges);
      EXPECT_NEAR(legacy_kmb->cost, fast_kmb->cost, 1e-9);
    }
    auto legacy_exact = SolveExactSteiner(problem);
    auto fast_exact = engine.SolveExact(g.terminals, forced, banned);
    ASSERT_EQ(legacy_exact.has_value(), fast_exact.has_value());
    if (fast_exact.has_value()) {
      EXPECT_EQ(legacy_exact->edges, fast_exact->edges);
      EXPECT_NEAR(legacy_exact->cost, fast_exact->cost, 1e-9);
    }
    forced.push_back(e);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, OverlayDifferentialTest,
                         ::testing::Range(0, 6));

class RecostDifferentialTest : public ::testing::TestWithParam<int> {};

// The weight-only snapshot refresh: warm an engine's cache at w0, Recost
// to w1, and require byte-identical output to an engine freshly built at
// w1 — for top-k through the shared-engine entry point and for raw
// overlay solves. A stale cache entry surviving the generation bump, or a
// mis-recosted arc, breaks this immediately.
TEST_P(RecostDifferentialTest, RecostedSnapshotEqualsFreshBuild) {
  util::Rng rng(33000 + GetParam());
  DiffGraph g(&rng, 30, 70, 3 + rng.Uniform(2));

  TopKConfig config;
  config.k = 5;
  auto shared = std::make_unique<FastSteinerEngine>(g.graph, *g.weights,
                                                    /*use_cache=*/true);
  // Warm the cache under the initial weights.
  auto warm = TopKSteinerTrees(g.graph, *g.weights, g.terminals, config,
                               shared.get());
  ASSERT_FALSE(warm.empty());
  EXPECT_EQ(shared->generation(), 0u);

  for (int perturbation = 0; perturbation < 3; ++perturbation) {
    g.PerturbWeights(&rng);
    shared->Recost(g.graph, *g.weights);
    EXPECT_EQ(shared->generation(),
              static_cast<std::uint64_t>(perturbation + 1));
    FastSteinerEngine fresh(g.graph, *g.weights, /*use_cache=*/true);

    for (bool approximate : {false, true}) {
      config.approximate = approximate;
      auto recosted = TopKSteinerTrees(g.graph, *g.weights, g.terminals,
                                       config, shared.get());
      auto rebuilt = TopKSteinerTrees(g.graph, *g.weights, g.terminals,
                                      config, &fresh);
      auto standalone =
          TopKSteinerTrees(g.graph, *g.weights, g.terminals, config);
      std::string label = approximate ? "kmb" : "exact";
      ASSERT_EQ(recosted.size(), rebuilt.size()) << label;
      for (std::size_t i = 0; i < recosted.size(); ++i) {
        EXPECT_EQ(recosted[i].edges, rebuilt[i].edges) << label << " " << i;
        EXPECT_EQ(recosted[i].cost, rebuilt[i].cost) << label << " " << i;
      }
      ExpectSameTrees(standalone, recosted, label + " standalone");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, RecostDifferentialTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace q::steiner
