#include <gtest/gtest.h>

#include <memory>

#include "align/aligner.h"
#include "data/gbco.h"
#include "graph/cost_model.h"
#include "graph/graph_builder.h"
#include "match/matcher.h"
#include "match/metadata_matcher.h"
#include "match/value_overlap.h"

namespace q::align {
namespace {

// Fixture: GBCO catalog with one source held out as "new".
class AlignTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::GbcoConfig config;
    config.base_rows = 30;
    dataset_ = data::BuildGbco(config);
    new_source_ = dataset_.catalog.FindSource("tissue");
    ASSERT_NE(new_source_, nullptr);

    // Existing catalog = everything but the new source.
    for (const auto& src : dataset_.catalog.sources()) {
      if (src->name() != "tissue") {
        ASSERT_TRUE(existing_.AddSource(src).ok());
      }
    }
    model_ = std::make_unique<graph::CostModel>(&space_,
                                                graph::CostModelConfig{});
    graph_ = graph::BuildSearchGraph(existing_, model_.get());
    weights_ = std::make_unique<graph::WeightVector>(&space_);
  }

  AlignContext SeededContext(double alpha) {
    AlignContext ctx;
    ctx.alpha = alpha;
    ctx.top_y = 2;
    // Seed at the sample relation (as if the view's keywords matched it).
    auto rel = graph_.FindRelationNode("sample.sample");
    EXPECT_TRUE(rel.has_value());
    ctx.keyword_seeds.emplace_back(*rel, 0.0);
    return ctx;
  }

  data::GbcoDataset dataset_;
  relational::Catalog existing_;
  std::shared_ptr<relational::DataSource> new_source_;
  graph::FeatureSpace space_;
  std::unique_ptr<graph::CostModel> model_;
  graph::SearchGraph graph_;
  std::unique_ptr<graph::WeightVector> weights_;
};

TEST_F(AlignTest, ExhaustiveVisitsAllRelations) {
  ExhaustiveAligner aligner;
  match::CountingMatcher matcher;
  AlignerStats stats;
  auto result = aligner.Align(graph_, *weights_, existing_, *new_source_,
                              SeededContext(1.0), &matcher, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.relations_considered, 17u);  // 18 - the held-out source
  // Comparisons = sum over relations of |attrs| * |tissue attrs(8)|.
  EXPECT_EQ(stats.attribute_comparisons, (187u - 8u) * 8u);
}

TEST_F(AlignTest, ViewBasedConsidersOnlyNeighborhood) {
  ViewBasedAligner aligner;
  match::CountingMatcher matcher;
  AlignerStats stats;
  // Zero alpha: only the seeded relation itself (membership edges free).
  auto result = aligner.Align(graph_, *weights_, existing_, *new_source_,
                              SeededContext(0.0), &matcher, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.relations_considered, 1u);
  EXPECT_EQ(stats.attribute_comparisons, 10u * 8u);  // sample(10) x tissue(8)
}

TEST_F(AlignTest, ViewBasedNeighborhoodGrowsWithAlpha) {
  ViewBasedAligner aligner;
  match::CountingMatcher m1, m2;
  AlignerStats small_stats, large_stats;
  ASSERT_TRUE(aligner
                  .Align(graph_, *weights_, existing_, *new_source_,
                         SeededContext(0.0), &m1, &small_stats)
                  .ok());
  ASSERT_TRUE(aligner
                  .Align(graph_, *weights_, existing_, *new_source_,
                         SeededContext(1e9), &m2, &large_stats)
                  .ok());
  EXPECT_LE(small_stats.relations_considered,
            large_stats.relations_considered);
  // With unbounded alpha the neighborhood covers exactly the relations
  // FK-reachable from the seed: all of GBCO's linked component except the
  // held-out tissue source, and excluding the isolated antibody and
  // cell_line relations.
  EXPECT_EQ(large_stats.relations_considered, 15u);
}

TEST_F(AlignTest, ViewBasedMatchesExhaustiveWithinNeighborhood) {
  // With a fully connected graph (alpha covering everything via
  // association edges), ViewBased must propose the same candidates as
  // Exhaustive. Wire sample.sample_id to every other relation's first
  // attribute to make everything reachable.
  auto sample_attr = graph_.FindAttributeNode(
      relational::AttributeId{"sample", "sample", "sample_id"});
  ASSERT_TRUE(sample_attr.has_value());
  for (const auto& src : existing_.sources()) {
    if (src->name() == "sample") continue;
    const auto& schema = src->tables()[0]->schema();
    auto other = graph_.FindAttributeNode(schema.IdOf(0));
    ASSERT_TRUE(other.has_value());
    graph_.AddAssociationEdge(
        *sample_attr, *other,
        model_->AssociationFeatures("m", 0.9, "sample.sample",
                                    schema.QualifiedName(),
                                    schema.QualifiedName()),
        graph::MatcherScore{"m", 0.9});
  }

  match::MetadataMatcher m1, m2;
  ExhaustiveAligner exhaustive;
  ViewBasedAligner view_based;
  AlignerStats s1, s2;
  auto r1 = exhaustive.Align(graph_, *weights_, existing_, *new_source_,
                             SeededContext(1e9), &m1, &s1);
  auto r2 = view_based.Align(graph_, *weights_, existing_, *new_source_,
                             SeededContext(1e9), &m2, &s2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(s1.attribute_comparisons, s2.attribute_comparisons);
  ASSERT_EQ(r1->size(), r2->size());
  for (std::size_t i = 0; i < r1->size(); ++i) {
    EXPECT_EQ((*r1)[i].PairKey(), (*r2)[i].PairKey());
    EXPECT_DOUBLE_EQ((*r1)[i].confidence, (*r2)[i].confidence);
  }
}

TEST_F(AlignTest, PreferentialRespectsBudgetAndPrior) {
  PreferentialAligner aligner;
  match::CountingMatcher matcher;
  AlignContext ctx = SeededContext(1.0);
  ctx.max_relations = 3;
  // Prior prefers the gene relation strongly.
  auto gene = graph_.FindRelationNode("gene.gene");
  ASSERT_TRUE(gene.has_value());
  ctx.vertex_prior.emplace_back(*gene, 10.0);

  AlignerStats stats;
  auto result = aligner.Align(graph_, *weights_, existing_, *new_source_,
                              ctx, &matcher, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.relations_considered, 3u);
  // gene.gene has 12 attributes and must be among the 3 compared, so at
  // least 12*8 comparisons happened but far fewer than exhaustive.
  EXPECT_GE(stats.attribute_comparisons, 12u * 8u);
  EXPECT_LT(stats.attribute_comparisons, (187u - 8u) * 8u);
}

TEST_F(AlignTest, ValueOverlapFilterReducesComparisons) {
  match::ValueOverlapIndex overlap;
  for (const auto& src : existing_.sources()) {
    for (const auto& t : src->tables()) overlap.IndexTable(*t);
  }
  for (const auto& t : new_source_->tables()) overlap.IndexTable(*t);

  ExhaustiveAligner aligner;
  match::CountingMatcher unfiltered;
  match::CountingMatcher filtered;
  filtered.set_pair_filter(overlap.MakeFilter());

  AlignerStats s_unfiltered, s_filtered;
  ASSERT_TRUE(aligner
                  .Align(graph_, *weights_, existing_, *new_source_,
                         SeededContext(1.0), &unfiltered, &s_unfiltered)
                  .ok());
  ASSERT_TRUE(aligner
                  .Align(graph_, *weights_, existing_, *new_source_,
                         SeededContext(1.0), &filtered, &s_filtered)
                  .ok());
  EXPECT_LT(s_filtered.attribute_comparisons,
            s_unfiltered.attribute_comparisons);
  EXPECT_GT(s_filtered.attribute_comparisons, 0u);
}

}  // namespace
}  // namespace q::align
