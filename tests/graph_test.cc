#include <gtest/gtest.h>

#include <memory>

#include "graph/cost_model.h"
#include "graph/feature.h"
#include "graph/graph_builder.h"
#include "graph/search_graph.h"
#include "relational/catalog.h"

namespace q::graph {
namespace {

using relational::AttributeDef;
using relational::AttributeId;
using relational::Catalog;
using relational::DataSource;
using relational::ForeignKey;
using relational::RelationSchema;
using relational::Table;
using relational::ValueType;

TEST(FeatureSpaceTest, DefaultFeatureIsIdZero) {
  FeatureSpace space;
  EXPECT_EQ(space.size(), 1u);
  EXPECT_EQ(space.name(FeatureSpace::kDefaultFeature), "default");
  FeatureId id = space.Intern("default", 99.0);
  EXPECT_EQ(id, FeatureSpace::kDefaultFeature);
  // First creation wins; "default" existed already with weight 0.
  EXPECT_DOUBLE_EQ(space.initial_weight(id), 0.0);
}

TEST(FeatureSpaceTest, InternIsIdempotent) {
  FeatureSpace space;
  FeatureId a = space.Intern("fk", 1.5);
  FeatureId b = space.Intern("fk", 7.0);
  EXPECT_EQ(a, b);
  EXPECT_DOUBLE_EQ(space.initial_weight(a), 1.5);
  FeatureId found;
  EXPECT_TRUE(space.Find("fk", &found));
  EXPECT_EQ(found, a);
  EXPECT_FALSE(space.Find("missing", &found));
}

TEST(FeatureVecTest, AddMergesAndSorts) {
  FeatureVec f;
  f.Add(5, 1.0);
  f.Add(2, 0.5);
  f.Add(5, 1.0);
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f.entries()[0].first, 2u);
  EXPECT_DOUBLE_EQ(f.ValueOf(5), 2.0);
  EXPECT_DOUBLE_EQ(f.ValueOf(99), 0.0);
}

TEST(FeatureVecTest, RemoveDropsEntry) {
  FeatureVec f;
  f.Add(2, 1.0);
  f.Add(7, 3.0);
  EXPECT_TRUE(f.Remove(2));
  EXPECT_FALSE(f.Remove(2));
  EXPECT_FALSE(f.Remove(99));
  EXPECT_DOUBLE_EQ(f.ValueOf(2), 0.0);
  EXPECT_DOUBLE_EQ(f.ValueOf(7), 3.0);
  EXPECT_EQ(f.size(), 1u);
}

TEST(FeatureVecTest, AddScaled) {
  FeatureVec a;
  a.Add(1, 1.0);
  FeatureVec b;
  b.Add(1, 2.0);
  b.Add(3, 4.0);
  a.AddScaled(b, 0.5);
  EXPECT_DOUBLE_EQ(a.ValueOf(1), 2.0);
  EXPECT_DOUBLE_EQ(a.ValueOf(3), 2.0);
}

TEST(WeightVectorTest, UnseenIdsReadInitialWeight) {
  FeatureSpace space;
  FeatureId fk = space.Intern("fk", 1.5);
  WeightVector w(&space);
  EXPECT_DOUBLE_EQ(w.At(fk), 1.5);
  w.Nudge(fk, 0.5);
  EXPECT_DOUBLE_EQ(w.At(fk), 2.0);
  w.ResetToInitial();
  EXPECT_DOUBLE_EQ(w.At(fk), 1.5);
}

TEST(WeightVectorTest, DotProduct) {
  FeatureSpace space;
  FeatureId a = space.Intern("a", 2.0);
  FeatureId b = space.Intern("b", 3.0);
  WeightVector w(&space);
  FeatureVec f;
  f.Add(a, 1.0);
  f.Add(b, 2.0);
  EXPECT_DOUBLE_EQ(w.Dot(f), 2.0 + 6.0);
}

TEST(BinningTest, EdgesAndCenters) {
  EXPECT_EQ(BinIndex(-0.1, 10), 0);
  EXPECT_EQ(BinIndex(0.0, 10), 0);
  EXPECT_EQ(BinIndex(0.05, 10), 0);
  EXPECT_EQ(BinIndex(0.95, 10), 9);
  EXPECT_EQ(BinIndex(1.0, 10), 9);
  EXPECT_EQ(BinIndex(1.5, 10), 9);
  EXPECT_DOUBLE_EQ(BinCenter(0, 10), 0.05);
  EXPECT_DOUBLE_EQ(BinCenter(9, 10), 0.95);
}

Catalog TwoTableCatalog() {
  Catalog catalog;
  auto s1 = std::make_shared<DataSource>("go");
  auto t1 = std::make_shared<Table>(
      RelationSchema("go", "go_term",
                     {{"acc", ValueType::kString},
                      {"name", ValueType::kString}}));
  EXPECT_TRUE(s1->AddTable(t1).ok());
  auto s2 = std::make_shared<DataSource>("interpro");
  auto schema = RelationSchema("interpro", "interpro2go",
                               {{"go_id", ValueType::kString},
                                {"entry_ac", ValueType::kString}});
  schema.AddForeignKey(ForeignKey{"go_id", "go", "go_term", "acc"});
  auto t2 = std::make_shared<Table>(schema);
  EXPECT_TRUE(s2->AddTable(t2).ok());
  EXPECT_TRUE(catalog.AddSource(s1).ok());
  EXPECT_TRUE(catalog.AddSource(s2).ok());
  return catalog;
}

TEST(GraphBuilderTest, BuildsNodesAndMembershipEdges) {
  Catalog catalog = TwoTableCatalog();
  FeatureSpace space;
  CostModel model(&space, CostModelConfig{});
  SearchGraph g = BuildSearchGraph(catalog, &model);

  // 2 relations + 4 attributes.
  EXPECT_EQ(g.num_nodes(), 6u);
  // 4 membership edges + 1 FK edge.
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.EdgesOfKind(EdgeKind::kMembership).size(), 4u);
  EXPECT_EQ(g.EdgesOfKind(EdgeKind::kForeignKey).size(), 1u);

  auto rel = g.FindRelationNode("go.go_term");
  ASSERT_TRUE(rel.has_value());
  auto attr = g.FindAttributeNode(AttributeId{"go", "go_term", "acc"});
  ASSERT_TRUE(attr.has_value());
  EXPECT_EQ(g.OwningRelation(*attr), rel);
}

TEST(GraphBuilderTest, ForeignKeyEdgeCarriesJoinAttributes) {
  Catalog catalog = TwoTableCatalog();
  FeatureSpace space;
  CostModel model(&space, CostModelConfig{});
  SearchGraph g = BuildSearchGraph(catalog, &model);
  auto fks = g.EdgesOfKind(EdgeKind::kForeignKey);
  ASSERT_EQ(fks.size(), 1u);
  const EdgeView fk = g.edge(fks[0]);
  EXPECT_EQ(fk.join_a().ToString(), "interpro.interpro2go.go_id");
  EXPECT_EQ(fk.join_b().ToString(), "go.go_term.acc");
}

TEST(GraphBuilderTest, IdempotentReAdd) {
  Catalog catalog = TwoTableCatalog();
  FeatureSpace space;
  CostModel model(&space, CostModelConfig{});
  SearchGraph g = BuildSearchGraph(catalog, &model);
  std::size_t nodes = g.num_nodes();
  std::size_t edges = g.num_edges();
  AddSourceToGraph(*catalog.FindSource("interpro"), &model, &g);
  EXPECT_EQ(g.num_nodes(), nodes);
  EXPECT_EQ(g.num_edges(), edges);
}

TEST(SearchGraphTest, EdgeCostsFromFeatures) {
  Catalog catalog = TwoTableCatalog();
  FeatureSpace space;
  CostModelConfig config;
  config.default_cost = 0.1;
  config.foreign_key_cost = 1.0;
  CostModel model(&space, config);
  SearchGraph g = BuildSearchGraph(catalog, &model);
  WeightVector w(&space);

  for (EdgeId e : g.EdgesOfKind(EdgeKind::kMembership)) {
    EXPECT_DOUBLE_EQ(g.EdgeCost(e, w), 0.0);
  }
  for (EdgeId e : g.EdgesOfKind(EdgeKind::kForeignKey)) {
    EXPECT_NEAR(g.EdgeCost(e, w), 1.1, 1e-9);  // default + fk weights
  }
}

TEST(SearchGraphTest, AssociationDedupeMergesProvenance) {
  Catalog catalog = TwoTableCatalog();
  FeatureSpace space;
  CostModel model(&space, CostModelConfig{});
  SearchGraph g = BuildSearchGraph(catalog, &model);
  auto a = g.FindAttributeNode(AttributeId{"go", "go_term", "acc"});
  auto b = g.FindAttributeNode(
      AttributeId{"interpro", "interpro2go", "go_id"});
  ASSERT_TRUE(a.has_value() && b.has_value());

  FeatureVec f1 = model.AssociationFeatures("mad", 0.9, "go.go_term",
                                            "interpro.interpro2go", "k");
  EdgeId e1 = g.AddAssociationEdge(*a, *b, f1, MatcherScore{"mad", 0.9});
  FeatureVec f2 = model.MatcherConfidenceFeature("metadata", 0.6);
  EdgeId e2 = g.AddAssociationEdge(*b, *a, f2, MatcherScore{"metadata", 0.6});
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(g.edge_provenance(e1).size(), 2u);
  EXPECT_EQ(g.EdgesOfKind(EdgeKind::kAssociation).size(), 1u);
}

TEST(SearchGraphTest, DijkstraRespectsMaxCost) {
  Catalog catalog = TwoTableCatalog();
  FeatureSpace space;
  CostModel model(&space, CostModelConfig{});
  SearchGraph g = BuildSearchGraph(catalog, &model);
  WeightVector w(&space);

  auto rel = g.FindRelationNode("go.go_term");
  ASSERT_TRUE(rel.has_value());
  // Within 0 cost: the relation and its attributes (membership is free).
  auto dist = g.Dijkstra({{*rel, 0.0}}, w, 0.0);
  std::size_t reachable = 0;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    if (dist[n] <= 0.0) ++reachable;
  }
  EXPECT_EQ(reachable, 3u);  // go_term + acc + name

  // With budget 2.0 the FK edge (~1.1) brings in the other relation.
  dist = g.Dijkstra({{*rel, 0.0}}, w, 2.0);
  auto other = g.FindRelationNode("interpro.interpro2go");
  ASSERT_TRUE(other.has_value());
  EXPECT_LE(dist[*other], 2.0);
}

TEST(SearchGraphTest, MinCostGuard) {
  FeatureSpace space;
  CostModel model(&space, CostModelConfig{});
  SearchGraph g;
  NodeId r1 = g.AddNode(NodeKind::kRelation, "s.r1");
  NodeId a1 = g.AddNode(NodeKind::kAttribute, "s.r1.x",
                        AttributeId{"s", "r1", "x"});
  NodeId a2 = g.AddNode(NodeKind::kAttribute, "s.r2.y",
                        AttributeId{"s", "r2", "y"});
  (void)r1;
  FeatureVec f;  // cost would be 0 without the guard
  EdgeId e = g.AddAssociationEdge(a1, a2, f, MatcherScore{"m", 1.0});
  WeightVector w(&space);
  EXPECT_GT(g.EdgeCost(e, w), 0.0);
}

}  // namespace
}  // namespace q::graph
