// Concurrent query serving: N reader threads run QueryView searches
// against shared pinned snapshots while a feedback writer races them,
// asserting
//
//   * sharded shortest-path cache — Lookup/Insert/BumpGeneration from
//     many threads keep the hit/miss/size counters exact (the serial
//     counters-and-map regression);
//   * certificate/serial publication — no reader ever observes a
//     published snapshot whose certificate serial disagrees with its
//     search serial (the torn-publication regression);
//   * per-read internal consistency — every QueryView result pairs
//     trees/queries/rows from one search, never a mix of generations;
//   * quiescent bit-identity — once drained, QueryView output equals the
//     published snapshot and the synchronous twin system, bit for bit;
//   * failed-barrier wakeups — a SyncBarrier failure wakes WaitFresh
//     waiters promptly instead of burning their full deadline (the
//     missed-error regression in the epoch/predicate interaction).
//
// Runs under the ctest `stress` label and the ThreadSanitizer CI job.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/async_refresh.h"
#include "core/q_system.h"
#include "core/refresh_engine.h"
#include "data/interpro_go.h"
#include "data/onboarding.h"
#include "graph/graph_builder.h"
#include "steiner/sp_cache.h"
#include "util/random.h"

namespace q::core {
namespace {

constexpr std::size_t kNumViews = 16;
constexpr int kQueryReaders = 4;  // the acceptance floor
constexpr int kFeedbackRounds = 10;

data::InterProGoConfig SmallDataset() {
  data::InterProGoConfig config;
  config.num_go_terms = 80;
  config.num_entries = 60;
  config.num_pubs = 50;
  config.num_journals = 10;
  config.num_methods = 40;
  config.interpro2go_links = 120;
  config.entry2pub_links = 100;
  config.method2pub_links = 80;
  return config;
}

QSystemConfig BaseConfig() {
  QSystemConfig config;
  config.view.query_graph.min_similarity = 0.5;
  config.view.query_graph.max_matches_per_keyword = 6;
  // Sequential per-search solving; the concurrency under test is
  // many whole searches sharing one engine, not intra-search fan-out.
  config.steiner_threads = -1;
  return config;
}

struct Harness {
  data::InterProGoDataset dataset;
  std::unique_ptr<QSystem> q;
  std::vector<std::size_t> view_ids;

  explicit Harness(bool async) {
    dataset = data::BuildInterProGo(SmallDataset());
    QSystemConfig config = BaseConfig();
    config.async_refresh = async;
    config.async_repair_threads = async ? 2 : 0;
    q = std::make_unique<QSystem>(config);
    for (const auto& src : dataset.catalog.sources()) {
      Q_CHECK_OK(q->RegisterSource(src));
    }
    Q_CHECK_OK(q->RunInitialAlignment());
    for (std::size_t i = 0; i < kNumViews; ++i) {
      auto id = q->CreateView(
          dataset.keyword_queries[i % dataset.keyword_queries.size()]);
      Q_CHECK_OK(id.status());
      view_ids.push_back(*id);
    }
  }
};

void ExpectInternallyConsistent(const query::ViewSnapshot& s,
                                const std::string& label) {
  EXPECT_EQ(s.trees.size(), s.queries.size()) << label;
  for (std::size_t r = 0; r < s.results.rows.size(); ++r) {
    ASSERT_LT(s.results.rows[r].query_index, s.queries.size())
        << label << " row " << r;
  }
  for (std::size_t t = 0; t < s.trees.size(); ++t) {
    EXPECT_EQ(s.trees[t].edges, s.queries[t].tree.edges)
        << label << " tree/query " << t;
  }
}

void ExpectSameViewState(const query::ViewSnapshot& a,
                         const query::ViewSnapshot& b,
                         const std::string& label) {
  ASSERT_EQ(a.trees.size(), b.trees.size()) << label;
  for (std::size_t i = 0; i < a.trees.size(); ++i) {
    EXPECT_EQ(a.trees[i].edges, b.trees[i].edges) << label << " tree " << i;
    EXPECT_EQ(a.trees[i].cost, b.trees[i].cost) << label << " tree " << i;
  }
  EXPECT_EQ(a.results.columns, b.results.columns) << label;
  ASSERT_EQ(a.results.rows.size(), b.results.rows.size()) << label;
  for (std::size_t i = 0; i < a.results.rows.size(); ++i) {
    EXPECT_EQ(a.results.rows[i].cost, b.results.rows[i].cost)
        << label << " row " << i;
    EXPECT_EQ(a.results.rows[i].query_index, b.results.rows[i].query_index)
        << label << " row " << i;
    EXPECT_EQ(a.results.rows[i].values, b.results.rows[i].values)
        << label << " row " << i;
  }
}

// --- satellite 1: the sharded shortest-path cache ------------------------

std::shared_ptr<const steiner::SpTree> MakeTree(std::size_t nodes) {
  auto tree = std::make_shared<steiner::SpTree>();
  tree->dist.assign(nodes, 1.0);
  tree->pred_node.assign(nodes, 0);
  tree->pred_edge.assign(nodes, 0);
  tree->settled.assign(nodes, 1);
  tree->complete = true;
  return tree;
}

// Many threads Lookup/Insert across shards while another bumps the
// generation mid-flight. Before the cache was sharded with atomic
// counters this was a data race on hits_/misses_/the entry map; now the
// counters must come out exact: every lookup is counted exactly once,
// and after a final purge the size accounting returns to zero (any drift
// in num_entries_ from the insert/purge interleaving would show here).
TEST(ServeConcurrencyTest, SpCacheCountersExactUnderConcurrentHammer) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  constexpr std::size_t kTerminals = 64;
  steiner::ShortestPathCache cache(/*max_entries=*/1 << 20);
  const std::vector<double> edge_cost;  // unused: overlays stay empty
  const std::vector<std::uint32_t> required = {0};

  std::atomic<std::uint64_t> lookups{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Rng rng(9000 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t gen = cache.generation();
        const auto terminal =
            static_cast<std::uint32_t>(rng.Uniform(kTerminals));
        if (rng.Uniform(3) == 0) {
          cache.Insert(gen, terminal, {}, {}, MakeTree(4));
        } else {
          cache.Lookup(gen, terminal, {}, {}, edge_cost, required,
                       /*require_complete=*/false);
          lookups.fetch_add(1, std::memory_order_relaxed);
        }
        if (t == 0 && i % 1000 == 999) cache.BumpGeneration();
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(cache.hits() + cache.misses(), lookups.load());
  // Two bumps purge every generation still holding entries (inserts may
  // land under the pre-bump generation they read); exact accounting must
  // drain back to zero.
  cache.BumpGeneration();
  cache.BumpGeneration();
  EXPECT_EQ(cache.size(), 0u);

  // And hits are actually possible (the hammer wasn't all misses): a
  // deterministic insert-then-lookup on the quiet cache hits.
  const std::uint64_t gen = cache.generation();
  cache.Insert(gen, 7, {}, {}, MakeTree(4));
  const std::size_t hits_before = cache.hits();
  EXPECT_NE(cache.Lookup(gen, 7, {}, {}, edge_cost, required, false),
            nullptr);
  EXPECT_EQ(cache.hits(), hits_before + 1);
}

// --- satellite 2: certificate/serial publication -------------------------

// Readers hammer ReadView while feedback publishes new snapshots: every
// published snapshot must carry certificate.serial == search_serial (one
// critical section publishes both), and QueryView results — which are
// unpublished — must carry zeroed serials with a fully consistent body.
TEST(ServeConcurrencyTest, CertificateSerialNeverTearsFromSearchSerial) {
  Harness h(/*async=*/true);
  std::atomic<bool> done{false};
  std::atomic<int> violations{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < kQueryReaders; ++r) {
    readers.emplace_back([&, r] {
      util::Rng rng(9100 + r);
      while (!done.load(std::memory_order_acquire)) {
        std::size_t id = h.view_ids[rng.Uniform(h.view_ids.size())];
        query::ViewResult read = h.q->ReadView(id);
        if (read.state == nullptr) continue;
        if (read.state->certificate.serial != read.state->search_serial) {
          ++violations;
        }
        if (rng.Uniform(4) == 0) {
          auto fresh = h.q->QueryView(id);
          if (fresh.ok()) {
            EXPECT_EQ(fresh->search_serial, 0u);
            EXPECT_EQ(fresh->certificate.serial, 0u);
            ExpectInternallyConsistent(*fresh,
                                       "queryview view " + std::to_string(id));
          }
        }
      }
    });
  }

  util::Rng rng(9199);
  for (int round = 0; round < kFeedbackRounds; ++round) {
    std::size_t id = h.view_ids[rng.Uniform(h.view_ids.size())];
    query::ViewResult read = h.q->ReadView(id);
    if (read.state == nullptr || read.state->trees.empty()) continue;
    ASSERT_TRUE(
        h.q->ApplyFeedback(id, read.state->trees[rng.Uniform(
                                   read.state->trees.size())])
            .ok());
  }
  ASSERT_TRUE(h.q->DrainRefreshes().ok());
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();
  EXPECT_EQ(violations.load(), 0);
}

// --- tentpole: QueryView readers race the feedback writer ----------------

// One committed feedback event, recorded in commit order so the twin
// synchronous system can replay the identical MIRA trajectory.
struct FeedbackEvent {
  std::size_t view_id;
  steiner::SteinerTree endorsed;
};

// Registers a clone of an existing table as a brand-new source `name` —
// the structural operation both the live run and the twin replay use.
void RegisterClonedSource(Harness* h, const std::string& table_name,
                          const std::string& name) {
  auto table = h->dataset.catalog.FindTable(table_name);
  ASSERT_NE(table, nullptr);
  auto source = std::make_shared<relational::DataSource>(name);
  auto copy = std::make_shared<relational::Table>(relational::RelationSchema(
      name, table->schema().relation(), table->schema().attributes()));
  for (const auto& row : table->rows()) {
    ASSERT_TRUE(copy->AppendRow(row).ok());
  }
  ASSERT_TRUE(source->AddTable(copy).ok());
  ASSERT_TRUE(h->q->RegisterAndAlignSource(source).ok());
}

// >= 4 query workers run live QueryView searches (plus ReadView probes)
// while a writer thread applies feedback and — mid-run — registers a new
// source (the structural path, which takes the serving gate exclusively).
// Every result must be internally consistent; at quiescence QueryView
// must reproduce the published snapshot bit for bit, and the whole system
// must match a synchronous twin fed the same committed sequence.
TEST(ServeConcurrencyTest, QueryViewRacesWriterAndMatchesSyncTwin) {
  Harness h(/*async=*/true);

  std::mutex log_mu;
  std::vector<FeedbackEvent> log;  // commit order == replay order
  // Number of committed feedback events that preceded the structural
  // registration (the writer records it at commit time so the twin can
  // replay the registration at the same position).
  std::size_t structural_split = 0;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> searches_ok{0};

  std::vector<std::thread> threads;
  for (int r = 0; r < kQueryReaders; ++r) {
    threads.emplace_back([&, r] {
      util::Rng rng(9300 + r);
      while (!done.load(std::memory_order_acquire)) {
        std::size_t i = rng.Uniform(h.view_ids.size());
        std::string label =
            "worker " + std::to_string(r) + " view " + std::to_string(i);
        auto result = h.q->QueryView(h.view_ids[i]);
        // InvalidArgument only for ids never created; created views have
        // refreshed snapshots before the threads start.
        ASSERT_TRUE(result.ok()) << label << ": "
                                 << result.status().ToString();
        ExpectInternallyConsistent(*result, label);
        searches_ok.fetch_add(1, std::memory_order_relaxed);
        if (rng.Uniform(4) == 0) {
          query::ViewResult read = h.q->ReadView(h.view_ids[i]);
          ASSERT_NE(read.state, nullptr) << label;
          ExpectInternallyConsistent(*read.state, label + " (published)");
        }
      }
    });
  }

  // The writer: feedback rounds with a structural registration wedged in
  // the middle, so readers cross the exclusive serving gate both ways.
  {
    util::Rng rng(9399);
    for (int round = 0; round < kFeedbackRounds; ++round) {
      if (round == kFeedbackRounds / 2) {
        RegisterClonedSource(&h, "interpro.pub", "newsrc");
        structural_split = log.size();
      }
      std::size_t view = h.view_ids[rng.Uniform(h.view_ids.size())];
      query::ViewResult read = h.q->ReadView(view);
      if (read.state == nullptr || read.state->trees.empty()) continue;
      steiner::SteinerTree endorsed =
          read.state->trees[rng.Uniform(read.state->trees.size())];
      std::lock_guard<std::mutex> lock(log_mu);
      ASSERT_TRUE(h.q->ApplyFeedback(view, endorsed).ok());
      log.push_back(FeedbackEvent{view, std::move(endorsed)});
    }
  }
  ASSERT_TRUE(h.q->DrainRefreshes().ok());
  done.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  EXPECT_GT(searches_ok.load(), 0u);
  ASSERT_FALSE(log.empty());

  // Quiescence: a fresh QueryView search must reproduce the published
  // snapshot exactly — same pinned CSR costs, same frozen weights, same
  // deterministic enumeration.
  for (std::size_t id : h.view_ids) {
    auto fresh = h.q->QueryView(id);
    ASSERT_TRUE(fresh.ok()) << "view " << id;
    query::ViewResult published = h.q->ReadView(id);
    ASSERT_NE(published.state, nullptr);
    ExpectSameViewState(*fresh, *published.state,
                        "quiescent query-vs-published view " +
                            std::to_string(id));
  }

  // And the twin synchronous system replaying the committed sequence —
  // feedback events in commit order with the structural registration at
  // its recorded position — lands on bit-identical published state.
  Harness twin(/*async=*/false);
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (i == structural_split) {
      RegisterClonedSource(&twin, "interpro.pub", "newsrc");
    }
    ASSERT_TRUE(twin.q->ApplyFeedback(log[i].view_id, log[i].endorsed).ok());
  }
  if (structural_split == log.size()) {
    // Every committed feedback event preceded the registration.
    RegisterClonedSource(&twin, "interpro.pub", "newsrc");
  }
  for (std::size_t i = 0; i < h.view_ids.size(); ++i) {
    ExpectSameViewState(*h.q->ReadView(h.view_ids[i]).state,
                        *twin.q->ReadView(twin.view_ids[i]).state,
                        "quiescent twin view " + std::to_string(i));
  }
}

// --- onboarding while serving: registrations race QueryView readers ------

// Served-output comparator for onboarding runs: a structurally skipped
// view keeps serving its pre-registration snapshot, whose keyword-overlay
// edge ids were numbered off a smaller base graph — so tree edge ids are
// not comparable against a twin that rebuilt, while tree costs, the
// output schema, and every ranked tuple must still agree bit for bit.
void ExpectSameServedOutput(const query::ViewSnapshot& a,
                            const query::ViewSnapshot& b,
                            const std::string& label) {
  ASSERT_EQ(a.trees.size(), b.trees.size()) << label;
  for (std::size_t i = 0; i < a.trees.size(); ++i) {
    EXPECT_EQ(a.trees[i].cost, b.trees[i].cost) << label << " tree " << i;
  }
  EXPECT_EQ(a.results.columns, b.results.columns) << label;
  ASSERT_EQ(a.results.rows.size(), b.results.rows.size()) << label;
  for (std::size_t i = 0; i < a.results.rows.size(); ++i) {
    EXPECT_EQ(a.results.rows[i].cost, b.results.rows[i].cost)
        << label << " row " << i;
    EXPECT_EQ(a.results.rows[i].query_index, b.results.rows[i].query_index)
        << label << " row " << i;
    EXPECT_EQ(a.results.rows[i].values, b.results.rows[i].values)
        << label << " row " << i;
  }
}

// A registration writer streams new sources — alternating provably
// irrelevant islands with sources relevant to one community — while
// >= 4 reader threads run live QueryView searches and ReadView probes
// throughout. Certificate-skipped acks never quiesce serving, so readers
// stay live across every registration; the gate's classification is
// deterministic (readers never move weights), so the skip/rebuild stats
// come out exact; and at quiescence QueryView reproduces the published
// snapshot bit for bit while a synchronous twin fed the same
// registrations serves identical output.
TEST(ServeConcurrencyTest, OnboardingRegistrationsRaceQueryReaders) {
  constexpr std::size_t kCommunities = 8;
  constexpr int kRegistrations = 8;
  data::OnboardingDataset dataset =
      data::BuildOnboardingDataset(kCommunities);

  auto build_system = [&](bool async) {
    QSystemConfig config = BaseConfig();
    config.view.top_k.k = 2;
    // MAD only: the metadata matcher would align the shared link-attribute
    // names across communities and merge the islands.
    config.use_metadata_matcher = false;
    config.async_refresh = async;
    config.async_repair_threads = async ? 2 : 0;
    auto q = std::make_unique<QSystem>(config);
    for (const auto& src : dataset.sources) {
      Q_CHECK_OK(q->RegisterSource(src));
    }
    std::vector<std::size_t> ids;
    for (const auto& keywords : dataset.keyword_queries) {
      auto id = q->CreateView(keywords);
      Q_CHECK_OK(id.status());
      ids.push_back(*id);
    }
    return std::make_pair(std::move(q), std::move(ids));
  };

  auto [q, view_ids] = build_system(/*async=*/true);
  ASSERT_TRUE(q->DrainRefreshes().ok());
  const auto sched_before = q->async_scheduler()->stats();

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> searches_ok{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kQueryReaders; ++r) {
    readers.emplace_back([&, r, &q = q, &view_ids = view_ids] {
      util::Rng rng(9700 + r);
      while (!done.load(std::memory_order_acquire)) {
        std::size_t i = rng.Uniform(view_ids.size());
        std::string label =
            "reader " + std::to_string(r) + " view " + std::to_string(i);
        auto result = q->QueryView(view_ids[i]);
        ASSERT_TRUE(result.ok()) << label << ": "
                                 << result.status().ToString();
        ExpectInternallyConsistent(*result, label);
        searches_ok.fetch_add(1, std::memory_order_relaxed);
        if (rng.Uniform(4) == 0) {
          query::ViewResult read = q->ReadView(view_ids[i]);
          ASSERT_NE(read.state, nullptr) << label;
          ExpectInternallyConsistent(*read.state, label + " (published)");
        }
      }
    });
  }

  // The registration stream: even serials are vocabulary-disjoint islands
  // (every view skips), odd serials overlap one community (that view
  // rebuilds, the rest skip by distance).
  for (int i = 0; i < kRegistrations; ++i) {
    if (i % 2 == 0) {
      ASSERT_TRUE(q->RegisterAndAlignSource(
                       data::MakeDisjointSource(static_cast<std::size_t>(i)))
                      .ok());
    } else {
      ASSERT_TRUE(q->RegisterAndAlignSource(data::MakeOverlappingSource(
                                                static_cast<std::size_t>(i),
                                                static_cast<std::size_t>(i) %
                                                    kCommunities))
                      .ok());
    }
  }
  ASSERT_TRUE(q->DrainRefreshes().ok());
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();
  EXPECT_GT(searches_ok.load(), 0u);

  const auto sched_after = q->async_scheduler()->stats();
  EXPECT_EQ(sched_after.structural_rounds,
            sched_before.structural_rounds + kRegistrations);
  EXPECT_EQ(sched_after.structural_skips,
            sched_before.structural_skips +
                (kRegistrations / 2) * kCommunities +
                (kRegistrations / 2) * (kCommunities - 1));
  EXPECT_EQ(sched_after.structural_rebuilds,
            sched_before.structural_rebuilds + kRegistrations / 2);

  // Quiescence: a live search against each pinned slot reproduces the
  // published snapshot exactly (skipped slots kept their engine, so even
  // edge ids agree here).
  for (std::size_t id : view_ids) {
    auto fresh = q->QueryView(id);
    ASSERT_TRUE(fresh.ok()) << "view " << id;
    query::ViewResult published = q->ReadView(id);
    ASSERT_NE(published.state, nullptr);
    ExpectSameViewState(*fresh, *published.state,
                        "quiescent query-vs-published view " +
                            std::to_string(id));
  }

  // And the synchronous twin — which quiesces and rebuilds at every
  // registration — serves the same output.
  auto [twin, twin_ids] = build_system(/*async=*/false);
  for (int i = 0; i < kRegistrations; ++i) {
    if (i % 2 == 0) {
      ASSERT_TRUE(twin->RegisterAndAlignSource(
                         data::MakeDisjointSource(static_cast<std::size_t>(i)))
                      .ok());
    } else {
      ASSERT_TRUE(twin->RegisterAndAlignSource(data::MakeOverlappingSource(
                                                   static_cast<std::size_t>(i),
                                                   static_cast<std::size_t>(
                                                       i) %
                                                       kCommunities))
                      .ok());
    }
  }
  for (std::size_t i = 0; i < view_ids.size(); ++i) {
    ExpectSameServedOutput(*q->ReadView(view_ids[i]).state,
                           *twin->ReadView(twin_ids[i]).state,
                           "quiescent twin view " + std::to_string(i));
  }
}

// --- satellite 3: WaitFresh vs. failed barriers and structural ops -------

// A SyncBarrier that fails (here: the text index is emptied and the graph
// structurally bumped, so every rebuild's keyword lookup reports
// NotFound) bumps the epoch without validating any view. WaitFresh's
// predicate could then never become true — before the fix the scheduler
// did not record the barrier's failure, so waiters burned their entire
// deadline. They must wake promptly with `false`, and recover to `true`
// once the base state is repaired.
TEST(ServeConcurrencyTest, FailedSyncBarrierWakesWaitFreshPromptly) {
  data::InterProGoDataset dataset = data::BuildInterProGo(SmallDataset());
  graph::FeatureSpace space;
  graph::CostModel model(&space, graph::CostModelConfig{});
  graph::WeightVector weights(&space);
  text::TextIndex index;
  graph::SearchGraph graph;
  for (const auto& src : dataset.catalog.sources()) {
    for (const auto& table : src->tables()) index.IndexTable(*table);
    graph::AddSourceToGraph(*src, &model, &graph);
  }

  query::ViewConfig vconfig;
  vconfig.query_graph.min_similarity = 0.5;
  vconfig.query_graph.max_matches_per_keyword = 6;
  query::TopKView view(dataset.keyword_queries[0], vconfig);

  RefreshEngine engine;
  const std::size_t slot = engine.RegisterView(&view);
  ASSERT_TRUE(engine
                  .RefreshView(slot, graph, dataset.catalog, index, &model,
                               weights)
                  .ok());
  AsyncRefreshScheduler sched(&engine, /*pool=*/nullptr,
                              /*dedicated_threads=*/1, &graph,
                              &dataset.catalog, &index, &model, &weights);
  sched.TrackView(slot, &view);
  ASSERT_TRUE(sched.WaitFresh(slot, std::chrono::milliseconds(1000)));

  // Break the base state: an empty index makes every rebuild fail with
  // keyword-NotFound, and the structural node forces the rebuild
  // classification on the next barrier.
  index = text::TextIndex();
  graph.AddNode(graph::NodeKind::kValue, "orphan");
  ASSERT_FALSE(sched.SyncBarrier().ok());

  // The waiter must observe the failure promptly — well inside the
  // deadline (generous bound for sanitizer builds).
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(sched.WaitFresh(slot, std::chrono::milliseconds(30000)));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::milliseconds(5000));
  EXPECT_FALSE(sched.Drain().ok());

  // Repair the index: the next barrier succeeds, clears the sticky
  // error, and WaitFresh reports fresh again.
  index.IndexCatalog(dataset.catalog);
  ASSERT_TRUE(sched.SyncBarrier().ok());
  EXPECT_TRUE(sched.WaitFresh(slot, std::chrono::milliseconds(30000)));
  EXPECT_TRUE(sched.Drain().ok());
}

// WaitViewFresh deadline semantics at the QSystem boundary: unknown ids
// report false immediately (async and sync), and a waiter racing a
// structural operation (which holds the serving gate exclusively) still
// returns promptly rather than deadlocking against it — the waiter must
// not hold the gate across its blocking wait.
TEST(ServeConcurrencyTest, WaitViewFreshPromptAcrossStructuralOps) {
  Harness h(/*async=*/true);

  auto expect_prompt_false = [&](std::size_t id) {
    const auto start = std::chrono::steady_clock::now();
    EXPECT_FALSE(h.q->WaitViewFresh(id, std::chrono::milliseconds(10000)));
    EXPECT_LT(std::chrono::steady_clock::now() - start,
              std::chrono::milliseconds(5000));
  };
  expect_prompt_false(h.view_ids.size() + 100);

  std::atomic<bool> done{false};
  std::thread waiter([&] {
    util::Rng rng(9500);
    while (!done.load(std::memory_order_acquire)) {
      std::size_t id = h.view_ids[rng.Uniform(h.view_ids.size())];
      EXPECT_TRUE(h.q->WaitViewFresh(id, std::chrono::milliseconds(30000)))
          << "view " << id;
    }
  });
  // Structural churn: registrations take the serving gate exclusively
  // and route every view through the serial rebuild path.
  for (int i = 0; i < 2; ++i) {
    RegisterClonedSource(&h, "interpro.pub", "pubsrc" + std::to_string(i));
  }
  done.store(true, std::memory_order_release);
  waiter.join();
  ASSERT_TRUE(h.q->DrainRefreshes().ok());

  // Sync-mode boundary: known ids true, unknown false, both immediate.
  Harness sync(/*async=*/false);
  EXPECT_TRUE(
      sync.q->WaitViewFresh(sync.view_ids[0], std::chrono::milliseconds(1)));
  EXPECT_FALSE(sync.q->WaitViewFresh(sync.view_ids.size() + 100,
                                     std::chrono::milliseconds(1)));
}

}  // namespace
}  // namespace q::core
