// Scale-oriented storage tests: the compact SearchGraph representation
// (SoA edges, interned payload pools, blocked-CSR adjacency) must be
// observationally identical to the legacy AoS representation — the same
// randomized mutation sequence applied to both must extract bitwise
// identical CSR snapshots — while costing a fraction of the bytes; the
// streaming catalog generator must scale linearly with realistic
// domain-hub topology; and sharded terminal-local search over generated
// catalogs must reproduce unsharded output exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "graph/cost_model.h"
#include "graph/legacy_rep.h"
#include "graph/search_graph.h"
#include "relational/catalog.h"
#include "steiner/csr.h"
#include "steiner/top_k.h"
#include "util/random.h"

namespace q::graph {
namespace {

// Applies one randomized op sequence to both representations: node adds,
// plain edges, association edges with matcher-vote merges (same pair
// re-associated), and feature rewrites. Op order — not just final state —
// matters, because adjacency blocks must list edge ids in insertion
// order.
struct TwinGraphs {
  FeatureSpace space;
  SearchGraph compact;
  LegacyGraphRep legacy;
  std::vector<NodeId> nodes;
  std::vector<EdgeId> assoc_edges;

  void AddNodePair(NodeKind kind, const std::string& label) {
    NodeId a = compact.AddNode(kind, label);
    NodeId b = legacy.AddNode(kind, label);
    ASSERT_EQ(a, b);
    nodes.push_back(a);
  }

  FeatureVec MakeFeatures(util::Rng* rng, const std::string& key) {
    FeatureVec f;
    f.Add(space.Intern(key, 0.1 + rng->UniformDouble()), 1.0);
    return f;
  }

  void AddPlainEdge(util::Rng* rng, NodeId u, NodeId v) {
    Edge e;
    e.u = u;
    e.v = v;
    e.kind = EdgeKind::kMembership;
    e.fixed_zero = rng->Uniform(2) == 0;
    e.features = MakeFeatures(rng, "m" + std::to_string(compact.num_edges()));
    Edge copy = e;
    EdgeId a = compact.AddEdge(std::move(e));
    EdgeId b = legacy.AddEdge(std::move(copy));
    ASSERT_EQ(a, b);
  }

  void AddAssociation(util::Rng* rng, NodeId u, NodeId v,
                      const std::string& matcher) {
    FeatureVec f = MakeFeatures(rng, "a" + std::to_string(u) + "_" +
                                         std::to_string(v));
    MatcherScore score;
    score.matcher = matcher;
    score.confidence = rng->UniformDouble();
    EdgeId a = compact.AddAssociationEdge(u, v, f, score);
    EdgeId b = legacy.AddAssociationEdge(u, v, std::move(f), score);
    ASSERT_EQ(a, b);
    assoc_edges.push_back(a);
  }

  void RewriteFeatures(util::Rng* rng, EdgeId e) {
    FeatureVec f = compact.edge_features(e);
    f.Add(space.Intern("rw" + std::to_string(e), 0.1 + rng->UniformDouble()),
          1.0);
    FeatureVec copy = f;
    compact.SetEdgeFeatures(e, std::move(f));
    legacy.SetEdgeFeatures(e, std::move(copy));
  }
};

void ExpectSameCsr(const SearchGraph& compact, const LegacyGraphRep& legacy,
                   const WeightVector& weights, const std::string& label) {
  steiner::CsrGraph a = steiner::CsrGraph::Build(compact, weights);
  LegacyGraphRep::LegacyCsr b = legacy.BuildCsr(weights);
  ASSERT_EQ(static_cast<std::size_t>(a.num_nodes), legacy.num_nodes())
      << label;
  ASSERT_EQ(static_cast<std::size_t>(a.num_edges), legacy.num_edges())
      << label;
  EXPECT_EQ(a.offsets, b.offsets) << label;
  EXPECT_EQ(a.arc_head, b.arc_head) << label;
  EXPECT_EQ(a.arc_edge, b.arc_edge) << label;
  EXPECT_EQ(a.arc_cost, b.arc_cost) << label;
  EXPECT_EQ(a.edge_u, b.edge_u) << label;
  EXPECT_EQ(a.edge_v, b.edge_v) << label;
  EXPECT_EQ(a.edge_cost, b.edge_cost) << label;
}

class CompactVsLegacyTest : public ::testing::TestWithParam<int> {};

// Randomized op-sequence differential: after every burst of mutations the
// two representations must extract identical CSR snapshots — adjacency
// blocks in the same per-node insertion order, association merges landing
// on the same edge ids, rewrites repricing identically — both before and
// after CompactAdjacency() squeezes the arena.
TEST_P(CompactVsLegacyTest, MutationSequenceExtractsIdenticalCsr) {
  util::Rng rng(61000 + GetParam());
  TwinGraphs twins;
  WeightVector weights(&twins.space);
  for (int i = 0; i < 20; ++i) {
    twins.AddNodePair(NodeKind::kAttribute, "attr" + std::to_string(i));
  }
  const char* matchers[] = {"meta", "mad", "overlap"};
  for (int burst = 0; burst < 6; ++burst) {
    for (int op = 0; op < 25; ++op) {
      switch (rng.Uniform(4)) {
        case 0:
          twins.AddNodePair(NodeKind::kAttribute,
                            "n" + std::to_string(twins.nodes.size()));
          break;
        case 1: {
          NodeId u = twins.nodes[rng.Uniform(twins.nodes.size())];
          NodeId v = twins.nodes[rng.Uniform(twins.nodes.size())];
          if (u != v) twins.AddPlainEdge(&rng, u, v);
          break;
        }
        case 2: {
          // Deliberately samples a small node set so merges (same pair,
          // different matcher vote) happen often.
          NodeId u = twins.nodes[rng.Uniform(8)];
          NodeId v = twins.nodes[rng.Uniform(8)];
          if (u != v) {
            twins.AddAssociation(&rng, u, v, matchers[rng.Uniform(3)]);
          }
          break;
        }
        default:
          if (!twins.assoc_edges.empty()) {
            twins.RewriteFeatures(
                &rng,
                twins.assoc_edges[rng.Uniform(twins.assoc_edges.size())]);
          }
          break;
      }
    }
    ExpectSameCsr(twins.compact, twins.legacy, weights,
                  "burst " + std::to_string(burst));
    if (burst == 3) {
      twins.compact.CompactAdjacency();
      ExpectSameCsr(twins.compact, twins.legacy, weights, "post-compact");
    }
  }
  // Edge payload reads must agree too (the CSR only proves costs).
  for (EdgeId e = 0; e < twins.compact.num_edges(); ++e) {
    const Edge& le = twins.legacy.edge(e);
    EXPECT_EQ(twins.compact.edge_features(e).entries(),
              le.features.entries());
    ASSERT_EQ(twins.compact.edge_provenance(e).size(), le.provenance.size());
    for (std::size_t i = 0; i < le.provenance.size(); ++i) {
      EXPECT_EQ(twins.compact.edge_provenance(e)[i].matcher,
                le.provenance[i].matcher);
      EXPECT_EQ(twins.compact.edge_provenance(e)[i].confidence,
                le.provenance[i].confidence);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSequences, CompactVsLegacyTest,
                         ::testing::Range(0, 6));

// Memory accounting: the breakdown's sections must sum to total() and the
// compact representation of a templated catalog (shared feature vectors,
// shared provenance) must undercut the legacy bytes substantially — this
// is the same comparison bench_graph_scale gates at >= 2x, asserted here
// at a small scale with a loose 1.5x floor so the unit suite catches
// regressions without timing sensitivity.
TEST(GraphMemoryTest, CompactRepresentationUndercutsLegacy) {
  util::Rng rng(77);
  data::StreamingCatalogOptions options;
  options.num_domains = 8;
  FeatureSpace space;
  CostModel model(&space, CostModelConfig{});
  SearchGraph compact;
  ASSERT_TRUE(data::BuildStreamingCatalog(2000, options, &rng,
                                          /*catalog=*/nullptr, &model,
                                          &compact)
                  .ok());

  // Replay the same structure into the legacy representation: nodes and
  // edges copied via the export API, so payloads match exactly.
  LegacyGraphRep legacy;
  for (NodeId n = 0; n < compact.num_nodes(); ++n) {
    legacy.AddNode(compact.node(n).kind, compact.node(n).label,
                   compact.node(n).attr);
  }
  for (EdgeId e = 0; e < compact.num_edges(); ++e) {
    legacy.AddEdge(compact.ExportEdge(e));
  }

  MemoryBreakdown breakdown = compact.MemoryUsage();
  EXPECT_EQ(breakdown.total(),
            breakdown.nodes_bytes + breakdown.node_index_bytes +
                breakdown.edges_bytes + breakdown.adjacency_bytes +
                breakdown.feature_pool_bytes + breakdown.provenance_bytes +
                breakdown.journal_bytes);
  EXPECT_GT(breakdown.total(), 0u);
  std::size_t legacy_bytes = legacy.MemoryUsage();
  EXPECT_GT(legacy_bytes, breakdown.total() * 3 / 2)
      << "compact=" << breakdown.total() << " legacy=" << legacy_bytes;
}

// Streaming generator contract: linear node/edge growth (3 nodes per
// source, at most 4 edges), payload interning collapsing each domain's
// association features to one pooled vector, and optional catalog
// registration.
TEST(StreamingCatalogTest, GeneratesLinearTopologyWithInternedPayloads) {
  util::Rng rng(91);
  data::StreamingCatalogOptions options;
  options.num_domains = 16;
  options.register_catalog = true;
  FeatureSpace space;
  CostModel model(&space, CostModelConfig{});
  relational::Catalog catalog;
  SearchGraph graph;
  const std::size_t count = 5000;
  ASSERT_TRUE(data::BuildStreamingCatalog(count, options, &rng, &catalog,
                                          &model, &graph)
                  .ok());
  EXPECT_EQ(catalog.sources().size(), count);
  // 1 relation + 2 attribute nodes per source.
  EXPECT_EQ(graph.num_nodes(), 3 * count);
  // 2 membership edges always; up to 2 association edges (hub merges can
  // collapse them).
  EXPECT_LE(graph.num_edges(), 4 * count);
  EXPECT_GT(graph.num_edges(), 3 * count);
  MemoryBreakdown breakdown = graph.MemoryUsage();
  // Interning: association payloads are templated per domain, so pool
  // bytes must stay far below one-FeatureVec-per-edge (the legacy cost:
  // >= one heap block per association edge).
  EXPECT_LT(breakdown.feature_pool_bytes, graph.num_edges() * 16);
  EXPECT_GT(breakdown.total() / count, 0u);
}

// Sharded search over a generated catalog (the "new sources registered,
// then queried" flow): terminals drawn near one domain's hubs, sharded
// and unsharded top-k must agree exactly, KMB and exact both.
TEST(StreamingCatalogTest, ShardedSearchMatchesUnshardedOnGeneratedCatalog) {
  util::Rng rng(92);
  data::StreamingCatalogOptions options;
  options.num_domains = 12;
  FeatureSpace space;
  CostModel model(&space, CostModelConfig{});
  SearchGraph graph;
  ASSERT_TRUE(data::BuildStreamingCatalog(1500, options, &rng,
                                          /*catalog=*/nullptr, &model,
                                          &graph)
                  .ok());
  WeightVector weights(&space);

  // Terminals: a recent source's attribute node plus two attribute nodes
  // from its neighborhood, mid-distance in settle order (same-domain by
  // construction — the temporal-locality window the sharding exploits —
  // but far enough apart that the Steiner trees are nontrivial).
  NodeId t0 = kInvalidNode;
  for (NodeId n = graph.num_nodes(); n-- > 0;) {
    if (graph.node(n).kind == NodeKind::kAttribute) {
      t0 = n;
      break;
    }
  }
  ASSERT_NE(t0, kInvalidNode);
  DistanceField field;
  graph.Dijkstra({{t0, 0.0}}, weights,
                 std::numeric_limits<double>::infinity(), &field);
  std::vector<NodeId> near_attrs;
  for (NodeId n : field.reached()) {
    if (n != t0 && graph.node(n).kind == NodeKind::kAttribute &&
        near_attrs.size() < 60) {
      near_attrs.push_back(n);
    }
  }
  ASSERT_GE(near_attrs.size(), 2u);
  std::vector<NodeId> terminals = {t0, near_attrs[near_attrs.size() / 2],
                                   near_attrs.back()};

  for (bool approximate : {true, false}) {
    steiner::TopKConfig plain;
    plain.k = 3;
    plain.approximate = approximate;
    steiner::TopKConfig sharded = plain;
    sharded.sharded.enabled = true;
    sharded.sharded.target_shard_nodes = 256;
    auto a = steiner::TopKSteinerTrees(graph, weights, terminals, plain);
    auto b = steiner::TopKSteinerTrees(graph, weights, terminals, sharded);
    ASSERT_EQ(a.size(), b.size()) << (approximate ? "kmb" : "exact");
    ASSERT_FALSE(a.empty()) << (approximate ? "kmb" : "exact");
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].edges, b[i].edges) << i;
      EXPECT_EQ(a[i].cost, b[i].cost) << i;
    }
  }
}

}  // namespace
}  // namespace q::graph
