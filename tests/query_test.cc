#include <gtest/gtest.h>

#include <memory>

#include "data/interpro_go.h"
#include "graph/cost_model.h"
#include "graph/graph_builder.h"
#include "query/conjunctive_query.h"
#include "query/executor.h"
#include "query/query_graph.h"
#include "query/ranked_union.h"
#include "query/view.h"
#include "steiner/top_k.h"
#include "text/text_index.h"

namespace q::query {
namespace {

// Shared fixture: the InterPro-GO dataset with FKs declared (so the
// search graph is connected without running matchers).
class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::InterProGoConfig config;
    config.declare_foreign_keys = true;
    config.num_go_terms = 80;
    config.num_entries = 60;
    config.num_pubs = 50;
    config.num_journals = 10;
    config.num_methods = 40;
    config.interpro2go_links = 120;
    config.entry2pub_links = 100;
    config.method2pub_links = 80;
    dataset_ = data::BuildInterProGo(config);
    model_ = std::make_unique<graph::CostModel>(&space_,
                                                graph::CostModelConfig{});
    weights_ = std::make_unique<graph::WeightVector>(&space_);
    graph_ = graph::BuildSearchGraph(dataset_.catalog, model_.get());
    index_.IndexCatalog(dataset_.catalog);
  }

  util::Result<QueryGraph> Build(const std::vector<std::string>& keywords) {
    return BuildQueryGraph(graph_, index_, keywords, model_.get(),
                           *weights_, QueryGraphOptions{});
  }

  data::InterProGoDataset dataset_;
  graph::FeatureSpace space_;
  std::unique_ptr<graph::CostModel> model_;
  std::unique_ptr<graph::WeightVector> weights_;
  graph::SearchGraph graph_;
  text::TextIndex index_;
};

TEST_F(QueryTest, QueryGraphAddsKeywordNodes) {
  auto qg = Build({"go term", "pub title"});
  ASSERT_TRUE(qg.ok());
  EXPECT_EQ(qg->keyword_nodes.size(), 2u);
  for (graph::NodeId kw : qg->keyword_nodes) {
    EXPECT_EQ(qg->graph.node(kw).kind, graph::NodeKind::kKeyword);
    EXPECT_FALSE(qg->graph.edges_of(kw).empty());
  }
  // The base graph is embedded unchanged (node-id stable).
  EXPECT_GE(qg->graph.num_nodes(), graph_.num_nodes() + 2);
}

TEST_F(QueryTest, ValueKeywordMaterializesValueNode) {
  auto qg = Build({"plasma membrane"});
  ASSERT_TRUE(qg.ok());
  // tf-idf matching legitimately returns partial value matches as well
  // ("membrane", "plasma", ...); the exact value must be among them, with
  // a zero-cost membership link to its attribute node.
  bool found_exact = false;
  for (graph::EdgeId eid : qg->graph.edges_of(qg->keyword_nodes[0])) {
    const graph::EdgeView e = qg->graph.edge(eid);
    graph::NodeId target_id = e.Other(qg->keyword_nodes[0]);
    const graph::Node& target = qg->graph.node(target_id);
    if (target.kind != graph::NodeKind::kValue) continue;
    if (qg->graph.node_value_text(target_id) == "plasma membrane" &&
        target.attr.attribute == "name") {
      found_exact = true;
      bool has_membership = false;
      for (graph::EdgeId me : qg->graph.edges_of(target_id)) {
        if (qg->graph.edge(me).kind ==
            graph::EdgeKind::kValueMembership) {
          has_membership = true;
          EXPECT_DOUBLE_EQ(qg->graph.EdgeCost(me, *weights_), 0.0);
        }
      }
      EXPECT_TRUE(has_membership);
    }
  }
  EXPECT_TRUE(found_exact);
}

TEST_F(QueryTest, UnmatchableKeywordFails) {
  auto qg = Build({"qwertyuiopxyz"});
  ASSERT_FALSE(qg.ok());
  EXPECT_TRUE(qg.status().IsNotFound());
}

TEST_F(QueryTest, AssociationThresholdFiltersEdges) {
  // Add an expensive association, then exclude it via threshold.
  auto a = graph_.FindAttributeNode(
      relational::AttributeId{"go", "go_term", "name"});
  auto b = graph_.FindAttributeNode(
      relational::AttributeId{"interpro", "entry", "name"});
  ASSERT_TRUE(a.has_value() && b.has_value());
  graph_.AddAssociationEdge(
      *a, *b,
      model_->AssociationFeatures("mad", 0.05, "go.go_term",
                                  "interpro.entry", "k"),
      graph::MatcherScore{"mad", 0.05});

  QueryGraphOptions open;
  auto qg_all = BuildQueryGraph(graph_, index_, {"go term"}, model_.get(),
                                *weights_, open);
  ASSERT_TRUE(qg_all.ok());

  QueryGraphOptions strict;
  strict.association_cost_threshold = 0.1;  // cheaper than the new edge
  auto qg_strict = BuildQueryGraph(graph_, index_, {"go term"},
                                   model_.get(), *weights_, strict);
  ASSERT_TRUE(qg_strict.ok());
  EXPECT_LT(qg_strict->graph
                .EdgesOfKind(graph::EdgeKind::kAssociation)
                .size(),
            qg_all->graph.EdgesOfKind(graph::EdgeKind::kAssociation).size());
}

TEST_F(QueryTest, CompileTreeProducesJoinQuery) {
  auto qg = Build({"go term name", "pub title"});
  ASSERT_TRUE(qg.ok());
  steiner::TopKConfig topk;
  topk.k = 1;
  auto trees = steiner::TopKSteinerTrees(qg->graph, *weights_,
                                         qg->keyword_nodes, topk);
  ASSERT_FALSE(trees.empty());
  auto cq = CompileTree(*qg, trees[0], *weights_);
  ASSERT_TRUE(cq.ok());
  EXPECT_FALSE(cq->atoms.empty());
  EXPECT_FALSE(cq->select_list.empty());
  EXPECT_GT(cq->cost, 0.0);
  std::string sql = cq->ToSql();
  EXPECT_NE(sql.find("SELECT"), std::string::npos);
  EXPECT_NE(sql.find("FROM"), std::string::npos);
}

TEST_F(QueryTest, ExecutorJoinsAlongForeignKeys) {
  // go term name 'plasma membrane' publication titles (the Fig. 3 query).
  auto qg = Build({"plasma membrane", "pub title"});
  ASSERT_TRUE(qg.ok());
  steiner::TopKConfig topk;
  topk.k = 5;
  auto trees = steiner::TopKSteinerTrees(qg->graph, *weights_,
                                         qg->keyword_nodes, topk);
  ASSERT_FALSE(trees.empty());
  Executor executor(&dataset_.catalog);
  bool any_rows = false;
  for (const auto& tree : trees) {
    auto cq = CompileTree(*qg, tree, *weights_);
    ASSERT_TRUE(cq.ok());
    auto rows = executor.Execute(*cq);
    ASSERT_TRUE(rows.ok()) << rows.status();
    if (!rows->empty()) {
      any_rows = true;
      for (const auto& row : *rows) {
        EXPECT_EQ(row.size(), cq->select_list.size());
      }
    }
  }
  EXPECT_TRUE(any_rows);
}

TEST_F(QueryTest, ExecutorAppliesSelections) {
  // A direct query on go_term with a value predicate.
  ConjunctiveQuery cq;
  cq.atoms = {"go.go_term"};
  cq.selections = {{relational::AttributeId{"go", "go_term", "name"},
                    "plasma membrane"}};
  cq.select_list = {{relational::AttributeId{"go", "go_term", "acc"},
                     "acc"},
                    {relational::AttributeId{"go", "go_term", "name"},
                     "name"}};
  Executor executor(&dataset_.catalog);
  auto rows = executor.Execute(cq);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);  // generator seeds exactly one such term
  EXPECT_EQ((*rows)[0][1].ToText(), "plasma membrane");
}

TEST_F(QueryTest, ExecutorJoinMatchesManualCount) {
  // join interpro2go with go_term on acc = go_id; count must equal a
  // nested-loop reference count.
  ConjunctiveQuery cq;
  cq.atoms = {"go.go_term", "interpro.interpro2go"};
  cq.joins = {{relational::AttributeId{"go", "go_term", "acc"},
               relational::AttributeId{"interpro", "interpro2go", "go_id"}}};
  cq.select_list = {{relational::AttributeId{"go", "go_term", "acc"},
                     "acc"}};
  Executor executor(&dataset_.catalog);
  auto rows = executor.Execute(cq);
  ASSERT_TRUE(rows.ok());

  auto go_table = dataset_.catalog.FindTable("go.go_term");
  auto i2g = dataset_.catalog.FindTable("interpro.interpro2go");
  std::size_t expected = 0;
  for (const auto& r1 : go_table->rows()) {
    for (const auto& r2 : i2g->rows()) {
      if (r1[0].ToText() == r2[0].ToText()) ++expected;
    }
  }
  EXPECT_EQ(rows->size(), expected);
  EXPECT_GT(expected, 0u);
}

TEST_F(QueryTest, ExecutorAppliesResidualJoinConditionsOnCycles) {
  // A cyclic join graph: i2g joins go_term on acc=go_id AND (artificially)
  // requires i2g.entry_ac = entry.entry_ac plus entry joined back to
  // go_term via a name-level condition. The third condition closes a
  // cycle and must be applied as a residual filter.
  ConjunctiveQuery cq;
  cq.atoms = {"go.go_term", "interpro.entry", "interpro.interpro2go"};
  cq.joins = {
      {relational::AttributeId{"go", "go_term", "acc"},
       relational::AttributeId{"interpro", "interpro2go", "go_id"}},
      {relational::AttributeId{"interpro", "interpro2go", "entry_ac"},
       relational::AttributeId{"interpro", "entry", "entry_ac"}},
      // Cycle-closing condition (rarely true on synthetic data).
      {relational::AttributeId{"go", "go_term", "name"},
       relational::AttributeId{"interpro", "entry", "name"}}};
  cq.select_list = {
      {relational::AttributeId{"go", "go_term", "acc"}, "acc"}};
  Executor executor(&dataset_.catalog);
  auto rows = executor.Execute(cq);
  ASSERT_TRUE(rows.ok()) << rows.status();

  // Reference: brute-force triple nested loop.
  auto go_table = dataset_.catalog.FindTable("go.go_term");
  auto entry = dataset_.catalog.FindTable("interpro.entry");
  auto i2g = dataset_.catalog.FindTable("interpro.interpro2go");
  std::size_t expected = 0;
  for (const auto& rg : go_table->rows()) {
    for (const auto& ri : i2g->rows()) {
      if (rg[0].ToText() != ri[0].ToText()) continue;
      for (const auto& re : entry->rows()) {
        if (ri[1].ToText() != re[0].ToText()) continue;
        if (rg[1].ToText() != re[1].ToText()) continue;
        ++expected;
      }
    }
  }
  EXPECT_EQ(rows->size(), expected);
}

TEST_F(QueryTest, ExecutorMaxRowsGuard) {
  ConjunctiveQuery cq;
  cq.atoms = {"go.go_term", "interpro.pub"};  // no join: cartesian
  cq.select_list = {{relational::AttributeId{"go", "go_term", "acc"},
                     "acc"}};
  ExecutorOptions options;
  options.max_rows = 10;
  Executor executor(&dataset_.catalog, options);
  auto rows = executor.Execute(cq);
  ASSERT_FALSE(rows.ok());
  EXPECT_TRUE(rows.status().IsOutOfRange());
}

TEST_F(QueryTest, DisjointUnionUnifiesCompatibleColumns) {
  auto qg = Build({"go term name"});
  ASSERT_TRUE(qg.ok());

  ConjunctiveQuery q1;
  q1.cost = 1.0;
  q1.select_list = {{relational::AttributeId{"go", "go_term", "name"},
                     "name"}};
  ConjunctiveQuery q2;
  q2.cost = 2.0;
  q2.select_list = {{relational::AttributeId{"interpro", "entry", "name"},
                     "name"}};
  std::vector<std::vector<relational::Row>> rows{
      {{relational::Value("alpha")}}, {{relational::Value("beta")}}};
  auto unified = DisjointUnion(*qg, *weights_, {q1, q2}, rows, 2.0);
  // Labels match ("name"), so both land in one column.
  ASSERT_EQ(unified.columns.size(), 1u);
  ASSERT_EQ(unified.rows.size(), 2u);
  EXPECT_EQ(unified.rows[0].values[0].ToText(), "alpha");
  EXPECT_EQ(unified.rows[0].query_index, 0u);
  EXPECT_EQ(unified.rows[1].values[0].ToText(), "beta");
}

TEST_F(QueryTest, DisjointUnionKeepsIncompatibleColumnsApart) {
  auto qg = Build({"go term name"});
  ASSERT_TRUE(qg.ok());
  ConjunctiveQuery q1;
  q1.cost = 1.0;
  q1.select_list = {{relational::AttributeId{"go", "go_term", "acc"},
                     "acc"}};
  ConjunctiveQuery q2;
  q2.cost = 2.0;
  q2.select_list = {{relational::AttributeId{"interpro", "pub", "title"},
                     "title"}};
  std::vector<std::vector<relational::Row>> rows{
      {{relational::Value("GO:1")}}, {{relational::Value("some title")}}};
  auto unified = DisjointUnion(*qg, *weights_, {q1, q2}, rows, 2.0);
  ASSERT_EQ(unified.columns.size(), 2u);
  EXPECT_TRUE(unified.rows[1].values[0].is_null());  // padded
}

TEST_F(QueryTest, ViewRefreshEndToEnd) {
  ViewConfig config;
  config.top_k.k = 3;
  TopKView view({"plasma membrane", "pub title"}, config);
  EXPECT_FALSE(view.refreshed());
  ASSERT_TRUE(view.Refresh(graph_, dataset_.catalog, index_, model_.get(),
                           *weights_)
                  .ok());
  EXPECT_TRUE(view.refreshed());
  EXPECT_FALSE(view.trees().empty());
  EXPECT_EQ(view.queries().size(), view.trees().size());
  EXPECT_FALSE(view.results().columns.empty());
  // Results come back ranked.
  const auto& rows = view.results().rows;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i - 1].cost, rows[i].cost);
  }
  // Alpha is the cost of the k-th top-scoring answer (k = 3 here), or
  // infinity when fewer answers exist.
  if (rows.size() >= 3u) {
    EXPECT_DOUBLE_EQ(view.Alpha(), rows[2].cost);
  } else {
    EXPECT_TRUE(std::isinf(view.Alpha()));
  }
}

}  // namespace
}  // namespace q::query
