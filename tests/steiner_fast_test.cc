// Determinism and equivalence tests for the CSR fast-path query engine
// (src/steiner/fast_solver.*): across seeded random graphs — including
// tie-heavy graphs with zero-cost edges and forced/banned overlays — the
// fast engine must produce byte-identical top-k results whether or not
// the shortest-path cache and the thread pool are enabled, and must match
// the legacy SteinerProblem engine whenever edge costs are distinct.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "graph/search_graph.h"
#include "steiner/exact_solver.h"
#include "steiner/fast_solver.h"
#include "steiner/kmb_solver.h"
#include "steiner/problem.h"
#include "steiner/top_k.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace q::steiner {
namespace {

using graph::EdgeId;
using graph::NodeId;

struct RandomGraph {
  graph::FeatureSpace space;
  graph::SearchGraph graph;
  std::unique_ptr<graph::WeightVector> weights;
  std::vector<NodeId> terminals;

  // `zero_cost_fraction` introduces exact ties (the fixed_zero edges of
  // real query graphs), the stress case for canonical tie-breaking.
  RandomGraph(util::Rng* rng, std::size_t n, std::size_t m, std::size_t t,
              double zero_cost_fraction) {
    for (std::size_t i = 0; i < n; ++i) {
      graph.AddNode(graph::NodeKind::kAttribute, "n" + std::to_string(i));
    }
    weights = std::make_unique<graph::WeightVector>(&space);
    auto add_edge = [&](NodeId u, NodeId v) {
      graph::Edge e;
      e.u = u;
      e.v = v;
      e.kind = graph::EdgeKind::kAssociation;
      if (rng->UniformDouble() < zero_cost_fraction) {
        e.fixed_zero = true;
      } else {
        graph::FeatureVec f;
        f.Add(space.Intern("e" + std::to_string(graph.num_edges()),
                           0.1 + rng->UniformDouble()),
              1.0);
        e.features = std::move(f);
      }
      graph.AddEdge(std::move(e));
    };
    for (std::size_t i = 1; i < n; ++i) {
      add_edge(static_cast<NodeId>(rng->Uniform(i)), static_cast<NodeId>(i));
    }
    while (graph.num_edges() < m) {
      auto u = static_cast<NodeId>(rng->Uniform(n));
      auto v = static_cast<NodeId>(rng->Uniform(n));
      if (u != v) add_edge(u, v);
    }
    std::set<NodeId> picked;
    while (picked.size() < t) {
      picked.insert(static_cast<NodeId>(rng->Uniform(n)));
    }
    terminals.assign(picked.begin(), picked.end());
  }
};

std::vector<SteinerTree> RunTopK(const RandomGraph& g, SteinerEngine engine,
                                 bool cache, util::ThreadPool* pool,
                                 bool approximate, int k = 6) {
  TopKConfig config;
  config.k = k;
  config.approximate = approximate;
  config.engine = engine;
  config.use_sp_cache = cache;
  config.pool = pool;
  return TopKSteinerTrees(g.graph, *g.weights, g.terminals, config);
}

// Byte-identical comparison: same trees, same order, same costs.
void ExpectIdentical(const std::vector<SteinerTree>& a,
                     const std::vector<SteinerTree>& b,
                     const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].edges, b[i].edges) << label << " tree " << i;
    EXPECT_EQ(a[i].cost, b[i].cost) << label << " tree " << i;
  }
}

class FastPathIdentityTest : public ::testing::TestWithParam<int> {};

// Cache and thread pool must never change output, including on graphs
// riddled with exact cost ties.
TEST_P(FastPathIdentityTest, CacheAndPoolAreByteIdentical) {
  util::Rng rng(9000 + GetParam());
  RandomGraph g(&rng, 40 + rng.Uniform(40), 100 + rng.Uniform(60),
                3 + rng.Uniform(2), /*zero_cost_fraction=*/0.3);
  util::ThreadPool pool(4);
  for (bool approximate : {false, true}) {
    auto base = RunTopK(g, SteinerEngine::kFast, false, nullptr, approximate);
    auto cached = RunTopK(g, SteinerEngine::kFast, true, nullptr, approximate);
    auto pooled = RunTopK(g, SteinerEngine::kFast, false, &pool, approximate);
    auto both = RunTopK(g, SteinerEngine::kFast, true, &pool, approximate);
    std::string label = approximate ? "kmb" : "exact";
    ExpectIdentical(base, cached, label + " cache");
    ExpectIdentical(base, pooled, label + " pool");
    ExpectIdentical(base, both, label + " cache+pool");
    // Re-running with a warm engine state must also be stable.
    auto again = RunTopK(g, SteinerEngine::kFast, true, &pool, approximate);
    ExpectIdentical(base, again, label + " rerun");
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, FastPathIdentityTest,
                         ::testing::Range(0, 12));

class FastVsLegacyTest : public ::testing::TestWithParam<int> {};

// With distinct random costs (no ties), the fast engine must reproduce
// the legacy engine's trees exactly, for both solver families.
TEST_P(FastVsLegacyTest, MatchesLegacyOnDistinctCosts) {
  util::Rng rng(9100 + GetParam());
  RandomGraph g(&rng, 30 + rng.Uniform(30), 70 + rng.Uniform(50),
                3 + rng.Uniform(2), /*zero_cost_fraction=*/0.0);
  util::ThreadPool pool(2);
  for (bool approximate : {false, true}) {
    auto legacy = RunTopK(g, SteinerEngine::kLegacy, false, nullptr,
                          approximate);
    auto fast = RunTopK(g, SteinerEngine::kFast, true, &pool, approximate);
    std::string label = approximate ? "kmb" : "exact";
    ASSERT_EQ(legacy.size(), fast.size()) << label;
    for (std::size_t i = 0; i < legacy.size(); ++i) {
      EXPECT_EQ(legacy[i].edges, fast[i].edges) << label << " tree " << i;
      EXPECT_NEAR(legacy[i].cost, fast[i].cost, 1e-9) << label << " tree "
                                                      << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, FastVsLegacyTest,
                         ::testing::Range(0, 12));

// Direct solver-level check of forced/banned overlays against the legacy
// contraction semantics, including infeasible subproblems.
TEST(FastSolverOverlayTest, ForcedAndBannedMatchContraction) {
  util::Rng rng(77);
  RandomGraph g(&rng, 24, 60, 3, 0.0);
  FastSteinerEngine engine(g.graph, *g.weights, /*use_cache=*/true);

  // Take the best tree, then force/ban prefixes of it like Lawler does.
  auto base = engine.SolveKmb(g.terminals, {}, {});
  ASSERT_TRUE(base.has_value());
  ASSERT_FALSE(base->edges.empty());
  std::vector<EdgeId> forced;
  std::vector<EdgeId> banned;
  for (EdgeId e : base->edges) {
    banned.assign(1, e);
    auto fast = engine.SolveKmb(g.terminals, forced, banned);
    SteinerProblem problem(g.graph, *g.weights, g.terminals, forced, banned);
    auto legacy = SolveKmbSteiner(problem);
    ASSERT_EQ(fast.has_value(), legacy.has_value());
    if (fast.has_value()) {
      EXPECT_EQ(fast->edges, legacy->edges);
      EXPECT_NEAR(fast->cost, legacy->cost, 1e-9);
    }

    auto fast_exact = engine.SolveExact(g.terminals, forced, banned);
    auto legacy_exact = SolveExactSteiner(problem);
    ASSERT_EQ(fast_exact.has_value(), legacy_exact.has_value());
    if (fast_exact.has_value()) {
      EXPECT_EQ(fast_exact->edges, legacy_exact->edges);
      EXPECT_NEAR(fast_exact->cost, legacy_exact->cost, 1e-9);
    }
    forced.push_back(e);
  }

  // Forced and banned overlapping -> infeasible.
  EXPECT_FALSE(engine
                   .SolveKmb(g.terminals, {base->edges[0]}, {base->edges[0]})
                   .has_value());
  EXPECT_FALSE(engine
                   .SolveExact(g.terminals, {base->edges[0]},
                               {base->edges[0]})
                   .has_value());
}

TEST(FastSolverCacheTest, CacheHitsAndStaysConsistent) {
  util::Rng rng(123);
  RandomGraph g(&rng, 30, 80, 4, 0.2);
  FastSteinerEngine cached(g.graph, *g.weights, /*use_cache=*/true);
  FastSteinerEngine uncached(g.graph, *g.weights, /*use_cache=*/false);

  auto first = cached.SolveKmb(g.terminals, {}, {});
  auto repeat = cached.SolveKmb(g.terminals, {}, {});
  auto reference = uncached.SolveKmb(g.terminals, {}, {});
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->edges, repeat->edges);
  EXPECT_EQ(first->cost, repeat->cost);
  EXPECT_EQ(first->edges, reference->edges);
  EXPECT_EQ(first->cost, reference->cost);

  FastSolveStats stats = cached.stats();
  EXPECT_GT(stats.sp_cache_hits, 0u);   // the repeat run reused entries
  EXPECT_GT(stats.sp_cache_entries, 0u);
  EXPECT_EQ(uncached.stats().sp_cache_entries, 0u);

  // Banning an edge off every cached tree must reuse entries yet still
  // agree with the uncached engine.
  EdgeId off_tree = graph::kInvalidEdge;
  std::set<EdgeId> tree_edges(first->edges.begin(), first->edges.end());
  for (EdgeId e = 0; e < g.graph.num_edges(); ++e) {
    if (tree_edges.count(e) == 0) {
      off_tree = e;
      break;
    }
  }
  ASSERT_NE(off_tree, graph::kInvalidEdge);
  auto banned_cached = cached.SolveKmb(g.terminals, {}, {off_tree});
  auto banned_uncached = uncached.SolveKmb(g.terminals, {}, {off_tree});
  ASSERT_TRUE(banned_cached.has_value());
  EXPECT_EQ(banned_cached->edges, banned_uncached->edges);
  EXPECT_EQ(banned_cached->cost, banned_uncached->cost);
}

// Snapshot pin/unpin (the async refresh scheduler's search-vs-recost
// isolation): a pin freezes the CSR cost buffer, a concurrent re-cost
// copies-on-write onto a fresh buffer and new cache generation, and a
// solve that started under the pinned costs keeps producing exactly the
// pinned snapshot's output.
TEST(FastSolverPinTest, PinnedSnapshotSurvivesRecost) {
  util::Rng rng(555);
  RandomGraph g(&rng, 30, 70, 3, 0.0);
  FastSteinerEngine engine(g.graph, *g.weights, /*use_cache=*/true);
  auto before = engine.SolveKmb(g.terminals, {}, {});
  ASSERT_TRUE(before.has_value());

  // Pin, then re-cost under perturbed weights: the pinned buffer must
  // keep the old costs byte for byte while the engine moves on.
  FastSteinerEngine::SnapshotPin pin = engine.Pin();
  std::vector<double> pinned_costs = pin.csr->edge_cost;
  for (graph::FeatureId id = 1;
       id < static_cast<graph::FeatureId>(g.space.size()); ++id) {
    g.weights->Set(id, g.weights->At(id) * 1.5);
  }
  engine.Recost(g.graph, *g.weights);
  EXPECT_EQ(pin.csr->edge_cost, pinned_costs);      // frozen
  EXPECT_NE(&engine.csr(), pin.csr.get());          // copied on write
  EXPECT_GT(engine.generation(), pin.generation);

  // The engine serves the new weights; a twin engine pinned-equivalent
  // at the old weights reproduces the pinned solve.
  auto after = engine.SolveKmb(g.terminals, {}, {});
  FastSteinerEngine fresh_new(g.graph, *g.weights, /*use_cache=*/true);
  auto reference_new = fresh_new.SolveKmb(g.terminals, {}, {});
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->edges, reference_new->edges);
  EXPECT_EQ(after->cost, reference_new->cost);

  // Delta re-costs under a pin take the same copy-on-write path (and
  // bump the cache generation wholesale instead of invalidating entries
  // a pinned solve may still be populating).
  FastSteinerEngine::SnapshotPin pin2 = engine.Pin();
  std::vector<double> pinned2 = pin2.csr->edge_cost;
  std::uint64_t rev = g.weights->revision();
  g.weights->Set(1, g.weights->At(1) * 2.0);
  std::vector<graph::FeatureDelta> deltas;
  ASSERT_TRUE(g.weights->DeltaSince(rev, &deltas));
  auto outcome = engine.RecostDelta(g.graph, *g.weights, deltas);
  ASSERT_TRUE(outcome.applied);
  if (outcome.edges_repriced > 0) {
    EXPECT_EQ(pin2.csr->edge_cost, pinned2);
    EXPECT_NE(&engine.csr(), pin2.csr.get());
  }
  // Released pins let the next mutation go back in place.
  pin = FastSteinerEngine::SnapshotPin{};
  pin2 = FastSteinerEngine::SnapshotPin{};
  const CsrGraph* current = &engine.csr();
  engine.Recost(g.graph, *g.weights);
  EXPECT_EQ(&engine.csr(), current);  // unpinned: mutated in place
}

}  // namespace
}  // namespace q::steiner
