// Tests for the query fast path's building blocks: the indexed 4-ary heap
// (canonical (key, id) pop order, decrease-key, heapify), the bounded
// thread pool (RunAll completion, caller participation, nesting, Submit),
// and the keyed task queue behind the async refresh scheduler (per-key
// ordering, coalescing of superseded tasks, drain).
#include <gtest/gtest.h>

#include <atomic>
#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "util/dary_heap.h"
#include "util/random.h"
#include "util/task_queue.h"
#include "util/thread_pool.h"

namespace q::util {
namespace {

TEST(DaryHeapTest, PopsInKeyThenIdOrder) {
  DaryHeap heap;
  heap.Reset(8);
  heap.PushOrDecrease(3, 2.0);
  heap.PushOrDecrease(1, 1.0);
  heap.PushOrDecrease(7, 2.0);
  heap.PushOrDecrease(0, 2.0);
  heap.PushOrDecrease(5, 0.5);

  std::vector<std::uint32_t> order;
  while (!heap.empty()) order.push_back(heap.PopMin().second);
  // Equal keys (2.0) must pop in ascending id order: 0, 3, 7.
  EXPECT_EQ(order, (std::vector<std::uint32_t>{5, 1, 0, 3, 7}));
}

TEST(DaryHeapTest, DecreaseKeyMovesElementUp) {
  DaryHeap heap;
  heap.Reset(4);
  heap.PushOrDecrease(0, 5.0);
  heap.PushOrDecrease(1, 4.0);
  heap.PushOrDecrease(2, 3.0);
  heap.PushOrDecrease(0, 1.0);  // decrease
  heap.PushOrDecrease(2, 9.0);  // raising is a no-op
  auto [k0, id0] = heap.PopMin();
  EXPECT_EQ(id0, 0u);
  EXPECT_DOUBLE_EQ(k0, 1.0);
  auto [k1, id1] = heap.PopMin();
  EXPECT_EQ(id1, 2u);
  EXPECT_DOUBLE_EQ(k1, 3.0);
  EXPECT_EQ(heap.PopMin().second, 1u);
  EXPECT_TRUE(heap.empty());
}

TEST(DaryHeapTest, RandomizedAgainstSort) {
  Rng rng(42);
  for (int round = 0; round < 20; ++round) {
    std::size_t n = 1 + rng.Uniform(200);
    DaryHeap heap;
    heap.Reset(n);
    std::vector<double> key(n, std::numeric_limits<double>::infinity());
    for (std::size_t ops = 0; ops < 3 * n; ++ops) {
      auto id = static_cast<std::uint32_t>(rng.Uniform(n));
      double k = rng.UniformDouble() * 10.0;
      heap.PushOrDecrease(id, k);
      if (k < key[id]) key[id] = k;
    }
    std::vector<std::pair<double, std::uint32_t>> expected;
    for (std::uint32_t id = 0; id < n; ++id) {
      if (key[id] < std::numeric_limits<double>::infinity()) {
        expected.emplace_back(key[id], id);
      }
    }
    std::sort(expected.begin(), expected.end());
    std::vector<std::pair<double, std::uint32_t>> actual;
    while (!heap.empty()) actual.push_back(heap.PopMin());
    EXPECT_EQ(actual, expected);
  }
}

TEST(DaryHeapTest, HeapifyMatchesIndividualPushes) {
  Rng rng(7);
  std::size_t n = 300;
  std::vector<double> keys(n, std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.7)) keys[i] = rng.UniformDouble();
  }
  DaryHeap heapified;
  heapified.Heapify(keys.data(), static_cast<std::uint32_t>(n));
  DaryHeap pushed;
  pushed.Reset(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (keys[i] < std::numeric_limits<double>::infinity()) {
      pushed.PushOrDecrease(i, keys[i]);
    }
  }
  ASSERT_EQ(heapified.size(), pushed.size());
  while (!pushed.empty()) {
    EXPECT_EQ(heapified.PopMin(), pushed.PopMin());
  }
}

TEST(ThreadPoolTest, RunAllCompletesEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::vector<int> results(100, 0);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&results, i] { results[i] = i * i; });
  }
  pool.RunAll(tasks);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(results[i], i * i);
}

TEST(ThreadPoolTest, EmptyBatchAndRepeatedBatches) {
  ThreadPool pool(2);
  pool.RunAll({});
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks(10, [&counter] { ++counter; });
  for (int round = 0; round < 20; ++round) pool.RunAll(tasks);
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, CallerMakesProgressOnTinyPool) {
  // Even a 1-thread pool whose worker is busy cannot stall RunAll, since
  // the calling thread drains the batch itself.
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> outer;
  outer.push_back([&] {
    std::vector<std::function<void()>> inner(5, [&counter] { ++counter; });
    pool.RunAll(inner);  // nested RunAll from a worker thread
  });
  outer.push_back([&counter] { ++counter; });
  pool.RunAll(outer);
  EXPECT_EQ(counter.load(), 6);
}

TEST(ThreadPoolTest, SubmitRunsDetachedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::mutex mu;
  std::condition_variable cv;
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&] {
      if (counter.fetch_add(1) + 1 == 50) {
        // Notify under the mutex: the waiter checks the predicate under
        // it, so the cv cannot be destroyed mid-notify.
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                          [&] { return counter.load() == 50; }));
}

TEST(KeyedTaskQueueTest, PerKeyOrderingAcrossConcurrentKeys) {
  ThreadPool pool(4);
  KeyedTaskQueue queue(&pool);
  constexpr std::size_t kKeys = 5;
  constexpr int kTasksPerKey = 40;
  std::vector<std::vector<int>> seen(kKeys);
  std::vector<std::mutex> mus(kKeys);
  for (int i = 0; i < kTasksPerKey; ++i) {
    for (std::size_t key = 0; key < kKeys; ++key) {
      queue.Submit(key, [&, key, i] {
        // Per-key ordering means no lock is needed for correctness; the
        // mutex only gives the vector a sane cross-thread view.
        std::lock_guard<std::mutex> lock(mus[key]);
        seen[key].push_back(i);
      });
      // Tasks that queue behind a running one may be coalesced; slow the
      // producer enough that most run. Ordering is what this asserts —
      // executed indices must be strictly increasing per key.
      if (i % 8 == 0) std::this_thread::yield();
    }
  }
  queue.Drain();
  for (std::size_t key = 0; key < kKeys; ++key) {
    std::lock_guard<std::mutex> lock(mus[key]);
    ASSERT_FALSE(seen[key].empty()) << "key " << key;
    for (std::size_t j = 1; j < seen[key].size(); ++j) {
      EXPECT_LT(seen[key][j - 1], seen[key][j]) << "key " << key;
    }
    // Nothing runs after drain, and the last submission for a key is
    // never coalesced away — it is exactly the one that must win.
    EXPECT_EQ(seen[key].back(), kTasksPerKey - 1) << "key " << key;
  }
}

TEST(KeyedTaskQueueTest, SupersededPendingTasksCoalesce) {
  ThreadPool pool(1);
  KeyedTaskQueue queue(&pool);
  // Block the key's running slot so every later submission parks as the
  // single pending task and supersedes the previous one.
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<int> last_ran{-1};
  queue.Submit(1, [&] {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return gate_open; });
  });
  for (int i = 0; i < 10; ++i) {
    queue.Submit(1, [&, i] { last_ran.store(i); });
  }
  EXPECT_TRUE(queue.Busy(1));
  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  queue.Drain();
  // Of the 10 parked submissions only the last survives; the other 9
  // were elided while pending.
  EXPECT_EQ(last_ran.load(), 9);
  EXPECT_EQ(queue.coalesced(), 9u);
  EXPECT_FALSE(queue.Busy(1));
}

}  // namespace
}  // namespace q::util
