#include "util/string_util.h"

#include <gtest/gtest.h>

namespace q::util {
namespace {

TEST(StringUtilTest, ToLowerAndTrim) {
  EXPECT_EQ(ToLower("Go_Term"), "go_term");
  EXPECT_EQ(Trim("  hello \t"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, SplitAndJoin) {
  auto parts = Split("a.b..c", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
  EXPECT_EQ(Join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, TokenizeIdentifierSnakeCase) {
  auto t = TokenizeIdentifier("go_term_name");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], "go");
  EXPECT_EQ(t[1], "term");
  EXPECT_EQ(t[2], "name");
}

TEST(StringUtilTest, TokenizeIdentifierCamelCase) {
  auto t = TokenizeIdentifier("goTermName");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], "go");
  EXPECT_EQ(t[1], "term");
  EXPECT_EQ(t[2], "name");
}

TEST(StringUtilTest, TokenizeTextWords) {
  auto t = TokenizeText("The plasma-membrane, GO:0005886!");
  ASSERT_EQ(t.size(), 5u);
  EXPECT_EQ(t[0], "the");
  EXPECT_EQ(t[1], "plasma");
  EXPECT_EQ(t[2], "membrane");
  EXPECT_EQ(t[3], "go");
  EXPECT_EQ(t[4], "0005886");
}

TEST(StringUtilTest, IsNumericLiteral) {
  EXPECT_TRUE(IsNumericLiteral("42"));
  EXPECT_TRUE(IsNumericLiteral("-3.5"));
  EXPECT_TRUE(IsNumericLiteral(" +7 "));
  EXPECT_FALSE(IsNumericLiteral("GO:0005886"));
  EXPECT_FALSE(IsNumericLiteral("3.5.1"));
  EXPECT_FALSE(IsNumericLiteral(""));
  EXPECT_FALSE(IsNumericLiteral("-"));
}

TEST(StringUtilTest, EditDistanceBasics) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("pub", "pub"), 0u);
}

TEST(StringUtilTest, EditSimilarityRange) {
  EXPECT_DOUBLE_EQ(EditSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "xyz"), 0.0);
  double s = EditSimilarity("pub_id", "pub_identifier");
  EXPECT_GT(s, 0.3);
  EXPECT_LT(s, 1.0);
}

TEST(StringUtilTest, TrigramSimilarity) {
  EXPECT_DOUBLE_EQ(TrigramSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(TrigramSimilarity("abc", ""), 0.0);
  EXPECT_DOUBLE_EQ(TrigramSimilarity("name", "name"), 1.0);
  EXPECT_GT(TrigramSimilarity("entry_ac", "entry_acc"),
            TrigramSimilarity("entry_ac", "journal_id"));
}

TEST(StringUtilTest, LongestCommonSubstring) {
  EXPECT_EQ(LongestCommonSubstring("", "x"), 0u);
  EXPECT_EQ(LongestCommonSubstring("entry_ac", "entry_acc"), 8u);
  EXPECT_EQ(LongestCommonSubstring("abcdef", "zabcy"), 3u);
}

TEST(StringUtilTest, SubstringSimilarity) {
  EXPECT_DOUBLE_EQ(SubstringSimilarity("name", "NAME"), 1.0);
  EXPECT_GT(SubstringSimilarity("pub_id", "pub_identifier"), 0.4);
}

TEST(StringUtilTest, TokenJaccard) {
  EXPECT_DOUBLE_EQ(TokenJaccard({"a", "b"}, {"b", "a"}), 1.0);
  EXPECT_DOUBLE_EQ(TokenJaccard({"a"}, {"b"}), 0.0);
  EXPECT_DOUBLE_EQ(TokenJaccard({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(TokenJaccard({"a", "b"}, {"b", "c"}), 1.0 / 3.0);
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.123456, 2), "0.12");
  EXPECT_EQ(FormatDouble(1.0, 1), "1.0");
}

// Property sweep: edit distance is a metric on a sample of strings.
class EditDistanceMetricTest
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {
};

TEST_P(EditDistanceMetricTest, SymmetryAndIdentity) {
  auto [a, b] = GetParam();
  EXPECT_EQ(EditDistance(a, b), EditDistance(b, a));
  EXPECT_EQ(EditDistance(a, a), 0u);
  // Triangle inequality through a fixed pivot.
  const char* pivot = "entry";
  EXPECT_LE(EditDistance(a, b),
            EditDistance(a, pivot) + EditDistance(pivot, b));
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, EditDistanceMetricTest,
    ::testing::Values(
        std::make_tuple("pub", "publication"),
        std::make_tuple("go_id", "acc"),
        std::make_tuple("entry_ac", "entry_acc"),
        std::make_tuple("", "journal"),
        std::make_tuple("method2pub", "entry2pub"),
        std::make_tuple("name", "short_name")));

}  // namespace
}  // namespace q::util
