// Save/load round-trip suite for the persistence layer (docs/persistence.md):
// format primitives, per-section encode/decode, and the QSystem-level
// differential guarantee — a system restored from a snapshot is
// bit-identical at quiescence to the one that saved it, and keeps behaving
// identically under further feedback.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/q_system.h"
#include "data/interpro_go.h"
#include "feedback/simulated_user.h"
#include "persist/format.h"
#include "persist/snapshot.h"
#include "util/env.h"
#include "util/random.h"

namespace q::persist {
namespace {

std::uint64_t TestSeed() {
  const char* s = std::getenv("Q_PERSIST_FAULT_SEED");
  return s != nullptr ? std::strtoull(s, nullptr, 10) : 20260808ull;
}

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "persist_rt_" + name + "_" +
                    std::to_string(::getpid());
  // Start from a clean slate even when TempDir is reused across runs.
  (void)util::DefaultEnv()->RemoveFile(SnapshotFilePath(dir));
  return dir;
}

// --- format primitives ----------------------------------------------------

TEST(FormatTest, PrimitivesRoundTrip) {
  std::string buf;
  PutU8(&buf, 0xAB);
  PutU32(&buf, 0xDEADBEEFu);
  PutU64(&buf, 0x0123456789ABCDEFull);
  PutF64(&buf, -1234.5678);
  PutF64(&buf, 0.0);
  PutString(&buf, "hello\0world");  // NUL-safe? literal stops at NUL
  PutString(&buf, std::string("bin\0ary", 7));
  PutString(&buf, "");

  Decoder d(buf);
  std::uint8_t u8 = 0;
  std::uint32_t u32 = 0;
  std::uint64_t u64 = 0;
  double f1 = 0, f2 = 1;
  std::string s1, s2, s3;
  ASSERT_TRUE(d.GetU8(&u8).ok());
  ASSERT_TRUE(d.GetU32(&u32).ok());
  ASSERT_TRUE(d.GetU64(&u64).ok());
  ASSERT_TRUE(d.GetF64(&f1).ok());
  ASSERT_TRUE(d.GetF64(&f2).ok());
  ASSERT_TRUE(d.GetString(&s1).ok());
  ASSERT_TRUE(d.GetString(&s2).ok());
  ASSERT_TRUE(d.GetString(&s3).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(f1, -1234.5678);
  EXPECT_EQ(f2, 0.0);
  EXPECT_EQ(s1, "hello");
  EXPECT_EQ(s2, std::string("bin\0ary", 7));
  EXPECT_EQ(s3, "");
  EXPECT_TRUE(d.done());
}

TEST(FormatTest, DecoderRejectsTruncationAndCorruptCounts) {
  std::string buf;
  PutU64(&buf, 7);
  Decoder short_read(std::string_view(buf).substr(0, 5));
  std::uint64_t v = 0;
  EXPECT_FALSE(short_read.GetU64(&v).ok());

  // A string whose declared length runs past the buffer.
  std::string lying;
  PutU32(&lying, 1000);
  lying += "abc";
  Decoder d(lying);
  std::string s;
  EXPECT_FALSE(d.GetString(&s).ok());

  // A count that cannot plausibly fit must be rejected before any
  // allocation sized from it.
  std::string huge;
  PutU32(&huge, 0xFFFFFFFFu);
  Decoder d2(huge);
  std::uint32_t count = 0;
  EXPECT_FALSE(d2.GetCount(&count, /*min_element_bytes=*/4).ok());
}

TEST(FormatTest, Crc32MatchesKnownVector) {
  // The CRC-32/IEEE check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_NE(Crc32("a"), Crc32("b"));
}

TEST(FormatTest, FrameWalkSkipsDamagedSectionAndKeepsOthers) {
  std::string file;
  AppendHeader(&file, 2);
  AppendSection(&file, SectionTag::kCatalog, "catalog-bytes");
  std::size_t second_at = file.size();
  AppendSection(&file, SectionTag::kWeights, "weights-bytes");

  ParseOutcome intact;
  ASSERT_TRUE(ParseSnapshotFile(file, &intact).ok());
  ASSERT_EQ(intact.sections.size(), 2u);
  EXPECT_TRUE(intact.section_errors.empty());
  EXPECT_EQ(intact.sections[0].payload, "catalog-bytes");

  // Flip one payload byte of the second frame: the first survives, the
  // second is reported, the parse itself still succeeds.
  std::string damaged = file;
  damaged[second_at + 4 + 8 + 4 + 2] ^= 0x40;
  ParseOutcome out;
  ASSERT_TRUE(ParseSnapshotFile(damaged, &out).ok());
  ASSERT_EQ(out.sections.size(), 1u);
  EXPECT_EQ(out.sections[0].tag,
            static_cast<std::uint32_t>(SectionTag::kCatalog));
  ASSERT_EQ(out.section_errors.size(), 1u);

  // A bad header is unusable.
  std::string bad_magic = file;
  bad_magic[0] = 'X';
  ParseOutcome ignored;
  EXPECT_FALSE(ParseSnapshotFile(bad_magic, &ignored).ok());
  EXPECT_FALSE(ParseSnapshotFile("short", &ignored).ok());
}

// --- QSystem fixture --------------------------------------------------------

data::InterProGoConfig SmallDataset() {
  data::InterProGoConfig config;
  config.num_go_terms = 60;
  config.num_entries = 45;
  config.num_pubs = 40;
  config.num_journals = 8;
  config.num_methods = 30;
  config.interpro2go_links = 90;
  config.entry2pub_links = 80;
  config.method2pub_links = 60;
  return config;
}

struct Fixture {
  data::InterProGoDataset dataset;
  std::unique_ptr<core::QSystem> q;
};

// Registers the dataset, aligns, creates views for the first
// `num_views` keyword queries and applies gold feedback on each.
Fixture BuildTrainedSystem(std::size_t num_views = 3) {
  Fixture f;
  f.dataset = data::BuildInterProGo(SmallDataset());
  f.q = std::make_unique<core::QSystem>();
  for (const auto& src : f.dataset.catalog.sources()) {
    EXPECT_TRUE(f.q->RegisterSource(src).ok());
  }
  EXPECT_TRUE(f.q->RunInitialAlignment().ok());
  feedback::SimulatedUser user(f.dataset.gold_edges);
  for (std::size_t i = 0; i < num_views && i < f.dataset.keyword_queries.size();
       ++i) {
    auto view_id = f.q->CreateView(f.dataset.keyword_queries[i]);
    if (!view_id.ok()) continue;
    auto applied = f.q->ApplyGoldFeedback(*view_id, user);
    EXPECT_TRUE(applied.ok()) << applied.status();
  }
  EXPECT_FALSE(f.q->feedback_log().empty());
  return f;
}

std::vector<std::pair<double, std::string>> ViewRows(
    const core::QSystem& q, std::size_t view_id) {
  std::vector<std::pair<double, std::string>> rows;
  for (const auto& row : q.view(view_id).results().rows) {
    std::string values;
    for (const auto& v : row.values) values += v.ToText() + "|";
    rows.emplace_back(row.cost, std::move(values));
  }
  return rows;
}

void ExpectCatalogsEqual(const relational::Catalog& a,
                         const relational::Catalog& b) {
  EXPECT_EQ(a.num_relations(), b.num_relations());
  auto ta = a.AllTables();
  auto tb = b.AllTables();
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    const auto& sa = ta[i]->schema();
    const auto& sb = tb[i]->schema();
    EXPECT_EQ(sa.source(), sb.source());
    EXPECT_EQ(sa.relation(), sb.relation());
    ASSERT_EQ(sa.attributes().size(), sb.attributes().size());
    for (std::size_t j = 0; j < sa.attributes().size(); ++j) {
      EXPECT_EQ(sa.attributes()[j].name, sb.attributes()[j].name);
      EXPECT_EQ(sa.attributes()[j].type, sb.attributes()[j].type);
    }
    ASSERT_EQ(ta[i]->num_rows(), tb[i]->num_rows());
    for (std::size_t r = 0; r < ta[i]->num_rows(); ++r) {
      const auto& ra = ta[i]->rows()[r];
      const auto& rb = tb[i]->rows()[r];
      ASSERT_EQ(ra.size(), rb.size());
      for (std::size_t c = 0; c < ra.size(); ++c) {
        EXPECT_EQ(ra[c].ToText(), rb[c].ToText());
      }
    }
  }
}

void ExpectGraphsEqual(const graph::SearchGraph& a,
                       const graph::SearchGraph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (graph::NodeId n = 0; n < a.num_nodes(); ++n) {
    EXPECT_EQ(a.node(n).kind, b.node(n).kind);
    EXPECT_EQ(a.node(n).label, b.node(n).label);
    EXPECT_EQ(a.node(n).attr.ToString(), b.node(n).attr.ToString());
    EXPECT_EQ(a.node_value_text(n), b.node_value_text(n));
  }
  for (graph::EdgeId e = 0; e < a.num_edges(); ++e) {
    const graph::Edge ea = a.ExportEdge(e);
    const graph::Edge eb = b.ExportEdge(e);
    EXPECT_EQ(ea.u, eb.u);
    EXPECT_EQ(ea.v, eb.v);
    EXPECT_EQ(ea.kind, eb.kind);
    EXPECT_EQ(ea.fixed_zero, eb.fixed_zero);
    EXPECT_TRUE(ea.features == eb.features);
    ASSERT_EQ(ea.provenance.size(), eb.provenance.size());
    for (std::size_t p = 0; p < ea.provenance.size(); ++p) {
      EXPECT_EQ(ea.provenance[p].matcher, eb.provenance[p].matcher);
      EXPECT_EQ(ea.provenance[p].confidence, eb.provenance[p].confidence);
    }
    EXPECT_EQ(ea.join_a.ToString(), eb.join_a.ToString());
    EXPECT_EQ(ea.join_b.ToString(), eb.join_b.ToString());
  }
  // The delta pipeline must survive the restart exactly: same revision,
  // same answerable journal span, same records.
  EXPECT_EQ(a.revision(), b.revision());
  EXPECT_EQ(a.journal_base_revision(), b.journal_base_revision());
  auto ja = a.JournalRecords();
  auto jb = b.JournalRecords();
  ASSERT_EQ(ja.size(), jb.size());
  for (std::size_t i = 0; i < ja.size(); ++i) {
    EXPECT_EQ(ja[i].kind, jb[i].kind);
    EXPECT_EQ(ja[i].id, jb[i].id);
  }
}

void ExpectWeightsEqual(const graph::WeightVector& a,
                        const graph::WeightVector& b) {
  EXPECT_EQ(a.values(), b.values());
  EXPECT_EQ(a.revision(), b.revision());
  EXPECT_EQ(a.journal_base_revision(), b.journal_base_revision());
  auto ja = a.JournalRecords();
  auto jb = b.JournalRecords();
  ASSERT_EQ(ja.size(), jb.size());
  for (std::size_t i = 0; i < ja.size(); ++i) {
    EXPECT_EQ(ja[i].id, jb[i].id);
    EXPECT_EQ(ja[i].old_value, jb[i].old_value);
    EXPECT_EQ(ja[i].new_value, jb[i].new_value);
  }
}

void ExpectFeedbackLogsEqual(const feedback::FeedbackLog& a,
                             const feedback::FeedbackLog& b) {
  EXPECT_EQ(a.next_sequence(), b.next_sequence());
  auto ea = a.Snapshot();
  auto eb = b.Snapshot();
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].kind, eb[i].kind);
    EXPECT_EQ(ea[i].sequence, eb[i].sequence);
    EXPECT_EQ(ea[i].weight_revision, eb[i].weight_revision);
    EXPECT_EQ(ea[i].keywords, eb[i].keywords);
    EXPECT_EQ(ea[i].replayable, eb[i].replayable);
    ASSERT_EQ(ea[i].deltas.size(), eb[i].deltas.size());
    for (std::size_t d = 0; d < ea[i].deltas.size(); ++d) {
      EXPECT_EQ(ea[i].deltas[d].id, eb[i].deltas[d].id);
      EXPECT_EQ(ea[i].deltas[d].old_value, eb[i].deltas[d].old_value);
      EXPECT_EQ(ea[i].deltas[d].new_value, eb[i].deltas[d].new_value);
    }
  }
}

void ExpectSystemsEqual(const core::QSystem& a, const core::QSystem& b) {
  ExpectCatalogsEqual(a.catalog(), b.catalog());
  const graph::FeatureSpace& fa =
      const_cast<core::QSystem&>(a).feature_space();
  const graph::FeatureSpace& fb =
      const_cast<core::QSystem&>(b).feature_space();
  ASSERT_EQ(fa.size(), fb.size());
  for (graph::FeatureId i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa.name(i), fb.name(i));
    EXPECT_EQ(fa.initial_weight(i), fb.initial_weight(i));
  }
  ExpectGraphsEqual(a.search_graph(), b.search_graph());
  ExpectWeightsEqual(a.weights(), b.weights());
  ExpectFeedbackLogsEqual(a.feedback_log(), b.feedback_log());
}

// --- per-section round trips ------------------------------------------------

TEST(SnapshotSectionTest, AllSectionsRoundTrip) {
  Fixture f = BuildTrainedSystem();
  core::QSystem& q = *f.q;

  relational::Catalog catalog;
  ASSERT_TRUE(DecodeCatalog(EncodeCatalog(q.catalog()), &catalog).ok());
  ExpectCatalogsEqual(q.catalog(), catalog);

  graph::FeatureSpace space;
  ASSERT_TRUE(
      DecodeFeatureSpace(EncodeFeatureSpace(q.feature_space()), &space).ok());
  ASSERT_EQ(space.size(), q.feature_space().size());
  for (graph::FeatureId i = 0; i < space.size(); ++i) {
    EXPECT_EQ(space.name(i), q.feature_space().name(i));
    EXPECT_EQ(space.initial_weight(i), q.feature_space().initial_weight(i));
  }

  graph::SearchGraph graph;
  ASSERT_TRUE(DecodeGraph(EncodeGraph(q.search_graph()), space.size(), &graph)
                  .ok());
  ExpectGraphsEqual(q.search_graph(), graph);

  graph::WeightVector weights(&space);
  ASSERT_TRUE(
      DecodeWeights(EncodeWeights(q.weights()), space.size(), &weights).ok());
  ExpectWeightsEqual(q.weights(), weights);

  feedback::FeedbackLog log;
  ASSERT_TRUE(DecodeFeedback(EncodeFeedback(q.feedback_log()), &log).ok());
  ExpectFeedbackLogsEqual(q.feedback_log(), log);
}

TEST(SnapshotSectionTest, DecodersRejectGarbageWithoutCrashing) {
  util::Rng rng(TestSeed());
  for (int trial = 0; trial < 32; ++trial) {
    std::string garbage;
    std::size_t len = rng.Uniform(512);
    garbage.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.Uniform(256)));
    }
    relational::Catalog catalog;
    (void)DecodeCatalog(garbage, &catalog);
    graph::FeatureSpace space;
    (void)DecodeFeatureSpace(garbage, &space);
    graph::SearchGraph graph;
    (void)DecodeGraph(garbage, 16, &graph);
    graph::FeatureSpace scratch;
    graph::WeightVector weights(&scratch);
    (void)DecodeWeights(garbage, 1, &weights);
    feedback::FeedbackLog log;
    (void)DecodeFeedback(garbage, &log);
    // Reaching here without UB/abort is the assertion; sanitizer CI
    // (`persist` label) makes it meaningful.
  }
}

// --- QSystem round trip -------------------------------------------------------

TEST(SnapshotRoundTripTest, OpenMissingSnapshotIsNotFound) {
  std::string dir = FreshDir("missing");
  SnapshotLoadReport report;
  auto q = core::QSystem::OpenFromSnapshot(dir, core::QSystemConfig(), nullptr,
                                           &report);
  EXPECT_TRUE(q.status().IsNotFound()) << q.status();
}

TEST(SnapshotRoundTripTest, RestoredSystemIsBitIdentical) {
  Fixture f = BuildTrainedSystem();
  std::string dir = FreshDir("identical");
  ASSERT_TRUE(f.q->SaveSnapshot(dir).ok());

  SnapshotLoadReport report;
  auto restored = core::QSystem::OpenFromSnapshot(
      dir, core::QSystemConfig(), nullptr, &report);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_TRUE(report.complete()) << report.Summary();
  EXPECT_FALSE(report.cold_start);
  EXPECT_FALSE(report.weights_replayed);
  ExpectSystemsEqual(*f.q, **restored);
  // Derived state is rebuilt, not persisted.
  EXPECT_EQ((*restored)->text_index().num_documents(),
            f.q->text_index().num_documents());
  // Views are recreated lazily, never restored.
  EXPECT_EQ((*restored)->num_views(), 0u);
}

TEST(SnapshotRoundTripTest, WarmRestartServesViewsLazily) {
  Fixture f = BuildTrainedSystem();
  std::string dir = FreshDir("lazy_views");
  ASSERT_TRUE(f.q->SaveSnapshot(dir).ok());

  auto restored =
      core::QSystem::OpenFromSnapshot(dir, core::QSystemConfig());
  ASSERT_TRUE(restored.ok()) << restored.status();

  // A view recreated on the restored system (through the RefreshEngine
  // classify-then-repair pipeline, no re-alignment) must produce the same
  // answers as the same view created on the original.
  const auto& keywords = f.dataset.keyword_queries[0];
  auto orig_id = f.q->CreateView(keywords);
  auto rest_id = (*restored)->CreateView(keywords);
  ASSERT_TRUE(orig_id.ok()) << orig_id.status();
  ASSERT_TRUE(rest_id.ok()) << rest_id.status();
  auto orig_rows = ViewRows(*f.q, *orig_id);
  auto rest_rows = ViewRows(**restored, *rest_id);
  ASSERT_EQ(orig_rows.size(), rest_rows.size());
  for (std::size_t i = 0; i < orig_rows.size(); ++i) {
    EXPECT_EQ(orig_rows[i].first, rest_rows[i].first);
    EXPECT_EQ(orig_rows[i].second, rest_rows[i].second);
  }
}

TEST(SnapshotRoundTripTest, RestoredTwinStaysIdenticalUnderFeedback) {
  // The differential contract: keep driving the original and the restored
  // twin with an identical randomized feedback schedule; their durable
  // state must never diverge.
  util::Rng rng(TestSeed());
  for (int round = 0; round < 2; ++round) {
    Fixture f = BuildTrainedSystem(/*num_views=*/2);
    std::string dir = FreshDir("twin" + std::to_string(round));
    ASSERT_TRUE(f.q->SaveSnapshot(dir).ok());
    auto restored =
        core::QSystem::OpenFromSnapshot(dir, core::QSystemConfig());
    ASSERT_TRUE(restored.ok()) << restored.status();
    core::QSystem& twin = **restored;

    feedback::SimulatedUser user(f.dataset.gold_edges);
    const auto& queries = f.dataset.keyword_queries;
    for (int step = 0; step < 4; ++step) {
      const auto& keywords = queries[rng.Uniform(queries.size())];
      auto a = f.q->CreateView(keywords);
      auto b = twin.CreateView(keywords);
      ASSERT_EQ(a.ok(), b.ok());
      if (!a.ok()) continue;
      auto fa = f.q->ApplyGoldFeedback(*a, user);
      auto fb = twin.ApplyGoldFeedback(*b, user);
      ASSERT_TRUE(fa.ok()) << fa.status();
      ASSERT_TRUE(fb.ok()) << fb.status();
      ASSERT_EQ(*fa, *fb);
      ExpectWeightsEqual(f.q->weights(), twin.weights());
      auto ra = ViewRows(*f.q, *a);
      auto rb = ViewRows(twin, *b);
      ASSERT_EQ(ra.size(), rb.size());
      for (std::size_t i = 0; i < ra.size(); ++i) {
        EXPECT_EQ(ra[i].first, rb[i].first);
        EXPECT_EQ(ra[i].second, rb[i].second);
      }
    }
    ExpectGraphsEqual(f.q->search_graph(), twin.search_graph());
  }
}

TEST(SnapshotRoundTripTest, SecondSaveReplacesFirst) {
  Fixture f = BuildTrainedSystem(/*num_views=*/1);
  std::string dir = FreshDir("replace");
  ASSERT_TRUE(f.q->SaveSnapshot(dir).ok());
  std::uint64_t rev_at_first_save = f.q->weights().revision();

  // Move the system forward, save again: the snapshot must reflect the
  // latest state, not the first.
  feedback::SimulatedUser user(f.dataset.gold_edges);
  auto view_id = f.q->CreateView(f.dataset.keyword_queries[1]);
  ASSERT_TRUE(view_id.ok());
  ASSERT_TRUE(f.q->ApplyGoldFeedback(*view_id, user).ok());
  ASSERT_TRUE(f.q->SaveSnapshot(dir).ok());

  auto restored =
      core::QSystem::OpenFromSnapshot(dir, core::QSystemConfig());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_GE((*restored)->weights().revision(), rev_at_first_save);
  ExpectSystemsEqual(*f.q, **restored);
}

TEST(SnapshotRoundTripTest, ReplayingPersistedLogReproducesWeights) {
  // The degraded-weights recovery rung, exercised directly: a fresh
  // weight vector plus the persisted (complete-history) feedback log must
  // land on the same effective weights as the saved system.
  Fixture f = BuildTrainedSystem();
  ASSERT_TRUE(f.q->feedback_log().complete_history());

  feedback::FeedbackLog log;
  ASSERT_TRUE(
      DecodeFeedback(EncodeFeedback(f.q->feedback_log()), &log).ok());
  graph::FeatureSpace space;
  ASSERT_TRUE(
      DecodeFeatureSpace(EncodeFeatureSpace(f.q->feature_space()), &space)
          .ok());
  graph::WeightVector replayed(&space);
  ASSERT_TRUE(log.ReplayInto(&replayed).ok());
  for (graph::FeatureId id = 0; id < space.size(); ++id) {
    EXPECT_EQ(replayed.At(id), f.q->weights().At(id)) << "feature " << id;
  }
}

TEST(SnapshotRoundTripTest, AsyncSystemQuiescesAndRoundTrips) {
  // Saving with the async scheduler enabled must quiesce first and
  // produce the same snapshot a synchronous system would.
  auto dataset = data::BuildInterProGo(SmallDataset());
  core::QSystemConfig config;
  config.async_refresh = true;
  core::QSystem q(config);
  for (const auto& src : dataset.catalog.sources()) {
    ASSERT_TRUE(q.RegisterSource(src).ok());
  }
  ASSERT_TRUE(q.RunInitialAlignment().ok());
  feedback::SimulatedUser user(dataset.gold_edges);
  auto view_id = q.CreateView(dataset.keyword_queries[0]);
  ASSERT_TRUE(view_id.ok());
  ASSERT_TRUE(q.ApplyGoldFeedback(*view_id, user).ok());

  std::string dir = FreshDir("async");
  ASSERT_TRUE(q.SaveSnapshot(dir).ok());
  SnapshotLoadReport report;
  auto restored = core::QSystem::OpenFromSnapshot(
      dir, core::QSystemConfig(), nullptr, &report);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_TRUE(report.complete()) << report.Summary();
  ExpectWeightsEqual(q.weights(), (*restored)->weights());
  ExpectGraphsEqual(q.search_graph(), (*restored)->search_graph());
}

}  // namespace
}  // namespace q::persist
