// Relevance-scoped view refresh (alpha-neighborhood gating): views the
// RefreshEngine classifies as kSkippedIrrelevant — repriced edges, but
// provably outside the view's top-k neighborhood and slack — must keep
// results bit-identical to a from-scratch refresh, including across
// accumulated (uncommitted) skip rounds and adversarial deltas landing
// exactly on the slack boundary. The boundary rule itself
// (core::ClassifyDeltaRelevance) is unit-tested with exact doubles.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/q_system.h"
#include "data/interpro_go.h"
#include "util/random.h"

namespace q::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// --- ClassifyDeltaRelevance boundary semantics ------------------------------

steiner::RelevanceCertificate MakeCert(std::vector<graph::EdgeId> edges,
                                       double gap) {
  steiner::RelevanceCertificate cert;
  cert.valid = true;
  cert.edges = std::move(edges);
  cert.gap = gap;
  return cert;
}

TEST(ClassifyDeltaRelevanceTest, TouchingTheCertificateNeverSkips) {
  auto cert = MakeCert({2, 5, 9}, kInf);
  // Even a pure increase of a certificate edge falls through: it changes
  // a returned tree's cost.
  auto d = ClassifyDeltaRelevance(cert, {{5, 1.0, 2.0}});
  EXPECT_FALSE(d.skip);
  EXPECT_TRUE(d.touched_certificate);
}

TEST(ClassifyDeltaRelevanceTest, PureIncreasesOutsideAlwaysSkip) {
  // Gap zero: the k+1-th candidate ties the k-th tree, so no decrease is
  // tolerable — but increases keep every outside tree at least as far.
  auto cert = MakeCert({2, 5, 9}, 0.0);
  auto d = ClassifyDeltaRelevance(cert, {{3, 1.0, 5.0}, {7, 0.5, 0.6}});
  EXPECT_TRUE(d.skip);
  EXPECT_EQ(d.net_decrease, 0.0);
}

TEST(ClassifyDeltaRelevanceTest, DecreaseStrictlyInsideSlackSkips) {
  auto cert = MakeCert({2, 5, 9}, 1.0);
  auto d = ClassifyDeltaRelevance(cert, {{3, 2.0, 1.75}, {7, 1.0, 0.9}});
  EXPECT_TRUE(d.skip);
  EXPECT_DOUBLE_EQ(d.net_decrease, 0.35);
}

TEST(ClassifyDeltaRelevanceTest, DecreaseExactlyOnTheSlackBoundaryFallsThrough) {
  // net decrease == gap exactly: an outside tree could now tie the k-th
  // returned cost and re-rank under the deterministic tie-break.
  auto cert = MakeCert({2, 5, 9}, 1.0);
  auto d = ClassifyDeltaRelevance(cert, {{3, 2.0, 1.5}, {7, 1.0, 0.5}});
  EXPECT_DOUBLE_EQ(d.net_decrease, 1.0);
  EXPECT_FALSE(d.skip);
  EXPECT_FALSE(d.touched_certificate);
}

TEST(ClassifyDeltaRelevanceTest, DecreaseWithinFloatMarginOfSlackFallsThrough) {
  auto cert = MakeCert({}, 1.0);
  // Inside the gap, but by less than the relative safety margin.
  auto d = ClassifyDeltaRelevance(cert, {{3, 2.0, 1.0 + 1e-13}});
  EXPECT_FALSE(d.skip);
}

TEST(ClassifyDeltaRelevanceTest, AnyDecreaseAtZeroGapFallsThrough) {
  auto cert = MakeCert({}, 0.0);
  auto d = ClassifyDeltaRelevance(cert, {{3, 1.0, 1.0 - 1e-12}});
  EXPECT_FALSE(d.skip);
}

TEST(ClassifyDeltaRelevanceTest, ExhaustedEnumerationToleratesAnyDecrease) {
  // gap == +inf: every proper tree is already in the output, so outside
  // decreases cannot surface a new one.
  auto cert = MakeCert({2}, kInf);
  auto d = ClassifyDeltaRelevance(cert, {{3, 100.0, 0.001}});
  EXPECT_TRUE(d.skip);
}

TEST(ClassifyDeltaRelevanceTest, IncreasesDoNotOffsetDecreases) {
  // The rule sums only decreases: a large increase elsewhere buys no
  // slack back.
  auto cert = MakeCert({}, 1.0);
  auto d = ClassifyDeltaRelevance(cert, {{3, 1.0, 10.0}, {7, 5.0, 3.5}});
  EXPECT_DOUBLE_EQ(d.net_decrease, 1.5);
  EXPECT_FALSE(d.skip);
}

// --- system-level harness ---------------------------------------------------

data::InterProGoConfig SmallDataset() {
  data::InterProGoConfig config;
  config.num_go_terms = 80;
  config.num_entries = 60;
  config.num_pubs = 50;
  config.num_journals = 10;
  config.num_methods = 40;
  config.interpro2go_links = 120;
  config.entry2pub_links = 100;
  config.method2pub_links = 80;
  return config;
}

struct ViewState {
  std::vector<steiner::SteinerTree> trees;
  std::vector<std::string> columns;
  std::vector<query::ResultRow> rows;
};

ViewState Capture(const query::TopKView& view) {
  return ViewState{view.trees(), view.results().columns,
                   view.results().rows};
}

void ExpectSameState(const ViewState& a, const ViewState& b,
                     const std::string& label) {
  ASSERT_EQ(a.trees.size(), b.trees.size()) << label;
  for (std::size_t i = 0; i < a.trees.size(); ++i) {
    EXPECT_EQ(a.trees[i].edges, b.trees[i].edges) << label << " tree " << i;
    EXPECT_EQ(a.trees[i].cost, b.trees[i].cost) << label << " tree " << i;
  }
  EXPECT_EQ(a.columns, b.columns) << label;
  ASSERT_EQ(a.rows.size(), b.rows.size()) << label;
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].cost, b.rows[i].cost) << label << " row " << i;
    EXPECT_EQ(a.rows[i].query_index, b.rows[i].query_index)
        << label << " row " << i;
    EXPECT_EQ(a.rows[i].values, b.rows[i].values) << label << " row " << i;
  }
}

std::unique_ptr<QSystem> BuildSystem(const data::InterProGoDataset& dataset,
                                     int k, bool relevance_gating) {
  QSystemConfig config;
  config.steiner_threads = -1;  // deterministic work orders for debugging
  config.view.top_k.k = k;
  config.view.query_graph.min_similarity = 0.5;
  config.view.query_graph.max_matches_per_keyword = 6;
  config.relevance_gating = relevance_gating;
  auto q = std::make_unique<QSystem>(config);
  for (const auto& src : dataset.catalog.sources()) {
    Q_CHECK_OK(q->RegisterSource(src));
  }
  Q_CHECK_OK(q->RunInitialAlignment());
  return q;
}

// Two QSystems built identically from the same dataset: `gated` refreshes
// through the RefreshEngine (relevance gate on), `reference` refreshes
// every view from scratch via TopKView::Refresh. Construction is
// deterministic, so feature ids line up and identical nudges can be
// applied to both.
struct Twin {
  data::InterProGoDataset dataset;
  std::unique_ptr<QSystem> gated;
  std::unique_ptr<QSystem> reference;
  std::vector<std::size_t> view_ids;

  explicit Twin(int k, std::size_t num_views) {
    dataset = data::BuildInterProGo(SmallDataset());
    gated = BuildSystem(dataset, k, /*relevance_gating=*/true);
    reference = BuildSystem(dataset, k, /*relevance_gating=*/true);
    for (std::size_t i = 0;
         i < num_views && i < dataset.keyword_queries.size(); ++i) {
      auto a = gated->CreateView(dataset.keyword_queries[i]);
      auto b = reference->CreateView(dataset.keyword_queries[i]);
      Q_CHECK(a.ok() == b.ok());
      if (a.ok()) {
        Q_CHECK(*a == *b);
        view_ids.push_back(*a);
      }
    }
    Q_CHECK(!view_ids.empty());
  }

  void Nudge(graph::FeatureId f, double delta) {
    gated->mutable_weights().Nudge(f, delta);
    reference->mutable_weights().Nudge(f, delta);
  }

  // Gated path refreshes through the engine; the reference rebuilds every
  // view from scratch (independent Refresh bypasses the engine and its
  // gate entirely).
  void RefreshBoth() {
    ASSERT_TRUE(gated->RefreshAllViews().ok());
    for (std::size_t id : view_ids) {
      ASSERT_TRUE(reference->view(id)
                      .Refresh(reference->search_graph(),
                               reference->catalog(),
                               reference->text_index(),
                               &reference->cost_model(),
                               reference->weights())
                      .ok());
    }
  }

  void ExpectIdentical(const std::string& label) {
    for (std::size_t id : view_ids) {
      ExpectSameState(Capture(reference->view(id)), Capture(gated->view(id)),
                      label + " view " + std::to_string(id));
    }
  }
};

// Feature ids carried by at least one edge of the graph.
std::set<graph::FeatureId> GraphFeatures(const graph::SearchGraph& g) {
  std::set<graph::FeatureId> features;
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    for (const auto& [id, value] : g.edge_features(e).entries()) {
      features.insert(id);
    }
  }
  return features;
}

// A non-default feature carried by >= 1 edge of the view's query graph,
// with none of its carrying edges inside the view's certificate. Nudging
// it reprices snapshot edges the certificate proves irrelevant. Returns
// false when no such feature exists.
bool FindOutsideFeature(const query::TopKView& view, graph::FeatureId* out,
                        double* value_sum) {
  const graph::SearchGraph& g = view.query_graph().graph;
  const auto& cert = view.certificate();
  if (!cert.valid) return false;
  std::set<graph::EdgeId> cert_edges(cert.edges.begin(), cert.edges.end());
  std::set<graph::FeatureId> inside;
  for (graph::EdgeId e : cert.edges) {
    if (e >= g.num_edges()) continue;
    for (const auto& [id, value] : g.edge_features(e).entries()) {
      inside.insert(id);
    }
  }
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    if (cert_edges.count(e) > 0) continue;
    for (const auto& [id, value] : g.edge_features(e).entries()) {
      if (id == graph::FeatureSpace::kDefaultFeature) continue;
      if (inside.count(id) > 0) continue;  // also on a certificate edge
      double sum = 0.0;
      for (graph::EdgeId e2 = 0; e2 < g.num_edges(); ++e2) {
        sum += g.edge_features(e2).ValueOf(id);
      }
      *out = id;
      *value_sum = sum;
      return true;
    }
  }
  return false;
}

// --- certificate emission ---------------------------------------------------

TEST(RelevanceCertificateTest, ExactSearchEmitsValidCertificate) {
  Twin t(/*k=*/2, /*num_views=*/2);
  for (std::size_t id : t.view_ids) {
    const auto& view = t.gated->view(id);
    const auto& cert = view.certificate();
    ASSERT_TRUE(view.refreshed());
    EXPECT_TRUE(cert.valid);
    EXPECT_GE(cert.gap, 0.0);
    EXPECT_GT(cert.serial, 0u);
    // Every returned tree edge is inside the neighborhood.
    for (const auto& tree : view.trees()) {
      for (graph::EdgeId e : tree.edges) {
        EXPECT_TRUE(std::binary_search(cert.edges.begin(), cert.edges.end(),
                                       e))
            << "tree edge " << e << " missing from certificate";
      }
    }
  }
}

TEST(RelevanceCertificateTest, ApproximateSearchNeverCertifies) {
  auto dataset = data::BuildInterProGo(SmallDataset());
  QSystemConfig config;
  config.steiner_threads = -1;
  config.view.top_k.approximate = true;  // KMB substrate: heuristic output
  config.view.query_graph.min_similarity = 0.5;
  config.view.query_graph.max_matches_per_keyword = 6;
  QSystem q(config);
  for (const auto& src : dataset.catalog.sources()) {
    ASSERT_TRUE(q.RegisterSource(src).ok());
  }
  ASSERT_TRUE(q.RunInitialAlignment().ok());
  auto id = q.CreateView(dataset.keyword_queries[0]);
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(q.view(*id).refreshed());
  EXPECT_FALSE(q.view(*id).certificate().valid);

  // And with the gate structurally unable to certify, a weight update must
  // never classify kSkippedIrrelevant.
  q.mutable_weights().Nudge(1, 0.02);
  ASSERT_TRUE(q.RefreshAllViews().ok());
  EXPECT_EQ(q.refresh_engine().stats().views_skipped_irrelevant, 0u);
}

// --- gating behavior --------------------------------------------------------

// An increase confined to edges outside a view's certificate must be
// skipped as irrelevant — without committing — and the stored results
// must equal a from-scratch refresh bit for bit.
TEST(RelevanceGatingTest, OutsideIncreaseSkipsAndStaysIdentical) {
  Twin t(/*k=*/2, /*num_views=*/3);
  graph::FeatureId outside = 0;
  double value_sum = 0.0;
  ASSERT_TRUE(
      FindOutsideFeature(t.gated->view(t.view_ids[0]), &outside, &value_sum))
      << "dataset produced no feature outside the certificate";

  auto before = t.gated->refresh_engine().stats();
  t.Nudge(outside, 0.05);
  t.RefreshBoth();
  auto after = t.gated->refresh_engine().stats();

  EXPECT_GT(after.relevance_checks, before.relevance_checks);
  EXPECT_GT(after.views_skipped_irrelevant, before.views_skipped_irrelevant)
      << "outside increase was not gated as irrelevant";
  t.ExpectIdentical("outside increase");

  // A second refresh replays the (uncommitted) delta from the same
  // baseline and must skip again, still identical.
  auto mid = t.gated->refresh_engine().stats();
  ASSERT_TRUE(t.gated->RefreshAllViews().ok());
  auto final_stats = t.gated->refresh_engine().stats();
  EXPECT_GT(final_stats.views_skipped_irrelevant,
            mid.views_skipped_irrelevant);
  t.ExpectIdentical("outside increase, replayed");
}

// With gating disabled the same delta takes the PR 3 delta-recost path.
TEST(RelevanceGatingTest, DisabledGateFallsBackToDeltaRecost) {
  auto dataset = data::BuildInterProGo(SmallDataset());
  auto q = BuildSystem(dataset, /*k=*/2, /*relevance_gating=*/false);
  auto id = q->CreateView(dataset.keyword_queries[0]);
  ASSERT_TRUE(id.ok());
  graph::FeatureId outside = 0;
  double value_sum = 0.0;
  ASSERT_TRUE(FindOutsideFeature(q->view(*id), &outside, &value_sum));

  auto before = q->refresh_engine().stats();
  q->mutable_weights().Nudge(outside, 0.05);
  ASSERT_TRUE(q->RefreshAllViews().ok());
  auto after = q->refresh_engine().stats();
  EXPECT_EQ(after.views_skipped_irrelevant, before.views_skipped_irrelevant);
  EXPECT_EQ(after.relevance_checks, before.relevance_checks);
  EXPECT_GT(after.views_delta_recost, before.views_delta_recost);
}

// Outside *decreases* accumulate across uncommitted skips: each round
// replays the coalesced journal from the same baseline, so once the
// cumulative decrease crosses the slack the view must fall through and
// actually re-search. Results match the reference at every round.
TEST(RelevanceGatingTest, StaleCertificateAccumulatesUntilSlackExhausted) {
  // k=1 keeps the gap a real cost difference (the best and second-best
  // trees differ by actual edges); at larger k the boundary candidates
  // often tie to within float dust, and the gate's absolute margin
  // rightly refuses to certify decreases against a rounding-residue
  // slack.
  Twin t(/*k=*/1, /*num_views=*/1);
  const query::TopKView& view = t.gated->view(t.view_ids[0]);
  ASSERT_TRUE(view.certificate().valid);
  double gap = view.certificate().gap;
  if (!std::isfinite(gap) || gap <= 1e-6) {
    GTEST_SKIP() << "no usable slack to exhaust (gap=" << gap << ")";
  }
  graph::FeatureId outside = 0;
  double value_sum = 0.0;
  ASSERT_TRUE(FindOutsideFeature(view, &outside, &value_sum));
  ASSERT_GT(value_sum, 0.0);

  // Each nudge decreases the carrying edges' summed cost by about
  // gap / 2.5 (clamping can only shrink it), so the cumulative replayed
  // decrease crosses the slack within a handful of rounds.
  const double step = -gap / (2.5 * value_sum);
  bool skipped = false;
  bool fell_through = false;
  for (int round = 0; round < 12 && !fell_through; ++round) {
    auto before = t.gated->refresh_engine().stats();
    t.Nudge(outside, step);
    t.RefreshBoth();
    auto after = t.gated->refresh_engine().stats();
    if (after.views_skipped_irrelevant > before.views_skipped_irrelevant) {
      skipped = true;
    }
    if (after.views_delta_recost + after.views_full_recost >
        before.views_delta_recost + before.views_full_recost) {
      fell_through = true;
    }
    t.ExpectIdentical("decrease round " + std::to_string(round));
    if (HasFatalFailure()) return;
  }
  EXPECT_TRUE(skipped) << "no round was gated as irrelevant";
  EXPECT_TRUE(fell_through)
      << "cumulative decreases never exhausted the slack";
}

// Randomized differential suite: sparse weight updates in both
// directions; whatever mix of skip / irrelevant-skip / delta-recost /
// full-recost the gate picks, gated output must equal the from-scratch
// reference bit for bit after every step.
TEST(RelevanceGatingTest, RandomizedSparseUpdatesStayIdentical) {
  Twin t(/*k=*/2, /*num_views=*/3);
  util::Rng rng(20260728);
  std::vector<graph::FeatureId> features;
  for (graph::FeatureId f : GraphFeatures(t.gated->search_graph())) {
    if (f != graph::FeatureSpace::kDefaultFeature) features.push_back(f);
  }
  ASSERT_FALSE(features.empty());

  for (int step = 0; step < 16; ++step) {
    auto f = features[rng.Uniform(features.size())];
    // Two thirds increases (always gate-safe when outside), one third
    // small decreases (exercise the slack test and its fall-through).
    double magnitude = 0.005 + 0.03 * rng.UniformDouble();
    double delta = rng.Uniform(3) == 0 ? -magnitude : magnitude;
    t.Nudge(f, delta);
    t.RefreshBoth();
    t.ExpectIdentical("random step " + std::to_string(step));
    if (HasFatalFailure()) return;
  }
  // The run must actually have exercised the gate, both ways.
  auto stats = t.gated->refresh_engine().stats();
  EXPECT_GT(stats.relevance_checks, 0u);
  EXPECT_GT(stats.views_skipped_irrelevant, 0u)
      << "no view was ever gated as irrelevant; gate never fired";
}

}  // namespace
}  // namespace q::core
