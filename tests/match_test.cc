#include <gtest/gtest.h>

#include <memory>

#include "match/mad.h"
#include "match/mad_matcher.h"
#include "match/matcher.h"
#include "match/metadata_matcher.h"
#include "match/synonyms.h"
#include "match/top_y_reveal.h"
#include "match/value_overlap.h"

namespace q::match {
namespace {

using relational::AttributeDef;
using relational::AttributeId;
using relational::RelationSchema;
using relational::Row;
using relational::Table;
using relational::Value;
using relational::ValueType;

Table MakeTable(const std::string& source, const std::string& relation,
                std::vector<AttributeDef> attrs) {
  return Table(RelationSchema(source, relation, std::move(attrs)));
}

TEST(SynonymsTest, DefaultDictionary) {
  SynonymDictionary dict = SynonymDictionary::Default();
  EXPECT_EQ(dict.Canonical("pub"), "publication");
  EXPECT_EQ(dict.Canonical("acc"), "accession");
  EXPECT_EQ(dict.Canonical("unknown_token"), "unknown_token");
  auto norm = dict.Normalize({"pub", "id"});
  ASSERT_EQ(norm.size(), 2u);
  EXPECT_EQ(norm[0], "publication");
  EXPECT_EQ(norm[1], "identifier");
}

TEST(TopYPerAttributeTest, KeepsTopYAndDedupes) {
  AttributeId a{"s", "r1", "x"};
  AttributeId b{"s", "r2", "y"};
  AttributeId c{"s", "r3", "z"};
  std::vector<AlignmentCandidate> cands{
      {a, b, 0.9, "m"},
      {b, a, 0.7, "m"},  // duplicate pair, lower confidence
      {a, c, 0.5, "m"},
      {b, c, 0.4, "m"},
  };
  auto top1 = TopYPerAttribute(cands, 1);
  // a keeps (a,b); b keeps (a,b); c keeps (a,c). -> {(a,b), (a,c)}
  ASSERT_EQ(top1.size(), 2u);
  auto top2 = TopYPerAttribute(cands, 2);
  EXPECT_EQ(top2.size(), 3u);
  EXPECT_TRUE(TopYPerAttribute(cands, 0).empty());

  // The duplicate kept the max confidence.
  for (const auto& cand : top1) {
    if (cand.PairKey() == cands[0].PairKey()) {
      EXPECT_DOUBLE_EQ(cand.confidence, 0.9);
    }
  }
}

TEST(MetadataMatcherTest, IdenticalNamesScoreHigh) {
  Table t1 = MakeTable("s1", "entry", {{"entry_ac", ValueType::kString},
                                       {"name", ValueType::kString}});
  Table t2 = MakeTable("s2", "entry2pub", {{"entry_ac", ValueType::kString},
                                           {"pub_id", ValueType::kString}});
  MetadataMatcher matcher;
  auto result = matcher.AlignPair(t1, t2, 2);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->empty());
  // Best candidate should pair the two entry_ac columns.
  const AlignmentCandidate* best = nullptr;
  for (const auto& c : *result) {
    if (best == nullptr || c.confidence > best->confidence) best = &c;
  }
  EXPECT_EQ(best->a.attribute, "entry_ac");
  EXPECT_EQ(best->b.attribute, "entry_ac");
  EXPECT_GT(best->confidence, 0.7);
}

TEST(MetadataMatcherTest, AbbreviationExpansionHelps) {
  MetadataMatcher matcher;
  RelationSchema s1("a", "pub", {{"pub_id", ValueType::kString}});
  RelationSchema s2("b", "publication",
                    {{"publication_identifier", ValueType::kString}});
  double with_syn = matcher.ScorePair(s1, 0, s2, 0);
  EXPECT_GT(with_syn, 0.8);  // tokens normalize to identical sets
}

TEST(MetadataMatcherTest, UnrelatedNamesScoreLow) {
  MetadataMatcher matcher;
  RelationSchema s1("a", "go_term", {{"acc", ValueType::kString}});
  RelationSchema s2("b", "interpro2go", {{"go_id", ValueType::kString}});
  // The COMA++ failure mode: value-compatible but metadata-dissimilar.
  EXPECT_LT(matcher.ScorePair(s1, 0, s2, 0), 0.6);
}

TEST(MetadataMatcherTest, CountsComparisons) {
  Table t1 = MakeTable("s1", "r1", {{"a", ValueType::kString},
                                    {"b", ValueType::kString}});
  Table t2 = MakeTable("s2", "r2", {{"c", ValueType::kString},
                                    {"d", ValueType::kString},
                                    {"e", ValueType::kString}});
  MetadataMatcher matcher;
  ASSERT_TRUE(matcher.AlignPair(t1, t2, 2).ok());
  EXPECT_EQ(matcher.stats().attribute_comparisons, 6u);
  EXPECT_EQ(matcher.stats().pair_alignments, 1u);
  matcher.ResetStats();
  EXPECT_EQ(matcher.stats().attribute_comparisons, 0u);
}

TEST(MetadataMatcherTest, PairFilterSkipsComparisons) {
  Table t1 = MakeTable("s1", "r1", {{"a", ValueType::kString},
                                    {"b", ValueType::kString}});
  Table t2 = MakeTable("s2", "r2", {{"c", ValueType::kString}});
  MetadataMatcher matcher;
  matcher.set_pair_filter([](const AttributeId& x, const AttributeId& y) {
    (void)y;
    return x.attribute == "a";  // only compare pairs whose left side is "a"
  });
  ASSERT_TRUE(matcher.AlignPair(t1, t2, 2).ok());
  EXPECT_EQ(matcher.stats().attribute_comparisons, 1u);
}

TEST(CountingMatcherTest, CountsWithoutProposing) {
  Table t1 = MakeTable("s1", "r1", {{"a", ValueType::kString},
                                    {"b", ValueType::kString}});
  Table t2 = MakeTable("s2", "r2", {{"c", ValueType::kString},
                                    {"d", ValueType::kString}});
  CountingMatcher matcher;
  auto result = matcher.AlignPair(t1, t2, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
  EXPECT_EQ(matcher.stats().attribute_comparisons, 4u);
}

TEST(MadTest, LabelPropGraphBasics) {
  LabelPropGraph g;
  auto a = g.GetOrAddNode("a");
  auto a2 = g.GetOrAddNode("a");
  EXPECT_EQ(a, a2);
  auto v = g.GetOrAddNode("v");
  g.AddEdge(a, v, 1.0);
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(a), 1u);
  g.SetSeed(a, 1);
  EXPECT_TRUE(g.IsSeeded(a));
  EXPECT_FALSE(g.IsSeeded(v));
}

TEST(MadTest, PropagatesAcrossSharedValue) {
  // Figure 4: two attribute nodes sharing value nodes end up carrying
  // each other's labels.
  LabelPropGraph g;
  auto go_id = g.GetOrAddNode("a:go_id");
  auto acc = g.GetOrAddNode("a:acc");
  g.SetSeed(go_id, 1);
  g.SetSeed(acc, 2);
  for (int i = 0; i < 3; ++i) {
    auto v = g.GetOrAddNode("v:GO:000" + std::to_string(i));
    g.AddEdge(go_id, v, 1.0);
    g.AddEdge(acc, v, 1.0);
  }
  MadConfig config;
  config.max_iterations = 3;
  MadResult result = RunMad(g, config);
  EXPECT_EQ(result.iterations_run, 3);

  auto score_of = [&](std::uint32_t node, MadLabel label) {
    for (const auto& [l, s] : result.labels[node]) {
      if (l == label) return s;
    }
    return 0.0;
  };
  // go_id keeps its own label strongly but also receives acc's.
  EXPECT_GT(score_of(go_id, 1), score_of(go_id, 2));
  EXPECT_GT(score_of(go_id, 2), 0.0);
  EXPECT_GT(score_of(acc, 1), 0.0);
  // Value nodes carry both labels.
  auto v0 = g.NodeOf("v:GO:0000");
  EXPECT_GT(score_of(v0, 1), 0.0);
  EXPECT_GT(score_of(v0, 2), 0.0);
}

TEST(MadTest, DisconnectedSeedsDoNotLeak) {
  LabelPropGraph g;
  auto a = g.GetOrAddNode("a");
  auto b = g.GetOrAddNode("b");
  auto va = g.GetOrAddNode("va");
  auto vb = g.GetOrAddNode("vb");
  g.SetSeed(a, 1);
  g.SetSeed(b, 2);
  g.AddEdge(a, va, 1.0);
  g.AddEdge(b, vb, 1.0);
  MadResult result = RunMad(g, MadConfig{});
  for (const auto& [label, score] : result.labels[va]) {
    EXPECT_NE(label, 2u);  // b's label never reaches a's component
  }
}

TEST(MadTest, EmptyGraph) {
  LabelPropGraph g;
  MadResult result = RunMad(g, MadConfig{});
  EXPECT_TRUE(result.labels.empty());
}

TEST(MadMatcherTest, FindsValueOverlapAlignment) {
  // Two attributes with heavy value overlap but unrelated names.
  Table go = MakeTable("go", "go_term", {{"acc", ValueType::kString},
                                         {"name", ValueType::kString}});
  Table i2g = MakeTable("interpro", "interpro2go",
                        {{"go_id", ValueType::kString},
                         {"entry_ac", ValueType::kString}});
  for (int i = 0; i < 30; ++i) {
    std::string id = "GO:" + std::to_string(1000 + i);
    ASSERT_TRUE(
        go.AppendRow(Row{Value(id), Value("term " + std::to_string(i))})
            .ok());
    ASSERT_TRUE(i2g.AppendRow(Row{Value(id),
                                  Value("IPR" + std::to_string(i))})
                    .ok());
  }
  MadMatcher matcher;
  auto result = matcher.AlignPair(go, i2g, 2);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->empty());
  bool found = false;
  for (const auto& c : *result) {
    if ((c.a.attribute == "acc" && c.b.attribute == "go_id") ||
        (c.a.attribute == "go_id" && c.b.attribute == "acc")) {
      found = true;
      EXPECT_GT(c.confidence, 0.0);
    }
  }
  EXPECT_TRUE(found);
  // MAD does no pairwise attribute comparisons (Sec. 3.2.2).
  EXPECT_EQ(matcher.stats().attribute_comparisons, 0u);
  EXPECT_GT(matcher.last_run().graph_nodes, 0u);
}

TEST(MadMatcherTest, NumericValuesDropped) {
  Table a = MakeTable("s1", "r1", {{"x", ValueType::kInt64}});
  Table b = MakeTable("s2", "r2", {{"y", ValueType::kInt64}});
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(a.AppendRow(Row{Value(std::int64_t{i})}).ok());
    ASSERT_TRUE(b.AppendRow(Row{Value(std::int64_t{i})}).ok());
  }
  MadMatcher matcher;
  auto result = matcher.AlignPair(a, b, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());  // all values numeric -> no signal
}

TEST(MadMatcherTest, DegreeOnePruningShrinksGraph) {
  Table a = MakeTable("s1", "r1", {{"x", ValueType::kString}});
  Table b = MakeTable("s2", "r2", {{"y", ValueType::kString}});
  // 5 shared values, 20 unique-to-a values.
  for (int i = 0; i < 5; ++i) {
    std::string shared = "sh" + std::to_string(i);
    ASSERT_TRUE(a.AppendRow(Row{Value(shared)}).ok());
    ASSERT_TRUE(b.AppendRow(Row{Value(shared)}).ok());
  }
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(a.AppendRow(Row{Value("uniq" + std::to_string(i))}).ok());
  }
  MadMatcherConfig pruned;
  pruned.prune_degree_one = true;
  MadMatcher with_pruning(pruned);
  ASSERT_TRUE(with_pruning.AlignPair(a, b, 2).ok());

  MadMatcherConfig unpruned;
  unpruned.prune_degree_one = false;
  MadMatcher without_pruning(unpruned);
  ASSERT_TRUE(without_pruning.AlignPair(a, b, 2).ok());

  EXPECT_LT(with_pruning.last_run().graph_nodes,
            without_pruning.last_run().graph_nodes);
}

TEST(TopYRevealTest, RevealsAlternativesForLowConfidencePairs) {
  // r1.name's best partner is r2.name; suppressing it must reveal the
  // runner-up r2.title (COMA++-style single-answer probing, Sec. 3.2.3).
  Table t1 = MakeTable("s1", "r1", {{"name", ValueType::kString}});
  Table t2 = MakeTable("s2", "r2", {{"name", ValueType::kString},
                                    {"title", ValueType::kString},
                                    {"pub_id", ValueType::kString}});
  MetadataMatcherConfig low_floor;
  low_floor.min_confidence = 0.1;  // let weak alternatives through
  MetadataMatcher matcher(low_floor);
  TopYRevealOptions options;
  options.high_confidence = 0.99;  // probe everything
  options.top_y = 2;
  auto revealed = RevealTopYAlignments(&matcher, t1, t2, options);
  ASSERT_TRUE(revealed.ok());
  // Must contain both the top pair and at least one alternative for
  // r1.name.
  bool has_top = false;
  std::size_t partners_of_name = 0;
  for (const auto& c : *revealed) {
    const auto& other =
        c.a.attribute == "name" && c.a.relation == "r1" ? c.b : c.a;
    if (c.a.ToString() == "s1.r1.name" || c.b.ToString() == "s1.r1.name") {
      ++partners_of_name;
      if (other.attribute == "name") has_top = true;
    }
  }
  EXPECT_TRUE(has_top);
  EXPECT_GE(partners_of_name, 2u);
  // The matcher's filter was restored.
  auto unfiltered = matcher.AlignPair(t1, t2, 1);
  ASSERT_TRUE(unfiltered.ok());
  EXPECT_FALSE(unfiltered->empty());
}

TEST(TopYRevealTest, HighConfidencePairsNotProbed) {
  Table t1 = MakeTable("s1", "r1", {{"pub_id", ValueType::kString}});
  Table t2 = MakeTable("s2", "r2", {{"pub_id", ValueType::kString},
                                    {"other", ValueType::kString}});
  MetadataMatcher matcher;
  TopYRevealOptions options;
  options.high_confidence = 0.5;  // identical names exceed this
  auto revealed = RevealTopYAlignments(&matcher, t1, t2, options);
  ASSERT_TRUE(revealed.ok());
  // Only the trusted top pair; no probing happened.
  EXPECT_EQ(revealed->size(), 1u);
  EXPECT_EQ(matcher.stats().pair_alignments, 1u);
}

TEST(ValueOverlapTest, OverlapAndFilter) {
  Table a = MakeTable("s1", "r1", {{"x", ValueType::kString}});
  Table b = MakeTable("s2", "r2", {{"y", ValueType::kString},
                                   {"z", ValueType::kString}});
  for (const char* v : {"1", "2", "3"}) {
    ASSERT_TRUE(a.AppendRow(Row{Value(v)}).ok());
  }
  ASSERT_TRUE(b.AppendRow(Row{Value("2"), Value("zz")}).ok());
  ASSERT_TRUE(b.AppendRow(Row{Value("3"), Value("ww")}).ok());

  ValueOverlapIndex index;
  index.IndexTable(a);
  index.IndexTable(b);
  AttributeId ax{"s1", "r1", "x"};
  AttributeId by{"s2", "r2", "y"};
  AttributeId bz{"s2", "r2", "z"};
  EXPECT_EQ(index.Overlap(ax, by), 2u);
  EXPECT_EQ(index.Overlap(ax, bz), 0u);
  EXPECT_TRUE(index.CanJoin(ax, by));
  EXPECT_FALSE(index.CanJoin(ax, bz));
  EXPECT_TRUE(index.CanJoin(ax, by, 2));
  EXPECT_FALSE(index.CanJoin(ax, by, 3));

  PairFilter filter = index.MakeFilter();
  EXPECT_TRUE(filter(ax, by));
  EXPECT_FALSE(filter(ax, bz));
}

}  // namespace
}  // namespace q::match
