#include "util/status.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "util/result.h"

namespace q::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing table");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing table");
  EXPECT_EQ(s.ToString(), "NotFound: missing table");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::InvalidArgument("bad arity");
  Status copy = s;
  EXPECT_TRUE(copy.IsInvalidArgument());
  EXPECT_EQ(copy.message(), "bad arity");
  EXPECT_EQ(s, copy);
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::Internal("boom").WithContext("loading catalog");
  EXPECT_TRUE(s.IsInternal());
  EXPECT_EQ(s.message(), "loading catalog: boom");
}

TEST(StatusTest, WithContextOnOkIsNoop) {
  Status s = Status::OK().WithContext("anything");
  EXPECT_TRUE(s.ok());
}

TEST(StatusTest, AllCodesStringify) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  Q_ASSIGN_OR_RETURN(int half, Half(x));
  Q_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  auto err = Quarter(6);  // 6/2 = 3 is odd
  ASSERT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsInvalidArgument());
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status Chain(int x) {
  Q_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacro) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_TRUE(Chain(-1).IsOutOfRange());
}

std::string* LastFatal() {
  static std::string last;
  return &last;
}

void ThrowingFatalHandler(const char* file, int line, const char* expr,
                          const std::string& extra) {
  *LastFatal() = std::string(expr) + "|" + extra;
  (void)file;
  (void)line;
  throw std::runtime_error("fatal: " + *LastFatal());
}

TEST(FatalHandlerTest, InstalledHandlerInterceptsFailedChecks) {
  FatalHandler previous = SetFatalHandler(&ThrowingFatalHandler);
  EXPECT_EQ(previous, nullptr);
  LastFatal()->clear();

  EXPECT_THROW(Q_CHECK(1 == 2), std::runtime_error);
  EXPECT_EQ(*LastFatal(), "1 == 2|");

  EXPECT_THROW(Q_CHECK_OK(Status::Internal("boom")), std::runtime_error);
  EXPECT_NE(LastFatal()->find("Internal: boom"), std::string::npos);

  // Passing checks never reach the handler.
  LastFatal()->clear();
  Q_CHECK(2 == 2);
  Q_CHECK_OK(Status::OK());
  EXPECT_TRUE(LastFatal()->empty());

  EXPECT_EQ(SetFatalHandler(previous), &ThrowingFatalHandler);
}

#if GTEST_HAS_DEATH_TEST
TEST(FatalHandlerDeathTest, DefaultBehaviorStillAborts) {
  EXPECT_DEATH(Q_CHECK_MSG(false, "invariant " << 42),
               "invariant 42");
}
#endif

}  // namespace
}  // namespace q::util
