#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/search_graph.h"
#include "steiner/exact_solver.h"
#include "steiner/kmb_solver.h"
#include "steiner/problem.h"
#include "steiner/steiner_tree.h"
#include "steiner/top_k.h"
#include "util/random.h"

namespace q::steiner {
namespace {

using graph::EdgeId;
using graph::FeatureSpace;
using graph::FeatureVec;
using graph::NodeId;
using graph::SearchGraph;
using graph::WeightVector;

// Test harness: a graph whose edge i costs costs[i], encoded as one
// feature per edge with the cost as initial weight.
struct TestGraph {
  FeatureSpace space;
  SearchGraph graph;
  std::unique_ptr<WeightVector> weights;

  explicit TestGraph(std::size_t num_nodes) {
    for (std::size_t i = 0; i < num_nodes; ++i) {
      graph.AddNode(graph::NodeKind::kAttribute, "n" + std::to_string(i));
    }
    weights = std::make_unique<WeightVector>(&space);
  }

  EdgeId AddEdge(NodeId u, NodeId v, double cost) {
    graph::Edge e;
    e.u = u;
    e.v = v;
    e.kind = graph::EdgeKind::kAssociation;
    FeatureVec f;
    f.Add(space.Intern("e" + std::to_string(graph.num_edges()), cost), 1.0);
    e.features = std::move(f);
    return graph.AddEdge(std::move(e));
  }
};

// Brute force: all edge subsets that form a *proper* Steiner tree (every
// leaf a terminal), which is the space TopKSteinerTrees enumerates.
std::vector<SteinerTree> BruteForceAllTrees(
    const TestGraph& tg, const std::vector<NodeId>& terminals) {
  std::vector<SteinerTree> trees;
  std::size_t m = tg.graph.num_edges();
  for (std::size_t mask = 0; mask < (1u << m); ++mask) {
    SteinerTree t;
    for (std::size_t e = 0; e < m; ++e) {
      if (mask & (1u << e)) t.edges.push_back(static_cast<EdgeId>(e));
    }
    if (!IsProperSteinerTree(tg.graph, t, terminals)) continue;
    t.cost = TreeCost(tg.graph, *tg.weights, t);
    trees.push_back(std::move(t));
  }
  std::sort(trees.begin(), trees.end(), TreeLess);
  return trees;
}

TEST(SteinerTreeTest, ValidityChecks) {
  TestGraph tg(4);
  EdgeId e01 = tg.AddEdge(0, 1, 1.0);
  EdgeId e12 = tg.AddEdge(1, 2, 1.0);
  EdgeId e02 = tg.AddEdge(0, 2, 1.0);
  EdgeId e23 = tg.AddEdge(2, 3, 1.0);

  SteinerTree path{{e01, e12}, 2.0};
  EXPECT_TRUE(IsValidSteinerTree(tg.graph, path, {0, 2}));
  EXPECT_TRUE(IsValidSteinerTree(tg.graph, path, {0, 1, 2}));
  EXPECT_FALSE(IsValidSteinerTree(tg.graph, path, {0, 3}));

  SteinerTree cycle{{e01, e12, e02}, 3.0};
  EXPECT_FALSE(IsValidSteinerTree(tg.graph, cycle, {0, 2}));

  SteinerTree disconnected{{e01, e23}, 2.0};
  EXPECT_FALSE(IsValidSteinerTree(tg.graph, disconnected, {0, 3}));

  SteinerTree empty{{}, 0.0};
  EXPECT_TRUE(IsValidSteinerTree(tg.graph, empty, {1, 1}));
  EXPECT_FALSE(IsValidSteinerTree(tg.graph, empty, {0, 1}));
}

TEST(SteinerTreeTest, SymmetricLoss) {
  SteinerTree a{{1, 2, 3}, 0.0};
  SteinerTree b{{2, 3, 4, 5}, 0.0};
  EXPECT_DOUBLE_EQ(SymmetricEdgeLoss(a, b), 3.0);  // {1} and {4,5}
  EXPECT_DOUBLE_EQ(SymmetricEdgeLoss(a, a), 0.0);
  SteinerTree empty{{}, 0.0};
  EXPECT_DOUBLE_EQ(SymmetricEdgeLoss(a, empty), 3.0);
}

TEST(ExactSolverTest, TwoTerminalsIsShortestPath) {
  TestGraph tg(4);
  tg.AddEdge(0, 1, 1.0);
  tg.AddEdge(1, 3, 1.0);
  tg.AddEdge(0, 2, 0.5);
  tg.AddEdge(2, 3, 0.6);

  SteinerProblem problem(tg.graph, *tg.weights, {0, 3}, {}, {});
  auto tree = SolveExactSteiner(problem);
  ASSERT_TRUE(tree.has_value());
  EXPECT_NEAR(tree->cost, 1.1, 1e-9);
  EXPECT_EQ(tree->edges.size(), 2u);
}

TEST(ExactSolverTest, ClassicSteinerPointCase) {
  // Star: terminals 0,1,2 all connect to hub 3 with cost 1; pairwise
  // terminal edges cost 1.9. Optimum uses the hub (cost 3 < 3.8).
  TestGraph tg(4);
  tg.AddEdge(0, 3, 1.0);
  tg.AddEdge(1, 3, 1.0);
  tg.AddEdge(2, 3, 1.0);
  tg.AddEdge(0, 1, 1.9);
  tg.AddEdge(1, 2, 1.9);

  SteinerProblem problem(tg.graph, *tg.weights, {0, 1, 2}, {}, {});
  auto tree = SolveExactSteiner(problem);
  ASSERT_TRUE(tree.has_value());
  EXPECT_NEAR(tree->cost, 3.0, 1e-9);
  EXPECT_EQ(tree->edges.size(), 3u);
}

TEST(ExactSolverTest, DisconnectedTerminalsReturnNullopt) {
  TestGraph tg(4);
  tg.AddEdge(0, 1, 1.0);
  tg.AddEdge(2, 3, 1.0);
  SteinerProblem problem(tg.graph, *tg.weights, {0, 3}, {}, {});
  EXPECT_FALSE(SolveExactSteiner(problem).has_value());
}

TEST(ExactSolverTest, ForcedEdgesAreContractedAndCharged) {
  TestGraph tg(4);
  EdgeId e01 = tg.AddEdge(0, 1, 5.0);  // expensive but forced
  tg.AddEdge(1, 2, 1.0);
  tg.AddEdge(0, 2, 0.5);
  tg.AddEdge(2, 3, 1.0);

  SteinerProblem problem(tg.graph, *tg.weights, {0, 3}, {e01}, {});
  auto tree = SolveExactSteiner(problem);
  ASSERT_TRUE(tree.has_value());
  // Must contain the forced edge plus the cheapest completion.
  EXPECT_NE(std::find(tree->edges.begin(), tree->edges.end(), e01),
            tree->edges.end());
  EXPECT_NEAR(tree->cost, 5.0 + 0.5 + 1.0, 1e-9);
}

TEST(ExactSolverTest, BannedEdgesAreAvoided) {
  TestGraph tg(3);
  EdgeId cheap = tg.AddEdge(0, 2, 0.1);
  tg.AddEdge(0, 1, 1.0);
  tg.AddEdge(1, 2, 1.0);
  SteinerProblem problem(tg.graph, *tg.weights, {0, 2}, {}, {cheap});
  auto tree = SolveExactSteiner(problem);
  ASSERT_TRUE(tree.has_value());
  EXPECT_NEAR(tree->cost, 2.0, 1e-9);
}

TEST(ExactSolverTest, SingleTerminalYieldsEmptyTree) {
  TestGraph tg(3);
  tg.AddEdge(0, 1, 1.0);
  SteinerProblem problem(tg.graph, *tg.weights, {1}, {}, {});
  auto tree = SolveExactSteiner(problem);
  ASSERT_TRUE(tree.has_value());
  EXPECT_TRUE(tree->edges.empty());
  EXPECT_DOUBLE_EQ(tree->cost, 0.0);
}

// Property test: exact solver matches brute force on random graphs.
class ExactVsBruteForceTest : public ::testing::TestWithParam<int> {};

TEST_P(ExactVsBruteForceTest, OptimalCostMatches) {
  util::Rng rng(1000 + GetParam());
  std::size_t n = 5 + rng.Uniform(3);        // 5-7 nodes
  std::size_t m = 6 + rng.Uniform(5);        // 6-10 edges
  TestGraph tg(n);
  std::set<std::pair<NodeId, NodeId>> used;
  for (std::size_t e = 0; e < m; ++e) {
    NodeId u = static_cast<NodeId>(rng.Uniform(n));
    NodeId v = static_cast<NodeId>(rng.Uniform(n));
    if (u == v || used.count({std::min(u, v), std::max(u, v)}) > 0) continue;
    used.insert({std::min(u, v), std::max(u, v)});
    tg.AddEdge(u, v, 0.1 + rng.UniformDouble() * 2.0);
  }
  std::size_t t = 2 + rng.Uniform(2);  // 2-3 terminals
  std::vector<NodeId> terminals;
  for (std::size_t i = 0; i < t; ++i) {
    terminals.push_back(static_cast<NodeId>(rng.Uniform(n)));
  }

  auto brute = BruteForceAllTrees(tg, terminals);
  SteinerProblem problem(tg.graph, *tg.weights, terminals, {}, {});
  auto tree = SolveExactSteiner(problem);
  if (brute.empty()) {
    EXPECT_FALSE(tree.has_value());
    return;
  }
  ASSERT_TRUE(tree.has_value());
  EXPECT_NEAR(tree->cost, brute[0].cost, 1e-9);
  EXPECT_TRUE(IsValidSteinerTree(tg.graph, *tree, terminals));
  EXPECT_NEAR(TreeCost(tg.graph, *tg.weights, *tree), tree->cost, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, ExactVsBruteForceTest,
                         ::testing::Range(0, 25));

TEST(KmbSolverTest, ValidAndWithinApproximationBound) {
  for (int trial = 0; trial < 15; ++trial) {
    util::Rng rng(2000 + trial);
    std::size_t n = 6 + rng.Uniform(3);
    TestGraph tg(n);
    std::set<std::pair<NodeId, NodeId>> used;
    for (std::size_t e = 0; e < 12; ++e) {
      NodeId u = static_cast<NodeId>(rng.Uniform(n));
      NodeId v = static_cast<NodeId>(rng.Uniform(n));
      if (u == v || used.count({std::min(u, v), std::max(u, v)}) > 0) {
        continue;
      }
      used.insert({std::min(u, v), std::max(u, v)});
      tg.AddEdge(u, v, 0.1 + rng.UniformDouble());
    }
    std::vector<NodeId> terminals{0, static_cast<NodeId>(n - 1),
                                  static_cast<NodeId>(n / 2)};
    SteinerProblem problem(tg.graph, *tg.weights, terminals, {}, {});
    auto exact = SolveExactSteiner(problem);
    auto approx = SolveKmbSteiner(problem);
    ASSERT_EQ(exact.has_value(), approx.has_value());
    if (!exact.has_value()) continue;
    EXPECT_TRUE(IsValidSteinerTree(tg.graph, *approx, terminals));
    // KMB guarantees 2(1 - 1/t) * OPT.
    EXPECT_LE(approx->cost, 2.0 * exact->cost + 1e-9);
    EXPECT_GE(approx->cost, exact->cost - 1e-9);
  }
}

TEST(TopKTest, EnumeratesInOrderWithoutDuplicates) {
  TestGraph tg(4);
  tg.AddEdge(0, 1, 1.0);
  tg.AddEdge(1, 3, 1.0);
  tg.AddEdge(0, 2, 1.5);
  tg.AddEdge(2, 3, 1.5);
  tg.AddEdge(0, 3, 4.0);

  TopKConfig config;
  config.k = 3;
  auto trees = TopKSteinerTrees(tg.graph, *tg.weights, {0, 3}, config);
  ASSERT_EQ(trees.size(), 3u);
  EXPECT_NEAR(trees[0].cost, 2.0, 1e-9);
  EXPECT_NEAR(trees[1].cost, 3.0, 1e-9);
  EXPECT_NEAR(trees[2].cost, 4.0, 1e-9);
  std::set<std::vector<EdgeId>> unique;
  for (const auto& t : trees) {
    EXPECT_TRUE(unique.insert(t.edges).second);
    EXPECT_TRUE(IsValidSteinerTree(tg.graph, t, {0, 3}));
  }
}

// Property test: top-k equals the k best brute-force trees.
class TopKVsBruteForceTest : public ::testing::TestWithParam<int> {};

TEST_P(TopKVsBruteForceTest, MatchesBruteForceEnumeration) {
  util::Rng rng(3000 + GetParam());
  std::size_t n = 5;
  TestGraph tg(n);
  std::set<std::pair<NodeId, NodeId>> used;
  for (std::size_t e = 0; e < 8; ++e) {
    NodeId u = static_cast<NodeId>(rng.Uniform(n));
    NodeId v = static_cast<NodeId>(rng.Uniform(n));
    if (u == v || used.count({std::min(u, v), std::max(u, v)}) > 0) continue;
    used.insert({std::min(u, v), std::max(u, v)});
    // Distinct costs to make the ordering unambiguous.
    tg.AddEdge(u, v, 0.5 + 0.37 * static_cast<double>(tg.graph.num_edges()));
  }
  std::vector<NodeId> terminals{0, 4};
  auto brute = BruteForceAllTrees(tg, terminals);

  TopKConfig config;
  config.k = 4;
  auto trees = TopKSteinerTrees(tg.graph, *tg.weights, terminals, config);
  std::size_t expect = std::min<std::size_t>(4, brute.size());
  ASSERT_EQ(trees.size(), expect);
  for (std::size_t i = 0; i < expect; ++i) {
    EXPECT_NEAR(trees[i].cost, brute[i].cost, 1e-9) << "rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, TopKVsBruteForceTest,
                         ::testing::Range(0, 20));

// Approximate mode: trees remain valid and cost at least the exact
// optimum; the best approximate tree is within the KMB bound.
class ApproximateTopKTest : public ::testing::TestWithParam<int> {};

TEST_P(ApproximateTopKTest, ValidAndBounded) {
  util::Rng rng(4000 + GetParam());
  std::size_t n = 6 + rng.Uniform(3);
  TestGraph tg(n);
  std::set<std::pair<NodeId, NodeId>> used;
  for (std::size_t e = 0; e < 12; ++e) {
    NodeId u = static_cast<NodeId>(rng.Uniform(n));
    NodeId v = static_cast<NodeId>(rng.Uniform(n));
    if (u == v || used.count({std::min(u, v), std::max(u, v)}) > 0) continue;
    used.insert({std::min(u, v), std::max(u, v)});
    tg.AddEdge(u, v, 0.1 + rng.UniformDouble());
  }
  std::vector<NodeId> terminals{0, static_cast<NodeId>(n - 1)};

  TopKConfig exact_config;
  exact_config.k = 1;
  auto exact = TopKSteinerTrees(tg.graph, *tg.weights, terminals,
                                exact_config);
  TopKConfig approx_config;
  approx_config.k = 3;
  approx_config.approximate = true;
  auto approx = TopKSteinerTrees(tg.graph, *tg.weights, terminals,
                                 approx_config);
  if (exact.empty()) {
    EXPECT_TRUE(approx.empty());
    return;
  }
  ASSERT_FALSE(approx.empty());
  for (const auto& t : approx) {
    EXPECT_TRUE(IsProperSteinerTree(tg.graph, t, terminals));
    EXPECT_GE(t.cost, exact[0].cost - 1e-9);
  }
  // 2 terminals: KMB returns the true shortest path, so the best
  // approximate tree is optimal here.
  EXPECT_NEAR(approx[0].cost, exact[0].cost, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, ApproximateTopKTest,
                         ::testing::Range(0, 10));

TEST(TopKTest, AutoSwitchesToApproximationAboveNodeLimit) {
  TestGraph tg(4);
  tg.AddEdge(0, 1, 1.0);
  tg.AddEdge(1, 3, 1.0);
  tg.AddEdge(0, 2, 1.5);
  tg.AddEdge(2, 3, 1.5);
  TopKConfig config;
  config.k = 2;
  config.approximate_above_nodes = 2;  // force the KMB path
  auto trees = TopKSteinerTrees(tg.graph, *tg.weights, {0, 3}, config);
  ASSERT_FALSE(trees.empty());
  EXPECT_TRUE(IsProperSteinerTree(tg.graph, trees[0], {0, 3}));
  EXPECT_NEAR(trees[0].cost, 2.0, 1e-9);
}

TEST(TopKTest, EmptyTerminalsAndZeroK) {
  TestGraph tg(3);
  tg.AddEdge(0, 1, 1.0);
  TopKConfig config;
  config.k = 0;
  EXPECT_TRUE(TopKSteinerTrees(tg.graph, *tg.weights, {0, 1}, config).empty());
  config.k = 3;
  EXPECT_TRUE(TopKSteinerTrees(tg.graph, *tg.weights, {}, config).empty());
}

TEST(ProblemTest, ForcedCycleInvalid) {
  TestGraph tg(3);
  EdgeId a = tg.AddEdge(0, 1, 1.0);
  EdgeId b = tg.AddEdge(1, 2, 1.0);
  EdgeId c = tg.AddEdge(0, 2, 1.0);
  SteinerProblem cycle(tg.graph, *tg.weights, {0}, {a, b, c}, {});
  EXPECT_FALSE(cycle.valid());
  SteinerProblem conflicted(tg.graph, *tg.weights, {0}, {a}, {a});
  EXPECT_FALSE(conflicted.valid());
}

TEST(ProblemTest, ContractionMergesTerminals) {
  TestGraph tg(3);
  EdgeId a = tg.AddEdge(0, 1, 1.0);
  tg.AddEdge(1, 2, 1.0);
  SteinerProblem problem(tg.graph, *tg.weights, {0, 1}, {a}, {});
  ASSERT_TRUE(problem.valid());
  EXPECT_EQ(problem.terminals().size(), 1u);
  EXPECT_DOUBLE_EQ(problem.base_cost(), 1.0);
  auto tree = SolveExactSteiner(problem);
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(tree->edges.size(), 1u);  // just the forced edge
}

}  // namespace
}  // namespace q::steiner
