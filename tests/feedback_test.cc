#include <gtest/gtest.h>

#include "data/interpro_go.h"
#include "feedback/feedback_log.h"
#include "feedback/simulated_user.h"
#include "graph/graph_builder.h"
#include "query/query_graph.h"
#include "steiner/top_k.h"
#include "text/text_index.h"

namespace q::feedback {
namespace {

TEST(FeedbackLogTest, SlidingWindow) {
  FeedbackLog log(3);
  EXPECT_TRUE(log.empty());
  for (int i = 0; i < 5; ++i) {
    log.Record(FeedbackEvent{{"kw" + std::to_string(i)}});
  }
  EXPECT_EQ(log.size(), 3u);
  auto events = log.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].keywords[0], "kw2");  // oldest retained
  EXPECT_EQ(events[2].keywords[0], "kw4");
  log.Clear();
  EXPECT_TRUE(log.empty());
}

class SimulatedUserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::InterProGoConfig config;
    config.num_go_terms = 60;
    config.num_entries = 50;
    config.num_pubs = 40;
    config.num_journals = 8;
    config.num_methods = 30;
    config.interpro2go_links = 90;
    config.entry2pub_links = 80;
    config.method2pub_links = 60;
    dataset_ = data::BuildInterProGo(config);
    model_ = std::make_unique<graph::CostModel>(&space_,
                                                graph::CostModelConfig{});
    graph_ = graph::BuildSearchGraph(dataset_.catalog, model_.get());
    weights_ = std::make_unique<graph::WeightVector>(&space_);
    index_.IndexCatalog(dataset_.catalog);

    // One gold association and one non-gold association.
    auto gold_a = graph_.FindAttributeNode(dataset_.gold_edges[0].a);
    auto gold_b = graph_.FindAttributeNode(dataset_.gold_edges[0].b);
    ASSERT_TRUE(gold_a.has_value() && gold_b.has_value());
    gold_edge_ = graph_.AddAssociationEdge(
        *gold_a, *gold_b,
        model_->AssociationFeatures("m", 0.9, "x", "y", "gold"),
        graph::MatcherScore{"m", 0.9});

    auto bad_a = graph_.FindAttributeNode(
        relational::AttributeId{"go", "go_term", "name"});
    auto bad_b = graph_.FindAttributeNode(
        relational::AttributeId{"interpro", "pub", "title"});
    ASSERT_TRUE(bad_a.has_value() && bad_b.has_value());
    bad_edge_ = graph_.AddAssociationEdge(
        *bad_a, *bad_b,
        model_->AssociationFeatures("m", 0.9, "x", "y", "bad"),
        graph::MatcherScore{"m", 0.9});
  }

  query::QueryGraph BuildQg(const std::vector<std::string>& keywords) {
    auto qg = query::BuildQueryGraph(graph_, index_, keywords, model_.get(),
                                     *weights_, query::QueryGraphOptions{});
    EXPECT_TRUE(qg.ok()) << qg.status();
    return std::move(qg).value();
  }

  data::InterProGoDataset dataset_;
  graph::FeatureSpace space_;
  std::unique_ptr<graph::CostModel> model_;
  graph::SearchGraph graph_;
  std::unique_ptr<graph::WeightVector> weights_;
  text::TextIndex index_;
  graph::EdgeId gold_edge_ = graph::kInvalidEdge;
  graph::EdgeId bad_edge_ = graph::kInvalidEdge;
};

TEST_F(SimulatedUserTest, GoldConsistencyChecksAssociations) {
  SimulatedUser user(dataset_.gold_edges);
  auto qg = BuildQg({"go term", "entry"});

  // A tree with no association edges is trivially gold-consistent.
  steiner::SteinerTree no_assoc;
  EXPECT_TRUE(user.IsGoldConsistent(qg, no_assoc));

  // Find the copies of the gold/bad edges inside the query graph (edge
  // ids may shift during the filtered copy).
  graph::EdgeId gold_copy = graph::kInvalidEdge;
  graph::EdgeId bad_copy = graph::kInvalidEdge;
  for (graph::EdgeId e :
       qg.graph.EdgesOfKind(graph::EdgeKind::kAssociation)) {
    const auto& la = qg.graph.node(qg.graph.edge(e).u).label;
    if (la == dataset_.gold_edges[0].a.ToString() ||
        qg.graph.node(qg.graph.edge(e).v).label ==
            dataset_.gold_edges[0].a.ToString()) {
      gold_copy = e;
    } else {
      bad_copy = e;
    }
  }
  ASSERT_NE(gold_copy, graph::kInvalidEdge);
  ASSERT_NE(bad_copy, graph::kInvalidEdge);

  steiner::SteinerTree gold_tree{{gold_copy}, 0.0};
  EXPECT_TRUE(user.IsGoldConsistent(qg, gold_tree));
  steiner::SteinerTree bad_tree{{bad_copy}, 0.0};
  EXPECT_FALSE(user.IsGoldConsistent(qg, bad_tree));
  steiner::SteinerTree mixed{{gold_copy, bad_copy}, 0.0};
  mixed.Canonicalize();
  EXPECT_FALSE(user.IsGoldConsistent(qg, mixed));
}

TEST_F(SimulatedUserTest, PickEndorsedTreeTakesCheapestGold) {
  SimulatedUser user(dataset_.gold_edges);
  auto qg = BuildQg({"go term", "entry"});
  steiner::TopKConfig topk;
  topk.k = 8;
  auto trees = steiner::TopKSteinerTrees(qg.graph, *weights_,
                                         qg.keyword_nodes, topk);
  ASSERT_FALSE(trees.empty());
  auto endorsed = user.PickEndorsedTree(qg, trees);
  if (endorsed.has_value()) {
    EXPECT_TRUE(user.IsGoldConsistent(qg, *endorsed));
    // No cheaper gold-consistent tree precedes it.
    for (const auto& t : trees) {
      if (t.cost < endorsed->cost) {
        EXPECT_FALSE(user.IsGoldConsistent(qg, t));
      }
    }
  }
}

TEST_F(SimulatedUserTest, SolveEndorsedTreeAvoidsNonGoldEdges) {
  SimulatedUser user(dataset_.gold_edges);
  // These keywords connect through the gold association (go_term.acc <->
  // interpro2go.go_id) without needing the non-gold edge.
  auto qg = BuildQg({"go term name", "entry"});
  auto endorsed = user.SolveEndorsedTree(qg, *weights_);
  ASSERT_TRUE(endorsed.has_value());
  EXPECT_TRUE(user.IsGoldConsistent(qg, *endorsed));
  EXPECT_TRUE(
      steiner::IsValidSteinerTree(qg.graph, *endorsed, qg.keyword_nodes));
}

}  // namespace
}  // namespace q::feedback
