#include <gtest/gtest.h>

#include "data/interpro_go.h"
#include "feedback/feedback_log.h"
#include "feedback/simulated_user.h"
#include "graph/graph_builder.h"
#include "query/query_graph.h"
#include "steiner/top_k.h"
#include "text/text_index.h"

namespace q::feedback {
namespace {

TEST(FeedbackLogTest, SlidingWindow) {
  FeedbackLog log(3);
  EXPECT_TRUE(log.empty());
  for (int i = 0; i < 5; ++i) {
    log.Record(FeedbackEvent{{"kw" + std::to_string(i)}});
  }
  EXPECT_EQ(log.size(), 3u);
  auto events = log.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].keywords[0], "kw2");  // oldest retained
  EXPECT_EQ(events[2].keywords[0], "kw4");
  log.Clear();
  EXPECT_TRUE(log.empty());
}

TEST(FeedbackLogTest, SequenceStampsSurviveTheSlidingWindow) {
  FeedbackLog log(2);
  EXPECT_EQ(log.next_sequence(), 0u);
  EXPECT_TRUE(log.complete_history());
  for (int i = 0; i < 4; ++i) {
    log.Record(FeedbackEvent{{"kw"}});
  }
  EXPECT_EQ(log.next_sequence(), 4u);
  EXPECT_FALSE(log.complete_history());  // events 0 and 1 were dropped
  auto events = log.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].sequence, 2u);
  EXPECT_EQ(events[1].sequence, 3u);

  // Restore reinstates the stream exactly: stamps and next sequence.
  FeedbackLog other;
  other.Restore(log.next_sequence(), log.Snapshot());
  EXPECT_EQ(other.next_sequence(), 4u);
  ASSERT_EQ(other.Snapshot().size(), 2u);
  EXPECT_EQ(other.Snapshot()[0].sequence, 2u);
}

TEST(FeedbackLogTest, ReplayIsDeterministicAndAllOrNothing) {
  graph::FeatureSpace space;
  graph::FeatureId f1 = space.Intern("f1", 0.5);
  graph::FeatureId f2 = space.Intern("f2", 1.0);

  FeedbackLog log;
  FeedbackEvent e1;
  e1.deltas = {{f1, 0.5, 0.7}};
  log.Record(std::move(e1));
  FeedbackEvent e2;
  e2.deltas = {{f1, 0.7, 0.6}, {f2, 1.0, 1.25}};
  log.Record(std::move(e2));

  graph::WeightVector weights(&space);
  ASSERT_TRUE(log.ReplayInto(&weights).ok());
  EXPECT_EQ(weights.At(f1), 0.6);
  EXPECT_EQ(weights.At(f2), 1.25);

  // Replaying again lands on the same values (idempotent on the result).
  graph::WeightVector again(&space);
  ASSERT_TRUE(log.ReplayInto(&again).ok());
  EXPECT_EQ(again.At(f1), 0.6);
  EXPECT_EQ(again.At(f2), 1.25);

  // An unreplayable event poisons the whole replay without touching the
  // target vector.
  FeedbackEvent broken;
  broken.replayable = false;
  log.Record(std::move(broken));
  graph::WeightVector untouched(&space);
  EXPECT_FALSE(log.ReplayInto(&untouched).ok());
  EXPECT_EQ(untouched.At(f1), 0.5);  // still the initial weight
  EXPECT_EQ(untouched.revision(), 0u);

  // So does a delta pointing outside the feature space.
  FeedbackLog bad;
  FeedbackEvent oob;
  oob.deltas = {{999, 0.0, 1.0}};
  bad.Record(std::move(oob));
  graph::WeightVector target(&space);
  EXPECT_TRUE(bad.ReplayInto(&target).IsOutOfRange());
  EXPECT_EQ(target.revision(), 0u);
}

class SimulatedUserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::InterProGoConfig config;
    config.num_go_terms = 60;
    config.num_entries = 50;
    config.num_pubs = 40;
    config.num_journals = 8;
    config.num_methods = 30;
    config.interpro2go_links = 90;
    config.entry2pub_links = 80;
    config.method2pub_links = 60;
    dataset_ = data::BuildInterProGo(config);
    model_ = std::make_unique<graph::CostModel>(&space_,
                                                graph::CostModelConfig{});
    graph_ = graph::BuildSearchGraph(dataset_.catalog, model_.get());
    weights_ = std::make_unique<graph::WeightVector>(&space_);
    index_.IndexCatalog(dataset_.catalog);

    // One gold association and one non-gold association.
    auto gold_a = graph_.FindAttributeNode(dataset_.gold_edges[0].a);
    auto gold_b = graph_.FindAttributeNode(dataset_.gold_edges[0].b);
    ASSERT_TRUE(gold_a.has_value() && gold_b.has_value());
    gold_edge_ = graph_.AddAssociationEdge(
        *gold_a, *gold_b,
        model_->AssociationFeatures("m", 0.9, "x", "y", "gold"),
        graph::MatcherScore{"m", 0.9});

    auto bad_a = graph_.FindAttributeNode(
        relational::AttributeId{"go", "go_term", "name"});
    auto bad_b = graph_.FindAttributeNode(
        relational::AttributeId{"interpro", "pub", "title"});
    ASSERT_TRUE(bad_a.has_value() && bad_b.has_value());
    bad_edge_ = graph_.AddAssociationEdge(
        *bad_a, *bad_b,
        model_->AssociationFeatures("m", 0.9, "x", "y", "bad"),
        graph::MatcherScore{"m", 0.9});
  }

  query::QueryGraph BuildQg(const std::vector<std::string>& keywords) {
    auto qg = query::BuildQueryGraph(graph_, index_, keywords, model_.get(),
                                     *weights_, query::QueryGraphOptions{});
    EXPECT_TRUE(qg.ok()) << qg.status();
    return std::move(qg).value();
  }

  data::InterProGoDataset dataset_;
  graph::FeatureSpace space_;
  std::unique_ptr<graph::CostModel> model_;
  graph::SearchGraph graph_;
  std::unique_ptr<graph::WeightVector> weights_;
  text::TextIndex index_;
  graph::EdgeId gold_edge_ = graph::kInvalidEdge;
  graph::EdgeId bad_edge_ = graph::kInvalidEdge;
};

TEST_F(SimulatedUserTest, GoldConsistencyChecksAssociations) {
  SimulatedUser user(dataset_.gold_edges);
  auto qg = BuildQg({"go term", "entry"});

  // A tree with no association edges is trivially gold-consistent.
  steiner::SteinerTree no_assoc;
  EXPECT_TRUE(user.IsGoldConsistent(qg, no_assoc));

  // Find the copies of the gold/bad edges inside the query graph (edge
  // ids may shift during the filtered copy).
  graph::EdgeId gold_copy = graph::kInvalidEdge;
  graph::EdgeId bad_copy = graph::kInvalidEdge;
  for (graph::EdgeId e :
       qg.graph.EdgesOfKind(graph::EdgeKind::kAssociation)) {
    const auto& la = qg.graph.node(qg.graph.edge(e).u).label;
    if (la == dataset_.gold_edges[0].a.ToString() ||
        qg.graph.node(qg.graph.edge(e).v).label ==
            dataset_.gold_edges[0].a.ToString()) {
      gold_copy = e;
    } else {
      bad_copy = e;
    }
  }
  ASSERT_NE(gold_copy, graph::kInvalidEdge);
  ASSERT_NE(bad_copy, graph::kInvalidEdge);

  steiner::SteinerTree gold_tree{{gold_copy}, 0.0};
  EXPECT_TRUE(user.IsGoldConsistent(qg, gold_tree));
  steiner::SteinerTree bad_tree{{bad_copy}, 0.0};
  EXPECT_FALSE(user.IsGoldConsistent(qg, bad_tree));
  steiner::SteinerTree mixed{{gold_copy, bad_copy}, 0.0};
  mixed.Canonicalize();
  EXPECT_FALSE(user.IsGoldConsistent(qg, mixed));
}

TEST_F(SimulatedUserTest, PickEndorsedTreeTakesCheapestGold) {
  SimulatedUser user(dataset_.gold_edges);
  auto qg = BuildQg({"go term", "entry"});
  steiner::TopKConfig topk;
  topk.k = 8;
  auto trees = steiner::TopKSteinerTrees(qg.graph, *weights_,
                                         qg.keyword_nodes, topk);
  ASSERT_FALSE(trees.empty());
  auto endorsed = user.PickEndorsedTree(qg, trees);
  if (endorsed.has_value()) {
    EXPECT_TRUE(user.IsGoldConsistent(qg, *endorsed));
    // No cheaper gold-consistent tree precedes it.
    for (const auto& t : trees) {
      if (t.cost < endorsed->cost) {
        EXPECT_FALSE(user.IsGoldConsistent(qg, t));
      }
    }
  }
}

TEST_F(SimulatedUserTest, SolveEndorsedTreeAvoidsNonGoldEdges) {
  SimulatedUser user(dataset_.gold_edges);
  // These keywords connect through the gold association (go_term.acc <->
  // interpro2go.go_id) without needing the non-gold edge.
  auto qg = BuildQg({"go term name", "entry"});
  auto endorsed = user.SolveEndorsedTree(qg, *weights_);
  ASSERT_TRUE(endorsed.has_value());
  EXPECT_TRUE(user.IsGoldConsistent(qg, *endorsed));
  EXPECT_TRUE(
      steiner::IsValidSteinerTree(qg.graph, *endorsed, qg.keyword_nodes));
}

}  // namespace
}  // namespace q::feedback
