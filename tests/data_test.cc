#include <gtest/gtest.h>

#include "data/gbco.h"
#include "data/interpro_go.h"
#include "data/synthetic.h"
#include "graph/graph_builder.h"
#include "match/value_overlap.h"

namespace q::data {
namespace {

TEST(InterProGoTest, SchemaMatchesPaper) {
  InterProGoDataset d = BuildInterProGo();
  EXPECT_EQ(d.catalog.num_relations(), 8u);   // Fig. 9: 8 tables
  EXPECT_EQ(d.catalog.num_attributes(), 28u); // 28 attributes
  EXPECT_EQ(d.gold_edges.size(), 8u);         // 8 gold edges
  EXPECT_EQ(d.keyword_queries.size(), 10u);   // 10 two-keyword queries
  for (const auto& q : d.keyword_queries) {
    EXPECT_EQ(q.size(), 2u);
  }
}

TEST(InterProGoTest, GoldEdgesResolve) {
  InterProGoDataset d = BuildInterProGo();
  for (const auto& g : d.gold_edges) {
    EXPECT_TRUE(d.catalog.ResolveAttribute(g.a).ok()) << g.a.ToString();
    EXPECT_TRUE(d.catalog.ResolveAttribute(g.b).ok()) << g.b.ToString();
  }
}

TEST(InterProGoTest, GoldEdgesHaveValueOverlap) {
  InterProGoDataset d = BuildInterProGo();
  match::ValueOverlapIndex index;
  for (const auto& t : d.catalog.AllTables()) index.IndexTable(*t);
  for (const auto& g : d.gold_edges) {
    EXPECT_GT(index.Overlap(g.a, g.b), 5u)
        << g.a.ToString() << " / " << g.b.ToString();
  }
}

TEST(InterProGoTest, MethodEntryNameOverlapPresent) {
  InterProGoDataset d = BuildInterProGo();
  match::ValueOverlapIndex index;
  for (const auto& t : d.catalog.AllTables()) index.IndexTable(*t);
  // The "wrong but useful" alignment of Sec. 5.2.1.
  relational::AttributeId method_name{"interpro", "method", "name"};
  relational::AttributeId entry_name{"interpro", "entry", "name"};
  EXPECT_GT(index.Overlap(method_name, entry_name), 10u);
}

TEST(InterProGoTest, DeterministicForSeed) {
  InterProGoDataset a = BuildInterProGo();
  InterProGoDataset b = BuildInterProGo();
  auto ta = a.catalog.FindTable("go.go_term");
  auto tb = b.catalog.FindTable("go.go_term");
  ASSERT_EQ(ta->num_rows(), tb->num_rows());
  for (std::size_t i = 0; i < ta->num_rows(); ++i) {
    EXPECT_EQ(ta->row(i), tb->row(i));
  }
}

TEST(InterProGoTest, NoForeignKeysByDefault) {
  InterProGoDataset d = BuildInterProGo();
  for (const auto& t : d.catalog.AllTables()) {
    EXPECT_TRUE(t->schema().foreign_keys().empty());
  }
  InterProGoConfig with_fk;
  with_fk.declare_foreign_keys = true;
  InterProGoDataset d2 = BuildInterProGo(with_fk);
  std::size_t fks = 0;
  for (const auto& t : d2.catalog.AllTables()) {
    fks += t->schema().foreign_keys().size();
  }
  EXPECT_EQ(fks, 8u);  // one per gold edge
}

TEST(GbcoTest, MatchesPublishedCardinalities) {
  GbcoDataset d = BuildGbco();
  EXPECT_EQ(d.catalog.sources().size(), 18u);
  EXPECT_EQ(d.catalog.num_relations(), 18u);
  EXPECT_EQ(d.catalog.num_attributes(), 187u);
  EXPECT_EQ(d.trials.size(), 16u);
  std::size_t introduced = 0;
  for (const auto& t : d.trials) introduced += t.new_sources.size();
  EXPECT_EQ(introduced, 40u);
}

TEST(GbcoTest, TrialsReferenceLiveRelations) {
  GbcoDataset d = BuildGbco();
  for (const auto& t : d.trials) {
    EXPECT_FALSE(t.keywords.empty());
    for (const auto& rel : t.base_relations) {
      EXPECT_NE(d.catalog.FindTable(rel), nullptr) << rel;
    }
    for (const auto& s : t.new_sources) {
      EXPECT_NE(d.catalog.FindSource(s), nullptr) << s;
      // A new source should not be part of the base query it expands.
      for (const auto& rel : t.base_relations) {
        EXPECT_NE(rel, s + "." + s);
      }
    }
  }
}

TEST(GbcoTest, ForeignKeysResolveAndConnect) {
  GbcoDataset d = BuildGbco();
  std::size_t fk_count = 0;
  for (const auto& t : d.catalog.AllTables()) {
    for (const auto& fk : t->schema().foreign_keys()) {
      ++fk_count;
      // Local attribute exists.
      EXPECT_TRUE(t->schema().AttributeIndex(fk.local_attribute).has_value())
          << t->schema().QualifiedName() << "." << fk.local_attribute;
      // Referenced attribute exists.
      auto ref = d.catalog.ResolveAttribute(relational::AttributeId{
          fk.ref_source, fk.ref_relation, fk.ref_attribute});
      EXPECT_TRUE(ref.ok()) << fk.ref_source << "." << fk.ref_relation
                            << "." << fk.ref_attribute;
    }
  }
  EXPECT_EQ(fk_count, 15u);  // the curated sparse link set

  // Every trial's base query must be connected through declared FKs so a
  // view (and its alpha) can form.
  graph::FeatureSpace space;
  graph::CostModel model(&space, graph::CostModelConfig{});
  graph::SearchGraph g = graph::BuildSearchGraph(d.catalog, &model);
  EXPECT_EQ(g.EdgesOfKind(graph::EdgeKind::kForeignKey).size(), 15u);
  graph::WeightVector w(&space);
  for (const auto& trial : d.trials) {
    auto seed = g.FindRelationNode(trial.base_relations[0]);
    ASSERT_TRUE(seed.has_value());
    auto dist = g.Dijkstra({{*seed, 0.0}}, w);
    for (const auto& rel : trial.base_relations) {
      auto node = g.FindRelationNode(rel);
      ASSERT_TRUE(node.has_value());
      EXPECT_TRUE(std::isfinite(dist[*node]))
          << rel << " unreachable from " << trial.base_relations[0];
    }
  }
}

TEST(GbcoTest, SharedIdColumnsOverlap) {
  GbcoDataset d = BuildGbco();
  match::ValueOverlapIndex index;
  for (const auto& t : d.catalog.AllTables()) index.IndexTable(*t);
  // gene_id appears in gene, expression, gene2pathway, ... with shared
  // pools.
  EXPECT_GT(index.Overlap(
                relational::AttributeId{"gene", "gene", "gene_id"},
                relational::AttributeId{"expression", "expression",
                                        "gene_id"}),
            0u);
}

TEST(SyntheticTest, GrowsCatalogAndGraph) {
  GbcoConfig config;
  config.base_rows = 10;
  GbcoDataset d = BuildGbco(config);
  graph::FeatureSpace space;
  graph::CostModel model(&space, graph::CostModelConfig{});
  graph::SearchGraph g = graph::BuildSearchGraph(d.catalog, &model);

  std::size_t nodes_before = g.num_nodes();
  std::size_t sources_before = d.catalog.sources().size();
  util::Rng rng(99);
  SyntheticGrowthOptions options;
  ASSERT_TRUE(GrowWithSyntheticSources(20, options, &rng, &d.catalog,
                                       &model, &g)
                  .ok());
  EXPECT_EQ(d.catalog.sources().size(), sources_before + 20);
  // Each synthetic source adds 1 relation + 2 attribute nodes.
  EXPECT_EQ(g.num_nodes(), nodes_before + 20 * 3);
  // And 2 association edges wiring it into the graph.
  EXPECT_GE(g.EdgesOfKind(graph::EdgeKind::kAssociation).size(), 40u);
}

}  // namespace
}  // namespace q::data
