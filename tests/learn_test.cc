#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/q_system.h"
#include "data/interpro_go.h"
#include "data/synthetic.h"
#include "graph/search_graph.h"
#include "learn/evaluation.h"
#include "learn/mira.h"
#include "steiner/top_k.h"

namespace q::learn {
namespace {

using graph::EdgeId;
using graph::FeatureSpace;
using graph::FeatureVec;
using graph::NodeId;
using graph::SearchGraph;
using graph::WeightVector;

// Diamond graph: terminals 0 and 3, two competing 2-edge paths. Each edge
// carries the shared default feature plus its own feature, so MIRA can
// reprice paths individually.
struct Diamond {
  FeatureSpace space;
  SearchGraph graph;
  std::unique_ptr<WeightVector> weights;
  EdgeId top_a, top_b;     // path through node 1
  EdgeId bottom_a, bottom_b;  // path through node 2

  Diamond(double top_cost, double bottom_cost) {
    for (int i = 0; i < 4; ++i) {
      graph.AddNode(graph::NodeKind::kAttribute, "n" + std::to_string(i));
    }
    space.SetInitialWeight(FeatureSpace::kDefaultFeature, 0.05);
    top_a = AddEdge(0, 1, "ta", top_cost / 2);
    top_b = AddEdge(1, 3, "tb", top_cost / 2);
    bottom_a = AddEdge(0, 2, "ba", bottom_cost / 2);
    bottom_b = AddEdge(2, 3, "bb", bottom_cost / 2);
    weights = std::make_unique<WeightVector>(&space);
  }

  EdgeId AddEdge(NodeId u, NodeId v, const std::string& name, double cost) {
    graph::Edge e;
    e.u = u;
    e.v = v;
    e.kind = graph::EdgeKind::kAssociation;
    FeatureVec f;
    f.Add(FeatureSpace::kDefaultFeature, 1.0);
    f.Add(space.Intern("edge:" + name, cost), 1.0);
    e.features = std::move(f);
    return graph.AddEdge(std::move(e));
  }

  double Cost(EdgeId e) const { return graph.EdgeCost(e, *weights); }
};

TEST(MiraTest, TargetAlreadyBestIsStable) {
  Diamond d(1.0, 2.0);  // top path already cheapest
  steiner::SteinerTree target{{d.top_a, d.top_b}, 0.0};
  target.Canonicalize();

  MiraLearner learner;
  auto info = learner.Update(d.graph, {0, 3}, target, d.weights.get());
  ASSERT_TRUE(info.ok());
  // The margin requirement may still adjust weights, but the target must
  // remain the best tree.
  steiner::TopKConfig topk;
  topk.k = 1;
  auto best = steiner::TopKSteinerTrees(d.graph, *d.weights, {0, 3}, topk);
  ASSERT_EQ(best.size(), 1u);
  EXPECT_EQ(best[0].edges, target.edges);
}

TEST(MiraTest, LearnsToPreferEndorsedTree) {
  Diamond d(2.0, 1.0);  // bottom path cheapest, user endorses top
  steiner::SteinerTree target{{d.top_a, d.top_b}, 0.0};
  target.Canonicalize();

  MiraLearner learner;
  steiner::TopKConfig topk;
  topk.k = 1;
  // Before learning the bottom path wins.
  auto before = steiner::TopKSteinerTrees(d.graph, *d.weights, {0, 3}, topk);
  ASSERT_EQ(before.size(), 1u);
  EXPECT_NE(before[0].edges, target.edges);

  auto info = learner.Update(d.graph, {0, 3}, target, d.weights.get());
  ASSERT_TRUE(info.ok());
  EXPECT_GT(info->constraints, 0u);
  EXPECT_EQ(info->violated_after, 0u);

  auto after = steiner::TopKSteinerTrees(d.graph, *d.weights, {0, 3}, topk);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].edges, target.edges);
  // Margin: target beats the alternative by at least the edge loss (4).
  double target_cost = steiner::TreeCost(d.graph, *d.weights, target);
  steiner::SteinerTree other{{d.bottom_a, d.bottom_b}, 0.0};
  double other_cost = steiner::TreeCost(d.graph, *d.weights, other);
  EXPECT_GE(other_cost - target_cost, 4.0 - 1e-6);
}

TEST(MiraTest, PositivityMaintained) {
  Diamond d(4.0, 0.2);
  steiner::SteinerTree target{{d.top_a, d.top_b}, 0.0};
  target.Canonicalize();
  MiraLearner learner;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(learner.Update(d.graph, {0, 3}, target, d.weights.get()).ok());
  }
  for (EdgeId e = 0; e < d.graph.num_edges(); ++e) {
    EXPECT_GT(d.weights->Dot(d.graph.edge_features(e)), 0.0)
        << "edge " << e << " went non-positive";
  }
}

// Positivity must ride the violating edges' own features (as QP
// constraints re-solved with the margins), never the shared default
// feature: the default sits on every learnable edge, so a bump turns an
// otherwise-sparse MIRA delta dense — full re-costs everywhere and no
// relevance gating downstream (the ROADMAP regression this test pins).
TEST(MiraTest, PositivityRidesConstraintFeaturesNotTheDefault) {
  Diamond d(2.0, 1.0);  // bottom path cheapest, user endorses top
  steiner::SteinerTree target{{d.top_a, d.top_b}, 0.0};
  target.Canonicalize();

  MiraLearner learner;
  double default_before =
      d.weights->At(FeatureSpace::kDefaultFeature);
  std::uint64_t rev = d.weights->revision();
  // The margin pass must drive the endorsed path's features well below
  // the floor (loss 4 against costs of order 1), forcing the positivity
  // machinery to engage.
  auto info = learner.Update(d.graph, {0, 3}, target, d.weights.get());
  ASSERT_TRUE(info.ok());
  EXPECT_GT(info->positivity_constraints, 0u);

  // The fix: no dense fallback, the default feature is untouched, and
  // the journal delta stays on the per-edge/constraint features.
  EXPECT_EQ(info->default_weight_bump, 0.0);
  EXPECT_EQ(d.weights->At(FeatureSpace::kDefaultFeature), default_before);
  std::vector<graph::FeatureDelta> deltas;
  ASSERT_TRUE(d.weights->DeltaSince(rev, &deltas));
  graph::CoalesceFeatureDeltas(&deltas);
  ASSERT_FALSE(deltas.empty());
  for (const auto& delta : deltas) {
    EXPECT_NE(delta.id, FeatureSpace::kDefaultFeature);
  }

  // And the constraint-based floor loses neither guarantee: every cost
  // sits at or above epsilon (within the solver's tolerance) and the
  // endorsed path still wins with the full margin.
  for (graph::EdgeId e = 0; e < d.graph.num_edges(); ++e) {
    EXPECT_GE(d.graph.EdgeCost(e, *d.weights), 1e-4 - 1e-7)
        << "edge " << e;
  }
  steiner::SteinerTree other{{d.bottom_a, d.bottom_b}, 0.0};
  double margin = steiner::TreeCost(d.graph, *d.weights, other) -
                  steiner::TreeCost(d.graph, *d.weights, target);
  EXPECT_GE(margin, 4.0 - 1e-6);
}

TEST(MiraTest, ZeroCostEdgesUntouched) {
  Diamond d(2.0, 1.0);
  // Add a fixed-zero membership edge; it must stay at exactly 0.
  graph::Edge membership;
  membership.u = 1;
  membership.v = 2;
  membership.kind = graph::EdgeKind::kMembership;
  membership.fixed_zero = true;
  EdgeId me = d.graph.AddEdge(std::move(membership));

  steiner::SteinerTree target{{d.top_a, d.top_b}, 0.0};
  target.Canonicalize();
  MiraLearner learner;
  ASSERT_TRUE(learner.Update(d.graph, {0, 3}, target, d.weights.get()).ok());
  EXPECT_DOUBLE_EQ(d.graph.EdgeCost(me, *d.weights), 0.0);
}

TEST(MiraTest, UpdateAgainstExplicitAlternatives) {
  Diamond d(2.0, 1.0);
  steiner::SteinerTree target{{d.top_a, d.top_b}, 0.0};
  target.Canonicalize();
  steiner::SteinerTree alt{{d.bottom_a, d.bottom_b}, 0.0};
  alt.Canonicalize();
  MiraLearner learner;
  auto info =
      learner.UpdateAgainst(d.graph, {alt}, target, d.weights.get());
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->constraints, 1u);
  double target_cost = steiner::TreeCost(d.graph, *d.weights, target);
  double alt_cost = steiner::TreeCost(d.graph, *d.weights, alt);
  EXPECT_GE(alt_cost - target_cost, 4.0 - 1e-6);
}

// Property sweep: for random diamond costs, one MIRA update always makes
// the endorsed path optimal with the required margin, while fixed-zero
// edges stay at zero and all costs stay positive.
class MiraPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MiraPropertyTest, EndorsedPathWinsWithMargin) {
  std::uint64_t seed = 5000 + GetParam();
  // Deterministic pseudo-random costs in (0.2, 4.2).
  auto cost_of = [&](int i) {
    std::uint64_t x = seed * 2654435761u + i * 40503u;
    return 0.2 + static_cast<double>(x % 1000) / 250.0;
  };
  Diamond d(cost_of(0) + cost_of(1), cost_of(2) + cost_of(3));
  steiner::SteinerTree target{{d.top_a, d.top_b}, 0.0};
  target.Canonicalize();

  MiraLearner learner;
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(
        learner.Update(d.graph, {0, 3}, target, d.weights.get()).ok());
  }
  steiner::TopKConfig topk;
  topk.k = 1;
  auto best = steiner::TopKSteinerTrees(d.graph, *d.weights, {0, 3}, topk);
  ASSERT_EQ(best.size(), 1u);
  EXPECT_EQ(best[0].edges, target.edges);
  steiner::SteinerTree other{{d.bottom_a, d.bottom_b}, 0.0};
  other.Canonicalize();
  double margin = steiner::TreeCost(d.graph, *d.weights, other) -
                  steiner::TreeCost(d.graph, *d.weights, target);
  EXPECT_GE(margin, 4.0 - 1e-6);  // symmetric loss of disjoint 2-edge paths
  for (graph::EdgeId e = 0; e < d.graph.num_edges(); ++e) {
    EXPECT_GT(d.graph.EdgeCost(e, *d.weights), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCosts, MiraPropertyTest,
                         ::testing::Range(0, 15));

// End-to-end half of the positivity-batching regression: a MIRA feedback
// step that does not bump the default feature must stay sparse through
// the whole refresh pipeline — every view classifies as skip /
// delta-recost / relevance-skip, never full-recost or rebuild. Before
// the headroom batching, the bump re-armed on (nearly) every update and
// its dense default-feature delta forced wholesale re-costs throughout.
TEST(MiraEndToEndTest, SparseFeedbackStaysDeltaClassedEndToEnd) {
  data::InterProGoConfig dconfig;
  dconfig.num_go_terms = 80;
  dconfig.num_entries = 60;
  dconfig.num_pubs = 50;
  dconfig.num_journals = 10;
  dconfig.num_methods = 40;
  dconfig.interpro2go_links = 120;
  dconfig.entry2pub_links = 100;
  dconfig.method2pub_links = 80;
  auto dataset = data::BuildInterProGo(dconfig);

  core::QSystemConfig config;
  config.steiner_threads = -1;
  config.view.query_graph.min_similarity = 0.5;
  config.view.query_graph.max_matches_per_keyword = 6;
  core::QSystem q(config);
  for (const auto& src : dataset.catalog.sources()) {
    Q_CHECK_OK(q.RegisterSource(src));
  }
  Q_CHECK_OK(q.RunInitialAlignment());
  // Grow the catalog with synthetic two-attribute sources (the Sec. 5.1.2
  // scaling shape) so the snapshots are much larger than any one tree: a
  // MIRA step's features then price a small fraction of each view's
  // edges, which is the regime the delta classification serves. On the
  // raw schema graph every tree is a sizable fraction of the snapshot
  // and dense fallbacks are correct.
  {
    util::Rng rng(2010);
    std::vector<match::AlignmentCandidate> wires;
    const std::vector<relational::AttributeId> targets = {
        {"go", "go_term", "name"},
        {"interpro", "entry", "name"},
        {"interpro", "method", "name"},
        {"interpro", "pub", "title"},
    };
    for (int i = 0; i < 150; ++i) {
      std::string name = "syn" + std::to_string(i);
      Q_CHECK_OK(q.RegisterSource(data::MakeSyntheticSource(name, 3, &rng)));
      match::AlignmentCandidate c;
      c.a = relational::AttributeId{name, "rel", "key"};
      c.b = targets[i % targets.size()];
      c.matcher = "synthetic";
      c.confidence = 0.5;
      wires.push_back(c);
    }
    Q_CHECK_OK(q.AddAssociations(wires));
  }
  std::vector<std::size_t> view_ids;
  for (std::size_t i = 0; i < 3; ++i) {
    auto id = q.CreateView(dataset.keyword_queries[i]);
    Q_CHECK_OK(id.status());
    view_ids.push_back(*id);
  }
  ASSERT_TRUE(q.RefreshAllViews().ok());

  // Warmup feedback absorbs any initial positivity bump (a bump is
  // legitimately dense; headroom means it cannot recur on the very next
  // steps).
  ASSERT_FALSE(q.view(view_ids[0]).trees().empty());
  ASSERT_TRUE(
      q.ApplyFeedback(view_ids[0], q.view(view_ids[0]).trees()[0]).ok());

  // The measured steps: endorse each view's current best. None may move
  // the dense default feature, and every view must resolve inside the
  // delta classes.
  for (std::size_t round = 1; round < view_ids.size(); ++round) {
    std::size_t view = view_ids[round];
    ASSERT_FALSE(q.view(view).trees().empty());
    auto before = q.refresh_engine().stats();
    double default_before =
        q.weights().At(graph::FeatureSpace::kDefaultFeature);
    ASSERT_TRUE(q.ApplyFeedback(view, q.view(view).trees()[0]).ok());
    auto after = q.refresh_engine().stats();
    EXPECT_EQ(q.weights().At(graph::FeatureSpace::kDefaultFeature),
              default_before)
        << "round " << round << " bumped the default feature";
    EXPECT_EQ(after.snapshots_built, before.snapshots_built)
        << "round " << round;
    EXPECT_EQ(after.views_full_recost, before.views_full_recost)
        << "round " << round;
    EXPECT_EQ((after.views_skipped_delta + after.views_delta_recost +
               after.views_skipped_irrelevant) -
                  (before.views_skipped_delta + before.views_delta_recost +
                   before.views_skipped_irrelevant),
              view_ids.size())
        << "round " << round;
  }
}

// Evaluation utilities ------------------------------------------------------

relational::AttributeId Attr(const std::string& r, const std::string& a) {
  return relational::AttributeId{"s", r, a};
}

TEST(EvaluationTest, CandidatePrecisionRecall) {
  std::vector<GoldEdge> gold{{Attr("r1", "a"), Attr("r2", "b")},
                             {Attr("r3", "c"), Attr("r4", "d")}};
  std::vector<match::AlignmentCandidate> candidates{
      {Attr("r1", "a"), Attr("r2", "b"), 0.9, "m"},  // correct
      {Attr("r2", "b"), Attr("r1", "a"), 0.8, "m"},  // dup of correct
      {Attr("r1", "a"), Attr("r4", "d"), 0.7, "m"},  // wrong
  };
  auto pr = EvaluateCandidates(candidates, gold);
  EXPECT_EQ(pr.true_positives, 1u);
  EXPECT_EQ(pr.predicted, 2u);  // dup counted once
  EXPECT_EQ(pr.gold, 2u);
  EXPECT_DOUBLE_EQ(pr.precision(), 0.5);
  EXPECT_DOUBLE_EQ(pr.recall(), 0.5);
  EXPECT_DOUBLE_EQ(pr.f1(), 0.5);
}

TEST(EvaluationTest, CandidatePrCurveMonotoneRecall) {
  std::vector<GoldEdge> gold{{Attr("r1", "a"), Attr("r2", "b")}};
  std::vector<match::AlignmentCandidate> candidates{
      {Attr("r1", "a"), Attr("r2", "b"), 0.9, "m"},
      {Attr("r1", "a"), Attr("r4", "d"), 0.7, "m"},
      {Attr("r5", "e"), Attr("r6", "f"), 0.5, "m"},
  };
  auto curve = CandidatePrCurve(candidates, gold);
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve[0].precision, 1.0);
  EXPECT_DOUBLE_EQ(curve[0].recall, 1.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].recall, curve[i - 1].recall);
    EXPECT_LE(curve[i].threshold, curve[i - 1].threshold);
  }
  EXPECT_NEAR(curve.back().precision, 1.0 / 3.0, 1e-9);
}

TEST(EvaluationTest, GraphAssociationsAndCostGap) {
  FeatureSpace space;
  SearchGraph g;
  NodeId a = g.AddNode(graph::NodeKind::kAttribute, "s.r1.a",
                       Attr("r1", "a"));
  NodeId b = g.AddNode(graph::NodeKind::kAttribute, "s.r2.b",
                       Attr("r2", "b"));
  NodeId c = g.AddNode(graph::NodeKind::kAttribute, "s.r3.c",
                       Attr("r3", "c"));
  auto add = [&](NodeId u, NodeId v, const char* name, double cost) {
    FeatureVec f;
    f.Add(space.Intern(name, cost), 1.0);
    return g.AddAssociationEdge(u, v, f, graph::MatcherScore{"m", 0.5});
  };
  add(a, b, "cheap", 0.5);   // gold
  add(a, c, "pricey", 3.0);  // non-gold
  WeightVector w(&space);

  std::vector<GoldEdge> gold{{Attr("r1", "a"), Attr("r2", "b")}};
  auto pr_all = EvaluateGraphAssociations(g, w, gold, 10.0);
  EXPECT_DOUBLE_EQ(pr_all.precision(), 0.5);
  EXPECT_DOUBLE_EQ(pr_all.recall(), 1.0);
  auto pr_strict = EvaluateGraphAssociations(g, w, gold, 1.0);
  EXPECT_DOUBLE_EQ(pr_strict.precision(), 1.0);
  EXPECT_DOUBLE_EQ(pr_strict.recall(), 1.0);

  auto gap = MeasureGoldCostGap(g, w, gold);
  EXPECT_EQ(gap.gold_edges, 1u);
  EXPECT_EQ(gap.non_gold_edges, 1u);
  EXPECT_DOUBLE_EQ(gap.gold_mean, 0.5);
  EXPECT_DOUBLE_EQ(gap.non_gold_mean, 3.0);

  auto curve = GraphPrCurve(g, w, gold);
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve[0].precision, 1.0);
  EXPECT_DOUBLE_EQ(curve[1].precision, 0.5);
}

}  // namespace
}  // namespace q::learn
