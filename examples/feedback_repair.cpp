// Feedback-driven alignment repair (Sec. 4): the matchers bootstrap a
// search graph that mixes good and bad alignments; a domain expert
// endorses correct answers; the MIRA learner reprices association edges
// until the gold alignments dominate. Prints the gold/non-gold average
// cost gap after every feedback step (the Fig. 12 signal) and the final
// precision/recall sweep.
//
//   build/examples/feedback_repair
#include <iostream>

#include "core/q_system.h"
#include "data/interpro_go.h"
#include "learn/evaluation.h"
#include "util/string_util.h"

int main() {
  auto dataset = q::data::BuildInterProGo();
  q::core::QSystem q;
  for (const auto& source : dataset.catalog.sources()) {
    Q_CHECK_OK(q.RegisterSource(source));
  }
  Q_CHECK_OK(q.RunInitialAlignment());

  auto initial = q::learn::EvaluateGraphAssociations(
      q.search_graph(), q.weights(), dataset.gold_edges,
      std::numeric_limits<double>::infinity());
  std::cout << "matcher bootstrap: " << initial.predicted
            << " association edges, precision "
            << q::util::FormatDouble(100 * initial.precision(), 1)
            << "%, recall "
            << q::util::FormatDouble(100 * initial.recall(), 1) << "%\n\n";

  q::feedback::SimulatedUser expert(dataset.gold_edges);
  std::cout << "step  query                                   "
            << "gold-cost  non-gold-cost  gap\n";
  int step = 0;
  for (int replay = 0; replay < 2; ++replay) {
    for (const auto& keywords : dataset.keyword_queries) {
      auto view_id = q.CreateView(keywords);
      if (!view_id.ok()) continue;
      // Every view is served through the batched RefreshEngine (one CSR
      // snapshot per view, re-costed in place after each MIRA update) and
      // must come back with live trees.
      Q_CHECK(!q.view(*view_id).trees().empty());
      auto applied = q.ApplyGoldFeedback(*view_id, expert);
      Q_CHECK_OK(applied.status());
      if (!*applied) continue;
      // Repricing can legitimately leave a view's current top trees
      // row-less mid-learning, but the refreshed tree list itself must
      // never come back empty.
      Q_CHECK(!q.view(*view_id).trees().empty());
      auto gap = q::learn::MeasureGoldCostGap(q.search_graph(), q.weights(),
                                              dataset.gold_edges);
      std::string label = keywords[0] + " / " + keywords[1];
      label.resize(38, ' ');
      std::cout << "  " << ++step << (step < 10 ? "   " : "  ") << label
                << "  " << q::util::FormatDouble(gap.gold_mean, 3)
                << "      " << q::util::FormatDouble(gap.non_gold_mean, 3)
                << "          "
                << q::util::FormatDouble(
                       gap.non_gold_mean - gap.gold_mean, 3)
                << "\n";
    }
  }

  // The learned graph must still answer: every view has trees, and the
  // fleet as a whole produces ranked rows.
  std::size_t total_rows = 0;
  for (std::size_t v = 0; v < q.num_views(); ++v) {
    Q_CHECK(!q.view(v).trees().empty());
    total_rows += q.view(v).results().rows.size();
  }
  Q_CHECK(total_rows > 0);

  const auto& rstats = q.refresh_engine().stats();
  std::cout << "\nrefresh engine: " << rstats.snapshots_built
            << " snapshot builds, " << rstats.snapshots_recosted
            << " weight-only re-costs, " << rstats.searches_run
            << " searches across " << q.num_views()
            << " views (generation " << q.refresh_engine().generation()
            << ")\n";
  std::cout << "delta pipeline: " << rstats.views_delta_recost
            << " delta re-costs, " << rstats.views_skipped_delta
            << " provably-unchanged skips, " << rstats.views_full_recost
            << " full re-costs, " << rstats.edges_repriced
            << " edges repriced, " << rstats.sp_cache_entries_retained
            << " cache entries retained / " << rstats.sp_cache_entries_dropped
            << " dropped\n";
  // The feedback loop only reprices edges, so after the initial build
  // every refresh must have taken the in-place re-cost fast path.
  Q_CHECK(rstats.snapshots_recosted > rstats.snapshots_built);
  // Each MIRA step moves only the features on the endorsed and competing
  // trees, so the delta pipeline must have resolved refreshes without
  // wholesale work: every view refresh after a feedback step is a delta
  // re-cost or a provable skip (full re-costs only when the positivity
  // bump moves the shared default feature across the whole graph).
  Q_CHECK(rstats.views_delta_recost + rstats.views_skipped_delta > 0);

  std::cout << "\nprecision/recall sweep over the learned edge costs:\n";
  auto curve = q::learn::GraphPrCurve(q.search_graph(), q.weights(),
                                      dataset.gold_edges);
  for (const auto& p : curve) {
    std::cout << "  threshold " << q::util::FormatDouble(p.threshold, 3)
              << ": precision "
              << q::util::FormatDouble(100 * p.precision, 1)
              << "%  recall " << q::util::FormatDouble(100 * p.recall, 1)
              << "%\n";
  }
  return 0;
}
