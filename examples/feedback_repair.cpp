// Feedback-driven alignment repair (Sec. 4): the matchers bootstrap a
// search graph that mixes good and bad alignments; a domain expert
// endorses correct answers; the MIRA learner reprices association edges
// until the gold alignments dominate. Prints the gold/non-gold average
// cost gap after every feedback step (the Fig. 12 signal) and the final
// precision/recall sweep.
//
//   build/examples/feedback_repair
#include <iostream>

#include "core/q_system.h"
#include "data/interpro_go.h"
#include "learn/evaluation.h"
#include "util/string_util.h"

int main() {
  auto dataset = q::data::BuildInterProGo();
  q::core::QSystem q;
  for (const auto& source : dataset.catalog.sources()) {
    Q_CHECK_OK(q.RegisterSource(source));
  }
  Q_CHECK_OK(q.RunInitialAlignment());

  auto initial = q::learn::EvaluateGraphAssociations(
      q.search_graph(), q.weights(), dataset.gold_edges,
      std::numeric_limits<double>::infinity());
  std::cout << "matcher bootstrap: " << initial.predicted
            << " association edges, precision "
            << q::util::FormatDouble(100 * initial.precision(), 1)
            << "%, recall "
            << q::util::FormatDouble(100 * initial.recall(), 1) << "%\n\n";

  q::feedback::SimulatedUser expert(dataset.gold_edges);
  std::cout << "step  query                                   "
            << "gold-cost  non-gold-cost  gap\n";
  int step = 0;
  for (int replay = 0; replay < 2; ++replay) {
    for (const auto& keywords : dataset.keyword_queries) {
      auto view_id = q.CreateView(keywords);
      if (!view_id.ok()) continue;
      auto applied = q.ApplyGoldFeedback(*view_id, expert);
      Q_CHECK_OK(applied.status());
      if (!*applied) continue;
      auto gap = q::learn::MeasureGoldCostGap(q.search_graph(), q.weights(),
                                              dataset.gold_edges);
      std::string label = keywords[0] + " / " + keywords[1];
      label.resize(38, ' ');
      std::cout << "  " << ++step << (step < 10 ? "   " : "  ") << label
                << "  " << q::util::FormatDouble(gap.gold_mean, 3)
                << "      " << q::util::FormatDouble(gap.non_gold_mean, 3)
                << "          "
                << q::util::FormatDouble(
                       gap.non_gold_mean - gap.gold_mean, 3)
                << "\n";
    }
  }

  std::cout << "\nprecision/recall sweep over the learned edge costs:\n";
  auto curve = q::learn::GraphPrCurve(q.search_graph(), q.weights(),
                                      dataset.gold_edges);
  for (const auto& p : curve) {
    std::cout << "  threshold " << q::util::FormatDouble(p.threshold, 3)
              << ": precision "
              << q::util::FormatDouble(100 * p.precision, 1)
              << "%  recall " << q::util::FormatDouble(100 * p.recall, 1)
              << "%\n";
  }
  return 0;
}
