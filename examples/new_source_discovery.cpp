// New-source discovery (the paper's headline scenario, Sec. 3): a user
// has a live keyword-search view; a previously unknown source is
// registered; Q aligns it against the view's alpha-cost neighborhood
// only, installs the discovered associations, and refreshes the view —
// new answers appear without any manual mapping work.
//
//   build/examples/new_source_discovery
#include <iostream>
#include <memory>

#include "core/q_system.h"
#include "data/interpro_go.h"

namespace {

// Re-homes one interpro table into a standalone source, simulating an
// external database discovered later.
std::shared_ptr<q::relational::DataSource> ExtractJournalSource(
    const q::relational::Catalog& catalog) {
  auto table = catalog.FindTable("interpro.journal");
  Q_CHECK(table != nullptr);
  auto source = std::make_shared<q::relational::DataSource>("jrnldb");
  auto copy = std::make_shared<q::relational::Table>(
      q::relational::RelationSchema("jrnldb", "journal",
                                    table->schema().attributes()));
  for (const auto& row : table->rows()) Q_CHECK_OK(copy->AppendRow(row));
  Q_CHECK_OK(source->AddTable(copy));
  return source;
}

}  // namespace

int main() {
  auto dataset = q::data::BuildInterProGo();
  auto journal_db = ExtractJournalSource(dataset.catalog);

  // Start Q with everything except the journal database.
  q::core::QSystemConfig config;
  config.strategy = q::core::AlignStrategy::kViewBased;
  q::core::QSystem q(config);
  for (const auto& source : dataset.catalog.sources()) {
    if (source->name() == "go") {
      Q_CHECK_OK(q.RegisterSource(source));
      continue;
    }
    auto partial = std::make_shared<q::relational::DataSource>("interpro");
    for (const auto& t : source->tables()) {
      if (t->schema().relation() != "journal") {
        Q_CHECK_OK(partial->AddTable(t));
      }
    }
    Q_CHECK_OK(q.RegisterSource(partial));
  }
  // No foreign keys were declared, so Q bootstraps associations with its
  // two matchers (COMA++-style metadata + MAD label propagation).
  Q_CHECK_OK(q.RunInitialAlignment());

  auto view_id = q.CreateView({"pub title", "entry name"});
  Q_CHECK_OK(view_id.status());
  const auto& view = q.view(*view_id);
  std::cout << "view over " << q.catalog().num_relations()
            << " relations: " << view.trees().size()
            << " queries, alpha (k-th tree cost) = " << view.Alpha()
            << "\n";
  std::cout << "association edges before discovery: "
            << q.search_graph()
                   .EdgesOfKind(q::graph::EdgeKind::kAssociation)
                   .size()
            << "\n\n";

  std::cout << "registering new source 'jrnldb' (journal database)...\n";
  auto stats = q.RegisterAndAlignSource(journal_db);
  Q_CHECK_OK(stats.status());
  std::cout << "  aligner considered " << stats->relations_considered
            << " existing relations (view-based pruning)\n"
            << "  base matcher calls:   " << stats->matcher_calls << "\n"
            << "  attribute comparisons: " << stats->attribute_comparisons
            << "\n"
            << "  wall time: " << stats->wall_ms << " ms\n";
  std::cout << "association edges after discovery: "
            << q.search_graph()
                   .EdgesOfKind(q::graph::EdgeKind::kAssociation)
                   .size()
            << "\n\n";

  std::cout << "new associations touching jrnldb:\n";
  for (q::graph::EdgeId e :
       q.search_graph().EdgesOfKind(q::graph::EdgeKind::kAssociation)) {
    const auto& edge = q.search_graph().edge(e);
    const auto& la = q.search_graph().node(edge.u).label;
    const auto& lb = q.search_graph().node(edge.v).label;
    if (la.rfind("jrnldb", 0) == 0 || lb.rfind("jrnldb", 0) == 0) {
      std::cout << "  " << la << " <-> " << lb << "  (cost "
                << q.search_graph().EdgeCost(e, q.weights()) << ",";
      for (const auto& p : edge.provenance()) {
        std::cout << " " << p.matcher << "=" << p.confidence;
      }
      std::cout << ")\n";
    }
  }
  return 0;
}
