// Quickstart: register two bioinformatics sources, ask a keyword query,
// and print the ranked, provenance-annotated answers of the resulting
// top-k view.
//
//   build/examples/quickstart
#include <iostream>

#include "core/q_system.h"
#include "data/interpro_go.h"

namespace {

void PrintResults(const q::query::TopKView& view, std::size_t max_rows) {
  std::cout << "view keywords:";
  for (const auto& kw : view.keywords()) std::cout << " '" << kw << "'";
  std::cout << "\n\ntop-" << view.trees().size()
            << " queries (best first):\n";
  for (std::size_t i = 0; i < view.queries().size(); ++i) {
    const auto& cq = view.queries()[i];
    std::cout << "  [" << i << "] cost=" << cq.cost << "  " << cq.ToSql()
              << "\n";
  }
  const auto& results = view.results();
  std::cout << "\nunified output schema:";
  for (const auto& col : results.columns) std::cout << " " << col;
  std::cout << "\n\nranked answers:\n";
  std::size_t shown = 0;
  for (const auto& row : results.rows) {
    if (shown++ >= max_rows) break;
    std::cout << "  cost=" << row.cost << " (query " << row.query_index
              << "):";
    for (const auto& v : row.values) {
      std::cout << " [" << v.ToText() << "]";
    }
    std::cout << "\n";
  }
  if (results.rows.size() > shown) {
    std::cout << "  ... " << (results.rows.size() - shown) << " more\n";
  }
}

}  // namespace

int main() {
  // Generate the InterPro-GO dataset with its key-foreign-key metadata
  // declared (the quickstart scenario: sources with known cross
  // references, Sec. 2.1).
  q::data::InterProGoConfig config;
  config.declare_foreign_keys = true;
  auto dataset = q::data::BuildInterProGo(config);

  q::core::QSystem q;
  for (const auto& source : dataset.catalog.sources()) {
    Q_CHECK_OK(q.RegisterSource(source));
  }
  std::cout << "registered " << q.catalog().sources().size()
            << " sources, " << q.catalog().num_relations() << " relations, "
            << q.catalog().num_attributes() << " attributes\n";
  std::cout << "search graph: " << q.search_graph().num_nodes()
            << " nodes, " << q.search_graph().num_edges() << " edges\n\n";

  // The running example of Fig. 3: GO term name 'plasma membrane',
  // publication titles.
  auto view_id = q.CreateView({"plasma membrane", "pub title"});
  Q_CHECK_OK(view_id.status());
  PrintResults(q.view(*view_id), 10);
  return 0;
}
