// Scaling demo (Sec. 5.1.2): grows the search graph with synthetic
// two-attribute sources and shows how the alignment-search strategies
// scale — Exhaustive's comparison count grows with catalog size while
// ViewBased/Preferential stay flat — and how the batched RefreshEngine
// keeps live keyword views fresh across that growth: each growth stage
// bumps the graph revision and forces full snapshot rebuilds, while a
// weight-only update afterwards re-costs the CSR snapshots in place.
//
//   build/examples/scaling_demo
#include <iostream>

#include "align/aligner.h"
#include "core/refresh_engine.h"
#include "data/gbco.h"
#include "data/synthetic.h"
#include "graph/graph_builder.h"
#include "match/matcher.h"
#include "query/view.h"
#include "text/text_index.h"
#include "util/random.h"

int main() {
  q::data::GbcoConfig config;
  config.base_rows = 20;
  auto dataset = q::data::BuildGbco(config);

  q::graph::FeatureSpace space;
  q::graph::CostModel model(&space, q::graph::CostModelConfig{});
  q::graph::SearchGraph graph =
      q::graph::BuildSearchGraph(dataset.catalog, &model);
  q::graph::WeightVector weights(&space);
  q::text::TextIndex index;
  index.IndexCatalog(dataset.catalog);
  q::util::Rng rng(2010);

  // Two live keyword views served through the batched refresh engine; the
  // engine owns one CSR snapshot per view and reconciles it with the
  // growing graph at most once per generation.
  q::query::ViewConfig vconfig;
  vconfig.top_k.k = 3;
  vconfig.top_k.approximate = true;
  vconfig.top_k.max_subproblems = 400;
  q::query::TopKView view_a(dataset.trials[0].keywords, vconfig);
  q::query::TopKView view_b(dataset.trials[2].keywords, vconfig);
  q::core::RefreshEngine engine;
  engine.RegisterView(&view_a);
  engine.RegisterView(&view_b);
  Q_CHECK_OK(engine.RefreshAll(graph, dataset.catalog, index, &model,
                               weights));
  Q_CHECK(!view_a.trees().empty() && !view_a.results().rows.empty());
  Q_CHECK(!view_b.trees().empty() && !view_b.results().rows.empty());

  // The probe source a registration would have to align.
  auto probe = q::data::MakeSyntheticSource("probe", 5, &rng);

  q::align::ExhaustiveAligner exhaustive;
  q::align::ViewBasedAligner view_based;
  q::align::PreferentialAligner preferential;

  std::cout << "sources  exhaustive  view_based  preferential   (pairwise "
               "attribute comparisons)\n";
  std::size_t targets[] = {18, 100, 500};
  for (std::size_t target : targets) {
    std::size_t have = dataset.catalog.sources().size();
    if (target > have) {
      Q_CHECK_OK(q::data::GrowWithSyntheticSources(
          target - have, q::data::SyntheticGrowthOptions{}, &rng,
          &dataset.catalog, &model, &graph));
      // Growth mutated the graph (revision moved), so this rebuilds both
      // views' query graphs + CSR snapshots — and the views must still
      // answer.
      Q_CHECK_OK(engine.RefreshAll(graph, dataset.catalog, index, &model,
                                   weights));
      Q_CHECK(!view_a.trees().empty() && !view_a.results().rows.empty());
      Q_CHECK(!view_b.trees().empty() && !view_b.results().rows.empty());
    }
    // Alpha below the synthetic-association cost (~1.0, the calibrated
    // average): the keyword neighborhood keeps its original extent no
    // matter how many synthetic sources wire into the graph — the Fig. 8
    // setup.
    q::align::AlignContext ctx;
    ctx.alpha = 0.95;
    ctx.top_y = 2;
    ctx.max_relations = 6;
    auto seed = graph.FindRelationNode("gene.gene");
    Q_CHECK(seed.has_value());
    ctx.keyword_seeds.emplace_back(*seed, 0.0);

    auto run = [&](q::align::Aligner& aligner) {
      q::match::CountingMatcher matcher;
      q::align::AlignerStats stats;
      Q_CHECK_OK(aligner
                     .Align(graph, weights, dataset.catalog, *probe, ctx,
                            &matcher, &stats)
                     .status());
      return stats.attribute_comparisons;
    };
    std::cout << "  " << target << (target < 100 ? "     " : "    ")
              << "  " << run(exhaustive) << "        " << run(view_based)
              << "         " << run(preferential) << "\n";
  }

  // A weight-only update (a feedback step's effect) takes the re-cost
  // fast path: no query-graph rebuild, just an in-place CSR re-cost per
  // snapshot.
  auto before = engine.stats();
  weights.Nudge(q::graph::FeatureSpace::kDefaultFeature, 0.05);
  Q_CHECK_OK(engine.RefreshAll(graph, dataset.catalog, index, &model,
                               weights));
  auto after = engine.stats();
  Q_CHECK(after.snapshots_recosted == before.snapshots_recosted + 2);
  Q_CHECK(after.snapshots_built == before.snapshots_built);
  Q_CHECK(!view_a.results().rows.empty() && !view_b.results().rows.empty());

  std::cout << "\nview refresh over " << dataset.catalog.sources().size()
            << " sources: " << after.snapshots_built
            << " snapshot rebuilds (growth stages), "
            << after.snapshots_recosted
            << " in-place re-costs (weight updates), generation "
            << engine.generation() << ", " << view_a.results().rows.size()
            << "+" << view_b.results().rows.size() << " live answers\n";
  std::cout << "\nViewBased explores only the alpha-neighborhood of the "
               "view's keywords;\nPreferential stops after its prior "
               "budget — neither grows with catalog size.\n";
  return 0;
}
