// Scaling demo (Sec. 5.1.2): grows the search graph with synthetic
// two-attribute sources and shows how the alignment-search strategies
// scale — Exhaustive's comparison count grows with catalog size while
// ViewBased/Preferential stay flat.
//
//   build/examples/scaling_demo
#include <iostream>

#include "align/aligner.h"
#include "data/gbco.h"
#include "data/synthetic.h"
#include "graph/graph_builder.h"
#include "match/matcher.h"
#include "util/random.h"

int main() {
  q::data::GbcoConfig config;
  config.base_rows = 20;
  auto dataset = q::data::BuildGbco(config);

  q::graph::FeatureSpace space;
  q::graph::CostModel model(&space, q::graph::CostModelConfig{});
  q::graph::SearchGraph graph =
      q::graph::BuildSearchGraph(dataset.catalog, &model);
  q::graph::WeightVector weights(&space);
  q::util::Rng rng(2010);

  // The probe source a registration would have to align.
  auto probe = q::data::MakeSyntheticSource("probe", 5, &rng);

  q::align::ExhaustiveAligner exhaustive;
  q::align::ViewBasedAligner view_based;
  q::align::PreferentialAligner preferential;

  std::cout << "sources  exhaustive  view_based  preferential   (pairwise "
               "attribute comparisons)\n";
  std::size_t targets[] = {18, 100, 500};
  for (std::size_t target : targets) {
    std::size_t have = dataset.catalog.sources().size();
    if (target > have) {
      Q_CHECK_OK(q::data::GrowWithSyntheticSources(
          target - have, q::data::SyntheticGrowthOptions{}, &rng,
          &dataset.catalog, &model, &graph));
    }
    // Alpha below the synthetic-association cost (~1.0, the calibrated
    // average): the keyword neighborhood keeps its original extent no
    // matter how many synthetic sources wire into the graph — the Fig. 8
    // setup.
    q::align::AlignContext ctx;
    ctx.alpha = 0.95;
    ctx.top_y = 2;
    ctx.max_relations = 6;
    auto seed = graph.FindRelationNode("gene.gene");
    Q_CHECK(seed.has_value());
    ctx.keyword_seeds.emplace_back(*seed, 0.0);

    auto run = [&](q::align::Aligner& aligner) {
      q::match::CountingMatcher matcher;
      q::align::AlignerStats stats;
      Q_CHECK_OK(aligner
                     .Align(graph, weights, dataset.catalog, *probe, ctx,
                            &matcher, &stats)
                     .status());
      return stats.attribute_comparisons;
    };
    std::cout << "  " << target << (target < 100 ? "     " : "    ")
              << "  " << run(exhaustive) << "        " << run(view_based)
              << "         " << run(preferential) << "\n";
  }
  std::cout << "\nViewBased explores only the alpha-neighborhood of the "
               "view's keywords;\nPreferential stops after its prior "
               "budget — neither grows with catalog size.\n";
  return 0;
}
