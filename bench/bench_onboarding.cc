// Streaming source onboarding under live serving (docs/benchmarks.md,
// "Streaming onboarding"): measures the registration ack path that
// classifies every view against its structural relevance certificate
// instead of quiescing the world.
//
// Phase A — sustained onboarding throughput. N query workers hammer
// QueryView/ReadView over a catalog of isolated community views (k=2, so
// every certificate carries a finite kth cost and a real alpha ball)
// while the driver registers a stream of vocabulary-disjoint sources.
// Every registration must be classified kSkippedIrrelevant for every
// view — the driver verifies the scheduler's skip counters exactly and
// that no published snapshot was replaced — and the ack latency of each
// RegisterAndAlignSource call is recorded.
//
// Phase B — time to first appearance. On a fresh k=3 system (head-room
// above the two per-community base trees), the driver registers a source
// that provably belongs in one community's view and polls ReadView until
// the onboarded relation shows up in a compiled query's atoms: the
// classify->rebuild->async-search->publish latency an onboarded source
// experiences before it serves.
//
// Usage: bench_onboarding [--json=PATH] [--smoke] [--communities=N]
//                         [--readers=N] [--sources=N] [--seed=N]
//
// JSON-lines schema (shared with scripts/check.sh's perf gate):
//   {"kernel":"onboarding_ack_us","n":<registrations>,"median_us":<us>}
//   {"kernel":"onboarding_sources_per_sec","n":<registrations>,"median_us":<rate>}
//   {"kernel":"onboarding_first_appearance_ms","n":1,"median_us":<ms>}
// onboarding_sources_per_sec carries throughput (higher is better) in
// the shared field; check.sh applies an inverted gate to it.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "data/onboarding.h"

namespace q::bench {
namespace {

struct OnboardingConfig {
  std::size_t communities = 32;  // >= 32 views: the acceptance floor
  int readers = 4;
  std::size_t num_sources = 64;  // phase-A registration stream length
  std::uint64_t seed = 42;
  const char* json_path = "bench/out/BENCH_onboarding.json";
  bool smoke = false;
};

struct System {
  data::OnboardingDataset dataset;
  std::unique_ptr<core::QSystem> q;
  std::vector<std::size_t> view_ids;
};

System BuildSystem(const OnboardingConfig& bench, int k) {
  System sys;
  sys.dataset = data::BuildOnboardingDataset(bench.communities);
  core::QSystemConfig config;
  config.view.top_k.k = k;
  config.view.query_graph.min_similarity = 0.5;
  config.view.query_graph.max_matches_per_keyword = 6;
  // MAD only: the metadata matcher would align the shared link-attribute
  // names across communities and merge the islands.
  config.use_metadata_matcher = false;
  config.steiner_threads = -1;
  config.async_refresh = true;
  config.async_repair_threads = 2;
  sys.q = std::make_unique<core::QSystem>(config);
  for (const auto& src : sys.dataset.sources) {
    Q_CHECK_OK(sys.q->RegisterSource(src));
  }
  for (const auto& keywords : sys.dataset.keyword_queries) {
    auto id = sys.q->CreateView(keywords);
    Q_CHECK_OK(id.status());
    sys.view_ids.push_back(*id);
  }
  Q_CHECK_OK(sys.q->DrainRefreshes());
  return sys;
}

// Serving pressure: readers loop QueryView (live searches against the
// pinned slots) and ReadView probes until stopped. Any failure is
// counted and fails the bench — registrations must never wedge a reader.
struct ReaderPool {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ops{0};
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> threads;

  void Start(const System& sys, int readers, std::uint64_t seed) {
    for (int r = 0; r < readers; ++r) {
      threads.emplace_back([this, &sys, seed, r] {
        util::Rng rng(seed + 100 + static_cast<std::uint64_t>(r));
        while (!stop.load(std::memory_order_acquire)) {
          const std::size_t id =
              sys.view_ids[rng.Uniform(sys.view_ids.size())];
          if (rng.Uniform(4) == 0) {
            if (sys.q->ReadView(id).state == nullptr) ++failures;
          } else {
            auto result = sys.q->QueryView(id);
            if (!result.ok() || result->trees.empty()) ++failures;
          }
          ops.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
  }
  void Stop() {
    stop.store(true, std::memory_order_release);
    for (auto& t : threads) t.join();
    threads.clear();
  }
};

double Median(std::vector<double>* in_place) {
  if (in_place->empty()) return 0.0;
  std::sort(in_place->begin(), in_place->end());
  return (*in_place)[in_place->size() / 2];
}

int Run(const OnboardingConfig& bench) {
  using Clock = std::chrono::steady_clock;
  PrintHeader("Streaming source onboarding under live serving",
              "async structural deltas (docs/query_engine.md, "
              "\"Streaming onboarding contract\")");

  // --- phase A: disjoint-source stream against k=2 certificates ----------
  System serving = BuildSystem(bench, /*k=*/2);
  const auto sched_before = serving.q->async_scheduler()->stats();
  std::vector<const void*> snapshots;
  for (std::size_t id : serving.view_ids) {
    snapshots.push_back(serving.q->ReadView(id).state.get());
  }

  ReaderPool readers;
  readers.Start(serving, bench.readers, bench.seed);
  std::vector<double> ack_us;
  ack_us.reserve(bench.num_sources);
  const auto stream_start = Clock::now();
  for (std::size_t i = 0; i < bench.num_sources; ++i) {
    const auto t0 = Clock::now();
    Q_CHECK_OK(
        serving.q->RegisterAndAlignSource(data::MakeDisjointSource(i))
            .status());
    const auto t1 = Clock::now();
    ack_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  const double stream_s =
      std::chrono::duration<double>(Clock::now() - stream_start).count();
  readers.Stop();
  if (!serving.q->DrainRefreshes().ok()) {
    std::fprintf(stderr, "onboarding: drain failed\n");
    return 2;
  }

  // Every registration must have been certificate-skipped for every view:
  // exact counters, zero rebuilds, and the published snapshots untouched.
  const auto sched_after = serving.q->async_scheduler()->stats();
  const std::size_t expect_skips =
      bench.num_sources * serving.view_ids.size();
  if (sched_after.structural_skips - sched_before.structural_skips !=
          expect_skips ||
      sched_after.structural_rebuilds != sched_before.structural_rebuilds) {
    std::fprintf(stderr,
                 "onboarding: expected %zu certificate skips and no "
                 "rebuilds, got %zu skips / %zu rebuilds\n",
                 expect_skips,
                 sched_after.structural_skips - sched_before.structural_skips,
                 sched_after.structural_rebuilds -
                     sched_before.structural_rebuilds);
    return 2;
  }
  for (std::size_t i = 0; i < serving.view_ids.size(); ++i) {
    if (serving.q->ReadView(serving.view_ids[i]).state.get() !=
        snapshots[i]) {
      std::fprintf(stderr, "onboarding: view %zu snapshot replaced\n", i);
      return 2;
    }
  }
  if (readers.failures.load() != 0) {
    std::fprintf(stderr, "onboarding: %llu reader failures\n",
                 static_cast<unsigned long long>(readers.failures.load()));
    return 1;
  }

  const double sources_per_sec =
      stream_s > 0.0 ? static_cast<double>(bench.num_sources) / stream_s
                     : 0.0;
  const double ack_median = Median(&ack_us);
  const double ack_p95 = ack_us[(ack_us.size() * 95) / 100];
  std::printf("phase A: %zu sources in %.2fs while %d readers served "
              "(%llu reader ops)\n",
              bench.num_sources, stream_s, bench.readers,
              static_cast<unsigned long long>(readers.ops.load()));
  std::printf("  sources/sec=%.1f ack p50=%.1fus p95=%.1fus  "
              "skips=%zu rebuilds=0\n",
              sources_per_sec, ack_median, ack_p95, expect_skips);

  // --- phase B: first appearance of a relevant source --------------------
  System appear = BuildSystem(bench, /*k=*/3);
  ReaderPool appear_readers;
  appear_readers.Start(appear, bench.readers, bench.seed + 9000);
  constexpr std::size_t kTarget = 0;
  const std::size_t target_view = appear.view_ids[kTarget];
  const auto appear_start = Clock::now();
  Q_CHECK_OK(appear.q
                 ->RegisterAndAlignSource(data::MakeOverlappingSource(
                     /*serial=*/bench.num_sources, kTarget))
                 .status());
  double first_appearance_ms = -1.0;
  while (std::chrono::duration<double>(Clock::now() - appear_start).count() <
         30.0) {
    query::ViewResult read = appear.q->ReadView(target_view);
    bool appears = false;
    if (read.state != nullptr) {
      for (const auto& query : read.state->queries) {
        for (const std::string& atom : query.atoms) {
          if (atom.find("osrc") != std::string::npos) appears = true;
        }
      }
    }
    if (appears) {
      first_appearance_ms = std::chrono::duration<double, std::milli>(
                                Clock::now() - appear_start)
                                .count();
      break;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  appear_readers.Stop();
  if (!appear.q->DrainRefreshes().ok()) {
    std::fprintf(stderr, "onboarding: phase-B drain failed\n");
    return 2;
  }
  if (first_appearance_ms < 0.0) {
    std::fprintf(stderr,
                 "onboarding: source never appeared in the relevant view's "
                 "top-k within 30s\n");
    return 2;
  }
  if (appear_readers.failures.load() != 0) {
    std::fprintf(stderr, "onboarding: %llu phase-B reader failures\n",
                 static_cast<unsigned long long>(
                     appear_readers.failures.load()));
    return 1;
  }
  std::printf("phase B: first appearance in view %zu after %.2fms\n",
              kTarget, first_appearance_ms);

  // --- JSON ---------------------------------------------------------------
  FILE* json = OpenBenchJson(bench.json_path);
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", bench.json_path);
    return 1;
  }
  auto emit = [json](const char* kernel, std::uint64_t n, double value) {
    std::fprintf(json, "{\"kernel\":\"%s\",\"n\":%llu,\"median_us\":%.3f}\n",
                 kernel, static_cast<unsigned long long>(n), value);
  };
  emit("onboarding_ack_us", bench.num_sources, ack_median);
  emit("onboarding_sources_per_sec", bench.num_sources, sources_per_sec);
  emit("onboarding_first_appearance_ms", 1, first_appearance_ms);
  std::fclose(json);
  return 0;
}

}  // namespace
}  // namespace q::bench

int main(int argc, char** argv) {
  q::bench::OnboardingConfig bench;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--smoke") == 0) {
      bench.smoke = true;
      bench.num_sources = 16;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      bench.json_path = arg + 7;
    } else if (std::strncmp(arg, "--communities=", 14) == 0) {
      bench.communities = static_cast<std::size_t>(std::atoi(arg + 14));
    } else if (std::strncmp(arg, "--readers=", 10) == 0) {
      bench.readers = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--sources=", 10) == 0) {
      bench.num_sources = static_cast<std::size_t>(std::atoll(arg + 10));
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      bench.seed = static_cast<std::uint64_t>(std::atoll(arg + 7));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json=PATH] [--smoke] [--communities=N] "
                   "[--readers=N] [--sources=N] [--seed=N]\n",
                   argv[0]);
      return 1;
    }
  }
  if (bench.communities < 2 || bench.readers < 1 || bench.num_sources < 1) {
    std::fprintf(stderr, "onboarding: invalid config\n");
    return 1;
  }
  return q::bench::Run(bench);
}
