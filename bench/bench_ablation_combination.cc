// Ablation (DESIGN.md §4): is combining matchers + learning actually
// load-bearing? Trains Q with (a) metadata matcher only, (b) MAD only,
// (c) both, at Y=2 with 10 queries x 2 replays, and reports recall of
// the installed graph and best precision at full installed recall.
// Paper context: Sec. 5.2.2 concludes "the simple act of combining
// scores from different matchers is not enough"; learning over the
// combination is what wins.
#include "bench_common.h"

int main() {
  q::bench::PrintHeader(
      "Ablation — matcher combination under feedback",
      "design-choice ablation (not a paper figure); cf. Sec. 5.2.2");

  struct Config {
    const char* name;
    bool metadata;
    bool mad;
  };
  std::printf("%-18s %8s %18s %22s\n", "matchers", "edges",
              "graph recall (%)", "best P @ full recall (%)");
  for (const Config& c : {Config{"metadata only", true, false},
                          Config{"mad only", false, true},
                          Config{"metadata + mad", true, true}}) {
    auto env = q::bench::BootstrapQuality(2, c.metadata, c.mad);
    q::bench::TrainWithFeedback(&env, 10, 2);
    auto pr = q::learn::EvaluateGraphAssociations(
        env.q->search_graph(), env.q->weights(), env.dataset.gold_edges,
        std::numeric_limits<double>::infinity());
    auto curve = q::learn::GraphPrCurve(env.q->search_graph(),
                                        env.q->weights(),
                                        env.dataset.gold_edges);
    // Best precision at the maximum recall the graph supports.
    double max_recall = 0.0;
    for (const auto& p : curve) max_recall = std::max(max_recall, p.recall);
    double best_p = 0.0;
    for (const auto& p : curve) {
      if (p.recall >= max_recall - 1e-9) best_p = std::max(best_p, p.precision);
    }
    std::printf("%-18s %8zu %18.1f %22.1f\n", c.name, pr.predicted,
                100 * pr.recall(), 100 * best_p);
  }
  std::printf(
      "\nexpected: each matcher alone misses alignments (recall < 100%%) "
      "or drowns them in noise;\nonly the learned combination reaches "
      "full recall with usable precision.\n");
  return 0;
}
