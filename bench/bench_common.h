#ifndef Q_BENCH_BENCH_COMMON_H_
#define Q_BENCH_BENCH_COMMON_H_

// Shared driver code for the per-table/per-figure benchmark binaries.
// Each binary prints the rows/series of one table or figure of the paper
// (Sec. 5); see EXPERIMENTS.md for the paper-vs-measured record.

#include <cstdio>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <system_error>
#include <unordered_map>
#include <vector>

#include "align/aligner.h"
#include "align/view_context.h"
#include "core/q_system.h"
#include "data/gbco.h"
#include "data/interpro_go.h"
#include "feedback/simulated_user.h"
#include <unordered_set>

#include "graph/graph_builder.h"
#include "learn/evaluation.h"
#include "learn/mira.h"
#include "match/metadata_matcher.h"
#include "match/value_overlap.h"
#include "query/conjunctive_query.h"
#include "query/view.h"
#include "steiner/top_k.h"
#include "text/text_index.h"
#include "util/stats.h"
#include "util/string_util.h"

namespace q::bench {

// Opens a JSON result file for writing, creating parent directories.
// Benches default their outputs under bench/out/ (gitignored) so stray
// result files can never land in the repo root when run by hand.
inline FILE* OpenBenchJson(const std::string& path) {
  std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  return std::fopen(path.c_str(), "w");
}

// ---------------------------------------------------------------------------
// GBCO alignment-cost experiments (Figs. 6-8)
// ---------------------------------------------------------------------------

// One Sec. 5.1 trial environment: the catalog/search graph hold every
// source except the trial's new sources, and a live view over the trial's
// keywords provides the alignment context (alpha + keyword seeds).
struct TrialEnv {
  relational::Catalog existing;
  graph::FeatureSpace space;
  std::unique_ptr<graph::CostModel> model;
  graph::SearchGraph graph;
  std::unique_ptr<graph::WeightVector> weights;
  text::TextIndex index;
  std::unique_ptr<query::TopKView> view;
  align::AlignContext context;
  std::vector<std::shared_ptr<relational::DataSource>> new_sources;
};

// Builds the environment for one GBCO trial. Returns nullptr if the
// trial's view cannot be constructed (should not happen with the bundled
// dataset).
inline std::unique_ptr<TrialEnv> MakeTrialEnv(
    const data::GbcoDataset& dataset, const data::GbcoTrial& trial,
    std::size_t preferential_budget = 2) {
  auto env = std::make_unique<TrialEnv>();
  for (const auto& src : dataset.catalog.sources()) {
    bool held_out = false;
    for (const auto& name : trial.new_sources) {
      if (src->name() == name) held_out = true;
    }
    if (held_out) {
      env->new_sources.push_back(src);
    } else {
      Q_CHECK_OK(env->existing.AddSource(src));
    }
  }
  env->model = std::make_unique<graph::CostModel>(&env->space,
                                                  graph::CostModelConfig{});
  env->graph = graph::BuildSearchGraph(env->existing, env->model.get());
  env->weights = std::make_unique<graph::WeightVector>(&env->space);
  env->index.IndexCatalog(env->existing);

  query::ViewConfig vconfig;
  vconfig.top_k.k = 5;
  env->view = std::make_unique<query::TopKView>(trial.keywords, vconfig);
  auto status = env->view->Refresh(env->graph, env->existing, env->index,
                                   env->model.get(), *env->weights);
  if (!status.ok()) return nullptr;
  env->context = align::ContextFromView(*env->view, env->graph, env->space,
                                        *env->weights, /*top_y=*/2,
                                        preferential_budget);
  return env;
}

// Calibration (Sec. 5.1): feedback is applied so that the trial's base
// query becomes the top-scoring query, and the learned edge costs become
// the cost function C used by the aligners. Endorses the cheapest tree
// whose relation atoms stay within the base query's relations, runs MIRA,
// and refreshes the view/context.
inline void CalibrateTrialEnv(TrialEnv* env, const data::GbcoTrial& trial,
                              int rounds = 3,
                              std::size_t preferential_budget = 2) {
  learn::MiraLearner learner;
  std::unordered_set<std::string> base(trial.base_relations.begin(),
                                       trial.base_relations.end());
  for (int round = 0; round < rounds; ++round) {
    const query::QueryGraph& qg = env->view->query_graph();
    // Scan beyond the view's k for a base-only tree.
    steiner::TopKConfig deep;
    deep.k = 10;
    auto trees = steiner::TopKSteinerTrees(qg.graph, *env->weights,
                                           qg.keyword_nodes, deep);
    const steiner::SteinerTree* target = nullptr;
    for (const auto& tree : trees) {
      auto cq = query::CompileTree(qg, tree, *env->weights);
      if (!cq.ok()) continue;
      bool inside = true;
      for (const auto& atom : cq->atoms) {
        if (base.count(atom) == 0) inside = false;
      }
      if (inside) {
        target = &tree;
        break;
      }
    }
    if (target == nullptr) break;
    Q_CHECK_OK(learner
                   .Update(qg.graph, qg.keyword_nodes, *target,
                           env->weights.get())
                   .status());
    Q_CHECK_OK(env->view->Refresh(env->graph, env->existing, env->index,
                                  env->model.get(), *env->weights));
  }
  env->context = align::ContextFromView(*env->view, env->graph, env->space,
                                        *env->weights, /*top_y=*/2,
                                        preferential_budget);
}

// Aligns every new source of the trial (registered progressively, as a
// crawler would deliver them), accumulating the aligner stats.
inline align::AlignerStats RunTrialAlignment(TrialEnv* env,
                                             align::Aligner* aligner,
                                             match::Matcher* matcher) {
  align::AlignerStats stats;
  for (const auto& source : env->new_sources) {
    auto result = aligner->Align(env->graph, *env->weights, env->existing,
                                 *source, env->context, matcher, &stats);
    Q_CHECK_OK(result.status());
    // Register the source so later introductions in the same trial see it.
    Q_CHECK_OK(env->existing.AddSource(source));
    graph::AddSourceToGraph(*source, env->model.get(), &env->graph);
  }
  return stats;
}

// ---------------------------------------------------------------------------
// InterPro-GO learning experiments (Table 1, Figs. 10-12, Table 2)
// ---------------------------------------------------------------------------

struct QualityEnv {
  data::InterProGoDataset dataset;
  std::unique_ptr<core::QSystem> q;
  std::unique_ptr<feedback::SimulatedUser> user;
};

inline data::InterProGoConfig QualityDatasetConfig() {
  data::InterProGoConfig config;
  config.num_go_terms = 150;
  config.num_entries = 120;
  config.num_pubs = 100;
  config.num_journals = 20;
  config.num_methods = 90;
  config.interpro2go_links = 250;
  config.entry2pub_links = 200;
  config.method2pub_links = 160;
  return config;
}

// Bootstraps Q on InterPro-GO: registers both sources and runs the
// enabled matchers globally at the given Y (the Sec. 5.2.2 setup).
inline QualityEnv BootstrapQuality(int top_y = 2, bool use_metadata = true,
                                   bool use_mad = true) {
  QualityEnv env;
  env.dataset = data::BuildInterProGo(QualityDatasetConfig());
  core::QSystemConfig config;
  config.top_y = top_y;
  config.use_metadata_matcher = use_metadata;
  config.use_mad_matcher = use_mad;
  config.mira.k = 5;
  // The paper's keyword queries match their target schema elements and
  // values near-exactly and in *different* tables, so every candidate
  // tree must cross an association edge — which is what lets MIRA see
  // (and penalize) bad alignments in the k-best list. Loose tf-idf
  // matching would instead flood the k-best with single-table partial
  // matches that carry no alignment signal.
  config.view.query_graph.min_similarity = 0.5;
  config.view.query_graph.max_matches_per_keyword = 6;
  env.q = std::make_unique<core::QSystem>(config);
  for (const auto& src : env.dataset.catalog.sources()) {
    Q_CHECK_OK(env.q->RegisterSource(src));
  }
  Q_CHECK_OK(env.q->RunInitialAlignment());
  env.user = std::make_unique<feedback::SimulatedUser>(
      env.dataset.gold_edges);
  return env;
}

// Applies gold feedback on the first `num_queries` keyword queries,
// replayed `passes` times (Q(num_queries x passes) in Fig. 11). Invokes
// `per_step` (if non-null) after every applied feedback step.
inline std::size_t TrainWithFeedback(
    QualityEnv* env, std::size_t num_queries, int passes,
    const std::function<void(std::size_t step)>& per_step = nullptr) {
  // One persistent view per query (the user's ongoing information needs);
  // replays revisit the same views, which QSystem refreshes after every
  // weight update.
  std::unordered_map<std::size_t, std::size_t> view_ids;
  std::size_t step = 0;
  for (int pass = 0; pass < passes; ++pass) {
    for (std::size_t i = 0;
         i < num_queries && i < env->dataset.keyword_queries.size(); ++i) {
      auto it = view_ids.find(i);
      if (it == view_ids.end()) {
        auto view_id = env->q->CreateView(env->dataset.keyword_queries[i]);
        if (!view_id.ok()) continue;
        it = view_ids.emplace(i, *view_id).first;
      }
      auto applied = env->q->ApplyGoldFeedback(it->second, *env->user);
      Q_CHECK_OK(applied.status());
      if (*applied) {
        ++step;
        if (per_step) per_step(step);
      }
    }
  }
  return step;
}

// ---------------------------------------------------------------------------
// Output helpers
// ---------------------------------------------------------------------------

inline void PrintHeader(const std::string& title,
                        const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

inline void PrintPrCurve(const std::string& series,
                         const std::vector<learn::PrPoint>& curve) {
  std::printf("%-22s %10s %10s %10s\n", series.c_str(), "threshold",
              "precision", "recall");
  for (const auto& p : curve) {
    std::printf("%-22s %10.4f %10.3f %10.3f\n", "", p.threshold,
                p.precision, p.recall);
  }
}

}  // namespace q::bench

#endif  // Q_BENCH_BENCH_COMMON_H_
