// Figure 7: pairwise attribute comparisons performed while aligning new
// sources to existing sources, with and without the value-overlap
// content filter, averaged over the 40 introductions of the 16 GBCO
// trials. Paper shape: ViewBased/Preferential do far fewer comparisons
// than Exhaustive in both cases; the overlap filter reduces all three.
#include "bench_common.h"

int main() {
  q::bench::PrintHeader(
      "Fig. 7 — pairwise attribute comparisons while aligning new sources",
      "SIGMOD'10 Fig. 7, GBCO dataset, 40 sources / 16 trials");

  auto dataset = q::data::BuildGbco();
  // Content index over every source (paper: "assumes we have a content
  // index available on the attributes in the existing set of sources and
  // in the new source").
  q::match::ValueOverlapIndex overlap;
  for (const auto& t : dataset.catalog.AllTables()) overlap.IndexTable(*t);

  struct Row {
    const char* name;
    std::unique_ptr<q::align::Aligner> aligner;
    q::util::SummaryStats no_filter;
    q::util::SummaryStats with_filter;
  };
  std::vector<Row> rows;
  rows.push_back({"Exhaustive",
                  std::make_unique<q::align::ExhaustiveAligner>(), {}, {}});
  rows.push_back({"ViewBasedAligner",
                  std::make_unique<q::align::ViewBasedAligner>(), {}, {}});
  rows.push_back({"PreferentialAligner",
                  std::make_unique<q::align::PreferentialAligner>(), {}, {}});

  for (auto& row : rows) {
    for (int filtered = 0; filtered < 2; ++filtered) {
      for (const auto& trial : dataset.trials) {
        auto env = q::bench::MakeTrialEnv(dataset, trial);
        if (env == nullptr) continue;
        q::bench::CalibrateTrialEnv(env.get(), trial);
        q::match::CountingMatcher matcher;
        if (filtered == 1) {
          matcher.set_pair_filter(overlap.MakeFilter());
        }
        auto stats = q::bench::RunTrialAlignment(env.get(),
                                                 row.aligner.get(), &matcher);
        double per_source =
            static_cast<double>(stats.attribute_comparisons) /
            static_cast<double>(env->new_sources.size());
        for (std::size_t i = 0; i < env->new_sources.size(); ++i) {
          (filtered == 1 ? row.with_filter : row.no_filter).Add(per_source);
        }
      }
    }
  }

  std::printf("%-22s %22s %22s\n", "strategy", "no additional filter",
              "value overlap filter");
  for (const auto& row : rows) {
    std::printf("%-22s %22.1f %22.1f\n", row.name, row.no_filter.mean(),
                row.with_filter.mean());
  }
  return 0;
}
