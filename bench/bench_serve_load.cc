// YCSB-style concurrent serving load harness (docs/benchmarks.md,
// "Concurrent serving load"): N query workers run live TopKView searches
// (QSystem::QueryView) and published-snapshot reads (ReadView) against
// shared pinned snapshots, Zipfian-skewed over the view set, while one
// feedback writer applies MIRA updates at a configurable pace. Workers
// start on a spin barrier, count ops per worker, and record per-op
// latencies; the driver reports aggregate ops/sec and p50/p95/p99.
//
// Doubles as a correctness gate: after the timed window it drains the
// async pipeline and (a) re-runs a fresh QueryView per view, which must
// be bit-identical to the published snapshot, and (b) replays the
// committed feedback sequence on a twin synchronous QSystem, whose
// published state must match bit for bit. Divergence exits 2.
//
// Usage: bench_serve_load [--json=PATH] [--smoke] [--readers=N]
//                         [--duration-ms=N] [--writer-pause-ms=N]
//                         [--read-mix=F] [--register-mix=F] [--views=N]
//                         [--zipf-theta=F] [--seed=N] [--sources=N]
//
// --sources=N grows the search graph by N streaming-catalog sources
// (data/synthetic.h) before any view exists and turns on the sharded
// terminal-local search, so the same serving mix replays against a
// 100k-source catalog: the gates (bit-identity under concurrency, query
// p95) must hold with the graph two-plus orders of magnitude bigger
// than the serving views' own sources.
//
// --register-mix=F makes the writer register a brand-new vocabulary-
// disjoint source (data/onboarding.h) instead of applying feedback with
// probability F — the streaming-onboarding serving mix, where acks ride
// the structural certificate gate (docs/query_engine.md, "Streaming
// onboarding contract"). In this mode the writer quiesces before each
// feedback op and records the endorsed tree by index, so the twin replay
// endorses its own copy of the identical tree: certificate-skipped views
// keep serving snapshots whose keyword-overlay edge ids predate the
// registrations, so recorded tree objects (and tree edge ids in the
// twin comparison) do not port across systems, while tree costs and
// every served tuple still must match bit for bit.
//
// JSON-lines schema (one object per line, shared with scripts/check.sh's
// perf gate — the gate parses "kernel" and "median_us"):
//   {"kernel":"serve_load_query_p50_us","n":<query_ops>,"median_us":<us>}
//   {"kernel":"serve_load_query_p95_us","n":<query_ops>,"median_us":<us>}
//   {"kernel":"serve_load_query_p99_us","n":<query_ops>,"median_us":<us>}
//   {"kernel":"serve_load_read_p99_us","n":<read_ops>,"median_us":<us>}
//   {"kernel":"serve_load_ops_per_sec","n":<total_ops>,"median_us":<ops>}
// serve_load_ops_per_sec carries throughput (higher is better) in the
// shared field; check.sh applies an inverted gate to it.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "data/onboarding.h"
#include "data/synthetic.h"
#include "steiner/fast_solver.h"
#include "steiner/shard.h"

namespace q::bench {
namespace {

struct LoadConfig {
  int readers = 4;            // concurrent query workers (acceptance floor)
  int duration_ms = 2000;     // timed window
  int writer_pause_ms = 5;    // writer think time between feedback ops
  double read_mix = 0.7;      // fraction of reader ops that are QueryView
  double register_mix = 0.0;  // fraction of writer ops that register sources
  std::size_t num_views = 16;
  double zipf_theta = 0.99;   // YCSB default skew
  std::uint64_t seed = 42;
  std::size_t extra_sources = 0;  // streaming catalog growth (--sources)
  const char* json_path = "bench/out/BENCH_serve_load.json";
  bool smoke = false;
};

// Standard YCSB Zipfian generator over [0, n): item 0 is the hottest key.
// Hand-rolled (util::Rng has no built-in skewed distribution); the
// incremental-zeta shortcut is unnecessary since n is tiny.
class ZipfianGenerator {
 public:
  ZipfianGenerator(std::size_t n, double theta, std::uint64_t seed)
      : n_(n), theta_(theta), rng_(seed) {
    for (std::size_t i = 1; i <= n_; ++i) {
      zetan_ += 1.0 / std::pow(static_cast<double>(i), theta_);
    }
    const double zeta2 = 1.0 + std::pow(0.5, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
  }

  std::size_t Next() {
    const double u = rng_.UniformDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    auto v = static_cast<std::size_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return v >= n_ ? n_ - 1 : v;
  }

 private:
  std::size_t n_;
  double theta_;
  double zetan_ = 0.0;
  double alpha_ = 0.0;
  double eta_ = 0.0;
  util::Rng rng_;
};

struct WorkerResult {
  std::uint64_t query_ops = 0;
  std::uint64_t read_ops = 0;
  std::uint64_t failures = 0;
  std::uint64_t stale_reads = 0;
  // Solver scratch arena bytes retained by this worker's thread at the
  // end of its loop (thread_local — must be read on the worker thread).
  std::size_t scratch_bytes = 0;
  std::vector<double> query_us;
  std::vector<double> read_us;
};

// One committed writer event, in commit order, for the twin replay.
// Feedback carries the endorsed tree twice: as the object the live run
// applied (exact replay when no registrations are mixed in) and as an
// index into the view's quiescent tree list (the only portable form once
// certificate-skipped views serve snapshots from older overlay epochs).
struct WriterEvent {
  enum Kind { kFeedback, kRegister } kind = kFeedback;
  std::size_t view_id = 0;
  steiner::SteinerTree endorsed;
  std::size_t tree_index = 0;
  std::size_t source_serial = 0;  // kRegister: MakeDisjointSource serial
};

data::InterProGoConfig DatasetConfig(bool smoke) {
  data::InterProGoConfig config;
  config.num_go_terms = smoke ? 80 : 120;
  config.num_entries = smoke ? 60 : 90;
  config.num_pubs = smoke ? 50 : 80;
  config.num_journals = 10;
  config.num_methods = smoke ? 40 : 60;
  config.interpro2go_links = smoke ? 120 : 200;
  config.entry2pub_links = smoke ? 100 : 160;
  config.method2pub_links = smoke ? 80 : 120;
  return config;
}

struct Serving {
  data::InterProGoDataset dataset;
  std::unique_ptr<core::QSystem> q;
  std::vector<std::size_t> view_ids;

  Serving(const LoadConfig& load, bool async) {
    dataset = data::BuildInterProGo(DatasetConfig(load.smoke));
    core::QSystemConfig config;
    config.view.query_graph.min_similarity = 0.5;
    config.view.query_graph.max_matches_per_keyword = 6;
    // Per-search solving stays sequential: the measured concurrency is
    // many whole searches sharing one engine, the serving-path shape.
    config.steiner_threads = -1;
    // At catalog scale the per-query win is touching only the shards
    // the view's keywords reach (bit-identical output; see
    // docs/architecture.md, "Memory layout and sharding").
    config.sharded_search = load.extra_sources > 0;
    config.async_refresh = async;
    config.async_repair_threads = async ? 2 : 0;
    q = std::make_unique<core::QSystem>(config);
    for (const auto& src : dataset.catalog.sources()) {
      Q_CHECK_OK(q->RegisterSource(src));
    }
    Q_CHECK_OK(q->RunInitialAlignment());
    if (load.extra_sources > 0) {
      // Streaming growth lands after the matcher bootstrap (its sources
      // arrive pre-associated, so no quadratic matcher pass) and before
      // any view exists (per-view engines snapshot the graph at
      // CreateView). Both the async system and the synchronous twin run
      // this with the same seed, so the twin replay's bit-identity
      // check spans the grown graph too.
      q::util::Rng grow_rng(load.seed * 7919 + 11);
      q::data::StreamingCatalogOptions options;
      Q_CHECK_OK(q::data::BuildStreamingCatalog(
          load.extra_sources, options, &grow_rng, /*catalog=*/nullptr,
          &q->cost_model(), &q->mutable_search_graph()));
    }
    for (std::size_t i = 0; i < load.num_views; ++i) {
      auto id = q->CreateView(
          dataset.keyword_queries[i % dataset.keyword_queries.size()]);
      Q_CHECK_OK(id.status());
      view_ids.push_back(*id);
    }
  }
};

double Percentile(std::vector<double>* sorted_in_place, double p) {
  if (sorted_in_place->empty()) return 0.0;
  std::sort(sorted_in_place->begin(), sorted_in_place->end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_in_place->size() - 1) + 0.5);
  return (*sorted_in_place)[idx];
}

// compare_edges=false relaxes tree edge-id equality (costs and tuples
// still compare exactly): required for the async-vs-twin check when
// registrations are mixed in, because certificate-skipped views keep
// serving snapshots whose keyword-overlay edges were numbered off a
// smaller base graph than the twin's rebuilt ones.
bool SameViewState(const query::ViewSnapshot& a, const query::ViewSnapshot& b,
                   const char* label, bool compare_edges = true) {
  bool same = a.trees.size() == b.trees.size() &&
              a.results.columns == b.results.columns &&
              a.results.rows.size() == b.results.rows.size();
  for (std::size_t i = 0; same && i < a.trees.size(); ++i) {
    same = (!compare_edges || a.trees[i].edges == b.trees[i].edges) &&
           a.trees[i].cost == b.trees[i].cost;
  }
  for (std::size_t i = 0; same && i < a.results.rows.size(); ++i) {
    same = a.results.rows[i].cost == b.results.rows[i].cost &&
           a.results.rows[i].query_index == b.results.rows[i].query_index &&
           a.results.rows[i].values == b.results.rows[i].values;
  }
  if (!same) std::fprintf(stderr, "DIVERGENCE: %s\n", label);
  return same;
}

int Run(const LoadConfig& load) {
  Serving serving(load, /*async=*/true);
  core::QSystem& q = *serving.q;
  const std::size_t num_views = serving.view_ids.size();

  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<int> ready{0};
  std::vector<WorkerResult> results(static_cast<std::size_t>(load.readers));
  std::vector<std::thread> workers;

  using Clock = std::chrono::steady_clock;
  for (int w = 0; w < load.readers; ++w) {
    workers.emplace_back([&, w] {
      WorkerResult& out = results[static_cast<std::size_t>(w)];
      out.query_us.reserve(1 << 15);
      out.read_us.reserve(1 << 15);
      ZipfianGenerator zipf(num_views, load.zipf_theta,
                            load.seed * 131 + static_cast<std::uint64_t>(w));
      util::Rng rng(load.seed + 1000 + static_cast<std::uint64_t>(w));
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) {
        // spin: all workers enter the timed window together
      }
      while (!stop.load(std::memory_order_acquire)) {
        const std::size_t view = serving.view_ids[zipf.Next()];
        if (rng.UniformDouble() < load.read_mix) {
          const auto t0 = Clock::now();
          auto result = q.QueryView(view);
          const auto t1 = Clock::now();
          if (!result.ok() || result->trees.empty()) {
            ++out.failures;
            continue;
          }
          out.query_us.push_back(
              std::chrono::duration<double, std::micro>(t1 - t0).count());
          ++out.query_ops;
        } else {
          const auto t0 = Clock::now();
          query::ViewResult read = q.ReadView(view);
          const auto t1 = Clock::now();
          if (read.state == nullptr) {
            ++out.failures;
            continue;
          }
          if (read.stale) ++out.stale_reads;
          out.read_us.push_back(
              std::chrono::duration<double, std::micro>(t1 - t0).count());
          ++out.read_ops;
        }
      }
      // Solver arena plus the localizer's stamped Dijkstra scratch — the
      // whole per-thread serving footprint the budget gate bounds.
      out.scratch_bytes =
          steiner::ThreadScratchBytes() + steiner::LocalizerScratchBytes();
    });
  }

  // The writer: endorse a random tree of a random view — or, with
  // probability register_mix, register a brand-new disjoint source — wait,
  // repeat. Committed events are logged in order for the twin replay.
  std::vector<WriterEvent> log;
  std::uint64_t write_failures = 0;
  std::uint64_t registrations = 0;
  std::vector<double> register_ack_us;
  std::thread writer([&] {
    util::Rng rng(load.seed + 7);
    std::size_t next_serial = 0;
    while (!go.load(std::memory_order_acquire)) {
    }
    while (!stop.load(std::memory_order_acquire)) {
      if (load.register_mix > 0.0 &&
          rng.UniformDouble() < load.register_mix) {
        WriterEvent event;
        event.kind = WriterEvent::kRegister;
        event.source_serial = next_serial++;
        const auto t0 = Clock::now();
        if (q.RegisterAndAlignSource(
                 data::MakeDisjointSource(event.source_serial))
                .ok()) {
          register_ack_us.push_back(
              std::chrono::duration<double, std::micro>(Clock::now() - t0)
                  .count());
          ++registrations;
          log.push_back(std::move(event));
        } else {
          ++write_failures;
        }
      } else {
        const std::size_t view =
            serving.view_ids[rng.Uniform(serving.view_ids.size())];
        // Mixed mode endorses at quiescence, by index, so the twin can
        // replay its own copy of the identical tree (see header comment).
        if (load.register_mix > 0.0 && !q.DrainRefreshes().ok()) {
          ++write_failures;
          continue;
        }
        query::ViewResult read = q.ReadView(view);
        if (read.state != nullptr && !read.state->trees.empty()) {
          WriterEvent event;
          event.view_id = view;
          event.tree_index = rng.Uniform(read.state->trees.size());
          event.endorsed = read.state->trees[event.tree_index];
          if (q.ApplyFeedback(view, event.endorsed).ok()) {
            log.push_back(std::move(event));
          } else {
            ++write_failures;
          }
        }
      }
      if (load.writer_pause_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(load.writer_pause_ms));
      }
    }
  });

  while (ready.load(std::memory_order_acquire) < load.readers) {
  }
  const auto window_start = Clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(load.duration_ms));
  stop.store(true, std::memory_order_release);
  for (auto& t : workers) t.join();
  writer.join();
  const double window_s =
      std::chrono::duration<double>(Clock::now() - window_start).count();

  // --- aggregate -----------------------------------------------------------
  WorkerResult total;
  std::vector<double> query_us;
  std::vector<double> read_us;
  std::printf("%-8s %12s %12s %10s %12s\n", "worker", "query_ops",
              "read_ops", "failures", "stale_reads");
  for (std::size_t w = 0; w < results.size(); ++w) {
    const WorkerResult& r = results[w];
    std::printf("%-8zu %12llu %12llu %10llu %12llu\n", w,
                static_cast<unsigned long long>(r.query_ops),
                static_cast<unsigned long long>(r.read_ops),
                static_cast<unsigned long long>(r.failures),
                static_cast<unsigned long long>(r.stale_reads));
    total.query_ops += r.query_ops;
    total.read_ops += r.read_ops;
    total.failures += r.failures;
    total.stale_reads += r.stale_reads;
    query_us.insert(query_us.end(), r.query_us.begin(), r.query_us.end());
    read_us.insert(read_us.end(), r.read_us.begin(), r.read_us.end());
  }
  const std::uint64_t total_ops = total.query_ops + total.read_ops;
  const double ops_per_sec =
      window_s > 0.0 ? static_cast<double>(total_ops) / window_s : 0.0;
  const double q_p50 = Percentile(&query_us, 0.50);
  const double q_p95 = Percentile(&query_us, 0.95);
  const double q_p99 = Percentile(&query_us, 0.99);
  const double r_p99 = Percentile(&read_us, 0.99);
  std::printf(
      "readers=%d window_s=%.2f ops/sec=%.0f writes=%zu write_failures=%llu\n",
      load.readers, window_s, ops_per_sec, log.size(),
      static_cast<unsigned long long>(write_failures));
  if (load.register_mix > 0.0) {
    std::printf("registrations=%llu ack p50=%.1fus (register-mix=%.2f)\n",
                static_cast<unsigned long long>(registrations),
                Percentile(&register_ack_us, 0.50), load.register_mix);
  }
  std::printf("query p50=%.1fus p95=%.1fus p99=%.1fus   read p99=%.1fus\n",
              q_p50, q_p95, q_p99, r_p99);
  std::size_t scratch_peak = 0;
  for (const WorkerResult& r : results) {
    scratch_peak = std::max(scratch_peak, r.scratch_bytes);
  }
  std::printf("solver scratch peak: %.2f MiB across %d workers\n",
              static_cast<double>(scratch_peak) / (1024.0 * 1024.0),
              load.readers);
  if (load.extra_sources > 0) {
    // Footprint gate for catalog-scale serving: the scratch shrink
    // policy (steiner/fast_solver.cc) must keep each worker's arena at
    // worst one full-graph solve's working set — a fixed base plus a
    // small per-node budget. Without the policy a single hub query pins
    // the high-water arrays for the thread's lifetime, and growth across
    // the --sources tiers is unbounded.
    const std::size_t budget =
        (std::size_t{16} << 20) +
        std::size_t{128} * q.mutable_search_graph().num_nodes();
    if (scratch_peak > budget) {
      std::fprintf(stderr,
                   "FAIL: solver scratch peak %zu bytes exceeds budget %zu "
                   "(16 MiB + 128 B/node)\n",
                   scratch_peak, budget);
      return 2;
    }
  }
  if (total.query_ops == 0 || total.failures > 0) {
    std::fprintf(stderr,
                 "serve_load: %llu failures, %llu query ops — workers must "
                 "serve without errors\n",
                 static_cast<unsigned long long>(total.failures),
                 static_cast<unsigned long long>(total.query_ops));
    return 1;
  }

  // --- quiescent differential ---------------------------------------------
  if (!q.DrainRefreshes().ok()) {
    std::fprintf(stderr, "serve_load: drain failed\n");
    return 2;
  }
  for (std::size_t id : serving.view_ids) {
    auto fresh = q.QueryView(id);
    if (!fresh.ok()) {
      std::fprintf(stderr, "serve_load: quiescent QueryView failed\n");
      return 2;
    }
    query::ViewResult published = q.ReadView(id);
    std::string label = "quiescent query vs published, view " +
                        std::to_string(id);
    if (!SameViewState(*fresh, *published.state, label.c_str())) return 2;
  }
  Serving twin(load, /*async=*/false);
  for (const WriterEvent& event : log) {
    if (event.kind == WriterEvent::kRegister) {
      if (!twin.q
               ->RegisterAndAlignSource(
                   data::MakeDisjointSource(event.source_serial))
               .ok()) {
        std::fprintf(stderr, "serve_load: twin registration failed\n");
        return 2;
      }
      continue;
    }
    steiner::SteinerTree endorsed = event.endorsed;
    if (load.register_mix > 0.0) {
      // Portable form: the twin endorses its own copy of the tree the
      // live run endorsed at the matching quiescence point.
      query::ViewResult read = twin.q->ReadView(event.view_id);
      if (read.state == nullptr ||
          event.tree_index >= read.state->trees.size()) {
        std::fprintf(stderr, "serve_load: twin replay index out of range\n");
        return 2;
      }
      endorsed = read.state->trees[event.tree_index];
    }
    if (!twin.q->ApplyFeedback(event.view_id, endorsed).ok()) {
      std::fprintf(stderr, "serve_load: twin replay failed\n");
      return 2;
    }
  }
  for (std::size_t i = 0; i < serving.view_ids.size(); ++i) {
    std::string label = "async vs sync twin, view " + std::to_string(i);
    if (!SameViewState(*q.ReadView(serving.view_ids[i]).state,
                       *twin.q->ReadView(twin.view_ids[i]).state,
                       label.c_str(),
                       /*compare_edges=*/load.register_mix == 0.0)) {
      return 2;
    }
  }
  std::printf("differential: %zu replayed feedback events, %zu views "
              "bit-identical\n",
              log.size(), serving.view_ids.size());

  // --- JSON ----------------------------------------------------------------
  FILE* json = OpenBenchJson(load.json_path);
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", load.json_path);
    return 1;
  }
  auto emit = [json](const char* kernel, std::uint64_t n, double value) {
    std::fprintf(json, "{\"kernel\":\"%s\",\"n\":%llu,\"median_us\":%.3f}\n",
                 kernel, static_cast<unsigned long long>(n), value);
  };
  emit("serve_load_query_p50_us", total.query_ops, q_p50);
  emit("serve_load_query_p95_us", total.query_ops, q_p95);
  emit("serve_load_query_p99_us", total.query_ops, q_p99);
  emit("serve_load_read_p99_us", total.read_ops, r_p99);
  emit("serve_load_ops_per_sec", total_ops, ops_per_sec);
  if (load.extra_sources > 0) {
    // Ungated context: per-worker solver scratch residency at catalog
    // scale (the --sources footprint gate above enforces the bound).
    emit("serve_load_scratch_peak_bytes",
         static_cast<std::uint64_t>(load.readers),
         static_cast<double>(scratch_peak));
  }
  std::fclose(json);
  return 0;
}

}  // namespace
}  // namespace q::bench

int main(int argc, char** argv) {
  q::bench::LoadConfig load;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--smoke") == 0) {
      load.smoke = true;
      load.duration_ms = 500;
      load.num_views = 8;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      load.json_path = arg + 7;
    } else if (std::strncmp(arg, "--readers=", 10) == 0) {
      load.readers = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--duration-ms=", 14) == 0) {
      load.duration_ms = std::atoi(arg + 14);
    } else if (std::strncmp(arg, "--writer-pause-ms=", 18) == 0) {
      load.writer_pause_ms = std::atoi(arg + 18);
    } else if (std::strncmp(arg, "--read-mix=", 11) == 0) {
      load.read_mix = std::atof(arg + 11);
    } else if (std::strncmp(arg, "--register-mix=", 15) == 0) {
      load.register_mix = std::atof(arg + 15);
    } else if (std::strncmp(arg, "--views=", 8) == 0) {
      load.num_views = static_cast<std::size_t>(std::atoi(arg + 8));
    } else if (std::strncmp(arg, "--zipf-theta=", 13) == 0) {
      load.zipf_theta = std::atof(arg + 13);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      load.seed = static_cast<std::uint64_t>(std::atoll(arg + 7));
    } else if (std::strncmp(arg, "--sources=", 10) == 0) {
      load.extra_sources = static_cast<std::size_t>(std::atoll(arg + 10));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json=PATH] [--smoke] [--readers=N] "
                   "[--duration-ms=N] [--writer-pause-ms=N] [--read-mix=F] "
                   "[--register-mix=F] [--views=N] [--zipf-theta=F] "
                   "[--seed=N] [--sources=N]\n",
                   argv[0]);
      return 1;
    }
  }
  if (load.readers < 1 || load.num_views < 2 || load.duration_ms < 1) {
    std::fprintf(stderr, "serve_load: invalid config\n");
    return 1;
  }
  return q::bench::Run(load);
}
