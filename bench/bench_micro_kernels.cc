// Micro-benchmarks (google-benchmark) for the hot kernels behind the
// paper's experiments: top-k Steiner search, MAD propagation, query-graph
// expansion, conjunctive-query execution, and alpha-neighborhood
// Dijkstra. Not tied to a specific paper table; used to track regressions.
#include <benchmark/benchmark.h>

#include "data/interpro_go.h"
#include "graph/graph_builder.h"
#include "match/mad_matcher.h"
#include "query/conjunctive_query.h"
#include "query/executor.h"
#include "query/query_graph.h"
#include "steiner/top_k.h"
#include "text/text_index.h"

namespace {

struct Fixture {
  q::data::InterProGoDataset dataset;
  q::graph::FeatureSpace space;
  std::unique_ptr<q::graph::CostModel> model;
  q::graph::SearchGraph graph;
  std::unique_ptr<q::graph::WeightVector> weights;
  q::text::TextIndex index;

  Fixture() {
    q::data::InterProGoConfig config;
    config.declare_foreign_keys = true;
    dataset = q::data::BuildInterProGo(config);
    model = std::make_unique<q::graph::CostModel>(&space,
                                                  q::graph::CostModelConfig{});
    graph = q::graph::BuildSearchGraph(dataset.catalog, model.get());
    weights = std::make_unique<q::graph::WeightVector>(&space);
    index.IndexCatalog(dataset.catalog);
  }
};

Fixture& SharedFixture() {
  static Fixture* fixture = new Fixture;
  return *fixture;
}

void BM_QueryGraphExpansion(benchmark::State& state) {
  Fixture& f = SharedFixture();
  for (auto _ : state) {
    auto qg = q::query::BuildQueryGraph(
        f.graph, f.index, {"plasma membrane", "pub title"}, f.model.get(),
        *f.weights, q::query::QueryGraphOptions{});
    benchmark::DoNotOptimize(qg);
  }
}
BENCHMARK(BM_QueryGraphExpansion);

void BM_TopKSteiner(benchmark::State& state) {
  Fixture& f = SharedFixture();
  auto qg = q::query::BuildQueryGraph(
      f.graph, f.index, {"plasma membrane", "pub title"}, f.model.get(),
      *f.weights, q::query::QueryGraphOptions{});
  Q_CHECK_OK(qg.status());
  q::steiner::TopKConfig config;
  config.k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto trees = q::steiner::TopKSteinerTrees(qg->graph, *f.weights,
                                              qg->keyword_nodes, config);
    benchmark::DoNotOptimize(trees);
  }
}
BENCHMARK(BM_TopKSteiner)->Arg(1)->Arg(5)->Arg(10);

void BM_AlphaNeighborhoodDijkstra(benchmark::State& state) {
  Fixture& f = SharedFixture();
  auto rel = f.graph.FindRelationNode("interpro.pub");
  Q_CHECK(rel.has_value());
  for (auto _ : state) {
    auto dist = f.graph.Dijkstra({{*rel, 0.0}}, *f.weights, 3.0);
    benchmark::DoNotOptimize(dist);
  }
}
BENCHMARK(BM_AlphaNeighborhoodDijkstra);

void BM_MadPropagation(benchmark::State& state) {
  Fixture& f = SharedFixture();
  std::vector<const q::relational::Table*> tables;
  for (const auto& t : f.dataset.catalog.AllTables()) {
    tables.push_back(t.get());
  }
  for (auto _ : state) {
    q::match::MadMatcher matcher;
    auto result = matcher.InduceAlignments(tables, 2);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_MadPropagation);

void BM_ConjunctiveQueryExecution(benchmark::State& state) {
  Fixture& f = SharedFixture();
  q::query::ConjunctiveQuery cq;
  cq.atoms = {"go.go_term", "interpro.interpro2go", "interpro.entry"};
  cq.joins = {
      {q::relational::AttributeId{"go", "go_term", "acc"},
       q::relational::AttributeId{"interpro", "interpro2go", "go_id"}},
      {q::relational::AttributeId{"interpro", "interpro2go", "entry_ac"},
       q::relational::AttributeId{"interpro", "entry", "entry_ac"}}};
  cq.select_list = {
      {q::relational::AttributeId{"go", "go_term", "name"}, "name"},
      {q::relational::AttributeId{"interpro", "entry", "name"},
       "entry_name"}};
  q::query::Executor executor(&f.dataset.catalog);
  for (auto _ : state) {
    auto rows = executor.Execute(cq);
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_ConjunctiveQueryExecution);

void BM_TextIndexSearch(benchmark::State& state) {
  Fixture& f = SharedFixture();
  for (auto _ : state) {
    auto results = f.index.Search("plasma membrane kinase", 0.1, 16);
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_TextIndexSearch);

}  // namespace

BENCHMARK_MAIN();
