// Micro-benchmarks for the hot kernels behind the paper's experiments:
// top-k Steiner search (legacy SteinerProblem rebuild vs the CSR fast
// path, with and without the shortest-path cache and the thread pool),
// MAD propagation, query-graph expansion, conjunctive-query execution,
// and alpha-neighborhood Dijkstra.
//
// Emits a human-readable table on stdout and machine-readable JSON lines
// ({"kernel":..., "n":..., "median_us":...}) to --json=PATH (default
// bench/out/BENCH_micro_kernels.json) so the perf trajectory is trackable across
// PRs. The Steiner section also cross-checks that every fast-path
// configuration reproduces the legacy engine's trees and exits non-zero
// on mismatch, so a perf run doubles as a correctness smoke test.
//
// Usage: bench_micro_kernels [--json=PATH] [--smoke]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "data/interpro_go.h"
#include "graph/graph_builder.h"
#include "match/mad_matcher.h"
#include "query/conjunctive_query.h"
#include "query/executor.h"
#include "query/query_graph.h"
#include "steiner/top_k.h"
#include "text/text_index.h"
#include "util/random.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

bool g_smoke = false;

// Runs `fn` once to warm up, then enough times (at most `max_reps`) to
// spend roughly a fixed budget, and returns the median duration.
double MedianMicros(const std::function<void()>& fn, int max_reps = 25) {
  q::util::WallTimer warmup;
  fn();
  double warmup_us = warmup.ElapsedMicros();
  double budget_us = g_smoke ? 2e5 : 2e6;
  int reps = warmup_us > 0.0 ? static_cast<int>(budget_us / warmup_us) : max_reps;
  reps = std::max(3, std::min(reps, g_smoke ? 5 : max_reps));
  std::vector<double> us;
  us.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    q::util::WallTimer timer;
    fn();
    us.push_back(timer.ElapsedMicros());
  }
  std::sort(us.begin(), us.end());
  return us[us.size() / 2];
}

struct Reporter {
  FILE* json = nullptr;

  double Run(const std::string& kernel, std::size_t n,
             const std::function<void()>& fn) {
    double median = MedianMicros(fn);
    std::printf("%-28s n=%-7zu median_us=%12.1f\n", kernel.c_str(), n,
                median);
    std::fflush(stdout);
    if (json != nullptr) {
      std::fprintf(json, "{\"kernel\":\"%s\",\"n\":%zu,\"median_us\":%.3f}\n",
                   kernel.c_str(), n, median);
      std::fflush(json);
    }
    return median;
  }
};

// ---------------------------------------------------------------------------
// Synthetic Steiner workload: a 1k-node random connected graph with
// distinct edge costs (one feature per edge), 4 keyword terminals, k=10.
// ---------------------------------------------------------------------------

struct SteinerFixture {
  q::graph::FeatureSpace space;
  q::graph::SearchGraph graph;
  std::unique_ptr<q::graph::WeightVector> weights;
  std::vector<q::graph::NodeId> terminals;

  SteinerFixture(std::size_t n, std::size_t m, std::size_t t,
                 std::uint64_t seed) {
    q::util::Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
      graph.AddNode(q::graph::NodeKind::kAttribute, "n" + std::to_string(i));
    }
    weights = std::make_unique<q::graph::WeightVector>(&space);
    auto add_edge = [&](q::graph::NodeId u, q::graph::NodeId v) {
      q::graph::Edge e;
      e.u = u;
      e.v = v;
      e.kind = q::graph::EdgeKind::kAssociation;
      q::graph::FeatureVec f;
      f.Add(space.Intern("e" + std::to_string(graph.num_edges()),
                         0.1 + rng.UniformDouble() * 2.0),
            1.0);
      e.features = std::move(f);
      graph.AddEdge(std::move(e));
    };
    // Random spanning tree first so the graph is connected, then extras.
    for (std::size_t i = 1; i < n; ++i) {
      add_edge(static_cast<q::graph::NodeId>(rng.Uniform(i)),
               static_cast<q::graph::NodeId>(i));
    }
    while (graph.num_edges() < m) {
      auto u = static_cast<q::graph::NodeId>(rng.Uniform(n));
      auto v = static_cast<q::graph::NodeId>(rng.Uniform(n));
      if (u != v) add_edge(u, v);
    }
    while (terminals.size() < t) {
      auto c = static_cast<q::graph::NodeId>(rng.Uniform(n));
      if (std::find(terminals.begin(), terminals.end(), c) ==
          terminals.end()) {
        terminals.push_back(c);
      }
    }
  }
};

bool SameTrees(const std::vector<q::steiner::SteinerTree>& a,
               const std::vector<q::steiner::SteinerTree>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].edges != b[i].edges) return false;
    if (std::abs(a[i].cost - b[i].cost) > 1e-9) return false;
  }
  return true;
}

// Benchmarks one solver family (exact or KMB) across engine configs and
// verifies every fast configuration against the legacy baseline. Returns
// false on a correctness mismatch.
bool BenchTopK(Reporter& report, const SteinerFixture& f, bool approximate,
               const std::string& tag, q::util::ThreadPool* pool) {
  q::steiner::TopKConfig config;
  config.k = 10;
  config.approximate = approximate;

  auto run = [&](q::steiner::SteinerEngine engine, bool cache,
                 q::util::ThreadPool* p) {
    q::steiner::TopKConfig c = config;
    c.engine = engine;
    c.use_sp_cache = cache;
    c.pool = p;
    return q::steiner::TopKSteinerTrees(f.graph, *f.weights, f.terminals, c);
  };

  auto legacy = run(q::steiner::SteinerEngine::kLegacy, false, nullptr);
  struct Variant {
    const char* name;
    bool cache;
    q::util::ThreadPool* pool;
  };
  const Variant variants[] = {
      {"fast", true, nullptr},
      {"fast_nocache", false, nullptr},
      {"fast_pool", true, pool},
  };
  bool ok = true;
  for (const Variant& v : variants) {
    auto trees = run(q::steiner::SteinerEngine::kFast, v.cache, v.pool);
    if (!SameTrees(legacy, trees)) {
      std::printf("MISMATCH: %s_%s differs from legacy output\n", tag.c_str(),
                  v.name);
      ok = false;
    }
  }

  std::size_t n = f.graph.num_nodes();
  double legacy_us = report.Run(tag + "_legacy", n, [&] {
    auto trees = run(q::steiner::SteinerEngine::kLegacy, false, nullptr);
    (void)trees;
  });
  double fast_us = 0.0;
  for (const Variant& v : variants) {
    double us = report.Run(tag + "_" + v.name, n, [&] {
      auto trees = run(q::steiner::SteinerEngine::kFast, v.cache, v.pool);
      (void)trees;
    });
    if (std::strcmp(v.name, "fast") == 0) fast_us = us;
  }
  if (fast_us > 0.0) {
    std::printf("%-28s speedup=%.2fx (legacy/fast), output %s\n",
                (tag + "_speedup").c_str(), legacy_us / fast_us,
                ok ? "verified identical" : "MISMATCH");
  }
  return ok;
}

// ---------------------------------------------------------------------------
// InterPro-GO fixture for the non-Steiner kernels (as before).
// ---------------------------------------------------------------------------

struct Fixture {
  q::data::InterProGoDataset dataset;
  q::graph::FeatureSpace space;
  std::unique_ptr<q::graph::CostModel> model;
  q::graph::SearchGraph graph;
  std::unique_ptr<q::graph::WeightVector> weights;
  q::text::TextIndex index;

  Fixture() {
    q::data::InterProGoConfig config;
    config.declare_foreign_keys = true;
    dataset = q::data::BuildInterProGo(config);
    model = std::make_unique<q::graph::CostModel>(&space,
                                                  q::graph::CostModelConfig{});
    graph = q::graph::BuildSearchGraph(dataset.catalog, model.get());
    weights = std::make_unique<q::graph::WeightVector>(&space);
    index.IndexCatalog(dataset.catalog);
  }
};

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = "bench/out/BENCH_micro_kernels.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      g_smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--json=PATH] [--smoke]\n", argv[0]);
      return 2;
    }
  }

  Reporter report;
  report.json = q::bench::OpenBenchJson(json_path);
  if (report.json == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path);
    return 2;
  }

  bool ok = true;
  {
    q::util::ThreadPool pool;
    SteinerFixture kmb_fixture(1000, 3000, 4, /*seed=*/42);
    ok = BenchTopK(report, kmb_fixture, /*approximate=*/true,
                   "topk_steiner_kmb", &pool) &&
         ok;
    // The exact DP is the default solver below the approximate_above_nodes
    // threshold; a smaller graph keeps its 2^t x n tables comparable.
    SteinerFixture exact_fixture(1000, 2200, 4, /*seed=*/7);
    ok = BenchTopK(report, exact_fixture, /*approximate=*/false,
                   "topk_steiner_exact", &pool) &&
         ok;
  }

  Fixture f;
  report.Run("query_graph_expansion", f.graph.num_nodes(), [&] {
    auto qg = q::query::BuildQueryGraph(
        f.graph, f.index, {"plasma membrane", "pub title"}, f.model.get(),
        *f.weights, q::query::QueryGraphOptions{});
    (void)qg;
  });

  {
    auto rel = f.graph.FindRelationNode("interpro.pub");
    Q_CHECK(rel.has_value());
    report.Run("alpha_dijkstra", f.graph.num_nodes(), [&] {
      auto dist = f.graph.Dijkstra({{*rel, 0.0}}, *f.weights, 3.0);
      (void)dist;
    });
  }

  {
    std::vector<const q::relational::Table*> tables;
    for (const auto& t : f.dataset.catalog.AllTables()) {
      tables.push_back(t.get());
    }
    report.Run("mad_propagation", tables.size(), [&] {
      q::match::MadMatcher matcher;
      auto result = matcher.InduceAlignments(tables, 2);
      (void)result;
    });
  }

  {
    q::query::ConjunctiveQuery cq;
    cq.atoms = {"go.go_term", "interpro.interpro2go", "interpro.entry"};
    cq.joins = {
        {q::relational::AttributeId{"go", "go_term", "acc"},
         q::relational::AttributeId{"interpro", "interpro2go", "go_id"}},
        {q::relational::AttributeId{"interpro", "interpro2go", "entry_ac"},
         q::relational::AttributeId{"interpro", "entry", "entry_ac"}}};
    cq.select_list = {
        {q::relational::AttributeId{"go", "go_term", "name"}, "name"},
        {q::relational::AttributeId{"interpro", "entry", "name"},
         "entry_name"}};
    q::query::Executor executor(&f.dataset.catalog);
    report.Run("cq_execution", f.dataset.catalog.AllTables().size(), [&] {
      auto rows = executor.Execute(cq);
      (void)rows;
    });
  }

  report.Run("text_index_search", f.graph.num_nodes(), [&] {
    auto results = f.index.Search("plasma membrane kinase", 0.1, 16);
    (void)results;
  });

  std::fclose(report.json);
  std::printf("json written to %s\n", json_path);
  return ok ? 0 : 1;
}
