// Table 1: precision / recall / F-measure of the top-Y alignment edges
// (per node) induced by the metadata (COMA++-style) matcher and the MAD
// matcher, for Y in {1, 2, 5}, against the Fig. 9 gold standard. Paper
// shape: MAD reaches 100% recall by Y=2; the metadata-only matcher
// plateaus below full recall however large Y grows.
#include "match/mad_matcher.h"

#include "bench_common.h"

int main() {
  q::bench::PrintHeader(
      "Table 1 — top-Y alignment quality per matcher",
      "SIGMOD'10 Table 1, InterPro-GO dataset (Fig. 9 gold standard)");

  auto dataset = q::data::BuildInterProGo(q::bench::QualityDatasetConfig());
  std::vector<const q::relational::Table*> tables;
  for (const auto& t : dataset.catalog.AllTables()) tables.push_back(t.get());

  std::printf("%-4s %-10s %10s %10s %12s %10s\n", "Y", "System",
              "Precision", "Recall", "F-measure", "edges");
  for (int y : {1, 2, 5}) {
    q::match::MetadataMatcher metadata;
    auto metadata_result = metadata.InduceAlignments(tables, y);
    Q_CHECK_OK(metadata_result.status());
    auto pr_meta =
        q::learn::EvaluateCandidates(*metadata_result, dataset.gold_edges);

    q::match::MadMatcher mad;
    auto mad_result = mad.InduceAlignments(tables, y);
    Q_CHECK_OK(mad_result.status());
    auto pr_mad =
        q::learn::EvaluateCandidates(*mad_result, dataset.gold_edges);

    std::printf("%-4d %-10s %10.2f %10.2f %12.2f %10zu\n", y, "COMA-like",
                100 * pr_meta.precision(), 100 * pr_meta.recall(),
                100 * pr_meta.f1(), pr_meta.predicted);
    std::printf("%-4s %-10s %10.2f %10.2f %12.2f %10zu\n", "", "MAD",
                100 * pr_mad.precision(), 100 * pr_mad.recall(),
                100 * pr_mad.f1(), pr_mad.predicted);
  }

  q::match::MadMatcher info_run;
  Q_CHECK_OK(info_run.InduceAlignments(tables, 2).status());
  std::printf(
      "\nMAD propagation graph: %zu nodes, %zu edges, %d iterations\n",
      info_run.last_run().graph_nodes, info_run.last_run().graph_edges,
      info_run.last_run().iterations);
  return 0;
}
