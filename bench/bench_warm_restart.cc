// Cold start vs warm restart (docs/persistence.md warm-restart contract),
// measured on the Sec. 5.1.2 scaling setup: a small InterPro-GO base grown
// with N two-attribute synthetic sources.
//
// Boot-time kernels (time until the system can accept queries):
//   warm_restart_cold_boot_N    re-ingest every source, matcher bootstrap
//                               over the base, then replay the recorded
//                               association candidates. This is the
//                               *charitable* cold path: it assumes a
//                               perfect external log of the associations
//                               the matchers + feedback loop discovered.
//   warm_restart_realign_N      the honest no-snapshot recovery: re-ingest
//                               everything and re-run the full-catalog
//                               matcher bootstrap (RunInitialAlignment) to
//                               rediscover associations from scratch. The
//                               bootstrap is superlinear in catalog size
//                               (all-pairs attribute matching), so this is
//                               only measured at n <= realign cap — at 10k
//                               sources it is exactly the hours-scale cost
//                               the snapshot exists to skip.
//   warm_restart_warm_boot_N    QSystem::OpenFromSnapshot: decode + verify
//                               checksums + rebuild indexes. No alignment,
//                               no MAD; associations and learned weights
//                               come back as data.
//   warm_restart_save_N         SaveSnapshot (quiesce + encode + fsync).
//
// First-query kernels (lazy view creation; the warm-restart contract says
// views are *not* persisted, so both sides pay this on first use — the
// pair demonstrates parity, not speedup):
//   warm_restart_first_query_cold_N / warm_restart_first_query_warm_N
//
// Speedup lines:
//   warm_restart_speedup          cold_boot / warm_boot (gated in
//                                 scripts/check.sh: must stay >= 1)
//   warm_restart_realign_speedup  realign / warm_boot, where measured
//
// Correctness gate: the warm system's restore must report complete() and
// its lazily recreated view must be bit-identical (costs + row values) to
// the cold system's — the binary exits non-zero otherwise.
//
// Usage: bench_warm_restart [--json=PATH] [--smoke] [--scales=N,M,...]
//   --smoke runs 200/2000; the full run 400/1000/10000. (n=1000 sits near
//   the cold-replay/warm crossover, so the gated smoke scales bracket it.)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/q_system.h"
#include "data/interpro_go.h"
#include "data/synthetic.h"
#include "match/matcher.h"
#include "persist/snapshot.h"
#include "util/env.h"
#include "util/random.h"
#include "util/timer.h"

namespace {

bool g_smoke = false;

// The full-catalog matcher bootstrap is roughly quadratic in the number
// of attributes (measured: 137ms at n=100, 558ms at 200, 2.3s at 400),
// so the honest-recovery kernel is only run up to this scale.
constexpr std::size_t kRealignCap = 400;

q::data::InterProGoConfig BaseDataset() {
  q::data::InterProGoConfig config;
  config.num_go_terms = 60;
  config.num_entries = 45;
  config.num_pubs = 40;
  config.num_journals = 8;
  config.num_methods = 30;
  config.interpro2go_links = 90;
  config.entry2pub_links = 80;
  config.method2pub_links = 60;
  return config;
}

struct Workload {
  q::data::InterProGoDataset dataset;
  // Pre-built synthetic sources: generation cost is "the crawler's", not
  // the system's, so it stays outside both timed paths.
  std::vector<std::shared_ptr<q::relational::DataSource>> synthetic;
  // Two association candidates per synthetic source, wired to random
  // attributes that exist by the time the source is registered.
  std::vector<q::match::AlignmentCandidate> candidates;
  std::vector<std::string> keywords;
};

Workload MakeWorkload(std::size_t num_synthetic, std::uint64_t seed) {
  Workload w;
  w.dataset = q::data::BuildInterProGo(BaseDataset());
  w.keywords = w.dataset.keyword_queries[0];

  // The growing pool of attributes a new source may attach to, as in
  // GrowWithSyntheticSources.
  std::vector<q::relational::AttributeId> attrs;
  for (const auto& src : w.dataset.catalog.sources()) {
    for (const auto& table : src->tables()) {
      const auto& schema = table->schema();
      for (std::size_t a = 0; a < schema.num_attributes(); ++a) {
        attrs.push_back(schema.IdOf(a));
      }
    }
  }

  q::util::Rng rng(seed);
  for (std::size_t i = 0; i < num_synthetic; ++i) {
    std::string name = "syn" + std::to_string(i);
    w.synthetic.push_back(
        q::data::MakeSyntheticSource(name, /*rows=*/3, &rng));
    const auto& schema = w.synthetic.back()->tables()[0]->schema();
    for (std::size_t a = 0; a < schema.num_attributes(); ++a) {
      q::match::AlignmentCandidate c;
      c.a = schema.IdOf(a);
      c.b = attrs[rng.Uniform(attrs.size())];
      c.confidence = 0.5;
      c.matcher = "synthetic";
      w.candidates.push_back(c);
      attrs.push_back(schema.IdOf(a));
    }
  }
  return w;
}

q::core::QSystemConfig SystemConfig() {
  q::core::QSystemConfig config;
  // Match the quality benches' view setup so the first view is selective
  // enough to exercise association edges.
  config.view.query_graph.min_similarity = 0.5;
  config.view.query_graph.max_matches_per_keyword = 6;
  return config;
}

void RegisterAll(q::core::QSystem* q, const Workload& w) {
  for (const auto& src : w.dataset.catalog.sources()) {
    Q_CHECK_OK(q->RegisterSource(src));
  }
  for (const auto& src : w.synthetic) {
    Q_CHECK_OK(q->RegisterSource(src));
  }
}

// The charitable cold boot: ingest everything, bootstrap matchers over
// the base only, replay the recorded association candidates.
std::unique_ptr<q::core::QSystem> ColdBoot(const Workload& w) {
  auto q = std::make_unique<q::core::QSystem>(SystemConfig());
  for (const auto& src : w.dataset.catalog.sources()) {
    Q_CHECK_OK(q->RegisterSource(src));
  }
  Q_CHECK_OK(q->RunInitialAlignment());
  for (const auto& src : w.synthetic) {
    Q_CHECK_OK(q->RegisterSource(src));
  }
  Q_CHECK_OK(q->AddAssociations(w.candidates));
  return q;
}

// The honest no-snapshot recovery: ingest everything, then rediscover
// associations with the full-catalog matcher bootstrap.
std::unique_ptr<q::core::QSystem> RealignBoot(const Workload& w) {
  auto q = std::make_unique<q::core::QSystem>(SystemConfig());
  RegisterAll(q.get(), w);
  Q_CHECK_OK(q->RunInitialAlignment());
  return q;
}

std::vector<std::pair<double, std::string>> ViewRows(
    const q::core::QSystem& q, std::size_t view_id) {
  std::vector<std::pair<double, std::string>> rows;
  for (const auto& row : q.view(view_id).results().rows) {
    std::string values;
    for (const auto& v : row.values) values += v.ToText() + "|";
    rows.emplace_back(row.cost, std::move(values));
  }
  return rows;
}

double Median(std::vector<double>* xs) {
  std::sort(xs->begin(), xs->end());
  return (*xs)[xs->size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = "bench/out/BENCH_warm_restart.json";
  std::vector<std::size_t> scales;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      g_smoke = true;
    } else if (std::strncmp(argv[i], "--scales=", 9) == 0) {
      const char* p = argv[i] + 9;
      while (*p != '\0') {
        scales.push_back(std::strtoull(p, const_cast<char**>(&p), 10));
        if (*p == ',') ++p;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json=PATH] [--smoke] [--scales=N,M]\n",
                   argv[0]);
      return 1;
    }
  }
  if (scales.empty()) {
    scales = g_smoke ? std::vector<std::size_t>{200, 2000}
                     : std::vector<std::size_t>{400, 1000, 10000};
  }

  FILE* json = q::bench::OpenBenchJson(json_path);
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path);
    return 1;
  }
  auto emit = [&](const std::string& kernel, std::size_t n, double us) {
    std::printf("%-32s n=%-7zu median_us=%12.1f\n", kernel.c_str(), n, us);
    std::fprintf(json, "{\"kernel\":\"%s\",\"n\":%zu,\"median_us\":%.3f}\n",
                 kernel.c_str(), n, us);
    std::fflush(json);
  };
  auto emit_ratio = [&](const std::string& kernel, std::size_t n,
                        double ratio) {
    std::printf("%-32s n=%-7zu ratio=%8.2fx\n", kernel.c_str(), n, ratio);
    std::fprintf(json, "{\"kernel\":\"%s\",\"n\":%zu,\"ratio\":%.3f}\n",
                 kernel.c_str(), n, ratio);
    std::fflush(json);
  };

  q::bench::PrintHeader(
      "cold start vs warm restart (snapshot + lazy view repair)",
      "docs/persistence.md warm-restart contract; Sec. 5.1.2 scaling setup");

  for (std::size_t n : scales) {
    Workload w = MakeWorkload(n, /*seed=*/1234 + n);
    std::string dir =
        "bench/out/warm_restart_" + std::to_string(n) + ".snapshot";
    (void)q::util::DefaultEnv()->RemoveFile(
        q::persist::SnapshotFilePath(dir));
    // Boot times are tens of milliseconds, so even smoke runs can afford
    // a median of 3; only the 10k full-run scale drops to a single rep.
    const int reps = n >= 10000 ? 1 : 3;

    std::vector<double> cold_us, save_us, warm_us, fq_cold_us, fq_warm_us;
    for (int rep = 0; rep < reps; ++rep) {
      q::util::WallTimer cold_timer;
      auto cold = ColdBoot(w);
      cold_us.push_back(cold_timer.ElapsedMicros());

      q::util::WallTimer fq_cold_timer;
      auto cold_view = cold->CreateView(w.keywords);
      Q_CHECK_OK(cold_view.status());
      fq_cold_us.push_back(fq_cold_timer.ElapsedMicros());
      auto cold_rows = ViewRows(*cold, *cold_view);

      q::util::WallTimer save_timer;
      Q_CHECK_OK(cold->SaveSnapshot(dir));
      save_us.push_back(save_timer.ElapsedMicros());

      q::persist::SnapshotLoadReport report;
      q::util::WallTimer warm_timer;
      auto restored = q::core::QSystem::OpenFromSnapshot(dir, SystemConfig(),
                                                         nullptr, &report);
      Q_CHECK_OK(restored.status());
      warm_us.push_back(warm_timer.ElapsedMicros());
      if (!report.complete()) {
        std::fprintf(stderr, "FAIL: warm restore not complete:\n%s\n",
                     report.Summary().c_str());
        return 2;
      }

      q::util::WallTimer fq_warm_timer;
      auto warm_view = (*restored)->CreateView(w.keywords);
      Q_CHECK_OK(warm_view.status());
      fq_warm_us.push_back(fq_warm_timer.ElapsedMicros());

      auto warm_rows = ViewRows(**restored, *warm_view);
      if (warm_rows != cold_rows) {
        std::fprintf(stderr,
                     "FAIL: warm view diverged from cold view at n=%zu "
                     "(%zu vs %zu rows)\n",
                     n, warm_rows.size(), cold_rows.size());
        return 2;
      }
    }

    std::string suffix = std::to_string(n);
    double cold_med = Median(&cold_us);
    double warm_med = Median(&warm_us);
    emit("warm_restart_cold_boot_" + suffix, n, cold_med);
    if (n <= kRealignCap) {
      // One rep: this kernel exists to show the asymptote the snapshot
      // avoids, not to be a tight measurement.
      q::util::WallTimer realign_timer;
      auto realigned = RealignBoot(w);
      double realign_us = realign_timer.ElapsedMicros();
      emit("warm_restart_realign_" + suffix, n, realign_us);
      if (warm_med > 0.0) {
        emit_ratio("warm_restart_realign_speedup", n, realign_us / warm_med);
      }
    }
    emit("warm_restart_save_" + suffix, n, Median(&save_us));
    emit("warm_restart_warm_boot_" + suffix, n, warm_med);
    emit("warm_restart_first_query_cold_" + suffix, n, Median(&fq_cold_us));
    emit("warm_restart_first_query_warm_" + suffix, n, Median(&fq_warm_us));
    emit_ratio("warm_restart_speedup", n,
               warm_med > 0.0 ? cold_med / warm_med : 0.0);
  }

  std::fclose(json);
  std::printf("json written to %s\n", json_path);
  return 0;
}
