// Batched view refresh vs N independent refreshes (the feedback loop's
// hot path): after a weight-only update, the RefreshEngine re-costs each
// view's CSR snapshot in place and skips query-graph re-expansion, while
// the independent path re-copies the search graph, re-runs text-index
// matching, and re-extracts CSR topology per view. Measures both on a
// GBCO search graph grown with synthetic sources (the Sec. 5.1.2 scaling
// setup) and verifies the outputs are bit-identical before timing.
//
// Also measures the feedback-delta scenario: a sparse MIRA-style update
// touching <1% of features, applied to the same views once through the
// delta re-cost pipeline (feature->edge postings + RecostDelta +
// selective SP-cache invalidation) and once through the wholesale
// in-place Recost (forced by truncating the weight journal), so the two
// kernels isolate exactly the delta-vs-full re-cost strategy.
//
// Also measures the feedback-ack scenario (the async refresh contract):
// 64 open views, one user's MIRA endorsement per round; synchronous mode
// repairs every affected view before ApplyFeedback returns, async mode
// returns after journal append + relevance classification and repairs in
// the background. The ack-latency ratio should track roughly
// #affected / #total views. Quiescent async output is verified
// bit-identical to the synchronous twin before timing.
//
// Emits JSON lines to --json=PATH (default
// bench/out/BENCH_view_refresh.json):
//   {"kernel":"view_refresh_independent_8","n":...,"median_us":...}
//   {"kernel":"view_refresh_batched_8","n":...,"median_us":...}
//   {"kernel":"view_refresh_speedup","n":8,"ratio":...}
//   {"kernel":"view_refresh_full_recost_8","n":...,"median_us":...}
//   {"kernel":"view_refresh_delta_recost_8","n":...,"median_us":...}
//   {"kernel":"view_refresh_delta_speedup","n":8,"ratio":...}
//   {"kernel":"view_refresh_unscoped_64","n":...,"median_us":...}
//   {"kernel":"view_refresh_scoped_64","n":...,"median_us":...}
//   {"kernel":"view_refresh_relevance_speedup","n":64,"ratio":...}
//   {"kernel":"feedback_ack_sync_64","n":...,"median_us":...}
//   {"kernel":"feedback_ack_async_64","n":...,"median_us":...}
//   {"kernel":"feedback_ack_speedup","n":64,"ratio":...}
// Exits non-zero if batched/delta/async and reference outputs diverge.
//
// Usage: bench_view_refresh [--json=PATH] [--smoke] [--views=N]
//        [--synthetic=N]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/q_system.h"
#include "core/refresh_engine.h"
#include "data/gbco.h"
#include "data/synthetic.h"
#include "graph/graph_builder.h"
#include "query/view.h"
#include "steiner/top_k.h"
#include "text/text_index.h"
#include "util/random.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

bool g_smoke = false;

double MedianMicros(const std::function<void()>& fn, int max_reps = 15) {
  q::util::WallTimer warmup;
  fn();
  double warmup_us = warmup.ElapsedMicros();
  double budget_us = g_smoke ? 3e5 : 2e6;
  int reps =
      warmup_us > 0.0 ? static_cast<int>(budget_us / warmup_us) : max_reps;
  reps = std::max(3, std::min(reps, g_smoke ? 5 : max_reps));
  std::vector<double> us;
  us.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    q::util::WallTimer timer;
    fn();
    us.push_back(timer.ElapsedMicros());
  }
  std::sort(us.begin(), us.end());
  return us[us.size() / 2];
}

struct WorkloadOptions {
  std::size_t num_views = 8;
  std::size_t synthetic_sources = 2000;
  std::size_t base_rows = 400;
  // Exact DP substrate instead of KMB: slower searches, but enumerations
  // emit valid relevance certificates (the alpha-neighborhood gate only
  // certifies provably-exact output; see docs/query_engine.md).
  bool exact = false;
  // Trial index per view, cycled when shorter than num_views.
  std::vector<std::size_t> trial_plan = {0, 1, 2, 3, 5, 6, 0, 2};
};

// The refresh workload: a GBCO catalog grown with synthetic sources, N
// persistent views over the trial keyword queries, and a RefreshEngine
// holding one CSR snapshot per view.
struct Workload {
  q::relational::Catalog catalog;
  q::graph::FeatureSpace space;
  std::unique_ptr<q::graph::CostModel> model;
  q::graph::SearchGraph graph;
  std::unique_ptr<q::graph::WeightVector> weights;
  q::text::TextIndex index;
  std::unique_ptr<q::util::ThreadPool> pool;
  std::vector<std::unique_ptr<q::query::TopKView>> views;
  q::core::RefreshEngine engine;

  explicit Workload(const WorkloadOptions& opt) {
    q::data::GbcoConfig config;
    // More rows per relation = a proportionally bigger text index, which
    // is what the per-view query-graph re-expansion pays for and the
    // batched weight-only path skips.
    config.base_rows = opt.base_rows;
    auto dataset = q::data::BuildGbco(config);
    for (const auto& src : dataset.catalog.sources()) {
      Q_CHECK_OK(catalog.AddSource(src));
    }
    model = std::make_unique<q::graph::CostModel>(&space,
                                                  q::graph::CostModelConfig{});
    graph = q::graph::BuildSearchGraph(catalog, model.get());
    weights = std::make_unique<q::graph::WeightVector>(&space);
    index.IndexCatalog(catalog);

    q::util::Rng rng(2010);
    Q_CHECK_OK(q::data::GrowWithSyntheticSources(
        opt.synthetic_sources, q::data::SyntheticGrowthOptions{}, &rng,
        &catalog, model.get(), &graph));

    unsigned hw = std::thread::hardware_concurrency();
    if (hw > 1) {
      pool = std::make_unique<q::util::ThreadPool>(static_cast<int>(hw));
      engine.set_pool(pool.get());
    }

    q::query::ViewConfig vconfig;
    vconfig.top_k.k = 3;
    // Large grown graphs are the KMB regime (Sec. 2.2); the exact DP at
    // this scale would swamp the refresh loop we are measuring. The
    // subproblem cap bounds Lawler's tail on degenerate tie-heavy
    // queries, which would otherwise measure enumeration churn rather
    // than the refresh substrate; both refresh paths share the config, so
    // the comparison is unaffected. Exact mode (the relevance-gating
    // scenario) keeps the default cap: a truncated enumeration cannot
    // certify, and the gate is the thing under test.
    vconfig.top_k.approximate = !opt.exact;
    if (!opt.exact) vconfig.top_k.max_subproblems = 400;
    vconfig.query_graph.max_matches_per_keyword = 6;
    vconfig.top_k.pool = pool.get();
    // Well-conditioned trial queries (interactive-latency searches; the
    // repeats model distinct users sharing an information need, which is
    // exactly the multi-view traffic batched refresh is for).
    for (std::size_t i = 0; views.size() < opt.num_views; ++i) {
      const auto& keywords =
          dataset.trials[opt.trial_plan[i % opt.trial_plan.size()]].keywords;
      auto view = std::make_unique<q::query::TopKView>(keywords, vconfig);
      Q_CHECK_OK(view->Refresh(graph, catalog, index, model.get(), *weights));
      engine.RegisterView(view.get());
      views.push_back(std::move(view));
    }
    // Build every snapshot once so timed batched rounds exercise the
    // steady state (re-cost), not first-touch construction.
    Q_CHECK_OK(engine.RefreshAll(graph, catalog, index, model.get(),
                                 *weights));
  }

  // The weight-only update between refreshes (a MIRA-step stand-in):
  // alternate nudges keep costs positive and bounded while guaranteeing
  // the weight revision moves every round.
  void NudgeWeights(int round) {
    weights->Nudge(q::graph::FeatureSpace::kDefaultFeature,
                   (round % 2 == 0) ? 0.01 : -0.01);
  }

  // Features carried by at most two base edges each — the shape of a
  // sparse MIRA step (the handful of per-edge features on the endorsed
  // and competing trees). Well under 1% of the feature space.
  std::vector<q::graph::FeatureId> PickSparseFeatures(std::size_t want) {
    std::vector<std::uint32_t> edge_count(space.size(), 0);
    for (q::graph::EdgeId e = 0; e < graph.num_edges(); ++e) {
      for (const auto& [id, value] : graph.edge_features(e).entries()) {
        ++edge_count[id];
      }
    }
    std::vector<q::graph::FeatureId> picked;
    for (q::graph::FeatureId f = 1;
         f < edge_count.size() && picked.size() < want; ++f) {
      if (edge_count[f] >= 1 && edge_count[f] <= 2) picked.push_back(f);
    }
    return picked;
  }

  // Sparse update: small always-positive nudges, so most shortest-path
  // cache entries are provably retainable under the delta pipeline's
  // selective invalidation (a cost increase of a non-tree edge keeps the
  // tree valid).
  void NudgeSparseWeights(const std::vector<q::graph::FeatureId>& features) {
    for (q::graph::FeatureId f : features) weights->Nudge(f, 0.004);
  }

  void RefreshBatched() {
    Q_CHECK_OK(engine.RefreshAll(graph, catalog, index, model.get(),
                                 *weights));
  }

  void RefreshIndependent() {
    for (const auto& view : views) {
      Q_CHECK_OK(view->Refresh(graph, catalog, index, model.get(),
                               *weights));
    }
  }
};

struct ViewState {
  std::vector<q::steiner::SteinerTree> trees;
  std::vector<q::query::ResultRow> rows;
};

std::vector<ViewState> Capture(const Workload& w) {
  std::vector<ViewState> states;
  for (const auto& view : w.views) {
    states.push_back(ViewState{view->trees(), view->results().rows});
  }
  return states;
}

bool SameStates(const std::vector<ViewState>& a,
                const std::vector<ViewState>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t v = 0; v < a.size(); ++v) {
    if (a[v].trees.size() != b[v].trees.size()) return false;
    for (std::size_t i = 0; i < a[v].trees.size(); ++i) {
      if (a[v].trees[i].edges != b[v].trees[i].edges) return false;
      if (a[v].trees[i].cost != b[v].trees[i].cost) return false;
    }
    if (a[v].rows.size() != b[v].rows.size()) return false;
    for (std::size_t i = 0; i < a[v].rows.size(); ++i) {
      if (a[v].rows[i].cost != b[v].rows[i].cost) return false;
      if (a[v].rows[i].query_index != b[v].rows[i].query_index) return false;
      if (!(a[v].rows[i].values == b[v].rows[i].values)) return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = "bench/out/BENCH_view_refresh.json";
  std::size_t num_views = 8;
  std::size_t synthetic = 2000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      g_smoke = true;
    } else if (std::strncmp(argv[i], "--views=", 8) == 0) {
      num_views = static_cast<std::size_t>(std::atoi(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--synthetic=", 12) == 0) {
      synthetic = static_cast<std::size_t>(std::atoi(argv[i] + 12));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json=PATH] [--smoke] [--views=N] "
                   "[--synthetic=N]\n",
                   argv[0]);
      return 2;
    }
  }

  WorkloadOptions wopt;
  wopt.num_views = num_views;
  wopt.synthetic_sources = synthetic;
  Workload w(wopt);
  std::printf("graph: %zu nodes, %zu edges, %zu views\n",
              w.graph.num_nodes(), w.graph.num_edges(), w.views.size());

  // Correctness gate first: after a weight update, batched output must be
  // bit-identical to the independent reference.
  w.NudgeWeights(0);
  w.RefreshBatched();
  auto batched_states = Capture(w);
  w.RefreshIndependent();
  auto independent_states = Capture(w);
  bool ok = SameStates(batched_states, independent_states);
  if (!ok) {
    std::printf("MISMATCH: batched refresh differs from independent\n");
  }

  FILE* json = q::bench::OpenBenchJson(json_path);
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path);
    return 2;
  }
  auto emit = [&](const std::string& kernel, std::size_t n, double median) {
    std::printf("%-28s n=%-7zu median_us=%12.1f\n", kernel.c_str(), n,
                median);
    std::fprintf(json, "{\"kernel\":\"%s\",\"n\":%zu,\"median_us\":%.3f}\n",
                 kernel.c_str(), n, median);
    std::fflush(json);
  };

  // Every timed round includes one weight nudge so each refresh really
  // re-costs (a no-op refresh would measure the skip path instead).
  int round = 0;
  std::string suffix = "_" + std::to_string(w.views.size());
  double independent_us = MedianMicros([&] {
    w.NudgeWeights(round++);
    w.RefreshIndependent();
  });
  emit("view_refresh_independent" + suffix, w.graph.num_nodes(),
       independent_us);
  double batched_us = MedianMicros([&] {
    w.NudgeWeights(round++);
    w.RefreshBatched();
  });
  emit("view_refresh_batched" + suffix, w.graph.num_nodes(), batched_us);

  double ratio = batched_us > 0.0 ? independent_us / batched_us : 0.0;
  std::printf("%-28s speedup=%.2fx (independent/batched), output %s\n",
              ("view_refresh_speedup" + suffix).c_str(), ratio,
              ok ? "verified identical" : "MISMATCH");
  std::fprintf(json, "{\"kernel\":\"view_refresh_speedup\",\"n\":%zu,"
               "\"ratio\":%.3f}\n",
               w.views.size(), ratio);

  // --- feedback-delta scenario: sparse update, delta vs full re-cost ------
  auto sparse = w.PickSparseFeatures(5);
  Q_CHECK_MSG(!sparse.empty(), "no sparse features found in the graph");
  std::printf("sparse update: %zu features out of %zu (%.2f%%)\n",
              sparse.size(), w.space.size(),
              100.0 * static_cast<double>(sparse.size()) /
                  static_cast<double>(w.space.size()));

  // Correctness gate: a delta-refreshed batch must match the independent
  // reference after the same sparse update — and must actually have taken
  // the delta classification, not a wholesale fallback.
  auto stats_before = w.engine.stats();
  std::size_t delta_before =
      stats_before.views_delta_recost + stats_before.views_skipped_delta;
  std::size_t full_before = stats_before.views_full_recost;
  w.NudgeSparseWeights(sparse);
  w.RefreshBatched();
  Q_CHECK_MSG(w.engine.stats().views_delta_recost +
                      w.engine.stats().views_skipped_delta >
                  delta_before,
              "sparse update did not take the delta re-cost path");
  auto delta_states = Capture(w);
  w.RefreshIndependent();
  bool delta_ok = SameStates(delta_states, Capture(w));
  if (!delta_ok) {
    std::printf("MISMATCH: delta refresh differs from independent\n");
    ok = false;
  }

  double delta_us = MedianMicros([&] {
    w.NudgeSparseWeights(sparse);
    w.RefreshBatched();
  });
  emit("view_refresh_delta_recost" + suffix, w.graph.num_nodes(), delta_us);

  // Same sparse update, but with the weight journal truncated below the
  // per-round mutation count the classification deterministically falls
  // back to the wholesale in-place Recost (and its generation-bumped,
  // cold shortest-path cache) — the pre-delta behavior.
  w.weights->set_max_journal_entries(2);
  w.NudgeSparseWeights(sparse);
  w.RefreshBatched();
  Q_CHECK_MSG(w.engine.stats().views_full_recost > full_before,
              "journal truncation did not force the full re-cost path");
  double full_us = MedianMicros([&] {
    w.NudgeSparseWeights(sparse);
    w.RefreshBatched();
  });
  emit("view_refresh_full_recost" + suffix, w.graph.num_nodes(), full_us);

  double delta_ratio = delta_us > 0.0 ? full_us / delta_us : 0.0;
  std::printf("%-28s speedup=%.2fx (full/delta), output %s\n",
              ("view_refresh_delta_speedup" + suffix).c_str(), delta_ratio,
              delta_ok ? "verified identical" : "MISMATCH");
  auto stats = w.engine.stats();
  std::printf("delta pipeline: %zu delta re-costs, %zu delta skips, %zu "
              "full re-costs, %zu edges repriced, %zu cache entries "
              "retained / %zu dropped\n",
              stats.views_delta_recost, stats.views_skipped_delta,
              stats.views_full_recost, stats.edges_repriced,
              stats.sp_cache_entries_retained,
              stats.sp_cache_entries_dropped);
  std::fprintf(json, "{\"kernel\":\"view_refresh_delta_speedup\",\"n\":%zu,"
               "\"ratio\":%.3f}\n",
               w.views.size(), delta_ratio);

  // --- relevance-scoped refresh: 64 views, sparse feedback touching ~2 ----
  // The serving shape the alpha-neighborhood gate exists for: many open
  // views, a feedback step whose repriced edges matter to only a couple of
  // them. PR 3 delta-recost still re-searches every view whose snapshot
  // repriced anything (every query graph copies every base edge, so a base
  // feature touches all of them); the relevance gate re-searches only the
  // views whose certificate the delta actually hits. Exact substrate —
  // only provably-exact enumerations certify.
  {
    WorkloadOptions opt;
    opt.num_views = 64;
    opt.synthetic_sources = 300;
    opt.base_rows = 150;
    opt.exact = true;
    // Bulk views cycle four keyword sets; the last two views get keyword
    // sets of their own, so a delta inside their neighborhoods can avoid
    // every bulk view's certificate.
    opt.trial_plan.clear();
    for (std::size_t i = 0; i + 2 < opt.num_views; ++i) {
      opt.trial_plan.push_back(i % 4);
    }
    opt.trial_plan.push_back(5);
    opt.trial_plan.push_back(6);
    Workload rw(opt);
    std::printf("relevance graph: %zu nodes, %zu edges, %zu views\n",
                rw.graph.num_nodes(), rw.graph.num_edges(),
                rw.views.size());
    std::size_t certified = 0;
    for (const auto& view : rw.views) {
      certified += view->certificate().valid ? 1 : 0;
    }
    std::printf("certified views: %zu / %zu\n", certified,
                rw.views.size());
    Q_CHECK_MSG(certified > rw.views.size() / 2,
                "exact enumeration failed to certify most views");

    // Base-graph edges carrying each feature. Only features with strictly
    // positive values everywhere qualify: the feedback step nudges
    // weights *up*, and a negative feature value would turn that into a
    // cost decrease, which correctly burns slack on every view (gap-0
    // tie-heavy views then fall through) — a different scenario than the
    // sparse, increase-only step modeled here.
    std::map<q::graph::FeatureId, std::vector<q::graph::EdgeId>>
        feature_edges;
    std::set<q::graph::FeatureId> has_nonpositive;
    for (q::graph::EdgeId e = 0; e < rw.graph.num_edges(); ++e) {
      for (const auto& [id, value] : rw.graph.edge_features(e).entries()) {
        if (id == q::graph::FeatureSpace::kDefaultFeature) continue;
        feature_edges[id].push_back(e);
        if (value <= 0.0) has_nonpositive.insert(id);
      }
    }
    for (q::graph::FeatureId f : has_nonpositive) feature_edges.erase(f);
    // Shared features (confidence/similarity bins) also ride the
    // view-local keyword-match edges appended after the base copy — and
    // those sit next to the terminals, inside every certificate. The
    // base-edge postings above cannot see that, so drop any feature a
    // view-local edge carries; what survives is per-edge features, the
    // shape of a MIRA step over a specific tree.
    for (const auto& view : rw.views) {
      const q::graph::SearchGraph& g = view->query_graph().graph;
      for (q::graph::EdgeId e = rw.graph.num_edges(); e < g.num_edges();
           ++e) {
        for (const auto& [id, value] : g.edge_features(e).entries()) {
          feature_edges.erase(id);
        }
      }
    }
    // Which views' certificates a feature's edges intersect (base edge
    // ids are copied id-for-id into every query graph).
    auto touched_views = [&](const std::vector<q::graph::EdgeId>& edges) {
      std::vector<std::size_t> touched;
      for (std::size_t v = 0; v < rw.views.size(); ++v) {
        const auto& cert = rw.views[v]->certificate().edges;
        for (q::graph::EdgeId e : edges) {
          if (std::binary_search(cert.begin(), cert.end(), e)) {
            touched.push_back(v);
            break;
          }
        }
      }
      return touched;
    };
    // The feedback step: two narrow features landing inside *different*
    // views' certificates — together they touch ~2 views — plus a
    // handful of features outside every certificate, exercising the
    // slack math on the other 60+ views.
    std::vector<std::pair<q::graph::FeatureId, std::vector<std::size_t>>>
        in_cert;
    std::vector<q::graph::FeatureId> outside;
    for (const auto& [f, edges] : feature_edges) {
      auto touched = touched_views(edges);
      if (touched.empty()) {
        if (outside.size() < 4 && edges.size() <= 2) outside.push_back(f);
      } else {
        in_cert.emplace_back(f, std::move(touched));
      }
    }
    Q_CHECK_MSG(!in_cert.empty(), "no feature intersects any certificate");
    std::sort(in_cert.begin(), in_cert.end(),
              [](const auto& a, const auto& b) {
                if (a.second.size() != b.second.size()) {
                  return a.second.size() < b.second.size();
                }
                return a.first < b.first;
              });
    std::vector<q::graph::FeatureId> targets{in_cert[0].first};
    std::set<std::size_t> target_views(in_cert[0].second.begin(),
                                       in_cert[0].second.end());
    for (const auto& [f, touched] : in_cert) {
      bool overlaps = true;
      for (std::size_t v : touched) overlaps &= target_views.count(v) > 0;
      if (overlaps) continue;  // prefer a feature hitting a new view
      targets.push_back(f);
      target_views.insert(touched.begin(), touched.end());
      break;
    }
    std::printf("sparse feedback: %zu target features touch %zu/%zu view "
                "certificates, plus %zu outside features\n",
                targets.size(), target_views.size(), rw.views.size(),
                outside.size());

    auto nudge = [&] {
      for (q::graph::FeatureId f : targets) rw.weights->Nudge(f, 0.004);
      for (q::graph::FeatureId f : outside) rw.weights->Nudge(f, 0.004);
    };

    // Baseline: the PR 3 delta-recost pipeline (gate off).
    rw.engine.set_relevance_gating(false);
    nudge();
    rw.RefreshBatched();  // settle into the steady state being measured
    double unscoped_us = MedianMicros([&] {
      nudge();
      rw.RefreshBatched();
    });
    emit("view_refresh_unscoped_" + std::to_string(rw.views.size()),
         rw.graph.num_nodes(), unscoped_us);

    // Relevance-scoped: identical updates, gate on.
    rw.engine.set_relevance_gating(true);
    nudge();
    rw.RefreshBatched();
    auto gate_before = rw.engine.stats();
    std::size_t skipped_before = gate_before.views_skipped_irrelevant;
    std::size_t searches_before = gate_before.searches_run;
    std::size_t checks_before = gate_before.relevance_checks;
    std::size_t fallthrough_before = gate_before.relevance_fallthroughs;
    nudge();
    rw.RefreshBatched();
    auto rstats = rw.engine.stats();
    std::size_t searched_per_round = rstats.searches_run - searches_before;
    std::printf("gated round: %zu searches, %zu checks, %zu fallthroughs, "
                "%zu irrelevant skips\n",
                searched_per_round, rstats.relevance_checks - checks_before,
                rstats.relevance_fallthroughs - fallthrough_before,
                rstats.views_skipped_irrelevant - skipped_before);
    Q_CHECK_MSG(rstats.views_skipped_irrelevant > skipped_before,
                "relevance gate never skipped a view");
    Q_CHECK_MSG(searched_per_round < rw.views.size(),
                "relevance gate did not reduce per-round searches");
    double scoped_us = MedianMicros([&] {
      nudge();
      rw.RefreshBatched();
    });
    emit("view_refresh_scoped_" + std::to_string(rw.views.size()),
         rw.graph.num_nodes(), scoped_us);

    // Output correctness last (independent refreshes re-stamp the
    // certificates, which would disable the gate mid-measurement): after
    // all the skipped rounds above, every view must still match a
    // from-scratch refresh bit for bit.
    auto scoped_states = Capture(rw);
    rw.RefreshIndependent();
    bool relevance_ok = SameStates(scoped_states, Capture(rw));
    if (!relevance_ok) {
      std::printf("MISMATCH: relevance-scoped refresh differs from "
                  "independent\n");
      ok = false;
    }

    double relevance_ratio = scoped_us > 0.0 ? unscoped_us / scoped_us : 0.0;
    std::printf("%-28s speedup=%.2fx (unscoped/scoped), %zu searches/round, "
                "%zu irrelevant skips, output %s\n",
                "view_refresh_relevance_speedup", relevance_ratio,
                searched_per_round,
                rw.engine.stats().views_skipped_irrelevant,
                relevance_ok ? "verified identical" : "MISMATCH");
    std::fprintf(json,
                 "{\"kernel\":\"view_refresh_relevance_speedup\","
                 "\"n\":%zu,\"ratio\":%.3f}\n",
                 rw.views.size(), relevance_ratio);
  }

  // --- feedback-ack latency: async refresh vs synchronous repair ----------
  // The async refresh contract's headline number: with 64 open views, how
  // long does one user's ApplyFeedback hold the interactive path? Sync
  // mode repairs every affected view inline; async mode returns after the
  // journal append + relevance classification and repairs on the
  // scheduler's pool. Both pay the same MIRA update (its own k-best
  // search), so the ratio isolates the refresh work moved off the path.
  {
    q::data::GbcoConfig gconfig;
    gconfig.base_rows = 150;
    auto dataset = q::data::BuildGbco(gconfig);
    auto build_system = [&](bool async) {
      q::core::QSystemConfig config;
      config.steiner_threads = -1;  // repairs parallelize via the scheduler
      config.async_refresh = async;
      config.async_repair_threads = async ? 2 : 0;
      config.view.top_k.k = 3;
      config.view.query_graph.max_matches_per_keyword = 6;
      auto qs = std::make_unique<q::core::QSystem>(config);
      for (const auto& src : dataset.catalog.sources()) {
        Q_CHECK_OK(qs->RegisterSource(src));
      }
      // No matcher bootstrap: the FK/membership graph already answers the
      // trial keywords, and alignment is not what this scenario measures.
      for (std::size_t i = 0; i < 64; ++i) {
        const auto& keywords =
            dataset.trials[i % dataset.trials.size()].keywords;
        Q_CHECK_OK(qs->CreateView(keywords).status());
      }
      return qs;
    };
    auto sync_q = build_system(false);
    auto async_q = build_system(true);

    // One feedback round, identical on both systems: endorse the current
    // best tree of a rotating view.
    auto endorse = [](q::core::QSystem& qs, int round) {
      std::size_t view = (static_cast<std::size_t>(round) * 17) % 64;
      auto state = qs.ReadView(view).state;
      if (state->trees.empty()) return;
      Q_CHECK_OK(qs.ApplyFeedback(view, state->trees[0]));
    };

    // Correctness gate first: after identical feedback sequences, the
    // drained async system must match the synchronous one bit for bit.
    for (int r = 0; r < 3; ++r) {
      endorse(*sync_q, r);
      endorse(*async_q, r);
    }
    Q_CHECK_OK(async_q->DrainRefreshes());
    bool ack_ok = true;
    for (std::size_t v = 0; v < 64; ++v) {
      auto s = sync_q->ReadView(v).state;
      auto a = async_q->ReadView(v).state;
      if (s->trees.size() != a->trees.size() ||
          s->results.rows.size() != a->results.rows.size()) {
        ack_ok = false;
        break;
      }
      for (std::size_t t = 0; t < s->trees.size(); ++t) {
        ack_ok &= s->trees[t].edges == a->trees[t].edges &&
                  s->trees[t].cost == a->trees[t].cost;
      }
      for (std::size_t r = 0; r < s->results.rows.size(); ++r) {
        ack_ok &= s->results.rows[r].cost == a->results.rows[r].cost &&
                  s->results.rows[r].values == a->results.rows[r].values;
      }
      if (!ack_ok) break;
    }
    if (!ack_ok) {
      std::printf("MISMATCH: async quiescent state differs from sync\n");
      ok = false;
    }

    int sync_round = 100;
    double sync_us = MedianMicros([&] { endorse(*sync_q, sync_round++); });
    emit("feedback_ack_sync_64", 64, sync_us);
    int async_round = 100;
    double async_us =
        MedianMicros([&] { endorse(*async_q, async_round++); });
    emit("feedback_ack_async_64", 64, async_us);
    Q_CHECK_OK(async_q->DrainRefreshes());

    const q::core::AsyncRefreshStats astats =
        async_q->async_scheduler()->stats();
    double ack_ratio = async_us > 0.0 ? sync_us / async_us : 0.0;
    std::printf("%-28s speedup=%.2fx (sync/async ack), %zu repairs run, "
                "%zu no-search validations, output %s\n",
                "feedback_ack_speedup", ack_ratio, astats.repairs_run,
                astats.validations_without_search,
                ack_ok ? "verified identical" : "MISMATCH");
    std::fprintf(json,
                 "{\"kernel\":\"feedback_ack_speedup\",\"n\":64,"
                 "\"ratio\":%.3f}\n",
                 ack_ratio);
  }

  std::fclose(json);
  std::printf("json written to %s\n", json_path);
  return ok ? 0 : 1;
}
