// Figure 12: average cost of gold-standard edges vs non-gold edges in
// the search graph, as feedback steps 1..40 are applied (the 10 queries
// replayed up to 3 additional times). Paper shape: Q assigns lower
// average costs to gold edges, and the gap widens with more feedback.
#include "bench_common.h"

int main() {
  q::bench::PrintHeader(
      "Fig. 12 — gold vs non-gold edge costs under increasing feedback",
      "SIGMOD'10 Fig. 12, InterPro-GO, steps 1-40 (10 queries x 4)");

  auto env = q::bench::BootstrapQuality(/*top_y=*/2);
  auto initial = q::learn::MeasureGoldCostGap(
      env.q->search_graph(), env.q->weights(), env.dataset.gold_edges);
  std::printf("%-6s %16s %20s %10s\n", "step", "avg gold cost",
              "avg non-gold cost", "gap");
  std::printf("%-6d %16.3f %20.3f %10.3f\n", 0, initial.gold_mean,
              initial.non_gold_mean,
              initial.non_gold_mean - initial.gold_mean);

  double first_gap = initial.non_gold_mean - initial.gold_mean;
  double last_gap = first_gap;
  q::bench::TrainWithFeedback(
      &env, 10, 4, [&](std::size_t step) {
        auto gap = q::learn::MeasureGoldCostGap(env.q->search_graph(),
                                                env.q->weights(),
                                                env.dataset.gold_edges);
        std::printf("%-6zu %16.3f %20.3f %10.3f\n", step, gap.gold_mean,
                    gap.non_gold_mean, gap.non_gold_mean - gap.gold_mean);
        last_gap = gap.non_gold_mean - gap.gold_mean;
      });
  std::printf("\ngap: %.3f (start) -> %.3f (end); widened by %.3f\n",
              first_gap, last_gap, last_gap - first_gap);
  return 0;
}
