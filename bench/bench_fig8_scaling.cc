// Figure 8: number of pairwise column comparisons as the search graph
// grows from 18 to 100 to 500 sources (synthetic 2-attribute sources
// wired to random nodes at the calibrated average edge cost), averaged
// over the introduction of 40 sources. Paper shape: Exhaustive grows
// steeply and roughly linearly; ViewBased and Preferential are "hardly
// affected by graph size".
//
// Besides the human-readable table, writes JSON lines
// ({"kernel":..., "n":..., "median_us":..., "mean_comparisons":...}) to
// bench/out/BENCH_fig8_scaling.json (rewritten per run, like bench_micro_kernels)
// so the alignment-cost trajectory is trackable across PRs.
#include <algorithm>

#include "data/synthetic.h"
#include "util/random.h"

#include "bench_common.h"

namespace {

double Median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

}  // namespace

int main() {
  q::bench::PrintHeader(
      "Fig. 8 — pairwise column comparisons vs search graph size",
      "SIGMOD'10 Fig. 8, GBCO + synthetic sources, sizes 18/100/500");

  std::printf("%-10s %14s %18s %20s\n", "sources", "Exhaustive",
              "ViewBasedAligner", "PreferentialAligner");

  FILE* json = q::bench::OpenBenchJson("bench/out/BENCH_fig8_scaling.json");

  q::data::GbcoConfig config;
  config.base_rows = 40;
  auto dataset = q::data::BuildGbco(config);

  const char* strategy_names[3] = {"exhaustive", "view_based",
                                   "preferential"};
  for (std::size_t target : {std::size_t{18}, std::size_t{100},
                             std::size_t{500}}) {
    q::util::SummaryStats per_strategy[3];
    std::vector<double> wall_us[3];  // per introduced source
    for (const auto& trial : dataset.trials) {
      q::align::ExhaustiveAligner exhaustive;
      q::align::ViewBasedAligner view_based;
      q::align::PreferentialAligner preferential;
      q::align::Aligner* aligners[3] = {&exhaustive, &view_based,
                                        &preferential};
      for (int s = 0; s < 3; ++s) {
        // Fresh environment per strategy: progressive registration during
        // one strategy's run must not leak into the next.
        auto env = q::bench::MakeTrialEnv(dataset, trial);
        if (env == nullptr) continue;
        q::util::Rng rng(500 + target);
        std::size_t have = env->existing.sources().size();
        if (target > have) {
          Q_CHECK_OK(q::data::GrowWithSyntheticSources(
              target - have, q::data::SyntheticGrowthOptions{}, &rng,
              &env->existing, env->model.get(), &env->graph));
        }
        q::match::CountingMatcher matcher;
        auto stats = q::bench::RunTrialAlignment(env.get(), aligners[s],
                                                 &matcher);
        double per_source =
            static_cast<double>(stats.attribute_comparisons) /
            static_cast<double>(env->new_sources.size());
        for (std::size_t i = 0; i < env->new_sources.size(); ++i) {
          per_strategy[s].Add(per_source);
        }
        wall_us[s].push_back(stats.wall_ms * 1e3 /
                             static_cast<double>(env->new_sources.size()));
      }
    }
    std::printf("%-10zu %14.1f %18.1f %20.1f\n", target,
                per_strategy[0].mean(), per_strategy[1].mean(),
                per_strategy[2].mean());
    if (json != nullptr) {
      for (int s = 0; s < 3; ++s) {
        std::fprintf(json,
                     "{\"kernel\":\"fig8_align_%s\",\"n\":%zu,"
                     "\"median_us\":%.3f,\"mean_comparisons\":%.1f}\n",
                     strategy_names[s], target, Median(wall_us[s]),
                     per_strategy[s].mean());
      }
      std::fflush(json);
    }
  }
  if (json != nullptr) {
    std::fclose(json);
    std::printf("json written to bench/out/BENCH_fig8_scaling.json\n");
  }
  return 0;
}
