// Figure 8: number of pairwise column comparisons as the search graph
// grows from 18 to 100 to 500 sources (synthetic 2-attribute sources
// wired to random nodes at the calibrated average edge cost), averaged
// over the introduction of 40 sources — extended with a 10k-source tier
// built by the streaming catalog generator (data/synthetic.h), the
// representation the compact-layout work targets. Paper shape:
// Exhaustive grows steeply and roughly linearly; ViewBased and
// Preferential are "hardly affected by graph size" — the 10k tier shows
// the same contrast holding two orders of magnitude past the paper.
//
// Besides the human-readable table, writes JSON lines
// ({"kernel":"fig8_scaling_<strategy>_<n>", "n":..., "median_us":...,
// "mean_comparisons":...}) so scripts/check.sh can gate the per-source
// alignment wall time of the 10k tier against
// bench/baselines/BENCH_fig8_scaling.json.
//
// Usage: bench_fig8_scaling [--json=PATH] [--smoke]
//   --smoke caps the 10k tier at 4 GBCO trials (bounded wall time for
//   check.sh / CI); the committed baseline comes from --smoke runs.
#include <algorithm>
#include <cstring>

#include "data/synthetic.h"
#include "util/random.h"

#include "bench_common.h"

namespace {

double Median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = "bench/out/BENCH_fig8_scaling.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--json=PATH] [--smoke]\n", argv[0]);
      return 64;
    }
  }

  q::bench::PrintHeader(
      "Fig. 8 — pairwise column comparisons vs search graph size",
      "SIGMOD'10 Fig. 8, GBCO + synthetic sources, sizes 18/100/500/10k");

  std::printf("%-10s %14s %18s %20s\n", "sources", "Exhaustive",
              "ViewBasedAligner", "PreferentialAligner");

  FILE* json = q::bench::OpenBenchJson(json_path);

  q::data::GbcoConfig config;
  config.base_rows = 40;
  auto dataset = q::data::BuildGbco(config);

  const char* strategy_names[3] = {"exhaustive", "view_based",
                                   "preferential"};
  for (std::size_t target : {std::size_t{18}, std::size_t{100},
                             std::size_t{500}, std::size_t{10000}}) {
    // The paper tiers grow with the Sec. 5.1.2 random-wiring generator;
    // the 10k tier uses the streaming generator, whose O(1)-per-source
    // domain model is what makes the size constructible at all (and
    // whose registered catalog keeps the exhaustive aligner honest: it
    // really matches against all 10k sources).
    const bool streaming = target > 500;
    // The big tier's story is per-source cost, which the trial mean
    // already captures; a trial subset keeps the smoke wall time (and
    // CI) bounded without changing the kernel set.
    const std::size_t max_trials =
        streaming && smoke ? 4 : dataset.trials.size();
    q::util::SummaryStats per_strategy[3];
    std::vector<double> wall_us[3];  // per introduced source
    std::size_t trials_run = 0;
    for (const auto& trial : dataset.trials) {
      if (trials_run++ >= max_trials) break;
      q::align::ExhaustiveAligner exhaustive;
      q::align::ViewBasedAligner view_based;
      q::align::PreferentialAligner preferential;
      q::align::Aligner* aligners[3] = {&exhaustive, &view_based,
                                        &preferential};
      for (int s = 0; s < 3; ++s) {
        // Fresh environment per strategy: progressive registration during
        // one strategy's run must not leak into the next.
        auto env = q::bench::MakeTrialEnv(dataset, trial);
        if (env == nullptr) continue;
        q::util::Rng rng(500 + target);
        std::size_t have = env->existing.sources().size();
        if (target > have) {
          if (streaming) {
            q::data::StreamingCatalogOptions options;
            options.register_catalog = true;
            Q_CHECK_OK(q::data::BuildStreamingCatalog(
                target - have, options, &rng, &env->existing,
                env->model.get(), &env->graph));
          } else {
            Q_CHECK_OK(q::data::GrowWithSyntheticSources(
                target - have, q::data::SyntheticGrowthOptions{}, &rng,
                &env->existing, env->model.get(), &env->graph));
          }
        }
        q::match::CountingMatcher matcher;
        auto stats = q::bench::RunTrialAlignment(env.get(), aligners[s],
                                                 &matcher);
        double per_source =
            static_cast<double>(stats.attribute_comparisons) /
            static_cast<double>(env->new_sources.size());
        for (std::size_t i = 0; i < env->new_sources.size(); ++i) {
          per_strategy[s].Add(per_source);
        }
        wall_us[s].push_back(stats.wall_ms * 1e3 /
                             static_cast<double>(env->new_sources.size()));
      }
    }
    std::printf("%-10zu %14.1f %18.1f %20.1f\n", target,
                per_strategy[0].mean(), per_strategy[1].mean(),
                per_strategy[2].mean());
    if (json != nullptr) {
      for (int s = 0; s < 3; ++s) {
        std::fprintf(json,
                     "{\"kernel\":\"fig8_scaling_%s_%zu\",\"n\":%zu,"
                     "\"median_us\":%.3f,\"mean_comparisons\":%.1f}\n",
                     strategy_names[s], target, target, Median(wall_us[s]),
                     per_strategy[s].mean());
      }
      std::fflush(json);
    }
  }
  if (json != nullptr) {
    std::fclose(json);
    std::printf("json written to %s\n", json_path);
  }
  return 0;
}
