// Figure 10: precision vs recall for the metadata (COMA++-style) matcher,
// MAD, and Q (the combination of both matchers' Y=2 edges, trained with
// feedback on 10 keyword queries replayed 4 times, k=5), sweeping the
// edge pruning threshold. Paper shape: the trained combination dominates
// both individual matchers and reaches 100% precision at 100% recall.
#include "match/mad_matcher.h"

#include "bench_common.h"

int main() {
  q::bench::PrintHeader(
      "Fig. 10 — precision-recall: COMA-like vs MAD vs trained Q",
      "SIGMOD'10 Fig. 10, InterPro-GO, 10 queries x 4 replays, k=5");

  auto dataset = q::data::BuildInterProGo(q::bench::QualityDatasetConfig());
  std::vector<const q::relational::Table*> tables;
  for (const auto& t : dataset.catalog.AllTables()) tables.push_back(t.get());

  q::match::MetadataMatcher metadata;
  auto metadata_cands = metadata.InduceAlignments(tables, 2);
  Q_CHECK_OK(metadata_cands.status());
  q::bench::PrintPrCurve(
      "COMA-like",
      q::learn::CandidatePrCurve(*metadata_cands, dataset.gold_edges));

  q::match::MadMatcher mad;
  auto mad_cands = mad.InduceAlignments(tables, 2);
  Q_CHECK_OK(mad_cands.status());
  q::bench::PrintPrCurve(
      "MAD", q::learn::CandidatePrCurve(*mad_cands, dataset.gold_edges));

  // Q: both matchers combined at Y=2, then 10 feedback queries x 4.
  auto env = q::bench::BootstrapQuality(/*top_y=*/2);
  std::size_t steps = q::bench::TrainWithFeedback(&env, 10, 4);
  std::printf("(applied %zu feedback steps)\n", steps);
  q::bench::PrintPrCurve(
      "Q (trained)",
      q::learn::GraphPrCurve(env.q->search_graph(), env.q->weights(),
                             env.dataset.gold_edges));

  // Headline check: best achievable P at R=1.
  auto curve = q::learn::GraphPrCurve(env.q->search_graph(),
                                      env.q->weights(),
                                      env.dataset.gold_edges);
  double best_p_at_full_recall = 0.0;
  for (const auto& p : curve) {
    if (p.recall >= 1.0 - 1e-9) {
      best_p_at_full_recall = std::max(best_p_at_full_recall, p.precision);
    }
  }
  std::printf("\nQ precision at 100%% recall: %.1f%%\n",
              100 * best_p_at_full_recall);
  return 0;
}
