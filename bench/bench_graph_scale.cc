// Million-source storage + query scaling. Streams synthetic catalogs
// (data::BuildStreamingCatalog: Zipfian domain hubs, 3 nodes / ~4 edges
// per source) into the compact SearchGraph and measures
//
//   - resident bytes per source (graph.MemoryUsage().total() / sources),
//     mirrored into graph::LegacyGraphRep at the gated scales to prove
//     the compact representation's >= 2x advantage — exit 2 if the
//     ratio ever drops below 2.0;
//   - terminal-local query latency: p95 of sharded top-k Steiner
//     searches with same-domain terminals, at 10k and 100k sources.
//     Sharded results are cross-checked bit-identical against the
//     unsharded engine on a query subset — exit 2 on divergence — so
//     this run is a correctness gate as well as a perf probe.
//
// Smoke mode covers 10k + 100k (the scales check.sh gates); the full
// run adds the 1M-source materialization from the roadmap's acceptance
// bar (no legacy mirror there — the mirror alone would dwarf the graph).
//
// JSON lines use median_us as the gated magnitude even for byte counts
// (the check.sh parser keys on that field); bytes also appear under
// their own names for humans.
//
// Usage: bench_graph_scale [--json=PATH] [--smoke]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.h"
#include "data/synthetic.h"
#include "graph/legacy_rep.h"
#include "steiner/fast_solver.h"
#include "steiner/top_k.h"
#include "util/random.h"
#include "util/timer.h"

namespace {

double Percentile(std::vector<double> xs, int pct) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  std::size_t idx = (xs.size() * static_cast<std::size_t>(pct) + 99) / 100;
  return xs[idx == 0 ? 0 : idx - 1];
}

// One query's terminals: an attribute of a recently ingested source,
// plus two attribute nodes from its bounded cost neighborhood (the
// sliding hub pools give the stream temporal locality, so "tell me how
// these recent sources relate" is the natural query shape at this
// scale). The bounded Dijkstra keeps terminal selection O(window), not
// O(graph), so it works unchanged at the 1M tier.
std::vector<q::graph::NodeId> WindowTerminals(
    const q::graph::SearchGraph& graph, const q::graph::WeightVector& weights,
    double hop_cost, q::util::Rng* rng, q::graph::DistanceField* field) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    q::graph::NodeId t0 = static_cast<q::graph::NodeId>(
        graph.num_nodes() - 1 - rng->Uniform(graph.num_nodes() / 10 + 1));
    if (graph.node(t0).kind != q::graph::NodeKind::kAttribute) continue;
    graph.Dijkstra({{t0, 0.0}}, weights, /*max_cost=*/8.0 * hop_cost, field);
    std::vector<q::graph::NodeId> window;
    for (q::graph::NodeId n : field->reached()) {
      if (n != t0 && graph.node(n).kind == q::graph::NodeKind::kAttribute) {
        window.push_back(n);
      }
    }
    if (window.size() < 2) continue;
    std::vector<q::graph::NodeId> terminals = {t0};
    while (terminals.size() < 3) {
      q::graph::NodeId t = window[rng->Uniform(window.size())];
      if (std::find(terminals.begin(), terminals.end(), t) ==
          terminals.end()) {
        terminals.push_back(t);
      }
    }
    return terminals;
  }
  return {};
}

// Mean cost of a sample of edges — the neighborhood radius unit.
double MeanEdgeCost(const q::graph::SearchGraph& graph,
                    const q::graph::WeightVector& weights) {
  std::size_t sample = std::min<std::size_t>(graph.num_edges(), 256);
  if (sample == 0) return 1.0;
  double sum = 0.0;
  for (q::graph::EdgeId e = 0; e < sample; ++e) {
    sum += graph.EdgeCost(e, weights);
  }
  double mean = sum / static_cast<double>(sample);
  return mean > 0.0 ? mean : 1.0;
}

struct ScaleReport {
  double bytes_per_source = 0.0;
  double query_p95_us = 0.0;
};

bool RunScale(std::size_t sources, bool mirror_legacy, bool run_queries,
              FILE* json, const char* suffix, ScaleReport* report) {
  q::util::Rng rng(9000 + sources % 997);
  q::data::StreamingCatalogOptions options;
  q::graph::FeatureSpace space;
  q::graph::CostModel model(&space, q::graph::CostModelConfig{});
  q::graph::SearchGraph graph;

  q::util::WallTimer build_timer;
  Q_CHECK_OK(q::data::BuildStreamingCatalog(sources, options, &rng,
                                            /*catalog=*/nullptr, &model,
                                            &graph));
  double build_ms = build_timer.ElapsedMillis();

  q::graph::MemoryBreakdown breakdown = graph.MemoryUsage();
  report->bytes_per_source =
      static_cast<double>(breakdown.total()) / static_cast<double>(sources);
  std::printf("%-8s %10zu nodes %10zu edges  build %8.0f ms  %7.1f B/src\n",
              suffix, graph.num_nodes(), graph.num_edges(), build_ms,
              report->bytes_per_source);

  double legacy_ratio = 0.0;
  if (mirror_legacy) {
    q::graph::LegacyGraphRep legacy;
    for (q::graph::NodeId n = 0; n < graph.num_nodes(); ++n) {
      legacy.AddNode(graph.node(n).kind, graph.node(n).label,
                     graph.node(n).attr);
    }
    for (q::graph::EdgeId e = 0; e < graph.num_edges(); ++e) {
      legacy.AddEdge(graph.ExportEdge(e));
    }
    legacy_ratio = static_cast<double>(legacy.MemoryUsage()) /
                   static_cast<double>(breakdown.total());
    std::printf("%-8s legacy mirror %7.1f B/src — compact advantage %.2fx\n",
                suffix,
                static_cast<double>(legacy.MemoryUsage()) /
                    static_cast<double>(sources),
                legacy_ratio);
    if (legacy_ratio < 2.0) {
      std::fprintf(stderr,
                   "FAIL: compact representation only %.2fx smaller than "
                   "legacy at %zu sources (gate: >= 2.0x)\n",
                   legacy_ratio, sources);
      return false;
    }
  }
  if (json != nullptr) {
    std::fprintf(json,
                 "{\"kernel\":\"graph_scale_bytes_per_source_%s\","
                 "\"n\":%zu,\"median_us\":%.1f,\"compact_bytes\":%zu,"
                 "\"legacy_ratio\":%.3f}\n",
                 suffix, sources, report->bytes_per_source,
                 breakdown.total(), legacy_ratio);
  }

  if (!run_queries) return true;

  q::graph::WeightVector weights(&space);
  const double hop_cost = MeanEdgeCost(graph, weights);
  q::graph::DistanceField field;
  // Deterministic query mix over recent-source neighborhoods. The
  // enumeration cap bounds a single query's work: the serving path wants
  // a latency envelope, not an exhaustive Lawler sweep (and both
  // configurations run under the same cap, so the bit-identity check
  // still compares like with like).
  q::util::Rng qrng(1234);
  // 48 samples per tier: the growth gate divides two p95 order
  // statistics, and with fewer samples the quotient flaps past its own
  // ceiling on hub-window sampling luck alone.
  const int num_queries = 48;
  // Verified queries are also solved by the uncompacted masked referee
  // AND the unsharded engine; all three must bit-match.
  const int verify_queries = 4;
  q::steiner::TopKConfig sharded;
  sharded.k = 3;
  sharded.max_subproblems = 300;
  sharded.sharded.enabled = true;
  q::steiner::TopKConfig referee = sharded;
  referee.sharded.compact_local_ids = false;
  q::steiner::TopKConfig plain = sharded;
  plain.sharded.enabled = false;

  // One engine per configuration, shared across the query mix — this is
  // the serving-path shape (RefreshEngine keeps an engine per view), so
  // the per-query numbers measure search work, not repeated CSR builds.
  q::steiner::FastSteinerEngine sharded_engine(graph, weights, true);
  q::steiner::FastSteinerEngine referee_engine(graph, weights, true);
  q::steiner::FastSteinerEngine plain_engine(graph, weights, true);

  // Untimed warmup: the first query against a fresh engine pays one-time
  // setup (the shard partition build, thread-local scratch growth) that
  // the serving path amortizes across a view's lifetime; folding it into
  // one sample would skew the tail of a 24-query distribution.
  {
    q::util::Rng warm_rng(4321);
    std::vector<q::graph::NodeId> warm =
        WindowTerminals(graph, weights, hop_cost, &warm_rng, &field);
    if (!warm.empty()) {
      q::steiner::TopKSteinerTrees(graph, weights, warm, sharded,
                                   &sharded_engine);
      q::steiner::TopKSteinerTrees(graph, weights, warm, plain, &plain_engine);
    }
  }

  std::vector<double> latencies_us;
  for (int query = 0; query < num_queries; ++query) {
    std::vector<q::graph::NodeId> terminals =
        WindowTerminals(graph, weights, hop_cost, &qrng, &field);
    if (terminals.empty()) {
      std::fprintf(stderr, "FAIL: no queryable neighborhood found\n");
      return false;
    }
    // Best-of-2 per query: each run builds a fresh localizer and mask
    // (mask uids are monotone, so the local-tree cache is cold both
    // times) — the repeat preserves the cold-query semantics and sheds
    // only OS noise, which otherwise dominates a 24-sample p95 and
    // makes the cross-tier growth ratio flap.
    std::vector<q::steiner::SteinerTree> trees;
    double best_us = 0.0;
    for (int rep = 0; rep < 2; ++rep) {
      q::util::WallTimer timer;
      auto run = q::steiner::TopKSteinerTrees(graph, weights, terminals,
                                              sharded, &sharded_engine);
      const double us = timer.ElapsedMicros();
      if (rep == 0 || us < best_us) best_us = us;
      trees = std::move(run);
    }
    latencies_us.push_back(best_us);
    if (std::getenv("Q_BENCH_DEBUG") != nullptr) {
      q::steiner::FastSolveStats st = sharded_engine.stats();
      std::fprintf(stderr,
                   "%-8s query %2d  %4zu terminals  %10.1f us  "
                   "hits=%zu misses=%zu ghits=%zu gmisses=%zu bypass=%zu\n",
                   suffix, query, terminals.size(), latencies_us.back(),
                   st.sp_local_hits, st.sp_local_misses, st.sp_cache_hits,
                   st.sp_cache_misses, st.masked_bypasses);
    }
    if (query < verify_queries) {
      auto check_same = [&](const std::vector<q::steiner::SteinerTree>& other,
                            const char* what) {
        bool same = trees.size() == other.size();
        for (std::size_t i = 0; same && i < trees.size(); ++i) {
          same = trees[i].edges == other[i].edges &&
                 trees[i].cost == other[i].cost;
        }
        if (!same) {
          std::fprintf(stderr,
                       "FAIL: compacted sharded top-k diverged from %s at "
                       "%zu sources (query %d)\n",
                       what, sources, query);
        }
        return same;
      };
      auto masked_ref = q::steiner::TopKSteinerTrees(
          graph, weights, terminals, referee, &referee_engine);
      auto reference = q::steiner::TopKSteinerTrees(graph, weights, terminals,
                                                    plain, &plain_engine);
      if (!check_same(masked_ref, "the uncompacted masked referee") ||
          !check_same(reference, "the unsharded engine")) {
        return false;
      }
    }
  }
  report->query_p95_us = Percentile(latencies_us, 95);
  const double query_p50_us = Percentile(latencies_us, 50);
  std::printf("%-8s query p95 %10.1f us (p50 %10.1f us) over %d sharded "
              "queries (%d verified vs unsharded)\n",
              suffix, report->query_p95_us, query_p50_us, num_queries,
              verify_queries);
  if (json != nullptr) {
    std::fprintf(json,
                 "{\"kernel\":\"graph_scale_query_p95_us_%s\",\"n\":%zu,"
                 "\"median_us\":%.1f}\n",
                 suffix, sources, report->query_p95_us);
    // Ungated context: the median separates queue-of-work growth (median)
    // from the hub-heavy tail (p95), whose cost is dominated by cache
    // misses over the larger node arrays rather than by mask size.
    std::fprintf(json,
                 "{\"kernel\":\"graph_scale_query_p50_us_%s\",\"n\":%zu,"
                 "\"median_us\":%.1f}\n",
                 suffix, sources, query_p50_us);
  }
  // Local-tree cache traffic of the compacted configuration. Bypasses
  // count masked solves that fell back to the uncompacted referee path —
  // with compaction enabled and localizer-built masks this should stay 0.
  q::steiner::FastSolveStats stats = sharded_engine.stats();
  std::printf("%-8s local sp-cache: %zu hits / %zu misses, "
              "%zu masked bypasses\n",
              suffix, stats.sp_local_hits, stats.sp_local_misses,
              stats.masked_bypasses);
  if (json != nullptr) {
    std::fprintf(json,
                 "{\"kernel\":\"graph_scale_local_cache_%s\",\"n\":%zu,"
                 "\"median_us\":%.1f,\"local_hits\":%zu,\"local_misses\":%zu,"
                 "\"masked_bypasses\":%zu}\n",
                 suffix, sources, static_cast<double>(stats.sp_local_hits),
                 stats.sp_local_hits, stats.sp_local_misses,
                 stats.masked_bypasses);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  // Hard ceiling on p95 growth 10k -> 100k. Sources grow 10x across the
  // tier; local-id mask compaction keeps per-solve state mask-sized, so
  // the tail must grow sub-linearly. Exceeding the ceiling exits 2 —
  // this is a gate, not a warning (scripts/check.sh enforces the same
  // ceiling from the committed baseline).
  double max_growth = 5.0;
  std::string json_path = "bench/out/BENCH_graph_scale.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    if (std::strncmp(argv[i], "--max-growth=", 13) == 0) {
      max_growth = std::atof(argv[i] + 13);
    }
  }
  q::bench::PrintHeader(
      "Graph scale — compact storage + sharded terminal-local search",
      "bytes/source vs legacy rep; sharded top-k p95 at 10k/100k sources");

  FILE* json = q::bench::OpenBenchJson(json_path);

  ScaleReport r10k, r100k;
  bool ok = RunScale(10000, /*mirror_legacy=*/true, /*run_queries=*/true,
                     json, "10k", &r10k) &&
            RunScale(100000, /*mirror_legacy=*/true, /*run_queries=*/true,
                     json, "100k", &r100k);
  if (ok) {
    // Sublinear-growth probe: sources grew 10x; a p95 growing by the
    // same factor would mean terminal-locality buys nothing.
    double growth = r10k.query_p95_us > 0.0
                        ? r100k.query_p95_us / r10k.query_p95_us
                        : 0.0;
    std::printf("p95 growth 10k -> 100k: %.2fx (sources grew 10.00x, "
                "ceiling %.2fx)\n",
                growth, max_growth);
    if (json != nullptr) {
      std::fprintf(json,
                   "{\"kernel\":\"graph_scale_p95_growth\",\"ratio\":%.3f,"
                   "\"max_ratio\":%.3f}\n",
                   growth, max_growth);
    }
    if (growth > max_growth) {
      std::fprintf(stderr,
                   "FAIL: sharded query p95 grew %.2fx from 10k to 100k "
                   "sources (gate: <= %.2fx)\n",
                   growth, max_growth);
      ok = false;
    }
  }
  if (ok && !smoke) {
    ScaleReport r1m;
    ok = RunScale(1000000, /*mirror_legacy=*/false, /*run_queries=*/true,
                  json, "1m", &r1m);
  }
  if (json != nullptr) {
    std::fclose(json);
    std::printf("json written to %s\n", json_path.c_str());
  }
  if (!ok) return 2;
  return 0;
}
