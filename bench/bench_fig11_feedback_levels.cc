// Figure 11: precision vs recall for Q under increasing amounts of
// feedback — the unlearned matcher-average baseline, then Q(1x1),
// Q(10x1), Q(10x2), Q(10x4). Paper shape: the baseline tracks the
// metadata matcher (whose confidences run higher than MAD's); feedback
// improves the curve monotonically, with replays adding further gains.
#include <map>

#include "match/mad_matcher.h"

#include "bench_common.h"

namespace {

// The Fig. 11 baseline: average the two matchers' confidence scores per
// attribute pair ("in the absence of any feedback, we give equal weight
// to each matcher").
std::vector<q::match::AlignmentCandidate> AverageMatcherScores(
    const std::vector<q::match::AlignmentCandidate>& a,
    const std::vector<q::match::AlignmentCandidate>& b) {
  std::map<std::string, q::match::AlignmentCandidate> merged;
  std::map<std::string, int> votes;
  for (const auto* list : {&a, &b}) {
    for (const auto& c : *list) {
      auto [it, inserted] = merged.emplace(c.PairKey(), c);
      if (inserted) {
        votes[c.PairKey()] = 1;
      } else {
        it->second.confidence += c.confidence;
        ++votes[c.PairKey()];
      }
    }
  }
  std::vector<q::match::AlignmentCandidate> out;
  for (auto& [key, c] : merged) {
    c.confidence /= 2.0;  // absent matcher contributes 0
    c.matcher = "average";
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace

int main() {
  q::bench::PrintHeader(
      "Fig. 11 — precision-recall for Q at increasing feedback levels",
      "SIGMOD'10 Fig. 11, InterPro-GO");

  auto dataset = q::data::BuildInterProGo(q::bench::QualityDatasetConfig());
  std::vector<const q::relational::Table*> tables;
  for (const auto& t : dataset.catalog.AllTables()) tables.push_back(t.get());

  q::match::MetadataMatcher metadata;
  auto meta_cands = metadata.InduceAlignments(tables, 2);
  Q_CHECK_OK(meta_cands.status());
  q::match::MadMatcher mad;
  auto mad_cands = mad.InduceAlignments(tables, 2);
  Q_CHECK_OK(mad_cands.status());
  auto baseline = AverageMatcherScores(*meta_cands, *mad_cands);
  q::bench::PrintPrCurve(
      "Average(COMA,MAD)",
      q::learn::CandidatePrCurve(baseline, dataset.gold_edges));

  struct Level {
    const char* name;
    std::size_t queries;
    int passes;
  };
  for (const Level& level : {Level{"Q (1 x 1)", 1, 1},
                             Level{"Q (10 x 1)", 10, 1},
                             Level{"Q (10 x 2)", 10, 2},
                             Level{"Q (10 x 4)", 10, 4}}) {
    auto env = q::bench::BootstrapQuality(/*top_y=*/2);
    std::size_t steps =
        q::bench::TrainWithFeedback(&env, level.queries, level.passes);
    auto curve = q::learn::GraphPrCurve(env.q->search_graph(),
                                        env.q->weights(),
                                        env.dataset.gold_edges);
    std::printf("(%s: %zu feedback steps applied)\n", level.name, steps);
    q::bench::PrintPrCurve(level.name, curve);
  }
  return 0;
}
