// Figure 6: running times when aligning a new source to the set of
// existing sources, with the metadata (COMA++-style) matcher as base
// matcher, averaged over the introduction of 40 sources across the 16
// GBCO trials. Paper shape: ViewBasedAligner and PreferentialAligner
// significantly (~60%) cheaper than Exhaustive.
#include "bench_common.h"

int main() {
  q::bench::PrintHeader(
      "Fig. 6 — aligner running times (metadata matcher as base matcher)",
      "SIGMOD'10 Fig. 6, GBCO dataset, avg over intro of 40 sources");

  auto dataset = q::data::BuildGbco();
  struct StrategyRow {
    const char* name;
    std::unique_ptr<q::align::Aligner> aligner;
    q::util::SummaryStats wall_ms;
    q::util::SummaryStats comparisons;
  };
  std::vector<StrategyRow> rows;
  rows.push_back({"Exhaustive",
                  std::make_unique<q::align::ExhaustiveAligner>(), {}, {}});
  rows.push_back({"ViewBasedAligner",
                  std::make_unique<q::align::ViewBasedAligner>(), {}, {}});
  rows.push_back({"PreferentialAligner",
                  std::make_unique<q::align::PreferentialAligner>(), {}, {}});

  for (auto& row : rows) {
    for (const auto& trial : dataset.trials) {
      auto env = q::bench::MakeTrialEnv(dataset, trial);
      if (env == nullptr) continue;
      q::bench::CalibrateTrialEnv(env.get(), trial);
      q::match::MetadataMatcher matcher;
      auto stats =
          q::bench::RunTrialAlignment(env.get(), row.aligner.get(), &matcher);
      // Per-source averages (the paper averages over 40 introductions).
      double per_source =
          stats.wall_ms / static_cast<double>(env->new_sources.size());
      double cmp_per_source =
          static_cast<double>(stats.attribute_comparisons) /
          static_cast<double>(env->new_sources.size());
      for (std::size_t i = 0; i < env->new_sources.size(); ++i) {
        row.wall_ms.Add(per_source);
        row.comparisons.Add(cmp_per_source);
      }
    }
  }

  std::printf("%-22s %14s %14s %16s\n", "strategy", "avg ms/source",
              "stddev", "avg comparisons");
  for (const auto& row : rows) {
    std::printf("%-22s %14.3f %14.3f %16.1f\n", row.name,
                row.wall_ms.mean(), row.wall_ms.stddev(),
                row.comparisons.mean());
  }
  const double exhaustive = rows[0].wall_ms.mean();
  for (std::size_t i = 1; i < rows.size(); ++i) {
    std::printf("%s vs Exhaustive: %.1f%% of the runtime\n", rows[i].name,
                100.0 * rows[i].wall_ms.mean() / exhaustive);
  }
  return 0;
}
