// Table 2: number of feedback steps required to first reach precision 1
// at each recall level in the schema graph. Paper shape: 1-2 steps
// suffice at every recall level (each step is on a different query, so
// later steps can temporarily disturb earlier gains — hence "first
// reach").
#include "bench_common.h"

int main() {
  q::bench::PrintHeader(
      "Table 2 — feedback steps to first reach precision 1 per recall",
      "SIGMOD'10 Table 2, InterPro-GO");

  const std::vector<double> levels{12.5, 25.0, 37.5, 50.0,
                                   62.5, 75.0, 87.5, 100.0};
  std::vector<int> first_step(levels.size(), -1);

  auto env = q::bench::BootstrapQuality(/*top_y=*/2);
  auto record = [&](std::size_t step) {
    auto curve = q::learn::GraphPrCurve(env.q->search_graph(),
                                        env.q->weights(),
                                        env.dataset.gold_edges);
    for (std::size_t i = 0; i < levels.size(); ++i) {
      if (first_step[i] >= 0) continue;
      for (const auto& p : curve) {
        if (p.precision >= 1.0 - 1e-9 &&
            p.recall * 100.0 >= levels[i] - 1e-9) {
          first_step[i] = static_cast<int>(step);
          break;
        }
      }
    }
  };
  // Step 0: unlearned combination.
  record(0);
  q::bench::TrainWithFeedback(&env, 10, 4, record);

  std::printf("%-14s", "Recall level");
  for (double l : levels) std::printf(" %7.1f", l);
  std::printf("\n%-14s", "Feedback steps");
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (first_step[i] < 0) {
      std::printf(" %7s", "-");
    } else {
      std::printf(" %7d", first_step[i]);
    }
  }
  std::printf("\n");
  return 0;
}
