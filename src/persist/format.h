#ifndef Q_PERSIST_FORMAT_H_
#define Q_PERSIST_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace q::persist {

// Low-level encoding for the snapshot file (docs/persistence.md). All
// integers are little-endian regardless of host; doubles are the IEEE-754
// bit pattern of the value. Strings are a u32 length followed by raw
// bytes. Decoding is bounds-checked everywhere: arbitrary byte garbage
// fed to a Decoder yields a util::Status, never UB — the property the
// bit-flip suite of the fault harness leans on.

// --- primitive writers -------------------------------------------------
void PutU8(std::string* out, std::uint8_t v);
void PutU32(std::string* out, std::uint32_t v);
void PutU64(std::string* out, std::uint64_t v);
void PutF64(std::string* out, double v);
void PutString(std::string* out, std::string_view v);

// --- bounds-checked reader ---------------------------------------------
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  util::Status GetU8(std::uint8_t* v);
  util::Status GetU32(std::uint32_t* v);
  util::Status GetU64(std::uint64_t* v);
  util::Status GetF64(double* v);
  util::Status GetString(std::string* v);

  // Reads a u32 element count that the remaining payload must plausibly
  // hold (>= count * min_element_bytes remaining), rejecting corrupt
  // counts before they can drive a giant allocation.
  util::Status GetCount(std::uint32_t* count, std::size_t min_element_bytes);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  util::Status Take(std::size_t n, const char** p);

  std::string_view data_;
  std::size_t pos_ = 0;
};

// CRC-32 (IEEE 802.3, the zlib polynomial).
std::uint32_t Crc32(std::string_view data);

// Incremental form, for checksumming discontiguous bytes (frame header +
// payload) without concatenating them first:
//   state = Crc32Update(kCrc32Init, part1);
//   state = Crc32Update(state, part2);
//   crc = Crc32Finish(state);
// Crc32(x) == Crc32Finish(Crc32Update(kCrc32Init, x)).
inline constexpr std::uint32_t kCrc32Init = 0xFFFFFFFFu;
std::uint32_t Crc32Update(std::uint32_t state, std::string_view data);
inline std::uint32_t Crc32Finish(std::uint32_t state) {
  return state ^ 0xFFFFFFFFu;
}

// --- snapshot file framing ----------------------------------------------
// File layout:
//   header:  magic "QSNAPS01" | u32 format version | u32 section count |
//            u32 crc over the preceding bytes
//   section: u32 tag | u64 payload length | u32 crc over tag+len+payload |
//            payload bytes
// Each section is independently framed and checksummed so damage to one
// leaves the others recoverable.

inline constexpr char kMagic[] = "QSNAPS01";  // 8 bytes on disk (no NUL)
inline constexpr std::size_t kMagicLen = 8;
inline constexpr std::uint32_t kFormatVersion = 1;

enum class SectionTag : std::uint32_t {
  kCatalog = 1,
  kFeatureSpace = 2,
  kGraph = 3,
  kWeights = 4,
  kFeedback = 5,
};

std::string_view SectionTagName(std::uint32_t tag);

// Appends the file header for a snapshot with `num_sections` sections.
void AppendHeader(std::string* out, std::uint32_t num_sections);

// Appends one framed, checksummed section.
void AppendSection(std::string* out, SectionTag tag, std::string_view payload);

struct ParsedSection {
  std::uint32_t tag = 0;
  std::string_view payload;  // views into the parsed buffer
};

struct ParseOutcome {
  std::vector<ParsedSection> sections;  // frames whose CRC verified
  // One message per damaged or lost section frame (CRC mismatch,
  // truncated tail, implausible length).
  std::vector<std::string> section_errors;
  std::uint32_t declared_sections = 0;
};

// Validates the header and walks the section frames. A section with an
// in-bounds frame but wrong CRC is skipped and reported; a frame whose
// declared length runs past the end of the file ends the walk (there is
// no way to resynchronize), reporting everything after it as lost.
// Returns non-OK only when the header itself is unusable (wrong magic,
// bad header CRC, unsupported version) — i.e. nothing can be salvaged.
// `file` must outlive the outcome (payloads are views into it).
util::Status ParseSnapshotFile(std::string_view file, ParseOutcome* out);

}  // namespace q::persist

#endif  // Q_PERSIST_FORMAT_H_
