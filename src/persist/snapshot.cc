#include "persist/snapshot.h"

#include <utility>

namespace q::persist {

namespace {

using relational::Value;
using relational::ValueType;

void PutAttributeId(std::string* out, const relational::AttributeId& id) {
  PutString(out, id.source);
  PutString(out, id.relation);
  PutString(out, id.attribute);
}

util::Status GetAttributeId(Decoder* dec, relational::AttributeId* id) {
  Q_RETURN_NOT_OK(dec->GetString(&id->source));
  Q_RETURN_NOT_OK(dec->GetString(&id->relation));
  Q_RETURN_NOT_OK(dec->GetString(&id->attribute));
  return util::Status::OK();
}

void PutValue(std::string* out, const Value& v) {
  PutU8(out, static_cast<std::uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt64:
      PutU64(out, static_cast<std::uint64_t>(v.AsInt64()));
      break;
    case ValueType::kDouble:
      PutF64(out, v.AsDouble());
      break;
    case ValueType::kString:
      PutString(out, v.AsString());
      break;
  }
}

util::Status GetValue(Decoder* dec, Value* v) {
  std::uint8_t tag;
  Q_RETURN_NOT_OK(dec->GetU8(&tag));
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      *v = Value::Null();
      return util::Status::OK();
    case ValueType::kInt64: {
      std::uint64_t bits;
      Q_RETURN_NOT_OK(dec->GetU64(&bits));
      *v = Value(static_cast<std::int64_t>(bits));
      return util::Status::OK();
    }
    case ValueType::kDouble: {
      double d;
      Q_RETURN_NOT_OK(dec->GetF64(&d));
      *v = Value(d);
      return util::Status::OK();
    }
    case ValueType::kString: {
      std::string s;
      Q_RETURN_NOT_OK(dec->GetString(&s));
      *v = Value(std::move(s));
      return util::Status::OK();
    }
  }
  return util::Status::InvalidArgument("unknown value type tag " +
                                       std::to_string(tag));
}

}  // namespace

// --- catalog ---------------------------------------------------------------

std::string EncodeCatalog(const relational::Catalog& catalog) {
  std::string out;
  PutU32(&out, static_cast<std::uint32_t>(catalog.sources().size()));
  for (const auto& source : catalog.sources()) {
    PutString(&out, source->name());
    PutU32(&out, static_cast<std::uint32_t>(source->tables().size()));
    for (const auto& table : source->tables()) {
      const relational::RelationSchema& schema = table->schema();
      PutString(&out, schema.source());
      PutString(&out, schema.relation());
      PutU32(&out, static_cast<std::uint32_t>(schema.attributes().size()));
      for (const relational::AttributeDef& attr : schema.attributes()) {
        PutString(&out, attr.name);
        PutU8(&out, static_cast<std::uint8_t>(attr.type));
      }
      PutU32(&out, static_cast<std::uint32_t>(schema.foreign_keys().size()));
      for (const relational::ForeignKey& fk : schema.foreign_keys()) {
        PutString(&out, fk.local_attribute);
        PutString(&out, fk.ref_source);
        PutString(&out, fk.ref_relation);
        PutString(&out, fk.ref_attribute);
      }
      PutU64(&out, table->num_rows());
      for (const relational::Row& row : table->rows()) {
        for (const Value& v : row) PutValue(&out, v);
      }
    }
  }
  return out;
}

util::Status DecodeCatalog(std::string_view payload,
                           relational::Catalog* out) {
  Decoder dec(payload);
  std::uint32_t num_sources;
  Q_RETURN_NOT_OK(dec.GetCount(&num_sources, 8));
  for (std::uint32_t s = 0; s < num_sources; ++s) {
    std::string name;
    Q_RETURN_NOT_OK(dec.GetString(&name));
    auto source = std::make_shared<relational::DataSource>(name);
    std::uint32_t num_tables;
    Q_RETURN_NOT_OK(dec.GetCount(&num_tables, 8));
    for (std::uint32_t t = 0; t < num_tables; ++t) {
      std::string schema_source, relation;
      Q_RETURN_NOT_OK(dec.GetString(&schema_source));
      Q_RETURN_NOT_OK(dec.GetString(&relation));
      std::uint32_t num_attrs;
      Q_RETURN_NOT_OK(dec.GetCount(&num_attrs, 5));
      std::vector<relational::AttributeDef> attrs(num_attrs);
      for (auto& attr : attrs) {
        Q_RETURN_NOT_OK(dec.GetString(&attr.name));
        std::uint8_t type;
        Q_RETURN_NOT_OK(dec.GetU8(&type));
        if (type > static_cast<std::uint8_t>(ValueType::kString)) {
          return util::Status::InvalidArgument("unknown attribute type tag " +
                                               std::to_string(type));
        }
        attr.type = static_cast<ValueType>(type);
      }
      auto table = std::make_shared<relational::Table>(
          relational::RelationSchema(schema_source, relation,
                                     std::move(attrs)));
      std::uint32_t num_fks;
      Q_RETURN_NOT_OK(dec.GetCount(&num_fks, 16));
      for (std::uint32_t f = 0; f < num_fks; ++f) {
        relational::ForeignKey fk;
        Q_RETURN_NOT_OK(dec.GetString(&fk.local_attribute));
        Q_RETURN_NOT_OK(dec.GetString(&fk.ref_source));
        Q_RETURN_NOT_OK(dec.GetString(&fk.ref_relation));
        Q_RETURN_NOT_OK(dec.GetString(&fk.ref_attribute));
        table->mutable_schema().AddForeignKey(std::move(fk));
      }
      std::uint64_t num_rows;
      Q_RETURN_NOT_OK(dec.GetU64(&num_rows));
      std::size_t cols = table->num_columns();
      if (num_rows > dec.remaining() / (cols > 0 ? cols : 1)) {
        return util::Status::OutOfRange("row count exceeds payload");
      }
      for (std::uint64_t r = 0; r < num_rows; ++r) {
        relational::Row row(cols);
        for (Value& v : row) Q_RETURN_NOT_OK(GetValue(&dec, &v));
        // AppendRow re-checks arity and per-column types, so a decoded
        // value of the wrong type surfaces as a Status here.
        Q_RETURN_NOT_OK(table->AppendRow(std::move(row)));
      }
      Q_RETURN_NOT_OK(source->AddTable(std::move(table)));
    }
    Q_RETURN_NOT_OK(out->AddSource(std::move(source)));
  }
  if (!dec.done()) {
    return util::Status::InvalidArgument("trailing bytes in catalog section");
  }
  return util::Status::OK();
}

// --- feature space -----------------------------------------------------------

std::string EncodeFeatureSpace(const graph::FeatureSpace& space) {
  std::string out;
  PutU32(&out, static_cast<std::uint32_t>(space.size()));
  for (std::size_t i = 0; i < space.size(); ++i) {
    PutString(&out, space.name(static_cast<graph::FeatureId>(i)));
    PutF64(&out, space.initial_weight(static_cast<graph::FeatureId>(i)));
  }
  return out;
}

util::Status DecodeFeatureSpace(std::string_view payload,
                                graph::FeatureSpace* space) {
  if (space->size() != 1) {
    return util::Status::InvalidArgument(
        "DecodeFeatureSpace needs a freshly constructed space");
  }
  Decoder dec(payload);
  std::uint32_t count;
  Q_RETURN_NOT_OK(dec.GetCount(&count, 12));
  if (count == 0) {
    return util::Status::InvalidArgument(
        "feature space missing the default feature");
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string name;
    double initial;
    Q_RETURN_NOT_OK(dec.GetString(&name));
    Q_RETURN_NOT_OK(dec.GetF64(&initial));
    if (i == 0) {
      if (name != space->name(graph::FeatureSpace::kDefaultFeature)) {
        return util::Status::InvalidArgument(
            "feature 0 is '" + name + "', expected 'default'");
      }
    } else {
      graph::FeatureId id = space->Intern(name, initial);
      // A duplicate name (or a non-fresh space) breaks the dense id <->
      // index correspondence every persisted id relies on.
      if (id != i) {
        return util::Status::InvalidArgument(
            "feature id mismatch for '" + name + "': got " +
            std::to_string(id) + ", expected " + std::to_string(i));
      }
    }
    // Persisted initial weights win over config-derived ones: the
    // restored WeightVector reads through to them for untouched ids, and
    // bit-identity with the saving system requires the saved values.
    space->SetInitialWeight(static_cast<graph::FeatureId>(i), initial);
  }
  if (!dec.done()) {
    return util::Status::InvalidArgument(
        "trailing bytes in feature_space section");
  }
  return util::Status::OK();
}

// --- search graph ------------------------------------------------------------

std::string EncodeGraph(const graph::SearchGraph& graph) {
  std::string out;
  PutU32(&out, static_cast<std::uint32_t>(graph.num_nodes()));
  for (std::size_t i = 0; i < graph.num_nodes(); ++i) {
    const graph::Node& node = graph.node(static_cast<graph::NodeId>(i));
    PutU8(&out, static_cast<std::uint8_t>(node.kind));
    PutString(&out, node.label);
    PutAttributeId(&out, node.attr);
    PutString(&out, graph.node_value_text(static_cast<graph::NodeId>(i)));
  }
  PutU32(&out, static_cast<std::uint32_t>(graph.num_edges()));
  for (std::size_t i = 0; i < graph.num_edges(); ++i) {
    const graph::EdgeId e = static_cast<graph::EdgeId>(i);
    const graph::EdgeView edge = graph.edge(e);
    PutU32(&out, edge.u);
    PutU32(&out, edge.v);
    PutU8(&out, static_cast<std::uint8_t>(edge.kind));
    PutU8(&out, edge.fixed_zero ? 1 : 0);
    const graph::FeatureVec& features = graph.edge_features(e);
    PutU32(&out, static_cast<std::uint32_t>(features.size()));
    for (const auto& [id, value] : features.entries()) {
      PutU32(&out, id);
      PutF64(&out, value);
    }
    const std::vector<graph::MatcherScore>& provenance =
        graph.edge_provenance(e);
    PutU32(&out, static_cast<std::uint32_t>(provenance.size()));
    for (const graph::MatcherScore& score : provenance) {
      PutString(&out, score.matcher);
      PutF64(&out, score.confidence);
    }
    PutAttributeId(&out, graph.edge_join_a(e));
    PutAttributeId(&out, graph.edge_join_b(e));
  }
  PutU64(&out, graph.journal_base_revision());
  std::vector<graph::GraphDelta> records = graph.JournalRecords();
  PutU32(&out, static_cast<std::uint32_t>(records.size()));
  for (const graph::GraphDelta& record : records) {
    PutU8(&out, static_cast<std::uint8_t>(record.kind));
    PutU32(&out, record.id);
  }
  return out;
}

util::Status DecodeGraph(std::string_view payload, std::size_t num_features,
                         graph::SearchGraph* out) {
  if (out->num_nodes() != 0 || out->num_edges() != 0) {
    return util::Status::InvalidArgument("DecodeGraph needs an empty graph");
  }
  Decoder dec(payload);
  std::uint32_t num_nodes;
  Q_RETURN_NOT_OK(dec.GetCount(&num_nodes, 17));
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    std::uint8_t kind;
    Q_RETURN_NOT_OK(dec.GetU8(&kind));
    if (kind > static_cast<std::uint8_t>(graph::NodeKind::kKeyword)) {
      return util::Status::InvalidArgument("unknown node kind " +
                                           std::to_string(kind));
    }
    std::string label, value_text;
    relational::AttributeId attr;
    Q_RETURN_NOT_OK(dec.GetString(&label));
    Q_RETURN_NOT_OK(GetAttributeId(&dec, &attr));
    Q_RETURN_NOT_OK(dec.GetString(&value_text));
    graph::NodeId id = out->AddNode(static_cast<graph::NodeKind>(kind),
                                    std::move(label), std::move(attr));
    // AddNode dedupes by (kind, label): a duplicate here means the
    // payload is internally inconsistent and persisted edge endpoints
    // would silently shift.
    if (id != i) {
      return util::Status::InvalidArgument("duplicate node at index " +
                                           std::to_string(i));
    }
    if (!value_text.empty()) {
      out->SetNodeValueText(id, std::move(value_text));
    }
  }
  std::uint32_t num_edges;
  Q_RETURN_NOT_OK(dec.GetCount(&num_edges, 36));
  for (std::uint32_t i = 0; i < num_edges; ++i) {
    graph::Edge edge;
    Q_RETURN_NOT_OK(dec.GetU32(&edge.u));
    Q_RETURN_NOT_OK(dec.GetU32(&edge.v));
    // Pre-validate what AddEdge would Q_CHECK: decoded data must never be
    // able to abort the process.
    if (edge.u >= num_nodes || edge.v >= num_nodes || edge.u == edge.v) {
      return util::Status::InvalidArgument(
          "edge " + std::to_string(i) + " has invalid endpoints " +
          std::to_string(edge.u) + "-" + std::to_string(edge.v));
    }
    std::uint8_t kind;
    Q_RETURN_NOT_OK(dec.GetU8(&kind));
    if (kind > static_cast<std::uint8_t>(graph::EdgeKind::kValueMembership)) {
      return util::Status::InvalidArgument("unknown edge kind " +
                                           std::to_string(kind));
    }
    edge.kind = static_cast<graph::EdgeKind>(kind);
    std::uint8_t fixed_zero;
    Q_RETURN_NOT_OK(dec.GetU8(&fixed_zero));
    edge.fixed_zero = fixed_zero != 0;
    std::uint32_t num_feat;
    Q_RETURN_NOT_OK(dec.GetCount(&num_feat, 12));
    for (std::uint32_t f = 0; f < num_feat; ++f) {
      std::uint32_t fid;
      double value;
      Q_RETURN_NOT_OK(dec.GetU32(&fid));
      Q_RETURN_NOT_OK(dec.GetF64(&value));
      if (fid >= num_features) {
        return util::Status::InvalidArgument(
            "edge " + std::to_string(i) + " references unknown feature id " +
            std::to_string(fid));
      }
      edge.features.Add(fid, value);
    }
    std::uint32_t num_prov;
    Q_RETURN_NOT_OK(dec.GetCount(&num_prov, 12));
    edge.provenance.resize(num_prov);
    for (graph::MatcherScore& score : edge.provenance) {
      Q_RETURN_NOT_OK(dec.GetString(&score.matcher));
      Q_RETURN_NOT_OK(dec.GetF64(&score.confidence));
    }
    Q_RETURN_NOT_OK(GetAttributeId(&dec, &edge.join_a));
    Q_RETURN_NOT_OK(GetAttributeId(&dec, &edge.join_b));
    out->AddEdge(std::move(edge));
  }
  std::uint64_t base_revision;
  Q_RETURN_NOT_OK(dec.GetU64(&base_revision));
  std::uint32_t num_records;
  Q_RETURN_NOT_OK(dec.GetCount(&num_records, 5));
  std::vector<graph::GraphDelta> records(num_records);
  for (graph::GraphDelta& record : records) {
    std::uint8_t kind;
    Q_RETURN_NOT_OK(dec.GetU8(&kind));
    if (kind > static_cast<std::uint8_t>(graph::GraphDeltaKind::kEdgeMutated)) {
      return util::Status::InvalidArgument("unknown graph delta kind " +
                                           std::to_string(kind));
    }
    record.kind = static_cast<graph::GraphDeltaKind>(kind);
    Q_RETURN_NOT_OK(dec.GetU32(&record.id));
    bool is_node = record.kind == graph::GraphDeltaKind::kNodeAdded ||
                   record.kind == graph::GraphDeltaKind::kNodeMutated;
    if (record.id >= (is_node ? num_nodes : num_edges)) {
      return util::Status::InvalidArgument(
          "graph delta references out-of-range id " +
          std::to_string(record.id));
    }
  }
  if (!dec.done()) {
    return util::Status::InvalidArgument("trailing bytes in graph section");
  }
  // Installing the saved journal last wipes the records AddNode/AddEdge
  // appended during reconstruction, restoring the exact saved revision.
  out->RestoreJournal(base_revision, std::move(records));
  return util::Status::OK();
}

// --- weights -----------------------------------------------------------------

std::string EncodeWeights(const graph::WeightVector& weights) {
  std::string out;
  PutU32(&out, static_cast<std::uint32_t>(weights.values().size()));
  for (double v : weights.values()) PutF64(&out, v);
  PutU64(&out, weights.journal_base_revision());
  std::vector<graph::FeatureDelta> records = weights.JournalRecords();
  PutU32(&out, static_cast<std::uint32_t>(records.size()));
  for (const graph::FeatureDelta& record : records) {
    PutU32(&out, record.id);
    PutF64(&out, record.old_value);
    PutF64(&out, record.new_value);
  }
  return out;
}

util::Status DecodeWeights(std::string_view payload, std::size_t num_features,
                           graph::WeightVector* out) {
  Decoder dec(payload);
  std::uint32_t num_values;
  Q_RETURN_NOT_OK(dec.GetCount(&num_values, 8));
  if (num_values > num_features) {
    return util::Status::InvalidArgument(
        "weight vector longer than feature space");
  }
  std::vector<double> values(num_values);
  for (double& v : values) Q_RETURN_NOT_OK(dec.GetF64(&v));
  std::uint64_t base_revision;
  Q_RETURN_NOT_OK(dec.GetU64(&base_revision));
  std::uint32_t num_records;
  Q_RETURN_NOT_OK(dec.GetCount(&num_records, 20));
  std::vector<graph::FeatureDelta> records(num_records);
  for (graph::FeatureDelta& record : records) {
    Q_RETURN_NOT_OK(dec.GetU32(&record.id));
    Q_RETURN_NOT_OK(dec.GetF64(&record.old_value));
    Q_RETURN_NOT_OK(dec.GetF64(&record.new_value));
    if (record.id >= num_features) {
      return util::Status::InvalidArgument(
          "weight journal references unknown feature id " +
          std::to_string(record.id));
    }
  }
  if (!dec.done()) {
    return util::Status::InvalidArgument("trailing bytes in weights section");
  }
  out->Restore(std::move(values), base_revision, std::move(records));
  return util::Status::OK();
}

// --- feedback log ------------------------------------------------------------

std::string EncodeFeedback(const feedback::FeedbackLog& log) {
  std::string out;
  PutU64(&out, log.next_sequence());
  std::vector<feedback::FeedbackEvent> events = log.Snapshot();
  PutU32(&out, static_cast<std::uint32_t>(events.size()));
  for (const feedback::FeedbackEvent& event : events) {
    PutU8(&out, static_cast<std::uint8_t>(event.kind));
    PutU8(&out, event.replayable ? 1 : 0);
    PutU64(&out, event.sequence);
    PutU64(&out, event.weight_revision);
    PutU32(&out, static_cast<std::uint32_t>(event.keywords.size()));
    for (const std::string& kw : event.keywords) PutString(&out, kw);
    PutU32(&out, static_cast<std::uint32_t>(event.deltas.size()));
    for (const graph::FeatureDelta& d : event.deltas) {
      PutU32(&out, d.id);
      PutF64(&out, d.old_value);
      PutF64(&out, d.new_value);
    }
  }
  return out;
}

util::Status DecodeFeedback(std::string_view payload,
                            feedback::FeedbackLog* out) {
  Decoder dec(payload);
  std::uint64_t next_sequence;
  Q_RETURN_NOT_OK(dec.GetU64(&next_sequence));
  std::uint32_t num_events;
  Q_RETURN_NOT_OK(dec.GetCount(&num_events, 26));
  std::vector<feedback::FeedbackEvent> events(num_events);
  for (feedback::FeedbackEvent& event : events) {
    std::uint8_t kind, replayable;
    Q_RETURN_NOT_OK(dec.GetU8(&kind));
    if (kind > static_cast<std::uint8_t>(feedback::FeedbackKind::kGold)) {
      return util::Status::InvalidArgument("unknown feedback kind " +
                                           std::to_string(kind));
    }
    event.kind = static_cast<feedback::FeedbackKind>(kind);
    Q_RETURN_NOT_OK(dec.GetU8(&replayable));
    event.replayable = replayable != 0;
    Q_RETURN_NOT_OK(dec.GetU64(&event.sequence));
    Q_RETURN_NOT_OK(dec.GetU64(&event.weight_revision));
    std::uint32_t num_keywords;
    Q_RETURN_NOT_OK(dec.GetCount(&num_keywords, 4));
    event.keywords.resize(num_keywords);
    for (std::string& kw : event.keywords) {
      Q_RETURN_NOT_OK(dec.GetString(&kw));
    }
    std::uint32_t num_deltas;
    Q_RETURN_NOT_OK(dec.GetCount(&num_deltas, 20));
    event.deltas.resize(num_deltas);
    for (graph::FeatureDelta& d : event.deltas) {
      Q_RETURN_NOT_OK(dec.GetU32(&d.id));
      Q_RETURN_NOT_OK(dec.GetF64(&d.old_value));
      Q_RETURN_NOT_OK(dec.GetF64(&d.new_value));
    }
  }
  if (!dec.done()) {
    return util::Status::InvalidArgument("trailing bytes in feedback section");
  }
  out->Restore(next_sequence, std::move(events));
  return util::Status::OK();
}

// --- file orchestration --------------------------------------------------

std::string SnapshotFilePath(const std::string& dir) {
  return dir + "/snapshot.qs";
}

util::Status SaveSnapshot(const SnapshotState& state, const std::string& dir,
                          util::Env* env) {
  if (env == nullptr) env = util::DefaultEnv();
  if (state.catalog == nullptr || state.space == nullptr ||
      state.graph == nullptr || state.weights == nullptr ||
      state.log == nullptr) {
    return util::Status::InvalidArgument("SaveSnapshot: null state pointer");
  }

  struct SectionBuf {
    SectionTag tag;
    std::string payload;
  };
  const SectionBuf sections[] = {
      {SectionTag::kCatalog, EncodeCatalog(*state.catalog)},
      {SectionTag::kFeatureSpace, EncodeFeatureSpace(*state.space)},
      {SectionTag::kGraph, EncodeGraph(*state.graph)},
      {SectionTag::kWeights, EncodeWeights(*state.weights)},
      {SectionTag::kFeedback, EncodeFeedback(*state.log)},
  };
  constexpr std::uint32_t kNumSections = 5;

  Q_RETURN_NOT_OK(env->CreateDirs(dir).WithContext("SaveSnapshot"));
  const std::string tmp = SnapshotFilePath(dir) + ".tmp";
  // A stale temp file from an earlier crashed save must not leak bytes
  // into this one (we stage with appends).
  Q_RETURN_NOT_OK(env->RemoveFile(tmp).WithContext("SaveSnapshot"));

  // Stage section by section: each append is a separate kill point for
  // the fault harness, modelling a crash partway through the write.
  std::string header;
  AppendHeader(&header, kNumSections);
  Q_RETURN_NOT_OK(env->AppendFile(tmp, header).WithContext("SaveSnapshot"));
  for (const SectionBuf& section : sections) {
    std::string framed;
    AppendSection(&framed, section.tag, section.payload);
    Q_RETURN_NOT_OK(env->AppendFile(tmp, framed).WithContext("SaveSnapshot"));
  }

  // The atomic commit: data to disk, then the rename, then the rename to
  // disk. Any prefix of this sequence leaves the previous snapshot (or
  // its absence) fully intact.
  Q_RETURN_NOT_OK(env->SyncFile(tmp).WithContext("SaveSnapshot"));
  Q_RETURN_NOT_OK(
      env->RenameFile(tmp, SnapshotFilePath(dir)).WithContext("SaveSnapshot"));
  Q_RETURN_NOT_OK(env->SyncDir(dir).WithContext("SaveSnapshot"));
  return util::Status::OK();
}

util::Status ReadSnapshotFile(const std::string& dir, util::Env* env,
                              LoadedSnapshot* out) {
  if (env == nullptr) env = util::DefaultEnv();
  auto file = env->ReadFile(SnapshotFilePath(dir));
  if (!file.ok()) {
    return file.status().WithContext("ReadSnapshotFile");
  }
  out->file = *std::move(file);
  // Parse after the buffer has reached its final address: payloads are
  // views into out->file.
  return ParseSnapshotFile(out->file, &out->outcome);
}

std::string SnapshotLoadReport::Summary() const {
  auto line = [](const char* name, const util::Status& status) {
    return std::string(name) + ": " + status.ToString() + "\n";
  };
  std::string out;
  out += "cold_start: ";
  out += cold_start ? "true" : "false";
  out += "\n";
  out += "weights_replayed: ";
  out += weights_replayed ? "true" : "false";
  out += "\n";
  out += line("header", header);
  out += line("catalog", catalog);
  out += line("feature_space", feature_space);
  out += line("graph", graph);
  out += line("weights", weights);
  out += line("feedback", feedback);
  for (const std::string& note : notes) {
    out += "note: " + note + "\n";
  }
  return out;
}

}  // namespace q::persist
