#include "persist/format.h"

#include <cstring>

namespace q::persist {

void PutU8(std::string* out, std::uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutF64(std::string* out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double is not 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, std::string_view v) {
  PutU32(out, static_cast<std::uint32_t>(v.size()));
  out->append(v.data(), v.size());
}

util::Status Decoder::Take(std::size_t n, const char** p) {
  if (remaining() < n) {
    return util::Status::OutOfRange("decode past end of payload");
  }
  *p = data_.data() + pos_;
  pos_ += n;
  return util::Status::OK();
}

util::Status Decoder::GetU8(std::uint8_t* v) {
  const char* p;
  Q_RETURN_NOT_OK(Take(1, &p));
  *v = static_cast<std::uint8_t>(*p);
  return util::Status::OK();
}

util::Status Decoder::GetU32(std::uint32_t* v) {
  const char* p;
  Q_RETURN_NOT_OK(Take(4, &p));
  std::uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
           << (8 * i);
  }
  *v = out;
  return util::Status::OK();
}

util::Status Decoder::GetU64(std::uint64_t* v) {
  const char* p;
  Q_RETURN_NOT_OK(Take(8, &p));
  std::uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
           << (8 * i);
  }
  *v = out;
  return util::Status::OK();
}

util::Status Decoder::GetF64(double* v) {
  std::uint64_t bits;
  Q_RETURN_NOT_OK(GetU64(&bits));
  std::memcpy(v, &bits, sizeof(*v));
  return util::Status::OK();
}

util::Status Decoder::GetString(std::string* v) {
  std::uint32_t len;
  Q_RETURN_NOT_OK(GetU32(&len));
  if (remaining() < len) {
    return util::Status::OutOfRange("string length exceeds payload");
  }
  const char* p;
  Q_RETURN_NOT_OK(Take(len, &p));
  v->assign(p, len);
  return util::Status::OK();
}

util::Status Decoder::GetCount(std::uint32_t* count,
                               std::size_t min_element_bytes) {
  Q_RETURN_NOT_OK(GetU32(count));
  if (min_element_bytes > 0 &&
      static_cast<std::uint64_t>(*count) * min_element_bytes > remaining()) {
    return util::Status::OutOfRange("element count exceeds payload");
  }
  return util::Status::OK();
}

namespace {

// Slicing-by-8 CRC-32 (reflected polynomial 0xEDB88320). Table s maps a
// byte that still has s more whole-table shifts ahead of it; processing
// eight bytes per step keeps snapshot verification off the load path's
// critical profile (the file CRC is recomputed over every byte on open).
struct CrcTables {
  std::uint32_t t[8][256];
};

const CrcTables& GetCrcTables() {
  static const CrcTables tables = [] {
    CrcTables tb;
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      tb.t[0][i] = c;
    }
    for (int s = 1; s < 8; ++s) {
      for (std::uint32_t i = 0; i < 256; ++i) {
        tb.t[s][i] = tb.t[0][tb.t[s - 1][i] & 0xff] ^ (tb.t[s - 1][i] >> 8);
      }
    }
    return tb;
  }();
  return tables;
}

}  // namespace

std::uint32_t Crc32Update(std::uint32_t state, std::string_view data) {
  const CrcTables& tb = GetCrcTables();
  const auto* p = reinterpret_cast<const unsigned char*>(data.data());
  std::size_t n = data.size();
  std::uint32_t crc = state;
  while (n >= 8) {
    // Byte-composed loads keep this endian-independent; compilers fold
    // them into single 32-bit loads on little-endian targets.
    std::uint32_t lo = static_cast<std::uint32_t>(p[0]) |
                       static_cast<std::uint32_t>(p[1]) << 8 |
                       static_cast<std::uint32_t>(p[2]) << 16 |
                       static_cast<std::uint32_t>(p[3]) << 24;
    std::uint32_t hi = static_cast<std::uint32_t>(p[4]) |
                       static_cast<std::uint32_t>(p[5]) << 8 |
                       static_cast<std::uint32_t>(p[6]) << 16 |
                       static_cast<std::uint32_t>(p[7]) << 24;
    lo ^= crc;
    crc = tb.t[7][lo & 0xff] ^ tb.t[6][(lo >> 8) & 0xff] ^
          tb.t[5][(lo >> 16) & 0xff] ^ tb.t[4][lo >> 24] ^
          tb.t[3][hi & 0xff] ^ tb.t[2][(hi >> 8) & 0xff] ^
          tb.t[1][(hi >> 16) & 0xff] ^ tb.t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = tb.t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
  }
  return crc;
}

std::uint32_t Crc32(std::string_view data) {
  return Crc32Finish(Crc32Update(kCrc32Init, data));
}

std::string_view SectionTagName(std::uint32_t tag) {
  switch (static_cast<SectionTag>(tag)) {
    case SectionTag::kCatalog:
      return "catalog";
    case SectionTag::kFeatureSpace:
      return "feature_space";
    case SectionTag::kGraph:
      return "graph";
    case SectionTag::kWeights:
      return "weights";
    case SectionTag::kFeedback:
      return "feedback";
  }
  return "unknown";
}

void AppendHeader(std::string* out, std::uint32_t num_sections) {
  std::size_t start = out->size();
  out->append(kMagic, kMagicLen);
  PutU32(out, kFormatVersion);
  PutU32(out, num_sections);
  PutU32(out, Crc32(std::string_view(*out).substr(start)));
}

void AppendSection(std::string* out, SectionTag tag,
                   std::string_view payload) {
  std::size_t start = out->size();
  PutU32(out, static_cast<std::uint32_t>(tag));
  PutU64(out, payload.size());
  // The CRC covers tag + length + payload so a bit-flip anywhere in the
  // frame — including the length field itself — is detected.
  std::uint32_t crc =
      Crc32Update(kCrc32Init, std::string_view(*out).substr(start));
  PutU32(out, Crc32Finish(Crc32Update(crc, payload)));
  out->append(payload.data(), payload.size());
}

util::Status ParseSnapshotFile(std::string_view file, ParseOutcome* out) {
  constexpr std::size_t kHeaderLen = kMagicLen + 4 + 4 + 4;
  if (file.size() < kHeaderLen) {
    return util::Status::OutOfRange("snapshot header truncated");
  }
  if (file.substr(0, kMagicLen) != std::string_view(kMagic, kMagicLen)) {
    return util::Status::InvalidArgument("snapshot magic mismatch");
  }
  Decoder header(file.substr(kMagicLen, kHeaderLen - kMagicLen));
  std::uint32_t version, num_sections, header_crc;
  Q_RETURN_NOT_OK(header.GetU32(&version));
  Q_RETURN_NOT_OK(header.GetU32(&num_sections));
  Q_RETURN_NOT_OK(header.GetU32(&header_crc));
  if (Crc32(file.substr(0, kHeaderLen - 4)) != header_crc) {
    return util::Status::InvalidArgument("snapshot header checksum mismatch");
  }
  if (version != kFormatVersion) {
    return util::Status::Unimplemented(
        "unsupported snapshot format version " + std::to_string(version));
  }
  out->declared_sections = num_sections;

  std::size_t pos = kHeaderLen;
  for (std::uint32_t i = 0; i < num_sections; ++i) {
    constexpr std::size_t kFrameLen = 4 + 8 + 4;
    if (file.size() - pos < kFrameLen) {
      out->section_errors.push_back(
          "section " + std::to_string(i) + ": frame truncated (" +
          std::to_string(num_sections - i) + " section(s) lost)");
      return util::Status::OK();
    }
    Decoder frame(file.substr(pos, kFrameLen));
    std::uint32_t tag, crc;
    std::uint64_t len;
    Q_RETURN_NOT_OK(frame.GetU32(&tag));
    Q_RETURN_NOT_OK(frame.GetU64(&len));
    Q_RETURN_NOT_OK(frame.GetU32(&crc));
    if (len > file.size() - pos - kFrameLen) {
      // Either a truncated tail or a corrupted length field; both lose
      // this frame and everything after it (no resync point).
      out->section_errors.push_back(
          "section " + std::to_string(i) + " (" +
          std::string(SectionTagName(tag)) +
          "): payload runs past end of file (" +
          std::to_string(num_sections - i) + " section(s) lost)");
      return util::Status::OK();
    }
    std::string_view payload = file.substr(pos + kFrameLen, len);
    std::uint32_t actual =
        Crc32Update(kCrc32Init, file.substr(pos, 4 + 8));
    if (Crc32Finish(Crc32Update(actual, payload)) != crc) {
      out->section_errors.push_back(
          "section " + std::to_string(i) + " (" +
          std::string(SectionTagName(tag)) + "): checksum mismatch");
    } else {
      out->sections.push_back(ParsedSection{tag, payload});
    }
    pos += kFrameLen + len;
  }
  if (pos != file.size()) {
    // Trailing garbage after the declared sections — tolerated (all
    // declared sections verified) but worth surfacing.
    out->section_errors.push_back("trailing bytes after last section");
  }
  return util::Status::OK();
}

}  // namespace q::persist
