#ifndef Q_PERSIST_SNAPSHOT_H_
#define Q_PERSIST_SNAPSHOT_H_

#include <string>
#include <string_view>
#include <vector>

#include "feedback/feedback_log.h"
#include "graph/feature.h"
#include "graph/search_graph.h"
#include "persist/format.h"
#include "relational/catalog.h"
#include "util/env.h"
#include "util/result.h"
#include "util/status.h"

namespace q::persist {

// Serialization of QSystem's durable core (docs/persistence.md): the
// catalog + schemas, the search graph with its association edges and
// delta journal, the learned weight vector with its feature-delta
// journal, and the feedback log. One snapshot file, one checksummed
// section per structure, written atomically (temp file -> fsync ->
// rename -> dir fsync) through an injectable util::Env.
//
// This layer is mechanism only: encode, frame, verify, decode. The
// recovery *policy* — which sections to keep when others are damaged —
// is the caller's (QSystem::OpenFromSnapshot's recovery ladder).

// The snapshot file inside a snapshot directory.
std::string SnapshotFilePath(const std::string& dir);

// Borrowed pointers to the structures a save serializes. Caller
// guarantees quiescence (no concurrent mutation) for the duration.
struct SnapshotState {
  const relational::Catalog* catalog = nullptr;
  const graph::FeatureSpace* space = nullptr;
  const graph::SearchGraph* graph = nullptr;
  const graph::WeightVector* weights = nullptr;
  const feedback::FeedbackLog* log = nullptr;
};

// Writes a snapshot of `state` into `dir` atomically: stage every
// section into "<dir>/snapshot.qs.tmp", fsync it, rename over
// "<dir>/snapshot.qs", fsync the directory. A crash at any point leaves
// either the previous snapshot intact or (first save) no snapshot — the
// kill-point harness in tests/persist_fault_test.cc proves this over
// every operation of the sequence. `env` defaults to the real
// filesystem.
util::Status SaveSnapshot(const SnapshotState& state, const std::string& dir,
                          util::Env* env = nullptr);

// A snapshot file read into memory with its frames verified. Payload
// views point into `file`; keep the struct alive while decoding.
struct LoadedSnapshot {
  std::string file;
  ParseOutcome outcome;

  // The verified payload for `tag`, or nullptr when that section is
  // missing or failed its checksum.
  const ParsedSection* Find(SectionTag tag) const {
    for (const ParsedSection& s : outcome.sections) {
      if (s.tag == static_cast<std::uint32_t>(tag)) return &s;
    }
    return nullptr;
  }
};

// Reads and frame-verifies "<dir>/snapshot.qs". NotFound when no
// snapshot exists; InvalidArgument/OutOfRange/Unimplemented when the
// header is unusable (nothing salvageable). Individual damaged sections
// do NOT fail this call — they are reported in outcome.section_errors
// and skipped, so the caller can degrade per-section.
util::Status ReadSnapshotFile(const std::string& dir, util::Env* env,
                              LoadedSnapshot* out);

// --- per-structure encode/decode ----------------------------------------
// Decoders validate everything (kinds, index bounds, feature ids, counts)
// and return Status on any inconsistency: even a payload that passes its
// CRC by collision cannot crash or corrupt the process.

std::string EncodeCatalog(const relational::Catalog& catalog);
util::Status DecodeCatalog(std::string_view payload,
                           relational::Catalog* out);

std::string EncodeFeatureSpace(const graph::FeatureSpace& space);
// `space` must be freshly constructed (only the pre-interned "default"
// feature); persisted initial weights override config-derived ones.
util::Status DecodeFeatureSpace(std::string_view payload,
                                graph::FeatureSpace* space);

std::string EncodeGraph(const graph::SearchGraph& graph);
// `num_features` bounds the feature ids edges may reference (the decoded
// feature space's size). `out` must be empty.
util::Status DecodeGraph(std::string_view payload, std::size_t num_features,
                         graph::SearchGraph* out);

std::string EncodeWeights(const graph::WeightVector& weights);
util::Status DecodeWeights(std::string_view payload, std::size_t num_features,
                           graph::WeightVector* out);

std::string EncodeFeedback(const feedback::FeedbackLog& log);
util::Status DecodeFeedback(std::string_view payload,
                            feedback::FeedbackLog* out);

// --- load report ----------------------------------------------------------
// Per-section outcome of QSystem::OpenFromSnapshot, for callers that want
// to know how much state survived and log it.
struct SnapshotLoadReport {
  // True when every section decoded and was applied: the restored system
  // is bit-identical (at quiescence) to the one that saved.
  bool complete() const {
    return !cold_start && header.ok() && catalog.ok() && feature_space.ok() &&
           graph.ok() && weights.ok() && feedback.ok();
  }

  // The snapshot was unusable (or damaged beyond the catalog): the
  // system came up empty, as if newly constructed.
  bool cold_start = false;
  // Degraded weights path: values were rebuilt by replaying the
  // persisted feedback log instead of being restored directly.
  bool weights_replayed = false;

  util::Status header;
  util::Status catalog;
  util::Status feature_space;
  util::Status graph;
  util::Status weights;
  util::Status feedback;

  // Human-readable degradation notes ("associations lost; re-run
  // alignment", frame-level section errors, ...).
  std::vector<std::string> notes;

  // One-line-per-section summary for logs.
  std::string Summary() const;
};

}  // namespace q::persist

#endif  // Q_PERSIST_SNAPSHOT_H_
