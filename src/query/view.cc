#include "query/view.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

namespace q::query {

util::Status TopKView::Refresh(const graph::SearchGraph& base,
                               const relational::Catalog& catalog,
                               const text::TextIndex& index,
                               graph::CostModel* model,
                               const graph::WeightVector& weights) {
  Q_RETURN_NOT_OK(RebuildQueryGraph(base, index, model, weights));
  return RunSearch(catalog, weights);
}

util::Status TopKView::RebuildQueryGraph(const graph::SearchGraph& base,
                                         const text::TextIndex& index,
                                         graph::CostModel* model,
                                         const graph::WeightVector& weights) {
  Q_ASSIGN_OR_RETURN(query_graph_,
                     BuildQueryGraph(base, index, keywords_, model, weights,
                                     config_.query_graph));
  // The certificate's edge ids refer to the replaced graph; it is rebuilt
  // by the next RunSearch.
  certificate_.valid = false;
  return util::Status::OK();
}

bool TopKView::PropagateBaseEdges(const graph::SearchGraph& base,
                                  const std::vector<graph::EdgeId>& edges) {
  if (!refreshed()) return false;  // no cached query graph to patch
  // Verify-then-apply in two passes: a failed check must leave the cached
  // graph untouched so the caller's rebuild starts from consistent state.
  for (graph::EdgeId e : edges) {
    if (e >= base.num_edges() || e >= query_graph_.graph.num_edges()) {
      return false;
    }
    const graph::EdgeView src = base.edge(e);
    const graph::EdgeView dst = query_graph_.graph.edge(e);
    if (src.u != dst.u || src.v != dst.v || src.kind != dst.kind ||
        src.fixed_zero != dst.fixed_zero) {
      return false;
    }
  }
  for (graph::EdgeId e : edges) {
    query_graph_.graph.OverwriteEdge(e, base.ExportEdge(e));
  }
  return true;
}

util::Result<ViewSnapshot> TopKView::BuildSearchSnapshot(
    const relational::Catalog& catalog, const graph::WeightVector& weights,
    steiner::FastSteinerEngine* shared_engine,
    const steiner::SnapshotPin* pin) const {
  ViewSnapshot snapshot;
  steiner::RelevanceCertificate& certificate = snapshot.certificate;
  std::vector<steiner::SteinerTree> trees = steiner::TopKSteinerTrees(
      query_graph_.graph, weights, query_graph_.keyword_nodes,
      config_.top_k, shared_engine, &certificate, pin);
  std::vector<ConjunctiveQuery> queries;
  std::vector<std::vector<relational::Row>> per_query_rows;
  Executor executor(&catalog, config_.executor);
  for (const steiner::SteinerTree& tree : trees) {
    Q_ASSIGN_OR_RETURN(ConjunctiveQuery cq,
                       CompileTree(query_graph_, tree, weights));
    auto rows = executor.Execute(cq);
    if (!rows.ok()) {
      // Row-limit overruns degrade gracefully to an empty branch; other
      // errors propagate.
      if (!rows.status().IsOutOfRange()) return rows.status();
      per_query_rows.emplace_back();
    } else {
      per_query_rows.push_back(std::move(rows).value());
    }
    queries.push_back(std::move(cq));
  }
  RankedResults results =
      DisjointUnion(query_graph_, weights, queries, per_query_rows,
                    config_.union_similarity_threshold);
  // Augment the search certificate with every edge DisjointUnion's
  // schema-unification prices: all edges incident to each select-list
  // attribute's node (FindCompatibleColumn walks them for association
  // edges under the similarity threshold). Relation-level keyword matches
  // select an attribute whose node need not be in any tree, so tree
  // adjacency alone would miss these reads.
  if (certificate.valid) {
    for (const ConjunctiveQuery& cq : queries) {
      for (const OutputColumn& col : cq.select_list) {
        auto node = query_graph_.graph.FindAttributeNode(col.attr);
        if (!node.has_value()) continue;
        const graph::AdjacencyRange incident =
            query_graph_.graph.edges_of(*node);
        certificate.edges.insert(certificate.edges.end(), incident.begin(),
                                 incident.end());
      }
    }
    std::sort(certificate.edges.begin(), certificate.edges.end());
    certificate.edges.erase(
        std::unique(certificate.edges.begin(), certificate.edges.end()),
        certificate.edges.end());
    // Structural half: an alpha-neighborhood ball around the first
    // terminal, used by core::ClassifyStructuralRelevance to prove that a
    // newly registered source cannot enter this view's top-k. Any tree
    // using new topology walks from the anchor terminal to an attachment
    // node over old edges first, so its cost is at least the baseline
    // anchor distance recorded here. The 2*kth+1 radius leaves room for
    // the weight-gate's net_decrease before out-of-ball attachments stop
    // skipping.
    certificate.kth_cost =
        trees.size() == static_cast<std::size_t>(config_.top_k.k)
            ? trees.back().cost
            : std::numeric_limits<double>::infinity();
    certificate.keyword_fingerprint = query_graph_.keyword_fingerprint;
    certificate.alpha_radius = 0.0;
    if (std::isfinite(certificate.kth_cost) &&
        !query_graph_.keyword_nodes.empty()) {
      certificate.alpha_radius = 2.0 * certificate.kth_cost + 1.0;
      graph::DistanceField field;
      query_graph_.graph.Dijkstra(
          {{query_graph_.keyword_nodes.front(), 0.0}}, weights,
          certificate.alpha_radius, &field);
      certificate.alpha_nodes.assign(field.reached().begin(),
                                     field.reached().end());
      std::sort(certificate.alpha_nodes.begin(), certificate.alpha_nodes.end());
      certificate.alpha_dist.resize(certificate.alpha_nodes.size());
      for (std::size_t i = 0; i < certificate.alpha_nodes.size(); ++i) {
        certificate.alpha_dist[i] = field.At(certificate.alpha_nodes[i]);
      }
    }
    certificate.structural_valid = true;
  }
  snapshot.trees = std::move(trees);
  snapshot.queries = std::move(queries);
  snapshot.results = std::move(results);
  // certificate.serial and search_serial stay 0 (a consistent pair):
  // only publication stamps real serials, under state_mu_.
  return snapshot;
}

util::Status TopKView::RunSearch(const relational::Catalog& catalog,
                                 const graph::WeightVector& weights,
                                 steiner::FastSteinerEngine* shared_engine) {
  // Build into a fresh snapshot and swap on success only: a mid-search
  // failure must not leave trees/queries/results mutually inconsistent
  // (result rows index queries by position — see ApplyInvalidFeedback) —
  // and concurrent readers holding the previous Snapshot() must keep a
  // complete result set until the new one is published whole (the
  // double-buffered half of the async refresh contract).
  Q_ASSIGN_OR_RETURN(ViewSnapshot built,
                     BuildSearchSnapshot(catalog, weights, shared_engine,
                                         /*pin=*/nullptr));
  auto next = std::make_shared<ViewSnapshot>(std::move(built));
  {
    // Serial stamping, certificate publication, and snapshot swap happen
    // in ONE critical section: a reader can never observe a certificate
    // whose serial disagrees with its snapshot's search_serial, nor a
    // serial bump without the matching snapshot.
    std::lock_guard<std::mutex> lock(state_mu_);
    ++certificate_serial_;
    next->certificate.serial = certificate_serial_;
    next->search_serial = certificate_serial_;
    certificate_ = next->certificate;
    state_ = std::move(next);
  }
  refreshed_.store(true, std::memory_order_release);
  return util::Status::OK();
}

double TopKView::Alpha() const {
  // Alpha is "the cost of the k-th top-scoring result for the user view"
  // (Sec. 3.3) — the k-th ranked *answer*, not the k-th tree: a view with
  // plenty of cheap answers is hard to break into. With fewer than k
  // answers, any relevant new source could enter the top-k, so nothing
  // may be pruned. Reads through Snapshot() so it is safe against a
  // concurrent RunSearch publishing the next buffer.
  std::size_t k = static_cast<std::size_t>(config_.top_k.k);
  if (!refreshed()) return std::numeric_limits<double>::infinity();
  std::shared_ptr<const ViewSnapshot> state = Snapshot();
  if (state->results.rows.size() < k) {
    return std::numeric_limits<double>::infinity();
  }
  return state->results.rows[k - 1].cost;
}

}  // namespace q::query
