#include "query/view.h"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

namespace q::query {

util::Status TopKView::Refresh(const graph::SearchGraph& base,
                               const relational::Catalog& catalog,
                               const text::TextIndex& index,
                               graph::CostModel* model,
                               const graph::WeightVector& weights) {
  Q_RETURN_NOT_OK(RebuildQueryGraph(base, index, model, weights));
  return RunSearch(catalog, weights);
}

util::Status TopKView::RebuildQueryGraph(const graph::SearchGraph& base,
                                         const text::TextIndex& index,
                                         graph::CostModel* model,
                                         const graph::WeightVector& weights) {
  Q_ASSIGN_OR_RETURN(query_graph_,
                     BuildQueryGraph(base, index, keywords_, model, weights,
                                     config_.query_graph));
  // The certificate's edge ids refer to the replaced graph; it is rebuilt
  // by the next RunSearch.
  certificate_.valid = false;
  return util::Status::OK();
}

bool TopKView::PropagateBaseEdges(const graph::SearchGraph& base,
                                  const std::vector<graph::EdgeId>& edges) {
  if (!refreshed_) return false;  // no cached query graph to patch
  // Verify-then-apply in two passes: a failed check must leave the cached
  // graph untouched so the caller's rebuild starts from consistent state.
  for (graph::EdgeId e : edges) {
    if (e >= base.num_edges() || e >= query_graph_.graph.num_edges()) {
      return false;
    }
    const graph::Edge& src = base.edge(e);
    const graph::Edge& dst = query_graph_.graph.edge(e);
    if (src.u != dst.u || src.v != dst.v || src.kind != dst.kind ||
        src.fixed_zero != dst.fixed_zero) {
      return false;
    }
  }
  for (graph::EdgeId e : edges) {
    query_graph_.graph.mutable_edge(e) = base.edge(e);
  }
  return true;
}

util::Status TopKView::RunSearch(const relational::Catalog& catalog,
                                 const graph::WeightVector& weights,
                                 steiner::FastSteinerEngine* shared_engine) {
  // Build into a fresh snapshot and swap on success only: a mid-search
  // failure must not leave trees/queries/results mutually inconsistent
  // (result rows index queries by position — see ApplyInvalidFeedback) —
  // and concurrent readers holding the previous Snapshot() must keep a
  // complete result set until the new one is published whole (the
  // double-buffered half of the async refresh contract).
  steiner::RelevanceCertificate certificate;
  std::vector<steiner::SteinerTree> trees = steiner::TopKSteinerTrees(
      query_graph_.graph, weights, query_graph_.keyword_nodes,
      config_.top_k, shared_engine, &certificate);
  std::vector<ConjunctiveQuery> queries;
  std::vector<std::vector<relational::Row>> per_query_rows;
  Executor executor(&catalog, config_.executor);
  for (const steiner::SteinerTree& tree : trees) {
    Q_ASSIGN_OR_RETURN(ConjunctiveQuery cq,
                       CompileTree(query_graph_, tree, weights));
    auto rows = executor.Execute(cq);
    if (!rows.ok()) {
      // Row-limit overruns degrade gracefully to an empty branch; other
      // errors propagate.
      if (!rows.status().IsOutOfRange()) return rows.status();
      per_query_rows.emplace_back();
    } else {
      per_query_rows.push_back(std::move(rows).value());
    }
    queries.push_back(std::move(cq));
  }
  RankedResults results =
      DisjointUnion(query_graph_, weights, queries, per_query_rows,
                    config_.union_similarity_threshold);
  // Augment the search certificate with every edge DisjointUnion's
  // schema-unification prices: all edges incident to each select-list
  // attribute's node (FindCompatibleColumn walks them for association
  // edges under the similarity threshold). Relation-level keyword matches
  // select an attribute whose node need not be in any tree, so tree
  // adjacency alone would miss these reads.
  if (certificate.valid) {
    for (const ConjunctiveQuery& cq : queries) {
      for (const OutputColumn& col : cq.select_list) {
        auto node = query_graph_.graph.FindAttributeNode(col.attr);
        if (!node.has_value()) continue;
        const std::vector<graph::EdgeId>& incident =
            query_graph_.graph.edges_of(*node);
        certificate.edges.insert(certificate.edges.end(), incident.begin(),
                                 incident.end());
      }
    }
    std::sort(certificate.edges.begin(), certificate.edges.end());
    certificate.edges.erase(
        std::unique(certificate.edges.begin(), certificate.edges.end()),
        certificate.edges.end());
  }
  certificate.serial = ++certificate_serial_;
  certificate_ = std::move(certificate);
  auto next = std::make_shared<ViewSnapshot>();
  next->trees = std::move(trees);
  next->queries = std::move(queries);
  next->results = std::move(results);
  next->search_serial = certificate_serial_;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    state_ = std::move(next);
  }
  refreshed_ = true;
  return util::Status::OK();
}

double TopKView::Alpha() const {
  // Alpha is "the cost of the k-th top-scoring result for the user view"
  // (Sec. 3.3) — the k-th ranked *answer*, not the k-th tree: a view with
  // plenty of cheap answers is hard to break into. With fewer than k
  // answers, any relevant new source could enter the top-k, so nothing
  // may be pruned.
  std::size_t k = static_cast<std::size_t>(config_.top_k.k);
  if (!refreshed_ || state_->results.rows.size() < k) {
    return std::numeric_limits<double>::infinity();
  }
  return state_->results.rows[k - 1].cost;
}

}  // namespace q::query
