#include "query/view.h"

#include <limits>

namespace q::query {

util::Status TopKView::Refresh(const graph::SearchGraph& base,
                               const relational::Catalog& catalog,
                               const text::TextIndex& index,
                               graph::CostModel* model,
                               const graph::WeightVector& weights) {
  Q_ASSIGN_OR_RETURN(query_graph_,
                     BuildQueryGraph(base, index, keywords_, model, weights,
                                     config_.query_graph));
  trees_ = steiner::TopKSteinerTrees(query_graph_.graph, weights,
                                     query_graph_.keyword_nodes,
                                     config_.top_k);
  queries_.clear();
  std::vector<std::vector<relational::Row>> per_query_rows;
  Executor executor(&catalog, config_.executor);
  for (const steiner::SteinerTree& tree : trees_) {
    Q_ASSIGN_OR_RETURN(ConjunctiveQuery cq,
                       CompileTree(query_graph_, tree, weights));
    auto rows = executor.Execute(cq);
    if (!rows.ok()) {
      // Row-limit overruns degrade gracefully to an empty branch; other
      // errors propagate.
      if (!rows.status().IsOutOfRange()) return rows.status();
      per_query_rows.emplace_back();
    } else {
      per_query_rows.push_back(std::move(rows).value());
    }
    queries_.push_back(std::move(cq));
  }
  results_ = DisjointUnion(query_graph_, weights, queries_, per_query_rows,
                           config_.union_similarity_threshold);
  refreshed_ = true;
  return util::Status::OK();
}

double TopKView::Alpha() const {
  // Alpha is "the cost of the k-th top-scoring result for the user view"
  // (Sec. 3.3) — the k-th ranked *answer*, not the k-th tree: a view with
  // plenty of cheap answers is hard to break into. With fewer than k
  // answers, any relevant new source could enter the top-k, so nothing
  // may be pruned.
  std::size_t k = static_cast<std::size_t>(config_.top_k.k);
  if (!refreshed_ || results_.rows.size() < k) {
    return std::numeric_limits<double>::infinity();
  }
  return results_.rows[k - 1].cost;
}

}  // namespace q::query
