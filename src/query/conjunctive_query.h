#ifndef Q_QUERY_CONJUNCTIVE_QUERY_H_
#define Q_QUERY_CONJUNCTIVE_QUERY_H_

#include <string>
#include <vector>

#include "query/query_graph.h"
#include "relational/schema.h"
#include "steiner/steiner_tree.h"
#include "util/result.h"

namespace q::query {

// attr = 'text' (values are compared on their canonical text form, since
// integrated sources may type the same identifier differently).
struct SelectionPredicate {
  relational::AttributeId attr;
  std::string value_text;
};

// left = right equi-join.
struct JoinCondition {
  relational::AttributeId left;
  relational::AttributeId right;
};

struct OutputColumn {
  relational::AttributeId attr;
  std::string label;  // initially the bare attribute name
};

// One conjunctive (select-project-join) query generated from a Steiner
// tree of the query graph (Sec. 2.2): each relation node in the tree (or
// reachable over zero-cost edges) is an atom; association/FK edges become
// join conditions; keyword-value matches become selections.
struct ConjunctiveQuery {
  std::vector<std::string> atoms;  // qualified relation names, sorted
  std::vector<JoinCondition> joins;
  std::vector<SelectionPredicate> selections;
  std::vector<OutputColumn> select_list;
  double cost = 0.0;
  steiner::SteinerTree tree;  // provenance

  // Human-readable SQL rendering (the executor runs the structured form).
  std::string ToSql() const;
};

// Compiles one Steiner tree into a conjunctive query, recomputing the
// tree's cost under `weights`.
util::Result<ConjunctiveQuery> CompileTree(const QueryGraph& qg,
                                           const steiner::SteinerTree& tree,
                                           const graph::WeightVector& weights);

}  // namespace q::query

#endif  // Q_QUERY_CONJUNCTIVE_QUERY_H_
