#include "query/query_graph.h"

#include <cstring>
#include <optional>

#include "util/logging.h"

namespace q::query {
namespace {

constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void MixFingerprint(std::uint64_t* h, std::uint64_t v) {
  *h ^= v;
  *h *= kFnvPrime;
}

// One keyword's contribution: the keyword text, a separator, then every
// (doc_index, score-bit-pattern) pair in ranked order. Must stay in
// lockstep with how BuildQueryGraph consumes index.Search results.
void MixKeywordMatches(std::uint64_t* h, const std::string& keyword,
                       const std::vector<text::ScoredDoc>& matches) {
  for (char c : keyword) {
    MixFingerprint(h, static_cast<unsigned char>(c));
  }
  MixFingerprint(h, 0xffu);
  for (const text::ScoredDoc& match : matches) {
    MixFingerprint(h, static_cast<std::uint64_t>(match.doc_index));
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(match.score));
    std::memcpy(&bits, &match.score, sizeof(bits));
    MixFingerprint(h, bits);
  }
}

// Copies `base` into `out`, dropping association edges whose current cost
// exceeds the threshold. Node ids are preserved; edge ids may shift.
void CopyGraphFiltered(const graph::SearchGraph& base,
                       const graph::WeightVector& weights,
                       double association_cost_threshold,
                       graph::SearchGraph* out) {
  for (graph::NodeId n = 0; n < base.num_nodes(); ++n) {
    const graph::Node& node = base.node(n);
    graph::NodeId added = out->AddNode(node.kind, node.label, node.attr);
    Q_CHECK(added == n);
    const std::string& value_text = base.node_value_text(n);
    if (!value_text.empty()) out->SetNodeValueText(added, value_text);
  }
  for (graph::EdgeId e = 0; e < base.num_edges(); ++e) {
    const graph::EdgeView edge = base.edge(e);
    if (edge.kind == graph::EdgeKind::kAssociation &&
        base.EdgeCost(e, weights) > association_cost_threshold) {
      continue;
    }
    out->AddEdge(base.ExportEdge(e));
  }
}

}  // namespace

std::uint64_t KeywordMatchFingerprint(const text::TextIndex& index,
                                      const std::vector<std::string>& keywords,
                                      const QueryGraphOptions& options) {
  std::uint64_t h = kFnvOffsetBasis;
  for (const std::string& keyword : keywords) {
    MixKeywordMatches(&h, keyword,
                      index.Search(keyword, options.min_similarity,
                                   options.max_matches_per_keyword));
  }
  return h;
}

util::Result<QueryGraph> BuildQueryGraph(
    const graph::SearchGraph& base, const text::TextIndex& index,
    const std::vector<std::string>& keywords, graph::CostModel* model,
    const graph::WeightVector& weights, const QueryGraphOptions& options) {
  QueryGraph qg;
  qg.keywords = keywords;
  qg.keyword_fingerprint = kFnvOffsetBasis;
  // Only the base graph's delta journal is ever read (the RefreshEngine
  // classifies views from base.DeltaSince); a query-graph copy would just
  // buffer one record per copied node/edge, so keep its journal capacity
  // minimal. Its revision counter still advances normally.
  qg.graph.set_max_journal_entries(1);
  CopyGraphFiltered(base, weights, options.association_cost_threshold,
                    &qg.graph);

  for (const std::string& keyword : keywords) {
    graph::NodeId kw_node =
        qg.graph.AddNode(graph::NodeKind::kKeyword, "kw:" + keyword);
    qg.keyword_nodes.push_back(kw_node);

    auto matches = index.Search(keyword, options.min_similarity,
                                options.max_matches_per_keyword);
    MixKeywordMatches(&qg.keyword_fingerprint, keyword, matches);
    std::size_t edges_added = 0;
    for (const text::ScoredDoc& match : matches) {
      const text::Document& doc = index.documents()[match.doc_index];
      std::optional<graph::NodeId> target;
      std::string owning_relation;
      switch (doc.kind) {
        case text::DocKind::kRelationName: {
          target = qg.graph.FindRelationNode(doc.attr.RelationQualifiedName());
          owning_relation = doc.attr.RelationQualifiedName();
          break;
        }
        case text::DocKind::kAttributeName: {
          target = qg.graph.FindAttributeNode(doc.attr);
          owning_relation = doc.attr.RelationQualifiedName();
          break;
        }
        case text::DocKind::kValue: {
          auto attr_node = qg.graph.FindAttributeNode(doc.attr);
          if (!attr_node.has_value()) break;
          owning_relation = doc.attr.RelationQualifiedName();
          // Lazily materialize the value node (shared across keywords).
          std::string label = doc.attr.ToString() + "=" + doc.text;
          auto existing = qg.graph.FindNode(graph::NodeKind::kValue, label);
          if (existing.has_value()) {
            target = existing;
          } else {
            graph::NodeId vnode = qg.graph.AddNode(graph::NodeKind::kValue,
                                                   label, doc.attr);
            // Record the raw text for selection-predicate generation.
            qg.graph.SetNodeValueText(vnode, doc.text);
            graph::Edge membership;
            membership.u = vnode;
            membership.v = *attr_node;
            membership.kind = graph::EdgeKind::kValueMembership;
            membership.fixed_zero = true;
            qg.graph.AddEdge(std::move(membership));
            target = vnode;
          }
          break;
        }
      }
      if (!target.has_value()) continue;

      double mismatch = 1.0 - match.score;  // s_i of Fig. 3
      graph::Edge edge;
      edge.u = kw_node;
      edge.v = *target;
      edge.kind = graph::EdgeKind::kKeywordMatch;
      std::string key = keyword + "|" + qg.graph.node(*target).label;
      edge.features =
          model->KeywordMatchFeatures(mismatch, owning_relation, key);
      qg.graph.AddEdge(std::move(edge));
      ++edges_added;
    }
    if (edges_added == 0) {
      return util::Status::NotFound("keyword '" + keyword +
                                    "' matched no schema element or value");
    }
  }
  return qg;
}

}  // namespace q::query
