#ifndef Q_QUERY_RANKED_UNION_H_
#define Q_QUERY_RANKED_UNION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "query/conjunctive_query.h"
#include "query/query_graph.h"
#include "relational/value.h"

namespace q::query {

// One ranked answer of the unified view, with provenance back to the
// query (and hence Steiner tree) that produced it.
struct ResultRow {
  std::vector<relational::Value> values;  // aligned with columns
  double cost = 0.0;
  std::size_t query_index = 0;
};

struct RankedResults {
  std::vector<std::string> columns;  // the unified output schema Q_A
  std::vector<ResultRow> rows;       // ascending cost
};

// Disjoint ("outer") union of per-query results with output-schema
// unification (Sec. 2.2): queries are processed in increasing cost order;
// an output attribute is folded into an existing column when they share a
// label or when a similarity (association) edge cheaper than
// `similarity_threshold` links the two attributes in the query graph;
// otherwise it opens a new column. Missing columns are null-padded.
RankedResults DisjointUnion(
    const QueryGraph& qg, const graph::WeightVector& weights,
    const std::vector<ConjunctiveQuery>& queries,
    const std::vector<std::vector<relational::Row>>& per_query_rows,
    double similarity_threshold);

}  // namespace q::query

#endif  // Q_QUERY_RANKED_UNION_H_
