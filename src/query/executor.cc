#include "query/executor.h"

#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace q::query {
namespace {

// Working representation: one vector of row pointers per atom, plus the
// joined intermediate as vectors of per-atom row indices.
struct Atom {
  const relational::Table* table;
  std::vector<std::size_t> rows;  // surviving row indices after selections
};

struct BoundAttr {
  std::size_t atom;
  std::size_t column;
};

}  // namespace

util::Result<std::vector<relational::Row>> Executor::Execute(
    const ConjunctiveQuery& query) const {
  // --- Resolve atoms ------------------------------------------------------
  std::vector<Atom> atoms;
  std::map<std::string, std::size_t> atom_index;
  for (const std::string& qualified : query.atoms) {
    auto table = catalog_->FindTable(qualified);
    if (table == nullptr) {
      return util::Status::NotFound("relation " + qualified);
    }
    atom_index[qualified] = atoms.size();
    atoms.push_back(Atom{table.get(), {}});
  }
  auto resolve = [&](const relational::AttributeId& attr)
      -> util::Result<BoundAttr> {
    auto it = atom_index.find(attr.RelationQualifiedName());
    if (it == atom_index.end()) {
      return util::Status::Internal("attribute " + attr.ToString() +
                                    " not bound to any atom");
    }
    auto col = atoms[it->second].table->schema().AttributeIndex(
        attr.attribute);
    if (!col.has_value()) {
      return util::Status::NotFound("attribute " + attr.ToString());
    }
    return BoundAttr{it->second, *col};
  };

  // --- Selections ---------------------------------------------------------
  // Group predicates per atom, then scan each atom once.
  std::vector<std::vector<std::pair<std::size_t, std::string>>> preds(
      atoms.size());
  for (const SelectionPredicate& s : query.selections) {
    Q_ASSIGN_OR_RETURN(BoundAttr b, resolve(s.attr));
    preds[b.atom].emplace_back(b.column, s.value_text);
  }
  for (std::size_t a = 0; a < atoms.size(); ++a) {
    const relational::Table& t = *atoms[a].table;
    for (std::size_t r = 0; r < t.num_rows(); ++r) {
      bool pass = true;
      for (const auto& [col, text] : preds[a]) {
        if (t.At(r, col).ToText() != text) {
          pass = false;
          break;
        }
      }
      if (pass) atoms[a].rows.push_back(r);
    }
  }

  // --- Join order: BFS over the join graph --------------------------------
  struct Join {
    BoundAttr left, right;
  };
  std::vector<Join> joins;
  for (const JoinCondition& j : query.joins) {
    Q_ASSIGN_OR_RETURN(BoundAttr l, resolve(j.left));
    Q_ASSIGN_OR_RETURN(BoundAttr r, resolve(j.right));
    joins.push_back(Join{l, r});
  }

  // Intermediate result: vector of bindings (one row index per joined
  // atom; kNotBound otherwise).
  constexpr std::size_t kNotBound = static_cast<std::size_t>(-1);
  std::vector<std::vector<std::size_t>> current;
  std::vector<bool> joined(atoms.size(), false);
  std::vector<bool> join_used(joins.size(), false);

  auto bind_first = [&](std::size_t a) {
    current.clear();
    for (std::size_t r : atoms[a].rows) {
      std::vector<std::size_t> binding(atoms.size(), kNotBound);
      binding[a] = r;
      current.push_back(std::move(binding));
    }
    joined[a] = true;
  };

  bind_first(0);
  std::size_t joined_count = 1;
  while (joined_count < atoms.size()) {
    // Find an unused join connecting the joined set to a new atom.
    std::size_t pick = joins.size();
    bool swap_sides = false;
    for (std::size_t j = 0; j < joins.size(); ++j) {
      if (join_used[j]) continue;
      bool lj = joined[joins[j].left.atom];
      bool rj = joined[joins[j].right.atom];
      if (lj && !rj) {
        pick = j;
        swap_sides = false;
        break;
      }
      if (rj && !lj) {
        pick = j;
        swap_sides = true;
        break;
      }
    }

    if (pick == joins.size()) {
      // No connecting join: cartesian-extend with the first unjoined atom.
      std::size_t a = 0;
      while (joined[a]) ++a;
      std::vector<std::vector<std::size_t>> next;
      for (const auto& binding : current) {
        for (std::size_t r : atoms[a].rows) {
          if (next.size() >= options_.max_rows) {
            return util::Status::OutOfRange(
                "result exceeds max_rows during cartesian extension");
          }
          auto extended = binding;
          extended[a] = r;
          next.push_back(std::move(extended));
        }
      }
      current = std::move(next);
      joined[a] = true;
      ++joined_count;
      continue;
    }

    const Join& join = joins[pick];
    join_used[pick] = true;
    BoundAttr probe_side = swap_sides ? join.right : join.left;
    BoundAttr build_side = swap_sides ? join.left : join.right;

    // Hash the new atom's rows on the join key text.
    std::unordered_map<std::string, std::vector<std::size_t>> hash;
    const relational::Table& bt = *atoms[build_side.atom].table;
    for (std::size_t r : atoms[build_side.atom].rows) {
      const relational::Value& v = bt.At(r, build_side.column);
      if (v.is_null()) continue;
      hash[v.ToText()].push_back(r);
    }
    std::vector<std::vector<std::size_t>> next;
    const relational::Table& pt = *atoms[probe_side.atom].table;
    for (const auto& binding : current) {
      std::size_t pr = binding[probe_side.atom];
      const relational::Value& v = pt.At(pr, probe_side.column);
      if (v.is_null()) continue;
      auto it = hash.find(v.ToText());
      if (it == hash.end()) continue;
      for (std::size_t r : it->second) {
        if (next.size() >= options_.max_rows) {
          return util::Status::OutOfRange("result exceeds max_rows");
        }
        auto extended = binding;
        extended[build_side.atom] = r;
        next.push_back(std::move(extended));
      }
    }
    current = std::move(next);
    joined[build_side.atom] = true;
    ++joined_count;
  }

  // --- Residual join conditions (cycles in the join graph) ---------------
  for (std::size_t j = 0; j < joins.size(); ++j) {
    if (join_used[j]) continue;
    const Join& join = joins[j];
    const relational::Table& lt = *atoms[join.left.atom].table;
    const relational::Table& rt = *atoms[join.right.atom].table;
    std::vector<std::vector<std::size_t>> filtered;
    for (auto& binding : current) {
      const relational::Value& lv =
          lt.At(binding[join.left.atom], join.left.column);
      const relational::Value& rv =
          rt.At(binding[join.right.atom], join.right.column);
      if (!lv.is_null() && !rv.is_null() && lv.ToText() == rv.ToText()) {
        filtered.push_back(std::move(binding));
      }
    }
    current = std::move(filtered);
  }

  // --- Projection ---------------------------------------------------------
  std::vector<BoundAttr> out_cols;
  for (const OutputColumn& c : query.select_list) {
    Q_ASSIGN_OR_RETURN(BoundAttr b, resolve(c.attr));
    out_cols.push_back(b);
  }
  std::vector<relational::Row> out;
  out.reserve(current.size());
  for (const auto& binding : current) {
    relational::Row row;
    row.reserve(out_cols.size());
    for (const BoundAttr& b : out_cols) {
      row.push_back(atoms[b.atom].table->At(binding[b.atom], b.column));
    }
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace q::query
