#ifndef Q_QUERY_EXECUTOR_H_
#define Q_QUERY_EXECUTOR_H_

#include <cstddef>
#include <vector>

#include "query/conjunctive_query.h"
#include "relational/catalog.h"
#include "util/result.h"

namespace q::query {

struct ExecutorOptions {
  // Hard cap on intermediate and output cardinality per query; guards
  // degenerate cartesian products.
  std::size_t max_rows = 100000;
};

// Evaluates conjunctive queries against the catalog: selections first,
// then hash equi-joins in join-graph order (cartesian product only when a
// tree legitimately has no join between two atoms), then projection onto
// the select-list. Join keys compare on canonical value text so sources
// that type shared identifiers differently still join.
class Executor {
 public:
  explicit Executor(const relational::Catalog* catalog,
                    ExecutorOptions options = ExecutorOptions())
      : catalog_(catalog), options_(options) {}

  // Rows in the query's own select-list schema.
  util::Result<std::vector<relational::Row>> Execute(
      const ConjunctiveQuery& query) const;

 private:
  const relational::Catalog* catalog_;
  ExecutorOptions options_;
};

}  // namespace q::query

#endif  // Q_QUERY_EXECUTOR_H_
