#ifndef Q_QUERY_VIEW_H_
#define Q_QUERY_VIEW_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "query/conjunctive_query.h"
#include "query/executor.h"
#include "query/query_graph.h"
#include "query/ranked_union.h"
#include "steiner/top_k.h"
#include "util/result.h"
#include "util/status.h"

namespace q::query {

struct ViewConfig {
  steiner::TopKConfig top_k;
  QueryGraphOptions query_graph;
  ExecutorOptions executor;
  // Similarity-edge cost threshold for output-schema unification (t of
  // Sec. 2.2).
  double union_similarity_threshold = 2.0;
};

// One search's complete observable output, published as an immutable unit
// (the async refresh contract's "no read ever mixes generations"):
// trees, the queries compiled from them, and the ranked rows — all from
// the same RunSearch, so rows' query_index values always index `queries`
// and `trees` consistently. `search_serial` is the view's monotone
// per-search counter (the same counter that stamps the relevance
// certificate), letting readers assert publication monotonicity.
struct ViewSnapshot {
  std::vector<steiner::SteinerTree> trees;
  std::vector<ConjunctiveQuery> queries;
  RankedResults results;
  // The relevance certificate of the search that produced this snapshot,
  // published as part of the same immutable unit so a reader can never
  // observe a certificate whose serial disagrees with search_serial
  // (certificate.serial == search_serial in every published snapshot; both
  // are 0 in an unpublished/empty one).
  steiner::RelevanceCertificate certificate;
  std::uint64_t search_serial = 0;
};

// An epoch-tagged read of a view (see core::AsyncRefreshScheduler):
// `state` is the last committed snapshot — held alive by the shared_ptr
// for as long as the reader keeps it, even across concurrent repairs —
// `generation` the staleness epoch the output was last validated at
// (repaired, or proven unchanged by the relevance gate), and `stale`
// whether base state has moved past that epoch without the view having
// been revalidated yet.
struct ViewResult {
  std::shared_ptr<const ViewSnapshot> state;
  std::uint64_t generation = 0;
  bool stale = false;
};

// A persistent keyword-query view (Sec. 2.3): the user's ongoing
// information need. Holds the latest query graph, top-k trees, compiled
// queries, and ranked results; Refresh() recomputes everything against
// the current search graph and weights (called after feedback updates or
// new-source registration).
//
// A refresh has two phases, exposed separately so the batched
// RefreshEngine can skip or share work across views:
//   1. RebuildQueryGraph — re-expand the base search graph for this
//      view's keywords (graph copy + text-index matching). Skippable when
//      only weights changed and the query-graph topology is
//      weight-independent (see refresh_engine.h).
//   2. RunSearch — top-k Steiner search over the current query graph,
//      tree compilation, execution, and ranked union. Optionally served
//      from a caller-owned CSR snapshot.
// Refresh() runs both phases; batched and independent refreshes produce
// bit-identical results (the determinism contract of
// docs/query_engine.md).
class TopKView {
 public:
  TopKView(std::vector<std::string> keywords, ViewConfig config)
      : keywords_(std::move(keywords)), config_(config) {}

  util::Status Refresh(const graph::SearchGraph& base,
                       const relational::Catalog& catalog,
                       const text::TextIndex& index,
                       graph::CostModel* model,
                       const graph::WeightVector& weights);

  // Phase 1: rebuilds query_graph() from the base search graph. Mutates
  // `model`'s feature space (keyword-match feature interning), so batched
  // callers must run this phase serially across views.
  util::Status RebuildQueryGraph(const graph::SearchGraph& base,
                                 const text::TextIndex& index,
                                 graph::CostModel* model,
                                 const graph::WeightVector& weights);

  // Phase 2: recomputes trees/queries/results against the current query
  // graph. When `shared_engine` is non-null it must hold a CSR snapshot of
  // exactly (query_graph().graph, weights); its warm shortest-path cache
  // never changes the output. Touches only this view and read-only shared
  // state, so distinct views' RunSearch calls may run concurrently.
  util::Status RunSearch(const relational::Catalog& catalog,
                         const graph::WeightVector& weights,
                         steiner::FastSteinerEngine* shared_engine = nullptr);

  // The read-only body of RunSearch: runs the search/compile/execute/union
  // pipeline against the current query graph and returns the resulting
  // snapshot WITHOUT publishing it (state_, certificate_, and the serial
  // counter are untouched; the returned snapshot carries serial 0 in both
  // certificate.serial and search_serial, a consistent pair). When `pin`
  // is non-null it must come from `shared_engine` and the whole
  // enumeration runs against that pinned CSR generation — this is the
  // concurrent serving path (core::RefreshEngine::SearchView), which may
  // run any number of BuildSearchSnapshot calls on one view concurrently
  // with each other and with pinned engine re-costs, but NOT concurrently
  // with RebuildQueryGraph/PropagateBaseEdges (those mutate query_graph_;
  // the serving gate upstream excludes them).
  util::Result<ViewSnapshot> BuildSearchSnapshot(
      const relational::Catalog& catalog, const graph::WeightVector& weights,
      steiner::FastSteinerEngine* shared_engine,
      const steiner::SnapshotPin* pin) const;

  // Delta alternative to phase 1 for in-place base-edge mutations (the
  // kEdgeMutated structural journal records): copies each listed base
  // edge over the cached query graph's copy of it. Sound because a query
  // graph built with the default infinite association_cost_threshold
  // copies every base edge id-for-id (keyword/value additions only append
  // after them), and keyword matching never reads edge state — so the
  // patched cached graph is bit-identical to what RebuildQueryGraph would
  // produce. Verifies before mutating and returns false — with the cached
  // graph untouched — when any edge cannot be propagated in place (no
  // cached graph yet, id out of range, or endpoints/kind/fixed_zero
  // drift); the caller must then fall back to a full rebuild.
  bool PropagateBaseEdges(const graph::SearchGraph& base,
                          const std::vector<graph::EdgeId>& edges);

  const std::vector<std::string>& keywords() const { return keywords_; }
  const ViewConfig& config() const { return config_; }
  const QueryGraph& query_graph() const { return query_graph_; }

  // The view's output state is double-buffered: RunSearch builds the next
  // ViewSnapshot off to the side and swaps it in atomically, so a reader
  // holding Snapshot() keeps a complete, internally consistent result set
  // while a concurrent repair publishes the next one. Snapshot() is the
  // only accessor safe against a concurrent RunSearch; the reference
  // accessors below read through the current buffer and require external
  // quiescence (no repair in flight), which every synchronous path has.
  std::shared_ptr<const ViewSnapshot> Snapshot() const {
    std::lock_guard<std::mutex> lock(state_mu_);
    return state_;
  }
  const std::vector<steiner::SteinerTree>& trees() const {
    return state_->trees;
  }
  const std::vector<ConjunctiveQuery>& queries() const {
    return state_->queries;
  }
  const RankedResults& results() const { return state_->results; }
  bool refreshed() const { return refreshed_.load(std::memory_order_acquire); }

  // Relevance certificate of the last successful RunSearch, augmented
  // with every edge the ranked union's schema-unification reads (the
  // association edges incident to each compiled query's select-list
  // attributes), so it covers *all* weight-sensitive reads behind
  // trees()/queries()/results(). `certificate().serial` identifies the
  // search it describes; the RefreshEngine compares it against the serial
  // it committed to detect certificates from out-of-band refreshes.
  // Invalid until the first search and after every query-graph rebuild.
  const steiner::RelevanceCertificate& certificate() const {
    return certificate_;
  }

  // Cost of the k-th top-scoring answer: the alpha bound driving
  // Algorithm 2's neighborhood pruning. Infinity before the first refresh
  // or when fewer than k answers exist (any alignment could then enter
  // the top-k, so nothing may be pruned).
  double Alpha() const;

 private:
  std::vector<std::string> keywords_;
  ViewConfig config_;
  QueryGraph query_graph_;
  // Current published snapshot; swapped under state_mu_ by RunSearch.
  // Starts non-null (empty) so the reference accessors never dereference
  // null before the first refresh. state_mu_ also guards certificate_ and
  // certificate_serial_: RunSearch stamps the serial and publishes the
  // certificate and the snapshot in ONE critical section, so serial
  // stamping can never be observed out of step with snapshot publication.
  mutable std::mutex state_mu_;
  std::shared_ptr<const ViewSnapshot> state_ =
      std::make_shared<ViewSnapshot>();
  steiner::RelevanceCertificate certificate_;
  std::uint64_t certificate_serial_ = 0;
  std::atomic<bool> refreshed_{false};
};

}  // namespace q::query

#endif  // Q_QUERY_VIEW_H_
