#ifndef Q_QUERY_QUERY_GRAPH_H_
#define Q_QUERY_QUERY_GRAPH_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "graph/cost_model.h"
#include "graph/search_graph.h"
#include "relational/catalog.h"
#include "text/text_index.h"
#include "util/result.h"

namespace q::query {

struct QueryGraphOptions {
  // Keyword-to-node matches below this tf-idf similarity are dropped.
  double min_similarity = 0.25;
  // Cap on match edges added per keyword (metadata + value matches).
  std::size_t max_matches_per_keyword = 12;
  // Association edges whose current cost exceeds this threshold are left
  // out of the query graph (the pruning threshold of Sec. 5.2.2).
  double association_cost_threshold =
      std::numeric_limits<double>::infinity();
};

// The dynamic expansion of the search graph for one keyword query
// (Sec. 2.2 / Fig. 3): a copy of the search graph plus one keyword node
// per query term, lazily-materialized value nodes for matching tuples,
// and weighted keyword-match edges.
struct QueryGraph {
  graph::SearchGraph graph;
  std::vector<std::string> keywords;
  std::vector<graph::NodeId> keyword_nodes;  // parallel to `keywords`
  // Fingerprint of the keyword->match expansion this graph was built
  // from (see KeywordMatchFingerprint below).
  std::uint64_t keyword_fingerprint = 0;
};

// Order-sensitive FNV-1a style hash over exactly the match sets
// BuildQueryGraph would expand for `keywords` against `index`: per
// keyword, the keyword text followed by every (doc_index, score) pair
// returned by index.Search at the options' similarity floor and match
// cap, with the score hashed by bit pattern. TF-IDF is corpus-wide
// (idf moves with the document count), so after the catalog changes the
// only way to prove a rebuilt query graph equals the old one plus new
// base nodes/edges is to recompute this and compare for exact equality.
std::uint64_t KeywordMatchFingerprint(const text::TextIndex& index,
                                      const std::vector<std::string>& keywords,
                                      const QueryGraphOptions& options);

// Builds the query graph. Fails with NotFound if any keyword matches
// nothing at or above min_similarity.
util::Result<QueryGraph> BuildQueryGraph(
    const graph::SearchGraph& base, const text::TextIndex& index,
    const std::vector<std::string>& keywords, graph::CostModel* model,
    const graph::WeightVector& weights, const QueryGraphOptions& options);

}  // namespace q::query

#endif  // Q_QUERY_QUERY_GRAPH_H_
