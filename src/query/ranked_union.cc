#include "query/ranked_union.h"

#include <algorithm>
#include <optional>

namespace q::query {
namespace {

// Finds a column index of QA this attribute should reuse: exact label
// match first, then any similarity edge under the threshold to an
// attribute whose label is already a column.
std::optional<std::size_t> FindCompatibleColumn(
    const QueryGraph& qg, const graph::WeightVector& weights,
    const relational::AttributeId& attr, const std::string& label,
    const std::vector<std::string>& columns,
    const std::vector<bool>& used, double similarity_threshold) {
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (!used[c] && columns[c] == label) return c;
  }
  auto node = qg.graph.FindAttributeNode(attr);
  if (!node.has_value()) return std::nullopt;
  for (graph::EdgeId eid : qg.graph.edges_of(*node)) {
    const graph::EdgeView e = qg.graph.edge(eid);
    if (e.kind != graph::EdgeKind::kAssociation) continue;
    if (qg.graph.EdgeCost(eid, weights) > similarity_threshold) continue;
    const graph::Node& other = qg.graph.node(e.Other(*node));
    for (std::size_t c = 0; c < columns.size(); ++c) {
      if (!used[c] && columns[c] == other.attr.attribute) return c;
    }
  }
  return std::nullopt;
}

}  // namespace

RankedResults DisjointUnion(
    const QueryGraph& qg, const graph::WeightVector& weights,
    const std::vector<ConjunctiveQuery>& queries,
    const std::vector<std::vector<relational::Row>>& per_query_rows,
    double similarity_threshold) {
  RankedResults out;
  // column index per (query, select position)
  std::vector<std::vector<std::size_t>> mapping(queries.size());

  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const ConjunctiveQuery& cq = queries[qi];
    std::vector<bool> used(out.columns.size(), false);
    for (const OutputColumn& col : cq.select_list) {
      auto reuse = FindCompatibleColumn(qg, weights, col.attr, col.label,
                                        out.columns, used,
                                        similarity_threshold);
      std::size_t target;
      if (reuse.has_value()) {
        target = *reuse;
      } else {
        target = out.columns.size();
        out.columns.push_back(col.label);
        used.push_back(false);
      }
      used[target] = true;
      mapping[qi].push_back(target);
    }
  }

  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    for (const relational::Row& row : per_query_rows[qi]) {
      ResultRow r;
      r.values.assign(out.columns.size(), relational::Value::Null());
      for (std::size_t i = 0; i < row.size() && i < mapping[qi].size();
           ++i) {
        r.values[mapping[qi][i]] = row[i];
      }
      r.cost = queries[qi].cost;
      r.query_index = qi;
      out.rows.push_back(std::move(r));
    }
  }
  std::stable_sort(out.rows.begin(), out.rows.end(),
                   [](const ResultRow& a, const ResultRow& b) {
                     return a.cost < b.cost;
                   });
  return out;
}

}  // namespace q::query
