#include "query/conjunctive_query.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <unordered_set>

namespace q::query {
namespace {

// Adds the relation atom owning graph node `n` (if resolvable).
void AddAtomFor(const QueryGraph& qg, graph::NodeId n,
                std::set<std::string>* atoms) {
  auto rel = qg.graph.OwningRelation(n);
  if (rel.has_value()) atoms->insert(qg.graph.node(*rel).label);
}

void AddOutputColumn(const relational::AttributeId& attr,
                     std::vector<OutputColumn>* select_list) {
  for (const OutputColumn& c : *select_list) {
    if (c.attr == attr) return;
  }
  select_list->push_back(OutputColumn{attr, attr.attribute});
}

}  // namespace

util::Result<ConjunctiveQuery> CompileTree(
    const QueryGraph& qg, const steiner::SteinerTree& tree,
    const graph::WeightVector& weights) {
  ConjunctiveQuery cq;
  cq.tree = tree;
  cq.cost = steiner::TreeCost(qg.graph, weights, tree);

  std::set<std::string> atoms;
  std::unordered_set<graph::NodeId> keyword_set(qg.keyword_nodes.begin(),
                                                qg.keyword_nodes.end());

  for (graph::EdgeId eid : tree.edges) {
    const graph::EdgeView edge = qg.graph.edge(eid);
    const graph::Node& nu = qg.graph.node(edge.u);
    const graph::Node& nv = qg.graph.node(edge.v);
    switch (edge.kind) {
      case graph::EdgeKind::kMembership:
      case graph::EdgeKind::kValueMembership:
        AddAtomFor(qg, edge.u, &atoms);
        AddAtomFor(qg, edge.v, &atoms);
        break;
      case graph::EdgeKind::kForeignKey:
        atoms.insert(nu.label);
        atoms.insert(nv.label);
        cq.joins.push_back(JoinCondition{edge.join_a(), edge.join_b()});
        break;
      case graph::EdgeKind::kAssociation: {
        if (nu.kind != graph::NodeKind::kAttribute ||
            nv.kind != graph::NodeKind::kAttribute) {
          return util::Status::Internal(
              "association edge between non-attribute nodes: " + nu.label +
              " -- " + nv.label);
        }
        AddAtomFor(qg, edge.u, &atoms);
        AddAtomFor(qg, edge.v, &atoms);
        cq.joins.push_back(JoinCondition{nu.attr, nv.attr});
        break;
      }
      case graph::EdgeKind::kKeywordMatch: {
        graph::NodeId kw = keyword_set.count(edge.u) > 0 ? edge.u : edge.v;
        graph::NodeId target = edge.Other(kw);
        const graph::Node& tn = qg.graph.node(target);
        switch (tn.kind) {
          case graph::NodeKind::kValue:
            AddAtomFor(qg, target, &atoms);
            cq.selections.push_back(
                SelectionPredicate{tn.attr, qg.graph.node_value_text(target)});
            AddOutputColumn(tn.attr, &cq.select_list);
            break;
          case graph::NodeKind::kAttribute:
            AddAtomFor(qg, target, &atoms);
            AddOutputColumn(tn.attr, &cq.select_list);
            break;
          case graph::NodeKind::kRelation: {
            atoms.insert(tn.label);
            // Represent a relation-level match by its first attribute.
            for (graph::EdgeId me : qg.graph.edges_of(target)) {
              const graph::EdgeView m = qg.graph.edge(me);
              if (m.kind != graph::EdgeKind::kMembership) continue;
              AddOutputColumn(qg.graph.node(m.Other(target)).attr,
                              &cq.select_list);
              break;
            }
            break;
          }
          case graph::NodeKind::kKeyword:
            return util::Status::Internal(
                "keyword match edge targeting another keyword");
        }
        break;
      }
    }
  }

  cq.atoms.assign(atoms.begin(), atoms.end());
  if (cq.atoms.empty()) {
    return util::Status::Internal("tree compiled to zero relation atoms");
  }
  return cq;
}

std::string ConjunctiveQuery::ToSql() const {
  std::map<std::string, std::string> alias;  // relation -> tN
  for (const std::string& a : atoms) {
    alias[a] = "t" + std::to_string(alias.size());
  }
  auto ref = [&](const relational::AttributeId& attr) {
    return alias[attr.RelationQualifiedName()] + "." + attr.attribute;
  };
  std::ostringstream sql;
  sql << "SELECT ";
  for (std::size_t i = 0; i < select_list.size(); ++i) {
    if (i > 0) sql << ", ";
    sql << ref(select_list[i].attr) << " AS " << select_list[i].label;
  }
  if (select_list.empty()) sql << "*";
  sql << " FROM ";
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) sql << ", ";
    sql << atoms[i] << " " << alias[atoms[i]];
  }
  bool first = true;
  for (const JoinCondition& j : joins) {
    sql << (first ? " WHERE " : " AND ") << ref(j.left) << " = "
        << ref(j.right);
    first = false;
  }
  for (const SelectionPredicate& s : selections) {
    sql << (first ? " WHERE " : " AND ") << ref(s.attr) << " = '"
        << s.value_text << "'";
    first = false;
  }
  return sql.str();
}

}  // namespace q::query
