#include "feedback/simulated_user.h"

#include "steiner/exact_solver.h"
#include "steiner/problem.h"

namespace q::feedback {

SimulatedUser::SimulatedUser(std::vector<learn::GoldEdge> gold)
    : gold_(std::move(gold)) {
  for (const learn::GoldEdge& g : gold_) gold_keys_.insert(g.PairKey());
}

bool SimulatedUser::IsGoldConsistent(const query::QueryGraph& qg,
                                     const steiner::SteinerTree& tree) const {
  for (graph::EdgeId eid : tree.edges) {
    const graph::EdgeView e = qg.graph.edge(eid);
    if (e.kind != graph::EdgeKind::kAssociation) continue;
    std::string sa = qg.graph.node(e.u).label;
    std::string sb = qg.graph.node(e.v).label;
    std::string key = sa < sb ? sa + "|" + sb : sb + "|" + sa;
    if (gold_keys_.count(key) == 0) return false;
  }
  return true;
}

std::optional<steiner::SteinerTree> SimulatedUser::PickEndorsedTree(
    const query::QueryGraph& qg,
    const std::vector<steiner::SteinerTree>& trees) const {
  for (const steiner::SteinerTree& t : trees) {
    if (IsGoldConsistent(qg, t)) return t;
  }
  return std::nullopt;
}

namespace {

// Partitions the query graph's association edges into gold and non-gold.
void SplitAssociations(const query::QueryGraph& qg,
                       const std::unordered_set<std::string>& gold_keys,
                       std::vector<graph::EdgeId>* gold,
                       std::vector<graph::EdgeId>* non_gold) {
  for (graph::EdgeId eid :
       qg.graph.EdgesOfKind(graph::EdgeKind::kAssociation)) {
    const graph::EdgeView e = qg.graph.edge(eid);
    std::string sa = qg.graph.node(e.u).label;
    std::string sb = qg.graph.node(e.v).label;
    std::string key = sa < sb ? sa + "|" + sb : sb + "|" + sa;
    (gold_keys.count(key) > 0 ? gold : non_gold)->push_back(eid);
  }
}

}  // namespace

std::optional<steiner::SteinerTree> SimulatedUser::SolveEndorsedTree(
    const query::QueryGraph& qg, const graph::WeightVector& weights) const {
  std::vector<graph::EdgeId> gold;
  std::vector<graph::EdgeId> banned;
  SplitAssociations(qg, gold_keys_, &gold, &banned);
  steiner::SteinerProblem problem(qg.graph, weights, qg.keyword_nodes, {},
                                  banned);
  return steiner::SolveExactSteiner(problem);
}

std::optional<steiner::SteinerTree> SimulatedUser::SolveEndorsedJoinTree(
    const query::QueryGraph& qg, const graph::WeightVector& weights) const {
  std::vector<graph::EdgeId> gold;
  std::vector<graph::EdgeId> banned;
  SplitAssociations(qg, gold_keys_, &gold, &banned);
  std::optional<steiner::SteinerTree> best;
  // Force each gold association in turn; keep the cheapest proper tree.
  for (graph::EdgeId forced : gold) {
    steiner::SteinerProblem problem(qg.graph, weights, qg.keyword_nodes,
                                    {forced}, banned);
    auto tree = steiner::SolveExactSteiner(problem);
    if (!tree.has_value()) continue;
    if (!steiner::IsProperSteinerTree(qg.graph, *tree, qg.keyword_nodes)) {
      continue;  // the forced edge dangles: no natural join path uses it
    }
    if (!best.has_value() || steiner::TreeLess(*tree, *best)) {
      best = std::move(tree);
    }
  }
  return best;
}

std::optional<steiner::SteinerTree> SimulatedUser::SolveIntentTree(
    const query::QueryGraph& qg, const graph::WeightVector& weights) const {
  std::vector<graph::EdgeId> gold;
  std::vector<graph::EdgeId> banned;
  SplitAssociations(qg, gold_keys_, &gold, &banned);
  // Pin each keyword to its best (cheapest) match by banning the rest.
  for (graph::NodeId kw : qg.keyword_nodes) {
    graph::EdgeId best = graph::kInvalidEdge;
    double best_cost = 0.0;
    for (graph::EdgeId eid : qg.graph.edges_of(kw)) {
      if (qg.graph.edge(eid).kind != graph::EdgeKind::kKeywordMatch) {
        continue;
      }
      double cost = qg.graph.EdgeCost(eid, weights);
      if (best == graph::kInvalidEdge || cost < best_cost) {
        best = eid;
        best_cost = cost;
      }
    }
    for (graph::EdgeId eid : qg.graph.edges_of(kw)) {
      if (eid != best &&
          qg.graph.edge(eid).kind == graph::EdgeKind::kKeywordMatch) {
        banned.push_back(eid);
      }
    }
  }
  steiner::SteinerProblem problem(qg.graph, weights, qg.keyword_nodes, {},
                                  banned);
  auto tree = steiner::SolveExactSteiner(problem);
  if (!tree.has_value() ||
      !steiner::IsProperSteinerTree(qg.graph, *tree, qg.keyword_nodes)) {
    return std::nullopt;
  }
  return tree;
}

std::optional<steiner::SteinerTree> SimulatedUser::EndorseForLearning(
    const query::QueryGraph& qg,
    const std::vector<steiner::SteinerTree>& trees,
    const graph::WeightVector& weights) const {
  // 0. The query's intended answer, if its intent relations connect
  //    through gold edges.
  if (auto intent = SolveIntentTree(qg, weights); intent.has_value()) {
    return intent;
  }
  // 1. Cheapest gold-consistent top-k tree that actually joins.
  for (const steiner::SteinerTree& t : trees) {
    if (!IsGoldConsistent(qg, t)) continue;
    for (graph::EdgeId e : t.edges) {
      if (qg.graph.edge(e).kind == graph::EdgeKind::kAssociation) {
        return t;
      }
    }
  }
  // 2. The integration answer the expert knows exists.
  if (auto solved = SolveEndorsedJoinTree(qg, weights);
      solved.has_value()) {
    return solved;
  }
  // 3. Any gold-consistent answer (possibly association-free).
  return PickEndorsedTree(qg, trees);
}

}  // namespace q::feedback
