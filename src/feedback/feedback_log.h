#ifndef Q_FEEDBACK_FEEDBACK_LOG_H_
#define Q_FEEDBACK_FEEDBACK_LOG_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "graph/feature.h"
#include "util/status.h"

namespace q::feedback {

// What kind of interaction produced a feedback record.
enum class FeedbackKind : std::uint8_t {
  kEndorse = 0,  // user endorsed a query tree (ApplyFeedback)
  kInvalid = 1,  // user marked a result row invalid
  kRanking = 2,  // pairwise ranking constraint
  kGold = 3,     // simulated-expert gold endorsement
};

inline std::string_view FeedbackKindToString(FeedbackKind kind) {
  switch (kind) {
    case FeedbackKind::kEndorse:
      return "endorse";
    case FeedbackKind::kInvalid:
      return "invalid";
    case FeedbackKind::kRanking:
      return "ranking";
    case FeedbackKind::kGold:
      return "gold";
  }
  return "unknown";
}

// One recorded feedback interaction: the keyword query it was given on,
// plus the coalesced weight movement the MIRA update produced. The
// endorsed tree itself is re-derived at replay time because weight
// updates in between can change the query graph's edge ids and the
// k-best list (Sec. 5.2.2 replays "a log of the most recent feedback
// steps") — but the *effect* on the weight vector is captured exactly,
// so a recovery path that lost the weights can replay the log and land
// on the same values deterministically (docs/persistence.md).
struct FeedbackEvent {
  std::vector<std::string> keywords;
  FeedbackKind kind = FeedbackKind::kEndorse;
  // Monotone per-log sequence number, stamped by FeedbackLog::Record and
  // preserved across save/load: event N is always event N, even after
  // the sliding window drops earlier events.
  std::uint64_t sequence = 0;
  // WeightVector::revision() immediately after this event's update.
  std::uint64_t weight_revision = 0;
  // Coalesced net weight movement of this event (one entry per feature).
  // Empty when the update was a no-op.
  std::vector<graph::FeatureDelta> deltas;
  // False when the weight journal could not answer for this event's
  // revision span (overflow mid-update): the deltas are then incomplete
  // and ReplayInto refuses to use them.
  bool replayable = true;
};

// Sliding-window feedback log with a size bound (Sec. 5.2.2), upgraded to
// an append-only record stream: each event carries an explicit sequence
// stamp and its coalesced weight deltas, so the persisted log supports
// deterministic replay during degraded recovery (weights section lost —
// see the recovery ladder in docs/persistence.md).
class FeedbackLog {
 public:
  explicit FeedbackLog(std::size_t max_size = 64) : max_size_(max_size) {}

  // Appends `event`, stamping its sequence number; the window then drops
  // the oldest events beyond the size bound (their sequence numbers are
  // never reused).
  void Record(FeedbackEvent event) {
    event.sequence = next_sequence_++;
    events_.push_back(std::move(event));
    while (events_.size() > max_size_) events_.pop_front();
  }

  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  // Sequence number the next Record will stamp; equals the number of
  // events ever recorded (the window may retain fewer).
  std::uint64_t next_sequence() const { return next_sequence_; }

  // True when the window still holds every event ever recorded — i.e. a
  // replay reproduces the complete feedback history, not just a suffix.
  bool complete_history() const {
    return events_.empty() ? next_sequence_ == 0
                           : events_.front().sequence == 0;
  }

  // Events oldest-first.
  std::vector<FeedbackEvent> Snapshot() const {
    return std::vector<FeedbackEvent>(events_.begin(), events_.end());
  }

  void Clear() { events_.clear(); }

  // Re-applies every retained event's coalesced deltas to `weights`, in
  // sequence order. Deterministic: replaying the same log into the same
  // starting vector always lands on the same values. Fails without
  // touching `weights` when any retained event is marked unreplayable or
  // carries a delta outside the weight vector's feature space; degrades
  // to a descriptive error rather than applying a partial history.
  util::Status ReplayInto(graph::WeightVector* weights) const {
    for (const FeedbackEvent& event : events_) {
      if (!event.replayable) {
        return util::Status::Internal(
            "feedback event " + std::to_string(event.sequence) +
            " is not replayable (weight journal overflowed mid-update)");
      }
      for (const graph::FeatureDelta& d : event.deltas) {
        if (d.id >= weights->space()->size()) {
          return util::Status::OutOfRange(
              "feedback event " + std::to_string(event.sequence) +
              " references unknown feature id " + std::to_string(d.id));
        }
      }
    }
    for (const FeedbackEvent& event : events_) {
      for (const graph::FeatureDelta& d : event.deltas) {
        weights->Set(d.id, d.new_value);
      }
    }
    return util::Status::OK();
  }

  // Persistence support (src/persist): reinstates the stream exactly as
  // saved — same retained events, same sequence stamps, same next
  // sequence number.
  void Restore(std::uint64_t next_sequence,
               std::vector<FeedbackEvent> events) {
    next_sequence_ = next_sequence;
    events_.assign(events.begin(), events.end());
  }

 private:
  std::size_t max_size_;
  std::uint64_t next_sequence_ = 0;
  std::deque<FeedbackEvent> events_;
};

}  // namespace q::feedback

#endif  // Q_FEEDBACK_FEEDBACK_LOG_H_
