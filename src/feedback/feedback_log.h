#ifndef Q_FEEDBACK_FEEDBACK_LOG_H_
#define Q_FEEDBACK_FEEDBACK_LOG_H_

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

namespace q::feedback {

// One recorded feedback interaction: the keyword query it was given on.
// (The endorsed tree is re-derived at replay time because weight updates
// in between can change the query graph's edge ids and the k-best list —
// Sec. 5.2.2 replays "a log of the most recent feedback steps".)
struct FeedbackEvent {
  std::vector<std::string> keywords;
};

// Sliding-window feedback log with a size bound (Sec. 5.2.2).
class FeedbackLog {
 public:
  explicit FeedbackLog(std::size_t max_size = 64) : max_size_(max_size) {}

  void Record(FeedbackEvent event) {
    events_.push_back(std::move(event));
    while (events_.size() > max_size_) events_.pop_front();
  }

  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  // Events oldest-first.
  std::vector<FeedbackEvent> Snapshot() const {
    return std::vector<FeedbackEvent>(events_.begin(), events_.end());
  }

  void Clear() { events_.clear(); }

 private:
  std::size_t max_size_;
  std::deque<FeedbackEvent> events_;
};

}  // namespace q::feedback

#endif  // Q_FEEDBACK_FEEDBACK_LOG_H_
