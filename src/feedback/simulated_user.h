#ifndef Q_FEEDBACK_SIMULATED_USER_H_
#define Q_FEEDBACK_SIMULATED_USER_H_

#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "learn/evaluation.h"
#include "query/query_graph.h"
#include "steiner/steiner_tree.h"

namespace q::feedback {

// The paper's evaluation protocol (Sec. 5.2): "for each query, we generate
// one feedback response, marking one answer that only makes use of edges
// in the gold standard. Since the gold standard alignments are known
// during evaluation, this feedback response step can be simulated on
// behalf of a user." A tree is gold-consistent when every association edge
// it uses is a gold alignment (membership, FK, and keyword-match edges are
// always acceptable).
class SimulatedUser {
 public:
  explicit SimulatedUser(std::vector<learn::GoldEdge> gold);

  bool IsGoldConsistent(const query::QueryGraph& qg,
                        const steiner::SteinerTree& tree) const;

  // The lowest-cost gold-consistent tree among `trees` (which must be
  // cost-ascending), or nullopt.
  std::optional<steiner::SteinerTree> PickEndorsedTree(
      const query::QueryGraph& qg,
      const std::vector<steiner::SteinerTree>& trees) const;

  // Finds a gold-consistent tree even when none is in the current top-k:
  // re-solves the Steiner problem with all non-gold association edges
  // banned. This is the answer a domain expert "knows" to be right.
  std::optional<steiner::SteinerTree> SolveEndorsedTree(
      const query::QueryGraph& qg, const graph::WeightVector& weights) const;

  // Like SolveEndorsedTree, but insists the endorsed answer be a genuine
  // *integration* answer: the cheapest gold-consistent proper tree that
  // uses at least one (gold) association edge. A domain expert asking
  // "GO term ... publication titles" endorses the joined answer, not a
  // coincidental single-table match. Returns nullopt when no gold
  // association can participate in any proper tree.
  std::optional<steiner::SteinerTree> SolveEndorsedJoinTree(
      const query::QueryGraph& qg, const graph::WeightVector& weights) const;

  // The answer matching the query's *intent*: every keyword is pinned to
  // its best (cheapest) match and the relations those matches live in are
  // connected through gold edges only. This is what a domain expert
  // endorses — "GO term name ... publication titles" means the GO term
  // joined to its publications, not whichever partial match is cheapest.
  std::optional<steiner::SteinerTree> SolveIntentTree(
      const query::QueryGraph& qg, const graph::WeightVector& weights) const;

  // Preference order an expert would use when marking an answer: the
  // intent tree, else the cheapest gold-consistent top-k tree that uses
  // an association edge, else a solved join tree, else any
  // gold-consistent top-k tree.
  std::optional<steiner::SteinerTree> EndorseForLearning(
      const query::QueryGraph& qg,
      const std::vector<steiner::SteinerTree>& trees,
      const graph::WeightVector& weights) const;

  const std::vector<learn::GoldEdge>& gold() const { return gold_; }

 private:
  std::vector<learn::GoldEdge> gold_;
  std::unordered_set<std::string> gold_keys_;
};

}  // namespace q::feedback

#endif  // Q_FEEDBACK_SIMULATED_USER_H_
