#ifndef Q_DATA_ONBOARDING_H_
#define Q_DATA_ONBOARDING_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "relational/catalog.h"

namespace q::data {

// Synthetic catalog purpose-built for the streaming-onboarding suite
// (tests/onboarding_test.cc, bench/bench_onboarding.cc): `num_communities`
// isolated two-table islands whose keyword vocabulary is pairwise
// disjoint, so each community hosts exactly one keyword view and the
// structural relevance gate's preconditions hold by construction:
//
//   * every view keyword matches its attribute-name document exactly
//     (cosine similarity 1.0 regardless of corpus size), so registering
//     a vocabulary-disjoint source never perturbs any view's keyword
//     match set or scores — the certificate fingerprint stays stable;
//   * communities are separate graph components, so an association
//     landing in community j is provably outside every other view's
//     alpha-neighborhood ball.
//
// Community i ("src<i>"): relation "rela<i>" {qa<i>, lka, lkb} and
// relation "relb<i>" {qb<i>, lka, lkb}, joined by two parallel declared
// foreign keys (lka->lka, lkb->lkb) — exactly two proper Steiner trees
// per view, so k=2 views fill their top-k (finite kth cost, usable
// alpha ball) while k>=3 views keep head-room for an onboarded source
// to enter the ranking. The view for community i asks {"qa<i>",
// "qb<i>"}. Row values are community-tagged letter strings (never
// numeric, never shared across communities).
struct OnboardingDataset {
  std::vector<std::shared_ptr<relational::DataSource>> sources;
  // keyword_queries[i] is community i's two-keyword view query.
  std::vector<std::vector<std::string>> keyword_queries;
};

OnboardingDataset BuildOnboardingDataset(std::size_t num_communities,
                                         std::size_t rows_per_table = 6);

// A source whose entire vocabulary (relation/attribute names and row
// values) is disjoint from every community and every other disjoint
// source: registering it adds a disconnected graph island, matches no
// keyword, and aligns with nothing — the structural gate must skip every
// view. `serial` disambiguates repeated registrations.
std::shared_ptr<relational::DataSource> MakeDisjointSource(
    std::size_t serial, std::size_t rows_per_table = 6);

// A source relevant to community `target`: its table carries an
// attribute named "qa<target>" (so the community's view keyword now
// matches it too) whose values equal rela<target>.qa<target>'s values
// (so the MAD matcher aligns the two attributes on registration). Every
// other community's view is provably unaffected. `serial` disambiguates
// repeated registrations.
std::shared_ptr<relational::DataSource> MakeOverlappingSource(
    std::size_t serial, std::size_t target, std::size_t rows_per_table = 6);

// Base-26 letter encoding ("aaa", "aab", ...) used for every generated
// identifier: letters-only tokens survive identifier tokenization as one
// token and can never collide with another prefix's vocabulary.
std::string OnboardingCode(std::size_t n);

}  // namespace q::data

#endif  // Q_DATA_ONBOARDING_H_
