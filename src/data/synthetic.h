#ifndef Q_DATA_SYNTHETIC_H_
#define Q_DATA_SYNTHETIC_H_

#include <cstdint>
#include <memory>
#include <string>

#include "graph/cost_model.h"
#include "graph/search_graph.h"
#include "relational/catalog.h"
#include "util/random.h"

namespace q::data {

// Synthetic search-graph growth for the Sec. 5.1.2 scaling experiment:
// "we randomly generated new sources with two attributes, and then
// connected them to two random nodes in the search graph", with edge
// costs set to the average cost of the calibrated original graph.
struct SyntheticGrowthOptions {
  std::size_t rows_per_table = 5;
  // Confidence recorded on the synthetic association edges; the caller's
  // cost model maps it near the calibrated average cost.
  double association_confidence = 0.5;
};

// Adds `count` two-attribute single-table sources to the catalog and wires
// each into the graph with association edges to two random existing
// attribute nodes. Source names are "syn<N>" with N unique.
util::Status GrowWithSyntheticSources(std::size_t count,
                                      const SyntheticGrowthOptions& options,
                                      util::Rng* rng,
                                      relational::Catalog* catalog,
                                      graph::CostModel* model,
                                      graph::SearchGraph* graph);

// Builds (but does not wire) one synthetic two-attribute source.
std::shared_ptr<relational::DataSource> MakeSyntheticSource(
    const std::string& name, std::size_t rows, util::Rng* rng);

// Streaming catalog synthesis for the 10k/100k/1M scaling tiers. The
// quadratic pieces of GrowWithSyntheticSources (per-source scans, one
// interned feature vector per edge) are replaced by a domain model:
//
//  * `num_domains` topic domains, each owning a small *sliding* pool of
//    hub attribute nodes: every source assigned to the domain donates
//    its attributes to the pool, evicting the oldest entries beyond
//    `hub_attrs_per_domain` (FIFO). New sources therefore associate
//    with *recently ingested* sources of their domain — the temporal
//    locality of a streaming crawl — which strings each domain into a
//    long chain of overlapping neighborhoods instead of one shallow
//    star. Queries about nearby sources touch a bounded window of that
//    chain, which is exactly the locality the sharded terminal-local
//    search (steiner/shard.h) exploits;
//  * every source picks its domain from a Zipfian popularity
//    distribution (`zipf_theta`) and wires each of its two attributes to
//    a random hub of the current pool — dense popular domains, a long
//    sparse tail, O(1) work per source;
//  * association features are templated per domain (shared pseudo-
//    relation + shared edge key), so all of a domain's edges intern to
//    ONE FeatureVec and one provenance list in the graph's pools.
//
// Catalog registration (schemas + `rows_per_table` rows per source) is
// optional: serving benchmarks need executable sources, the pure
// graph-scaling tiers do not and skip the allocation entirely.
struct StreamingCatalogOptions {
  std::uint32_t num_domains = 64;
  std::uint32_t hub_attrs_per_domain = 8;
  // Zipfian skew of domain popularity (0 = uniform).
  double zipf_theta = 0.99;
  std::size_t rows_per_table = 2;
  double association_confidence = 0.5;
  // When set, every source is also added to `catalog` with rows.
  bool register_catalog = false;
  // Source names are "<source_prefix><N>"; keep prefixes distinct per
  // generator call so node labels never collide.
  std::string source_prefix = "zsrc";
};

util::Status BuildStreamingCatalog(std::size_t count,
                                   const StreamingCatalogOptions& options,
                                   util::Rng* rng,
                                   relational::Catalog* catalog,
                                   graph::CostModel* model,
                                   graph::SearchGraph* graph);

}  // namespace q::data

#endif  // Q_DATA_SYNTHETIC_H_
