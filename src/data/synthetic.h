#ifndef Q_DATA_SYNTHETIC_H_
#define Q_DATA_SYNTHETIC_H_

#include <cstdint>
#include <memory>
#include <string>

#include "graph/cost_model.h"
#include "graph/search_graph.h"
#include "relational/catalog.h"
#include "util/random.h"

namespace q::data {

// Synthetic search-graph growth for the Sec. 5.1.2 scaling experiment:
// "we randomly generated new sources with two attributes, and then
// connected them to two random nodes in the search graph", with edge
// costs set to the average cost of the calibrated original graph.
struct SyntheticGrowthOptions {
  std::size_t rows_per_table = 5;
  // Confidence recorded on the synthetic association edges; the caller's
  // cost model maps it near the calibrated average cost.
  double association_confidence = 0.5;
};

// Adds `count` two-attribute single-table sources to the catalog and wires
// each into the graph with association edges to two random existing
// attribute nodes. Source names are "syn<N>" with N unique.
util::Status GrowWithSyntheticSources(std::size_t count,
                                      const SyntheticGrowthOptions& options,
                                      util::Rng* rng,
                                      relational::Catalog* catalog,
                                      graph::CostModel* model,
                                      graph::SearchGraph* graph);

// Builds (but does not wire) one synthetic two-attribute source.
std::shared_ptr<relational::DataSource> MakeSyntheticSource(
    const std::string& name, std::size_t rows, util::Rng* rng);

}  // namespace q::data

#endif  // Q_DATA_SYNTHETIC_H_
