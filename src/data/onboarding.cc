#include "data/onboarding.h"

#include "util/logging.h"

namespace q::data {
namespace {

using relational::AttributeDef;
using relational::DataSource;
using relational::ForeignKey;
using relational::RelationSchema;
using relational::Row;
using relational::Table;
using relational::Value;

// Row r of community i carries join value "j<i><r>" in both link
// columns: rows pair one-to-one across the declared FK joins, so every
// view's executed queries return actual tuples.
std::string JoinValue(std::size_t community, std::size_t row) {
  return "j" + OnboardingCode(community) + OnboardingCode(row);
}

// The qa-column value shared between rela<i> and an overlapping source
// targeting community i (the MAD matcher's alignment signal).
std::string QaValue(std::size_t community, std::size_t row) {
  return "w" + OnboardingCode(community) + "a" + OnboardingCode(row);
}

std::shared_ptr<Table> MakeCommunityTable(std::size_t community, bool is_a,
                                          std::size_t rows) {
  const std::string code = OnboardingCode(community);
  const std::string relation = (is_a ? "rela" : "relb") + code;
  const std::string query_attr = (is_a ? "qa" : "qb") + code;
  RelationSchema schema("src" + code, relation,
                        {AttributeDef{query_attr},
                         AttributeDef{"lka"},
                         AttributeDef{"lkb"}});
  if (is_a) {
    schema.AddForeignKey(
        ForeignKey{"lka", "src" + code, "relb" + code, "lka"});
    schema.AddForeignKey(
        ForeignKey{"lkb", "src" + code, "relb" + code, "lkb"});
  }
  auto table = std::make_shared<Table>(std::move(schema));
  for (std::size_t r = 0; r < rows; ++r) {
    std::string text = is_a ? QaValue(community, r)
                            : "w" + code + "b" + OnboardingCode(r);
    Q_CHECK_OK(table->AppendRow(Row{Value(std::move(text)),
                                    Value(JoinValue(community, r)),
                                    Value(JoinValue(community, r))}));
  }
  return table;
}

}  // namespace

std::string OnboardingCode(std::size_t n) {
  std::string code(3, 'a');
  for (int i = 2; i >= 0; --i) {
    code[static_cast<std::size_t>(i)] =
        static_cast<char>('a' + static_cast<char>(n % 26));
    n /= 26;
  }
  return code;
}

OnboardingDataset BuildOnboardingDataset(std::size_t num_communities,
                                         std::size_t rows_per_table) {
  OnboardingDataset dataset;
  for (std::size_t i = 0; i < num_communities; ++i) {
    const std::string code = OnboardingCode(i);
    auto source = std::make_shared<DataSource>("src" + code);
    Q_CHECK_OK(source->AddTable(
        MakeCommunityTable(i, /*is_a=*/true, rows_per_table)));
    Q_CHECK_OK(source->AddTable(
        MakeCommunityTable(i, /*is_a=*/false, rows_per_table)));
    dataset.sources.push_back(std::move(source));
    dataset.keyword_queries.push_back({"qa" + code, "qb" + code});
  }
  return dataset;
}

std::shared_ptr<DataSource> MakeDisjointSource(std::size_t serial,
                                               std::size_t rows_per_table) {
  const std::string code = OnboardingCode(serial);
  auto source = std::make_shared<DataSource>("zsrc" + code);
  auto table = std::make_shared<Table>(
      RelationSchema("zsrc" + code, "zrel" + code,
                     {AttributeDef{"zaa" + code}, AttributeDef{"zab" + code}}));
  for (std::size_t r = 0; r < rows_per_table; ++r) {
    Q_CHECK_OK(table->AppendRow(
        Row{Value("zv" + code + "a" + OnboardingCode(r)),
            Value("zv" + code + "b" + OnboardingCode(r))}));
  }
  Q_CHECK_OK(source->AddTable(std::move(table)));
  return source;
}

std::shared_ptr<DataSource> MakeOverlappingSource(std::size_t serial,
                                                  std::size_t target,
                                                  std::size_t rows_per_table) {
  const std::string code = OnboardingCode(serial);
  auto source = std::make_shared<DataSource>("osrc" + code);
  auto table = std::make_shared<Table>(RelationSchema(
      "osrc" + code, "orel" + code,
      // First attribute named after the target community's view keyword:
      // the rebuilt query graph matches it, and its values (copied from
      // rela<target>.qa<target>) make the MAD matcher align the two.
      {AttributeDef{"qa" + OnboardingCode(target)},
       AttributeDef{"olk" + code}}));
  for (std::size_t r = 0; r < rows_per_table; ++r) {
    Q_CHECK_OK(table->AppendRow(Row{Value(QaValue(target, r)),
                                    Value("ov" + code + OnboardingCode(r))}));
  }
  Q_CHECK_OK(source->AddTable(std::move(table)));
  return source;
}

}  // namespace q::data
