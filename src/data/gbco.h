#ifndef Q_DATA_GBCO_H_
#define Q_DATA_GBCO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/catalog.h"
#include "util/result.h"

namespace q::data {

// One Sec. 5.1 experiment trial, derived from a (base query, expanded
// query) pair in the GBCO query log: the search graph initially contains
// every source except `new_sources`; the keyword query reconstructs the
// base query; then the new sources are registered and aligned.
struct GbcoTrial {
  std::vector<std::string> base_relations;  // qualified "source.relation"
  std::vector<std::string> new_sources;     // source names to introduce
  std::vector<std::string> keywords;
};

struct GbcoConfig {
  std::uint64_t seed = 7;
  // Rows generated per relation (scaled by relation arity).
  std::size_t base_rows = 120;
};

struct GbcoDataset {
  relational::Catalog catalog;  // 18 single-relation sources, 187 attrs
  std::vector<GbcoTrial> trials;  // 16 trials, 40 introduced sources total
};

// Deterministic GBCO-like dataset (see DESIGN.md substitutions): matches
// the published cardinalities — 18 relations modeled as separate sources,
// 187 attributes, a query log yielding 16 trials that introduce 40 new
// sources in aggregate. Construction failures (schema drift, row/type
// mismatches, catalog conflicts) surface as util::Status instead of
// aborting the process.
util::Result<GbcoDataset> TryBuildGbco(const GbcoConfig& config = GbcoConfig());

// Convenience wrapper for callers that treat a generator failure as a
// programming error: Q_CHECKs TryBuildGbco's status.
GbcoDataset BuildGbco(const GbcoConfig& config = GbcoConfig());

}  // namespace q::data

#endif  // Q_DATA_GBCO_H_
