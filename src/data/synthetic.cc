#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/graph_builder.h"

namespace q::data {

using relational::AttributeDef;
using relational::DataSource;
using relational::RelationSchema;
using relational::Row;
using relational::Table;
using relational::Value;
using relational::ValueType;

std::shared_ptr<DataSource> MakeSyntheticSource(const std::string& name,
                                                std::size_t rows,
                                                util::Rng* rng) {
  auto table = std::make_shared<Table>(
      RelationSchema(name, "rel",
                     {AttributeDef{"key", ValueType::kString},
                      AttributeDef{"val", ValueType::kString}}));
  for (std::size_t r = 0; r < rows; ++r) {
    Q_CHECK_OK(table->AppendRow(
        Row{Value(name + "-k" + std::to_string(rng->Uniform(1000))),
            Value(name + "-v" + std::to_string(rng->Uniform(1000)))}));
  }
  auto source = std::make_shared<DataSource>(name);
  Q_CHECK_OK(source->AddTable(table));
  return source;
}

util::Status GrowWithSyntheticSources(std::size_t count,
                                      const SyntheticGrowthOptions& options,
                                      util::Rng* rng,
                                      relational::Catalog* catalog,
                                      graph::CostModel* model,
                                      graph::SearchGraph* graph) {
  // One snapshot of the pre-existing attribute nodes, appended to
  // incrementally as sources land: each source may target any attribute
  // that existed before it, without re-scanning the whole graph per
  // source (the scan made growth quadratic in `count`).
  std::vector<graph::NodeId> existing_attrs;
  for (graph::NodeId n = 0; n < graph->num_nodes(); ++n) {
    if (graph->node(n).kind == graph::NodeKind::kAttribute) {
      existing_attrs.push_back(n);
    }
  }
  for (std::size_t i = 0; i < count; ++i) {
    std::string name = "syn" + std::to_string(catalog->sources().size());
    auto source = MakeSyntheticSource(name, options.rows_per_table, rng);
    Q_RETURN_NOT_OK(catalog->AddSource(source));

    std::size_t num_targets = existing_attrs.size();
    graph::AddSourceToGraph(*source, model, graph);

    // Wire the new source's two attributes to two random existing nodes.
    const auto& schema = source->tables()[0]->schema();
    for (std::size_t a = 0; a < schema.num_attributes(); ++a) {
      auto attr_node = graph->FindAttributeNode(schema.IdOf(a));
      Q_CHECK(attr_node.has_value());
      existing_attrs.push_back(*attr_node);
      if (num_targets == 0) continue;
      graph::NodeId target = existing_attrs[rng->Uniform(num_targets)];
      std::string key = graph->node(*attr_node).label + "|" +
                        graph->node(target).label;
      graph::FeatureVec features = model->AssociationFeatures(
          "synthetic", options.association_confidence,
          schema.QualifiedName(),
          graph->node(*graph->OwningRelation(target)).label, key);
      graph->AddAssociationEdge(
          *attr_node, target, std::move(features),
          graph::MatcherScore{"synthetic",
                              options.association_confidence});
    }
  }
  return util::Status::OK();
}

util::Status BuildStreamingCatalog(std::size_t count,
                                   const StreamingCatalogOptions& options,
                                   util::Rng* rng,
                                   relational::Catalog* catalog,
                                   graph::CostModel* model,
                                   graph::SearchGraph* graph) {
  if (count == 0) return util::Status::OK();
  const std::uint32_t num_domains = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(
             std::min<std::size_t>(options.num_domains, count)));

  // Zipfian CDF over domain popularity, sampled by binary search.
  std::vector<double> domain_cdf(num_domains);
  double acc = 0.0;
  for (std::uint32_t d = 0; d < num_domains; ++d) {
    acc += 1.0 / std::pow(static_cast<double>(d + 1), options.zipf_theta);
    domain_cdf[d] = acc;
  }
  for (double& c : domain_cdf) c /= acc;

  // One feature template and one provenance list per domain: every edge
  // a domain produces interns to the same pooled FeatureVec, which is
  // what keeps bytes/source flat at the million-source tier.
  std::vector<graph::FeatureVec> domain_features(num_domains);
  for (std::uint32_t d = 0; d < num_domains; ++d) {
    std::string dom = options.source_prefix + ":dom" + std::to_string(d);
    domain_features[d] = model->AssociationFeatures(
        "synthetic", options.association_confidence, dom, dom, dom);
  }
  const graph::MatcherScore shared_score{"synthetic",
                                         options.association_confidence};

  // Sliding hub pools: ring buffers of the most recently donated
  // attribute nodes, one per domain (see synthetic.h — the FIFO eviction
  // is what gives the stream its temporal locality).
  std::vector<std::vector<graph::NodeId>> domain_hubs(num_domains);
  std::vector<std::size_t> domain_donations(num_domains, 0);

  for (std::size_t i = 0; i < count; ++i) {
    std::string name = options.source_prefix + std::to_string(i);
    // Pick the domain first so hub donation and wiring agree.
    double roll = rng->UniformDouble();
    std::uint32_t domain = static_cast<std::uint32_t>(
        std::lower_bound(domain_cdf.begin(), domain_cdf.end(), roll) -
        domain_cdf.begin());
    if (domain >= num_domains) domain = num_domains - 1;

    relational::RelationSchema schema(
        name, "rel",
        {AttributeDef{"key", ValueType::kString},
         AttributeDef{"val", ValueType::kString}});
    if (options.register_catalog) {
      Q_CHECK(catalog != nullptr);
      auto table = std::make_shared<Table>(schema);
      for (std::size_t r = 0; r < options.rows_per_table; ++r) {
        Q_CHECK_OK(table->AppendRow(
            Row{Value(name + "-k" + std::to_string(rng->Uniform(1000))),
                Value(name + "-v" + std::to_string(rng->Uniform(1000)))}));
      }
      auto source = std::make_shared<DataSource>(name);
      Q_CHECK_OK(source->AddTable(table));
      Q_RETURN_NOT_OK(catalog->AddSource(source));
    }
    graph->AddRelation(schema);

    std::vector<graph::NodeId>& hubs = domain_hubs[domain];
    for (std::size_t a = 0; a < schema.num_attributes(); ++a) {
      auto attr_node = graph->FindAttributeNode(schema.IdOf(a));
      Q_CHECK(attr_node.has_value());
      if (!hubs.empty()) {
        graph::NodeId target = hubs[rng->Uniform(hubs.size())];
        graph::FeatureVec features = domain_features[domain];
        graph->AddAssociationEdge(*attr_node, target, std::move(features),
                                  shared_score);
      }
      // Every source donates its attributes to the domain's hub pool,
      // evicting the oldest donation once the pool is full.
      const std::size_t pool =
          std::max<std::size_t>(1, options.hub_attrs_per_domain);
      std::size_t& donated = domain_donations[domain];
      if (hubs.size() < pool) {
        hubs.push_back(*attr_node);
      } else {
        hubs[donated % pool] = *attr_node;
      }
      ++donated;
    }
  }
  graph->CompactAdjacency();
  return util::Status::OK();
}

}  // namespace q::data
