#include "data/synthetic.h"

#include <vector>

#include "graph/graph_builder.h"

namespace q::data {

using relational::AttributeDef;
using relational::DataSource;
using relational::RelationSchema;
using relational::Row;
using relational::Table;
using relational::Value;
using relational::ValueType;

std::shared_ptr<DataSource> MakeSyntheticSource(const std::string& name,
                                                std::size_t rows,
                                                util::Rng* rng) {
  auto table = std::make_shared<Table>(
      RelationSchema(name, "rel",
                     {AttributeDef{"key", ValueType::kString},
                      AttributeDef{"val", ValueType::kString}}));
  for (std::size_t r = 0; r < rows; ++r) {
    Q_CHECK_OK(table->AppendRow(
        Row{Value(name + "-k" + std::to_string(rng->Uniform(1000))),
            Value(name + "-v" + std::to_string(rng->Uniform(1000)))}));
  }
  auto source = std::make_shared<DataSource>(name);
  Q_CHECK_OK(source->AddTable(table));
  return source;
}

util::Status GrowWithSyntheticSources(std::size_t count,
                                      const SyntheticGrowthOptions& options,
                                      util::Rng* rng,
                                      relational::Catalog* catalog,
                                      graph::CostModel* model,
                                      graph::SearchGraph* graph) {
  for (std::size_t i = 0; i < count; ++i) {
    std::string name = "syn" + std::to_string(catalog->sources().size());
    auto source = MakeSyntheticSource(name, options.rows_per_table, rng);
    Q_RETURN_NOT_OK(catalog->AddSource(source));

    // Snapshot existing attribute nodes before adding the new relation.
    std::vector<graph::NodeId> existing_attrs;
    for (graph::NodeId n = 0; n < graph->num_nodes(); ++n) {
      if (graph->node(n).kind == graph::NodeKind::kAttribute) {
        existing_attrs.push_back(n);
      }
    }
    graph::AddSourceToGraph(*source, model, graph);
    if (existing_attrs.empty()) continue;

    // Wire the new source's two attributes to two random existing nodes.
    const auto& schema = source->tables()[0]->schema();
    for (std::size_t a = 0; a < schema.num_attributes(); ++a) {
      auto attr_node = graph->FindAttributeNode(schema.IdOf(a));
      Q_CHECK(attr_node.has_value());
      graph::NodeId target = existing_attrs[rng->Uniform(
          existing_attrs.size())];
      std::string key = graph->node(*attr_node).label + "|" +
                        graph->node(target).label;
      graph::FeatureVec features = model->AssociationFeatures(
          "synthetic", options.association_confidence,
          schema.QualifiedName(),
          graph->node(*graph->OwningRelation(target)).label, key);
      graph->AddAssociationEdge(
          *attr_node, target, std::move(features),
          graph::MatcherScore{"synthetic",
                              options.association_confidence});
    }
  }
  return util::Status::OK();
}

}  // namespace q::data
