#ifndef Q_DATA_INTERPRO_GO_H_
#define Q_DATA_INTERPRO_GO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "learn/evaluation.h"
#include "relational/catalog.h"
#include "util/result.h"

namespace q::data {

// Generator knobs for the InterPro-GO dataset (Sec. 5.2 / Fig. 9). The
// paper used the real InterPro and GO databases; we generate synthetic
// contents with the same 8-table / 28-attribute schema, controlled value
// overlap along the 8 gold edges, and a deliberate partial
// method.name/entry.name overlap reproducing the paper's "useful wrong
// alignment" example (Sec. 5.2.1).
struct InterProGoConfig {
  std::uint64_t seed = 42;
  std::size_t num_go_terms = 600;
  std::size_t num_entries = 400;
  std::size_t num_pubs = 300;
  std::size_t num_journals = 40;
  std::size_t num_methods = 450;
  std::size_t interpro2go_links = 700;
  std::size_t entry2pub_links = 600;
  std::size_t method2pub_links = 500;
  // Fraction of method names copied from entry names (the 780-value
  // overlap the paper observed, scaled).
  double method_entry_name_overlap = 0.15;
  // The Sec. 5.2 experiments strip join metadata ("we remove this
  // information from the metadata"); set true to declare FKs anyway.
  bool declare_foreign_keys = false;
};

struct InterProGoDataset {
  relational::Catalog catalog;
  // The 8 semantically meaningful join/alignment edges of Fig. 9.
  std::vector<learn::GoldEdge> gold_edges;
  // Two-keyword queries modeled on the GO/InterPro documentation usage
  // patterns (10 queries, as used for Figs. 10-12).
  std::vector<std::vector<std::string>> keyword_queries;
};

// Builds the dataset deterministically from the config seed. Generator
// failures (row/type mismatches, catalog conflicts) surface as
// util::Status instead of aborting the process.
util::Result<InterProGoDataset> TryBuildInterProGo(
    const InterProGoConfig& config = InterProGoConfig());

// Convenience wrapper for callers that treat a generator failure as a
// programming error: Q_CHECKs TryBuildInterProGo's status.
InterProGoDataset BuildInterProGo(
    const InterProGoConfig& config = InterProGoConfig());

}  // namespace q::data

#endif  // Q_DATA_INTERPRO_GO_H_
