#include "data/gbco.h"

#include <unordered_map>

#include "util/random.h"
#include "util/status.h"

namespace q::data {
namespace {

using relational::AttributeDef;
using relational::DataSource;
using relational::RelationSchema;
using relational::Row;
using relational::Table;
using relational::Value;
using relational::ValueType;

struct RelationSpec {
  const char* name;
  std::vector<const char*> attrs;
};

// 18 relations, 187 attributes total (asserted in BuildGbco). Shared *_id
// columns give the value overlap that drives joins and the Fig. 7 value
// overlap filter.
const std::vector<RelationSpec>& Specs() {
  static const std::vector<RelationSpec>* specs = new std::vector<
      RelationSpec>{
      {"gene",
       {"gene_id", "symbol", "name", "chromosome", "start_pos", "end_pos",
        "strand", "description", "organism", "gene_type", "ensembl_id",
        "refseq_id"}},
      {"experiment",
       {"experiment_id", "name", "description", "lab", "date_run",
        "platform_id", "protocol", "condition", "replicate_count",
        "pi_name", "status"}},
      {"sample",
       {"sample_id", "experiment_id", "tissue_id", "donor_id", "age", "sex",
        "treatment", "collection_date", "quality_score", "notes"}},
      {"expression",
       {"expression_id", "gene_id", "sample_id", "probe_id", "value_level",
        "log_ratio", "p_value", "fold_change", "call_flag"}},
      {"pathway",
       {"pathway_id", "name", "source_db", "category", "description",
        "gene_count", "curator", "last_updated"}},
      {"gene2pathway", {"gene_id", "pathway_id", "evidence_code", "score"}},
      {"probe",
       {"probe_id", "platform_id", "gene_id", "sequence", "chromosome",
        "start_pos", "gc_content", "probe_type", "quality_flag",
        "spot_id"}},
      {"platform",
       {"platform_id", "name", "manufacturer", "technology", "probe_count",
        "version", "release_date", "organism"}},
      {"publication",
       {"pub_id", "title", "journal", "year", "volume", "pages",
        "first_author", "pmid", "doi"}},
      {"gene2pub", {"gene_id", "pub_id", "mention_count", "curated_flag"}},
      {"protein",
       {"protein_id", "gene_id", "name", "sequence_length",
        "molecular_weight", "uniprot_id", "domain_count", "localization",
        "function_class", "isoform", "ec_number", "description"}},
      {"gene2protein",
       {"gene_id", "protein_id", "evidence_code", "confidence"}},
      {"tissue",
       {"tissue_id", "name", "organ", "species", "developmental_stage",
        "cell_count", "ontology_id", "description"}},
      {"cell_line",
       {"cell_line_id", "name", "tissue_id", "species", "disease",
        "passage_number", "culture_medium", "doubling_time", "supplier",
        "catalog_number"}},
      {"assay",
       {"assay_id", "name", "assay_type", "experiment_id", "target_gene_id",
        "readout", "kit_name", "vendor", "detection_limit", "units",
        "protocol_ref", "notes"}},
      {"measurement",
       {"measurement_id", "assay_id", "sample_id", "analyte", "raw_value",
        "normalized_value", "units", "batch_id", "plate_id",
        "well_position", "operator_name", "run_date", "instrument",
        "qc_flag", "dilution_factor", "replicate_id", "background_value",
        "signal_noise_ratio"}},
      {"antibody",
       {"antibody_id", "name", "target_protein_id", "vendor",
        "catalog_number", "clonality", "host_species", "isotype",
        "application", "dilution", "lot_number", "validation_status",
        "epitope", "storage_temp"}},
      {"clinical_sample",
       {"clinical_id", "sample_id", "patient_id", "diagnosis",
        "age_at_collection", "sex", "bmi", "hba1c", "glucose_level",
        "insulin_level", "c_peptide", "diabetes_type", "medication",
        "collection_site", "consent_status", "ethnicity", "family_history",
        "smoking_status", "blood_pressure_sys", "blood_pressure_dia",
        "cholesterol", "triglycerides", "follow_up_months", "outcome"}},
  };
  return *specs;
}

// Identifier pools keyed by attribute name; columns named the same draw
// from the same pool, producing cross-relation value overlap.
class IdPools {
 public:
  explicit IdPools(util::Rng* rng) : rng_(rng) {}

  std::string Draw(const std::string& attr) {
    auto& pool = pools_[attr];
    if (pool.empty()) {
      std::string prefix;
      for (char c : attr) {
        if (c == '_') break;
        prefix += static_cast<char>(std::toupper(c));
      }
      for (std::size_t i = 0; i < 200; ++i) {
        pool.push_back(prefix + std::to_string(1000 + i * 3));
      }
    }
    return pool[rng_->Uniform(pool.size())];
  }

 private:
  util::Rng* rng_;
  std::unordered_map<std::string, std::vector<std::string>> pools_;
};

bool IsIdAttribute(const std::string& name) {
  auto ends_with = [&](const char* suffix) {
    std::string s(suffix);
    return name.size() >= s.size() &&
           name.compare(name.size() - s.size(), s.size(), s) == 0;
  };
  return ends_with("_id") || ends_with("_ac") || name == "pmid" ||
         name == "doi";
}

bool IsNumericAttribute(const std::string& name) {
  static const char* kNumeric[] = {
      "start_pos",   "end_pos",       "age",          "quality_score",
      "value_level", "log_ratio",     "p_value",      "fold_change",
      "gene_count",  "gc_content",    "probe_count",  "year",
      "volume",      "mention_count", "sequence_length",
      "molecular_weight", "domain_count", "cell_count", "passage_number",
      "doubling_time", "detection_limit", "raw_value", "normalized_value",
      "dilution_factor", "background_value", "signal_noise_ratio",
      "age_at_collection", "bmi", "hba1c", "glucose_level",
      "insulin_level", "c_peptide", "blood_pressure_sys",
      "blood_pressure_dia", "cholesterol", "triglycerides",
      "follow_up_months", "replicate_count", "confidence", "score",
  };
  for (const char* n : kNumeric) {
    if (name == n) return true;
  }
  return false;
}

// Declares key-foreign-key metadata (the "known cross-references, links,
// and correspondence tables" Q starts from, Sec. 2.1). Deliberately a
// *sparse* curated subset — real GBCO sources are separate databases with
// only some declared links; the remaining join paths must be discovered
// by the matchers. Every trial's base query stays FK-connected.
util::Status DeclareForeignKeys(relational::Catalog* catalog) {
  struct Fk {
    const char* relation;
    const char* attr;
    const char* ref_relation;
    const char* ref_attr;
  };
  static const Fk kForeignKeys[] = {
      {"expression", "gene_id", "gene", "gene_id"},
      {"expression", "sample_id", "sample", "sample_id"},
      {"sample", "experiment_id", "experiment", "experiment_id"},
      {"sample", "tissue_id", "tissue", "tissue_id"},
      {"gene2pathway", "gene_id", "gene", "gene_id"},
      {"gene2pathway", "pathway_id", "pathway", "pathway_id"},
      {"gene2pub", "gene_id", "gene", "gene_id"},
      {"gene2pub", "pub_id", "publication", "pub_id"},
      {"gene2protein", "gene_id", "gene", "gene_id"},
      {"gene2protein", "protein_id", "protein", "protein_id"},
      {"probe", "gene_id", "gene", "gene_id"},
      {"probe", "platform_id", "platform", "platform_id"},
      {"assay", "experiment_id", "experiment", "experiment_id"},
      {"measurement", "assay_id", "assay", "assay_id"},
      {"clinical_sample", "sample_id", "sample", "sample_id"},
  };
  for (const Fk& fk : kForeignKeys) {
    auto table = catalog->FindTable(fk.relation, fk.relation);
    if (table == nullptr) {
      return util::Status::NotFound(std::string("FK references unknown "
                                                "relation ") +
                                    fk.relation);
    }
    table->mutable_schema().AddForeignKey(relational::ForeignKey{
        fk.attr, fk.ref_relation, fk.ref_relation, fk.ref_attr});
  }
  return util::Status::OK();
}

constexpr const char* kFillerWords[] = {
    "islet", "beta", "cell", "insulin", "glucose", "secretion", "pancreas",
    "diabetes", "metabolic", "response", "control", "treated", "baseline",
    "profile", "assay", "array", "tissue", "human", "mouse", "donor",
};
constexpr std::size_t kNumFillerWords =
    sizeof(kFillerWords) / sizeof(kFillerWords[0]);

}  // namespace

util::Result<GbcoDataset> TryBuildGbco(const GbcoConfig& config) {
  util::Rng rng(config.seed);
  GbcoDataset out;

  std::size_t total_attrs = 0;
  for (const RelationSpec& spec : Specs()) total_attrs += spec.attrs.size();
  if (total_attrs != 187) {
    return util::Status::Internal("GBCO schema drifted: " +
                                  std::to_string(total_attrs) + " attributes");
  }
  if (Specs().size() != 18) {
    return util::Status::Internal("GBCO schema drifted: relation count");
  }

  IdPools pools(&rng);
  for (const RelationSpec& spec : Specs()) {
    std::vector<AttributeDef> attrs;
    for (const char* a : spec.attrs) {
      ValueType type = IsNumericAttribute(a) ? ValueType::kDouble
                                             : ValueType::kString;
      attrs.push_back(AttributeDef{a, type});
    }
    auto table = std::make_shared<Table>(
        RelationSchema(spec.name, spec.name, std::move(attrs)));
    for (std::size_t r = 0; r < config.base_rows; ++r) {
      Row row;
      for (const char* a : spec.attrs) {
        std::string attr(a);
        if (IsIdAttribute(attr)) {
          row.push_back(Value(pools.Draw(attr)));
        } else if (IsNumericAttribute(attr)) {
          row.push_back(Value(rng.UniformDouble() * 100.0));
        } else {
          std::string text;
          int words = static_cast<int>(rng.UniformInt(1, 3));
          for (int w = 0; w < words; ++w) {
            if (w > 0) text += ' ';
            text += kFillerWords[rng.Uniform(kNumFillerWords)];
          }
          row.push_back(Value(text));
        }
      }
      Q_RETURN_NOT_OK(table->AppendRow(std::move(row)));
    }
    auto source = std::make_shared<DataSource>(spec.name);
    Q_RETURN_NOT_OK(source->AddTable(table));
    Q_RETURN_NOT_OK(out.catalog.AddSource(source));
  }

  Q_RETURN_NOT_OK(DeclareForeignKeys(&out.catalog));

  // --- Trial log: (base query, introduced sources) pairs ------------------
  // Mirrors scanning the GBCO logs for base/expanded query pairs: 16
  // trials, 40 introduced sources in total.
  auto trial = [&](std::vector<std::string> base,
                   std::vector<std::string> added,
                   std::vector<std::string> keywords) {
    std::vector<std::string> base_q;
    for (auto& b : base) base_q.push_back(b + "." + b);
    out.trials.push_back(
        GbcoTrial{std::move(base_q), std::move(added), std::move(keywords)});
  };
  trial({"gene", "expression"}, {"sample", "probe"},
        {"gene symbol", "value level"});
  trial({"gene", "expression", "sample"}, {"tissue", "cell_line"},
        {"gene name", "sample treatment"});
  trial({"gene", "gene2pathway"}, {"pathway", "publication", "gene2pub"},
        {"gene symbol", "pathway"});
  trial({"experiment", "sample"}, {"measurement", "assay"},
        {"experiment name", "sample"});
  trial({"gene", "gene2pub"}, {"publication", "pathway"},
        {"gene name", "pub title"});
  trial({"gene", "gene2protein"}, {"protein", "antibody"},
        {"gene symbol", "protein name"});
  trial({"probe", "gene"}, {"platform", "expression"},
        {"probe", "gene symbol"});
  trial({"sample", "clinical_sample"}, {"tissue", "cell_line"},
        {"sample", "diagnosis"});
  trial({"expression", "probe"}, {"platform", "gene", "gene2pathway"},
        {"expression", "probe type"});
  trial({"assay", "measurement"}, {"antibody", "protein", "gene2protein"},
        {"assay name", "analyte"});
  trial({"pathway", "gene2pathway"}, {"gene", "protein"},
        {"pathway name", "evidence"});
  trial({"publication", "gene2pub"}, {"gene", "expression", "probe"},
        {"pub title", "gene symbol"});
  trial({"tissue", "sample"}, {"cell_line", "clinical_sample", "antibody"},
        {"tissue name", "sample"});
  trial({"experiment", "assay"}, {"measurement", "sample", "platform"},
        {"experiment", "assay type"});
  trial({"gene", "protein"}, {"antibody", "gene2protein", "publication"},
        {"gene name", "protein name"});
  trial({"clinical_sample", "sample"}, {"measurement", "expression",
                                        "assay"},
        {"diagnosis", "glucose level"});

  std::size_t introduced = 0;
  for (const GbcoTrial& t : out.trials) {
    for (const std::string& s : t.new_sources) {
      if (out.catalog.FindSource(s) == nullptr) {
        return util::Status::Internal("trial references unknown source " + s);
      }
    }
    introduced += t.new_sources.size();
  }
  if (out.trials.size() != 16) {
    return util::Status::Internal("expected 16 trials, have " +
                                  std::to_string(out.trials.size()));
  }
  if (introduced != 40) {
    return util::Status::Internal("expected 40 introduced sources, have " +
                                  std::to_string(introduced));
  }
  return out;
}

GbcoDataset BuildGbco(const GbcoConfig& config) {
  auto dataset = TryBuildGbco(config);
  Q_CHECK_OK(dataset.status());
  return *std::move(dataset);
}

}  // namespace q::data
