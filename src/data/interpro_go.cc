#include "data/interpro_go.h"

#include <algorithm>

#include "util/random.h"
#include "util/status.h"

namespace q::data {
namespace {

using relational::AttributeDef;
using relational::AttributeId;
using relational::DataSource;
using relational::ForeignKey;
using relational::RelationSchema;
using relational::Row;
using relational::Table;
using relational::Value;
using relational::ValueType;

// Biological vocabulary for generated names/titles/definitions.
constexpr const char* kBioWords[] = {
    "plasma",     "membrane",  "kinase",     "binding",   "transport",
    "receptor",   "signal",    "transduction", "protein", "domain",
    "nuclear",    "transcription", "factor", "regulation", "apoptosis",
    "mitochondrial", "ribosomal", "helicase", "polymerase", "oxidase",
    "reductase",  "transferase", "hydrolase", "ligase",    "isomerase",
    "phosphatase", "channel",  "calcium",    "zinc",       "finger",
    "homeobox",   "immunoglobulin", "lectin", "collagen",  "fibronectin",
    "growth",     "hormone",   "cytokine",   "chemokine",  "interleukin",
    "tyrosine",   "serine",    "threonine",  "histidine",  "proline",
    "glycine",    "repeat",    "motif",      "family",     "superfamily",
    "activity",   "process",   "component",  "complex",    "assembly",
    "pathway",    "cascade",   "response",   "stress",     "heat",
    "shock",      "cell",      "cycle",      "division",   "adhesion",
    "matrix",     "vesicle",   "endoplasmic", "reticulum", "golgi",
    "lysosome",   "peroxisome", "cytoskeleton", "actin",   "tubulin",
    "myosin",     "dynein",    "kinesin",    "chaperone",  "ubiquitin",
};
constexpr std::size_t kNumBioWords = sizeof(kBioWords) / sizeof(kBioWords[0]);

constexpr const char* kJournalWords[] = {
    "journal", "molecular", "biology", "nature", "structural", "cell",
    "proteins", "nucleic", "acids", "research", "biochemistry",
    "bioinformatics", "genome", "proteomics", "science", "reports",
};
constexpr std::size_t kNumJournalWords =
    sizeof(kJournalWords) / sizeof(kJournalWords[0]);

std::string PadNumber(std::size_t n, int width) {
  std::string digits = std::to_string(n);
  if (digits.size() < static_cast<std::size_t>(width)) {
    digits.insert(0, static_cast<std::size_t>(width) - digits.size(), '0');
  }
  return digits;
}

std::string MakePhrase(util::Rng* rng, const char* const* words,
                       std::size_t num_words, int min_len, int max_len) {
  int len = static_cast<int>(rng->UniformInt(min_len, max_len));
  std::string out;
  for (int i = 0; i < len; ++i) {
    if (i > 0) out += ' ';
    out += words[rng->Uniform(num_words)];
  }
  return out;
}

std::shared_ptr<Table> MakeTable(const std::string& source,
                                 const std::string& relation,
                                 std::vector<AttributeDef> attrs) {
  return std::make_shared<Table>(
      RelationSchema(source, relation, std::move(attrs)));
}

}  // namespace

util::Result<InterProGoDataset> TryBuildInterProGo(
    const InterProGoConfig& config) {
  util::Rng rng(config.seed);
  InterProGoDataset out;

  // --- Identifier pools ---------------------------------------------------
  std::vector<std::string> go_ids;
  for (std::size_t i = 0; i < config.num_go_terms; ++i) {
    go_ids.push_back("GO:" + PadNumber(1000 + i * 7, 7));
  }
  std::vector<std::string> entry_ids;
  for (std::size_t i = 0; i < config.num_entries; ++i) {
    entry_ids.push_back("IPR" + PadNumber(100 + i * 3, 6));
  }
  std::vector<std::string> pub_ids;
  for (std::size_t i = 0; i < config.num_pubs; ++i) {
    pub_ids.push_back("PUB" + PadNumber(10 + i * 11, 5));
  }
  std::vector<std::string> journal_ids;
  for (std::size_t i = 0; i < config.num_journals; ++i) {
    journal_ids.push_back("JNL" + PadNumber(1 + i * 5, 4));
  }
  std::vector<std::string> method_ids;
  for (std::size_t i = 0; i < config.num_methods; ++i) {
    method_ids.push_back("PF" + PadNumber(20 + i * 2, 5));
  }

  const char* kTermTypes[] = {"molecular_function", "biological_process",
                              "cellular_component"};
  const char* kEntryTypes[] = {"Domain", "Family", "Repeat", "Site"};
  const char* kMethodTypes[] = {"pfam", "prosite", "prints", "smart"};

  // --- go.go_term(acc, name, term_type, definition) ----------------------
  auto go_term = MakeTable("go", "go_term",
                           {{"acc", ValueType::kString},
                            {"name", ValueType::kString},
                            {"term_type", ValueType::kString},
                            {"definition", ValueType::kString}});
  std::vector<std::string> go_names;
  for (std::size_t i = 0; i < config.num_go_terms; ++i) {
    std::string name =
        i == 0 ? "plasma membrane"
               : MakePhrase(&rng, kBioWords, kNumBioWords, 2, 3);
    go_names.push_back(name);
    Q_RETURN_NOT_OK(go_term->AppendRow(
        Row{Value(go_ids[i]), Value(name),
            Value(std::string(kTermTypes[rng.Uniform(3)])),
            Value(MakePhrase(&rng, kBioWords, kNumBioWords, 6, 12))}));
  }

  // --- interpro.entry(entry_ac, name, short_name, entry_type) ------------
  auto entry = MakeTable("interpro", "entry",
                         {{"entry_ac", ValueType::kString},
                          {"name", ValueType::kString},
                          {"short_name", ValueType::kString},
                          {"entry_type", ValueType::kString},
                          {"created", ValueType::kString}});
  std::vector<std::string> entry_names;
  for (std::size_t i = 0; i < config.num_entries; ++i) {
    std::string name =
        i == 0 ? "tyrosine kinase domain"
               : MakePhrase(&rng, kBioWords, kNumBioWords, 2, 4);
    entry_names.push_back(name);
    std::string short_name = name.substr(0, name.find(' '));
    std::string created = std::to_string(rng.UniformInt(1999, 2009)) + "-" +
                          PadNumber(1 + rng.Uniform(12), 2) + "-" +
                          PadNumber(1 + rng.Uniform(28), 2);
    Q_RETURN_NOT_OK(entry->AppendRow(
        Row{Value(entry_ids[i]), Value(name), Value(short_name),
            Value(std::string(kEntryTypes[rng.Uniform(4)])),
            Value(created)}));
  }

  // --- interpro.interpro2go(go_id, entry_ac) ------------------------------
  auto interpro2go = MakeTable("interpro", "interpro2go",
                               {{"go_id", ValueType::kString},
                                {"entry_ac", ValueType::kString}});
  for (std::size_t i = 0; i < config.interpro2go_links; ++i) {
    Q_RETURN_NOT_OK(interpro2go->AppendRow(
        Row{Value(rng.Pick(go_ids)), Value(rng.Pick(entry_ids))}));
  }

  // --- interpro.pub(pub_id, title, year, volume, journal_id) -------------
  auto pub = MakeTable("interpro", "pub",
                       {{"pub_id", ValueType::kString},
                        {"title", ValueType::kString},
                        {"year", ValueType::kInt64},
                        {"volume", ValueType::kInt64},
                        {"journal_id", ValueType::kString}});
  for (std::size_t i = 0; i < config.num_pubs; ++i) {
    std::string title =
        i == 0 ? "structure of the plasma membrane receptor"
               : MakePhrase(&rng, kBioWords, kNumBioWords, 4, 8);
    Q_RETURN_NOT_OK(pub->AppendRow(Row{Value(pub_ids[i]), Value(title),
                                  Value(rng.UniformInt(1985, 2009)),
                                  Value(rng.UniformInt(1, 120)),
                                  Value(rng.Pick(journal_ids))}));
  }

  // --- interpro.journal(journal_id, title, issn) --------------------------
  auto journal = MakeTable("interpro", "journal",
                           {{"journal_id", ValueType::kString},
                            {"title", ValueType::kString},
                            {"issn", ValueType::kString}});
  for (std::size_t i = 0; i < config.num_journals; ++i) {
    std::string issn = PadNumber(rng.Uniform(10000), 4) + "-" +
                       PadNumber(rng.Uniform(10000), 4);
    Q_RETURN_NOT_OK(journal->AppendRow(
        Row{Value(journal_ids[i]),
            Value(MakePhrase(&rng, kJournalWords, kNumJournalWords, 2, 4)),
            Value(issn)}));
  }

  // --- interpro.entry2pub(entry_ac, pub_id) -------------------------------
  auto entry2pub = MakeTable("interpro", "entry2pub",
                             {{"entry_ac", ValueType::kString},
                              {"pub_id", ValueType::kString}});
  for (std::size_t i = 0; i < config.entry2pub_links; ++i) {
    Q_RETURN_NOT_OK(entry2pub->AppendRow(
        Row{Value(rng.Pick(entry_ids)), Value(rng.Pick(pub_ids))}));
  }

  // --- interpro.method(method_ac, name, method_type, entry_ac) -----------
  auto method = MakeTable("interpro", "method",
                          {{"method_ac", ValueType::kString},
                           {"name", ValueType::kString},
                           {"method_type", ValueType::kString},
                           {"db_name", ValueType::kString},
                           {"entry_ac", ValueType::kString}});
  const char* kMethodDbs[] = {"PFAM", "PROSITE", "PRINTS", "SMART"};
  for (std::size_t i = 0; i < config.num_methods; ++i) {
    // A fraction of method names replicate entry names: the "wrong but
    // useful" alignment of Sec. 5.2.1.
    std::string name = rng.Bernoulli(config.method_entry_name_overlap)
                           ? rng.Pick(entry_names)
                           : MakePhrase(&rng, kBioWords, kNumBioWords, 2, 4);
    std::size_t db = rng.Uniform(4);
    Q_RETURN_NOT_OK(method->AppendRow(
        Row{Value(method_ids[i]), Value(name),
            Value(std::string(kMethodTypes[db])),
            Value(std::string(kMethodDbs[db])),
            Value(rng.Pick(entry_ids))}));
  }

  // --- interpro.method2pub(method_ac, pub_id) ----------------------------
  auto method2pub = MakeTable("interpro", "method2pub",
                              {{"method_ac", ValueType::kString},
                               {"pub_id", ValueType::kString}});
  for (std::size_t i = 0; i < config.method2pub_links; ++i) {
    Q_RETURN_NOT_OK(method2pub->AppendRow(
        Row{Value(rng.Pick(method_ids)), Value(rng.Pick(pub_ids))}));
  }

  // --- Optional foreign keys (stripped in the Sec. 5.2 experiments) ------
  if (config.declare_foreign_keys) {
    interpro2go->mutable_schema().AddForeignKey(
        ForeignKey{"go_id", "go", "go_term", "acc"});
    interpro2go->mutable_schema().AddForeignKey(
        ForeignKey{"entry_ac", "interpro", "entry", "entry_ac"});
    entry2pub->mutable_schema().AddForeignKey(
        ForeignKey{"entry_ac", "interpro", "entry", "entry_ac"});
    entry2pub->mutable_schema().AddForeignKey(
        ForeignKey{"pub_id", "interpro", "pub", "pub_id"});
    pub->mutable_schema().AddForeignKey(
        ForeignKey{"journal_id", "interpro", "journal", "journal_id"});
    method2pub->mutable_schema().AddForeignKey(
        ForeignKey{"method_ac", "interpro", "method", "method_ac"});
    method2pub->mutable_schema().AddForeignKey(
        ForeignKey{"pub_id", "interpro", "pub", "pub_id"});
    method->mutable_schema().AddForeignKey(
        ForeignKey{"entry_ac", "interpro", "entry", "entry_ac"});
  }

  // --- Assemble catalog ----------------------------------------------------
  auto go_source = std::make_shared<DataSource>("go");
  Q_RETURN_NOT_OK(go_source->AddTable(go_term));
  auto interpro_source = std::make_shared<DataSource>("interpro");
  std::vector<std::shared_ptr<Table>> interpro_tables{
      interpro2go, entry, entry2pub, pub, journal, method, method2pub};
  for (auto& t : interpro_tables) {
    Q_RETURN_NOT_OK(interpro_source->AddTable(t));
  }
  Q_RETURN_NOT_OK(out.catalog.AddSource(go_source));
  Q_RETURN_NOT_OK(out.catalog.AddSource(interpro_source));

  // --- Gold edges (Fig. 9) -------------------------------------------------
  auto gold = [&](const char* sa, const char* ra, const char* aa,
                  const char* sb, const char* rb, const char* ab) {
    out.gold_edges.push_back(learn::GoldEdge{AttributeId{sa, ra, aa},
                                             AttributeId{sb, rb, ab}});
  };
  gold("go", "go_term", "acc", "interpro", "interpro2go", "go_id");
  gold("interpro", "interpro2go", "entry_ac", "interpro", "entry",
       "entry_ac");
  gold("interpro", "entry", "entry_ac", "interpro", "entry2pub", "entry_ac");
  gold("interpro", "entry2pub", "pub_id", "interpro", "pub", "pub_id");
  gold("interpro", "pub", "journal_id", "interpro", "journal", "journal_id");
  gold("interpro", "method", "method_ac", "interpro", "method2pub",
       "method_ac");
  gold("interpro", "method2pub", "pub_id", "interpro", "pub", "pub_id");
  gold("interpro", "method", "entry_ac", "interpro", "entry", "entry_ac");

  // --- Keyword queries (usage patterns from the DB documentation) --------
  out.keyword_queries = {
      {"term name", "pub title"},
      {"plasma membrane", "pub"},
      {"entry name", "journal title"},
      {"method name", "pub title"},
      {"go term", "entry name"},
      {"entry", "pub title"},
      {"method", "entry name"},
      {"journal", "method name"},
      {"go term name", "method"},
      {"tyrosine kinase domain", "pub"},
  };
  return out;
}

InterProGoDataset BuildInterProGo(const InterProGoConfig& config) {
  auto dataset = TryBuildInterProGo(config);
  Q_CHECK_OK(dataset.status());
  return *std::move(dataset);
}

}  // namespace q::data
