#ifndef Q_UTIL_DELTA_JOURNAL_H_
#define Q_UTIL_DELTA_JOURNAL_H_

#include <cstdint>
#include <cstddef>
#include <utility>
#include <vector>

namespace q::util {

// A monotone revision counter paired with a bounded journal of mutation
// records: the shared substrate of the delta-refresh pipeline
// (WeightVector's FeatureDelta journal and SearchGraph's GraphDelta
// journal). Invariant: records_[i] is the mutation that produced
// revision base_revision_ + i + 1, so records_.size() ==
// revision_ - base_revision_ always holds.
//
// Capacity is bounded: on overflow (and on Truncate) all history up to
// the current revision is forgotten, after which DeltaSince for older
// revisions reports truncation — consumers must then assume everything
// may have changed (their wholesale fallback). Truncation can therefore
// never change results, only the cost of reproducing them.
template <typename Record>
class DeltaJournal {
 public:
  explicit DeltaJournal(std::size_t max_entries)
      : max_entries_(max_entries) {}

  std::uint64_t revision() const { return revision_; }

  // Oldest revision DeltaSince can still answer from.
  std::uint64_t base_revision() const { return base_revision_; }

  // Capacity in records (i.e. effective mutations). Shrinking it below
  // the current size takes effect on the next Append.
  void set_max_entries(std::size_t n) { max_entries_ = n; }

  // Records one mutation and advances the revision.
  void Append(Record record) {
    if (records_.size() >= max_entries_) {
      records_.clear();
      base_revision_ = revision_;
    }
    records_.push_back(std::move(record));
    ++revision_;
  }

  // Persistence support: reinstates a journal exactly as saved —
  // revision becomes base_revision + records.size(). Replaces whatever
  // the journal held (snapshot load uses it to erase the bookkeeping
  // noise of reconstructing the owning structure record by record).
  void Restore(std::uint64_t base_revision, std::vector<Record> records) {
    base_revision_ = base_revision;
    revision_ = base_revision + records.size();
    records_ = std::move(records);
  }

  // A dense change that no record list can describe: advances the
  // revision and forgets all history.
  void Truncate() {
    ++revision_;
    records_.clear();
    base_revision_ = revision_;
  }

  // Appends the records for revisions (since_revision, revision()] to
  // `out` (oldest first, one record per revision). Returns false when
  // the journal no longer reaches back to `since_revision`.
  bool DeltaSince(std::uint64_t since_revision,
                  std::vector<Record>* out) const {
    if (since_revision > revision_) return false;
    if (since_revision < base_revision_) return false;
    std::size_t first =
        static_cast<std::size_t>(since_revision - base_revision_);
    out->insert(out->end(), records_.begin() + first, records_.end());
    return true;
  }

 private:
  std::uint64_t revision_ = 0;
  std::uint64_t base_revision_ = 0;
  std::size_t max_entries_;
  std::vector<Record> records_;
};

}  // namespace q::util

#endif  // Q_UTIL_DELTA_JOURNAL_H_
