#include "util/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace q::util {
namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}

char LowerChar(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

}  // namespace

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), LowerChar);
  return out;
}

std::string_view Trim(std::string_view s) {
  std::size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  std::size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      if (i > start) out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> TokenizeIdentifier(std::string_view s) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  };
  for (std::size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (!IsWordChar(c)) {
      flush();
      continue;
    }
    // camelCase boundary: lower/digit followed by upper starts a new token.
    if (std::isupper(static_cast<unsigned char>(c)) && !current.empty() &&
        !std::isupper(static_cast<unsigned char>(s[i - 1]))) {
      flush();
    }
    current += LowerChar(c);
  }
  flush();
  return tokens;
}

std::vector<std::string> TokenizeText(std::string_view s) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : s) {
    if (IsWordChar(c)) {
      current += LowerChar(c);
    } else if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(current);
  return tokens;
}

bool IsNumericLiteral(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return false;
  std::size_t i = 0;
  if (s[i] == '+' || s[i] == '-') ++i;
  bool digits = false;
  bool dot = false;
  for (; i < s.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(s[i]))) {
      digits = true;
    } else if (s[i] == '.' && !dot) {
      dot = true;
    } else {
      return false;
    }
  }
  return digits;
}

std::size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  // One-row DP; a is the shorter string.
  std::vector<std::size_t> row(a.size() + 1);
  for (std::size_t i = 0; i <= a.size(); ++i) row[i] = i;
  for (std::size_t j = 1; j <= b.size(); ++j) {
    std::size_t prev_diag = row[0];
    row[0] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
      std::size_t insert_or_delete = std::min(row[i], row[i - 1]) + 1;
      std::size_t substitute = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      prev_diag = row[i];
      row[i] = std::min(insert_or_delete, substitute);
    }
  }
  return row[a.size()];
}

double EditSimilarity(std::string_view a, std::string_view b) {
  std::size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(EditDistance(a, b)) /
                   static_cast<double>(longest);
}

std::unordered_set<std::string> CharNGrams(std::string_view s, std::size_t n) {
  std::unordered_set<std::string> grams;
  if (s.empty() || n == 0) return grams;
  std::string padded(n - 1, '#');
  padded += ToLower(s);
  padded.append(n - 1, '#');
  for (std::size_t i = 0; i + n <= padded.size(); ++i) {
    grams.insert(padded.substr(i, n));
  }
  return grams;
}

double TrigramSimilarity(std::string_view a, std::string_view b) {
  auto ga = CharNGrams(a, 3);
  auto gb = CharNGrams(b, 3);
  if (ga.empty() && gb.empty()) return 1.0;
  if (ga.empty() || gb.empty()) return 0.0;
  std::size_t intersect = 0;
  for (const auto& g : ga) {
    if (gb.count(g) > 0) ++intersect;
  }
  std::size_t unions = ga.size() + gb.size() - intersect;
  return static_cast<double>(intersect) / static_cast<double>(unions);
}

std::size_t LongestCommonSubstring(std::string_view a, std::string_view b) {
  if (a.empty() || b.empty()) return 0;
  std::vector<std::size_t> row(b.size() + 1, 0);
  std::size_t best = 0;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t prev_diag = 0;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      std::size_t saved = row[j];
      row[j] = (a[i - 1] == b[j - 1]) ? prev_diag + 1 : 0;
      best = std::max(best, row[j]);
      prev_diag = saved;
    }
  }
  return best;
}

double SubstringSimilarity(std::string_view a, std::string_view b) {
  std::string la = ToLower(a);
  std::string lb = ToLower(b);
  std::size_t longest = std::max(la.size(), lb.size());
  if (longest == 0) return 1.0;
  return static_cast<double>(LongestCommonSubstring(la, lb)) /
         static_cast<double>(longest);
}

double TokenJaccard(const std::vector<std::string>& a,
                    const std::vector<std::string>& b) {
  std::unordered_set<std::string> sa(a.begin(), a.end());
  std::unordered_set<std::string> sb(b.begin(), b.end());
  if (sa.empty() && sb.empty()) return 1.0;
  if (sa.empty() || sb.empty()) return 0.0;
  std::size_t intersect = 0;
  for (const auto& t : sa) {
    if (sb.count(t) > 0) ++intersect;
  }
  std::size_t unions = sa.size() + sb.size() - intersect;
  return static_cast<double>(intersect) / static_cast<double>(unions);
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return std::string(buf);
}

}  // namespace q::util
