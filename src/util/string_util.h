#ifndef Q_UTIL_STRING_UTIL_H_
#define Q_UTIL_STRING_UTIL_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace q::util {

// ASCII lowercase copy.
std::string ToLower(std::string_view s);

// Strips leading/trailing whitespace.
std::string_view Trim(std::string_view s);

// Splits on `sep`, dropping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Tokenizes an identifier or free text into lowercase word tokens:
// splits on non-alphanumerics and on camelCase boundaries, so
// "goTermName" and "go_term_name" both yield {"go","term","name"}.
std::vector<std::string> TokenizeIdentifier(std::string_view s);

// Tokenizes free text into lowercase alphanumeric word tokens.
std::vector<std::string> TokenizeText(std::string_view s);

// True if the (trimmed) string parses fully as an integer or decimal number.
bool IsNumericLiteral(std::string_view s);

// Levenshtein edit distance.
std::size_t EditDistance(std::string_view a, std::string_view b);

// 1 - EditDistance/max(|a|,|b|), in [0,1]; 1 when both empty.
double EditSimilarity(std::string_view a, std::string_view b);

// Set of character n-grams of length `n` (over the lowercased string,
// padded with '#'); empty for empty input.
std::unordered_set<std::string> CharNGrams(std::string_view s, std::size_t n);

// Jaccard similarity of character trigram sets, in [0,1].
double TrigramSimilarity(std::string_view a, std::string_view b);

// Length of the longest common substring.
std::size_t LongestCommonSubstring(std::string_view a, std::string_view b);

// COMA-style substring score: LCS length / max(|a|,|b|) over lowercased
// inputs, in [0,1].
double SubstringSimilarity(std::string_view a, std::string_view b);

// Jaccard similarity between two token sets.
double TokenJaccard(const std::vector<std::string>& a,
                    const std::vector<std::string>& b);

// printf-style double with fixed precision, e.g. FormatDouble(0.123456, 2)
// == "0.12".
std::string FormatDouble(double v, int precision);

}  // namespace q::util

#endif  // Q_UTIL_STRING_UTIL_H_
