#ifndef Q_UTIL_DARY_HEAP_H_
#define Q_UTIL_DARY_HEAP_H_

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace q::util {

// Indexed 4-ary min-heap over dense element ids [0, n) with decrease-key.
// Each id is in the heap at most once, so Dijkstra pops every reached node
// exactly once and the heap never grows past n (unlike the lazy-deletion
// std::priority_queue pattern, which churns allocations and re-expands
// stale entries). 4-ary beats binary here: sift-down does 3/4 as many
// levels and the child block shares a cache line.
//
// Equal keys pop in ascending id order: ordering is by (key, id), so the
// pop sequence is a pure function of the final key assignment, not of the
// push/decrease history. The Steiner shortest-path cache relies on this
// canonical order (see sp_cache.h).
//
// Reset() is O(n) but reuses capacity, so a heap kept in a scratch arena
// does no allocation in steady state.
class DaryHeap {
 public:
  static constexpr std::uint32_t kAbsent =
      std::numeric_limits<std::uint32_t>::max();

  void Reset(std::size_t n) {
    heap_.clear();
    key_.resize(n);
    pos_.assign(n, kAbsent);
  }

  // O(live) alternative to Reset: clears only the ids still queued from
  // the previous run (PopMin already clears popped ids) and grows the
  // index arrays as needed. Equivalent to Reset for every sequence of
  // heap operations; the win is early-stopped Dijkstras over large
  // graphs, where the queue only ever saw a small neighborhood.
  void Drain(std::size_t n) {
    for (std::uint32_t id : heap_) pos_[id] = kAbsent;
    heap_.clear();
    if (key_.size() < n) key_.resize(n);
    if (pos_.size() < n) pos_.resize(n, kAbsent);
  }

  // Releases capacity down to `n` ids: any queued ids are dropped and the
  // index arrays are reallocated at exactly n. One oversized run (a
  // full-graph Dijkstra on a million-node snapshot) otherwise pins the
  // high-water arrays for the thread's lifetime; scratch arenas call this
  // after a streak of much smaller (masked, local-id) solves.
  void ShrinkTo(std::size_t n) {
    heap_.clear();
    heap_.shrink_to_fit();
    std::vector<double>(n).swap(key_);
    std::vector<std::uint32_t>(n, kAbsent).swap(pos_);
  }

  std::size_t capacity_ids() const { return pos_.size(); }

  // Bytes currently retained across the three arrays (footprint
  // accounting for the scratch-shrink policy).
  std::size_t MemoryBytes() const {
    return heap_.capacity() * sizeof(std::uint32_t) +
           key_.capacity() * sizeof(double) +
           pos_.capacity() * sizeof(std::uint32_t);
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  bool contains(std::uint32_t id) const { return pos_[id] != kAbsent; }
  double key_of(std::uint32_t id) const { return key_[id]; }

  // Inserts `id` with `key`, or lowers its key if already present with a
  // larger one. Raising a key is a no-op (Dijkstra never needs it).
  void PushOrDecrease(std::uint32_t id, double key) {
    std::uint32_t p = pos_[id];
    if (p == kAbsent) {
      key_[id] = key;
      pos_[id] = static_cast<std::uint32_t>(heap_.size());
      heap_.push_back(id);
      SiftUp(pos_[id]);
    } else if (key < key_[id]) {
      key_[id] = key;
      SiftUp(p);
    }
  }

  // Rebuilds the heap in O(n) from every id whose key is finite —
  // replaces n individual pushes (O(n log n)) when seeding Dijkstra from
  // a dense distance array.
  void Heapify(const double* keys, std::uint32_t n) {
    heap_.clear();
    key_.resize(n);
    pos_.assign(n, kAbsent);
    for (std::uint32_t id = 0; id < n; ++id) {
      if (keys[id] == std::numeric_limits<double>::infinity()) continue;
      key_[id] = keys[id];
      pos_[id] = static_cast<std::uint32_t>(heap_.size());
      heap_.push_back(id);
    }
    if (heap_.size() > 1) {
      for (std::uint32_t i = (static_cast<std::uint32_t>(heap_.size()) - 2) / 4 + 1;
           i-- > 0;) {
        SiftDown(i);
      }
    }
  }

  // Removes and returns the (key, id) pair with the smallest key.
  // Precondition: !empty().
  std::pair<double, std::uint32_t> PopMin() {
    std::uint32_t top = heap_[0];
    double key = key_[top];
    pos_[top] = kAbsent;
    std::uint32_t last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_[0] = last;
      pos_[last] = 0;
      SiftDown(0);
    }
    return {key, top};
  }

 private:
  // (key, id) lexicographic order.
  bool Less(std::uint32_t a, std::uint32_t b) const {
    if (key_[a] != key_[b]) return key_[a] < key_[b];
    return a < b;
  }

  void SiftUp(std::uint32_t i) {
    std::uint32_t id = heap_[i];
    while (i > 0) {
      std::uint32_t parent = (i - 1) >> 2;
      std::uint32_t pid = heap_[parent];
      if (!Less(id, pid)) break;
      heap_[i] = pid;
      pos_[pid] = i;
      i = parent;
    }
    heap_[i] = id;
    pos_[id] = i;
  }

  void SiftDown(std::uint32_t i) {
    std::uint32_t id = heap_[i];
    const std::uint32_t n = static_cast<std::uint32_t>(heap_.size());
    while (true) {
      std::uint32_t first = (i << 2) + 1;
      if (first >= n) break;
      std::uint32_t last = first + 4 < n ? first + 4 : n;
      std::uint32_t best = first;
      std::uint32_t best_id = heap_[first];
      for (std::uint32_t c = first + 1; c < last; ++c) {
        if (Less(heap_[c], best_id)) {
          best_id = heap_[c];
          best = c;
        }
      }
      if (!Less(best_id, id)) break;
      heap_[i] = best_id;
      pos_[best_id] = i;
      i = best;
    }
    heap_[i] = id;
    pos_[id] = i;
  }

  std::vector<std::uint32_t> heap_;  // heap order -> id
  std::vector<double> key_;          // id -> key
  std::vector<std::uint32_t> pos_;   // id -> heap position or kAbsent
};

}  // namespace q::util

#endif  // Q_UTIL_DARY_HEAP_H_
