#ifndef Q_UTIL_RESULT_H_
#define Q_UTIL_RESULT_H_

#include <utility>
#include <variant>

#include "util/status.h"

namespace q::util {

// Result<T> is either a value of type T or a non-OK Status (the Arrow
// arrow::Result / absl::StatusOr idiom). Functions that can fail and
// produce a value return Result<T>.
//
//   Result<Table> MakeTable(...);
//   Q_ASSIGN_OR_RETURN(Table t, MakeTable(...));
template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error Status keeps call
  // sites readable: `return value;` / `return Status::NotFound(...)`.
  Result(T value) : repr_(std::move(value)) {}          // NOLINT
  Result(Status status) : repr_(std::move(status)) {    // NOLINT
    Q_CHECK_MSG(!std::get<Status>(repr_).ok(),
                "Result<T> constructed from OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  // Precondition: ok().
  const T& value() const& {
    Q_CHECK_MSG(ok(), "Result::value() on error: " << status());
    return std::get<T>(repr_);
  }
  T& value() & {
    Q_CHECK_MSG(ok(), "Result::value() on error: " << status());
    return std::get<T>(repr_);
  }
  T&& value() && {
    Q_CHECK_MSG(ok(), "Result::value() on error: " << status());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value, or `fallback` on error.
  T ValueOr(T fallback) const& { return ok() ? value() : fallback; }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace q::util

#define Q_CONCAT_IMPL(a, b) a##b
#define Q_CONCAT(a, b) Q_CONCAT_IMPL(a, b)

// Q_ASSIGN_OR_RETURN(lhs, rexpr): evaluates rexpr (a Result<T>); on error
// returns the Status from the current function, otherwise assigns the
// value to lhs (which may include a declaration).
#define Q_ASSIGN_OR_RETURN(lhs, rexpr)                           \
  Q_ASSIGN_OR_RETURN_IMPL(Q_CONCAT(_q_result_, __LINE__), lhs, rexpr)

#define Q_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                            \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).value()

#endif  // Q_UTIL_RESULT_H_
