#ifndef Q_UTIL_STATS_H_
#define Q_UTIL_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace q::util {

// Streaming summary statistics (Welford's online algorithm for variance).
class SummaryStats {
 public:
  void Add(double x) {
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = count_ == 1 ? x : std::min(min_, x);
    max_ = count_ == 1 ? x : std::max(max_, x);
    sum_ += x;
  }

  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Precision / recall / F1 against a gold set, from raw counts.
struct PrecisionRecall {
  std::size_t true_positives = 0;
  std::size_t predicted = 0;  // true positives + false positives
  std::size_t gold = 0;       // true positives + false negatives

  double precision() const {
    return predicted == 0
               ? 0.0
               : static_cast<double>(true_positives) /
                     static_cast<double>(predicted);
  }
  double recall() const {
    return gold == 0 ? 0.0
                     : static_cast<double>(true_positives) /
                           static_cast<double>(gold);
  }
  double f1() const {
    double p = precision();
    double r = recall();
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
};

}  // namespace q::util

#endif  // Q_UTIL_STATS_H_
