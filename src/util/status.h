#ifndef Q_UTIL_STATUS_H_
#define Q_UTIL_STATUS_H_

#include <memory>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>

namespace q::util {

// Error category for a failed operation. Follows the Arrow/RocksDB idiom:
// operations that can fail return Status (or Result<T>, see result.h)
// instead of throwing exceptions across API boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kUnimplemented = 5,
  kInternal = 6,
};

// Returns a stable human-readable name, e.g. "InvalidArgument".
std::string_view StatusCodeToString(StatusCode code);

// Status holds either success (the common, allocation-free case) or an
// error code plus message. It is cheap to copy on success and cheap to
// move always.
class Status {
 public:
  // Success. Equivalent to Status::OK().
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<const State>(State{code, std::move(message)});
    }
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

  // "OK" or "<Code>: <message>".
  std::string ToString() const;

  // Prepends context to the error message, keeping the code. No-op when ok.
  Status WithContext(std::string_view context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // nullptr means OK; shared so copies are cheap.
  std::shared_ptr<const State> state_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Hook invoked by a failed Q_CHECK before the process aborts. Embedders
// install one to flush telemetry or convert the failure into an exception
// (the test harness does the latter); a handler that returns falls through
// to the default stderr diagnostic + std::abort(), so the Q_CHECK macros
// keep their [[noreturn]] contract either way.
using FatalHandler = void (*)(const char* file, int line, const char* expr,
                              const std::string& extra);

// Installs `handler` as the fatal hook (nullptr restores the default
// behavior). Returns the previously installed handler. Thread-safe.
FatalHandler SetFatalHandler(FatalHandler handler);

namespace internal {
// Runs the installed FatalHandler (if any), then aborts with a diagnostic;
// used by the Q_CHECK family below.
[[noreturn]] void DieBecauseCheckFailed(const char* file, int line,
                                        const char* expr,
                                        const std::string& extra);
}  // namespace internal

}  // namespace q::util

// Propagates a non-OK Status to the caller.
#define Q_RETURN_NOT_OK(expr)                     \
  do {                                            \
    ::q::util::Status _q_status = (expr);         \
    if (!_q_status.ok()) return _q_status;        \
  } while (false)

// Invariant checks: these indicate programming errors, not runtime
// conditions, so they abort (release and debug alike).
#define Q_CHECK(cond)                                                     \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::q::util::internal::DieBecauseCheckFailed(__FILE__, __LINE__,      \
                                                 #cond, "");              \
    }                                                                     \
  } while (false)

#define Q_CHECK_MSG(cond, msg)                                            \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream _q_oss;                                          \
      _q_oss << msg; /* NOLINT */                                         \
      ::q::util::internal::DieBecauseCheckFailed(__FILE__, __LINE__,      \
                                                 #cond, _q_oss.str());    \
    }                                                                     \
  } while (false)

#define Q_CHECK_OK(expr)                                                  \
  do {                                                                    \
    ::q::util::Status _q_status = (expr);                                 \
    if (!_q_status.ok()) {                                                \
      ::q::util::internal::DieBecauseCheckFailed(                         \
          __FILE__, __LINE__, #expr, _q_status.ToString());               \
    }                                                                     \
  } while (false)

#endif  // Q_UTIL_STATUS_H_
