#ifndef Q_UTIL_LOGGING_H_
#define Q_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace q::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Process-wide minimum level; messages below it are dropped. Default kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

// Stream-style single-line logger writing to stderr, used via Q_LOG.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace q::util

#define Q_LOG(level)                                                   \
  ::q::util::internal::LogMessage(::q::util::LogLevel::k##level,       \
                                  __FILE__, __LINE__)

#endif  // Q_UTIL_LOGGING_H_
