#include "util/status.h"

#include <cstdlib>
#include <iostream>

namespace q::util {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message();
  return Status(code(), std::move(msg));
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal {

void DieBecauseCheckFailed(const char* file, int line, const char* expr,
                           const std::string& extra) {
  std::cerr << "Q_CHECK failed at " << file << ":" << line << ": " << expr;
  if (!extra.empty()) std::cerr << " (" << extra << ")";
  std::cerr << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace q::util
