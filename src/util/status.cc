#include "util/status.h"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace q::util {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message();
  return Status(code(), std::move(msg));
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace {
std::atomic<FatalHandler> g_fatal_handler{nullptr};
}  // namespace

FatalHandler SetFatalHandler(FatalHandler handler) {
  return g_fatal_handler.exchange(handler);
}

namespace internal {

void DieBecauseCheckFailed(const char* file, int line, const char* expr,
                           const std::string& extra) {
  // The handler may throw (tests) or longjmp away; if it returns, fall
  // through to the unconditional abort so this function stays [[noreturn]].
  if (FatalHandler handler = g_fatal_handler.load()) {
    handler(file, line, expr, extra);
  }
  std::cerr << "Q_CHECK failed at " << file << ":" << line << ": " << expr;
  if (!extra.empty()) std::cerr << " (" << extra << ")";
  std::cerr << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace q::util
