#include "util/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace q::util {
namespace {

Status ErrnoStatus(const char* op, const std::string& path, int err) {
  std::string msg = std::string(op) + " " + path + ": " + std::strerror(err);
  if (err == ENOENT) return Status::NotFound(std::move(msg));
  return Status::Internal(std::move(msg));
}

// Writes all of `data` to `path` with the given open(2) flags.
Status WriteWithFlags(const std::string& path, std::string_view data,
                      int flags, const char* op) {
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return ErrnoStatus(op, path, errno);
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      return ErrnoStatus(op, path, err);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  if (::close(fd) != 0) return ErrnoStatus(op, path, errno);
  return Status::OK();
}

class PosixEnv : public Env {
 public:
  Result<std::string> ReadFile(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return ErrnoStatus("ReadFile", path, errno);
    std::string out;
    char buf[1 << 16];
    for (;;) {
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        int err = errno;
        ::close(fd);
        return ErrnoStatus("ReadFile", path, err);
      }
      if (n == 0) break;
      out.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return out;
  }

  Status WriteFile(const std::string& path, std::string_view data) override {
    return WriteWithFlags(path, data, O_WRONLY | O_CREAT | O_TRUNC,
                          "WriteFile");
  }

  Status AppendFile(const std::string& path, std::string_view data) override {
    return WriteWithFlags(path, data, O_WRONLY | O_CREAT | O_APPEND,
                          "AppendFile");
  }

  Status SyncFile(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return ErrnoStatus("SyncFile", path, errno);
    if (::fsync(fd) != 0) {
      int err = errno;
      ::close(fd);
      return ErrnoStatus("SyncFile", path, err);
    }
    ::close(fd);
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("RenameFile", from, errno);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return ErrnoStatus("SyncDir", path, errno);
    if (::fsync(fd) != 0) {
      int err = errno;
      ::close(fd);
      return ErrnoStatus("SyncDir", path, err);
    }
    ::close(fd);
    return Status::OK();
  }

  Status CreateDirs(const std::string& path) override {
    // mkdir -p: create each path component, tolerating ones that exist.
    std::string partial;
    partial.reserve(path.size());
    for (std::size_t i = 0; i <= path.size(); ++i) {
      if (i < path.size() && path[i] != '/') {
        partial += path[i];
        continue;
      }
      if (!partial.empty() &&
          ::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
        return ErrnoStatus("CreateDirs", partial, errno);
      }
      if (i < path.size()) partial += '/';
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return ErrnoStatus("RemoveFile", path, errno);
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }
};

}  // namespace

Env* DefaultEnv() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

}  // namespace q::util
