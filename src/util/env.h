#ifndef Q_UTIL_ENV_H_
#define Q_UTIL_ENV_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/random.h"
#include "util/result.h"
#include "util/status.h"

namespace q::util {

// Minimal file-system abstraction behind the persistence layer. Every
// durable I/O the snapshot code performs goes through one of these
// virtual calls, so tests can substitute a fault-injecting implementation
// (FaultyEnv below) and prove the crash-recovery contract without ever
// touching kill(2) or a real power cut.
//
// Durability protocol the snapshot writer relies on (POSIX semantics):
// data reaches disk only after SyncFile; a RenameFile over an existing
// path atomically replaces it; the rename itself is durable only after
// SyncDir on the containing directory.
class Env {
 public:
  virtual ~Env() = default;

  // Whole-file read. NotFound when the path does not exist.
  virtual Result<std::string> ReadFile(const std::string& path) = 0;

  // Creates/truncates `path` and writes `data`. No durability implied.
  virtual Status WriteFile(const std::string& path, std::string_view data) = 0;

  // Appends `data` to `path`, creating it if absent. No durability implied.
  virtual Status AppendFile(const std::string& path,
                            std::string_view data) = 0;

  // fsync: blocks until the file's current contents are on stable storage.
  virtual Status SyncFile(const std::string& path) = 0;

  // Atomic rename; replaces `to` if it exists.
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;

  // fsync on a directory: makes completed renames/creates in it durable.
  virtual Status SyncDir(const std::string& path) = 0;

  // mkdir -p. OK if the directory already exists.
  virtual Status CreateDirs(const std::string& path) = 0;

  // Removes a file; OK if it does not exist.
  virtual Status RemoveFile(const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;
};

// The real POSIX filesystem. Singleton; never deleted.
Env* DefaultEnv();

// Wraps another Env and fails operations on command: the kill-point
// harness of docs/persistence.md. Operations are counted in issue order;
// once the count reaches the configured kill point, that operation and
// every later one fail with Internal("injected fault...") — modelling a
// process that died mid-save and never came back (a crashed process
// cannot issue op N+1 after op N failed). A WriteFile/AppendFile hit at
// the kill point first pushes a random-length prefix of its payload
// through to the base Env: the torn write a real crash leaves behind.
//
// Reads and existence checks are passed through unfaulted so a test can
// inspect the wreckage after the "crash".
class FaultyEnv : public Env {
 public:
  // `seed` drives torn-write prefix lengths; deterministic per seed.
  FaultyEnv(Env* base, std::uint64_t seed) : base_(base), rng_(seed) {}

  // Fail the `kill_after`-th (0-based) and all subsequent mutating ops.
  void set_kill_after(std::uint64_t kill_after) { kill_after_ = kill_after; }

  // Mutating operations issued (attempted) so far. Run a save with no
  // kill point to learn how many ops it takes, then sweep 0..N-1.
  std::uint64_t ops_issued() const { return ops_issued_; }

  // Re-arms the injector for another run without resetting the RNG.
  void Reset() {
    ops_issued_ = 0;
    kill_after_ = kNever;
  }

  Result<std::string> ReadFile(const std::string& path) override {
    return base_->ReadFile(path);
  }
  Status WriteFile(const std::string& path, std::string_view data) override {
    if (NextOpFails()) {
      TearWrite(path, data, /*append=*/false);
      return Injected("WriteFile", path);
    }
    return base_->WriteFile(path, data);
  }
  Status AppendFile(const std::string& path, std::string_view data) override {
    if (NextOpFails()) {
      TearWrite(path, data, /*append=*/true);
      return Injected("AppendFile", path);
    }
    return base_->AppendFile(path, data);
  }
  Status SyncFile(const std::string& path) override {
    if (NextOpFails()) return Injected("SyncFile", path);
    return base_->SyncFile(path);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    if (NextOpFails()) return Injected("RenameFile", to);
    return base_->RenameFile(from, to);
  }
  Status SyncDir(const std::string& path) override {
    if (NextOpFails()) return Injected("SyncDir", path);
    return base_->SyncDir(path);
  }
  Status CreateDirs(const std::string& path) override {
    if (NextOpFails()) return Injected("CreateDirs", path);
    return base_->CreateDirs(path);
  }
  Status RemoveFile(const std::string& path) override {
    if (NextOpFails()) return Injected("RemoveFile", path);
    return base_->RemoveFile(path);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }

 private:
  static constexpr std::uint64_t kNever = ~std::uint64_t{0};

  bool NextOpFails() { return ops_issued_++ >= kill_after_; }

  // Only the op *at* the kill point tears; once "crashed", later ops do
  // nothing at all.
  void TearWrite(const std::string& path, std::string_view data,
                 bool append) {
    if (ops_issued_ - 1 != kill_after_ || data.empty()) return;
    std::string_view prefix = data.substr(0, rng_.Uniform(data.size() + 1));
    if (append) {
      (void)base_->AppendFile(path, prefix);
    } else {
      (void)base_->WriteFile(path, prefix);
    }
  }

  static Status Injected(const char* op, const std::string& path) {
    return Status::Internal(std::string("injected fault: ") + op + " " + path);
  }

  Env* base_;
  Rng rng_;
  std::uint64_t ops_issued_ = 0;
  std::uint64_t kill_after_ = kNever;
};

}  // namespace q::util

#endif  // Q_UTIL_ENV_H_
