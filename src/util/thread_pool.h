#ifndef Q_UTIL_THREAD_POOL_H_
#define Q_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace q::util {

// Bounded worker pool for CPU-parallel fan-out of independent tasks.
//
// Two entry points:
//
//   * RunAll — the synchronous batch primitive: executes a batch of tasks
//     across the workers *and* the calling thread, returning once every
//     task has finished. Because the caller participates, RunAll makes
//     progress even on a pool with zero or busy workers, and nested
//     RunAll calls cannot deadlock (the nested caller just runs its own
//     batch). Task results must be written into caller-owned slots;
//     merging them in index order afterwards keeps parallel pipelines
//     deterministic.
//
//   * Submit — fire-and-forget: enqueues one task for a worker thread and
//     returns immediately (the async refresh scheduler's repair tasks).
//     Submitted tasks still pending at destruction are run to completion
//     by the draining workers, never dropped; callers needing completion
//     signals layer their own (see util::KeyedTaskQueue).
class ThreadPool {
 public:
  // `num_threads` <= 0 picks the hardware concurrency.
  explicit ThreadPool(int num_threads = 0) {
    if (num_threads <= 0) {
      unsigned hw = std::thread::hardware_concurrency();
      num_threads = hw == 0 ? 1 : static_cast<int>(hw);
    }
    workers_.reserve(static_cast<std::size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  // Enqueues one task for execution on a worker thread and returns
  // immediately. Tasks run in submission order relative to other Submit
  // calls only as far as worker availability allows — callers needing
  // per-key ordering should go through util::KeyedTaskQueue.
  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push(std::move(task));
    }
    cv_.notify_one();
  }

  // Runs `tasks` to completion using the pool plus the calling thread.
  void RunAll(const std::vector<std::function<void()>>& tasks) {
    if (tasks.empty()) return;
    auto batch = std::make_shared<Batch>(tasks);
    {
      std::lock_guard<std::mutex> lock(mu_);
      // One queue entry per worker that could usefully help; each entry
      // drains the shared batch counter until the batch is exhausted.
      std::size_t helpers =
          tasks.size() < workers_.size() ? tasks.size() : workers_.size();
      for (std::size_t i = 0; i < helpers; ++i) {
        queue_.push([batch] { batch->Drain(); });
      }
    }
    cv_.notify_all();
    batch->Drain();      // the caller works too
    batch->WaitDone();   // wait for tasks claimed by workers
  }

 private:
  struct Batch {
    explicit Batch(const std::vector<std::function<void()>>& t)
        : tasks(t.data()), size(t.size()), remaining(t.size()) {}

    void Drain() {
      while (true) {
        std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        // A claimed i < size implies task i has not run yet, so the caller
        // is still inside RunAll and the task array is alive; once every
        // task finished, stragglers only read `size` and leave.
        if (i >= size) return;
        tasks[i]();
        if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> lock(done_mu);
          done_cv.notify_all();
        }
      }
    }

    void WaitDone() {
      std::unique_lock<std::mutex> lock(done_mu);
      done_cv.wait(lock, [this] {
        return remaining.load(std::memory_order_acquire) == 0;
      });
    }

    const std::function<void()>* tasks;
    std::size_t size;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> remaining;
    std::mutex done_mu;
    std::condition_variable done_cv;
  };

  void WorkerLoop() {
    while (true) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (stop_ && queue_.empty()) return;
        job = std::move(queue_.front());
        queue_.pop();
      }
      job();
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stop_ = false;
};

}  // namespace q::util

#endif  // Q_UTIL_THREAD_POOL_H_
