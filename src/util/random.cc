#include "util/random.h"

#include <cmath>

namespace q::util {
namespace {

// SplitMix64, used to expand the seed into xoshiro state.
std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::Uniform(std::uint64_t bound) {
  Q_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    std::uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  Q_CHECK(lo <= hi);
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(NextUint64());
  return lo + static_cast<std::int64_t>(Uniform(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

std::size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  Q_CHECK(!weights.empty());
  double total = 0;
  for (double w : weights) {
    Q_CHECK(w >= 0);
    total += w;
  }
  Q_CHECK(total > 0);
  double target = UniformDouble() * total;
  double cumulative = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (target < cumulative) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace q::util
