#ifndef Q_UTIL_SHARED_MUTEX_H_
#define Q_UTIL_SHARED_MUTEX_H_

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace q::util {

// Writer-preferring reader/writer lock, a drop-in for std::shared_mutex
// with std::shared_lock / std::unique_lock.
//
// Exists because std::shared_mutex makes no fairness guarantee and the
// common implementation (glibc's pthread_rwlock) prefers readers: a
// writer racing a pool of tight-loop readers — exactly the serving-gate
// workload, where query workers reacquire the shared lock back to back —
// can starve indefinitely. Here a waiting writer blocks *new* shared
// acquisitions, so it gets the lock as soon as in-flight readers drain;
// readers resume the moment no writer is active or queued. Writers are
// rare (structural mutations), so reader-side starvation is not a
// practical concern.
//
// Not recursive, in either mode. Do not upgrade (lock() while holding
// lock_shared()) — it deadlocks, like std::shared_mutex.
class SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() {
    std::unique_lock<std::mutex> lock(mu_);
    ++writers_waiting_;
    writer_cv_.wait(lock, [&] { return !writer_active_ && readers_ == 0; });
    --writers_waiting_;
    writer_active_ = true;
  }

  bool try_lock() {
    std::lock_guard<std::mutex> lock(mu_);
    if (writer_active_ || readers_ != 0) return false;
    writer_active_ = true;
    return true;
  }

  void unlock() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      writer_active_ = false;
    }
    // Wake everyone: a queued writer wins the race for the state check,
    // otherwise all blocked readers resume together.
    writer_cv_.notify_all();
    reader_cv_.notify_all();
  }

  void lock_shared() {
    std::unique_lock<std::mutex> lock(mu_);
    reader_cv_.wait(lock,
                    [&] { return !writer_active_ && writers_waiting_ == 0; });
    ++readers_;
  }

  bool try_lock_shared() {
    std::lock_guard<std::mutex> lock(mu_);
    if (writer_active_ || writers_waiting_ != 0) return false;
    ++readers_;
    return true;
  }

  void unlock_shared() {
    std::size_t remaining;
    {
      std::lock_guard<std::mutex> lock(mu_);
      remaining = --readers_;
    }
    if (remaining == 0) writer_cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable writer_cv_;
  std::condition_variable reader_cv_;
  std::size_t readers_ = 0;
  std::size_t writers_waiting_ = 0;
  bool writer_active_ = false;
};

}  // namespace q::util

#endif  // Q_UTIL_SHARED_MUTEX_H_
