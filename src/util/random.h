#ifndef Q_UTIL_RANDOM_H_
#define Q_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace q::util {

// Deterministic, seedable PRNG (xoshiro256**). All experiment and dataset
// randomness flows through this class so runs are reproducible bit-for-bit
// across platforms (std::mt19937 distributions are not portable).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Uniform in [0, 2^64).
  std::uint64_t NextUint64();

  // Uniform in [0, bound). Precondition: bound > 0.
  std::uint64_t Uniform(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Bernoulli draw.
  bool Bernoulli(double p);

  // Samples an index proportionally to the given non-negative weights.
  // Precondition: weights non-empty with positive sum.
  std::size_t WeightedIndex(const std::vector<double>& weights);

  // Uniformly picks an element. Precondition: non-empty.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    Q_CHECK(!items.empty());
    return items[Uniform(items.size())];
  }

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = Uniform(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  // Forks an independent stream; deterministic in (parent seed, call order).
  Rng Fork();

 private:
  std::uint64_t state_[4];
};

}  // namespace q::util

#endif  // Q_UTIL_RANDOM_H_
