#ifndef Q_UTIL_TASK_QUEUE_H_
#define Q_UTIL_TASK_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "util/thread_pool.h"

namespace q::util {

// Keyed task queue over a ThreadPool with two guarantees the async view
// refresh needs (keys are view slots there):
//
//   * per-key ordering — at most one task per key executes at a time, and
//     tasks for the same key never overlap or reorder;
//   * coalescing of superseded tasks — a task submitted while the key
//     already has a *pending* (not yet started) task replaces it. This is
//     sound exactly when tasks are idempotent reconcile-to-latest steps:
//     the newer submission subsumes everything the replaced one would
//     have done. A task submitted while one is *running* is parked as the
//     key's pending task and runs after it (the running task may have
//     started from pre-submission state, so it cannot be elided).
//
// Tasks for distinct keys run concurrently, bounded by the pool. The
// queue never drops work other than by coalescing, and Drain() gives a
// quiescence barrier (no task running or pending for any key).
//
// Thread-safe. The pool must outlive the queue; the destructor drains.
class KeyedTaskQueue {
 public:
  explicit KeyedTaskQueue(ThreadPool* pool) : pool_(pool) {}

  ~KeyedTaskQueue() { Drain(); }

  KeyedTaskQueue(const KeyedTaskQueue&) = delete;
  KeyedTaskQueue& operator=(const KeyedTaskQueue&) = delete;

  // Enqueues `task` under `key`, coalescing per the class contract.
  void Submit(std::size_t key, std::function<void()> task) {
    std::lock_guard<std::mutex> lock(mu_);
    State& state = states_[key];
    if (state.running || state.pending) {
      if (state.pending) ++coalesced_;
      state.pending = true;
      state.pending_task = std::move(task);
      return;
    }
    state.running = true;
    ++active_;
    pool_->Submit([this, key, t = std::move(task)]() mutable {
      RunOne(key, std::move(t));
    });
  }

  // True while `key` has a task running or pending. Callers that need
  // exclusive access to key-owned state (the scheduler's relevance
  // classification reads a view's engine slot) may only touch it when
  // this returns false and no Submit for the key can race them.
  bool Busy(std::size_t key) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = states_.find(key);
    return it != states_.end() && (it->second.running || it->second.pending);
  }

  // Blocks until no task is running or pending for any key. Quiescence is
  // only meaningful if the caller prevents concurrent Submit calls.
  void Drain() {
    std::unique_lock<std::mutex> lock(mu_);
    drained_cv_.wait(lock, [this] { return active_ == 0; });
  }

  // Tasks elided because a newer submission replaced them while pending.
  std::size_t coalesced() const {
    std::lock_guard<std::mutex> lock(mu_);
    return coalesced_;
  }

 private:
  struct State {
    bool running = false;
    bool pending = false;
    std::function<void()> pending_task;
  };

  void RunOne(std::size_t key, std::function<void()> task) {
    for (;;) {
      task();
      std::lock_guard<std::mutex> lock(mu_);
      State& state = states_[key];
      if (state.pending) {
        // The running slot is handed to the parked task without going
        // back through the pool: per-key FIFO and no lost wakeups.
        state.pending = false;
        task = std::move(state.pending_task);
        state.pending_task = nullptr;
        continue;
      }
      state.running = false;
      if (--active_ == 0) drained_cv_.notify_all();
      return;
    }
  }

  ThreadPool* pool_;
  mutable std::mutex mu_;
  std::condition_variable drained_cv_;
  std::unordered_map<std::size_t, State> states_;
  std::size_t active_ = 0;  // keys with a running task
  std::size_t coalesced_ = 0;
};

}  // namespace q::util

#endif  // Q_UTIL_TASK_QUEUE_H_
