#ifndef Q_STEINER_KMB_SOLVER_H_
#define Q_STEINER_KMB_SOLVER_H_

#include <optional>

#include "steiner/problem.h"
#include "steiner/steiner_tree.h"

namespace q::steiner {

// Kou–Markowsky–Berman 2-approximation, used instead of the exact DP for
// large query graphs (the paper's "approximation algorithm at larger
// scales"): metric closure over the terminals, MST of the closure,
// expansion of the closure paths, MST of the induced subgraph, then
// iterative pruning of non-terminal leaves. Returns std::nullopt when the
// terminals are disconnected.
std::optional<SteinerTree> SolveKmbSteiner(const SteinerProblem& problem);

}  // namespace q::steiner

#endif  // Q_STEINER_KMB_SOLVER_H_
