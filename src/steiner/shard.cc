#include "steiner/shard.h"

#include <algorithm>
#include <limits>

#include "util/dary_heap.h"

namespace q::steiner {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::uint32_t kUnassigned = std::numeric_limits<std::uint32_t>::max();

}  // namespace

ShardPartition ShardPartition::Build(const CsrGraph& csr,
                                     std::uint32_t target_nodes) {
  if (target_nodes == 0) target_nodes = 1;
  ShardPartition p;
  p.shard_of.assign(csr.num_nodes, kUnassigned);
  std::vector<std::uint32_t> queue;
  for (std::uint32_t seed = 0; seed < csr.num_nodes; ++seed) {
    if (p.shard_of[seed] != kUnassigned) continue;
    const std::uint32_t shard = p.num_shards++;
    std::uint32_t size = 1;
    queue.clear();
    queue.push_back(seed);
    p.shard_of[seed] = shard;
    for (std::size_t head = 0; head < queue.size() && size < target_nodes;
         ++head) {
      const std::uint32_t v = queue[head];
      const std::uint32_t end = csr.offsets[v + 1];
      for (std::uint32_t a = csr.offsets[v]; a < end; ++a) {
        const std::uint32_t to = csr.arc_head[a];
        if (p.shard_of[to] != kUnassigned) continue;
        p.shard_of[to] = shard;
        queue.push_back(to);
        if (++size >= target_nodes) break;
      }
    }
  }
  return p;
}

TerminalLocalizer::TerminalLocalizer(
    std::shared_ptr<const CsrGraph> csr,
    std::shared_ptr<const ShardPartition> shards,
    std::vector<graph::NodeId> terminals)
    : csr_(std::move(csr)),
      shards_(std::move(shards)),
      terminals_(std::move(terminals)) {
  const CsrGraph& g = *csr_;
  bool all_reachable = !terminals_.empty();
  double star = 0.0;
  if (!terminals_.empty()) {
    // Star heuristic: real-cost single-source Dijkstra from t0, stopped
    // once every distinct terminal is settled.
    std::vector<double> dist(g.num_nodes, kInf);
    std::vector<std::uint8_t> is_target(g.num_nodes, 0);
    std::size_t remaining = 0;
    for (graph::NodeId t : terminals_) {
      if (!is_target[t]) {
        is_target[t] = 1;
        ++remaining;
      }
    }
    util::DaryHeap heap;
    heap.Reset(g.num_nodes);
    dist[terminals_[0]] = 0.0;
    heap.PushOrDecrease(terminals_[0], 0.0);
    while (!heap.empty() && remaining > 0) {
      auto [d, v] = heap.PopMin();
      if (is_target[v]) {
        is_target[v] = 0;
        --remaining;
      }
      const std::uint32_t end = g.offsets[v + 1];
      for (std::uint32_t a = g.offsets[v]; a < end; ++a) {
        const std::uint32_t to = g.arc_head[a];
        const double next = d + g.arc_cost[a];
        if (next < dist[to]) {
          dist[to] = next;
          heap.PushOrDecrease(to, next);
        }
      }
    }
    all_reachable = remaining == 0;
    if (all_reachable) {
      for (graph::NodeId t : terminals_) star += dist[t];
    }
  }
  if (!all_reachable) {
    // Some terminal is unreachable (or there are none): no finite radius
    // helps, so publish a covers-all mask and let the unmasked solver
    // rule on feasibility.
    auto mask = std::make_shared<ShardMask>();
    mask->covers_all = true;
    mask_ = std::move(mask);
    return;
  }
  r_proof_ = star > 0.0 ? 2.0 * star : 1.0;
  mask_ = Rebuild();
}

TerminalLocalizer::Snapshot TerminalLocalizer::Acquire() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Snapshot{mask_, r_proof_, epoch_};
}

void TerminalLocalizer::Escalate(std::uint64_t observed_epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (observed_epoch != epoch_) return;  // a concurrent caller already grew
  r_proof_ *= 2.0;
  mask_ = Rebuild();
  ++epoch_;
}

std::shared_ptr<const ShardMask> TerminalLocalizer::Rebuild() const {
  const CsrGraph& g = *csr_;
  const ShardPartition& parts = *shards_;
  auto mask = std::make_shared<ShardMask>();

  // Multi-source real-cost Dijkstra from the terminals, bounded by
  // r_proof_. `clipped` records whether the radius excluded anything; if
  // not, the ball already holds every reachable node and no escalation
  // can ever grow it.
  std::vector<double> dist(g.num_nodes, kInf);
  util::DaryHeap heap;
  heap.Reset(g.num_nodes);
  for (graph::NodeId t : terminals_) {
    if (dist[t] > 0.0) {
      dist[t] = 0.0;
      heap.PushOrDecrease(t, 0.0);
    }
  }
  std::vector<std::uint8_t> shard_touched(parts.num_shards, 0);
  bool clipped = false;
  while (!heap.empty()) {
    auto [d, v] = heap.PopMin();
    shard_touched[parts.shard_of[v]] = 1;
    const std::uint32_t end = g.offsets[v + 1];
    for (std::uint32_t a = g.offsets[v]; a < end; ++a) {
      const std::uint32_t to = g.arc_head[a];
      const double next = d + g.arc_cost[a];
      if (next > r_proof_) {
        if (next < dist[to]) clipped = true;
        continue;
      }
      if (next < dist[to]) {
        dist[to] = next;
        heap.PushOrDecrease(to, next);
      }
    }
  }

  mask->in_mask.assign(g.num_nodes, 0);
  mask->nodes.clear();
  for (std::uint32_t v = 0; v < g.num_nodes; ++v) {
    if (shard_touched[parts.shard_of[v]]) {
      mask->in_mask[v] = 1;
      mask->nodes.push_back(v);
    }
  }
  mask->covers_all = !clipped || mask->nodes.size() == g.num_nodes;
  return mask;
}

}  // namespace q::steiner
