#include "steiner/shard.h"

#include <algorithm>
#include <atomic>
#include <limits>

#include "util/dary_heap.h"

namespace q::steiner {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::uint32_t kUnassigned = std::numeric_limits<std::uint32_t>::max();

// Monotone across every localizer in the process, so a mask-uid-keyed
// cache entry can never be matched by a different (or regrown) mask.
std::atomic<std::uint64_t> next_mask_uid{0};

// Per-thread scratch for the localizer's bootstrap and ball Dijkstras.
// Distances are stamp-validated (stamp[v] != cur reads as +inf), so a
// run touches only its own neighborhood instead of re-initializing
// num_nodes-sized arrays — the per-query localizer cost is O(ball), not
// O(catalog), which is what keeps query latency from growing linearly
// with sources. The arrays grow to the largest snapshot the thread has
// localized and are reused across queries.
struct LocalizerScratch {
  util::DaryHeap heap;
  std::vector<double> dist;
  std::vector<std::uint32_t> stamp;
  std::uint32_t cur = 0;
  std::vector<std::uint8_t> is_target;  // sparsely set, cleared per run

  // Starts a run: bumps the stamp (wholesale re-zero on the ~4-billion-run
  // wrap) and drains heap leftovers from an early-stopped prior run.
  void Begin(std::size_t n) {
    if (dist.size() < n) {
      dist.resize(n, kInf);
      stamp.resize(n, 0);
    }
    if (is_target.size() < n) is_target.resize(n, 0);
    if (++cur == 0) {
      std::fill(stamp.begin(), stamp.end(), 0);
      cur = 1;
    }
    heap.Drain(n);
  }

  double Dist(std::uint32_t v) const {
    return stamp[v] == cur ? dist[v] : kInf;
  }
  void SetDist(std::uint32_t v, double d) {
    dist[v] = d;
    stamp[v] = cur;
  }

  std::size_t MemoryBytes() const {
    return heap.MemoryBytes() + dist.capacity() * sizeof(double) +
           stamp.capacity() * sizeof(std::uint32_t) +
           is_target.capacity() * sizeof(std::uint8_t);
  }
};

LocalizerScratch& GetLocalizerScratch() {
  thread_local LocalizerScratch scratch;
  return scratch;
}

}  // namespace

std::size_t LocalizerScratchBytes() {
  return GetLocalizerScratch().MemoryBytes();
}

void ShardMask::BuildCompact(const CsrGraph& csr) {
  const std::uint32_t num_local = static_cast<std::uint32_t>(nodes.size());
  local_of.assign(csr.num_nodes, kExternal);
  for (std::uint32_t l = 0; l < num_local; ++l) local_of[nodes[l]] = l;
  local_offsets.assign(num_local + 1, 0);
  local_arc_head.clear();
  local_arc_edge.clear();
  local_arc_cost.clear();
  for (std::uint32_t l = 0; l < num_local; ++l) {
    const std::uint32_t v = nodes[l];
    const std::uint32_t end = csr.offsets[v + 1];
    for (std::uint32_t a = csr.offsets[v]; a < end; ++a) {
      // Per-node arc order preserved from the global CSR; out-of-mask
      // heads stay visible as kExternal so the masked Dijkstra records
      // the exact same clipped-offer set as the uncompacted scan.
      local_arc_head.push_back(local_of[csr.arc_head[a]]);
      local_arc_edge.push_back(csr.arc_edge[a]);
      local_arc_cost.push_back(csr.arc_cost[a]);
    }
    local_offsets[l + 1] = static_cast<std::uint32_t>(local_arc_head.size());
  }
  mask_uid = next_mask_uid.fetch_add(1, std::memory_order_relaxed) + 1;
}

ShardPartition ShardPartition::Build(const CsrGraph& csr,
                                     std::uint32_t target_nodes) {
  if (target_nodes == 0) target_nodes = 1;
  ShardPartition p;
  p.shard_of.assign(csr.num_nodes, kUnassigned);
  p.shard_offsets.clear();
  p.shard_nodes.clear();
  std::vector<std::uint32_t> queue;
  for (std::uint32_t seed = 0; seed < csr.num_nodes; ++seed) {
    if (p.shard_of[seed] != kUnassigned) continue;
    const std::uint32_t shard = p.num_shards++;
    std::uint32_t size = 1;
    queue.clear();
    queue.push_back(seed);
    p.shard_of[seed] = shard;
    for (std::size_t head = 0; head < queue.size() && size < target_nodes;
         ++head) {
      const std::uint32_t v = queue[head];
      const std::uint32_t end = csr.offsets[v + 1];
      for (std::uint32_t a = csr.offsets[v]; a < end; ++a) {
        const std::uint32_t to = csr.arc_head[a];
        if (p.shard_of[to] != kUnassigned) continue;
        p.shard_of[to] = shard;
        queue.push_back(to);
        if (++size >= target_nodes) break;
      }
    }
  }
  // Shard -> node-id CSR (each shard's list ascending): lets a mask build
  // enumerate exactly the nodes of its touched shards instead of scanning
  // the whole catalog per query.
  p.shard_offsets.assign(p.num_shards + 1, 0);
  for (std::uint32_t v = 0; v < csr.num_nodes; ++v) {
    ++p.shard_offsets[p.shard_of[v] + 1];
  }
  for (std::uint32_t i = 1; i <= p.num_shards; ++i) {
    p.shard_offsets[i] += p.shard_offsets[i - 1];
  }
  p.shard_nodes.resize(csr.num_nodes);
  std::vector<std::uint32_t> cursor(p.shard_offsets.begin(),
                                    p.shard_offsets.end() - 1);
  for (std::uint32_t v = 0; v < csr.num_nodes; ++v) {
    p.shard_nodes[cursor[p.shard_of[v]]++] = v;
  }
  return p;
}

TerminalLocalizer::TerminalLocalizer(
    std::shared_ptr<const CsrGraph> csr,
    std::shared_ptr<const ShardPartition> shards,
    std::vector<graph::NodeId> terminals)
    : csr_(std::move(csr)),
      shards_(std::move(shards)),
      terminals_(std::move(terminals)) {
  const CsrGraph& g = *csr_;
  bool all_reachable = !terminals_.empty();
  double star = 0.0;
  if (!terminals_.empty()) {
    // Star heuristic: real-cost single-source Dijkstra from t0, stopped
    // once every distinct terminal is settled. Runs on the thread's
    // stamped scratch, so the cost is the settled neighborhood — one
    // full-array initialization per query would itself grow linearly
    // with the catalog and dominate small-ball queries.
    LocalizerScratch& s = GetLocalizerScratch();
    s.Begin(g.num_nodes);
    std::size_t remaining = 0;
    for (graph::NodeId t : terminals_) {
      if (!s.is_target[t]) {
        s.is_target[t] = 1;
        ++remaining;
      }
    }
    s.SetDist(terminals_[0], 0.0);
    s.heap.PushOrDecrease(terminals_[0], 0.0);
    while (!s.heap.empty() && remaining > 0) {
      auto [d, v] = s.heap.PopMin();
      if (s.is_target[v]) {
        s.is_target[v] = 0;
        --remaining;
      }
      const std::uint32_t end = g.offsets[v + 1];
      for (std::uint32_t a = g.offsets[v]; a < end; ++a) {
        const std::uint32_t to = g.arc_head[a];
        const double next = d + g.arc_cost[a];
        if (next < s.Dist(to)) {
          s.SetDist(to, next);
          s.heap.PushOrDecrease(to, next);
        }
      }
    }
    all_reachable = remaining == 0;
    if (all_reachable) {
      for (graph::NodeId t : terminals_) star += s.Dist(t);
    }
    // Restore the all-zero target-mark invariant (early stop may leave
    // unsettled terminals marked).
    for (graph::NodeId t : terminals_) s.is_target[t] = 0;
  }
  if (!all_reachable) {
    // Some terminal is unreachable (or there are none): no finite radius
    // helps, so publish a covers-all mask and let the unmasked solver
    // rule on feasibility.
    auto mask = std::make_shared<ShardMask>();
    mask->covers_all = true;
    mask_ = std::move(mask);
    return;
  }
  r_proof_ = star > 0.0 ? 2.0 * star : 1.0;
  mask_ = Rebuild();
}

TerminalLocalizer::Snapshot TerminalLocalizer::Acquire() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Snapshot{mask_, r_proof_, epoch_};
}

void TerminalLocalizer::Escalate(std::uint64_t observed_epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (observed_epoch != epoch_) return;  // a concurrent caller already grew
  r_proof_ *= 2.0;
  mask_ = Rebuild();
  ++epoch_;
}

std::shared_ptr<const ShardMask> TerminalLocalizer::Rebuild() const {
  const CsrGraph& g = *csr_;
  const ShardPartition& parts = *shards_;
  auto mask = std::make_shared<ShardMask>();

  // Multi-source real-cost Dijkstra from the terminals, bounded by
  // r_proof_ and run on the thread's stamped scratch (O(ball), not
  // O(catalog) — see LocalizerScratch). `clipped` records whether the
  // radius excluded anything; if not, the ball already holds every
  // reachable node and no escalation can ever grow it.
  LocalizerScratch& s = GetLocalizerScratch();
  s.Begin(g.num_nodes);
  for (graph::NodeId t : terminals_) {
    if (s.Dist(t) > 0.0) {
      s.SetDist(t, 0.0);
      s.heap.PushOrDecrease(t, 0.0);
    }
  }
  std::vector<std::uint32_t> touched_shards;
  bool clipped = false;
  while (!s.heap.empty()) {
    auto [d, v] = s.heap.PopMin();
    touched_shards.push_back(parts.shard_of[v]);
    const std::uint32_t end = g.offsets[v + 1];
    for (std::uint32_t a = g.offsets[v]; a < end; ++a) {
      const std::uint32_t to = g.arc_head[a];
      const double next = d + g.arc_cost[a];
      if (next > r_proof_) {
        if (next < s.Dist(to)) clipped = true;
        continue;
      }
      if (next < s.Dist(to)) {
        s.SetDist(to, next);
        s.heap.PushOrDecrease(to, next);
      }
    }
  }

  // Expand touched shards to their node lists through the partition's
  // shard->nodes index, then sort: BFS-grown shards interleave in node-id
  // space, and ascending mask->nodes is the canonical order the compact
  // view's tie-order isomorphism rests on. O(mask log mask) — no
  // whole-catalog scan.
  std::sort(touched_shards.begin(), touched_shards.end());
  touched_shards.erase(
      std::unique(touched_shards.begin(), touched_shards.end()),
      touched_shards.end());
  mask->nodes.clear();
  for (std::uint32_t shard : touched_shards) {
    const std::uint32_t end = parts.shard_offsets[shard + 1];
    mask->nodes.insert(mask->nodes.end(),
                       parts.shard_nodes.begin() + parts.shard_offsets[shard],
                       parts.shard_nodes.begin() + end);
  }
  std::sort(mask->nodes.begin(), mask->nodes.end());
  mask->in_mask.assign(g.num_nodes, 0);
  for (std::uint32_t v : mask->nodes) mask->in_mask[v] = 1;
  mask->covers_all = !clipped || mask->nodes.size() == g.num_nodes;
  // Materialize the compact local-id view once per epoch; covers_all
  // masks skip it (callers solve unmasked).
  if (!mask->covers_all) mask->BuildCompact(g);
  return mask;
}

}  // namespace q::steiner
