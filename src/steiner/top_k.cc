#include "steiner/top_k.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <set>
#include <unordered_set>
#include <utility>

#include "steiner/exact_solver.h"
#include "steiner/fast_solver.h"
#include "steiner/kmb_solver.h"
#include "steiner/problem.h"
#include "util/thread_pool.h"

namespace q::steiner {
namespace {

struct Subproblem {
  SteinerTree tree;  // optimum within this subspace
  std::vector<graph::EdgeId> forced;
  std::vector<graph::EdgeId> banned;
};

struct SubproblemGreater {
  bool operator()(const Subproblem& a, const Subproblem& b) const {
    // Min-heap by tree cost with deterministic tie-break.
    return TreeLess(b.tree, a.tree);
  }
};

using SolveFn = std::function<std::optional<SteinerTree>(
    const std::vector<graph::EdgeId>& forced,
    const std::vector<graph::EdgeId>& banned)>;

// The node/edge neighborhood of the returned trees: every tree edge,
// plus every edge incident to a node some tree (or terminal) touches.
// Edges outside this set cannot appear in any returned tree, so the only
// way a change to them can alter the output is by pulling a non-returned
// tree under the k-th returned cost — exactly what the certificate's gap
// bounds.
std::vector<graph::EdgeId> CertificateNeighborhood(
    const graph::SearchGraph& graph,
    const std::vector<graph::NodeId>& terminals,
    const std::vector<SteinerTree>& output) {
  std::vector<graph::NodeId> nodes(terminals.begin(), terminals.end());
  for (const SteinerTree& tree : output) {
    for (graph::EdgeId e : tree.edges) {
      nodes.push_back(graph.edge(e).u);
      nodes.push_back(graph.edge(e).v);
    }
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  std::vector<graph::EdgeId> edges;
  for (graph::NodeId n : nodes) {
    const std::vector<graph::EdgeId>& incident = graph.edges_of(n);
    edges.insert(edges.end(), incident.begin(), incident.end());
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

}  // namespace

std::vector<SteinerTree> TopKSteinerTrees(
    const graph::SearchGraph& graph, const graph::WeightVector& weights,
    const std::vector<graph::NodeId>& terminals, const TopKConfig& config) {
  return TopKSteinerTrees(graph, weights, terminals, config,
                          /*shared_engine=*/nullptr);
}

std::vector<SteinerTree> TopKSteinerTrees(
    const graph::SearchGraph& graph, const graph::WeightVector& weights,
    const std::vector<graph::NodeId>& terminals, const TopKConfig& config,
    FastSteinerEngine* shared_engine, RelevanceCertificate* certificate,
    const SnapshotPin* pin) {
  if (certificate != nullptr) *certificate = RelevanceCertificate{};
  std::vector<SteinerTree> output;
  if (terminals.empty() || config.k <= 0) return output;

  const bool use_kmb =
      config.approximate || graph.num_nodes() > config.approximate_above_nodes;

  // The solver substrate. The fast engine solves every subproblem as an
  // O(|edit|) overlay on a CSR snapshot — the caller's shared one when
  // provided (batched refresh), otherwise one built for this call. The
  // legacy path rebuilds a contracted SteinerProblem per call.
  std::unique_ptr<FastSteinerEngine> owned_engine;
  SnapshotPin enumeration_pin;
  SolveFn solve;
  if (config.engine == SteinerEngine::kFast) {
    FastSteinerEngine* engine = shared_engine;
    if (engine == nullptr) {
      owned_engine = std::make_unique<FastSteinerEngine>(graph, weights,
                                                         config.use_sp_cache);
      engine = owned_engine.get();
    }
    // One pin spans the whole enumeration: every Lawler subproblem solves
    // against the same frozen CSR generation even if a concurrent re-cost
    // lands between subproblems (serving-path callers pass the pin they
    // captured together with their weight snapshot).
    enumeration_pin = pin != nullptr ? *pin : engine->Pin();
    solve = [engine, &enumeration_pin, &terminals, use_kmb](
                const std::vector<graph::EdgeId>& forced,
                const std::vector<graph::EdgeId>& banned) {
      return use_kmb ? engine->SolveKmb(enumeration_pin, terminals, forced,
                                        banned)
                     : engine->SolveExact(enumeration_pin, terminals, forced,
                                          banned);
    };
  } else {
    solve = [&graph, &weights, &terminals, use_kmb](
                const std::vector<graph::EdgeId>& forced,
                const std::vector<graph::EdgeId>& banned)
        -> std::optional<SteinerTree> {
      SteinerProblem problem(graph, weights, terminals, forced, banned);
      return use_kmb ? SolveKmbSteiner(problem) : SolveExactSteiner(problem);
    };
  }

  std::priority_queue<Subproblem, std::vector<Subproblem>, SubproblemGreater>
      heap;
  if (auto best = solve({}, {}); best.has_value()) {
    heap.push(Subproblem{std::move(*best), {}, {}});
  }

  // Lawler partitioning never revisits a tree, but approximate solvers can
  // return duplicates across subspaces; keep a seen-set for safety.
  std::set<std::vector<graph::EdgeId>> seen;
  std::size_t expansions = 0;

  // Reused per-expansion child buffers (parallel solves write into
  // index-addressed slots, so the merge below is deterministic).
  std::vector<std::vector<graph::EdgeId>> child_forced;
  std::vector<std::vector<graph::EdgeId>> child_banned;
  std::vector<std::optional<SteinerTree>> child_tree;
  std::vector<std::function<void()>> child_tasks;

  while (!heap.empty() && output.size() < static_cast<std::size_t>(config.k) &&
         expansions < config.max_subproblems) {
    Subproblem sub = heap.top();
    heap.pop();
    ++expansions;
    if (!seen.insert(sub.tree.edges).second) continue;
    // A pivot with a dangling forced edge is not a proper Steiner tree (a
    // leaf that is no keyword node). It is still the subspace's cost lower
    // bound, so we branch on it, but it is not emitted: every proper tree
    // of the subspace lacks one of its free edges and thus lives in a
    // child subspace (trees containing *all* of the pivot's edges are
    // supersets of a tree and therefore improper).
    if (IsProperSteinerTree(graph, sub.tree, terminals)) {
      output.push_back(sub.tree);
    }

    // Branch on the tree's free (non-forced) edges: child i forces the
    // first i free edges and bans the (i+1)-th.
    std::unordered_set<graph::EdgeId> forced_set(sub.forced.begin(),
                                                 sub.forced.end());
    child_forced.clear();
    child_banned.clear();
    std::vector<graph::EdgeId> forced = sub.forced;
    for (graph::EdgeId e : sub.tree.edges) {
      if (forced_set.count(e) > 0) continue;
      child_forced.push_back(forced);
      child_banned.push_back(sub.banned);
      child_banned.back().push_back(e);
      forced.push_back(e);
    }

    const std::size_t num_children = child_forced.size();
    child_tree.assign(num_children, std::nullopt);
    if (config.pool != nullptr && num_children > 1) {
      // The children are independent Lawler subproblems; solve them on the
      // pool and merge results in child order. Solver output does not
      // depend on scheduling (see fast_solver.h), so this is byte-
      // identical to the sequential loop.
      child_tasks.clear();
      for (std::size_t i = 0; i < num_children; ++i) {
        child_tasks.push_back([&, i] {
          child_tree[i] = solve(child_forced[i], child_banned[i]);
        });
      }
      config.pool->RunAll(child_tasks);
    } else {
      for (std::size_t i = 0; i < num_children; ++i) {
        child_tree[i] = solve(child_forced[i], child_banned[i]);
      }
    }
    for (std::size_t i = 0; i < num_children; ++i) {
      if (!child_tree[i].has_value()) continue;
      heap.push(Subproblem{std::move(*child_tree[i]),
                           std::move(child_forced[i]),
                           std::move(child_banned[i])});
    }
  }

  if (certificate != nullptr) {
    // A certificate is only provable when the output is exactly the k
    // cheapest proper trees: the exact solver guarantees each subspace
    // optimum, and an enumeration cut short by max_subproblems (heap
    // nonempty, fewer than k trees emitted) proves nothing about the
    // unexplored remainder. KMB pivots are heuristic end to end — any
    // cost change, even an increase far from the result, can reroute its
    // shortest paths — so approximate runs never certify.
    const bool truncated =
        !heap.empty() && output.size() < static_cast<std::size_t>(config.k);
    // The output-identity argument is exact, but the enumeration
    // *mechanism* has one cost-dependent knob: max_subproblems. A
    // certified-safe delta can still reshape which pivots pop below the
    // k-th cost (an outside change moves improper pivots), so a fresh
    // run's expansion count can differ from this one's; a run that used
    // more than half the cap therefore never certifies, leaving 2x
    // headroom so the reshaped enumeration cannot hit the cap and
    // truncate to different output.
    const bool cap_headroom = expansions * 2 <= config.max_subproblems;
    if (!use_kmb && !truncated && cap_headroom) {
      certificate->valid = true;
      certificate->edges = CertificateNeighborhood(graph, terminals, output);
      if (heap.empty()) {
        // Space exhausted: every proper tree is in the output, so no cost
        // movement outside them can surface a new one.
        certificate->gap = std::numeric_limits<double>::infinity();
      } else {
        // Exact subspace optima pop in nondecreasing cost order, so the
        // heap top lower-bounds every tree not returned.
        certificate->gap = heap.top().tree.cost -
                           (output.empty() ? 0.0 : output.back().cost);
      }
    }
  }
  return output;
}

}  // namespace q::steiner
