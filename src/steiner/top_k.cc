#include "steiner/top_k.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <set>
#include <unordered_set>
#include <utility>

#include "steiner/exact_solver.h"
#include "steiner/fast_solver.h"
#include "steiner/kmb_solver.h"
#include "steiner/problem.h"
#include "steiner/shard.h"
#include "util/thread_pool.h"

namespace q::steiner {
namespace {

// A heap entry is either *solved* (tree is the subspace optimum, key is
// its cost) or *parked* (no tree yet; key is a certified lower bound on
// the subspace optimum, produced by a failed masked attempt — see
// fast_solver.h). Parked entries are only re-solved if they surface
// before k trees are emitted; entries whose bound stays above the k-th
// cost are never solved at all, which is what keeps Lawler children with
// genuinely non-local detours from forcing mask escalation.
struct Subproblem {
  double key = 0.0;
  bool solved = false;
  SteinerTree tree;  // empty while parked
  std::vector<graph::EdgeId> forced;
  std::vector<graph::EdgeId> banned;
};

struct SubproblemGreater {
  bool operator()(const Subproblem& a, const Subproblem& b) const {
    // Min-heap by key. Lower bounds are slack-shaved below any true cost
    // they could round up to (see SubspaceCostBound in fast_solver.cc),
    // so a parked entry always pops no later than its solved self would;
    // re-solving it and re-pushing at true cost therefore reproduces the
    // eager enumeration's solved pop sequence exactly. Ties: parked
    // before solved (the re-solve re-inserts at >= key, never earlier),
    // then deterministic content order so heap behavior is reproducible.
    if (a.key != b.key) return a.key > b.key;
    if (a.solved != b.solved) return a.solved;
    if (a.solved) return TreeLess(b.tree, a.tree);
    if (a.banned != b.banned) return a.banned > b.banned;
    return a.forced > b.forced;
  }
};

// One subproblem attempt: either the subspace optimum, a certified lower
// bound to park on, or neither (provably infeasible subspace).
struct AttemptResult {
  std::optional<SteinerTree> tree;
  bool parked = false;
  double lower_bound = 0.0;
};

using AttemptFn = std::function<AttemptResult(
    const std::vector<graph::EdgeId>& forced,
    const std::vector<graph::EdgeId>& banned, bool must_solve)>;

// The node/edge neighborhood of the returned trees: every tree edge,
// plus every edge incident to a node some tree (or terminal) touches.
// Edges outside this set cannot appear in any returned tree, so the only
// way a change to them can alter the output is by pulling a non-returned
// tree under the k-th returned cost — exactly what the certificate's gap
// bounds.
std::vector<graph::EdgeId> CertificateNeighborhood(
    const graph::SearchGraph& graph,
    const std::vector<graph::NodeId>& terminals,
    const std::vector<SteinerTree>& output) {
  std::vector<graph::NodeId> nodes(terminals.begin(), terminals.end());
  for (const SteinerTree& tree : output) {
    for (graph::EdgeId e : tree.edges) {
      nodes.push_back(graph.edge(e).u);
      nodes.push_back(graph.edge(e).v);
    }
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  std::vector<graph::EdgeId> edges;
  for (graph::NodeId n : nodes) {
    const graph::AdjacencyRange incident = graph.edges_of(n);
    edges.insert(edges.end(), incident.begin(), incident.end());
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

}  // namespace

std::vector<SteinerTree> TopKSteinerTrees(
    const graph::SearchGraph& graph, const graph::WeightVector& weights,
    const std::vector<graph::NodeId>& terminals, const TopKConfig& config) {
  return TopKSteinerTrees(graph, weights, terminals, config,
                          /*shared_engine=*/nullptr);
}

std::vector<SteinerTree> TopKSteinerTrees(
    const graph::SearchGraph& graph, const graph::WeightVector& weights,
    const std::vector<graph::NodeId>& terminals, const TopKConfig& config,
    FastSteinerEngine* shared_engine, RelevanceCertificate* certificate,
    const SnapshotPin* pin) {
  if (certificate != nullptr) *certificate = RelevanceCertificate{};
  std::vector<SteinerTree> output;
  if (terminals.empty() || config.k <= 0) return output;

  const bool use_kmb =
      config.approximate || graph.num_nodes() > config.approximate_above_nodes;

  // The solver substrate. The fast engine solves every subproblem as an
  // O(|edit|) overlay on a CSR snapshot — the caller's shared one when
  // provided (batched refresh), otherwise one built for this call. The
  // legacy path rebuilds a contracted SteinerProblem per call.
  std::unique_ptr<FastSteinerEngine> owned_engine;
  SnapshotPin enumeration_pin;
  std::unique_ptr<TerminalLocalizer> localizer;
  AttemptFn attempt;
  if (config.engine == SteinerEngine::kFast) {
    FastSteinerEngine* engine = shared_engine;
    if (engine == nullptr) {
      owned_engine = std::make_unique<FastSteinerEngine>(graph, weights,
                                                         config.use_sp_cache);
      engine = owned_engine.get();
    }
    // One pin spans the whole enumeration: every Lawler subproblem solves
    // against the same frozen CSR generation even if a concurrent re-cost
    // lands between subproblems (serving-path callers pass the pin they
    // captured together with their weight snapshot).
    enumeration_pin = pin != nullptr ? *pin : engine->Pin();
    if (config.sharded.enabled) {
      // Terminal-local sharded search: one localizer spans the
      // enumeration (masked solves run uncached — see fast_solver.h).
      // With must_solve, a subproblem retries through escalation until
      // its masked result verifies or the mask covers everything worth
      // covering — at which point the ordinary unmasked solve (and the
      // engine's shared cache) takes over. Without it, a single masked
      // attempt either verifies or yields the certified lower bound the
      // caller parks on — the mask never grows for a subspace whose
      // bound may keep it from ever surfacing. Masked results that
      // verify are bit-identical to unmasked ones (see fast_solver.h),
      // so the enumeration's output — and its certificate — never
      // depends on sharding, mask growth, or scheduling.
      localizer = std::make_unique<TerminalLocalizer>(
          enumeration_pin.csr,
          engine->Shards(config.sharded.target_shard_nodes), terminals);
      attempt = [engine, &enumeration_pin, &terminals, use_kmb,
                 compact_ids = config.sharded.compact_local_ids,
                 loc = localizer.get()](
                    const std::vector<graph::EdgeId>& forced,
                    const std::vector<graph::EdgeId>& banned,
                    bool must_solve) -> AttemptResult {
        for (;;) {
          TerminalLocalizer::Snapshot snap = loc->Acquire();
          if (snap.mask->covers_all) {
            return AttemptResult{
                use_kmb ? engine->SolveKmb(enumeration_pin, terminals, forced,
                                           banned)
                        : engine->SolveExact(enumeration_pin, terminals,
                                             forced, banned)};
          }
          MaskView view;
          view.in_mask = &snap.mask->in_mask;
          view.nodes = &snap.mask->nodes;
          view.r_proof = snap.r_proof;
          view.epoch = snap.epoch;
          // Null keeps the uncompacted masked path as the referee.
          view.compact = compact_ids ? snap.mask.get() : nullptr;
          MaskedOutcome outcome;
          double bound = 0.0;
          auto tree = use_kmb
                          ? engine->SolveKmbMasked(enumeration_pin, terminals,
                                                   forced, banned, view,
                                                   &outcome, &bound)
                          : engine->SolveExactMasked(enumeration_pin,
                                                     terminals, forced, banned,
                                                     view, &outcome, &bound);
          if (outcome == MaskedOutcome::kOk) return AttemptResult{std::move(tree)};
          if (!must_solve) {
            AttemptResult parked;
            parked.parked = true;
            parked.lower_bound = bound;
            return parked;
          }
          loc->Escalate(snap.epoch);
        }
      };
    } else {
      attempt = [engine, &enumeration_pin, &terminals, use_kmb](
                    const std::vector<graph::EdgeId>& forced,
                    const std::vector<graph::EdgeId>& banned,
                    bool /*must_solve*/) {
        return AttemptResult{
            use_kmb
                ? engine->SolveKmb(enumeration_pin, terminals, forced, banned)
                : engine->SolveExact(enumeration_pin, terminals, forced,
                                     banned)};
      };
    }
  } else {
    attempt = [&graph, &weights, &terminals, use_kmb](
                  const std::vector<graph::EdgeId>& forced,
                  const std::vector<graph::EdgeId>& banned,
                  bool /*must_solve*/) -> AttemptResult {
      SteinerProblem problem(graph, weights, terminals, forced, banned);
      return AttemptResult{use_kmb ? SolveKmbSteiner(problem)
                                   : SolveExactSteiner(problem)};
    };
  }

  std::priority_queue<Subproblem, std::vector<Subproblem>, SubproblemGreater>
      heap;
  if (AttemptResult best = attempt({}, {}, /*must_solve=*/true);
      best.tree.has_value()) {
    const double cost = best.tree->cost;
    heap.push(Subproblem{cost, true, std::move(*best.tree), {}, {}});
  }

  // Lawler partitioning never revisits a tree, but approximate solvers can
  // return duplicates across subspaces; keep a seen-set for safety.
  std::set<std::vector<graph::EdgeId>> seen;
  std::size_t expansions = 0;

  // Reused per-expansion child buffers (parallel solves write into
  // index-addressed slots, so the merge below is deterministic).
  std::vector<std::vector<graph::EdgeId>> child_forced;
  std::vector<std::vector<graph::EdgeId>> child_banned;
  std::vector<AttemptResult> child_result;
  std::vector<std::function<void()>> child_tasks;

  while (!heap.empty() && output.size() < static_cast<std::size_t>(config.k) &&
         expansions < config.max_subproblems) {
    Subproblem sub = heap.top();
    heap.pop();
    if (!sub.solved) {
      // A parked subspace surfaced before k trees were emitted, so its
      // optimum might still be needed: solve it exactly now (escalating
      // the mask as required) and re-insert at true cost. This pop does
      // not count as an expansion and runs no seen-set check — the
      // sequence of *solved* pops is provably identical to the eager
      // enumeration's (the bound never exceeds the true cost, so the
      // re-inserted entry lands exactly where the eager one would), and
      // expansions/seen/emission are all driven by solved pops alone.
      AttemptResult res = attempt(sub.forced, sub.banned, /*must_solve=*/true);
      if (res.tree.has_value()) {
        const double cost = res.tree->cost;
        heap.push(Subproblem{cost, true, std::move(*res.tree),
                             std::move(sub.forced), std::move(sub.banned)});
      }
      continue;
    }
    ++expansions;
    if (!seen.insert(sub.tree.edges).second) continue;
    // A pivot with a dangling forced edge is not a proper Steiner tree (a
    // leaf that is no keyword node). It is still the subspace's cost lower
    // bound, so we branch on it, but it is not emitted: every proper tree
    // of the subspace lacks one of its free edges and thus lives in a
    // child subspace (trees containing *all* of the pivot's edges are
    // supersets of a tree and therefore improper).
    if (IsProperSteinerTree(graph, sub.tree, terminals)) {
      output.push_back(sub.tree);
      // The k-th pivot's children exist only to bound the certificate gap
      // (their keys feed heap.top() below); when no exact certificate can
      // be issued, branching them buys nothing — skip the whole attempt
      // round. Output is unchanged: the loop condition would stop before
      // any of those children could surface.
      if (output.size() == static_cast<std::size_t>(config.k) &&
          (use_kmb || certificate == nullptr)) {
        break;
      }
    }

    // Branch on the tree's free (non-forced) edges: child i forces the
    // first i free edges and bans the (i+1)-th.
    std::unordered_set<graph::EdgeId> forced_set(sub.forced.begin(),
                                                 sub.forced.end());
    child_forced.clear();
    child_banned.clear();
    std::vector<graph::EdgeId> forced = sub.forced;
    for (graph::EdgeId e : sub.tree.edges) {
      if (forced_set.count(e) > 0) continue;
      child_forced.push_back(forced);
      child_banned.push_back(sub.banned);
      child_banned.back().push_back(e);
      forced.push_back(e);
    }

    const std::size_t num_children = child_forced.size();
    child_result.assign(num_children, AttemptResult{});
    if (config.pool != nullptr && num_children > 1) {
      // The children are independent Lawler subproblems; solve them on the
      // pool and merge results in child order. Solver output does not
      // depend on scheduling (see fast_solver.h), so this is byte-
      // identical to the sequential loop.
      child_tasks.clear();
      for (std::size_t i = 0; i < num_children; ++i) {
        child_tasks.push_back([&, i] {
          child_result[i] =
              attempt(child_forced[i], child_banned[i], /*must_solve=*/false);
        });
      }
      config.pool->RunAll(child_tasks);
    } else {
      for (std::size_t i = 0; i < num_children; ++i) {
        child_result[i] =
            attempt(child_forced[i], child_banned[i], /*must_solve=*/false);
      }
    }
    for (std::size_t i = 0; i < num_children; ++i) {
      AttemptResult& res = child_result[i];
      if (res.tree.has_value()) {
        const double cost = res.tree->cost;
        heap.push(Subproblem{cost, true, std::move(*res.tree),
                             std::move(child_forced[i]),
                             std::move(child_banned[i])});
      } else if (res.parked) {
        heap.push(Subproblem{res.lower_bound, false, SteinerTree{},
                             std::move(child_forced[i]),
                             std::move(child_banned[i])});
      }
    }
  }

  if (certificate != nullptr) {
    // A certificate is only provable when the output is exactly the k
    // cheapest proper trees: the exact solver guarantees each subspace
    // optimum, and an enumeration cut short by max_subproblems (heap
    // nonempty, fewer than k trees emitted) proves nothing about the
    // unexplored remainder. KMB pivots are heuristic end to end — any
    // cost change, even an increase far from the result, can reroute its
    // shortest paths — so approximate runs never certify.
    const bool truncated =
        !heap.empty() && output.size() < static_cast<std::size_t>(config.k);
    // The output-identity argument is exact, but the enumeration
    // *mechanism* has one cost-dependent knob: max_subproblems. A
    // certified-safe delta can still reshape which pivots pop below the
    // k-th cost (an outside change moves improper pivots), so a fresh
    // run's expansion count can differ from this one's; a run that used
    // more than half the cap therefore never certifies, leaving 2x
    // headroom so the reshaped enumeration cannot hit the cap and
    // truncate to different output.
    const bool cap_headroom = expansions * 2 <= config.max_subproblems;
    if (!use_kmb && !truncated && cap_headroom) {
      certificate->valid = true;
      certificate->edges = CertificateNeighborhood(graph, terminals, output);
      if (heap.empty()) {
        // Space exhausted: every proper tree is in the output, so no cost
        // movement outside them can surface a new one.
        certificate->gap = std::numeric_limits<double>::infinity();
      } else {
        // Exact subspace optima pop in nondecreasing cost order, and a
        // parked entry's key lower-bounds its subspace optimum, so the
        // heap top's key lower-bounds every tree not returned (the gap
        // may understate — never overstate — the true slack).
        certificate->gap =
            heap.top().key - (output.empty() ? 0.0 : output.back().cost);
      }
    }
  }
  return output;
}

}  // namespace q::steiner
