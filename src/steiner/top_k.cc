#include "steiner/top_k.h"

#include <algorithm>
#include <optional>
#include <queue>
#include <set>
#include <unordered_set>

#include "steiner/exact_solver.h"
#include "steiner/kmb_solver.h"
#include "steiner/problem.h"

namespace q::steiner {
namespace {

struct Subproblem {
  SteinerTree tree;  // optimum within this subspace
  std::vector<graph::EdgeId> forced;
  std::vector<graph::EdgeId> banned;
};

struct SubproblemGreater {
  bool operator()(const Subproblem& a, const Subproblem& b) const {
    // Min-heap by tree cost with deterministic tie-break.
    return TreeLess(b.tree, a.tree);
  }
};

}  // namespace

std::vector<SteinerTree> TopKSteinerTrees(
    const graph::SearchGraph& graph, const graph::WeightVector& weights,
    const std::vector<graph::NodeId>& terminals, const TopKConfig& config) {
  std::vector<SteinerTree> output;
  if (terminals.empty() || config.k <= 0) return output;

  const bool use_kmb =
      config.approximate || graph.num_nodes() > config.approximate_above_nodes;
  auto solve = [&](const std::vector<graph::EdgeId>& forced,
                   const std::vector<graph::EdgeId>& banned)
      -> std::optional<SteinerTree> {
    SteinerProblem problem(graph, weights, terminals, forced, banned);
    return use_kmb ? SolveKmbSteiner(problem) : SolveExactSteiner(problem);
  };

  std::priority_queue<Subproblem, std::vector<Subproblem>, SubproblemGreater>
      heap;
  if (auto best = solve({}, {}); best.has_value()) {
    heap.push(Subproblem{std::move(*best), {}, {}});
  }

  // Lawler partitioning never revisits a tree, but approximate solvers can
  // return duplicates across subspaces; keep a seen-set for safety.
  std::set<std::vector<graph::EdgeId>> seen;
  std::size_t expansions = 0;

  while (!heap.empty() && output.size() < static_cast<std::size_t>(config.k) &&
         expansions < config.max_subproblems) {
    Subproblem sub = heap.top();
    heap.pop();
    ++expansions;
    if (!seen.insert(sub.tree.edges).second) continue;
    // A pivot with a dangling forced edge is not a proper Steiner tree (a
    // leaf that is no keyword node). It is still the subspace's cost lower
    // bound, so we branch on it, but it is not emitted: every proper tree
    // of the subspace lacks one of its free edges and thus lives in a
    // child subspace (trees containing *all* of the pivot's edges are
    // supersets of a tree and therefore improper).
    if (IsProperSteinerTree(graph, sub.tree, terminals)) {
      output.push_back(sub.tree);
    }

    // Branch on the tree's free (non-forced) edges.
    std::unordered_set<graph::EdgeId> forced_set(sub.forced.begin(),
                                                 sub.forced.end());
    std::vector<graph::EdgeId> free_edges;
    for (graph::EdgeId e : sub.tree.edges) {
      if (forced_set.count(e) == 0) free_edges.push_back(e);
    }
    std::vector<graph::EdgeId> forced = sub.forced;
    for (std::size_t i = 0; i < free_edges.size(); ++i) {
      std::vector<graph::EdgeId> banned = sub.banned;
      banned.push_back(free_edges[i]);
      if (auto tree = solve(forced, banned); tree.has_value()) {
        heap.push(Subproblem{std::move(*tree), forced, std::move(banned)});
      }
      forced.push_back(free_edges[i]);
    }
  }
  return output;
}

}  // namespace q::steiner
