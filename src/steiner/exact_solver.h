#ifndef Q_STEINER_EXACT_SOLVER_H_
#define Q_STEINER_EXACT_SOLVER_H_

#include <optional>

#include "steiner/problem.h"
#include "steiner/steiner_tree.h"

namespace q::steiner {

// Exact minimum Steiner tree via the Dreyfus–Wagner dynamic program with
// Dijkstra-based "grow" steps (Erickson–Monma–Veinott formulation):
//
//   dp[S][v] = cost of the cheapest tree spanning terminal subset S plus v
//   merge:  dp[S][v] <- dp[S1][v] + dp[S\S1][v]
//   grow:   dp[S][v] <- min over paths u ~> v of dp[S][u] + dist(u, v)
//
// Exponential only in the number of terminals (the keyword count, small).
// Returns std::nullopt when the terminals cannot be connected. The
// returned tree includes the problem's forced edges and their cost.
std::optional<SteinerTree> SolveExactSteiner(const SteinerProblem& problem);

}  // namespace q::steiner

#endif  // Q_STEINER_EXACT_SOLVER_H_
