#ifndef Q_STEINER_STEINER_TREE_H_
#define Q_STEINER_STEINER_TREE_H_

#include <vector>

#include "graph/search_graph.h"

namespace q::steiner {

// A Steiner tree over a SearchGraph: a set of edge ids connecting all
// terminals. Edges are kept sorted so trees compare canonically. A tree
// with no edges is valid when all terminals coincide.
struct SteinerTree {
  std::vector<graph::EdgeId> edges;
  double cost = 0.0;

  void Canonicalize();

  bool operator==(const SteinerTree& other) const {
    return edges == other.edges;
  }
};

// Deterministic ordering: by cost, then lexicographically by edge ids.
bool TreeLess(const SteinerTree& a, const SteinerTree& b);

// Sum of edge feature vectors (used by the MIRA learner: C(T,w) = w·f(T)).
graph::FeatureVec TreeFeatures(const graph::SearchGraph& graph,
                               const SteinerTree& tree);

// Recomputes the tree's cost under the given weights.
double TreeCost(const graph::SearchGraph& graph,
                const graph::WeightVector& weights, const SteinerTree& tree);

// Distinct nodes touched by the tree's edges.
std::vector<graph::NodeId> TreeNodes(const graph::SearchGraph& graph,
                                     const SteinerTree& tree);

// True if `tree.edges` forms a connected acyclic subgraph containing every
// terminal (terminals with no edges allowed only if they all coincide).
bool IsValidSteinerTree(const graph::SearchGraph& graph,
                        const SteinerTree& tree,
                        const std::vector<graph::NodeId>& terminals);

// True if additionally every leaf of the tree is a terminal (a "proper"
// Steiner tree — Sec. 2.2's trees with the keyword nodes as leaves; a
// dangling non-terminal branch would add a redundant join to the query).
bool IsProperSteinerTree(const graph::SearchGraph& graph,
                         const SteinerTree& tree,
                         const std::vector<graph::NodeId>& terminals);

// Symmetric edge-set difference |E(T)\E(T')| + |E(T')\E(T)| (Eq. 2), the
// MIRA loss.
double SymmetricEdgeLoss(const SteinerTree& a, const SteinerTree& b);

}  // namespace q::steiner

#endif  // Q_STEINER_STEINER_TREE_H_
