#ifndef Q_STEINER_PROBLEM_H_
#define Q_STEINER_PROBLEM_H_

#include <cstdint>
#include <vector>

#include "graph/search_graph.h"

namespace q::steiner {

// A self-contained snapshot of a Steiner instance: edge costs frozen under
// one WeightVector, `banned` edges removed, and `forced` edges contracted
// (endpoint merging). Forced-edge contraction is what lets the Lawler
// top-k scheme reuse any single-tree solver: a subproblem's optimum *must*
// contain the forced edges, so we charge their cost up front and solve on
// the contracted graph.
class SteinerProblem {
 public:
  // Arcs are directed copies of the surviving undirected edges.
  struct Arc {
    std::uint32_t to;
    graph::EdgeId original;
    double cost;
  };

  SteinerProblem(const graph::SearchGraph& graph,
                 const graph::WeightVector& weights,
                 const std::vector<graph::NodeId>& terminals,
                 const std::vector<graph::EdgeId>& forced,
                 const std::vector<graph::EdgeId>& banned);

  // False when forced edges are also banned or form a cycle; such
  // subproblems have no solution.
  bool valid() const { return valid_; }

  std::size_t num_nodes() const { return arcs_.size(); }
  const std::vector<Arc>& arcs(std::uint32_t super_node) const {
    return arcs_[super_node];
  }

  // Super-node ids of the terminals, deduplicated (contraction can merge
  // terminals together).
  const std::vector<std::uint32_t>& terminals() const { return terminals_; }

  // Cost already paid for the forced edges.
  double base_cost() const { return base_cost_; }
  const std::vector<graph::EdgeId>& forced() const { return forced_; }

  std::uint32_t SuperOf(graph::NodeId node) const { return super_of_[node]; }

 private:
  bool valid_ = true;
  double base_cost_ = 0.0;
  std::vector<graph::EdgeId> forced_;
  std::vector<std::uint32_t> super_of_;
  std::vector<std::vector<Arc>> arcs_;
  std::vector<std::uint32_t> terminals_;
};

}  // namespace q::steiner

#endif  // Q_STEINER_PROBLEM_H_
