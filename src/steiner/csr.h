#ifndef Q_STEINER_CSR_H_
#define Q_STEINER_CSR_H_

#include <cstdint>
#include <vector>

#include "graph/search_graph.h"

namespace q::steiner {

// One edge whose snapshot cost actually moved during a (delta) re-cost.
// The old/new pair is what the shortest-path cache's selective
// invalidation rule needs: a pure cost increase of a non-tree edge
// provably cannot change a cached Dijkstra tree, anything else drops it.
struct RepricedEdge {
  graph::EdgeId edge;
  double old_cost;
  double new_cost;
};

// Feature -> edge postings over one SearchGraph snapshot: for every
// feature id mentioned by some edge's FeatureVec, the (ascending) list of
// edges carrying it. Lets a sparse weight delta (a MIRA step moves only
// the features on the endorsed and competing trees) be mapped to the
// exact set of edges whose cost can move, instead of re-evaluating
// w · f(e) for every edge. Built once per snapshot topology; must be
// rebuilt after any edge's FeatureVec changes (the structural
// edge-mutation propagation path).
class FeatureEdgeIndex {
 public:
  static FeatureEdgeIndex Build(const graph::SearchGraph& graph);

  // Appends every edge mentioning any feature in `touched` to `out`,
  // then sorts and dedups `out` (touched features commonly share edges).
  void CollectEdges(const std::vector<graph::FeatureId>& touched,
                    std::vector<graph::EdgeId>* out) const;

  std::size_t num_postings() const { return edges_.size(); }

 private:
  // CSR postings: edges_[offsets_[f] .. offsets_[f + 1]) carry feature f.
  // Features above the snapshot's max mentioned id have no postings.
  std::vector<std::uint32_t> offsets_;
  std::vector<graph::EdgeId> edges_;
};

// Flat CSR snapshot of a SearchGraph under one WeightVector: every edge
// cost is evaluated exactly once (w · f(e) is the expensive part of graph
// traversal), and both directed copies of each undirected edge are laid
// out contiguously per node. Built once per (graph, weights) pair and
// shared read-only by every Lawler subproblem; forced/banned edges are
// applied by solvers as O(|edit|) overlay masks instead of graph rebuilds.
//
// Per-node arc blocks are ordered by original edge id, matching the order
// in which SteinerProblem materializes arcs.
struct CsrGraph {
  std::uint32_t num_nodes = 0;
  std::uint32_t num_edges = 0;

  // Arcs: arc indices [offsets[v], offsets[v + 1]) belong to node v.
  std::vector<std::uint32_t> offsets;   // size num_nodes + 1
  std::vector<std::uint32_t> arc_head;  // size 2 * num_edges
  std::vector<graph::EdgeId> arc_edge;  // size 2 * num_edges
  std::vector<double> arc_cost;         // size 2 * num_edges

  // Per-edge endpoints and cost (same cost as the arc copies).
  std::vector<std::uint32_t> edge_u;
  std::vector<std::uint32_t> edge_v;
  std::vector<double> edge_cost;

  static CsrGraph Build(const graph::SearchGraph& graph,
                        const graph::WeightVector& weights);

  // Weight-only refresh: re-evaluates every edge cost (w · f(e)) in place
  // without re-extracting topology — offsets/arc_head/arc_edge and the
  // edge endpoint arrays are untouched, so snapshot holders keep their
  // arc ordering (and with it the determinism contract). Precondition:
  // `graph` has exactly the node/edge set this snapshot was built from.
  void Recost(const graph::SearchGraph& graph,
              const graph::WeightVector& weights);

  // Delta refresh: re-evaluates only the listed edges (same computation
  // as Recost, so a delta-recosted snapshot is bitwise identical to a
  // fully recosted one), patching both directed arc copies. Edges whose
  // cost actually moved are appended to `repriced` with their old/new
  // values. Same precondition as Recost; `edges` need not be sorted but
  // must not contain duplicates beyond harmless re-pricing (idempotent).
  void RecostEdges(const graph::SearchGraph& graph,
                   const graph::WeightVector& weights,
                   const std::vector<graph::EdgeId>& edges,
                   std::vector<RepricedEdge>* repriced);

  // Estimated resident bytes of the snapshot's arrays.
  std::size_t MemoryUsage() const;

  // Read-only twin of RecostEdges: appends the would-be RepricedEdge
  // records (same EdgeCost evaluation) without patching anything. The
  // relevance gate uses this to decide whether a delta can change a
  // view's output before committing to touch its snapshot at all (see
  // docs/query_engine.md, "Relevance-scoped refresh").
  void PreviewRecostEdges(const graph::SearchGraph& graph,
                          const graph::WeightVector& weights,
                          const std::vector<graph::EdgeId>& edges,
                          std::vector<RepricedEdge>* repriced) const;
};

}  // namespace q::steiner

#endif  // Q_STEINER_CSR_H_
