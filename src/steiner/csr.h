#ifndef Q_STEINER_CSR_H_
#define Q_STEINER_CSR_H_

#include <cstdint>
#include <vector>

#include "graph/search_graph.h"

namespace q::steiner {

// Flat CSR snapshot of a SearchGraph under one WeightVector: every edge
// cost is evaluated exactly once (w · f(e) is the expensive part of graph
// traversal), and both directed copies of each undirected edge are laid
// out contiguously per node. Built once per (graph, weights) pair and
// shared read-only by every Lawler subproblem; forced/banned edges are
// applied by solvers as O(|edit|) overlay masks instead of graph rebuilds.
//
// Per-node arc blocks are ordered by original edge id, matching the order
// in which SteinerProblem materializes arcs.
struct CsrGraph {
  std::uint32_t num_nodes = 0;
  std::uint32_t num_edges = 0;

  // Arcs: arc indices [offsets[v], offsets[v + 1]) belong to node v.
  std::vector<std::uint32_t> offsets;   // size num_nodes + 1
  std::vector<std::uint32_t> arc_head;  // size 2 * num_edges
  std::vector<graph::EdgeId> arc_edge;  // size 2 * num_edges
  std::vector<double> arc_cost;         // size 2 * num_edges

  // Per-edge endpoints and cost (same cost as the arc copies).
  std::vector<std::uint32_t> edge_u;
  std::vector<std::uint32_t> edge_v;
  std::vector<double> edge_cost;

  static CsrGraph Build(const graph::SearchGraph& graph,
                        const graph::WeightVector& weights);

  // Weight-only refresh: re-evaluates every edge cost (w · f(e)) in place
  // without re-extracting topology — offsets/arc_head/arc_edge and the
  // edge endpoint arrays are untouched, so snapshot holders keep their
  // arc ordering (and with it the determinism contract). Precondition:
  // `graph` has exactly the node/edge set this snapshot was built from.
  void Recost(const graph::SearchGraph& graph,
              const graph::WeightVector& weights);
};

}  // namespace q::steiner

#endif  // Q_STEINER_CSR_H_
