#ifndef Q_STEINER_FAST_SOLVER_H_
#define Q_STEINER_FAST_SOLVER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "graph/search_graph.h"
#include "steiner/csr.h"
#include "steiner/sp_cache.h"
#include "steiner/steiner_tree.h"

namespace q::steiner {

struct ShardPartition;
struct ShardMask;

struct FastSolveStats {
  std::size_t sp_cache_hits = 0;
  std::size_t sp_cache_misses = 0;
  std::size_t sp_cache_entries = 0;
  // Masked-solve cache traffic (compacted local trees, mask-uid keyed;
  // see sp_cache.h) and the bypass counter for masked solves that ran
  // with no cache at all (the uncompacted referee path).
  std::size_t sp_local_hits = 0;
  std::size_t sp_local_misses = 0;
  std::size_t sp_local_entries = 0;
  std::size_t masked_bypasses = 0;
};

// Bytes currently retained by the calling thread's solver scratch arena
// (heap, per-terminal tree slots, overlay flags, DP tables). The arena
// shrinks itself after a sustained streak of solves much smaller than its
// high-water capacity — one oversized solve no longer pins tens of MB per
// serving thread forever; bench_serve_load asserts this stays bounded.
std::size_t ThreadScratchBytes();

// A pinned read handle on a FastSteinerEngine's current CSR snapshot.
// While any pin is alive, mutators copy-on-write instead of patching in
// place (and move the shortest-path cache to a new generation), so the
// pinned CsrGraph — and with it the generation the pin captured — stays
// bitwise frozen for as long as the holder keeps the struct alive.
// Solve* pin internally unless handed a pin; a whole top-k enumeration
// passes one pin through every subproblem (see top_k.h) so a re-cost
// landing mid-enumeration can never mix cost snapshots within one search.
// Namespace-scope (rather than nested) so top_k.h can forward-declare it.
struct SnapshotPin {
  std::shared_ptr<const CsrGraph> csr;
  // Engine generation at pin time.
  std::uint64_t generation = 0;
  // Shortest-path cache generation at pin time; the pinned solve's
  // cache lookups and inserts are keyed under it (see sp_cache.h), so
  // they can never mix with entries of other cost snapshots.
  std::uint64_t cache_generation = 0;
};

// Borrowed view of a TerminalLocalizer mask for one masked solve (see
// shard.h). The pointed-to vectors are owned by an immutable ShardMask
// the caller keeps alive via shared_ptr for the duration of the call.
struct MaskView {
  const std::vector<std::uint8_t>* in_mask = nullptr;  // node bitmap
  const std::vector<std::uint32_t>* nodes = nullptr;   // ascending node ids
  // Compact local-id view (the ShardMask owning the vectors above, which
  // also carries the local sub-CSR — see shard.h). When set, masked
  // Dijkstras run over dense local ids with every per-node array sized to
  // the mask, translating back to global ids only where results feed the
  // metric closure, the certificates, the exact-DP eligibility scan, and
  // tree extraction. Null runs the uncompacted masked path — kept as the
  // bit-identity referee (ShardedSearchConfig::compact_local_ids).
  const ShardMask* compact = nullptr;
  // Real-cost radius around the terminals the mask provably covers. The
  // solvers certify each solve from its own clipped-frontier offers
  // rather than from this radius; it remains the localizer's growth
  // knob (each escalation doubles it — see shard.h).
  double r_proof = 0.0;
  // Mask epoch, forwarded from the localizer snapshot the view was taken
  // under; Escalate uses it to dedup concurrent growth requests.
  std::uint64_t epoch = 0;
};

// Verdict of a masked solve. kOk means the per-subproblem identity
// conditions verified and the returned value (tree or infeasibility) is
// bit-identical to what the unmasked solver would produce. kEscalate
// means a condition failed — the result carries no information and the
// caller must grow the mask (TerminalLocalizer::Escalate) and retry.
enum class MaskedOutcome { kOk, kEscalate };

// Allocation-free Steiner solvers over a shared CSR snapshot.
//
// One engine is built per (graph, weights) pair — the CSR adjacency and
// edge costs are materialized exactly once — and then every Lawler
// subproblem is solved against it with forced/banned edges applied as
// O(|edit|) overlays: forced edges are traversed at cost 0 (the overlay
// analogue of SteinerProblem's endpoint contraction; their real cost is
// charged up front) and banned edges are skipped. Per-solve state lives in
// a thread-local scratch arena, so Solve* are safe to call concurrently
// and do no steady-state allocation.
//
// When `use_cache` is set, per-terminal Dijkstra trees are shared across
// subproblems through a ShortestPathCache; see sp_cache.h for the reuse
// rule. Cache state never changes solver output (any valid entry equals a
// fresh computation), which is what keeps cached/parallel runs
// byte-identical to sequential uncached runs.
//
// Concurrency (the async refresh scheduler's contract): any number of
// Solve* calls may run concurrently with each other AND with one
// mutator (Recost/RecostDelta) — each solve pins the CSR snapshot at
// entry (see Pin) and runs to completion against those costs even if a
// re-cost lands mid-solve; the mutator copies-on-write when pins are
// outstanding, so a search never observes a half-repriced snapshot.
// Mutators and PreviewDelta must still be externally serialized against
// each other (they share the engine's scratch and postings index);
// per-view task ordering provides that upstream.
class FastSteinerEngine {
 public:
  FastSteinerEngine(const graph::SearchGraph& graph,
                    const graph::WeightVector& weights, bool use_cache);

  // Weight-only snapshot refresh: re-costs every CSR edge in place
  // (topology arrays untouched; copy-on-write when a SnapshotPin is
  // outstanding) and moves the shortest-path cache to a new generation so
  // no tree computed under the old weights can be served.
  // Precondition: `graph` has exactly the node/edge set this engine was
  // built from. Far cheaper than rebuilding the engine and — because arc
  // order is preserved and the cache is generation-keyed — produces
  // byte-identical output to a fresh engine over the same (graph, weights).
  void Recost(const graph::SearchGraph& graph,
              const graph::WeightVector& weights);

  // Outcome of RecostDelta, for the refresh engine's classification and
  // observability counters.
  struct RecostDeltaOutcome {
    // False when the delta was too large to be worth the selective path
    // (candidate edges above half the snapshot); nothing was changed and
    // the caller must fall back to full Recost.
    bool applied = false;
    // Edges whose features mention a touched feature (the postings hits).
    std::size_t candidate_edges = 0;
    // Edges whose cost actually moved.
    std::size_t edges_repriced = 0;
    // Shortest-path cache entries retained/dropped by the selective
    // invalidation (both 0 when caching is disabled or nothing moved).
    std::size_t cache_entries_retained = 0;
    std::size_t cache_entries_dropped = 0;
  };

  // Delta snapshot refresh: maps the touched features of a sparse weight
  // update (plus optionally `extra_edges`, e.g. edges whose FeatureVec
  // itself was mutated) through a lazily built feature->edge postings
  // index and re-evaluates only those edges. Bitwise identical to a full
  // Recost over the same state — same EdgeCost computation, untouched
  // edges provably cannot move (their w · f(e) reads no touched weight).
  // The shortest-path cache is invalidated selectively
  // (ShortestPathCache::InvalidateRepriced) instead of wholesale: its
  // generation does not move, so provably unaffected Dijkstra trees keep
  // serving lookups across the refresh. The engine generation advances
  // only when at least one edge cost moved.
  //
  // Precondition: same node/edge set as at construction, and every
  // edge's FeatureVec unchanged since the postings index was built —
  // after mutating a FeatureVec, call InvalidateFeatureIndex() and list
  // the mutated edges in `extra_edges`.
  RecostDeltaOutcome RecostDelta(
      const graph::SearchGraph& graph, const graph::WeightVector& weights,
      const std::vector<graph::FeatureDelta>& deltas,
      const std::vector<graph::EdgeId>& extra_edges = {});

  // Read-only twin of RecostDelta for the relevance gate: maps the delta
  // through the same feature->edge postings and appends the would-be
  // RepricedEdge records to `repriced` without patching the snapshot or
  // touching the shortest-path cache. Returns false (and leaves
  // `repriced` untouched) when the delta is dense (candidates above half
  // the snapshot, the same threshold RecostDelta declines at) — the
  // caller must then take the ordinary re-cost paths. Same FeatureVec
  // precondition as RecostDelta; callers with mutated edges must not
  // preview (the gate only runs on pure weight deltas).
  bool PreviewDelta(const graph::SearchGraph& graph,
                    const graph::WeightVector& weights,
                    const std::vector<graph::FeatureDelta>& deltas,
                    std::vector<RepricedEdge>* repriced);

  // Drops the feature->edge postings index (rebuilt from the graph on
  // the next RecostDelta). Required after any edge FeatureVec mutation.
  void InvalidateFeatureIndex() { feature_index_.reset(); }

  // Snapshot generation: 0 at construction, +1 per Recost and per
  // effective RecostDelta (one that moved at least one edge cost).
  // Mirrors the cache generation when caching is enabled and only full
  // Recosts occur; a delta re-cost advances the engine generation but
  // deliberately not the cache generation (surviving entries stay
  // servable).
  std::uint64_t generation() const { return generation_; }

  // Kept as a member alias: SnapshotPin predates its move to namespace
  // scope and call sites still say FastSteinerEngine::SnapshotPin.
  using SnapshotPin = ::q::steiner::SnapshotPin;
  SnapshotPin Pin() const;

  // KMB 2-approximation (the contraction semantics of SolveKmbSteiner).
  // Returns nullopt when the subproblem is infeasible (forced edges banned
  // or cyclic, or terminals disconnected). The pin-taking overloads solve
  // against the caller's pinned snapshot (one Pin() can cover a whole
  // enumeration); the pin-free ones pin per call.
  std::optional<SteinerTree> SolveKmb(
      const SnapshotPin& pin, const std::vector<graph::NodeId>& terminals,
      const std::vector<graph::EdgeId>& forced,
      const std::vector<graph::EdgeId>& banned);
  std::optional<SteinerTree> SolveKmb(
      const std::vector<graph::NodeId>& terminals,
      const std::vector<graph::EdgeId>& forced,
      const std::vector<graph::EdgeId>& banned);

  // Dreyfus–Wagner style exact DP (the semantics of SolveExactSteiner).
  std::optional<SteinerTree> SolveExact(
      const SnapshotPin& pin, const std::vector<graph::NodeId>& terminals,
      const std::vector<graph::EdgeId>& forced,
      const std::vector<graph::EdgeId>& banned);
  std::optional<SteinerTree> SolveExact(
      const std::vector<graph::NodeId>& terminals,
      const std::vector<graph::EdgeId>& forced,
      const std::vector<graph::EdgeId>& banned);

  // Masked variants for sharded terminal-local search. They solve over
  // the subgraph induced by the mask (arcs whose head is outside are
  // skipped) and then VERIFY, per subproblem, a boundary certificate
  // under which the masked result is provably bit-identical to the
  // unmasked one. Each masked Dijkstra records the cheapest offer it
  // clipped at the mask boundary (SpTree::mask_min_clip); any path that
  // escapes the mask costs at least that offer, so every settled value
  // strictly below it can neither be improved nor tied from outside —
  // by induction over the canonical (dist, id) settle order, the masked
  // prefix below the clip floor IS the unmasked prefix, predecessors
  // included. Per solve the checks are:
  //
  //  * KMB: for each terminal's tree, every pairwise terminal overlay
  //    distance (KMB's read horizon — predecessor walks sit below it)
  //    is strictly below that tree's clip floor. A terminal unreachable
  //    within the mask certifies only when the tree clipped nothing, in
  //    which case the infeasibility verdict is exact.
  //  * Exact additionally requires the slacked KMB bound to sit strictly
  //    below every tree's clip floor: the DP reads distances up to that
  //    pruning threshold (eligibility, singleton slices, reconstruction
  //    walks), so the bound-pruned eligible set, the mini-CSR, the DP,
  //    and the reconstruction provably coincide with the unmasked ones.
  //
  // The certificate is per-run and overlay-exact: forced edges shorten
  // overlay distances on both sides of the comparison identically, so
  // deep Lawler children with expensive forced prefixes certify as long
  // as their reads stay local — no radius is charged for the prefix.
  //
  // Any violated condition sets *outcome = kEscalate and returns nullopt
  // with no verdict — in particular the masked exact solver never runs
  // the threshold-lifting eligibility retry, because an uncovered
  // terminal under a mask proves nothing. An escalating solve still
  // yields one certified fact, reported through `escalate_bound` when
  // non-null: a lower bound on the cost of EVERY tree in the subspace.
  // Any spanning tree's cost is at least the forced prefix plus the
  // largest pairwise terminal overlay distance, and each such distance
  // is at least min(masked distance, clip floor) — a connecting path
  // either stays inside the mask (≥ the masked distance) or escapes it
  // (≥ the clip floor). Lawler enumeration uses this to park
  // uncertified children in its heap by bound and only pay for mask
  // escalation if a child surfaces before k trees are emitted (see
  // top_k.cc).
  //
  // Caching: masked solves never touch the unmasked (generation-keyed)
  // half of the shortest-path cache — those entries describe the full
  // graph. Compacted masked solves (mask.compact set) share *local*
  // trees through the cache's mask-uid-keyed half instead: arrays are
  // mask-sized, so materializing them is cheap, and the uid pins both
  // the mask and the cost snapshot its view baked in. A served tree's
  // mask_min_clip can understate a fresh run's under a superset banned
  // set (see sp_cache.h) — certification is then conservative, never
  // unsound, and certified output is still bit-identical. The
  // uncompacted referee path keeps the original behavior — no caching
  // at all — and counts toward FastSolveStats::masked_bypasses.
  std::optional<SteinerTree> SolveKmbMasked(
      const SnapshotPin& pin, const std::vector<graph::NodeId>& terminals,
      const std::vector<graph::EdgeId>& forced,
      const std::vector<graph::EdgeId>& banned, const MaskView& mask,
      MaskedOutcome* outcome, double* escalate_bound = nullptr);
  std::optional<SteinerTree> SolveExactMasked(
      const SnapshotPin& pin, const std::vector<graph::NodeId>& terminals,
      const std::vector<graph::EdgeId>& forced,
      const std::vector<graph::EdgeId>& banned, const MaskView& mask,
      MaskedOutcome* outcome, double* escalate_bound = nullptr);

  // Lazily built, cached shard partition of the engine's topology (the
  // node/edge set is fixed for the engine's lifetime and re-costs never
  // move arcs, so one partition serves every snapshot generation).
  // Rebuilt only when `target_nodes` changes.
  std::shared_ptr<const ShardPartition> Shards(std::uint32_t target_nodes);

  // The current snapshot. Valid only while no mutator runs concurrently;
  // concurrent readers must hold a Pin instead.
  const CsrGraph& csr() const { return *csr_; }
  FastSolveStats stats() const;

 private:
  // Shared front half of RecostDelta/PreviewDelta: maps the deltas'
  // touched features through the (lazily built) postings index into
  // candidate_scratch_ (sorted, deduped, plus extra_edges). Returns
  // false when the delta is dense — candidates above half the snapshot —
  // and selective repricing would gain nothing.
  bool CollectDeltaCandidates(const graph::SearchGraph& graph,
                              const std::vector<graph::FeatureDelta>& deltas,
                              const std::vector<graph::EdgeId>& extra_edges);

  // Takes snapshot_mu_, and clones csr_ first when pins are outstanding
  // (copy-on-write: the old buffer stays alive under its holders'
  // shared_ptrs). Returns whether a clone happened — the caller must then
  // bump the cache generation wholesale instead of invalidating
  // selectively, because solves of the old snapshot may still be
  // populating the old generation.
  bool BeginMutation();

  // Shared bodies of the plain and masked solvers; `mask` == nullptr is
  // the unmasked path (then `outcome` is ignored and the engine's own
  // cache serves the solve; masked solves run uncached).
  std::optional<SteinerTree> SolveKmbImpl(
      const SnapshotPin& pin, const std::vector<graph::NodeId>& terminals,
      const std::vector<graph::EdgeId>& forced,
      const std::vector<graph::EdgeId>& banned, const MaskView* mask,
      MaskedOutcome* outcome, double* escalate_bound);
  std::optional<SteinerTree> SolveExactImpl(
      const SnapshotPin& pin, const std::vector<graph::NodeId>& terminals,
      const std::vector<graph::EdgeId>& forced,
      const std::vector<graph::EdgeId>& banned, const MaskView* mask,
      MaskedOutcome* outcome, double* escalate_bound);

  // COW under snapshot_mu_: holders of a SnapshotPin share this pointer.
  std::shared_ptr<CsrGraph> csr_;
  // Outstanding SnapshotPin count. Pin() increments under snapshot_mu_;
  // the last copy of a pin's csr handle decrements with release ordering
  // from its deleter. BeginMutation's acquire load of 0 is the
  // happens-before edge that makes the in-place (un-pinned) mutation
  // path safe — shared_ptr's use_count() is a relaxed load and cannot
  // order the writer after a reader's final unpin. Heap-allocated so a
  // pin outliving the engine decrements a still-live counter.
  std::shared_ptr<std::atomic<std::int64_t>> pins_ =
      std::make_shared<std::atomic<std::int64_t>>(0);
  mutable std::mutex snapshot_mu_;
  std::uint64_t generation_ = 0;
  std::unique_ptr<ShortestPathCache> cache_;  // null when caching disabled
  // Lazily built by RecostDelta; reset by InvalidateFeatureIndex.
  std::unique_ptr<FeatureEdgeIndex> feature_index_;
  // Scratch reused across RecostDelta calls.
  std::vector<graph::FeatureId> touched_scratch_;
  std::vector<graph::EdgeId> candidate_scratch_;
  std::vector<RepricedEdge> repriced_scratch_;
  // Cached shard partition (see Shards); guarded by snapshot_mu_.
  std::shared_ptr<const ShardPartition> shards_;
  std::uint32_t shard_target_ = 0;
};

// Test-only probe: one masked single-source Dijkstra through either the
// compacted (mask.compact set) or uncompacted path, projected to global
// node ids so the stress suite can assert the two are byte-equal —
// distances, predecessors, settled sets, tree edges, and mask_min_clip.
struct MaskedSpProbe {
  std::vector<double> dist;                // per global node; +inf outside
  std::vector<std::uint32_t> pred_node;    // global ids
  std::vector<graph::EdgeId> pred_edge;    // global edge ids
  std::vector<std::uint8_t> settled;       // per global node
  std::vector<graph::EdgeId> tree_edges;   // sorted unique global edges
  double mask_min_clip = 0.0;
  bool complete = false;
};
MaskedSpProbe ComputeMaskedSpTreeForTest(
    const CsrGraph& csr, const MaskView& mask, std::uint32_t source,
    const std::vector<graph::NodeId>& targets, bool stop_at_targets,
    const std::vector<graph::EdgeId>& forced,
    const std::vector<graph::EdgeId>& banned);

}  // namespace q::steiner

#endif  // Q_STEINER_FAST_SOLVER_H_
