#include "steiner/exact_solver.h"

#include <limits>
#include <queue>
#include <vector>

#include "util/status.h"

namespace q::steiner {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Backpointer for DP reconstruction.
struct Back {
  enum class Type : std::uint8_t { kNone, kBase, kMerge, kGrow };
  Type type = Type::kNone;
  std::uint32_t merge_subset = 0;   // for kMerge: S1 (other part is S\S1)
  std::uint32_t grow_pred = 0;      // for kGrow: predecessor super node
  graph::EdgeId grow_edge = graph::kInvalidEdge;
};

}  // namespace

std::optional<SteinerTree> SolveExactSteiner(const SteinerProblem& problem) {
  if (!problem.valid()) return std::nullopt;
  const auto& terminals = problem.terminals();
  const std::size_t n = problem.num_nodes();
  const std::size_t t = terminals.size();

  SteinerTree result;
  result.edges = problem.forced();
  result.cost = problem.base_cost();
  if (t <= 1) {
    // All terminals already coincide after contraction.
    result.Canonicalize();
    return result;
  }

  const std::uint32_t full = (1u << t) - 1;
  std::vector<std::vector<double>> dp(full + 1,
                                      std::vector<double>(n, kInf));
  std::vector<std::vector<Back>> back(full + 1, std::vector<Back>(n));

  for (std::size_t i = 0; i < t; ++i) {
    dp[1u << i][terminals[i]] = 0.0;
    back[1u << i][terminals[i]].type = Back::Type::kBase;
  }

  using Item = std::pair<double, std::uint32_t>;
  for (std::uint32_t subset = 1; subset <= full; ++subset) {
    // Merge step: combine two disjoint sub-forests rooted at the same node.
    for (std::uint32_t part = (subset - 1) & subset; part > 0;
         part = (part - 1) & subset) {
      std::uint32_t other = subset ^ part;
      if (part > other) continue;  // each unordered split once
      for (std::uint32_t v = 0; v < n; ++v) {
        if (dp[part][v] == kInf || dp[other][v] == kInf) continue;
        double candidate = dp[part][v] + dp[other][v];
        if (candidate < dp[subset][v]) {
          dp[subset][v] = candidate;
          back[subset][v].type = Back::Type::kMerge;
          back[subset][v].merge_subset = part;
        }
      }
    }
    // Grow step: Dijkstra seeded with the merge results.
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> queue;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (dp[subset][v] < kInf) queue.emplace(dp[subset][v], v);
    }
    while (!queue.empty()) {
      auto [d, v] = queue.top();
      queue.pop();
      if (d > dp[subset][v]) continue;
      for (const SteinerProblem::Arc& arc : problem.arcs(v)) {
        double next = d + arc.cost;
        if (next < dp[subset][arc.to]) {
          dp[subset][arc.to] = next;
          Back& b = back[subset][arc.to];
          b.type = Back::Type::kGrow;
          b.grow_pred = v;
          b.grow_edge = arc.original;
          queue.emplace(next, arc.to);
        }
      }
    }
  }

  std::uint32_t root = terminals[0];
  if (dp[full][root] == kInf) return std::nullopt;

  // Reconstruct edges by unwinding backpointers.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> stack;  // (S, v)
  stack.emplace_back(full, root);
  while (!stack.empty()) {
    auto [subset, v] = stack.back();
    stack.pop_back();
    const Back& b = back[subset][v];
    switch (b.type) {
      case Back::Type::kNone:
        Q_CHECK_MSG(false, "unreachable DP state in Steiner reconstruction");
        break;
      case Back::Type::kBase:
        break;
      case Back::Type::kGrow:
        result.edges.push_back(b.grow_edge);
        stack.emplace_back(subset, b.grow_pred);
        break;
      case Back::Type::kMerge:
        stack.emplace_back(b.merge_subset, v);
        stack.emplace_back(subset ^ b.merge_subset, v);
        break;
    }
  }

  result.cost += dp[full][root];
  result.Canonicalize();
  return result;
}

}  // namespace q::steiner
