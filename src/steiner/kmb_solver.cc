#include "steiner/kmb_solver.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace q::steiner {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct ShortestPaths {
  std::vector<double> dist;
  std::vector<std::uint32_t> pred_node;
  std::vector<graph::EdgeId> pred_edge;
};

ShortestPaths Dijkstra(const SteinerProblem& problem, std::uint32_t source) {
  std::size_t n = problem.num_nodes();
  ShortestPaths sp;
  sp.dist.assign(n, kInf);
  sp.pred_node.assign(n, 0);
  sp.pred_edge.assign(n, graph::kInvalidEdge);
  using Item = std::pair<double, std::uint32_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> queue;
  sp.dist[source] = 0.0;
  queue.emplace(0.0, source);
  while (!queue.empty()) {
    auto [d, v] = queue.top();
    queue.pop();
    if (d > sp.dist[v]) continue;
    for (const SteinerProblem::Arc& arc : problem.arcs(v)) {
      double next = d + arc.cost;
      if (next < sp.dist[arc.to]) {
        sp.dist[arc.to] = next;
        sp.pred_node[arc.to] = v;
        sp.pred_edge[arc.to] = arc.original;
        queue.emplace(next, arc.to);
      }
    }
  }
  return sp;
}

}  // namespace

std::optional<SteinerTree> SolveKmbSteiner(const SteinerProblem& problem) {
  if (!problem.valid()) return std::nullopt;
  const auto& terminals = problem.terminals();
  SteinerTree result;
  result.edges = problem.forced();
  result.cost = problem.base_cost();
  if (terminals.size() <= 1) {
    result.Canonicalize();
    return result;
  }

  // 1. Shortest paths from every terminal.
  std::vector<ShortestPaths> sp;
  sp.reserve(terminals.size());
  for (std::uint32_t t : terminals) sp.push_back(Dijkstra(problem, t));

  // 2. Prim MST over the terminal metric closure.
  std::size_t t = terminals.size();
  std::vector<bool> in_mst(t, false);
  std::vector<double> best(t, kInf);
  std::vector<std::size_t> best_from(t, 0);
  best[0] = 0.0;
  std::vector<std::pair<std::size_t, std::size_t>> closure_edges;
  for (std::size_t round = 0; round < t; ++round) {
    std::size_t pick = t;
    for (std::size_t i = 0; i < t; ++i) {
      if (!in_mst[i] && (pick == t || best[i] < best[pick])) pick = i;
    }
    if (pick == t || best[pick] == kInf) return std::nullopt;  // disconnected
    in_mst[pick] = true;
    if (pick != 0) closure_edges.emplace_back(best_from[pick], pick);
    for (std::size_t i = 0; i < t; ++i) {
      if (in_mst[i]) continue;
      double d = sp[pick].dist[terminals[i]];
      if (d < best[i]) {
        best[i] = d;
        best_from[i] = pick;
      }
    }
  }

  // 3. Expand closure edges into original-graph edges.
  std::unordered_set<graph::EdgeId> subgraph_edges;
  for (auto [a, b] : closure_edges) {
    // Walk b's super node back to terminal a along a's shortest-path tree.
    std::uint32_t v = terminals[b];
    while (v != terminals[a]) {
      graph::EdgeId e = sp[a].pred_edge[v];
      if (e == graph::kInvalidEdge) break;
      subgraph_edges.insert(e);
      v = sp[a].pred_node[v];
    }
  }

  // 4. MST of the induced subgraph (Kruskal), over super nodes.
  std::vector<graph::EdgeId> edge_list(subgraph_edges.begin(),
                                       subgraph_edges.end());
  // Recover per-edge cost and endpoints from the problem arcs: build a map
  // original edge -> (u, v, cost).
  struct EdgeInfo {
    std::uint32_t u, v;
    double cost;
  };
  std::unordered_map<graph::EdgeId, EdgeInfo> info;
  for (std::uint32_t v = 0; v < problem.num_nodes(); ++v) {
    for (const SteinerProblem::Arc& arc : problem.arcs(v)) {
      if (subgraph_edges.count(arc.original) > 0) {
        info[arc.original] = EdgeInfo{v, arc.to, arc.cost};
      }
    }
  }
  std::sort(edge_list.begin(), edge_list.end(),
            [&](graph::EdgeId a, graph::EdgeId b) {
              if (info[a].cost != info[b].cost) {
                return info[a].cost < info[b].cost;
              }
              return a < b;
            });
  std::unordered_map<std::uint32_t, std::uint32_t> parent;
  std::function<std::uint32_t(std::uint32_t)> find =
      [&](std::uint32_t x) -> std::uint32_t {
    auto it = parent.find(x);
    if (it == parent.end()) {
      parent[x] = x;
      return x;
    }
    if (it->second == x) return x;
    std::uint32_t r = find(it->second);
    parent[x] = r;
    return r;
  };
  // Adjacency of the pruned tree for leaf pruning.
  std::unordered_map<std::uint32_t, std::vector<graph::EdgeId>> adj;
  std::vector<graph::EdgeId> mst;
  for (graph::EdgeId e : edge_list) {
    std::uint32_t ru = find(info[e].u);
    std::uint32_t rv = find(info[e].v);
    if (ru == rv) continue;
    parent[ru] = rv;
    mst.push_back(e);
    adj[info[e].u].push_back(e);
    adj[info[e].v].push_back(e);
  }

  // 5. Iteratively prune non-terminal leaves.
  std::unordered_set<std::uint32_t> terminal_set(terminals.begin(),
                                                 terminals.end());
  std::unordered_set<graph::EdgeId> removed;
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [node, edges] : adj) {
      if (terminal_set.count(node) > 0) continue;
      std::size_t live = 0;
      graph::EdgeId last = graph::kInvalidEdge;
      for (graph::EdgeId e : edges) {
        if (removed.count(e) == 0) {
          ++live;
          last = e;
        }
      }
      if (live == 1) {
        removed.insert(last);
        changed = true;
      }
    }
  }

  for (graph::EdgeId e : mst) {
    if (removed.count(e) > 0) continue;
    result.edges.push_back(e);
    result.cost += info[e].cost;
  }
  result.Canonicalize();
  return result;
}

}  // namespace q::steiner
