#include "steiner/steiner_tree.h"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <unordered_set>

namespace q::steiner {

void SteinerTree::Canonicalize() {
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
}

bool TreeLess(const SteinerTree& a, const SteinerTree& b) {
  if (a.cost != b.cost) return a.cost < b.cost;
  return a.edges < b.edges;
}

graph::FeatureVec TreeFeatures(const graph::SearchGraph& graph,
                               const SteinerTree& tree) {
  graph::FeatureVec f;
  for (graph::EdgeId e : tree.edges) {
    const graph::EdgeView edge = graph.edge(e);
    if (edge.fixed_zero) continue;
    f.AddScaled(edge.features(), 1.0);
  }
  return f;
}

double TreeCost(const graph::SearchGraph& graph,
                const graph::WeightVector& weights,
                const SteinerTree& tree) {
  double cost = 0.0;
  for (graph::EdgeId e : tree.edges) cost += graph.EdgeCost(e, weights);
  return cost;
}

std::vector<graph::NodeId> TreeNodes(const graph::SearchGraph& graph,
                                     const SteinerTree& tree) {
  std::unordered_set<graph::NodeId> seen;
  std::vector<graph::NodeId> out;
  for (graph::EdgeId e : tree.edges) {
    const graph::EdgeView edge = graph.edge(e);
    for (graph::NodeId n : {edge.u, edge.v}) {
      if (seen.insert(n).second) out.push_back(n);
    }
  }
  return out;
}

bool IsValidSteinerTree(const graph::SearchGraph& graph,
                        const SteinerTree& tree,
                        const std::vector<graph::NodeId>& terminals) {
  if (tree.edges.empty()) {
    // Valid only when all terminals are the same node (or none).
    for (std::size_t i = 1; i < terminals.size(); ++i) {
      if (terminals[i] != terminals[0]) return false;
    }
    return true;
  }
  // Union-find over touched nodes; acyclic iff every union succeeds.
  std::unordered_map<graph::NodeId, graph::NodeId> parent;
  std::function<graph::NodeId(graph::NodeId)> find =
      [&](graph::NodeId x) -> graph::NodeId {
    auto it = parent.find(x);
    if (it == parent.end()) {
      parent[x] = x;
      return x;
    }
    if (it->second == x) return x;
    graph::NodeId root = find(it->second);
    parent[x] = root;
    return root;
  };
  for (graph::EdgeId e : tree.edges) {
    const graph::EdgeView edge = graph.edge(e);
    graph::NodeId ru = find(edge.u);
    graph::NodeId rv = find(edge.v);
    if (ru == rv) return false;  // cycle
    parent[ru] = rv;
  }
  // Connected: all touched nodes share one root.
  std::vector<graph::NodeId> touched;
  touched.reserve(parent.size());
  for (const auto& [node, unused] : parent) touched.push_back(node);
  graph::NodeId root = graph::kInvalidNode;
  for (graph::NodeId node : touched) {
    graph::NodeId r = find(node);
    if (root == graph::kInvalidNode) root = r;
    if (r != root) return false;
  }
  // All terminals present in the tree's component.
  for (graph::NodeId t : terminals) {
    auto it = parent.find(t);
    if (it == parent.end()) return false;
    if (find(t) != root) return false;
  }
  return true;
}

bool IsProperSteinerTree(const graph::SearchGraph& graph,
                         const SteinerTree& tree,
                         const std::vector<graph::NodeId>& terminals) {
  if (!IsValidSteinerTree(graph, tree, terminals)) return false;
  std::unordered_map<graph::NodeId, int> degree;
  for (graph::EdgeId e : tree.edges) {
    ++degree[graph.edge(e).u];
    ++degree[graph.edge(e).v];
  }
  std::unordered_set<graph::NodeId> terminal_set(terminals.begin(),
                                                 terminals.end());
  for (const auto& [node, d] : degree) {
    if (d == 1 && terminal_set.count(node) == 0) return false;
  }
  return true;
}

double SymmetricEdgeLoss(const SteinerTree& a, const SteinerTree& b) {
  // Both edge lists are canonical (sorted unique).
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t common = 0;
  while (i < a.edges.size() && j < b.edges.size()) {
    if (a.edges[i] == b.edges[j]) {
      ++common;
      ++i;
      ++j;
    } else if (a.edges[i] < b.edges[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return static_cast<double>((a.edges.size() - common) +
                             (b.edges.size() - common));
}

}  // namespace q::steiner
