#ifndef Q_STEINER_TOP_K_H_
#define Q_STEINER_TOP_K_H_

#include <cstddef>
#include <vector>

#include "graph/search_graph.h"
#include "steiner/steiner_tree.h"

namespace q::util {
class ThreadPool;
}  // namespace q::util

namespace q::steiner {

// Which single-tree solver substrate drives the Lawler enumeration.
//   kFast   — CSR snapshot built once per call, forced/banned edges applied
//             as overlays, per-terminal Dijkstra trees shared through a
//             ShortestPathCache, allocation-free scratch arenas (see
//             fast_solver.h and docs/query_engine.md).
//   kLegacy — rebuilds a contracted SteinerProblem per subproblem; kept as
//             the reference implementation and benchmark baseline.
enum class SteinerEngine { kFast = 0, kLegacy = 1 };

struct TopKConfig {
  // Number of trees to return (the paper's k).
  int k = 5;
  // Use the KMB approximation instead of the exact DP (for larger query
  // graphs, per Sec. 2.2). The enumeration is then heuristic too.
  bool approximate = false;
  // Query graphs with more than this many nodes switch to KMB even when
  // `approximate` is false.
  std::size_t approximate_above_nodes = 20000;
  // Safety bound on Lawler subproblem expansions.
  std::size_t max_subproblems = 20000;
  // Fast-path controls. Disabling the cache or the pool never changes the
  // output (the determinism contract of docs/query_engine.md); it only
  // changes how fast the same trees are produced.
  SteinerEngine engine = SteinerEngine::kFast;
  bool use_sp_cache = true;
  // When set, the independent child subproblems of each Lawler expansion
  // are solved on this pool and merged back in deterministic order.
  util::ThreadPool* pool = nullptr;
};

// K lowest-cost Steiner trees connecting `terminals`, best first
// (Sec. 2.2: each tree with the keyword nodes as leaves is a candidate
// join query). Uses Lawler partitioning: the best tree is solved, then
// the solution space is split into disjoint subspaces by forcing a prefix
// of its edges and banning the next one. Returns fewer than k trees when
// the space is exhausted or terminals are disconnected.
std::vector<SteinerTree> TopKSteinerTrees(
    const graph::SearchGraph& graph, const graph::WeightVector& weights,
    const std::vector<graph::NodeId>& terminals, const TopKConfig& config);

class FastSteinerEngine;

// Same enumeration, but served from a caller-owned CSR snapshot instead of
// building one per call (the RefreshEngine's batched-refresh substrate).
// `shared_engine` must have been built (or last Recost) from exactly this
// (graph, weights) pair; its shortest-path cache carries over between
// calls, which never changes output (any valid entry equals a fresh
// computation — the determinism contract of docs/query_engine.md). A null
// engine, or config.engine == kLegacy, falls back to the self-contained
// overload above.
std::vector<SteinerTree> TopKSteinerTrees(
    const graph::SearchGraph& graph, const graph::WeightVector& weights,
    const std::vector<graph::NodeId>& terminals, const TopKConfig& config,
    FastSteinerEngine* shared_engine);

}  // namespace q::steiner

#endif  // Q_STEINER_TOP_K_H_
