#ifndef Q_STEINER_TOP_K_H_
#define Q_STEINER_TOP_K_H_

#include <cstddef>
#include <vector>

#include "graph/search_graph.h"
#include "steiner/steiner_tree.h"

namespace q::steiner {

struct TopKConfig {
  // Number of trees to return (the paper's k).
  int k = 5;
  // Use the KMB approximation instead of the exact DP (for larger query
  // graphs, per Sec. 2.2). The enumeration is then heuristic too.
  bool approximate = false;
  // Query graphs with more than this many nodes switch to KMB even when
  // `approximate` is false.
  std::size_t approximate_above_nodes = 20000;
  // Safety bound on Lawler subproblem expansions.
  std::size_t max_subproblems = 20000;
};

// K lowest-cost Steiner trees connecting `terminals`, best first
// (Sec. 2.2: each tree with the keyword nodes as leaves is a candidate
// join query). Uses Lawler partitioning: the best tree is solved, then
// the solution space is split into disjoint subspaces by forcing a prefix
// of its edges and banning the next one. Returns fewer than k trees when
// the space is exhausted or terminals are disconnected.
std::vector<SteinerTree> TopKSteinerTrees(
    const graph::SearchGraph& graph, const graph::WeightVector& weights,
    const std::vector<graph::NodeId>& terminals, const TopKConfig& config);

}  // namespace q::steiner

#endif  // Q_STEINER_TOP_K_H_
