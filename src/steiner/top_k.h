#ifndef Q_STEINER_TOP_K_H_
#define Q_STEINER_TOP_K_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "graph/search_graph.h"
#include "steiner/steiner_tree.h"

namespace q::util {
class ThreadPool;
}  // namespace q::util

namespace q::steiner {

// Which single-tree solver substrate drives the Lawler enumeration.
//   kFast   — CSR snapshot built once per call, forced/banned edges applied
//             as overlays, per-terminal Dijkstra trees shared through a
//             ShortestPathCache, allocation-free scratch arenas (see
//             fast_solver.h and docs/query_engine.md).
//   kLegacy — rebuilds a contracted SteinerProblem per subproblem; kept as
//             the reference implementation and benchmark baseline.
enum class SteinerEngine { kFast = 0, kLegacy = 1 };

// Sharded terminal-local search (docs/architecture.md, "Memory layout and
// sharding"). When enabled on the fast engine, the graph is partitioned
// once into BFS-grown shards of about `target_shard_nodes` nodes, and
// every Lawler subproblem is solved over only the shards within a proven
// real-cost radius of the terminals. Each masked solve verifies the
// conditions under which its result is bit-identical to the unmasked one
// and escalates (doubling the radius, up to a whole-graph fallback) when
// verification fails — so enabling sharding NEVER changes the output,
// only the number of nodes each subproblem touches. Ignored by the
// legacy engine.
struct ShardedSearchConfig {
  bool enabled = false;
  // Shard granularity trades mask padding for escalation risk: a mask is
  // the union of whole shards touching the proof ball, so the shard size
  // bounds how much dead weight a masked solve carries beyond the ball
  // itself. 512 keeps a typical mask's per-node arrays (dist + parent +
  // heap slots) inside L2 even when the ball spans several shards —
  // masked solve cost then tracks the ball, not the catalog or the shard
  // grid. Certification depends only on the proof radius, so smaller
  // shards never change results; at worst a query pays an extra
  // escalation that coarser padding would have absorbed.
  std::uint32_t target_shard_nodes = 512;
  // Solve masked subproblems over the mask's dense local-id sub-CSR
  // (fast_solver.h, "Local-id mask compaction"): per-node state spans the
  // mask instead of the whole graph, which is what keeps masked solves
  // cache-resident on million-source catalogs. Bit-identical to the
  // uncompacted masked path by construction; disabling it selects that
  // path as a referee (bench_graph_scale --no-compact diffs the two).
  bool compact_local_ids = true;
};

struct TopKConfig {
  // Number of trees to return (the paper's k).
  int k = 5;
  // Use the KMB approximation instead of the exact DP (for larger query
  // graphs, per Sec. 2.2). The enumeration is then heuristic too.
  bool approximate = false;
  // Query graphs with more than this many nodes switch to KMB even when
  // `approximate` is false.
  std::size_t approximate_above_nodes = 20000;
  // Safety bound on Lawler subproblem expansions.
  std::size_t max_subproblems = 20000;
  // Fast-path controls. Disabling the cache or the pool never changes the
  // output (the determinism contract of docs/query_engine.md); it only
  // changes how fast the same trees are produced.
  SteinerEngine engine = SteinerEngine::kFast;
  bool use_sp_cache = true;
  // When set, the independent child subproblems of each Lawler expansion
  // are solved on this pool and merged back in deterministic order.
  util::ThreadPool* pool = nullptr;
  ShardedSearchConfig sharded;
};

// K lowest-cost Steiner trees connecting `terminals`, best first
// (Sec. 2.2: each tree with the keyword nodes as leaves is a candidate
// join query). Uses Lawler partitioning: the best tree is solved, then
// the solution space is split into disjoint subspaces by forcing a prefix
// of its edges and banning the next one. Returns fewer than k trees when
// the space is exhausted or terminals are disconnected.
std::vector<SteinerTree> TopKSteinerTrees(
    const graph::SearchGraph& graph, const graph::WeightVector& weights,
    const std::vector<graph::NodeId>& terminals, const TopKConfig& config);

class FastSteinerEngine;
struct SnapshotPin;

// Proof object letting a later weight delta be tested for relevance to
// this search's output without re-running it (the alpha-neighborhood gate
// of docs/query_engine.md). Emitted by TopKSteinerTrees when the
// enumeration ran the *exact* substrate to completion; `valid` stays false
// for KMB/approximate runs and for enumerations truncated by
// `max_subproblems`, whose output is not provably the k cheapest proper
// trees and therefore admits no safety argument.
//
// The certificate makes the following claim about the costs the search
// ran against (the baseline): any cost change confined to edges outside
// `edges` that (a) only increases costs, or (b) decreases them by a total
// magnitude strictly inside `gap`, produces a search (and downstream
// compile/union) output bit-identical to the baseline output. See
// "Relevance-scoped refresh" in docs/query_engine.md for the proof
// obligations; core::ClassifyDeltaRelevance applies the rule.
struct RelevanceCertificate {
  // True iff the enumeration's output is provably the k cheapest proper
  // trees under deterministic tie-breaking (exact solver, not truncated)
  // AND the run used at most half of max_subproblems — the 2x expansion
  // headroom keeps a delta-reshaped enumeration from hitting the cap
  // (the one cost-dependent mechanism knob) and truncating.
  bool valid = false;
  // Monotone per-view search counter, stamped by TopKView::RunSearch so
  // consumers can tell which search the certificate describes.
  std::uint64_t serial = 0;
  // Sorted, deduped: every edge of every returned tree, every edge
  // incident to a node some returned tree (or terminal) touches, and —
  // after TopKView augments it — every edge the ranked union's
  // schema-unification reads. A delta touching any of these edges can
  // change the output and must fall through to a real refresh.
  std::vector<graph::EdgeId> edges;
  // Slack: cost(k+1-th candidate) − cost(k-th returned tree), or +inf
  // when the enumeration exhausted the space (every proper tree is
  // already in the output). Lower-bounds how far any non-returned tree
  // sits above the returned set.
  double gap = std::numeric_limits<double>::infinity();

  // --- Structural half (streaming source onboarding) --------------------
  //
  // Everything below describes an alpha-neighborhood around the view's
  // first terminal, measured in the baseline query graph under the
  // baseline weights. A *structural* delta (new base nodes/edges from
  // RegisterSource / AddAssociations) attaches to the old graph at a set
  // of pre-existing "attachment" nodes; any candidate tree that uses new
  // topology must reach one of them from the anchor terminal over old
  // edges, so its cost is lower-bounded by the anchor distance to the
  // nearest attachment. core::ClassifyStructuralRelevance applies the
  // rule; TopKView::BuildSearchSnapshot fills these fields in.
  //
  // True iff the structural fields below were populated (exact search on
  // a journal-coherent snapshot). Stays false for approximate runs.
  bool structural_valid = false;
  // Cost of the k-th returned tree when the search returned exactly k
  // trees, +inf otherwise. With fewer than k answers any reachable new
  // tree could enter the top-k, so only attachment-free deltas may skip.
  double kth_cost = std::numeric_limits<double>::infinity();
  // Explored radius of the anchor ball: nodes with anchor distance
  // <= alpha_radius are listed in alpha_nodes; any node absent from
  // alpha_nodes is provably farther than alpha_radius from the anchor.
  double alpha_radius = 0.0;
  // Sorted node ids (base-graph id space — the query-graph copy preserves
  // base node ids) inside the anchor ball, with alpha_dist[i] holding the
  // exact baseline anchor distance of alpha_nodes[i].
  std::vector<graph::NodeId> alpha_nodes;
  std::vector<double> alpha_dist;
  // Fingerprint of the keyword->match expansion the query graph was built
  // from (query::KeywordMatchFingerprint). TF-IDF scores are corpus-wide,
  // so classification recomputes the fingerprint against the live text
  // index: equality proves a rebuilt query graph would be the old one
  // plus the new base nodes/edges only.
  std::uint64_t keyword_fingerprint = 0;
};

// Same enumeration, but served from a caller-owned CSR snapshot instead of
// building one per call (the RefreshEngine's batched-refresh substrate).
// `shared_engine` must have been built (or last Recost) from exactly this
// (graph, weights) pair; its shortest-path cache carries over between
// calls, which never changes output (any valid entry equals a fresh
// computation — the determinism contract of docs/query_engine.md). A null
// engine, or config.engine == kLegacy, falls back to the self-contained
// overload above. When `certificate` is non-null it is overwritten with
// this search's relevance certificate (valid only for untruncated exact
// runs; see RelevanceCertificate).
//
// The whole enumeration runs against ONE pinned CSR snapshot: `pin` when
// the caller provides one (the concurrent serving path pins before
// reading its weight snapshot, so search costs and weights are captured
// atomically), otherwise a pin taken once at entry. Either way a re-cost
// landing mid-enumeration cannot mix cost generations across subproblems
// of one search. A non-null `pin` requires a non-null `shared_engine` the
// pin was taken from.
std::vector<SteinerTree> TopKSteinerTrees(
    const graph::SearchGraph& graph, const graph::WeightVector& weights,
    const std::vector<graph::NodeId>& terminals, const TopKConfig& config,
    FastSteinerEngine* shared_engine,
    RelevanceCertificate* certificate = nullptr,
    const SnapshotPin* pin = nullptr);

}  // namespace q::steiner

#endif  // Q_STEINER_TOP_K_H_
