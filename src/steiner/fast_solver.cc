#include "steiner/fast_solver.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "steiner/shard.h"
#include "util/dary_heap.h"
#include "util/status.h"

namespace q::steiner {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

constexpr std::uint8_t kFree = 0;
constexpr std::uint8_t kBanned = 1;
constexpr std::uint8_t kForced = 2;

bool SortedIntersect(const std::vector<graph::EdgeId>& a,
                     const std::vector<graph::EdgeId>& b) {
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

// Union-find whose Reset is O(1): entries are lazily re-initialized via a
// version stamp, so a scratch arena can run one instance per subproblem
// without touching all n slots.
struct VersionedUf {
  std::vector<std::uint32_t> parent;
  std::vector<std::uint32_t> version;
  std::uint32_t cur = 0;

  void Begin(std::size_t n) {
    if (parent.size() < n) {
      parent.resize(n);
      version.resize(n, 0);
    }
    if (++cur == 0) {  // stamp wrap: invalidate everything once
      std::fill(version.begin(), version.end(), 0);
      cur = 1;
    }
  }

  std::uint32_t Find(std::uint32_t x) {
    if (version[x] != cur) {
      version[x] = cur;
      parent[x] = x;
      return x;
    }
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];  // touched nodes only link to touched
      x = parent[x];
    }
    return x;
  }

  // Precondition: ru and rv are distinct roots from Find this round.
  void Union(std::uint32_t ru, std::uint32_t rv) { parent[ru] = rv; }
};

// Non-singleton DP backpointer; singleton subsets reconstruct by walking
// the per-terminal shortest-path trees instead.
struct Back {
  enum class Type : std::uint8_t { kNone, kMerge, kGrow };
  Type type = Type::kNone;
  std::uint32_t merge_subset = 0;
  std::uint32_t grow_pred = 0;
  graph::EdgeId grow_edge = graph::kInvalidEdge;
};

template <typename T>
std::size_t VecBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

std::size_t SpTreeBytes(const SpTree& sp) {
  return VecBytes(sp.dist) + VecBytes(sp.pred_node) + VecBytes(sp.pred_edge) +
         VecBytes(sp.settled) + VecBytes(sp.tree_edges) + VecBytes(sp.touched);
}

// Per-thread arena: every vector below is reused across solves, so the
// steady-state kernel allocates only on cache-entry creation. A
// shrink-after-oversized-solve policy (NoteSolveExtent below) keeps one
// full-graph solve on a huge snapshot from pinning the high-water arrays
// for the thread's lifetime.
struct SolverScratch {
  util::DaryHeap heap;
  VersionedUf uf;          // forced-edge contraction
  VersionedUf kruskal_uf;  // runs on top of the contraction's roots
  std::vector<graph::EdgeId> forced_sorted;
  std::vector<graph::EdgeId> banned_sorted;
  std::vector<std::uint32_t> terminals;  // deduped, one per supernode
  // Local ids of `terminals` under the active compact mask view (only
  // meaningful during a compacted masked solve).
  std::vector<std::uint32_t> terminals_local;
  // All-zero between solves; OverlayGuard sets and restores them. The
  // flat arrays make the per-arc overlay test a single byte load.
  std::vector<std::uint8_t> edge_flag;  // kFree / kBanned / kForced
  std::vector<std::uint8_t> is_target;  // terminal markers for early stop
  // Local-id twin of is_target, sized to the mask; set and cleared by
  // AcquireSpTreesLocal (all-zero between solves).
  std::vector<std::uint8_t> is_target_local;

  std::vector<SpTree> sp_slots;  // holds fresh trees when cache is off/full
  std::vector<std::shared_ptr<const SpTree>> sp_refs;
  std::vector<const SpTree*> sp;

  // Prim over the terminal metric closure.
  std::vector<std::uint8_t> in_mst;
  std::vector<double> best;
  // t x t pairwise floor matrix for the boundary certificate's parked
  // lower bound (see CertifyPairwiseReads).
  std::vector<double> cert_floor;
  std::vector<std::size_t> best_from;
  std::vector<std::pair<std::size_t, std::size_t>> closure;

  // Closure-path expansion, Kruskal, and leaf pruning.
  std::vector<graph::EdgeId> collected;
  std::vector<graph::EdgeId> mst;
  std::vector<std::uint32_t> ep_u;  // super endpoint per mst edge
  std::vector<std::uint32_t> ep_v;
  std::vector<std::uint32_t> local_of;     // node -> local id
  std::vector<std::uint32_t> local_stamp;  // validity stamp for local_of
  std::uint32_t stamp = 0;
  std::vector<std::uint32_t> degree;
  std::vector<std::uint8_t> is_terminal_local;
  std::vector<std::uint32_t> inc_offset;
  std::vector<std::uint32_t> incidence;
  std::vector<std::uint32_t> leaf_queue;
  std::vector<std::uint8_t> removed;

  // Exact DP: eligible-subgraph mini CSR and flat (2^t) x n_e tables.
  std::vector<std::uint32_t> elig_nodes;  // ascending node id = mini id order
  // Mask-local id of each eligible node (compacted masked solves only;
  // parallel to elig_nodes — the DP reads local trees through it).
  std::vector<std::uint32_t> elig_local;
  std::vector<std::uint32_t> mini_offsets;
  std::vector<std::uint32_t> mini_head;
  std::vector<graph::EdgeId> mini_edge;
  std::vector<double> mini_cost;
  std::vector<std::uint32_t> mini_terms;
  std::vector<double> dp;
  std::vector<Back> back;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> rebuild_stack;

  // --- shrink-after-oversized-solve policy ------------------------------
  // A solve notes how many nodes it actually spanned (the mask size for
  // compacted masked solves, num_nodes otherwise). After a streak of
  // solves at most 1/4 of the retained capacity, the oversized arrays
  // are released down to the streak's peak need — the next big solve
  // pays one regrow, which is the right trade against every serving
  // thread pinning full-graph arrays forever after one hub query.
  static constexpr int kShrinkStreak = 16;
  static constexpr std::size_t kShrinkFactor = 4;
  static constexpr std::size_t kMinShrinkNodes = std::size_t{1} << 14;
  int small_streak = 0;
  std::size_t streak_peak_nodes = 0;

  // Only arrays whose size tracks the SOLVE extent participate in the
  // shrink policy. Global-domain arrays — the stamped union-finds, the
  // KMB remap (local_stamp/local_of), edge_flag, is_target — are indexed
  // by global node/edge id, so even a mask-compacted solve addresses them
  // at catalog size: shrinking them below num_nodes just forces an O(n)
  // regrow on the very next solve, which oscillates (regrow re-inflates
  // the capacity, re-arming the streak) and puts an O(catalog) term back
  // into every masked solve. They are lazily stamped, so their steady
  // cost per solve is O(touched) regardless of length; they stay sized to
  // the largest catalog served and are excluded from both the capacity
  // measure and the release.
  std::size_t CapacityNodes() const {
    std::size_t cap = heap.capacity_ids();
    for (const SpTree& slot : sp_slots) cap = std::max(cap, slot.dist.size());
    cap = std::max(cap, is_target_local.size());
    return cap;
  }

  // Reallocates extent-sized node arrays at `keep_nodes` and sheds the
  // per-solve work lists and DP tables wholesale (they regrow lazily,
  // re-zeroing as they do). Precondition: between solves —
  // edge_flag/is_target are all-zero and no SpTree slot is borrowed.
  void ReleaseOversized(std::size_t keep_nodes) {
    for (SpTree& slot : sp_slots) {
      if (slot.dist.size() > keep_nodes) slot = SpTree{};
    }
    if (heap.capacity_ids() > keep_nodes) heap.ShrinkTo(keep_nodes);
    if (is_target_local.size() > keep_nodes) {
      std::vector<std::uint8_t>(keep_nodes, 0).swap(is_target_local);
    }
    std::vector<graph::EdgeId>().swap(collected);
    std::vector<graph::EdgeId>().swap(mst);
    std::vector<std::uint32_t>().swap(ep_u);
    std::vector<std::uint32_t>().swap(ep_v);
    std::vector<std::uint8_t>().swap(is_terminal_local);
    std::vector<std::uint32_t>().swap(leaf_queue);
    std::vector<double>().swap(dp);
    std::vector<Back>().swap(back);
    std::vector<std::uint32_t>().swap(elig_nodes);
    std::vector<std::uint32_t>().swap(elig_local);
    std::vector<std::uint32_t>().swap(mini_offsets);
    std::vector<std::uint32_t>().swap(mini_head);
    std::vector<graph::EdgeId>().swap(mini_edge);
    std::vector<double>().swap(mini_cost);
    std::vector<std::uint32_t>().swap(incidence);
    std::vector<std::uint32_t>().swap(inc_offset);
    std::vector<std::uint32_t>().swap(degree);
    std::vector<std::uint8_t>().swap(removed);
  }

  void NoteSolveExtent(std::size_t extent_nodes) {
    const std::size_t cap = CapacityNodes();
    if (cap <= kMinShrinkNodes || extent_nodes > cap / kShrinkFactor) {
      small_streak = 0;
      streak_peak_nodes = 0;
      return;
    }
    streak_peak_nodes = std::max(streak_peak_nodes, extent_nodes);
    if (++small_streak < kShrinkStreak) return;
    ReleaseOversized(streak_peak_nodes);
    small_streak = 0;
    streak_peak_nodes = 0;
  }

  std::size_t FootprintBytes() const {
    std::size_t b = heap.MemoryBytes();
    for (const SpTree& slot : sp_slots) b += SpTreeBytes(slot);
    b += VecBytes(forced_sorted) + VecBytes(banned_sorted) +
         VecBytes(terminals) + VecBytes(terminals_local);
    b += VecBytes(edge_flag) + VecBytes(is_target) + VecBytes(is_target_local);
    b += VecBytes(uf.parent) + VecBytes(uf.version) +
         VecBytes(kruskal_uf.parent) + VecBytes(kruskal_uf.version);
    b += VecBytes(in_mst) + VecBytes(best) + VecBytes(cert_floor) +
         VecBytes(best_from) + VecBytes(closure);
    b += VecBytes(collected) + VecBytes(mst) + VecBytes(ep_u) + VecBytes(ep_v);
    b += VecBytes(local_of) + VecBytes(local_stamp) + VecBytes(degree) +
         VecBytes(is_terminal_local) + VecBytes(inc_offset) +
         VecBytes(incidence) + VecBytes(leaf_queue) + VecBytes(removed);
    b += VecBytes(elig_nodes) + VecBytes(elig_local) + VecBytes(mini_offsets) +
         VecBytes(mini_head) + VecBytes(mini_edge) + VecBytes(mini_cost) +
         VecBytes(mini_terms);
    b += VecBytes(dp) + VecBytes(back) + VecBytes(rebuild_stack);
    return b;
  }
};

// Feeds a solve's node extent into the scratch's shrink policy on every
// exit path. Construct BEFORE the OverlayGuard: destructors run in
// reverse order, so the guard restores the all-zero overlay invariant
// first and the release (which may reallocate those arrays) runs last.
struct ExtentGuard {
  SolverScratch& s;
  std::size_t nodes;
  ~ExtentGuard() { s.NoteSolveExtent(nodes); }
};

SolverScratch& GetScratch() {
  thread_local SolverScratch scratch;
  return scratch;
}

// Applies the forced/banned flags (and, where wanted, the terminal
// markers) to the scratch's flat arrays for the duration of one solve,
// restoring the all-zero invariant on every exit path.
class OverlayGuard {
 public:
  OverlayGuard(SolverScratch& s, const CsrGraph& csr) : s_(s) {
    if (s_.edge_flag.size() < csr.num_edges) {
      s_.edge_flag.resize(csr.num_edges, 0);
    }
    if (s_.is_target.size() < csr.num_nodes) {
      s_.is_target.resize(csr.num_nodes, 0);
    }
    for (graph::EdgeId e : s_.forced_sorted) s_.edge_flag[e] = kForced;
    for (graph::EdgeId e : s_.banned_sorted) s_.edge_flag[e] = kBanned;
    for (std::uint32_t t : s_.terminals) s_.is_target[t] = 1;
  }

  ~OverlayGuard() {
    for (graph::EdgeId e : s_.forced_sorted) s_.edge_flag[e] = kFree;
    for (graph::EdgeId e : s_.banned_sorted) s_.edge_flag[e] = kFree;
    for (std::uint32_t t : s_.terminals) s_.is_target[t] = 0;
  }

 private:
  SolverScratch& s_;
};

// Single-source Dijkstra under the overlay flags, stopping as soon as all
// `num_targets` marked targets are settled. Unsettled nodes are wiped back
// to (inf, invalid) so the output is a canonical prefix of the full run.
// A non-null `in_mask` restricts the search to the induced subgraph (arcs
// whose head is outside the mask are skipped); the masked solvers verify
// afterwards that every value they read lies in the radius the mask
// provably reproduces (see fast_solver.h).
void ComputeSpTree(const CsrGraph& csr,
                   const std::vector<std::uint8_t>& edge_flag,
                   const std::vector<std::uint8_t>& is_target,
                   std::size_t num_targets, bool stop_at_targets,
                   std::uint32_t source,
                   const std::vector<std::uint8_t>* in_mask,
                   util::DaryHeap& heap, SpTree* out) {
  const std::uint32_t n = csr.num_nodes;
  // Sparse reset: only entries named by the previous run's touched list
  // can differ from the defaults, so a reused SpTree resets in O(prior
  // neighborhood). Fresh (or grown) objects pay the full initialization
  // once, below.
  if (out->dist.size() < n) {
    out->dist.resize(n, kInf);
    out->pred_node.resize(n, graph::kInvalidNode);
    out->pred_edge.resize(n, graph::kInvalidEdge);
    out->settled.resize(n, 0);
  }
  for (std::uint32_t v : out->touched) {
    out->dist[v] = kInf;
    out->pred_node[v] = graph::kInvalidNode;
    out->pred_edge[v] = graph::kInvalidEdge;
    out->settled[v] = 0;
  }
  out->touched.clear();
  out->mask_min_clip = kInf;
  heap.Drain(n);
  out->dist[source] = 0.0;
  out->touched.push_back(source);
  heap.PushOrDecrease(source, 0.0);
  std::size_t remaining = num_targets;
  bool stopped_early = false;
  while (!heap.empty()) {
    auto [d, v] = heap.PopMin();
    out->settled[v] = 1;
    if (stop_at_targets && is_target[v] && --remaining == 0) {
      // Every terminal is settled; relaxations from v could only touch
      // nodes nothing downstream reads.
      stopped_early = !heap.empty();
      break;
    }
    const std::uint32_t end = csr.offsets[v + 1];
    for (std::uint32_t a = csr.offsets[v]; a < end; ++a) {
      graph::EdgeId e = csr.arc_edge[a];
      std::uint8_t flag = edge_flag[e];
      if (flag == kBanned) continue;
      std::uint32_t to = csr.arc_head[a];
      double next = d + (flag == kForced ? 0.0 : csr.arc_cost[a]);
      if (in_mask != nullptr && !(*in_mask)[to]) {
        // Clipped at the mask boundary: remember the cheapest declined
        // offer — it lower-bounds every path escaping the mask, which is
        // what lets the masked solvers certify their reads afterwards.
        if (next < out->mask_min_clip) out->mask_min_clip = next;
        continue;
      }
      double& dt = out->dist[to];
      // Strictly-improving updates only: the predecessor graph stays
      // acyclic even across 0-cost plateaus, and because the heap pops in
      // canonical (dist, id) order and arcs are scanned in fixed CSR
      // order, pred is the *first* arc achieving each node's final
      // distance under a canonical attempt order — a pure function of the
      // overlayed costs. The cache's reuse rule depends on exactly this
      // (see sp_cache.h).
      if (next < dt) {
        if (dt == kInf) out->touched.push_back(to);
        dt = next;
        out->pred_node[to] = v;
        out->pred_edge[to] = e;
        heap.PushOrDecrease(to, next);
      }
    }
  }
  out->complete = !stopped_early;
  // One pass over the touched set wipes offered-but-unsettled nodes back
  // to the defaults (so the stored arrays are a canonical prefix of the
  // full run), shrinks `touched` to the settled survivors, and collects
  // the predecessor edges.
  out->tree_edges.clear();
  std::size_t settled_count = 0;
  for (std::uint32_t v : out->touched) {
    if (!out->settled[v]) {
      out->dist[v] = kInf;
      out->pred_node[v] = graph::kInvalidNode;
      out->pred_edge[v] = graph::kInvalidEdge;
      continue;
    }
    out->touched[settled_count++] = v;
    if (out->pred_edge[v] != graph::kInvalidEdge) {
      out->tree_edges.push_back(out->pred_edge[v]);
    }
  }
  out->touched.resize(settled_count);
  std::sort(out->tree_edges.begin(), out->tree_edges.end());
  out->tree_edges.erase(
      std::unique(out->tree_edges.begin(), out->tree_edges.end()),
      out->tree_edges.end());
}

// Local-id twin of ComputeSpTree over a mask's compact sub-CSR (see
// shard.h): every per-node array spans the mask's L nodes instead of
// num_nodes and the heap drains at local capacity, which is what keeps
// masked Dijkstras cache-resident on million-source catalogs. Arcs whose
// head left the mask carry the kExternal sentinel and feed mask_min_clip
// exactly where the uncompacted scan would clip (banned arcs are skipped
// first, in the same order, so they never contribute a clip offer).
// Bit-identity argument: mask->nodes is ascending, so global->local is
// order-preserving and local (dist, id) tie order is isomorphic to the
// global canonical (dist, id) order; with per-node arc order preserved by
// the compact view, settle order, predecessor selection, the clipped
// offer set — hence every stored value and the clip floor — are
// byte-equal to the uncompacted masked run, merely re-indexed.
// dist/pred_node/settled/touched are local-indexed; pred_edge and
// tree_edges stay global edge ids.
void ComputeSpTreeLocal(const ShardMask& m,
                        const std::vector<std::uint8_t>& edge_flag,
                        const std::vector<std::uint8_t>& is_target_local,
                        std::size_t num_targets, bool stop_at_targets,
                        std::uint32_t source_local, util::DaryHeap& heap,
                        SpTree* out) {
  const std::uint32_t n = static_cast<std::uint32_t>(m.nodes.size());
  if (out->dist.size() < n) {
    out->dist.resize(n, kInf);
    out->pred_node.resize(n, graph::kInvalidNode);
    out->pred_edge.resize(n, graph::kInvalidEdge);
    out->settled.resize(n, 0);
  }
  // The sparse reset is index-space agnostic: whatever index space the
  // slot's previous run used, wiping its touched entries restores the
  // all-default state this run starts from.
  for (std::uint32_t v : out->touched) {
    out->dist[v] = kInf;
    out->pred_node[v] = graph::kInvalidNode;
    out->pred_edge[v] = graph::kInvalidEdge;
    out->settled[v] = 0;
  }
  out->touched.clear();
  out->mask_min_clip = kInf;
  heap.Drain(n);
  out->dist[source_local] = 0.0;
  out->touched.push_back(source_local);
  heap.PushOrDecrease(source_local, 0.0);
  std::size_t remaining = num_targets;
  bool stopped_early = false;
  while (!heap.empty()) {
    auto [d, v] = heap.PopMin();
    out->settled[v] = 1;
    if (stop_at_targets && is_target_local[v] && --remaining == 0) {
      stopped_early = !heap.empty();
      break;
    }
    const std::uint32_t end = m.local_offsets[v + 1];
    for (std::uint32_t a = m.local_offsets[v]; a < end; ++a) {
      graph::EdgeId e = m.local_arc_edge[a];
      std::uint8_t flag = edge_flag[e];
      if (flag == kBanned) continue;
      std::uint32_t to = m.local_arc_head[a];
      double next = d + (flag == kForced ? 0.0 : m.local_arc_cost[a]);
      if (to == ShardMask::kExternal) {
        if (next < out->mask_min_clip) out->mask_min_clip = next;
        continue;
      }
      double& dt = out->dist[to];
      if (next < dt) {
        if (dt == kInf) out->touched.push_back(to);
        dt = next;
        out->pred_node[to] = v;
        out->pred_edge[to] = e;
        heap.PushOrDecrease(to, next);
      }
    }
  }
  out->complete = !stopped_early;
  out->tree_edges.clear();
  std::size_t settled_count = 0;
  for (std::uint32_t v : out->touched) {
    if (!out->settled[v]) {
      out->dist[v] = kInf;
      out->pred_node[v] = graph::kInvalidNode;
      out->pred_edge[v] = graph::kInvalidEdge;
      continue;
    }
    out->touched[settled_count++] = v;
    if (out->pred_edge[v] != graph::kInvalidEdge) {
      out->tree_edges.push_back(out->pred_edge[v]);
    }
  }
  out->touched.resize(settled_count);
  std::sort(out->tree_edges.begin(), out->tree_edges.end());
  out->tree_edges.erase(
      std::unique(out->tree_edges.begin(), out->tree_edges.end()),
      out->tree_edges.end());
}

// Shared preamble of both solvers: sort the edit sets, reject infeasible
// subproblems, contract forced edges in the union-find, charge their cost,
// and dedup terminals to one representative per supernode. Returns false
// when the subproblem is infeasible.
bool PrepareSubproblem(const CsrGraph& csr,
                       const std::vector<graph::NodeId>& terminals,
                       const std::vector<graph::EdgeId>& forced,
                       const std::vector<graph::EdgeId>& banned,
                       SolverScratch& s, SteinerTree* result) {
  s.forced_sorted.assign(forced.begin(), forced.end());
  std::sort(s.forced_sorted.begin(), s.forced_sorted.end());
  s.banned_sorted.assign(banned.begin(), banned.end());
  std::sort(s.banned_sorted.begin(), s.banned_sorted.end());
  if (SortedIntersect(s.forced_sorted, s.banned_sorted)) return false;

  s.uf.Begin(csr.num_nodes);
  result->edges.assign(forced.begin(), forced.end());
  result->cost = 0.0;
  for (graph::EdgeId e : forced) {
    std::uint32_t ru = s.uf.Find(csr.edge_u[e]);
    std::uint32_t rv = s.uf.Find(csr.edge_v[e]);
    if (ru == rv) return false;  // forced edges form a cycle
    s.uf.Union(ru, rv);
    result->cost += csr.edge_cost[e];
  }

  s.terminals.clear();
  for (graph::NodeId t : terminals) {
    std::uint32_t root = s.uf.Find(t);
    bool seen = false;
    for (std::uint32_t kept : s.terminals) {
      if (s.uf.Find(kept) == root) {
        seen = true;
        break;
      }
    }
    if (!seen) s.terminals.push_back(t);
  }
  return true;
}

// Fills s.sp with one shortest-path tree per deduped terminal, shared
// through the cache. `full` requests complete (non-early-stopped) trees —
// the exact DP seeds its singleton slices from them. `cache_generation`
// is the generation captured by the solve's SnapshotPin: lookups and
// inserts keyed under it can only meet entries computed over the same
// pinned costs, even if a concurrent re-cost has already moved the cache
// to a newer generation.
void AcquireSpTrees(const CsrGraph& csr, ShortestPathCache* cache,
                    std::uint64_t cache_generation, SolverScratch& s,
                    bool full, const std::vector<std::uint8_t>* in_mask) {
  const std::size_t t = s.terminals.size();
  s.sp.clear();
  s.sp_refs.clear();
  if (s.sp_slots.size() < t) s.sp_slots.resize(t);
  for (std::size_t i = 0; i < t; ++i) {
    std::shared_ptr<const SpTree> ref;
    bool computed_in_slot = false;
    if (cache != nullptr) {
      ref = cache->Lookup(cache_generation, s.terminals[i], s.forced_sorted,
                          s.banned_sorted, csr.edge_cost, s.terminals, full);
      if (ref == nullptr && cache->HasRoom()) {
        // Miss: compute into the reusable scratch slot first, then decide
        // whether the tree is worth materializing as a shared entry. An
        // entry's arrays span all of num_nodes, so insertion costs O(n)
        // regardless of how little the search explored — on large graphs
        // an early-stopped tree touching a small neighborhood is cheaper
        // to recompute (sparse reset, no allocation) than to materialize.
        // Clean-overlay trees are the exception: the subset rule lets one
        // (F, B) = ({}, {}) entry serve most Lawler children, so those
        // always earn their footprint.
        ComputeSpTree(csr, s.edge_flag, s.is_target, t, !full, s.terminals[i],
                      in_mask, s.heap, &s.sp_slots[i]);
        computed_in_slot = true;
        const bool clean_overlay =
            s.forced_sorted.empty() && s.banned_sorted.empty();
        if (clean_overlay ||
            s.sp_slots[i].touched.size() * 4 >= csr.num_nodes) {
          // Steal the slot's arrays; the slot regrows on its next use,
          // which costs no more than the fresh allocation used to.
          auto fresh = std::make_shared<SpTree>(std::move(s.sp_slots[i]));
          s.sp_slots[i] = SpTree{};
          cache->Insert(cache_generation, s.terminals[i], s.forced_sorted,
                        s.banned_sorted, fresh);
          ref = std::move(fresh);
        }
      }
    }
    if (ref != nullptr) {
      s.sp.push_back(ref.get());
      s.sp_refs.push_back(std::move(ref));
    } else {
      // Cache disabled, full, or the miss stayed in scratch.
      if (!computed_in_slot) {
        ComputeSpTree(csr, s.edge_flag, s.is_target, t, !full, s.terminals[i],
                      in_mask, s.heap, &s.sp_slots[i]);
      }
      s.sp.push_back(&s.sp_slots[i]);
    }
  }
}

// Local-id twin of AcquireSpTrees over a compact mask view: fills s.sp
// with per-terminal trees whose arrays are local-indexed, shared through
// the cache's mask-uid-keyed local half. A uid names one immutable
// compact view, so entries can never be matched across masks, epochs, or
// enumerations. Reuse caveat (see sp_cache.h): a tree served under a
// superset banned set may carry a mask_min_clip computed before the
// extra ban removed a boundary offer — a floor at most the fresh one —
// so certification against it is conservative (extra escalation at
// worst), never unsound.
void AcquireSpTreesLocal(const CsrGraph& csr, const ShardMask& m,
                         ShortestPathCache* cache, SolverScratch& s,
                         bool full) {
  const std::size_t t = s.terminals.size();
  const std::size_t n = m.nodes.size();
  s.terminals_local.clear();
  for (std::uint32_t term : s.terminals) {
    s.terminals_local.push_back(m.local_of[term]);
  }
  if (s.is_target_local.size() < n) s.is_target_local.resize(n, 0);
  for (std::uint32_t lt : s.terminals_local) s.is_target_local[lt] = 1;
  s.sp.clear();
  s.sp_refs.clear();
  if (s.sp_slots.size() < t) s.sp_slots.resize(t);
  for (std::size_t i = 0; i < t; ++i) {
    std::shared_ptr<const SpTree> ref;
    bool computed_in_slot = false;
    if (cache != nullptr) {
      ref = cache->LookupLocal(m.mask_uid, s.terminals[i], s.forced_sorted,
                               s.banned_sorted, csr.edge_cost,
                               s.terminals_local, full);
      if (ref == nullptr) {
        ComputeSpTreeLocal(m, s.edge_flag, s.is_target_local, t, !full,
                           s.terminals_local[i], s.heap, &s.sp_slots[i]);
        computed_in_slot = true;
        // Materialize only clean-overlay trees. A ({}, {}) entry is
        // re-served every time the enumeration re-acquires this mask and
        // terminal, so it earns its footprint; an overlay tree can only
        // hit again on a compatible (F, B) recurrence, which Lawler
        // partitioning makes vanishingly rare — and the insert would
        // steal the pooled slot, forcing the next miss to reallocate and
        // refill O(L) arrays instead of sparse-resetting its touched
        // entries. Keeping overlay misses slot-resident is what holds the
        // per-solve cost at O(ball) as the catalog grows.
        //
        // The copy is rebuilt at the mask's local extent rather than
        // copied wholesale from the slot: a pooled slot keeps the high-
        // water arrays of every solve the thread ever ran (an unmasked
        // verify pass leaves them at catalog size), and a full copy of
        // that is an O(catalog) stall on the first acquire of every new
        // mask. The slot's invariant — every entry off the touched list
        // is at its (inf, invalid, 0) default — makes the right-sized
        // rebuild byte-identical for all local ids the cache can serve.
        // The capacity race is handled inside InsertLocal (wholesale
        // clear), so no HasRoom gate here.
        if (s.forced_sorted.empty() && s.banned_sorted.empty()) {
          const SpTree& slot = s.sp_slots[i];
          auto fresh = std::make_shared<SpTree>();
          fresh->dist.assign(n, kInf);
          fresh->pred_node.assign(n, graph::kInvalidNode);
          fresh->pred_edge.assign(n, graph::kInvalidEdge);
          fresh->settled.assign(n, 0);
          for (std::uint32_t v : slot.touched) {
            fresh->dist[v] = slot.dist[v];
            fresh->pred_node[v] = slot.pred_node[v];
            fresh->pred_edge[v] = slot.pred_edge[v];
            fresh->settled[v] = slot.settled[v];
          }
          fresh->touched = slot.touched;
          fresh->tree_edges = slot.tree_edges;
          fresh->complete = slot.complete;
          fresh->mask_min_clip = slot.mask_min_clip;
          cache->InsertLocal(m.mask_uid, s.terminals[i], s.forced_sorted,
                             s.banned_sorted, fresh);
          ref = std::move(fresh);
        }
      }
    }
    if (ref != nullptr) {
      s.sp.push_back(ref.get());
      s.sp_refs.push_back(std::move(ref));
    } else {
      if (!computed_in_slot) {
        ComputeSpTreeLocal(m, s.edge_flag, s.is_target_local, t, !full,
                           s.terminals_local[i], s.heap, &s.sp_slots[i]);
      }
      s.sp.push_back(&s.sp_slots[i]);
    }
  }
  // Restore the all-zero invariant now: nothing downstream reads the
  // local target marks, and the shrink policy may reallocate the array
  // between solves.
  for (std::uint32_t lt : s.terminals_local) s.is_target_local[lt] = 0;
}

// Boundary certificate shared by both masked solvers. A masked tree's
// settled prefix is bit-identical to the unmasked run's whenever the
// cheapest offer it clipped at the mask boundary strictly exceeds the
// largest distance the caller reads: any path escaping the mask costs at
// least the clipped offer, so it can neither improve nor tie — and hence
// never reorder, re-predecessor, or newly settle — anything at or below
// the read horizon (induction over the canonical (dist, id) settle
// order; the first diverging node's predecessor would have had to reach
// it through a clipped arc). The KMB path reads pairwise terminal
// distances and predecessor chains below them, so its horizon is
// max_j dist[t_j] per tree. A terminal unreachable within the mask
// certifies only when nothing was clipped at all — then the mask
// exhausted the component and the infeasible verdict is exact.
// `term_idx` holds the terminals in whatever index space s.sp uses —
// s.terminals for global/uncompacted trees, s.terminals_local for
// compacted ones — so the certificate itself is index-space agnostic.
MaskedOutcome CertifyPairwiseReads(SolverScratch& s,
                                   const std::vector<std::uint32_t>& term_idx,
                                   double* overlay_lower_bound) {
  const std::size_t t = s.terminals.size();
  MaskedOutcome verdict = MaskedOutcome::kOk;
  // Certified lower bound on the subspace's overlay tree cost, valid even
  // when certification fails. Per pair, a connecting path either stays
  // inside the mask (costing at least the masked distance) or escapes
  // through a clipped arc (costing at least the clip floor), so
  // min(dist, clip) lower-bounds the true pairwise overlay distance. Any
  // tree spanning the terminals pays at least the largest pairwise floor
  // beyond its forced prefix, which is what lets an escalating solve
  // still park its subspace in the enumeration heap by bound (see
  // fast_solver.h).
  double pairwise_lb = 0.0;
  s.cert_floor.assign(t * t, 0.0);
  for (std::size_t i = 0; i < t; ++i) {
    const SpTree& sp = *s.sp[i];
    double max_read = 0.0;
    for (std::size_t j = 0; j < t; ++j) {
      double d = sp.dist[term_idx[j]];
      max_read = std::max(max_read, d);
      const double floor = std::min(d, sp.mask_min_clip);
      pairwise_lb = std::max(pairwise_lb, floor);
      s.cert_floor[i * t + j] = floor;
    }
    if (max_read == kInf) {
      if (sp.mask_min_clip < kInf) verdict = MaskedOutcome::kEscalate;
    } else if (!(sp.mask_min_clip > max_read)) {
      verdict = MaskedOutcome::kEscalate;
    }
  }
  // Triple strengthening: for any three terminals, each tree edge lies on
  // at most two of their three pairwise tree paths (the edge splits the
  // triple 1-vs-2 or 0-vs-3), so the tree costs at least half the sum of
  // the three pairwise distances — and hence at least half the sum of
  // their floors. With near-equal floors this beats the single-pair bound
  // by up to 1.5x, which is what keeps bound-parked Lawler children from
  // surfacing (and being re-solved) needlessly. Only computed when the
  // bound will actually be used; O(t^3) over the handful of terminals.
  if (overlay_lower_bound != nullptr) {
    if (verdict != MaskedOutcome::kOk && t >= 3 && pairwise_lb < kInf) {
      // Both directional floors bound the same true distance; keep the
      // tighter (masks clip different arcs per source terminal).
      for (std::size_t i = 0; i < t; ++i) {
        for (std::size_t j = i + 1; j < t; ++j) {
          const double f =
              std::max(s.cert_floor[i * t + j], s.cert_floor[j * t + i]);
          s.cert_floor[i * t + j] = f;
          s.cert_floor[j * t + i] = f;
        }
      }
      for (std::size_t i = 0; i < t; ++i) {
        for (std::size_t j = i + 1; j < t; ++j) {
          const double fij = s.cert_floor[i * t + j];
          for (std::size_t k = j + 1; k < t; ++k) {
            const double triple = 0.5 * (fij + s.cert_floor[i * t + k] +
                                         s.cert_floor[j * t + k]);
            pairwise_lb = std::max(pairwise_lb, triple);
          }
        }
      }
    }
    *overlay_lower_bound = pairwise_lb;
  }
  return verdict;
}

// Converts an overlay-space pairwise lower bound into a subspace tree
// cost bound: forced prefix plus overlay floor, shaved by a relative
// slack so float summation-order differences can never push the bound
// above a tree cost it provably undercuts in exact arithmetic.
double SubspaceCostBound(double forced_cost, double overlay_lb) {
  if (overlay_lb == kInf) return kInf;
  double bound = forced_cost + overlay_lb;
  return std::max(0.0, bound - (bound * 1e-12 + 1e-12));
}

// Picks the compact local-id view for a masked solve, or null to run the
// uncompacted referee path. The view must exist, be built (covers_all
// masks skip BuildCompact), span the pinned snapshot's node count, and
// contain every deduped terminal — hand-built test masks may omit one,
// which the uncompacted path tolerates by construction.
const ShardMask* ResolveCompact(const MaskView* mask, const CsrGraph& csr,
                                const SolverScratch& s) {
  if (mask == nullptr || mask->compact == nullptr) return nullptr;
  const ShardMask& m = *mask->compact;
  if (!m.HasCompact() || m.local_of.size() != csr.num_nodes) return nullptr;
  for (std::uint32_t term : s.terminals) {
    if (m.local_of[term] == ShardMask::kExternal) return nullptr;
  }
  return &m;
}

// KMB steps 2-5 over the trees in s.sp. Expects PrepareSubproblem done, an
// OverlayGuard active, and t >= 2 deduped terminals; `result` carries the
// forced prefix and base cost. `sp_terms` names the terminals in the
// trees' own index space (local ids for compacted masked solves) — only
// reads of sp.dist/pred_node go through it; collected pred_edge values
// are global edge ids in either space, so everything from Kruskal on is
// index-space independent. Safe to call concurrently (cache is
// synchronized, scratch is per-thread).
std::optional<SteinerTree> KmbFromTrees(const CsrGraph& csr, SolverScratch& s,
                                        const std::vector<std::uint32_t>& sp_terms,
                                        SteinerTree result) {
  const std::size_t t = s.terminals.size();

  // 2. Prim MST over the terminal metric closure.
  s.in_mst.assign(t, 0);
  s.best.assign(t, kInf);
  s.best_from.assign(t, 0);
  s.best[0] = 0.0;
  s.closure.clear();
  for (std::size_t round = 0; round < t; ++round) {
    std::size_t pick = t;
    for (std::size_t i = 0; i < t; ++i) {
      if (!s.in_mst[i] && (pick == t || s.best[i] < s.best[pick])) pick = i;
    }
    if (pick == t || s.best[pick] == kInf) return std::nullopt;
    s.in_mst[pick] = 1;
    if (pick != 0) s.closure.emplace_back(s.best_from[pick], pick);
    const SpTree& sp = *s.sp[pick];
    for (std::size_t i = 0; i < t; ++i) {
      if (s.in_mst[i]) continue;
      double d = sp.dist[sp_terms[i]];
      if (d < s.best[i]) {
        s.best[i] = d;
        s.best_from[i] = pick;
      }
    }
  }

  // 3. Expand closure edges into original-graph edges along the cached
  // predecessor trees (forced edges are already part of the result).
  s.collected.clear();
  for (auto [a, b] : s.closure) {
    std::uint32_t v = sp_terms[b];
    const std::uint32_t src = sp_terms[a];
    const SpTree& sp = *s.sp[a];
    while (v != src) {
      graph::EdgeId e = sp.pred_edge[v];
      if (e == graph::kInvalidEdge) break;
      if (s.edge_flag[e] != kForced) s.collected.push_back(e);
      v = sp.pred_node[v];
    }
  }
  std::sort(s.collected.begin(), s.collected.end());
  s.collected.erase(std::unique(s.collected.begin(), s.collected.end()),
                    s.collected.end());

  // 4. Kruskal MST of the induced subgraph, in supernode space.
  std::sort(s.collected.begin(), s.collected.end(),
            [&](graph::EdgeId a, graph::EdgeId b) {
              if (csr.edge_cost[a] != csr.edge_cost[b]) {
                return csr.edge_cost[a] < csr.edge_cost[b];
              }
              return a < b;
            });
  s.kruskal_uf.Begin(csr.num_nodes);
  s.mst.clear();
  s.ep_u.clear();
  s.ep_v.clear();
  for (graph::EdgeId e : s.collected) {
    std::uint32_t su = s.uf.Find(csr.edge_u[e]);
    std::uint32_t sv = s.uf.Find(csr.edge_v[e]);
    std::uint32_t ru = s.kruskal_uf.Find(su);
    std::uint32_t rv = s.kruskal_uf.Find(sv);
    if (ru == rv) continue;
    s.kruskal_uf.Union(ru, rv);
    s.mst.push_back(e);
    s.ep_u.push_back(su);
    s.ep_v.push_back(sv);
  }

  // 5. Iteratively prune non-terminal leaves (in supernode space).
  if (++s.stamp == 0) {
    std::fill(s.local_stamp.begin(), s.local_stamp.end(), 0);
    s.stamp = 1;
  }
  if (s.local_stamp.size() < csr.num_nodes) {
    s.local_stamp.resize(csr.num_nodes, 0);
    s.local_of.resize(csr.num_nodes);
  }
  std::uint32_t num_local = 0;
  auto local_id = [&](std::uint32_t super) {
    if (s.local_stamp[super] != s.stamp) {
      s.local_stamp[super] = s.stamp;
      s.local_of[super] = num_local++;
    }
    return s.local_of[super];
  };
  std::size_t num_mst = s.mst.size();
  s.degree.clear();
  for (std::size_t i = 0; i < num_mst; ++i) {
    std::uint32_t lu = local_id(s.ep_u[i]);
    std::uint32_t lv = local_id(s.ep_v[i]);
    s.ep_u[i] = lu;
    s.ep_v[i] = lv;
    if (s.degree.size() < num_local) s.degree.resize(num_local, 0);
    ++s.degree[lu];
    ++s.degree[lv];
  }
  s.is_terminal_local.assign(num_local, 0);
  for (std::uint32_t term : s.terminals) {
    std::uint32_t super = s.uf.Find(term);
    if (s.local_stamp[super] == s.stamp) {
      s.is_terminal_local[s.local_of[super]] = 1;
    }
  }
  // Flat incidence lists.
  s.inc_offset.assign(num_local + 1, 0);
  for (std::uint32_t l = 0; l < num_local; ++l) {
    s.inc_offset[l + 1] = s.inc_offset[l] + s.degree[l];
  }
  s.incidence.resize(2 * num_mst);
  {
    std::vector<std::uint32_t>& cursor = s.leaf_queue;  // reuse as cursor
    cursor.assign(s.inc_offset.begin(), s.inc_offset.end() - 1);
    for (std::size_t i = 0; i < num_mst; ++i) {
      s.incidence[cursor[s.ep_u[i]]++] = static_cast<std::uint32_t>(i);
      s.incidence[cursor[s.ep_v[i]]++] = static_cast<std::uint32_t>(i);
    }
  }
  s.removed.assign(num_mst, 0);
  s.leaf_queue.clear();
  for (std::uint32_t l = 0; l < num_local; ++l) {
    if (s.degree[l] == 1 && !s.is_terminal_local[l]) s.leaf_queue.push_back(l);
  }
  while (!s.leaf_queue.empty()) {
    std::uint32_t l = s.leaf_queue.back();
    s.leaf_queue.pop_back();
    if (s.degree[l] != 1) continue;  // already pruned below 1
    for (std::uint32_t a = s.inc_offset[l]; a < s.inc_offset[l + 1]; ++a) {
      std::uint32_t i = s.incidence[a];
      if (s.removed[i]) continue;
      s.removed[i] = 1;
      std::uint32_t other = s.ep_u[i] == l ? s.ep_v[i] : s.ep_u[i];
      --s.degree[l];
      --s.degree[other];
      if (s.degree[other] == 1 && !s.is_terminal_local[other]) {
        s.leaf_queue.push_back(other);
      }
      break;
    }
  }

  for (std::size_t i = 0; i < num_mst; ++i) {
    if (s.removed[i]) continue;
    result.edges.push_back(s.mst[i]);
    result.cost += csr.edge_cost[s.mst[i]];
  }
  result.Canonicalize();
  return result;
}

}  // namespace

FastSteinerEngine::FastSteinerEngine(const graph::SearchGraph& graph,
                                     const graph::WeightVector& weights,
                                     bool use_cache)
    : csr_(std::make_shared<CsrGraph>(CsrGraph::Build(graph, weights))) {
  if (use_cache) cache_ = std::make_unique<ShortestPathCache>();
}

FastSteinerEngine::SnapshotPin FastSteinerEngine::Pin() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  SnapshotPin pin;
  // The handle owns a fresh control block whose deleter both keeps the
  // pinned CsrGraph alive (`keep`) and retires the pin with a release
  // decrement — the edge BeginMutation's acquire load pairs with.
  pins_->fetch_add(1, std::memory_order_relaxed);
  pin.csr = std::shared_ptr<const CsrGraph>(
      csr_.get(), [keep = csr_, pins = pins_](const CsrGraph*) {
        pins->fetch_sub(1, std::memory_order_release);
      });
  pin.generation = generation_;
  pin.cache_generation = cache_ != nullptr ? cache_->generation() : 0;
  return pin;
}

bool FastSteinerEngine::BeginMutation() {
  // Caller holds snapshot_mu_, so no new pin can appear mid-mutation;
  // outstanding pins only drain. Observing zero with acquire ordering
  // means every pinned reader's accesses happen-before this mutation
  // (release decrement in the pin deleter), so patching in place is
  // safe. Any live pin — even one on an already-replaced snapshot —
  // forces a clone so the pinned holders keep reading frozen costs.
  if (pins_->load(std::memory_order_acquire) > 0) {
    csr_ = std::make_shared<CsrGraph>(*csr_);
    return true;
  }
  return false;
}

void FastSteinerEngine::Recost(const graph::SearchGraph& graph,
                               const graph::WeightVector& weights) {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  BeginMutation();
  csr_->Recost(graph, weights);
  ++generation_;
  if (cache_ != nullptr) cache_->BumpGeneration();
}

bool FastSteinerEngine::CollectDeltaCandidates(
    const graph::SearchGraph& graph,
    const std::vector<graph::FeatureDelta>& deltas,
    const std::vector<graph::EdgeId>& extra_edges) {
  touched_scratch_.clear();
  for (const graph::FeatureDelta& d : deltas) {
    touched_scratch_.push_back(d.id);
  }
  std::sort(touched_scratch_.begin(), touched_scratch_.end());
  touched_scratch_.erase(
      std::unique(touched_scratch_.begin(), touched_scratch_.end()),
      touched_scratch_.end());

  candidate_scratch_.clear();
  if (!touched_scratch_.empty()) {
    if (feature_index_ == nullptr) {
      feature_index_ = std::make_unique<FeatureEdgeIndex>(
          FeatureEdgeIndex::Build(graph));
    }
    feature_index_->CollectEdges(touched_scratch_, &candidate_scratch_);
  }
  // Edges whose FeatureVec itself changed must be repriced regardless of
  // what the (possibly stale-for-them) postings said.
  candidate_scratch_.insert(candidate_scratch_.end(), extra_edges.begin(),
                            extra_edges.end());
  std::sort(candidate_scratch_.begin(), candidate_scratch_.end());
  candidate_scratch_.erase(
      std::unique(candidate_scratch_.begin(), candidate_scratch_.end()),
      candidate_scratch_.end());

  // Dense deltas gain nothing over a full pass but still pay the cache
  // scan; hand them back to Recost.
  return candidate_scratch_.size() <= csr_->num_edges / 2;
}

FastSteinerEngine::RecostDeltaOutcome FastSteinerEngine::RecostDelta(
    const graph::SearchGraph& graph, const graph::WeightVector& weights,
    const std::vector<graph::FeatureDelta>& deltas,
    const std::vector<graph::EdgeId>& extra_edges) {
  RecostDeltaOutcome outcome;
  bool sparse = CollectDeltaCandidates(graph, deltas, extra_edges);
  outcome.candidate_edges = candidate_scratch_.size();
  if (!sparse) {
    return outcome;  // applied == false
  }
  outcome.applied = true;

  std::lock_guard<std::mutex> lock(snapshot_mu_);
  const bool cloned = BeginMutation();
  repriced_scratch_.clear();
  csr_->RecostEdges(graph, weights, candidate_scratch_, &repriced_scratch_);
  outcome.edges_repriced = repriced_scratch_.size();
  if (repriced_scratch_.empty()) {
    // Nothing moved: the snapshot (and any cached tree) is bitwise
    // unchanged, so neither generation advances. (A defensive clone from
    // BeginMutation is then byte-identical to the pinned original.)
    return outcome;
  }
  ++generation_;
  if (cache_ != nullptr) {
    if (cloned) {
      // Pinned solves of the old snapshot may still be populating the
      // current cache generation; selective invalidation re-judges those
      // entries under costs they were never computed for. Move to a
      // fresh generation instead — old-generation traffic stays coherent
      // under its own keys, new solves start cold.
      outcome.cache_entries_dropped = cache_->size();
      cache_->BumpGeneration();
    } else {
      cache_->InvalidateRepriced(repriced_scratch_,
                                 &outcome.cache_entries_retained,
                                 &outcome.cache_entries_dropped);
    }
  }
  return outcome;
}

bool FastSteinerEngine::PreviewDelta(
    const graph::SearchGraph& graph, const graph::WeightVector& weights,
    const std::vector<graph::FeatureDelta>& deltas,
    std::vector<RepricedEdge>* repriced) {
  // Shares the collection (and its dense-delta threshold) with
  // RecostDelta, so a declined preview and a declined re-cost classify
  // the same deltas. A gate fall-through re-collects in the subsequent
  // RecostDelta; that duplicate walk is bounded by the candidate count
  // and dwarfed by the search the fall-through implies.
  if (!CollectDeltaCandidates(graph, deltas, /*extra_edges=*/{})) {
    return false;
  }
  csr_->PreviewRecostEdges(graph, weights, candidate_scratch_, repriced);
  return true;
}

FastSolveStats FastSteinerEngine::stats() const {
  FastSolveStats st;
  if (cache_ != nullptr) {
    st.sp_cache_hits = cache_->hits();
    st.sp_cache_misses = cache_->misses();
    st.sp_cache_entries = cache_->size();
    st.sp_local_hits = cache_->local_hits();
    st.sp_local_misses = cache_->local_misses();
    st.sp_local_entries = cache_->local_size();
    st.masked_bypasses = cache_->masked_bypasses();
  }
  return st;
}

std::optional<SteinerTree> FastSteinerEngine::SolveKmb(
    const std::vector<graph::NodeId>& terminals,
    const std::vector<graph::EdgeId>& forced,
    const std::vector<graph::EdgeId>& banned) {
  // Pin the snapshot for the whole solve: a concurrent re-cost
  // copies-on-write, so the pinned CSR stays bitwise frozen and the cache
  // traffic stays keyed under the pinned generation.
  return SolveKmb(Pin(), terminals, forced, banned);
}

std::optional<SteinerTree> FastSteinerEngine::SolveKmb(
    const SnapshotPin& pin, const std::vector<graph::NodeId>& terminals,
    const std::vector<graph::EdgeId>& forced,
    const std::vector<graph::EdgeId>& banned) {
  return SolveKmbImpl(pin, terminals, forced, banned, /*mask=*/nullptr,
                      /*outcome=*/nullptr, /*escalate_bound=*/nullptr);
}

std::optional<SteinerTree> FastSteinerEngine::SolveKmbMasked(
    const SnapshotPin& pin, const std::vector<graph::NodeId>& terminals,
    const std::vector<graph::EdgeId>& forced,
    const std::vector<graph::EdgeId>& banned, const MaskView& mask,
    MaskedOutcome* outcome, double* escalate_bound) {
  return SolveKmbImpl(pin, terminals, forced, banned, &mask, outcome,
                      escalate_bound);
}

std::optional<SteinerTree> FastSteinerEngine::SolveExactMasked(
    const SnapshotPin& pin, const std::vector<graph::NodeId>& terminals,
    const std::vector<graph::EdgeId>& forced,
    const std::vector<graph::EdgeId>& banned, const MaskView& mask,
    MaskedOutcome* outcome, double* escalate_bound) {
  return SolveExactImpl(pin, terminals, forced, banned, &mask, outcome,
                        escalate_bound);
}

std::shared_ptr<const ShardPartition> FastSteinerEngine::Shards(
    std::uint32_t target_nodes) {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  if (shards_ == nullptr || shard_target_ != target_nodes) {
    shards_ = std::make_shared<const ShardPartition>(
        ShardPartition::Build(*csr_, target_nodes));
    shard_target_ = target_nodes;
  }
  return shards_;
}

std::optional<SteinerTree> FastSteinerEngine::SolveKmbImpl(
    const SnapshotPin& pin, const std::vector<graph::NodeId>& terminals,
    const std::vector<graph::EdgeId>& forced,
    const std::vector<graph::EdgeId>& banned, const MaskView* mask,
    MaskedOutcome* outcome, double* escalate_bound) {
  if (outcome != nullptr) *outcome = MaskedOutcome::kOk;
  const CsrGraph& csr = *pin.csr;
  SolverScratch& s = GetScratch();
  SteinerTree result;
  if (!PrepareSubproblem(csr, terminals, forced, banned, s, &result)) {
    return std::nullopt;
  }
  if (s.terminals.size() <= 1) {
    result.Canonicalize();
    return result;
  }
  const ShardMask* compact = ResolveCompact(mask, csr, s);
  // Before the overlay guard: destructors run in reverse order, so the
  // guard restores the all-zero invariant before a shrink may reallocate.
  ExtentGuard extent{
      s, compact != nullptr ? compact->nodes.size() : csr.num_nodes};
  OverlayGuard overlay(s, csr);
  if (compact != nullptr) {
    AcquireSpTreesLocal(csr, *compact, cache_.get(), s, /*full=*/false);
  } else {
    if (mask != nullptr && cache_ != nullptr) {
      cache_->NoteMaskedBypass(s.terminals.size());
    }
    // Uncompacted masked solves (the referee path) run uncached: their
    // Dijkstras stop inside the mask, so recomputing them beats
    // materializing graph-spanning cache copies.
    ShortestPathCache* cache = mask != nullptr ? nullptr : cache_.get();
    AcquireSpTrees(csr, cache, pin.cache_generation, s, /*full=*/false,
                   mask != nullptr ? mask->in_mask : nullptr);
  }
  const std::vector<std::uint32_t>& sp_terms =
      compact != nullptr ? s.terminals_local : s.terminals;
  if (mask != nullptr) {
    // Every value KMB reads must sit strictly below the clipped-offer
    // horizon, or the masked trees are not certified prefixes of the
    // full runs. No verdict otherwise — but the clip floor still bounds
    // the subspace cost from below, which the caller may keep.
    double overlay_lb = 0.0;
    MaskedOutcome verdict = CertifyPairwiseReads(s, sp_terms, &overlay_lb);
    if (verdict != MaskedOutcome::kOk) {
      *outcome = verdict;
      if (escalate_bound != nullptr) {
        *escalate_bound = SubspaceCostBound(result.cost, overlay_lb);
      }
      return std::nullopt;
    }
  }
  return KmbFromTrees(csr, s, sp_terms, std::move(result));
}

std::optional<SteinerTree> FastSteinerEngine::SolveExact(
    const std::vector<graph::NodeId>& terminals,
    const std::vector<graph::EdgeId>& forced,
    const std::vector<graph::EdgeId>& banned) {
  // Same pinning rule as SolveKmb.
  return SolveExact(Pin(), terminals, forced, banned);
}

std::optional<SteinerTree> FastSteinerEngine::SolveExact(
    const SnapshotPin& pin, const std::vector<graph::NodeId>& terminals,
    const std::vector<graph::EdgeId>& forced,
    const std::vector<graph::EdgeId>& banned) {
  return SolveExactImpl(pin, terminals, forced, banned, /*mask=*/nullptr,
                        /*outcome=*/nullptr, /*escalate_bound=*/nullptr);
}

std::optional<SteinerTree> FastSteinerEngine::SolveExactImpl(
    const SnapshotPin& pin, const std::vector<graph::NodeId>& terminals,
    const std::vector<graph::EdgeId>& forced,
    const std::vector<graph::EdgeId>& banned, const MaskView* mask,
    MaskedOutcome* outcome, double* escalate_bound) {
  if (outcome != nullptr) *outcome = MaskedOutcome::kOk;
  const CsrGraph& csr = *pin.csr;
  SolverScratch& s = GetScratch();
  SteinerTree result;
  if (!PrepareSubproblem(csr, terminals, forced, banned, s, &result)) {
    return std::nullopt;
  }
  const std::size_t t = s.terminals.size();
  if (t <= 1) {
    result.Canonicalize();
    return result;
  }
  const ShardMask* compact = ResolveCompact(mask, csr, s);
  ExtentGuard extent{
      s, compact != nullptr ? compact->nodes.size() : csr.num_nodes};
  OverlayGuard overlay(s, csr);

  // Acquire complete per-terminal shortest-path trees once; they serve
  // triple duty: the KMB upper bound (terminals disconnected iff KMB fails
  // iff the DP would fail), the eligibility filter, and the DP's singleton
  // slices dp[{i}] = dist(t_i, .) — so those 2^0-subsets need no grow pass
  // at all.
  if (compact != nullptr) {
    AcquireSpTreesLocal(csr, *compact, cache_.get(), s, /*full=*/true);
  } else {
    if (mask != nullptr && cache_ != nullptr) {
      cache_->NoteMaskedBypass(s.terminals.size());
    }
    ShortestPathCache* cache = mask != nullptr ? nullptr : cache_.get();
    AcquireSpTrees(csr, cache, pin.cache_generation, s, /*full=*/true,
                   mask != nullptr ? mask->in_mask : nullptr);
  }
  const std::vector<std::uint32_t>& sp_terms =
      compact != nullptr ? s.terminals_local : s.terminals;
  if (mask != nullptr) {
    // Guarantees the KMB upper bound below (and its infeasibility
    // verdict) is the unmasked one before we derive a threshold from it.
    double overlay_lb = 0.0;
    MaskedOutcome verdict = CertifyPairwiseReads(s, sp_terms, &overlay_lb);
    if (verdict != MaskedOutcome::kOk) {
      *outcome = verdict;
      if (escalate_bound != nullptr) {
        *escalate_bound = SubspaceCostBound(result.cost, overlay_lb);
      }
      return std::nullopt;
    }
  }
  auto kmb = KmbFromTrees(csr, s, sp_terms, result);
  if (!kmb.has_value()) return std::nullopt;
  double bound = kmb->cost - result.cost;  // overlay-space upper bound
  // Relative slack absorbs float summation-order differences between the
  // bound and the distances.
  bound += bound * 1e-12 + 1e-12;
  if (mask != nullptr) {
    // The DP reads distances up to the pruning threshold (eligibility,
    // singleton slices, reconstruction walks), so the whole read horizon
    // must sit strictly below every tree's clipped-offer floor — then
    // the bound-pruned eligible set, the mini-CSR, and every value read
    // are provably the unmasked ones. (This subsumes the pairwise check
    // above: any tree path between two terminals costs at most `bound`.)
    for (std::size_t i = 0; i < t; ++i) {
      if (!(s.sp[i]->mask_min_clip > bound)) {
        *outcome = MaskedOutcome::kEscalate;
        if (escalate_bound != nullptr) {
          // Pairwise distances certified above are exact here, so they
          // bound the subspace optimum even without the DP verdict.
          double pairwise = 0.0;
          for (std::size_t a = 0; a < t; ++a) {
            for (std::size_t b = 0; b < t; ++b) {
              pairwise = std::max(pairwise, s.sp[a]->dist[sp_terms[b]]);
            }
          }
          *escalate_bound = SubspaceCostBound(result.cost, pairwise);
        }
        return std::nullopt;
      }
    }
  }

  // Restrict the DP to nodes a below-bound tree can possibly touch: any
  // node v of a tree T spanning the terminals satisfies
  // max_i dist(t_i, v) <= cost(T) in overlay space. Eligible nodes get
  // dense mini ids (in node-id order); the induced mini-CSR bakes the
  // overlay costs in, so the DP inner loops run flag-free on the small
  // subgraph. The slack makes a terminal falling outside the bound a
  // float-only corner case; if it ever happens, fall back to the
  // unpruned reachable set (unmasked runs only — under a mask the lifted
  // threshold proves nothing, so the masked solver escalates instead).
  const int max_attempts = mask != nullptr ? 1 : 2;
  std::uint32_t n_e = 0;
  bool terminals_covered = false;
  for (int attempt = 0; attempt < max_attempts && !terminals_covered;
       ++attempt) {
    double threshold = attempt == 0 ? bound : kInf;
    s.elig_nodes.clear();
    s.elig_local.clear();
    if (compact != nullptr) {
      // Local ids ascend with the (ascending) mask node list, so this
      // scan visits candidates in the same order as the uncompacted
      // masked branch below — the eligible list (and hence the mini-id
      // assignment) comes out identical, merely read through local
      // distance arrays.
      const std::uint32_t num_local =
          static_cast<std::uint32_t>(compact->nodes.size());
      for (std::uint32_t lv = 0; lv < num_local; ++lv) {
        bool ok = true;
        for (std::size_t i = 0; i < t; ++i) {
          if (s.sp[i]->dist[lv] > threshold) {
            ok = false;
            break;
          }
        }
        if (ok) {
          s.elig_nodes.push_back(compact->nodes[lv]);
          s.elig_local.push_back(lv);
        }
      }
    } else if (mask != nullptr) {
      // Below-bound nodes all live inside the mask (the clipped-offer
      // floor exceeds the bound, so any node whose true distance fits
      // the threshold was settled — identically — by the masked runs),
      // so scanning the ascending mask node list yields the same
      // eligible list — same order — as the unmasked 0..n-1 scan.
      for (std::uint32_t v : *mask->nodes) {
        bool ok = true;
        for (std::size_t i = 0; i < t; ++i) {
          if (s.sp[i]->dist[v] > threshold) {
            ok = false;
            break;
          }
        }
        if (ok) s.elig_nodes.push_back(v);
      }
    } else {
      for (std::uint32_t v = 0; v < csr.num_nodes; ++v) {
        bool ok = true;
        for (std::size_t i = 0; i < t; ++i) {
          if (s.sp[i]->dist[v] > threshold) {
            ok = false;
            break;
          }
        }
        if (ok) s.elig_nodes.push_back(v);
      }
    }
    if (++s.stamp == 0) {
      std::fill(s.local_stamp.begin(), s.local_stamp.end(), 0);
      s.stamp = 1;
    }
    if (s.local_stamp.size() < csr.num_nodes) {
      s.local_stamp.resize(csr.num_nodes, 0);
      s.local_of.resize(csr.num_nodes);
    }
    n_e = static_cast<std::uint32_t>(s.elig_nodes.size());
    for (std::uint32_t i = 0; i < n_e; ++i) {
      s.local_stamp[s.elig_nodes[i]] = s.stamp;
      s.local_of[s.elig_nodes[i]] = i;
    }
    s.mini_terms.clear();
    terminals_covered = true;
    for (std::uint32_t term : s.terminals) {
      if (s.local_stamp[term] != s.stamp) {
        terminals_covered = false;
        break;
      }
      s.mini_terms.push_back(s.local_of[term]);
    }
  }
  if (mask != nullptr && !terminals_covered) {
    *outcome = MaskedOutcome::kEscalate;
    return std::nullopt;
  }
  Q_CHECK_MSG(terminals_covered,
              "KMB-connected terminal unreachable in eligibility pass");

  s.mini_offsets.assign(n_e + 1, 0);
  s.mini_head.clear();
  s.mini_edge.clear();
  s.mini_cost.clear();
  for (std::uint32_t i = 0; i < n_e; ++i) {
    std::uint32_t v = s.elig_nodes[i];
    const std::uint32_t end = csr.offsets[v + 1];
    for (std::uint32_t a = csr.offsets[v]; a < end; ++a) {
      std::uint32_t to = csr.arc_head[a];
      if (s.local_stamp[to] != s.stamp) continue;
      graph::EdgeId e = csr.arc_edge[a];
      std::uint8_t flag = s.edge_flag[e];
      if (flag == kBanned) continue;
      s.mini_head.push_back(s.local_of[to]);
      s.mini_edge.push_back(e);
      s.mini_cost.push_back(flag == kForced ? 0.0 : csr.arc_cost[a]);
    }
    s.mini_offsets[i + 1] = static_cast<std::uint32_t>(s.mini_head.size());
  }

  // Eligible nodes in the trees' own index space: local ids under a
  // compact view, global node ids otherwise. Parallel to elig_nodes, so
  // mini id mv reads the same node either way.
  const std::vector<std::uint32_t>& elig_idx =
      compact != nullptr ? s.elig_local : s.elig_nodes;

  const std::uint32_t full = (1u << t) - 1;
  const std::size_t states = static_cast<std::size_t>(full + 1) * n_e;
  s.dp.assign(states, kInf);
  s.back.assign(states, Back{});
  // Singleton slices come straight from the shortest-path trees (bound-
  // pruned); their subsets below need neither merge nor grow.
  for (std::size_t i = 0; i < t; ++i) {
    double* dps = &s.dp[(std::size_t{1} << i) * n_e];
    const SpTree& sp = *s.sp[i];
    for (std::uint32_t mv = 0; mv < n_e; ++mv) {
      double d = sp.dist[elig_idx[mv]];
      if (d <= bound) dps[mv] = d;
    }
  }

  for (std::uint32_t subset = 1; subset <= full; ++subset) {
    if ((subset & (subset - 1)) == 0) continue;  // singleton: prefilled
    double* dps = &s.dp[static_cast<std::size_t>(subset) * n_e];
    Back* backs = &s.back[static_cast<std::size_t>(subset) * n_e];
    // Merge step: combine two disjoint sub-forests rooted at the same node.
    for (std::uint32_t part = (subset - 1) & subset; part > 0;
         part = (part - 1) & subset) {
      std::uint32_t other = subset ^ part;
      if (part > other) continue;  // each unordered split once
      const double* a = &s.dp[static_cast<std::size_t>(part) * n_e];
      const double* b = &s.dp[static_cast<std::size_t>(other) * n_e];
      for (std::uint32_t v = 0; v < n_e; ++v) {
        if (a[v] == kInf || b[v] == kInf) continue;
        double candidate = a[v] + b[v];
        // States above the KMB bound can never be part of an optimal
        // decomposition (partial sums of nonnegative costs are bounded by
        // the total); pruning them keeps the grow frontier small.
        if (candidate < dps[v] && candidate <= bound) {
          dps[v] = candidate;
          backs[v].type = Back::Type::kMerge;
          backs[v].merge_subset = part;
        }
      }
    }
    // Grow step: Dijkstra over the mini-CSR seeded with the merge results
    // (O(n) heapify instead of n pushes).
    s.heap.Heapify(dps, n_e);
    while (!s.heap.empty()) {
      auto [d, v] = s.heap.PopMin();
      const std::uint32_t end = s.mini_offsets[v + 1];
      for (std::uint32_t a = s.mini_offsets[v]; a < end; ++a) {
        double next = d + s.mini_cost[a];
        if (next > bound) continue;
        std::uint32_t to = s.mini_head[a];
        if (next < dps[to]) {
          dps[to] = next;
          backs[to].type = Back::Type::kGrow;
          backs[to].grow_pred = v;
          backs[to].grow_edge = s.mini_edge[a];
          s.heap.PushOrDecrease(to, next);
        }
      }
    }
  }

  const std::uint32_t root = s.mini_terms[0];
  std::size_t root_idx = static_cast<std::size_t>(full) * n_e + root;
  if (s.dp[root_idx] == kInf) return std::nullopt;

  // Reconstruct edges by unwinding backpointers. Forced edges traversed at
  // cost 0 may reappear here; Canonicalize dedups them against the forced
  // prefix already in result.edges.
  s.rebuild_stack.clear();
  s.rebuild_stack.emplace_back(full, root);
  while (!s.rebuild_stack.empty()) {
    auto [subset, v] = s.rebuild_stack.back();
    s.rebuild_stack.pop_back();
    if ((subset & (subset - 1)) == 0) {
      // Singleton: walk the terminal's shortest-path tree from v back to
      // the terminal (possibly through nodes outside the eligible set on
      // cost ties — still a min-cost attachment path).
      const std::size_t i = static_cast<std::size_t>(__builtin_ctz(subset));
      const SpTree& sp = *s.sp[i];
      std::uint32_t cur = elig_idx[v];
      const std::uint32_t src = sp_terms[i];
      while (cur != src) {
        graph::EdgeId e = sp.pred_edge[cur];
        if (e == graph::kInvalidEdge) break;
        result.edges.push_back(e);
        cur = sp.pred_node[cur];
      }
      continue;
    }
    const Back& b = s.back[static_cast<std::size_t>(subset) * n_e + v];
    switch (b.type) {
      case Back::Type::kNone:
        Q_CHECK_MSG(false, "unreachable DP state in Steiner reconstruction");
        break;
      case Back::Type::kGrow:
        result.edges.push_back(b.grow_edge);
        s.rebuild_stack.emplace_back(subset, b.grow_pred);
        break;
      case Back::Type::kMerge:
        s.rebuild_stack.emplace_back(b.merge_subset, v);
        s.rebuild_stack.emplace_back(subset ^ b.merge_subset, v);
        break;
    }
  }

  result.cost += s.dp[root_idx];
  result.Canonicalize();
  return result;
}

std::size_t ThreadScratchBytes() { return GetScratch().FootprintBytes(); }

MaskedSpProbe ComputeMaskedSpTreeForTest(
    const CsrGraph& csr, const MaskView& mask, std::uint32_t source,
    const std::vector<graph::NodeId>& targets, bool stop_at_targets,
    const std::vector<graph::EdgeId>& forced,
    const std::vector<graph::EdgeId>& banned) {
  SolverScratch& s = GetScratch();
  s.forced_sorted.assign(forced.begin(), forced.end());
  std::sort(s.forced_sorted.begin(), s.forced_sorted.end());
  s.banned_sorted.assign(banned.begin(), banned.end());
  std::sort(s.banned_sorted.begin(), s.banned_sorted.end());
  s.terminals.assign(targets.begin(), targets.end());
  OverlayGuard overlay(s, csr);

  // Both paths project into global-indexed arrays so callers diff them
  // element-for-element without knowing which path ran.
  MaskedSpProbe probe;
  probe.dist.assign(csr.num_nodes, kInf);
  probe.pred_node.assign(csr.num_nodes, graph::kInvalidNode);
  probe.pred_edge.assign(csr.num_nodes, graph::kInvalidEdge);
  probe.settled.assign(csr.num_nodes, 0);

  SpTree tree;
  const ShardMask* compact =
      mask.compact != nullptr && mask.compact->HasCompact() &&
              mask.compact->local_of.size() == csr.num_nodes &&
              mask.compact->local_of[source] != ShardMask::kExternal
          ? mask.compact
          : nullptr;
  if (compact != nullptr) {
    const std::size_t n = compact->nodes.size();
    if (s.is_target_local.size() < n) s.is_target_local.resize(n, 0);
    for (std::uint32_t t : targets) {
      const std::uint32_t lt = compact->local_of[t];
      if (lt != ShardMask::kExternal) s.is_target_local[lt] = 1;
    }
    // The stop threshold mirrors the global path's s.terminals.size():
    // a target outside the mask (or a duplicate) never settles, so both
    // paths keep exploring identically instead of stopping early.
    ComputeSpTreeLocal(*compact, s.edge_flag, s.is_target_local,
                       targets.size(), stop_at_targets,
                       compact->local_of[source], s.heap, &tree);
    for (std::uint32_t t : targets) {
      const std::uint32_t lt = compact->local_of[t];
      if (lt != ShardMask::kExternal) s.is_target_local[lt] = 0;
    }
    for (std::uint32_t lv : tree.touched) {  // settled survivors only
      const std::uint32_t v = compact->nodes[lv];
      probe.dist[v] = tree.dist[lv];
      probe.pred_node[v] = tree.pred_node[lv] == graph::kInvalidNode
                               ? graph::kInvalidNode
                               : compact->nodes[tree.pred_node[lv]];
      probe.pred_edge[v] = tree.pred_edge[lv];
      probe.settled[v] = 1;
    }
  } else {
    ComputeSpTree(csr, s.edge_flag, s.is_target, s.terminals.size(),
                  stop_at_targets, source, mask.in_mask, s.heap, &tree);
    for (std::uint32_t v : tree.touched) {
      probe.dist[v] = tree.dist[v];
      probe.pred_node[v] = tree.pred_node[v];
      probe.pred_edge[v] = tree.pred_edge[v];
      probe.settled[v] = 1;
    }
  }
  probe.tree_edges = std::move(tree.tree_edges);
  probe.mask_min_clip = tree.mask_min_clip;
  probe.complete = tree.complete;
  return probe;
}

}  // namespace q::steiner
