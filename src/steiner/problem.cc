#include "steiner/problem.h"

#include <algorithm>
#include <unordered_set>

namespace q::steiner {

SteinerProblem::SteinerProblem(const graph::SearchGraph& graph,
                               const graph::WeightVector& weights,
                               const std::vector<graph::NodeId>& terminals,
                               const std::vector<graph::EdgeId>& forced,
                               const std::vector<graph::EdgeId>& banned)
    : forced_(forced) {
  std::unordered_set<graph::EdgeId> banned_set(banned.begin(), banned.end());
  std::unordered_set<graph::EdgeId> forced_set(forced.begin(), forced.end());
  for (graph::EdgeId e : forced_) {
    if (banned_set.count(e) > 0) {
      valid_ = false;
      return;
    }
  }

  // Union-find over original node ids; contraction of forced edges.
  std::vector<graph::NodeId> parent(graph.num_nodes());
  for (graph::NodeId i = 0; i < parent.size(); ++i) parent[i] = i;
  auto find = [&](graph::NodeId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (graph::EdgeId e : forced_) {
    const graph::EdgeView edge = graph.edge(e);
    graph::NodeId ru = find(edge.u);
    graph::NodeId rv = find(edge.v);
    if (ru == rv) {
      valid_ = false;  // forced edges form a cycle
      return;
    }
    parent[ru] = rv;
    base_cost_ += graph.EdgeCost(e, weights);
  }

  // Dense super-node ids.
  super_of_.assign(graph.num_nodes(), 0);
  std::vector<graph::NodeId> root_to_super(graph.num_nodes(),
                                           graph::kInvalidNode);
  std::uint32_t next = 0;
  for (graph::NodeId i = 0; i < graph.num_nodes(); ++i) {
    graph::NodeId r = find(i);
    if (root_to_super[r] == graph::kInvalidNode) root_to_super[r] = next++;
    super_of_[i] = root_to_super[r];
  }
  arcs_.resize(next);

  for (graph::EdgeId e = 0; e < graph.num_edges(); ++e) {
    if (banned_set.count(e) > 0 || forced_set.count(e) > 0) continue;
    const graph::EdgeView edge = graph.edge(e);
    std::uint32_t su = super_of_[edge.u];
    std::uint32_t sv = super_of_[edge.v];
    if (su == sv) continue;  // self-loop after contraction
    double cost = graph.EdgeCost(e, weights);
    arcs_[su].push_back(Arc{sv, e, cost});
    arcs_[sv].push_back(Arc{su, e, cost});
  }

  std::unordered_set<std::uint32_t> seen;
  for (graph::NodeId t : terminals) {
    std::uint32_t s = super_of_[t];
    if (seen.insert(s).second) terminals_.push_back(s);
  }
}

}  // namespace q::steiner
