#ifndef Q_STEINER_SHARD_H_
#define Q_STEINER_SHARD_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "graph/search_graph.h"
#include "steiner/csr.h"

namespace q::steiner {

// Bytes retained by the calling thread's localizer scratch (the stamped
// distance arrays and heap the bootstrap/ball Dijkstras reuse across
// queries). Counted into steiner::ThreadScratchBytes so the serving
// footprint gate covers it.
std::size_t LocalizerScratchBytes();

// Topology-only partition of a CSR snapshot into connected node clusters
// of roughly `target_nodes` each, grown by BFS in ascending seed order so
// the assignment is a pure function of the arc structure. Costs play no
// role: re-costing a snapshot never moves a node between shards, so one
// partition serves an engine for its whole lifetime (the engine's
// node/edge set is fixed at construction).
struct ShardPartition {
  std::vector<std::uint32_t> shard_of;  // node id -> shard id
  std::uint32_t num_shards = 0;
  // Inverse index as a CSR: shard id -> its node ids in ascending order.
  // Mask builds expand touched shards through it in O(mask) instead of
  // scanning every catalog node per query.
  std::vector<std::uint32_t> shard_offsets;  // size num_shards + 1
  std::vector<std::uint32_t> shard_nodes;    // size num_nodes

  static ShardPartition Build(const CsrGraph& csr, std::uint32_t target_nodes);
};

// A set of whole shards, materialized as a node bitmap plus the sorted
// node-id list (ascending — the exact-DP eligibility scan relies on the
// order matching the unmasked 0..n-1 scan).
//
// Alongside the bitmap, a mask built by TerminalLocalizer carries a
// *compact local-id view*: mask nodes remapped to dense ids 0..L-1 (in
// ascending global order, so local (dist, id) tie order is isomorphic to
// the global canonical order) plus a materialized sub-CSR whose arc heads
// are translated to local ids. Arcs leaving the mask keep a kExternal
// head so a masked Dijkstra still sees every clipped boundary offer —
// mask_min_clip certificates stay byte-equal to the uncompacted path.
// Arc costs are baked from the CSR the view was built against (the
// localizer's pinned snapshot; one enumeration never mixes generations),
// and per-node arc order is preserved, so predecessor selection matches
// the global scan arc for arc. The view is immutable after Rebuild and
// shared with the mask itself; solvers size every per-node array to L
// instead of num_nodes, which is the whole point (cache residency on
// million-source catalogs).
struct ShardMask {
  // Local-id sentinel for arc heads outside the mask (and for
  // local_of[v] of nodes outside it).
  static constexpr std::uint32_t kExternal = 0xFFFFFFFFu;

  std::vector<std::uint8_t> in_mask;   // size num_nodes
  std::vector<std::uint32_t> nodes;    // ascending node ids with in_mask=1
  // True when no escalation can grow the mask further (every node the
  // terminals can reach is already inside, or the mask spans the whole
  // graph). Callers then solve unmasked.
  bool covers_all = false;

  // --- compact local-id view (see the class comment above) -------------
  std::vector<std::uint32_t> local_of;        // global -> local, kExternal outside
  std::vector<std::uint32_t> local_offsets;   // size nodes.size() + 1
  std::vector<std::uint32_t> local_arc_head;  // local id, or kExternal
  std::vector<graph::EdgeId> local_arc_edge;  // global edge ids (overlay flags)
  std::vector<double> local_arc_cost;         // baked from the pinned CSR
  // Process-unique id stamped per built view; the shortest-path cache
  // keys masked local trees by it (mask-epoch keying — a grown or
  // unrelated mask can never serve a stale local tree).
  std::uint64_t mask_uid = 0;

  bool HasCompact() const {
    return local_offsets.size() == nodes.size() + 1 && !local_of.empty();
  }

  // Fills the compact view from `csr` (must be the snapshot in_mask/nodes
  // were computed over). Called once per mask epoch by the localizer.
  void BuildCompact(const CsrGraph& csr);
};

// Per-enumeration state for sharded terminal-local search: owns the
// current mask (all shards any node within real-cost radius `r_proof` of
// the terminals belongs to) and grows it on demand. The solver's masked
// variants verify, per subproblem, the conditions under which the masked
// result is provably bit-identical to the unmasked one (see
// fast_solver.h); when a condition fails they report kEscalate and the
// enumeration calls Escalate, which doubles r_proof and rebuilds the
// mask under a new epoch. Escalation is monotone (the ball only grows)
// and terminates: once the bounded ball Dijkstra stops clipping at the
// radius, the mask can never grow again and covers_all is set.
//
// Thread safety: Acquire/Escalate are mutex-protected; parallel Lawler
// children race benignly (Escalate no-ops when the caller's observed
// epoch is already stale). Masks are immutable after publication and
// handed out by shared_ptr.
class TerminalLocalizer {
 public:
  struct Snapshot {
    std::shared_ptr<const ShardMask> mask;
    double r_proof = 0.0;
    std::uint64_t epoch = 0;
  };

  // Bootstraps r_proof from the star heuristic: a single real-cost
  // Dijkstra from terminals[0] gives star = sum_i d(t0, t_i), an upper
  // bound on the optimal unconstrained tree cost; r_proof starts at
  // 2 * star. An unreachable terminal (or an empty terminal set) skips
  // straight to a covers_all mask — the unmasked solver then owns the
  // infeasibility verdict.
  TerminalLocalizer(std::shared_ptr<const CsrGraph> csr,
                    std::shared_ptr<const ShardPartition> shards,
                    std::vector<graph::NodeId> terminals);

  Snapshot Acquire() const;

  // Doubles r_proof and republishes the mask under the next epoch. No-op
  // when `observed_epoch` is stale — the concurrent solver that lost the
  // race re-acquires the already-grown mask instead of growing it twice.
  void Escalate(std::uint64_t observed_epoch);

 private:
  // Builds the mask for the current r_proof_: multi-source bounded
  // real-cost Dijkstra from the terminals, then every touched shard in
  // full. Caller holds mu_.
  std::shared_ptr<const ShardMask> Rebuild() const;

  std::shared_ptr<const CsrGraph> csr_;
  std::shared_ptr<const ShardPartition> shards_;
  std::vector<graph::NodeId> terminals_;

  mutable std::mutex mu_;
  std::uint64_t epoch_ = 0;
  double r_proof_ = 0.0;
  std::shared_ptr<const ShardMask> mask_;
};

}  // namespace q::steiner

#endif  // Q_STEINER_SHARD_H_
