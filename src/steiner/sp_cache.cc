#include "steiner/sp_cache.h"

#include <algorithm>
#include <iterator>

namespace q::steiner {
namespace {

// True if every element of `a` xor `b` (both sorted) has zero base cost.
bool SymmetricDiffIsFree(const std::vector<graph::EdgeId>& a,
                         const std::vector<graph::EdgeId>& b,
                         const std::vector<double>& edge_cost) {
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() || j < b.size()) {
    if (j == b.size() || (i < a.size() && a[i] < b[j])) {
      if (edge_cost[a[i++]] != 0.0) return false;
    } else if (i == a.size() || b[j] < a[i]) {
      if (edge_cost[b[j++]] != 0.0) return false;
    } else {
      ++i;
      ++j;
    }
  }
  return true;
}

// True if `sub` (sorted) is a subset of `super` (sorted) and every element
// of super \ sub is absent from `tree_edges` (sorted).
bool BansCompatible(const std::vector<graph::EdgeId>& sub,
                    const std::vector<graph::EdgeId>& super,
                    const std::vector<graph::EdgeId>& tree_edges) {
  std::size_t i = 0;
  for (graph::EdgeId e : super) {
    if (i < sub.size() && sub[i] == e) {
      ++i;
      continue;
    }
    if (std::binary_search(tree_edges.begin(), tree_edges.end(), e)) {
      return false;
    }
  }
  return i == sub.size();  // sub must be fully contained
}

}  // namespace

bool ShortestPathCache::Valid(const Entry& entry,
                              const std::vector<graph::EdgeId>& forced,
                              const std::vector<graph::EdgeId>& banned,
                              const std::vector<double>& edge_cost,
                              const std::vector<std::uint32_t>& required,
                              bool require_complete) {
  if (require_complete && !entry.tree->complete) return false;
  for (std::uint32_t node : required) {
    if (!entry.tree->settled[node]) return false;
  }
  return SymmetricDiffIsFree(entry.forced, forced, edge_cost) &&
         BansCompatible(entry.banned, banned, entry.tree->tree_edges);
}

void ShortestPathCache::BumpGeneration() {
  std::lock_guard<std::mutex> lock(mu_);
  ++generation_;
  // Stale generations can never be looked up again (the generation is in
  // the key), so purge them and give the new snapshot the full capacity.
  by_key_.clear();
  num_entries_ = 0;
}

std::uint64_t ShortestPathCache::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

void ShortestPathCache::InvalidateRepriced(
    const std::vector<RepricedEdge>& repriced, std::size_t* retained,
    std::size_t* dropped) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t kept = 0;
  std::size_t lost = 0;
  // The scan covers every live entry. Current-generation entries are the
  // point: their validity must be re-proved under the new costs because a
  // delta re-cost moves costs without moving the generation. Older
  // generations (possible only from pinned solves inserting after a bump)
  // are valid for their own pinned costs forever, so re-judging them here
  // can only drop them spuriously — a miss, never a wrong tree.
  auto survives = [&](const Entry& entry) {
    for (const RepricedEdge& r : repriced) {
      if (std::binary_search(entry.forced.begin(), entry.forced.end(),
                             r.edge)) {
        continue;  // traversed at cost 0; base cost never read
      }
      if (std::binary_search(entry.banned.begin(), entry.banned.end(),
                             r.edge)) {
        continue;  // excluded from traversal entirely
      }
      if (r.new_cost > r.old_cost &&
          !std::binary_search(entry.tree->tree_edges.begin(),
                              entry.tree->tree_edges.end(), r.edge)) {
        continue;  // increase of a non-tree edge: provably no effect
      }
      return false;
    }
    return true;
  };
  for (auto it = by_key_.begin(); it != by_key_.end();) {
    std::vector<Entry>& entries = it->second;
    std::size_t out = 0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (survives(entries[i])) {
        // Guard the common all-survive case: self-move-assignment would
        // empty the entry's overlay vectors, silently turning an overlay
        // tree into an overlay-free one.
        if (out != i) entries[out] = std::move(entries[i]);
        ++out;
        ++kept;
      } else {
        ++lost;
      }
    }
    entries.resize(out);
    it = entries.empty() ? by_key_.erase(it) : std::next(it);
  }
  num_entries_ -= lost;
  if (retained != nullptr) *retained += kept;
  if (dropped != nullptr) *dropped += lost;
}

std::shared_ptr<const SpTree> ShortestPathCache::Lookup(
    std::uint64_t generation, std::uint32_t terminal,
    const std::vector<graph::EdgeId>& forced_sorted,
    const std::vector<graph::EdgeId>& banned_sorted,
    const std::vector<double>& edge_cost,
    const std::vector<std::uint32_t>& required, bool require_complete) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_key_.find(Key(generation, terminal));
  if (it != by_key_.end()) {
    for (const Entry& entry : it->second) {
      if (Valid(entry, forced_sorted, banned_sorted, edge_cost, required,
                require_complete)) {
        ++hits_;
        return entry.tree;
      }
    }
  }
  ++misses_;
  return nullptr;
}

bool ShortestPathCache::HasRoom() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_entries_ < max_entries_;
}

void ShortestPathCache::Insert(std::uint64_t generation,
                               std::uint32_t terminal,
                               std::vector<graph::EdgeId> forced_sorted,
                               std::vector<graph::EdgeId> banned_sorted,
                               std::shared_ptr<const SpTree> tree) {
  std::lock_guard<std::mutex> lock(mu_);
  if (num_entries_ >= max_entries_) return;
  ++num_entries_;
  by_key_[Key(generation, terminal)].push_back(Entry{
      std::move(forced_sorted), std::move(banned_sorted), std::move(tree)});
}

std::size_t ShortestPathCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::size_t ShortestPathCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::size_t ShortestPathCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_entries_;
}

}  // namespace q::steiner
