#include "steiner/sp_cache.h"

#include <algorithm>
#include <iterator>

namespace q::steiner {
namespace {

// True if every element of `a` xor `b` (both sorted) has zero base cost.
bool SymmetricDiffIsFree(const std::vector<graph::EdgeId>& a,
                         const std::vector<graph::EdgeId>& b,
                         const std::vector<double>& edge_cost) {
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() || j < b.size()) {
    if (j == b.size() || (i < a.size() && a[i] < b[j])) {
      if (edge_cost[a[i++]] != 0.0) return false;
    } else if (i == a.size() || b[j] < a[i]) {
      if (edge_cost[b[j++]] != 0.0) return false;
    } else {
      ++i;
      ++j;
    }
  }
  return true;
}

// True if `sub` (sorted) is a subset of `super` (sorted) and every element
// of super \ sub is absent from `tree_edges` (sorted).
bool BansCompatible(const std::vector<graph::EdgeId>& sub,
                    const std::vector<graph::EdgeId>& super,
                    const std::vector<graph::EdgeId>& tree_edges) {
  std::size_t i = 0;
  for (graph::EdgeId e : super) {
    if (i < sub.size() && sub[i] == e) {
      ++i;
      continue;
    }
    if (std::binary_search(tree_edges.begin(), tree_edges.end(), e)) {
      return false;
    }
  }
  return i == sub.size();  // sub must be fully contained
}

}  // namespace

bool ShortestPathCache::Valid(const Entry& entry,
                              const std::vector<graph::EdgeId>& forced,
                              const std::vector<graph::EdgeId>& banned,
                              const std::vector<double>& edge_cost,
                              const std::vector<std::uint32_t>& required,
                              bool require_complete) {
  if (require_complete && !entry.tree->complete) return false;
  for (std::uint32_t node : required) {
    if (!entry.tree->settled[node]) return false;
  }
  return SymmetricDiffIsFree(entry.forced, forced, edge_cost) &&
         BansCompatible(entry.banned, banned, entry.tree->tree_edges);
}

void ShortestPathCache::BumpGeneration() {
  generation_.fetch_add(1, std::memory_order_acq_rel);
  // Stale generations can never be looked up again (the generation is in
  // the key), so purge them and give the new snapshot the full capacity.
  // Shard by shard: a pinned old-generation insert racing this purge
  // either lands before (purged) or after (lingers as capacity-bounded
  // garbage until the next bump) — both are documented-safe, and the
  // per-shard accounting keeps num_entries_ exact either way.
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    std::size_t purged = 0;
    for (const auto& [key, entries] : shard.by_key) {
      purged += entries.size();
    }
    shard.by_key.clear();
    num_entries_.fetch_sub(purged, std::memory_order_relaxed);
  }
  // Local-tree entries are uid-keyed (never matched across masks) but a
  // re-cost means every live mask's enumeration is ending; reclaim their
  // memory now instead of waiting for the overflow clear.
  for (Shard& shard : local_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    std::size_t purged = 0;
    for (const auto& [key, entries] : shard.by_key) {
      purged += entries.size();
    }
    shard.by_key.clear();
    num_local_entries_.fetch_sub(purged, std::memory_order_relaxed);
  }
}

std::uint64_t ShortestPathCache::generation() const {
  return generation_.load(std::memory_order_acquire);
}

void ShortestPathCache::InvalidateRepriced(
    const std::vector<RepricedEdge>& repriced, std::size_t* retained,
    std::size_t* dropped) {
  std::size_t kept = 0;
  std::size_t lost = 0;
  // The scan covers every live entry. Current-generation entries are the
  // point: their validity must be re-proved under the new costs because a
  // delta re-cost moves costs without moving the generation. Older
  // generations (possible only from pinned solves inserting after a bump)
  // are valid for their own pinned costs forever, so re-judging them here
  // can only drop them spuriously — a miss, never a wrong tree.
  auto survives = [&](const Entry& entry) {
    for (const RepricedEdge& r : repriced) {
      if (std::binary_search(entry.forced.begin(), entry.forced.end(),
                             r.edge)) {
        continue;  // traversed at cost 0; base cost never read
      }
      if (std::binary_search(entry.banned.begin(), entry.banned.end(),
                             r.edge)) {
        continue;  // excluded from traversal entirely
      }
      if (r.new_cost > r.old_cost &&
          !std::binary_search(entry.tree->tree_edges.begin(),
                              entry.tree->tree_edges.end(), r.edge)) {
        continue;  // increase of a non-tree edge: provably no effect
      }
      return false;
    }
    return true;
  };
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.by_key.begin(); it != shard.by_key.end();) {
      std::vector<Entry>& entries = it->second;
      std::size_t out = 0;
      for (std::size_t i = 0; i < entries.size(); ++i) {
        if (survives(entries[i])) {
          // Guard the common all-survive case: self-move-assignment would
          // empty the entry's overlay vectors, silently turning an overlay
          // tree into an overlay-free one.
          if (out != i) entries[out] = std::move(entries[i]);
          ++out;
          ++kept;
        } else {
          ++lost;
        }
      }
      entries.resize(out);
      it = entries.empty() ? shard.by_key.erase(it) : std::next(it);
    }
  }
  num_entries_.fetch_sub(lost, std::memory_order_relaxed);
  if (retained != nullptr) *retained += kept;
  if (dropped != nullptr) *dropped += lost;
}

std::shared_ptr<const SpTree> ShortestPathCache::Lookup(
    std::uint64_t generation, std::uint32_t terminal,
    const std::vector<graph::EdgeId>& forced_sorted,
    const std::vector<graph::EdgeId>& banned_sorted,
    const std::vector<double>& edge_cost,
    const std::vector<std::uint32_t>& required, bool require_complete) {
  const std::uint64_t key = Key(generation, terminal);
  Shard& shard = shards_[ShardIndex(key)];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.by_key.find(key);
    if (it != shard.by_key.end()) {
      for (const Entry& entry : it->second) {
        if (Valid(entry, forced_sorted, banned_sorted, edge_cost, required,
                  require_complete)) {
          hits_.fetch_add(1, std::memory_order_relaxed);
          return entry.tree;
        }
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

bool ShortestPathCache::HasRoom() const {
  return num_entries_.load(std::memory_order_relaxed) < max_entries_;
}

void ShortestPathCache::Insert(std::uint64_t generation,
                               std::uint32_t terminal,
                               std::vector<graph::EdgeId> forced_sorted,
                               std::vector<graph::EdgeId> banned_sorted,
                               std::shared_ptr<const SpTree> tree) {
  // Claim capacity before taking the shard lock so concurrent inserts
  // never overshoot max_entries_; roll the claim back when full.
  if (num_entries_.fetch_add(1, std::memory_order_relaxed) >= max_entries_) {
    num_entries_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t key = Key(generation, terminal);
  Shard& shard = shards_[ShardIndex(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.by_key[key].push_back(Entry{
      std::move(forced_sorted), std::move(banned_sorted), std::move(tree)});
}

std::shared_ptr<const SpTree> ShortestPathCache::LookupLocal(
    std::uint64_t mask_uid, std::uint32_t terminal,
    const std::vector<graph::EdgeId>& forced_sorted,
    const std::vector<graph::EdgeId>& banned_sorted,
    const std::vector<double>& edge_cost,
    const std::vector<std::uint32_t>& required_local, bool require_complete) {
  const std::uint64_t key = LocalKey(mask_uid, terminal);
  Shard& shard = local_shards_[ShardIndex(key)];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.by_key.find(key);
    if (it != shard.by_key.end()) {
      for (const Entry& entry : it->second) {
        // Same reuse rule as the global store: forced/banned/tree_edges
        // hold global edge ids regardless of index space, and `required`
        // indexes the entry's own (local) settled array.
        if (Valid(entry, forced_sorted, banned_sorted, edge_cost,
                  required_local, require_complete)) {
          local_hits_.fetch_add(1, std::memory_order_relaxed);
          return entry.tree;
        }
      }
    }
  }
  local_misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void ShortestPathCache::InsertLocal(std::uint64_t mask_uid,
                                    std::uint32_t terminal,
                                    std::vector<graph::EdgeId> forced_sorted,
                                    std::vector<graph::EdgeId> banned_sorted,
                                    std::shared_ptr<const SpTree> tree) {
  if (num_local_entries_.fetch_add(1, std::memory_order_relaxed) >=
      max_local_entries_) {
    // Local working sets die with their enumeration (uids are never
    // reused), so a full store is all garbage to the inserter: clear it
    // wholesale and keep going. Concurrent readers of other uids just
    // miss and recompute — entries are immutable shared_ptrs, so nothing
    // is ever torn.
    std::size_t purged = 0;
    for (Shard& shard : local_shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (const auto& [key, entries] : shard.by_key) {
        purged += entries.size();
      }
      shard.by_key.clear();
    }
    num_local_entries_.fetch_sub(purged, std::memory_order_relaxed);
  }
  const std::uint64_t key = LocalKey(mask_uid, terminal);
  Shard& shard = local_shards_[ShardIndex(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.by_key[key].push_back(Entry{
      std::move(forced_sorted), std::move(banned_sorted), std::move(tree)});
}

void ShortestPathCache::NoteMaskedBypass(std::size_t trees) {
  masked_bypasses_.fetch_add(trees, std::memory_order_relaxed);
}

std::size_t ShortestPathCache::local_hits() const {
  return local_hits_.load(std::memory_order_relaxed);
}

std::size_t ShortestPathCache::local_misses() const {
  return local_misses_.load(std::memory_order_relaxed);
}

std::size_t ShortestPathCache::local_size() const {
  return num_local_entries_.load(std::memory_order_relaxed);
}

std::size_t ShortestPathCache::masked_bypasses() const {
  return masked_bypasses_.load(std::memory_order_relaxed);
}

std::size_t ShortestPathCache::hits() const {
  return hits_.load(std::memory_order_relaxed);
}

std::size_t ShortestPathCache::misses() const {
  return misses_.load(std::memory_order_relaxed);
}

std::size_t ShortestPathCache::size() const {
  return num_entries_.load(std::memory_order_relaxed);
}

}  // namespace q::steiner
