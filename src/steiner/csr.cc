#include "steiner/csr.h"

#include <algorithm>

#include "util/status.h"

namespace q::steiner {

FeatureEdgeIndex FeatureEdgeIndex::Build(const graph::SearchGraph& graph) {
  FeatureEdgeIndex index;
  graph::FeatureId max_feature = 0;
  std::size_t num_postings = 0;
  for (graph::EdgeId e = 0; e < graph.num_edges(); ++e) {
    for (const auto& [id, value] : graph.edge_features(e).entries()) {
      max_feature = std::max(max_feature, id);
      ++num_postings;
    }
  }
  index.offsets_.assign(static_cast<std::size_t>(max_feature) + 2, 0);
  for (graph::EdgeId e = 0; e < graph.num_edges(); ++e) {
    for (const auto& [id, value] : graph.edge_features(e).entries()) {
      ++index.offsets_[id + 1];
    }
  }
  for (std::size_t f = 1; f < index.offsets_.size(); ++f) {
    index.offsets_[f] += index.offsets_[f - 1];
  }
  index.edges_.resize(num_postings);
  std::vector<std::uint32_t> cursor(index.offsets_.begin(),
                                    index.offsets_.end() - 1);
  // Filling in edge-id order keeps each feature's posting list ascending.
  for (graph::EdgeId e = 0; e < graph.num_edges(); ++e) {
    for (const auto& [id, value] : graph.edge_features(e).entries()) {
      index.edges_[cursor[id]++] = e;
    }
  }
  return index;
}

void FeatureEdgeIndex::CollectEdges(
    const std::vector<graph::FeatureId>& touched,
    std::vector<graph::EdgeId>* out) const {
  for (graph::FeatureId f : touched) {
    if (static_cast<std::size_t>(f) + 1 >= offsets_.size()) continue;
    out->insert(out->end(), edges_.begin() + offsets_[f],
                edges_.begin() + offsets_[f + 1]);
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

CsrGraph CsrGraph::Build(const graph::SearchGraph& graph,
                         const graph::WeightVector& weights) {
  CsrGraph csr;
  csr.num_nodes = static_cast<std::uint32_t>(graph.num_nodes());
  csr.num_edges = static_cast<std::uint32_t>(graph.num_edges());

  csr.edge_u.resize(csr.num_edges);
  csr.edge_v.resize(csr.num_edges);
  csr.edge_cost.resize(csr.num_edges);
  std::vector<std::uint32_t> degree(csr.num_nodes + 1, 0);
  for (graph::EdgeId e = 0; e < csr.num_edges; ++e) {
    const graph::EdgeView edge = graph.edge(e);
    csr.edge_u[e] = edge.u;
    csr.edge_v[e] = edge.v;
    csr.edge_cost[e] = graph.EdgeCost(e, weights);
    ++degree[edge.u];
    ++degree[edge.v];
  }

  csr.offsets.assign(csr.num_nodes + 1, 0);
  for (std::uint32_t v = 0; v < csr.num_nodes; ++v) {
    csr.offsets[v + 1] = csr.offsets[v] + degree[v];
  }

  const std::size_t num_arcs = 2ull * csr.num_edges;
  csr.arc_head.resize(num_arcs);
  csr.arc_edge.resize(num_arcs);
  csr.arc_cost.resize(num_arcs);
  std::vector<std::uint32_t> cursor(csr.offsets.begin(),
                                    csr.offsets.end() - 1);
  // Filling in edge-id order makes each node's arc block sorted by edge id.
  for (graph::EdgeId e = 0; e < csr.num_edges; ++e) {
    std::uint32_t u = csr.edge_u[e];
    std::uint32_t v = csr.edge_v[e];
    double cost = csr.edge_cost[e];
    std::uint32_t cu = cursor[u]++;
    csr.arc_head[cu] = v;
    csr.arc_edge[cu] = e;
    csr.arc_cost[cu] = cost;
    std::uint32_t cv = cursor[v]++;
    csr.arc_head[cv] = u;
    csr.arc_edge[cv] = e;
    csr.arc_cost[cv] = cost;
  }
  return csr;
}

void CsrGraph::Recost(const graph::SearchGraph& graph,
                      const graph::WeightVector& weights) {
  Q_CHECK(graph.num_nodes() == num_nodes && graph.num_edges() == num_edges);
  // Re-derive the arc costs from the per-edge costs through arc_edge so
  // both directed copies stay exactly equal to the edge cost, as Build
  // lays them out.
  for (graph::EdgeId e = 0; e < num_edges; ++e) {
    edge_cost[e] = graph.EdgeCost(e, weights);
  }
  const std::size_t num_arcs = 2ull * num_edges;
  for (std::size_t a = 0; a < num_arcs; ++a) {
    arc_cost[a] = edge_cost[arc_edge[a]];
  }
}

void CsrGraph::RecostEdges(const graph::SearchGraph& graph,
                           const graph::WeightVector& weights,
                           const std::vector<graph::EdgeId>& edges,
                           std::vector<RepricedEdge>* repriced) {
  Q_CHECK(graph.num_nodes() == num_nodes && graph.num_edges() == num_edges);
  // Patches one directed copy of edge e inside node v's arc block; blocks
  // are sorted by edge id (Build fills in edge-id order), so the copy is
  // found by binary search instead of a full block scan.
  auto patch_arc = [&](std::uint32_t v, graph::EdgeId e, double cost) {
    auto begin = arc_edge.begin() + offsets[v];
    auto end = arc_edge.begin() + offsets[v + 1];
    auto it = std::lower_bound(begin, end, e);
    Q_CHECK(it != end && *it == e);
    arc_cost[static_cast<std::size_t>(it - arc_edge.begin())] = cost;
  };
  for (graph::EdgeId e : edges) {
    double fresh = graph.EdgeCost(e, weights);
    if (fresh == edge_cost[e]) continue;
    repriced->push_back(RepricedEdge{e, edge_cost[e], fresh});
    edge_cost[e] = fresh;
    patch_arc(edge_u[e], e, fresh);
    patch_arc(edge_v[e], e, fresh);
  }
}

void CsrGraph::PreviewRecostEdges(const graph::SearchGraph& graph,
                                  const graph::WeightVector& weights,
                                  const std::vector<graph::EdgeId>& edges,
                                  std::vector<RepricedEdge>* repriced) const {
  Q_CHECK(graph.num_nodes() == num_nodes && graph.num_edges() == num_edges);
  for (graph::EdgeId e : edges) {
    double fresh = graph.EdgeCost(e, weights);
    if (fresh == edge_cost[e]) continue;
    repriced->push_back(RepricedEdge{e, edge_cost[e], fresh});
  }
}

std::size_t CsrGraph::MemoryUsage() const {
  return offsets.capacity() * sizeof(std::uint32_t) +
         arc_head.capacity() * sizeof(std::uint32_t) +
         arc_edge.capacity() * sizeof(graph::EdgeId) +
         arc_cost.capacity() * sizeof(double) +
         edge_u.capacity() * sizeof(std::uint32_t) +
         edge_v.capacity() * sizeof(std::uint32_t) +
         edge_cost.capacity() * sizeof(double);
}

}  // namespace q::steiner
